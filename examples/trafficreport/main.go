// Traffic report — a multi-measure reporting workload on the
// synthetic cube, showing how one aggregation workflow computes many
// related measures in a single pass, and comparing the engines on the
// same query (a miniature of the paper's Figure 6 experiments).
//
//	go run ./examples/trafficreport
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"awra/aw"
	"awra/internal/gen"
)

func main() {
	dir, err := os.MkdirTemp("", "awra-report")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fact := filepath.Join(dir, "synth.rec")

	cfg := gen.SynthConfig{Seed: 31} // 4 dims x 3 levels, fanout 10
	schema, err := gen.Synth(fact, 200000, cfg)
	if err != nil {
		log.Fatal(err)
	}

	all := aw.LevelALL
	fine := aw.Gran{0, 1, all, all}  // (A1:L0, A2:L1)
	mid := aw.Gran{1, all, all, all} // (A1:L1)
	top := aw.Gran{2, all, all, all} // (A1:L2)

	// A reporting stack: leaf sums, per-group activity, hot-group
	// counts, each group's share of its parent, and a smoothed trend.
	wf := aw.NewWorkflow(schema).
		Basic("leafSum", fine, aw.Sum, 0).
		Basic("groupSum", mid, aw.Sum, 0).
		Basic("topSum", top, aw.Sum, 0).
		Rollup("hotLeaves", mid, "leafSum", aw.Count, aw.Where(aw.MWhere(0, aw.Gt, 300))).
		FromParent("parentSum", mid, "topSum", aw.Sum).
		Combine("share", []string{"groupSum", "parentSum"}, aw.Ratio(0, 1)).
		Sliding("trend", "groupSum", aw.Avg, []aw.Window{{Dim: 0, Lo: -2, Hi: 0}})

	c, err := wf.Compile()
	if err != nil {
		log.Fatal(err)
	}
	key, est, err := aw.BestSortKey(c, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer chose sort key %s (estimated footprint %.0f bytes)\n\n",
		key.String(schema), est)

	// Evaluate with every engine and compare wall-clock times.
	type timing struct {
		engine aw.Engine
		d      time.Duration
	}
	var timings []timing
	var results aw.Results
	for _, eng := range []aw.Engine{aw.EngineSortScan, aw.EngineSingleScan, aw.EngineRelational} {
		t0 := time.Now()
		res, err := aw.RunCompiled(context.Background(), c, aw.FromFile(fact), aw.QueryOptions{
			ExecOptions: aw.ExecOptions{Engine: eng},
			TempDir:     dir,
		})
		if err != nil {
			log.Fatal(err)
		}
		timings = append(timings, timing{eng, time.Since(t0)})
		if eng == aw.EngineSortScan {
			results = res
		} else {
			// All engines must agree (the library's tests enforce this
			// exhaustively; this is a live demonstration).
			for name, tbl := range results {
				if !tbl.Equal(res[name], 1e-9) {
					log.Fatalf("engine %v disagrees on %s", eng, name)
				}
			}
		}
	}

	fmt.Println("share of each A1-group within its parent (top 5 by share):")
	share := results["share"]
	printed := 0
	for _, k := range share.SortedKeys() {
		v := share.Rows[k]
		if aw.IsNull(v) {
			continue
		}
		fmt.Printf("  %-16s %6.2f%%   trend=%.0f   hotLeaves=%.0f\n",
			share.Codec.Format(k), 100*v,
			lookup(results["trend"], k), lookup(results["hotLeaves"], k))
		printed++
		if printed == 5 {
			break
		}
	}

	fmt.Println("\nengine comparison on this workflow:")
	for _, t := range timings {
		fmt.Printf("  %-12v %8.1f ms\n", t.engine, float64(t.d.Microseconds())/1000)
	}
}

func lookup(t *aw.Table, k aw.Key) float64 {
	if v, ok := t.Rows[k]; ok {
		return v
	}
	return 0
}
