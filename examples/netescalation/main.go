// Network escalation detection — the first real-data analysis of the
// paper's Section 7.2: "identify instances where attack packet volume
// grows significantly from one time period to the next", built from
// sibling match joins over consecutive hours.
//
//	go run ./examples/netescalation
//
// The program generates a synthetic attack log with planted worm-like
// escalation events (the stand-in for the LBL HoneyNet data), runs the
// escalation workflow, and reports the alarms alongside the planted
// ground truth so you can see the query finding the events.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"awra/aw"
	"awra/internal/gen"
)

func main() {
	dir, err := os.MkdirTemp("", "awra-escalation")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fact := filepath.Join(dir, "net.rec")

	cfg := gen.NetConfig{Days: 3, Escalations: 4, Recons: 0, Seed: 17}
	schema, truth, err := gen.NetLog(fact, 150000, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s with %d planted escalation events\n\n", fact, len(truth.Escalations))

	gSubHour, err := schema.MakeGran(map[string]string{"t": "Hour", "T": "/24"})
	if err != nil {
		log.Fatal(err)
	}

	// traffic:   packets per (target /24, hour)
	// prev:      the same measure one hour earlier (sibling match)
	// growth:    traffic / prev, guarded against quiet hours
	wf := aw.NewWorkflow(schema).
		Basic("traffic", gSubHour, aw.Count, -1).
		Sliding("prev", "traffic", aw.Sum, []aw.Window{{Dim: 0, Lo: -1, Hi: -1}}).
		Combine("growth", []string{"traffic", "prev"}, aw.CombineFunc{
			Name: "traffic/prev",
			Fn: func(v []float64) float64 {
				if aw.IsNull(v[0]) || aw.IsNull(v[1]) || v[1] < 16 {
					return aw.Null()
				}
				return v[0] / v[1]
			},
		})

	res, err := aw.Run(context.Background(), wf, aw.FromFile(fact), aw.QueryOptions{TempDir: dir})
	if err != nil {
		log.Fatal(err)
	}

	type alarm struct {
		where string
		score float64
	}
	var alarms []alarm
	growth := res["growth"]
	for k, v := range growth.Rows {
		if !aw.IsNull(v) && v >= 2 {
			alarms = append(alarms, alarm{growth.Codec.Format(k), v})
		}
	}
	sort.Slice(alarms, func(i, j int) bool { return alarms[i].score > alarms[j].score })

	fmt.Printf("escalation alarms (volume at least doubled hour-over-hour): %d\n", len(alarms))
	for i, a := range alarms {
		if i == 12 {
			fmt.Printf("  ... %d more\n", len(alarms)-i)
			break
		}
		fmt.Printf("  %-44s x%.1f\n", a.where, a.score)
	}

	hourLvl, _ := schema.Dim(0).LevelByName("Hour")
	subLvl, _ := schema.Dim(2).LevelByName("/24")
	fmt.Println("\nplanted ground truth:")
	for _, e := range truth.Escalations {
		fmt.Printf("  target %-18s peak hour %s\n",
			schema.Dim(2).FormatCode(subLvl, e.TargetSubnet),
			schema.Dim(0).FormatCode(hourLvl, e.HourCode))
	}
}
