# Examples 1-5 of the paper (Section 3.1) as an awquery workflow file.
#
#   awgen -kind net -n 200000 -out net.rec
#   awquery -wf examples/queries/busysources.aw -data net.rec -measure ratio
schema net
basic   Count   gran(t=Hour, U=IP) agg=count
rollup  sCount  gran(t=Hour) src=Count agg=count where "m0 > 5"
rollup  sTraffic gran(t=Hour) src=Count agg=sum where "m0 > 5"
sliding avgCount src=sCount agg=avg window t 0..5
combine ratio   src=avgCount,sCount fc=ratio
