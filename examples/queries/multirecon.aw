# Multi-recon detection (Section 7.2, second analysis query): subnets
# probed by many distinct sources within a day.
#
#   awgen -kind net -n 200000 -out net.rec
#   awquery -wf examples/queries/multirecon.aw -data net.rec -measure sweeps
schema net
basic  srcActivity gran(t=Day, T=/24, U=IP) agg=count
rollup fanIn       gran(t=Day, T=/24) src=srcActivity agg=count
rollup sweeps      gran(t=Day) src=fanIn agg=count where "m0 >= 40"
