# Network escalation detection (Section 7.2, first analysis query):
# hour-over-hour growth of attack volume per target /24.
#
#   awgen -kind net -n 200000 -out net.rec
#   awquery -wf examples/queries/escalation.aw -data net.rec -measure growth
schema net
basic   traffic gran(t=Hour, T=/24) agg=count
sliding prev    src=traffic agg=sum window t -1..-1
combine growth  src=traffic,prev fc=ratio
