// Multi-recon detection — the second real-data analysis of the
// paper's Section 7.2: "identify instances where attack packets from
// multiple unique source IP addresses target a specific destination
// network over a specific period of time", built from a chain of
// child/parent match joins over the IP-prefix and time hierarchies.
//
//	go run ./examples/multirecon
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"awra/aw"
	"awra/internal/gen"
)

const fanThreshold = 40 // distinct sources per (/24, day) to flag a sweep

func main() {
	dir, err := os.MkdirTemp("", "awra-recon")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fact := filepath.Join(dir, "net.rec")

	cfg := gen.NetConfig{Days: 3, Escalations: 0, Recons: 4, ReconSources: 60, Seed: 23}
	schema, truth, err := gen.NetLog(fact, 150000, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s with %d planted recon sweeps\n\n", fact, len(truth.Recons))

	gDaySubSrc, err := schema.MakeGran(map[string]string{"t": "Day", "T": "/24", "U": "IP"})
	if err != nil {
		log.Fatal(err)
	}
	gDaySub, err := schema.MakeGran(map[string]string{"t": "Day", "T": "/24"})
	if err != nil {
		log.Fatal(err)
	}
	gDay, err := schema.MakeGran(map[string]string{"t": "Day"})
	if err != nil {
		log.Fatal(err)
	}

	// srcActivity: packets per (day, target /24, source IP)
	// fanIn:       distinct sources per (day, target /24) — counting
	//              srcActivity regions is COUNT(DISTINCT source)
	// sweeps:      flagged subnets per day
	wf := aw.NewWorkflow(schema).
		Basic("srcActivity", gDaySubSrc, aw.Count, -1).
		Rollup("fanIn", gDaySub, "srcActivity", aw.Count).
		Rollup("sweeps", gDay, "fanIn", aw.Count, aw.Where(aw.MWhere(0, aw.Ge, fanThreshold)))

	res, err := aw.Run(context.Background(), wf, aw.FromFile(fact), aw.QueryOptions{TempDir: dir})
	if err != nil {
		log.Fatal(err)
	}

	fanIn := res["fanIn"]
	fmt.Printf("subnet-days over the %d-source threshold:\n", fanThreshold)
	for _, k := range fanIn.SortedKeys() {
		if v := fanIn.Rows[k]; v >= fanThreshold {
			fmt.Printf("  %-44s %3.0f distinct sources\n", fanIn.Codec.Format(k), v)
		}
	}

	sweeps := res["sweeps"]
	fmt.Println("\nswept subnets per day:")
	for _, k := range sweeps.SortedKeys() {
		fmt.Printf("  %-24s %.0f\n", sweeps.Codec.Format(k), sweeps.Rows[k])
	}

	dayLvl, _ := schema.Dim(0).LevelByName("Day")
	subLvl, _ := schema.Dim(2).LevelByName("/24")
	fmt.Println("\nplanted ground truth:")
	for _, r := range truth.Recons {
		fmt.Printf("  target %-18s on %s (%d sources)\n",
			schema.Dim(2).FormatCode(subLvl, r.TargetSubnet),
			schema.Dim(0).FormatCode(dayLvl, r.DayCode), r.Sources)
	}
}
