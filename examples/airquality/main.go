// Air quality monitoring — the paper's *other* motivating domain
// (environmental monitoring, Section 1), showing dictionary-encoded
// categorical hierarchies alongside the time hierarchy: monitoring
// sites roll up to regions and countries, and composite measures
// compute regional daily means, exceedance streak detection via
// sibling joins, and each region's share of the national total via a
// parent/child join.
//
//	go run ./examples/airquality
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"awra/aw"
)

func main() {
	// Location hierarchy: Site -> Region -> ALL, from a dictionary.
	b := aw.NewDictBuilder("loc", "Site", "Region")
	sites := map[string]string{
		"madison": "midwest", "chicago": "midwest", "stlouis": "midwest",
		"seattle": "west", "portland": "west",
		"boston": "east", "newyork": "east", "philly": "east",
	}
	for site, region := range sites {
		b.Add(site, region)
	}
	locDim, locDict, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	schema := aw.MustSchema([]*aw.Dimension{
		aw.TimeDimension("t"),
		locDim,
	}, "pm25")

	// Two weeks of hourly PM2.5 readings per site, with a pollution
	// episode planted in the midwest on days 5-7.
	rng := rand.New(rand.NewSource(42))
	var recs []aw.Record
	for day := 0; day < 14; day++ {
		for hour := 0; hour < 24; hour++ {
			for site, region := range sites {
				code, err := locDict.LeafCode(site)
				if err != nil {
					log.Fatal(err)
				}
				base := 8 + 4*math.Sin(float64(hour-6)/24*2*math.Pi)
				level := base + rng.NormFloat64()*2
				if region == "midwest" && day >= 5 && day <= 7 {
					level += 30 // the episode
				}
				if level < 0 {
					level = 0
				}
				recs = append(recs, aw.Record{
					Dims: []int64{aw.SecondCode(2005, 6, 1+day, hour, 0, 0), code},
					Ms:   []float64{level},
				})
			}
		}
	}

	gDaySite, err := schema.MakeGran(map[string]string{"t": "Day", "loc": "Site"})
	if err != nil {
		log.Fatal(err)
	}
	gDayRegion, err := schema.MakeGran(map[string]string{"t": "Day", "loc": "Region"})
	if err != nil {
		log.Fatal(err)
	}
	gDay, err := schema.MakeGran(map[string]string{"t": "Day"})
	if err != nil {
		log.Fatal(err)
	}

	const limit = 20.0 // daily-mean exceedance threshold

	wf := aw.NewWorkflow(schema).
		// Daily mean per site, then per region.
		Basic("siteDaily", gDaySite, aw.Avg, 0).
		Rollup("regionDaily", gDayRegion, "siteDaily", aw.Avg).
		// National daily mean and each region's share of it.
		Rollup("nationalDaily", gDay, "regionDaily", aw.Avg).
		FromParent("national", gDayRegion, "nationalDaily", aw.Sum).
		Combine("shareOfNational", []string{"regionDaily", "national"}, aw.Ratio(0, 1)).
		// Exceedance detection with a trailing 3-day window: a region
		// is in a sustained episode when every one of the last three
		// daily means exceeded the limit.
		Sliding("minOverWindow", "regionDaily", aw.Min, []aw.Window{{Dim: 0, Lo: -2, Hi: 0}}).
		Rollup("episodeRegions", gDay, "minOverWindow", aw.Count,
			aw.Where(aw.MWhere(0, aw.Gt, limit)))

	res, err := aw.Run(context.Background(), wf, aw.FromRecords(recs))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sustained exceedance episodes (3-day minimum above limit):")
	minW := res["minOverWindow"]
	for _, k := range minW.SortedKeys() {
		if v := minW.Rows[k]; !aw.IsNull(v) && v > limit {
			fmt.Printf("  %-36s 3-day min %.1f ug/m3\n", minW.Codec.Format(k), v)
		}
	}

	fmt.Println("\nregional share of the national mean on episode days:")
	share := res["shareOfNational"]
	episodeDays := map[int64]bool{}
	epi := res["episodeRegions"]
	for k, v := range epi.Rows {
		if v > 0 {
			episodeDays[epi.Codec.Decode(k)[0]] = true
		}
	}
	for _, k := range share.SortedKeys() {
		day := share.Codec.Decode(k)[0]
		if !episodeDays[day] {
			continue
		}
		fmt.Printf("  %-36s %5.1f%% of national\n", share.Codec.Format(k), 100*share.Rows[k])
	}
}
