// Live monitoring — continuous evaluation over an ordered feed: attack
// records are pushed one at a time in timestamp order (as a network
// tap would deliver them), and escalation alerts are emitted the
// moment the streaming engine proves no later packet can change them.
// Memory holds only the live frontier, never the full result.
//
//	go run ./examples/livemonitor
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"awra/aw"
	"awra/internal/gen"
	"awra/internal/storage"
)

func main() {
	// Generate a time-ordered feed (on disk, then replayed in order —
	// stand-in for a live tap).
	dir, err := os.MkdirTemp("", "awra-live")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fact := filepath.Join(dir, "net.rec")
	schema, truth, err := gen.NetLog(fact, 120000, gen.NetConfig{Days: 2, Escalations: 3, Recons: 0, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	gSubHour, err := schema.MakeGran(map[string]string{"t": "Hour", "T": "/24"})
	if err != nil {
		log.Fatal(err)
	}
	wf := aw.NewWorkflow(schema).
		Basic("traffic", gSubHour, aw.Count, -1).
		Sliding("prev", "traffic", aw.Sum, []aw.Window{{Dim: 0, Lo: -1, Hi: -1}}).
		Combine("growth", []string{"traffic", "prev"}, aw.CombineFunc{
			Name: "hourly growth",
			Fn: func(v []float64) float64 {
				if aw.IsNull(v[0]) || aw.IsNull(v[1]) || v[1] < 16 {
					return aw.Null()
				}
				return v[0] / v[1]
			},
		})

	hour, err := schema.Dim(0).LevelByName("Hour")
	if err != nil {
		log.Fatal(err)
	}

	alerts := 0
	var growthCodec interface{ Format(aw.Key) string }
	stream, err := aw.RunStream(context.Background(), wf, aw.StreamOptions{
		// Arrival order: by time, then target subnet within the hour.
		SortKey:       aw.SortKey{{Dim: 0, Lvl: hour}, {Dim: 2, Lvl: 0}},
		ValidateOrder: true,
		Emit: func(measure string, key aw.Key, value float64) {
			if measure != "growth" || aw.IsNull(value) || value < 2 {
				return
			}
			alerts++
			if alerts <= 10 && growthCodec != nil {
				fmt.Printf("  ALERT %-44s traffic x%.1f\n", growthCodec.Format(key), value)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	m, err := stream.Workflow().MeasureByName("growth")
	if err != nil {
		log.Fatal(err)
	}
	growthCodec = m.Codec

	// Replay the feed in arrival order.
	recs, _, err := storage.ReadAll(fact)
	if err != nil {
		log.Fatal(err)
	}
	key := stream.SortKey()
	storage.SortRecords(recs, func(a, b *aw.Record) bool { return key.RecordLess(schema, a, b) })

	fmt.Println("streaming", len(recs), "records; alerts fire as hours finalize:")
	maxLive := int64(0)
	for i := range recs {
		if err := stream.Push(&recs[i]); err != nil {
			log.Fatal(err)
		}
		if lc := stream.LiveCells(); lc > maxLive {
			maxLive = lc
		}
	}
	res, err := stream.Close()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d alerts; peak live frontier %d cells vs %d total regions\n",
		alerts, maxLive, len(res["traffic"].Rows)+len(res["prev"].Rows)+len(res["growth"].Rows))

	hourLvl, _ := schema.Dim(0).LevelByName("Hour")
	subLvl, _ := schema.Dim(2).LevelByName("/24")
	fmt.Println("\nplanted escalations:")
	for _, e := range truth.Escalations {
		fmt.Printf("  target %-18s peak %s\n",
			schema.Dim(2).FormatCode(subLvl, e.TargetSubnet),
			schema.Dim(0).FormatCode(hourLvl, e.HourCode))
	}
}
