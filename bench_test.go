// Package awra's top-level benchmarks regenerate each figure of the
// paper (one testing.B benchmark per table/figure of Section 7) and
// add micro-benchmarks for the substrates. Figure benchmarks run one
// full experiment per iteration; use
//
//	go test -bench=Fig -benchtime=1x -benchmem
//
// to regenerate every figure once, or cmd/awbench for the table
// output with configurable scale.
package awra

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"awra/aw"
	"awra/internal/bench"
	"awra/internal/gen"
	"awra/internal/model"
	"awra/internal/storage"
)

// benchScale keeps benchmark iterations to a few seconds each; the
// awbench CLI runs the full laptop scale.
const benchScale = 0.1

func runFigure(b *testing.B, id string) {
	dir := b.TempDir()
	cfg := bench.Config{Dir: dir, Scale: benchScale, Seed: 2006}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := bench.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkFig6a: Q1 child/parent match with 7 child measures across
// dataset sizes (sort/scan vs relational vs single-scan).
func BenchmarkFig6a(b *testing.B) { runFigure(b, "fig6a") }

// BenchmarkFig6b: Q2 sibling chains (2 and 7 deep) across sizes.
func BenchmarkFig6b(b *testing.B) { runFigure(b, "fig6b") }

// BenchmarkFig6c: increasing number of dependent child measures.
func BenchmarkFig6c(b *testing.B) { runFigure(b, "fig6c") }

// BenchmarkFig6d: increasing sibling chain length.
func BenchmarkFig6d(b *testing.B) { runFigure(b, "fig6d") }

// BenchmarkFig6e: sort-vs-scan cost breakdown.
func BenchmarkFig6e(b *testing.B) { runFigure(b, "fig6e") }

// BenchmarkFig6f: combined network query.
func BenchmarkFig6f(b *testing.B) { runFigure(b, "fig6f") }

// BenchmarkFig7a: network escalation detection.
func BenchmarkFig7a(b *testing.B) { runFigure(b, "fig7a") }

// BenchmarkFig7b: multi-recon detection.
func BenchmarkFig7b(b *testing.B) { runFigure(b, "fig7b") }

// BenchmarkAblKey: ablation — optimizer-chosen vs worst sort key.
func BenchmarkAblKey(b *testing.B) { runFigure(b, "abl-key") }

// BenchmarkAblFlush: ablation — early flushing on/off.
func BenchmarkAblFlush(b *testing.B) { runFigure(b, "abl-flush") }

// BenchmarkAblPar: ablation — partitioned-parallel sort/scan.
func BenchmarkAblPar(b *testing.B) { runFigure(b, "abl-par") }

// --- substrate micro-benchmarks ---

func synthFact(b *testing.B, n int64) (string, *aw.Schema) {
	b.Helper()
	dir := b.TempDir()
	path := filepath.Join(dir, "fact.rec")
	s, err := gen.Synth(path, n, gen.SynthConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return path, s
}

// BenchmarkExternalSort measures the sorting substrate on 100k
// 4-dimensional records.
func BenchmarkExternalSort(b *testing.B) {
	path, s := synthFact(b, 100000)
	key, err := model.SortKey{{Dim: 0, Lvl: 0}, {Dim: 1, Lvl: 0}}.Normalize(s)
	if err != nil {
		b.Fatal(err)
	}
	out := path + ".sorted"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := storage.SortFile(path, out, func(x, y *model.Record) bool {
			return key.RecordLess(s, x, y)
		}, storage.SortOptions{ChunkRecords: 16384})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanThroughput measures raw record-file streaming.
func BenchmarkScanThroughput(b *testing.B) {
	path, _ := synthFact(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := storage.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		var rec model.Record
		n := 0
		for {
			ok, err := r.Next(&rec)
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		r.Close()
		if n != 100000 {
			b.Fatalf("read %d records", n)
		}
	}
	b.SetBytes(100000 * 40)
}

// engineWorkflow is a representative mixed workflow for the engine
// micro-benchmarks.
func engineWorkflow(b *testing.B, s *aw.Schema) *aw.Compiled {
	b.Helper()
	all := aw.LevelALL
	c, err := aw.NewWorkflow(s).
		Basic("cnt", aw.Gran{1, 1, all, all}, aw.Count, -1).
		Rollup("per1", aw.Gran{2, all, all, all}, "cnt", aw.Sum).
		Sliding("trend", "per1", aw.Avg, []aw.Window{{Dim: 0, Lo: -1, Hi: 1}}).
		Combine("ratio", []string{"per1", "trend"}, aw.Ratio(0, 1)).
		Compile()
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkSortScanEngine measures the streaming engine end to end
// (sort + scan) on 100k records.
func BenchmarkSortScanEngine(b *testing.B) {
	path, s := synthFact(b, 100000)
	c := engineWorkflow(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := aw.RunCompiled(context.Background(), c, aw.FromFile(path), aw.QueryOptions{
			ExecOptions: aw.ExecOptions{Engine: aw.EngineSortScan},
			TempDir:     filepath.Dir(path),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res["ratio"].Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkSingleScanEngine measures the hash-everything baseline on
// the same workload.
func BenchmarkSingleScanEngine(b *testing.B) {
	path, s := synthFact(b, 100000)
	c := engineWorkflow(b, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := aw.RunCompiled(context.Background(), c, aw.FromFile(path), aw.QueryOptions{
			ExecOptions: aw.ExecOptions{Engine: aw.EngineSingleScan},
			TempDir:     filepath.Dir(path),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res["ratio"].Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkParallelSort measures the concurrent run-generation path
// against the sequential sort on the same input.
func BenchmarkParallelSort(b *testing.B) {
	for _, par := range []bool{false, true} {
		name := "sequential"
		if par {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			path, s := synthFact(b, 200000)
			key, err := model.SortKey{{Dim: 0, Lvl: 0}, {Dim: 1, Lvl: 0}}.Normalize(s)
			if err != nil {
				b.Fatal(err)
			}
			out := path + ".sorted"
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := storage.SortFile(path, out, func(x, y *model.Record) bool {
					return key.RecordLess(s, x, y)
				}, storage.SortOptions{ChunkRecords: 8192, Parallel: par})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSingleScan measures the sharded scan at several
// worker counts.
func BenchmarkParallelSingleScan(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			path, s := synthFact(b, 200000)
			c := engineWorkflow(b, s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := aw.RunCompiled(context.Background(), c, aw.FromFile(path), aw.QueryOptions{
					ExecOptions: aw.ExecOptions{Engine: aw.EngineSingleScan, Parallelism: workers},
					TempDir:     filepath.Dir(path),
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res["ratio"].Rows) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkStreamPush measures per-record streaming-session overhead.
func BenchmarkStreamPush(b *testing.B) {
	_, s := synthFact(b, 1000)
	c := engineWorkflow(b, s)
	key, _, err := aw.BestSortKey(c, nil)
	if err != nil {
		b.Fatal(err)
	}
	stream, err := aw.RunStreamCompiled(context.Background(), c, aw.StreamOptions{SortKey: key})
	if err != nil {
		b.Fatal(err)
	}
	rec := aw.Record{Dims: make([]int64, 4), Ms: []float64{1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Monotone in every dimension, so any sort key is respected.
		v := int64(i / 16)
		rec.Dims[0], rec.Dims[1], rec.Dims[2], rec.Dims[3] = v, v, v, v
		if err := stream.Push(&rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAggregatorUpdate measures the hot aggregation path.
func BenchmarkAggregatorUpdate(b *testing.B) {
	for _, k := range []aw.AggKind{aw.Count, aw.Sum, aw.Avg, aw.Var} {
		b.Run(k.String(), func(b *testing.B) {
			a := k.New()
			for i := 0; i < b.N; i++ {
				a.Update(float64(i & 1023))
			}
			_ = a.Final()
		})
	}
}

// BenchmarkKeyEncode measures region-key construction, the inner loop
// of every engine.
func BenchmarkKeyEncode(b *testing.B) {
	_, s := synthFact(b, 1000)
	g, err := s.Normalize(aw.Gran{1, 1, aw.LevelALL, aw.LevelALL})
	if err != nil {
		b.Fatal(err)
	}
	codec := model.NewKeyCodec(s, g)
	rng := rand.New(rand.NewSource(1))
	dims := make([][]int64, 256)
	for i := range dims {
		dims[i] = []int64{rng.Int63n(1000), rng.Int63n(1000), rng.Int63n(1000), rng.Int63n(1000)}
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(codec.FromBase(dims[i&255]))
	}
	if sink == 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkWorkflowCompile measures compilation of a mid-size
// workflow, which should be negligible next to evaluation.
func BenchmarkWorkflowCompile(b *testing.B) {
	_, s := synthFact(b, 1000)
	all := aw.LevelALL
	for i := 0; i < b.N; i++ {
		w := aw.NewWorkflow(s)
		for j := 0; j < 8; j++ {
			w.Basic(fmt.Sprintf("b%d", j), aw.Gran{1, aw.Level(j % 3), all, all}, aw.Count, -1)
		}
		for j := 0; j < 8; j++ {
			w.Rollup(fmt.Sprintf("r%d", j), aw.Gran{2, all, all, all}, fmt.Sprintf("b%d", j), aw.Sum)
		}
		if _, err := w.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}
