module awra

go 1.22
