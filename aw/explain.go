package aw

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"awra/internal/exec/multipass"
	"awra/internal/obs"
	"awra/internal/opt"
	"awra/internal/plan"
)

// Profile is the EXPLAIN / EXPLAIN ANALYZE view of a query: the
// workflow DAG annotated with optimizer estimates and — after an
// analyzed run — the per-node actuals the engines published. Render it
// with String (the tree awquery prints) or serialize it as JSON.
type Profile struct {
	// Engine is the evaluation engine ("sortscan", "shardscan", ...).
	// For a plain Explain of EngineAuto it is the engine the Section 6
	// decision procedure predicts; for ExplainAnalyze it is the engine
	// that actually ran (the auto decision, plus any multipass fallback).
	Engine string `json:"engine"`
	// Strategy is the optimizer's Section 6 decision ("singlescan",
	// "sortscan", "multipass"); empty when the engine was forced.
	Strategy string `json:"strategy,omitempty"`
	// SortKey is the chosen (or overridden) sort order, when the engine
	// sorts.
	SortKey string `json:"sort_key,omitempty"`
	// EstBytes is the streaming plan's estimated peak footprint.
	EstBytes float64 `json:"est_bytes,omitempty"`
	// SingleScanBytes / SortScanBytes are the Section 6 decision inputs
	// (EngineAuto only).
	SingleScanBytes float64 `json:"single_scan_bytes,omitempty"`
	SortScanBytes   float64 `json:"sort_scan_bytes,omitempty"`
	// Passes is the multi-pass plan (multipass engine only): each entry
	// names the pass's sort key and the basic measures it evaluates.
	Passes []string `json:"passes,omitempty"`
	// Nodes holds one entry per workflow measure, in topological order.
	Nodes []ProfileNode `json:"nodes"`
	// Analyzed reports whether actuals are present (EXPLAIN ANALYZE).
	Analyzed bool `json:"analyzed,omitempty"`
	// Counters and Gauges are the query's final metric values
	// (ExplainAnalyze only).
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
}

// ProfileNode is one measure node of the profile.
type ProfileNode struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Gran    string   `json:"gran"`
	Sources []string `json:"sources,omitempty"`
	Hidden  bool     `json:"hidden,omitempty"`
	// Order is the node's finalized-entry stream order under the chosen
	// sort key (plan-based engines).
	Order string `json:"order,omitempty"`
	// EstCells is the optimizer's live-cell estimate for the node;
	// HasEstimate distinguishes "estimated zero" from "no estimate"
	// (engines without an optimizer pass).
	EstCells    float64 `json:"est_cells,omitempty"`
	HasEstimate bool    `json:"has_estimate,omitempty"`
	// EstSource labels where the estimate came from: "assumed" (paper
	// defaults), "collected" (scanned/supplied cardinalities), or
	// "measured" (a previous completed run's true cell counts via the
	// query history).
	EstSource string `json:"est_source,omitempty"`
	// Pass is the 1-based multi-pass pass that evaluates the node
	// (multipass basics only; 0 otherwise).
	Pass int `json:"pass,omitempty"`
	// Actual holds the engine-published per-node stats (ExplainAnalyze
	// only; nil in a plain EXPLAIN).
	Actual *NodeStats `json:"actual,omitempty"`
}

// Result is an analyzed query outcome: the measure tables plus the
// execution profile. Returned by ExplainAnalyze.
type Result struct {
	Tables  Results
	Profile *Profile
}

// Estimate-source labels used in ProfileNode.EstSource and
// plan.Node.EstSource.
const (
	SourceAssumed   = plan.SourceAssumed
	SourceCollected = plan.SourceCollected
	SourceMeasured  = plan.SourceMeasured
)

// Explain renders the query plan without running it: the engine the
// options select (resolving EngineAuto with the Section 6 decision
// procedure), the optimizer's sort key and footprint estimates, and
// per-node live-cell estimates. BaseCards/MemoryBudget/SortKey/Engine
// from opts feed the estimate exactly as Run would use them. With no
// collection at hand, History-backed measured statistics cannot apply;
// use ExplainFor to plan against a specific input.
func Explain(c *Compiled, opts ...QueryOptions) (*Profile, error) {
	return ExplainFor(c, Input{}, opts...)
}

// ExplainFor is Explain with the target collection known: when
// opts.History holds measured statistics for this input (from earlier
// completed runs), the plan uses them and labels those nodes
// "measured" — exactly as Run would plan.
func ExplainFor(c *Compiled, in Input, opts ...QueryOptions) (*Profile, error) {
	var o QueryOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	engine := o.Engine
	st := planStats(c, in, &o)
	p := &Profile{}
	if engine == EngineAuto {
		d, err := opt.Choose(c, st, float64(o.MemoryBudget), nil)
		if err != nil {
			return nil, err
		}
		p.Strategy = d.Strategy.String()
		p.SingleScanBytes = d.SingleScanBytes
		p.SortScanBytes = d.SortScanBytes
		switch d.Strategy {
		case opt.StrategySingleScan:
			engine = EngineSingleScan
		case opt.StrategySortScan:
			engine = EngineSortScan
			if o.SortKey == nil {
				o.SortKey = d.Key
			}
			if o.parallelism() > 1 {
				if nk, err := SortKey(o.SortKey).Normalize(c.Schema); err == nil {
					if _, err := opt.ShardPrefix(c, nk); err == nil {
						engine = EngineShardScan
					}
				}
			}
		default:
			engine = EngineMultiPass
		}
	}
	o.Engine = engine
	p.Engine = engine.String()
	if err := buildEstimates(c, &o, st, p); err != nil {
		return nil, err
	}
	return p, nil
}

// buildEstimates fills p.Nodes (and the key/footprint headline fields)
// for the resolved engine in o.Engine.
func buildEstimates(c *Compiled, o *QueryOptions, st *plan.Stats, p *Profile) error {
	nodes := make([]ProfileNode, len(c.Measures))
	for i, m := range c.Measures {
		nodes[i] = ProfileNode{
			Name:   m.Name,
			Kind:   m.Kind.String(),
			Gran:   c.Schema.GranString(m.Gran),
			Hidden: m.Hidden,
		}
		for _, si := range m.Sources {
			nodes[i].Sources = append(nodes[i].Sources, c.Measures[si].Name)
		}
		// The cell-providing base measure is a real arc of the DAG
		// (fromparent/sibling); show it as a source unless it already is
		// one (combine reuses its first source).
		if m.Base >= 0 {
			base := c.Measures[m.Base].Name
			seen := false
			for _, s := range nodes[i].Sources {
				if s == base {
					seen = true
				}
			}
			if !seen {
				nodes[i].Sources = append(nodes[i].Sources, base)
			}
		}
	}

	switch o.Engine {
	case EngineSortScan, EngineShardScan, EnginePartScan:
		key := o.SortKey
		if key == nil {
			ch, err := opt.Best(c, st)
			if err != nil {
				return err
			}
			key = ch.Key
		}
		nk, err := SortKey(key).Normalize(c.Schema)
		if err != nil {
			return err
		}
		pl, err := plan.Build(c, nk, st)
		if err != nil {
			return err
		}
		p.SortKey = pl.SortKey.String(c.Schema)
		p.EstBytes = pl.EstBytes
		for i := range nodes {
			nodes[i].EstCells = pl.Nodes[i].EstCells
			nodes[i].HasEstimate = true
			nodes[i].EstSource = pl.Nodes[i].EstSource
			nodes[i].Order = pl.Nodes[i].OutOrder.String(c.Schema)
		}
	case EngineMultiPass:
		passes, err := multipass.PlanPasses(c, float64(o.MemoryBudget), st)
		if err != nil {
			return err
		}
		for pi, pass := range passes {
			p.Passes = append(p.Passes, fmt.Sprintf("pass %d: key %s, est %.0f bytes, measures %s",
				pi+1, pass.SortKey.String(c.Schema), pass.EstBytes, strings.Join(pass.Measures, ",")))
			pl, err := plan.Build(c, pass.SortKey, st)
			if err != nil {
				return err
			}
			for _, name := range pass.Measures {
				i, err := c.Index(name)
				if err != nil {
					return err
				}
				nodes[i].EstCells = pl.Nodes[i].EstCells
				nodes[i].HasEstimate = true
				nodes[i].EstSource = pl.Nodes[i].EstSource
				nodes[i].Order = pl.Nodes[i].OutOrder.String(c.Schema)
				nodes[i].Pass = pi + 1
			}
		}
		if len(passes) > 0 {
			p.SortKey = passes[0].SortKey.String(c.Schema)
		}
	case EngineSingleScan:
		// No sort, no early flushing: every node holds its full region
		// count at once.
		for i := range nodes {
			nodes[i].EstCells, nodes[i].EstSource = opt.MeasureCellsInfo(c, i, st)
			nodes[i].HasEstimate = true
		}
	}
	p.Nodes = nodes
	return nil
}

// freezeStats resolves the stats' dynamic measured-statistics lookup
// into an immutable per-signature snapshot, so estimates rebuilt after
// a run match what the planner saw before it.
func freezeStats(c *Compiled, st *plan.Stats) *plan.Stats {
	if st == nil || st.Measured == nil {
		return st
	}
	cache := make(map[string]float64, len(c.Measures))
	for i := range c.Measures {
		sig := c.NodeSignature(i)
		if cells, ok := st.Measured(sig); ok && cells > 0 {
			cache[sig] = cells
		}
	}
	cp := *st
	cp.Measured = func(sig string) (float64, bool) {
		v, ok := cache[sig]
		return v, ok
	}
	return &cp
}

// ExplainAnalyze compiles the workflow (if needed), runs it, and
// returns the tables together with a Profile whose nodes carry the
// actual per-node stats the engines published — records in/out, cells
// created/finalized, live-cell high-water mark, flush batches, and
// per-arc watermark behavior — next to the optimizer's estimates.
func ExplainAnalyze(ctx context.Context, w *Workflow, in Input, opts ...QueryOptions) (*Result, error) {
	c, err := w.Compile()
	if err != nil {
		return nil, err
	}
	return ExplainAnalyzeCompiled(ctx, c, in, opts...)
}

// ExplainAnalyzeCompiled is ExplainAnalyze for a compiled workflow.
func ExplainAnalyzeCompiled(ctx context.Context, c *Compiled, in Input, opts ...QueryOptions) (*Result, error) {
	var o QueryOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Recorder == nil {
		o.Recorder = NewRecorder()
	}
	// Freeze the measured-statistics view before running: the run
	// itself appends to the history, and the profile must reflect the
	// estimates the planner actually saw, not post-run knowledge.
	st := freezeStats(c, planStats(c, in, &o))
	tables, engine, err := runResolved(ctx, c, in, o)
	if err != nil {
		return nil, err
	}
	// Rebuild the estimate view under the engine that actually ran, then
	// overlay the recorder's per-node actuals.
	eo := o
	eo.Engine = engine
	p := &Profile{Engine: engine.String(), Analyzed: true}
	if o.Engine == EngineAuto {
		if d, err := opt.Choose(c, st, float64(o.MemoryBudget), nil); err == nil {
			p.Strategy = d.Strategy.String()
			p.SingleScanBytes = d.SingleScanBytes
			p.SortScanBytes = d.SortScanBytes
		}
	}
	if err := buildEstimates(c, &eo, st, p); err != nil {
		return nil, err
	}
	snap := o.Recorder.Snapshot()
	p.Counters, p.Gauges = snap.Counters, snap.Gauges
	byName := make(map[string]*obs.NodeStats, len(snap.Nodes))
	for i := range snap.Nodes {
		byName[snap.Nodes[i].Node] = &snap.Nodes[i]
	}
	for i := range p.Nodes {
		ns := byName[p.Nodes[i].Name]
		if ns == nil && strings.HasPrefix(p.Nodes[i].Name, "__") {
			// Multipass re-declares hidden bases under an exported name.
			ns = byName["hidden"+p.Nodes[i].Name[2:]]
		}
		if ns != nil {
			cp := *ns
			p.Nodes[i].Actual = &cp
		}
	}
	return &Result{Tables: tables, Profile: p}, nil
}

// String renders the profile as a tree rooted at the workflow's output
// measures, each node showing the optimizer estimate and (when
// analyzed) the actuals, with watermark arcs as indented sub-lines.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine %s", p.Engine)
	if p.Strategy != "" {
		fmt.Fprintf(&b, " (auto: %s; singlescan %.0f B vs sortscan %.0f B)",
			p.Strategy, p.SingleScanBytes, p.SortScanBytes)
	}
	b.WriteByte('\n')
	if p.SortKey != "" {
		fmt.Fprintf(&b, "sort key %s", p.SortKey)
		if p.EstBytes > 0 {
			fmt.Fprintf(&b, ", est %.0f bytes", p.EstBytes)
		}
		b.WriteByte('\n')
	}
	for _, ps := range p.Passes {
		fmt.Fprintf(&b, "%s\n", ps)
	}

	byName := make(map[string]*ProfileNode, len(p.Nodes))
	consumed := make(map[string]bool)
	for i := range p.Nodes {
		byName[p.Nodes[i].Name] = &p.Nodes[i]
		for _, s := range p.Nodes[i].Sources {
			consumed[s] = true
		}
	}
	printed := make(map[string]bool)
	tw := nodeTableWriter{b: &b}
	var walk func(name, indent string)
	walk = func(name, indent string) {
		n := byName[name]
		if n == nil {
			return
		}
		if printed[name] {
			fmt.Fprintf(&b, "%s- %s (shown above)\n", indent, name)
			return
		}
		printed[name] = true
		tw.writeNode(n, indent)
		for _, s := range n.Sources {
			walk(s, indent+"  ")
		}
		if n.Kind == "basic" {
			fmt.Fprintf(&b, "%s  - fact\n", indent)
		}
	}
	// Roots: nodes no other node consumes (the workflow's sinks), in
	// reverse topological order so composites print above their inputs.
	var roots []string
	for i := len(p.Nodes) - 1; i >= 0; i-- {
		if !consumed[p.Nodes[i].Name] {
			roots = append(roots, p.Nodes[i].Name)
		}
	}
	sort.Strings(roots)
	for _, r := range roots {
		walk(r, "")
	}
	return b.String()
}

// nodeTableWriter renders one profile node's estimate-vs-actual
// columns. It is the single rendering path for both EXPLAIN (estimates
// only) and EXPLAIN ANALYZE (estimates plus engine actuals), so the
// two views cannot drift apart.
type nodeTableWriter struct {
	b *strings.Builder
}

func (tw nodeTableWriter) writeNode(n *ProfileNode, indent string) {
	fmt.Fprintf(tw.b, "%s- %s [%s] gran=(%s)", indent, n.Name, n.Kind, n.Gran)
	if n.Pass > 0 {
		fmt.Fprintf(tw.b, " pass=%d", n.Pass)
	}
	if n.HasEstimate {
		fmt.Fprintf(tw.b, " est_cells=%.0f", n.EstCells)
		if n.EstSource != "" {
			fmt.Fprintf(tw.b, " (%s)", n.EstSource)
		}
	}
	a := n.Actual
	if a == nil {
		tw.b.WriteByte('\n')
		return
	}
	fmt.Fprintf(tw.b, "\n%s    actual: in=%d out=%d cells=%d/%d hwm=%d",
		indent, a.RecordsIn, a.RecordsOut, a.CellsCreated, a.CellsFinalized, a.LiveCellsHWM)
	if a.FlushBatches > 0 {
		fmt.Fprintf(tw.b, " flushes=%d", a.FlushBatches)
	}
	tw.b.WriteByte('\n')
	for _, arc := range a.Arcs {
		fmt.Fprintf(tw.b, "%s    arc %s: advances=%d held_back=%d\n",
			indent, arc.Label, arc.Advances, arc.HeldBack)
	}
}
