package aw_test

import (
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"awra/aw"
)

// profileWorkflow is a small rollup chain that every engine — including
// shardscan (nests in a t:Day-leading key) and partscan (partitionable
// on t at Day level) — can evaluate.
func profileWorkflow(t *testing.T, s *aw.Schema) *aw.Workflow {
	t.Helper()
	gDayIP, err := s.MakeGran(map[string]string{"t": "Day", "U": "IP"})
	if err != nil {
		t.Fatal(err)
	}
	gDay, err := s.MakeGran(map[string]string{"t": "Day"})
	if err != nil {
		t.Fatal(err)
	}
	return aw.NewWorkflow(s).
		Basic("srcDay", gDayIP, aw.Count, -1).
		Rollup("dayCount", gDay, "srcDay", aw.Count)
}

func TestExplainEstimates(t *testing.T) {
	s := attackSchema(t)
	c, err := profileWorkflow(t, s).Compile()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := aw.Explain(c, aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EngineSortScan}})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Engine != "sortscan" || prof.SortKey == "" || prof.Analyzed {
		t.Fatalf("explain headline: %+v", prof)
	}
	if len(prof.Nodes) != 2 {
		t.Fatalf("want 2 nodes, got %d", len(prof.Nodes))
	}
	for _, n := range prof.Nodes {
		if !n.HasEstimate {
			t.Errorf("node %s missing estimate", n.Name)
		}
		if n.Actual != nil {
			t.Errorf("plain EXPLAIN must not carry actuals (%s)", n.Name)
		}
	}
	out := prof.String()
	for _, want := range []string{"engine sortscan", "sort key", "dayCount", "srcDay", "est_cells=", "- fact"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}

	// EngineAuto surfaces the Section 6 decision.
	prof, err = aw.Explain(c, aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EngineAuto}})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Strategy == "" {
		t.Errorf("auto explain should report the optimizer strategy: %+v", prof)
	}
	if _, err := json.Marshal(prof); err != nil {
		t.Fatalf("profile must serialize: %v", err)
	}
}

func TestExplainAnalyzeAllEngines(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(4000, 7)
	dir := t.TempDir()
	fact := filepath.Join(dir, "fact.rec")
	if err := aw.WriteRecords(fact, 4, 0, recs); err != nil {
		t.Fatal(err)
	}
	day := aw.Level(2) // Second -> Hour -> Day
	cases := []struct {
		name    string
		opts    aw.QueryOptions
		hasEst  bool // engine runs an optimizer/plan pass
		hasArcs bool // engine streams through watermark arcs
	}{
		{"sortscan", aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EngineSortScan}}, true, true},
		{"shardscan", aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EngineShardScan, Parallelism: 2}}, true, true},
		{"singlescan", aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EngineSingleScan}}, true, false},
		{"multipass", aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EngineMultiPass}}, true, true},
		{"partscan", aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EnginePartScan},
			PartitionDim: 0, PartitionLevel: day, Partitions: 2}, true, true},
		{"relational", aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EngineRelational}}, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.opts
			o.TempDir = dir
			r, err := aw.ExplainAnalyze(context.Background(), profileWorkflow(t, s), aw.FromFile(fact), o)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Tables["dayCount"].Rows) == 0 {
				t.Fatal("empty result")
			}
			p := r.Profile
			if !p.Analyzed || p.Engine != tc.name {
				t.Fatalf("profile engine/analyzed: %+v", p)
			}
			var basic *aw.ProfileNode
			for i := range p.Nodes {
				n := &p.Nodes[i]
				if n.Actual == nil {
					t.Fatalf("node %s has no actuals", n.Name)
				}
				if n.Name == "srcDay" {
					basic = n
				}
			}
			if basic == nil {
				t.Fatal("basic node missing")
			}
			// Every engine scans the whole file exactly once into the
			// basic measure (shards/partitions/passes merge their counts).
			if basic.Actual.RecordsIn != int64(len(recs)) {
				t.Errorf("basic records in: got %d, want %d", basic.Actual.RecordsIn, len(recs))
			}
			if basic.Actual.CellsFinalized == 0 {
				t.Errorf("basic cells finalized missing: %+v", basic.Actual)
			}
			if tc.hasEst && !basic.HasEstimate {
				t.Errorf("engine %s should carry optimizer estimates", tc.name)
			}
			if tc.hasArcs {
				if len(basic.Actual.Arcs) == 0 || basic.Actual.Arcs[0].Advances == 0 {
					t.Errorf("basic watermark arcs missing: %+v", basic.Actual)
				}
			}
			// The rendered tree shows estimate and actual columns side
			// by side.
			out := p.String()
			if !strings.Contains(out, "actual:") {
				t.Errorf("rendered profile missing actuals:\n%s", out)
			}
		})
	}
}

func TestInflightQueryAppearsAndDisappears(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(250000, 9)
	w := profileWorkflow(t, s)

	done := make(chan error, 1)
	go func() {
		_, err := aw.Run(context.Background(), w, aw.FromRecords(recs))
		done <- err
	}()

	var seen []aw.QuerySnapshot
	var qid int64
poll:
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			break poll
		default:
			for _, q := range aw.InflightQueries() {
				if strings.Contains(q.Label, "dayCount") {
					if qid == 0 {
						qid = q.ID
					}
					if q.ID == qid {
						seen = append(seen, q)
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
	}
	if len(seen) == 0 {
		t.Fatal("running query never appeared in InflightQueries")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].Progress < seen[i-1].Progress {
			t.Fatalf("progress regressed: %v -> %v", seen[i-1].Progress, seen[i].Progress)
		}
		if seen[i].ElapsedUs < seen[i-1].ElapsedUs {
			t.Fatalf("elapsed regressed")
		}
	}
	last := seen[len(seen)-1]
	if last.ID == 0 {
		t.Error("query snapshot missing ID")
	}
	// Completed queries leave the registry.
	for _, q := range aw.InflightQueries() {
		if q.ID == qid {
			t.Fatal("finished query still registered")
		}
	}
}
