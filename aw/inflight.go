package aw

import (
	"io"

	"awra/internal/obs"
)

// In-flight query registry re-exports. Every Run/RunCompiled call
// registers itself in a process-global registry for its duration, so
// operators can list live queries — ID, engine, current phase,
// per-shard/partition record progress (exact percentages: fixed-width
// rows make totals known from the file header), elapsed time, and live
// metric snapshots. Streaming sessions are long-lived by design and do
// not register.
type (
	// QuerySnapshot is one in-flight query as reported by
	// InflightQueries.
	QuerySnapshot = obs.QuerySnapshot
	// WorkerProgress is per-shard/partition/pass progress inside a
	// QuerySnapshot.
	WorkerProgress = obs.WorkerProgress
	// NodeStats holds one measure node's per-node engine stats.
	NodeStats = obs.NodeStats
	// ArcStats holds per-arc watermark behavior inside NodeStats.
	ArcStats = obs.ArcStats
)

// InflightQueries snapshots the process-global registry of running
// queries, sorted by query ID. Progress per query is monotonically
// non-decreasing across successive snapshots.
func InflightQueries() []QuerySnapshot {
	return obs.DefaultInflight.Snapshot()
}

// WriteInflightJSON writes the registry snapshot as indented JSON —
// the payload served at /debug/aw/queries by awbench -httpaddr.
func WriteInflightJSON(w io.Writer) error {
	return obs.DefaultInflight.WriteJSON(w)
}
