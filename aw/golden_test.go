package aw_test

import (
	"context"
	"path/filepath"
	"testing"

	"awra/aw"
)

// TestGoldenPipeline pins the exact results of a fixed workload through
// the full file-based pipeline: deterministic dataset -> sort/scan
// query -> save -> reload -> compare against hand-computed values. It
// is a regression tripwire for the storage format, the engines, and
// the result store together.
func TestGoldenPipeline(t *testing.T) {
	schema := aw.MustSchema([]*aw.Dimension{
		aw.TimeDimension("t"),
		aw.IPv4Dimension("U"),
	})

	// Fixed, hand-checkable dataset: hour h gets h+1 packets from
	// source 1.2.3.(h%3), for h in 0..5 on 2004-03-01.
	var recs []aw.Record
	for h := 0; h < 6; h++ {
		for p := 0; p <= h; p++ {
			recs = append(recs, aw.Record{
				Dims: []int64{
					aw.SecondCode(2004, 3, 1, h, p, 0),
					aw.IPCode(1, 2, 3, h%3),
				},
				Ms: []float64{},
			})
		}
	}
	dir := t.TempDir()
	fact := filepath.Join(dir, "golden.rec")
	if err := aw.WriteRecords(fact, 2, 0, recs); err != nil {
		t.Fatal(err)
	}

	gHour, err := schema.MakeGran(map[string]string{"t": "Hour"})
	if err != nil {
		t.Fatal(err)
	}
	gSrc, err := schema.MakeGran(map[string]string{"U": "IP"})
	if err != nil {
		t.Fatal(err)
	}
	wf := aw.NewWorkflow(schema).
		Basic("hourly", gHour, aw.Count, -1).
		Basic("bySource", gSrc, aw.Count, -1).
		Sliding("trail2", "hourly", aw.Sum, []aw.Window{{Dim: 0, Lo: -1, Hi: 0}}).
		Rollup("peak", schema.AllGran(), "trail2", aw.Max)

	res, err := aw.Run(context.Background(), wf, aw.FromFile(fact), aw.QueryOptions{TempDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	check := func(tbl *aw.Table, wantByLabel map[string]float64) {
		t.Helper()
		if len(tbl.Rows) != len(wantByLabel) {
			t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(wantByLabel))
		}
		for k, v := range tbl.Rows {
			label := tbl.Codec.Format(k)
			want, ok := wantByLabel[label]
			if !ok {
				t.Fatalf("unexpected region %q", label)
			}
			if v != want {
				t.Fatalf("%q = %v, want %v", label, v, want)
			}
		}
	}

	check(res["hourly"], map[string]float64{
		"t:2004-03-01 00h": 1, "t:2004-03-01 01h": 2, "t:2004-03-01 02h": 3,
		"t:2004-03-01 03h": 4, "t:2004-03-01 04h": 5, "t:2004-03-01 05h": 6,
	})
	// Sources: h%3 cycles, so .0 gets hours 0,3 -> 1+4=5 packets;
	// .1 gets hours 1,4 -> 2+5=7; .2 gets hours 2,5 -> 3+6=9.
	check(res["bySource"], map[string]float64{
		"U:1.2.3.0": 5, "U:1.2.3.1": 7, "U:1.2.3.2": 9,
	})
	// Two-hour trailing sums: 1, 3, 5, 7, 9, 11.
	check(res["trail2"], map[string]float64{
		"t:2004-03-01 00h": 1, "t:2004-03-01 01h": 3, "t:2004-03-01 02h": 5,
		"t:2004-03-01 03h": 7, "t:2004-03-01 04h": 9, "t:2004-03-01 05h": 11,
	})
	check(res["peak"], map[string]float64{"ALL": 11})

	// Round trip through the result store.
	store := filepath.Join(dir, "store")
	if err := aw.SaveResults(store, schema, res); err != nil {
		t.Fatal(err)
	}
	back, err := aw.LoadResults(store, schema)
	if err != nil {
		t.Fatal(err)
	}
	for name, tbl := range res {
		if !tbl.Equal(back[name], 0) {
			t.Fatalf("measure %s changed across save/load", name)
		}
	}

	// And the relational baseline agrees on the golden values.
	rel, err := aw.Run(context.Background(), wf, aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{Engine: aw.EngineRelational},
		TempDir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, tbl := range res {
		if !tbl.Equal(rel[name], 0) {
			t.Fatalf("relational baseline disagrees on %s", name)
		}
	}
}
