package aw_test

// Flight-recorder behavior at the library layer: every run commits a
// trace under its (given or generated) trace ID, pinned traces persist
// into the history directory's traces log, and replay on open restores
// them — slow-query post-mortems survive restarts.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"awra/aw"
)

func TestFlightTraceCommittedAndPersisted(t *testing.T) {
	s := attackSchema(t)
	fact := writeAttackFact(t, attackRecords(3000, 41))
	dir := t.TempDir()
	h, err := aw.OpenHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := busyWorkflow(t, s, 1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	tid := aw.NewTraceID()
	o := aw.QueryOptions{
		ExecOptions: aw.ExecOptions{History: h, TraceID: tid, RequestID: "req-flight", MaxResultRows: 1},
		TempDir:     filepath.Dir(fact),
	}
	_, err = aw.RunCompiled(context.Background(), c, aw.FromFile(fact), o)
	if !errors.Is(err, aw.ErrBudgetExceeded) {
		t.Fatalf("want a budget trip, got %v", err)
	}

	// The trace is retrievable by ID, pinned, and fully assembled.
	tr, ok := aw.LookupTrace(tid)
	if !ok {
		t.Fatalf("budget-tripped trace %s not retained", tid)
	}
	if !tr.Pinned || !strings.Contains(strings.Join(tr.PinReasons, ","), "budget") {
		t.Fatalf("pinned=%v reasons=%v, want pinned for budget", tr.Pinned, tr.PinReasons)
	}
	if tr.RequestID != "req-flight" || len(tr.Attempts) != 1 {
		t.Fatalf("trace = %+v", tr)
	}
	if tr.Attempts[0].Span == nil || tr.Attempts[0].Span.Attrs["trace_id"] != tid {
		t.Fatalf("attempt span missing trace_id attr: %+v", tr.Attempts[0].Span)
	}
	if len(tr.Attempts[0].Nodes) == 0 {
		t.Fatal("attempt carries no node profile")
	}

	// The history record cross-references the trace.
	recent := h.Recent(1)
	if len(recent) != 1 || recent[0].TraceID != tid {
		t.Fatalf("history record trace_id = %q, want %q", recent[0].TraceID, tid)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	// The pinned trace was persisted beside the run log.
	b, err := os.ReadFile(filepath.Join(dir, "traces.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(tid)) {
		t.Fatalf("traces.jsonl does not contain trace %s", tid)
	}

	// "Restart": the process-global ring has never seen tid2, so finding
	// it after reopening proves the traces log was replayed. (Rewriting
	// the ID simulates an entry from a previous process's lifetime.)
	tid2 := aw.NewTraceID()
	if err := os.WriteFile(filepath.Join(dir, "traces.jsonl"),
		bytes.ReplaceAll(b, []byte(tid), []byte(tid2)), 0o644); err != nil {
		t.Fatal(err)
	}
	h2, err := aw.OpenHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	got, ok := aw.LookupTrace(tid2)
	if !ok {
		t.Fatalf("replayed trace %s not restored into the flight ring", tid2)
	}
	if !got.Pinned || got.RequestID != "req-flight" || len(got.Attempts) != 1 {
		t.Fatalf("restored trace = %+v", got)
	}
}

func TestFlightTraceGeneratedWhenUnset(t *testing.T) {
	s := attackSchema(t)
	fact := writeAttackFact(t, attackRecords(500, 43))
	c, err := busyWorkflow(t, s, 1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	// No TraceID, no History: the run must still mint an ID (visible on
	// the query span) and commit without error.
	rec := aw.NewRecorder()
	o := aw.QueryOptions{
		ExecOptions: aw.ExecOptions{Recorder: rec},
		TempDir:     filepath.Dir(fact),
	}
	if _, err := aw.RunCompiled(context.Background(), c, aw.FromFile(fact), o); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if len(snap.Spans) == 0 {
		t.Fatal("no query span recorded")
	}
	id := snap.Spans[0].Attrs["trace_id"]
	if len(id) != 32 {
		t.Fatalf("query span trace_id attr %q is not a generated 32-hex ID", id)
	}
}
