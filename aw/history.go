package aw

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"awra/internal/obs"
	"awra/internal/qguard"
	"awra/internal/qlog"
)

// HistoryRecord is one completed query run in the persistent history
// log (see internal/qlog for the field semantics).
type HistoryRecord = qlog.Record

// History outcome labels (HistoryRecord.Outcome).
const (
	OutcomeOK       = qlog.OutcomeOK
	OutcomeCanceled = qlog.OutcomeCanceled
	OutcomeBudget   = qlog.OutcomeBudget
	OutcomeError    = qlog.OutcomeError
	// OutcomeCacheHit marks a query answered from the serve layer's
	// result cache. It never feeds measured statistics (the store only
	// folds OutcomeOK), so zero-work cache hits cannot skew per-node
	// cardinalities.
	OutcomeCacheHit = qlog.OutcomeCacheHit
)

// historyRecent bounds the in-memory ring of recent runs kept for
// reporting; the on-disk log holds more (until rotation drops it).
const historyRecent = 512

// History is the persistent query-history subsystem: an append-only
// JSONL log of completed runs, a measured-statistics store derived
// from it, and latency/throughput histograms aggregated across runs.
//
// Open it once per process (OpenHistory) and share it through
// ExecOptions.History: every Run/RunCompiled completion — success,
// budget trip, cancellation, or error — appends one record, and the
// planner consults the store so a workflow's second run on the same
// collection plans from measured cell counts instead of estimates
// (EXPLAIN then labels those nodes "measured").
//
// All methods are safe for concurrent use; a nil *History disables
// history without branching at call sites.
type History struct {
	log *qlog.Log
	// traces is the pinned-trace sibling log (traces.jsonl): full
	// flight-recorder entries for errored, retried, budget-tripped, and
	// slow queries, replayed into the flight ring on open.
	traces *qlog.Log
	store  *qlog.Store
	// rec aggregates the cross-run histograms (query/phase latency,
	// rows/sec); replayed on open so percentiles survive restarts.
	rec *obs.Recorder

	mu     sync.Mutex
	recent []*HistoryRecord // oldest first, capped at historyRecent
	total  int64            // all records seen (replayed + appended)
}

// OpenHistory opens (creating if needed) a history directory and
// replays its log: the measured-statistics store, the recent-run ring,
// and the latency histograms all resume where the last process left
// off.
func OpenHistory(dir string) (*History, error) {
	l, err := qlog.Open(dir)
	if err != nil {
		return nil, err
	}
	tl, err := qlog.OpenNamed(dir, tracesLogName)
	if err != nil {
		l.Close()
		return nil, err
	}
	h := &History{log: l, traces: tl, store: qlog.NewStore(), rec: obs.New()}
	if _, err := qlog.Replay(dir, func(r *HistoryRecord) { h.absorb(r) }); err != nil {
		l.Close()
		tl.Close()
		return nil, err
	}
	// Pinned flight traces survive restarts: restore them into the
	// in-memory ring so /debug/aw/traces/{id} answers for past slow or
	// failed queries immediately.
	replayTraces(dir)
	return h, nil
}

// absorb folds one record into the in-memory views (store, ring,
// histograms) without touching the log. A record carrying the
// RequestID of an earlier absorbed record supersedes it: the retried
// request keeps one entry (the final outcome) in the recent ring and
// the total, so server-side retries never double-log history. The
// dedup window is the ring; cross-run histograms still observe every
// attempt, since each attempt's latency was really paid.
func (h *History) absorb(r *HistoryRecord) {
	h.store.Observe(r)
	h.mu.Lock()
	if r.RequestID != "" {
		for i := len(h.recent) - 1; i >= 0; i-- {
			if h.recent[i].RequestID == r.RequestID {
				h.recent = append(h.recent[:i], h.recent[i+1:]...)
				h.total--
				break
			}
		}
	}
	h.total++
	h.recent = append(h.recent, r)
	if len(h.recent) > historyRecent {
		h.recent = h.recent[len(h.recent)-historyRecent:]
	}
	h.mu.Unlock()
	h.rec.Histogram(obs.HQueryLatencyUs, "engine", r.Engine).Observe(r.DurationUs)
	for phase, us := range r.Phases {
		h.rec.Histogram(obs.HPhaseLatencyUs, "phase", phase).Observe(us)
	}
	if r.RecordsScanned > 0 && r.DurationUs > 0 {
		h.rec.Histogram(obs.HRowsPerSec, "engine", r.Engine).
			Observe(r.RecordsScanned * 1e6 / r.DurationUs)
	}
}

// Append persists one record and folds it into the in-memory views.
// Nil-safe (drops the record).
func (h *History) Append(r *HistoryRecord) error {
	if h == nil || r == nil {
		return nil
	}
	if r.Time.IsZero() {
		r.Time = time.Now()
	}
	err := h.log.Append(r)
	h.absorb(r)
	return err
}

// Dir returns the history directory. Nil-safe (empty).
func (h *History) Dir() string {
	if h == nil {
		return ""
	}
	return h.log.Dir()
}

// Close closes the underlying logs. Nil-safe.
func (h *History) Close() error {
	if h == nil {
		return nil
	}
	err := h.log.Close()
	if h.traces != nil {
		if terr := h.traces.Close(); err == nil {
			err = terr
		}
	}
	return err
}

// Len returns the total number of records seen (replayed plus
// appended). Nil-safe (0).
func (h *History) Len() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// MeasuredStats returns the number of (collection, node) measured
// statistics available to the planner. Nil-safe (0).
func (h *History) MeasuredStats() int {
	if h == nil {
		return 0
	}
	return h.store.Len()
}

// Recent returns up to n records, newest first. Nil-safe (nil).
func (h *History) Recent(n int) []*HistoryRecord {
	if h == nil || n <= 0 {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if n > len(h.recent) {
		n = len(h.recent)
	}
	out := make([]*HistoryRecord, n)
	for i := 0; i < n; i++ {
		out[i] = h.recent[len(h.recent)-1-i]
	}
	return out
}

// LatencySummary is the per-engine latency distribution derived from
// the history histograms, in microseconds.
type LatencySummary struct {
	Engine string  `json:"engine"`
	Count  int64   `json:"count"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
}

// HistorySummary is the JSON payload of /debug/aw/history: recent runs
// plus per-engine latency percentiles.
type HistorySummary struct {
	Dir           string           `json:"dir,omitempty"`
	TotalRuns     int64            `json:"total_runs"`
	MeasuredStats int              `json:"measured_stats"`
	Latency       []LatencySummary `json:"latency,omitempty"`
	Recent        []*HistoryRecord `json:"recent,omitempty"`
}

// Summary builds the reporting view: the newest n records and the
// per-engine p50/p95/p99 query latencies. Nil-safe (zero summary).
func (h *History) Summary(n int) HistorySummary {
	if h == nil {
		return HistorySummary{}
	}
	s := HistorySummary{Dir: h.Dir(), TotalRuns: h.Len(), MeasuredStats: h.MeasuredStats(), Recent: h.Recent(n)}
	for _, hs := range h.rec.HistogramSnapshots() {
		if hs.Name != obs.HQueryLatencyUs {
			continue
		}
		s.Latency = append(s.Latency, LatencySummary{
			Engine: hs.Labels["engine"],
			Count:  hs.Count,
			P50Us:  hs.Quantile(0.50),
			P95Us:  hs.Quantile(0.95),
			P99Us:  hs.Quantile(0.99),
		})
	}
	return s
}

// WriteJSON writes the summary (newest n runs + latency percentiles)
// as indented JSON — the /debug/aw/history payload. Nil-safe (writes
// an empty summary).
func (h *History) WriteJSON(w io.Writer, n int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h.Summary(n))
}

// WritePrometheus exports the history's cross-run histograms in the
// Prometheus text format. Nil-safe (writes nothing).
func (h *History) WritePrometheus(w io.Writer) error {
	if h == nil {
		return nil
	}
	return h.rec.WritePrometheus(w)
}

// FormatRecent renders the newest n runs as a human-readable table,
// newest first. Nil-safe (empty).
func (h *History) FormatRecent(n int) string {
	recs := h.Recent(n)
	if len(recs) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-10s %-9s %10s %12s  %s\n", "TIME", "ENGINE", "OUTCOME", "DURATION", "RECORDS", "QUERY")
	for _, r := range recs {
		label := r.Label
		if label == "" {
			label = r.QueryFP
		}
		fmt.Fprintf(&b, "%-20s %-10s %-9s %10s %12d  %s\n",
			r.Time.Format("2006-01-02 15:04:05"), r.Engine, r.Outcome,
			(time.Duration(r.DurationUs) * time.Microsecond).String(), r.RecordsScanned, label)
	}
	return b.String()
}

// CollectionFingerprint identifies the dataset a query runs against —
// the CollectionFP of its history records. The serve layer uses it to
// stamp synthesized records (cache hits, shared fan-outs) consistently
// with the records real runs write.
func CollectionFingerprint(in Input) string { return collectionFingerprint(in) }

// collectionFingerprint identifies the dataset a query ran against.
// File inputs hash the absolute path plus size and mtime, so the
// fingerprint changes when the file is rewritten (stale measurements
// stop matching); in-memory inputs get a length-based tag — cheap and
// deterministic, but different slices of equal length collide, which
// is acceptable for advisory statistics.
func collectionFingerprint(in Input) string {
	if in.path == "" {
		return fmt.Sprintf("mem-%d", len(in.recs))
	}
	abs, err := filepath.Abs(in.path)
	if err != nil {
		abs = in.path
	}
	if st, err := os.Stat(in.path); err == nil {
		return "f-" + hashString(fmt.Sprintf("%s|%d|%d", abs, st.Size(), st.ModTime().UnixNano()))
	}
	return "f-" + hashString(abs)
}

func hashString(s string) string {
	f := fnv.New64a()
	f.Write([]byte(s))
	return fmt.Sprintf("%016x", f.Sum64())
}

// outcomeOf classifies a run error into a history outcome.
func outcomeOf(err error) (outcome, msg string) {
	switch {
	case err == nil:
		return qlog.OutcomeOK, ""
	case errors.Is(err, ErrCanceled), errors.Is(err, ErrDeadlineExceeded):
		return qlog.OutcomeCanceled, err.Error()
	case errors.Is(err, ErrBudgetExceeded):
		return qlog.OutcomeBudget, err.Error()
	default:
		return qlog.OutcomeError, err.Error()
	}
}

// buildRecord assembles the history record for one finished run from
// the query span's subtree, the guard's resource stats, and the
// recorder's per-node actuals.
func buildRecord(c *Compiled, in Input, o *QueryOptions, g *qguard.Guard, qSpan *obs.Span, engine Engine, runErr error) *HistoryRecord {
	rec := &HistoryRecord{
		Time:         time.Now(),
		RequestID:    o.RequestID,
		TraceID:      o.TraceID,
		Label:        strings.Join(c.Outputs(), ","),
		QueryFP:      c.Fingerprint(),
		CollectionFP: collectionFingerprint(in),
		Engine:       engine.String(),
	}
	rec.Outcome, rec.Error = outcomeOf(runErr)
	if snap := qSpan.Snapshot(); snap != nil {
		rec.DurationUs = snap.DurationUs
		rec.SortKey = snap.Attrs["sort_key"]
		rec.Phases = phaseDurations(snap)
	}
	if g != nil {
		gs := g.Stats()
		rec.ResultRows = gs.ResultRows
		rec.SpillBytes = gs.SpillBytes
		rec.CorruptRows = gs.CorruptRows
	}
	rec.RecordsScanned = o.Recorder.Counter(obs.MRecordsScanned).Value()

	// Per-node estimate-vs-actual profile, keyed by content signature
	// so the measured store can feed later plans. Estimate provenance
	// mirrors what plan.Build decided for this run.
	st := planStats(c, in, o)
	byName := map[string]*obs.NodeStats{}
	nodes := o.Recorder.NodeStats()
	for i := range nodes {
		byName[nodes[i].Node] = &nodes[i]
	}
	for i, m := range c.Measures {
		ns := byName[m.Name]
		if ns == nil && strings.HasPrefix(m.Name, "__") {
			// Multipass re-declares hidden bases under an exported name.
			ns = byName["hidden"+m.Name[2:]]
		}
		np := qlog.NodeProfile{Node: m.Name, Sig: c.NodeSignature(i), EstSource: st.SourceLabel()}
		if st.Measured != nil {
			if _, ok := st.Measured(np.Sig); ok {
				np.EstSource = SourceMeasured
			}
		}
		if ns != nil {
			np.EstCells = ns.EstCells
			np.CellsFinalized = ns.CellsFinalized
			np.LiveCellsHWM = ns.LiveCellsHWM
			np.RecordsIn = ns.RecordsIn
			np.RecordsOut = ns.RecordsOut
		}
		rec.Nodes = append(rec.Nodes, np)
	}
	return rec
}

// phaseDurations flattens the query span's subtree into summed
// durations per phase name (the query span itself excluded).
func phaseDurations(snap *obs.SpanSnapshot) map[string]int64 {
	out := map[string]int64{}
	var walk func(s *obs.SpanSnapshot)
	walk = func(s *obs.SpanSnapshot) {
		for _, c := range s.Children {
			out[c.Name] += c.DurationUs
			walk(c)
		}
	}
	walk(snap)
	if len(out) == 0 {
		return nil
	}
	return out
}
