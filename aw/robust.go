package aw

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"

	"awra/internal/obs"
	"awra/internal/obs/flight"
	"awra/internal/qguard"
)

// Typed errors returned by Run and RunCompiled. Match them with
// errors.Is: engines wrap them with context but never hide them.
var (
	// ErrCanceled reports that the query's context was canceled.
	ErrCanceled = qguard.ErrCanceled
	// ErrDeadlineExceeded reports that the query's deadline (context or
	// QueryOptions.Timeout) passed before the query finished.
	ErrDeadlineExceeded = qguard.ErrDeadlineExceeded
	// ErrBudgetExceeded reports that a hard resource guardrail
	// (MaxLiveCells, MaxResultRows, MaxSpillBytes) tripped.
	ErrBudgetExceeded = qguard.ErrBudgetExceeded
)

// ErrAdmissionRejected reports that a query never started: the serving
// layer's admission control turned it away (per-tenant concurrency
// limit, full wait queue, load shedding, or a draining server). It is
// the library-level sentinel behind HTTP 429/503 responses, so clients
// embedding the serve package match one error vocabulary whether they
// reach the service over HTTP or in process. Rejections are cheap by
// design — the query was refused before any planning or I/O.
var ErrAdmissionRejected = errors.New("aw: admission rejected")

// BudgetError is the concrete error behind ErrBudgetExceeded; it names
// the resource that tripped and the limit and observed values.
type BudgetError = qguard.BudgetError

// Budget resource names found in BudgetError.Resource.
const (
	ResLiveCells  = qguard.ResLiveCells
	ResResultRows = qguard.ResResultRows
	ResSpillBytes = qguard.ResSpillBytes
)

// AsBudgetError extracts a *BudgetError from an error chain.
func AsBudgetError(err error) (*BudgetError, bool) { return qguard.AsBudget(err) }

// Run compiles the workflow (if needed) and evaluates it under ctx:
// canceling the context aborts the query promptly (engines check
// cooperatively at scan strides) with ErrCanceled, and a context or
// Timeout deadline surfaces as ErrDeadlineExceeded.
func Run(ctx context.Context, w *Workflow, in Input, opts ...QueryOptions) (Results, error) {
	c, err := w.Compile()
	if err != nil {
		// Compile failures never reach the engine (or the in-flight
		// registry), but the history must not have silent gaps: record
		// the rejection with what little identity the inputs give us.
		if len(opts) > 0 && opts[0].History != nil {
			opts[0].History.Append(&HistoryRecord{
				RequestID:    opts[0].RequestID,
				CollectionFP: collectionFingerprint(in),
				Engine:       opts[0].Engine.String(),
				Outcome:      OutcomeError,
				Error:        err.Error(),
			})
		}
		return nil, err
	}
	return RunCompiled(ctx, c, in, opts...)
}

// RunCompiled evaluates a compiled workflow under ctx. Beyond
// cancellation, it is the robustness boundary of the library:
//
//   - hard guardrails (MaxLiveCells, MaxResultRows, MaxSpillBytes)
//     turn runaway queries into ErrBudgetExceeded instead of OOM kills
//     or unbounded outputs;
//   - under EngineAuto, a sort/scan attempt that blows the live-cell
//     budget is retried once as a multi-pass plan (the paper's
//     Section 6 decision procedure, applied reactively when the
//     optimizer's estimate proved wrong) — counted in
//     fallback_engine_switches;
//   - engine panics are recovered and returned as errors, so a bug in
//     an evaluator cannot take down the caller's process.
func RunCompiled(ctx context.Context, c *Compiled, in Input, opts ...QueryOptions) (Results, error) {
	var o QueryOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	res, _, err := runResolved(ctx, c, in, o)
	return res, err
}

// runResolved is RunCompiled with the EngineAuto decision surfaced, so
// ExplainAnalyze can label the profile with the engine that actually
// ran. It also owns the query's process-level registration: every run
// appears in obs.DefaultInflight for its duration (with an internal
// recorder when the caller supplied none, so live snapshots still carry
// phase and progress), and the goroutine runs under runtime/pprof
// labels (query_id) that engine workers extend with a phase label.
func runResolved(ctx context.Context, c *Compiled, in Input, o QueryOptions) (res Results, engine Engine, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if no, nerr := o.ExecOptions.normalize(); nerr != nil {
		return nil, o.Engine, nerr
	} else {
		o.ExecOptions = no
	}
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
	}
	if o.Recorder == nil {
		o.Recorder = obs.New()
	}
	// Every run gets a stable flight-recorder trace ID. Callers that
	// must know it up front (the serve layer echoing it to clients, a
	// CLI printing the trace) pass one in; retried requests reuse theirs
	// so all attempts merge into one trace.
	if o.TraceID == "" {
		o.TraceID = flight.NewTraceID()
	}
	inq := obs.DefaultInflight.Begin(strings.Join(c.Outputs(), ","), o.Recorder, nil)
	inq.SetTraceID(o.TraceID)
	defer inq.Finish()
	// Label this goroutine (and, through the guard's context, every
	// engine worker) so CPU profiles attribute samples to the query.
	caller := ctx
	ctx = pprof.WithLabels(ctx, pprof.Labels("query_id", strconv.FormatInt(inq.ID(), 10)))
	pprof.SetGoroutineLabels(ctx)
	defer pprof.SetGoroutineLabels(caller)
	limits := qguard.Limits{
		MaxLiveCells:    o.MaxLiveCells,
		MaxResultRows:   o.MaxResultRows,
		MaxSpillBytes:   o.MaxSpillBytes,
		SkipCorruptRows: o.SkipCorruptRows,
	}
	g := qguard.New(ctx, limits)
	// One query span covers the whole run, including any multipass
	// fallback retry, so history and in-flight views see a single
	// query with its true end-to-end phases.
	qSpan := o.Recorder.Start(obs.SpanQuery)
	qSpan.SetAttr("trace_id", o.TraceID)
	inq.SetSpan(qSpan)
	defer func() {
		if r := recover(); r != nil {
			res = nil
			if a, ok := r.(qguard.Abort); ok {
				err = a.Err
			} else {
				err = fmt.Errorf("aw: internal error: %v\n%s", r, debug.Stack())
			}
		}
		qSpan.End()
		reportOutcome(o.Recorder, g, err)
		rec := buildRecord(c, in, &o, g, qSpan, engine, err)
		if o.History != nil {
			// Best effort: a full disk must not turn a finished query
			// into a failure.
			_ = o.History.Append(rec)
		}
		// Commit the finished attempt into the flight recorder (one
		// trace per trace ID; serve-layer retries merge as attempts).
		commitFlightTrace(&o, rec, qSpan.Snapshot())
	}()

	if o.AutoStats {
		if in.path == "" {
			return nil, o.Engine, fmt.Errorf("aw: AutoStats requires a file input")
		}
		cards, statsErr := CollectStats(in.path, 200000)
		if statsErr != nil {
			return nil, o.Engine, statsErr
		}
		o.BaseCards = cards
		o.AutoStats = false
	}
	st := planStats(c, in, &o)

	wasAuto := o.Engine == EngineAuto
	res, engine, err = runEngines(c, in, o, st, g, inq, qSpan)
	// The multipass fallback needs a file input; for in-memory inputs the
	// original BudgetError stands (retrying would replace it with an
	// unrelated "requires a file input" error).
	if err != nil && wasAuto && (engine == EngineSortScan || engine == EngineShardScan) && in.path != "" {
		if be, ok := qguard.AsBudget(err); ok && be.Resource == qguard.ResLiveCells {
			// The optimizer judged one sort/scan pass affordable but the
			// run-time frontier disagreed; degrade to multi-pass, whose
			// per-pass footprints are planned under the budget.
			o.Recorder.Counter(obs.MFallbackSwitches).Add(1)
			retry := o
			retry.Engine = EngineMultiPass
			if retry.MemoryBudget <= 0 {
				// Express the cell budget as a per-pass byte footprint for
				// the multi-pass planner (~64 bytes per live cell, the
				// planner's own cost model).
				retry.MemoryBudget = limits.MaxLiveCells * 64
			}
			// The retry re-reads the same file and re-skips the same
			// corrupt rows, so the first attempt's degraded-mode count is
			// NOT pre-published here: the deferred reportOutcome publishes
			// the final guard's count once, and a retried-then-successful
			// read never double-counts rows_corrupt_skipped.
			g = qguard.New(ctx, limits)
			res, engine, err = runEngines(c, in, retry, st, g, inq, qSpan)
		}
	}
	return res, engine, err
}

// reportOutcome publishes the robustness counters for one finished
// attempt: cancellations, budget rejections, and degraded-mode corrupt
// rows skipped.
func reportOutcome(rec *Recorder, g *qguard.Guard, err error) {
	if n := g.Stats().CorruptRows; n > 0 {
		rec.Counter(obs.MRowsCorruptSkipped).Add(n)
	}
	switch {
	case err == nil:
	case errors.Is(err, ErrCanceled), errors.Is(err, ErrDeadlineExceeded):
		rec.Counter(obs.MQueriesCanceled).Add(1)
	case errors.Is(err, ErrBudgetExceeded):
		rec.Counter(obs.MBudgetRejections).Add(1)
	}
}
