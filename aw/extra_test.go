package aw_test

import (
	"context"
	"path/filepath"
	"testing"

	"awra/aw"
)

func TestStreamMatchesQuery(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(2500, 11)
	want, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromRecords(recs))
	if err != nil {
		t.Fatal(err)
	}

	var emitted int
	stream, err := aw.RunStream(context.Background(), busyWorkflow(t, s, 1), aw.StreamOptions{
		ValidateOrder: true,
		Emit:          func(string, aw.Key, float64) { emitted++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	key := stream.SortKey()
	sorted := append([]aw.Record{}, recs...)
	// Sort by the stream's expected arrival order.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && key.RecordLess(s, &sorted[j], &sorted[j-1]); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for i := range sorted {
		if err := stream.Push(&sorted[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := stream.Close()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for name, tbl := range want {
		if !tbl.Equal(got[name], 1e-9) {
			t.Errorf("measure %s differs between stream and query", name)
		}
		total += len(tbl.Rows)
	}
	if emitted != total {
		t.Errorf("emitted %d values for %d regions", emitted, total)
	}
	if stream.Records() != int64(len(recs)) {
		t.Errorf("stream records = %d", stream.Records())
	}
}

func TestSaveLoadResultsThroughFacade(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(1500, 13)
	res, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromRecords(recs))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	if err := aw.SaveResults(dir, s, res); err != nil {
		t.Fatal(err)
	}
	back, err := aw.LoadResults(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	for name, tbl := range res {
		if !tbl.Equal(back[name], 0) {
			t.Errorf("measure %s changed in store round trip", name)
		}
	}
	one, err := aw.LoadResult(dir, s, "sCount")
	if err != nil {
		t.Fatal(err)
	}
	if !res["sCount"].Equal(one, 0) {
		t.Error("single-measure load differs")
	}
}

func TestAutoStatsAndParallelism(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(3000, 17)
	dir := t.TempDir()
	fact := filepath.Join(dir, "fact.rec")
	if err := aw.WriteRecords(fact, 4, 0, recs); err != nil {
		t.Fatal(err)
	}
	want, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromRecords(recs))
	if err != nil {
		t.Fatal(err)
	}
	// AutoStats + parallel sort on sortscan.
	got, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{Engine: aw.EngineSortScan, Parallelism: 4},
		AutoStats:   true, TempDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, tbl := range want {
		if !tbl.Equal(got[name], 1e-9) {
			t.Errorf("measure %s differs with AutoStats+Parallelism", name)
		}
	}
	// Parallel single-scan.
	got, err = aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{Engine: aw.EngineSingleScan, Parallelism: 3},
		TempDir:     dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, tbl := range want {
		if !tbl.Equal(got[name], 1e-9) {
			t.Errorf("measure %s differs with parallel single-scan", name)
		}
	}
	// AutoStats over in-memory input is an error.
	if _, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromRecords(recs), aw.QueryOptions{AutoStats: true}); err == nil {
		t.Error("AutoStats over records accepted")
	}
	// CollectStats sanity.
	cards, err := aw.CollectStats(fact, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cards) != 4 || cards[0] < 100 {
		t.Errorf("cards = %v", cards)
	}
}

func TestTableHelpers(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(800, 19)
	res, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromRecords(recs))
	if err != nil {
		t.Fatal(err)
	}
	tbl := res["Count"]
	top := aw.TopK(tbl, 5)
	if len(top) != 5 {
		t.Fatalf("TopK returned %d rows", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Value > top[i-1].Value {
			t.Fatal("TopK not descending")
		}
	}
	if top[0].Label == "" || len(top[0].Region.Codes) != 4 {
		t.Errorf("row decoration missing: %+v", top[0])
	}
	all := aw.TopK(tbl, 0)
	if len(all) != len(tbl.Rows) {
		t.Errorf("TopK(0) returned %d of %d rows", len(all), len(tbl.Rows))
	}
	heavy := aw.FilterRows(tbl, func(_ aw.Region, v float64) bool { return v >= top[0].Value })
	if len(heavy) == 0 || heavy[0].Value != top[0].Value {
		t.Errorf("FilterRows missed the max: %+v", heavy)
	}
	if got := aw.SumValues(tbl); got != float64(len(recs)) {
		t.Errorf("SumValues = %v, want %d (every record counted once)", got, len(recs))
	}
}

func TestRunStreamAutoKey(t *testing.T) {
	s := attackSchema(t)
	stream, err := aw.RunStream(context.Background(), busyWorkflow(t, s, 1), aw.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stream.SortKey()) == 0 {
		t.Fatal("optimizer returned empty stream key")
	}
	if stream.Workflow() == nil {
		t.Fatal("compiled workflow not exposed")
	}
	if _, err := stream.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineAuto(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(2500, 29)
	dir := t.TempDir()
	fact := filepath.Join(dir, "fact.rec")
	if err := aw.WriteRecords(fact, 4, 0, recs); err != nil {
		t.Fatal(err)
	}
	want, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromRecords(recs))
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{0, 1 << 30, 10_000} {
		got, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromFile(fact), aw.QueryOptions{
			ExecOptions: aw.ExecOptions{Engine: aw.EngineAuto, MemoryBudget: budget},
			TempDir:     dir,
			BaseCards:   []float64{200000, 1000, 2000, 1024},
		})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		for name, tbl := range want {
			if !tbl.Equal(got[name], 1e-9) {
				t.Fatalf("budget %d: measure %s differs", budget, name)
			}
		}
	}
	if e, err := aw.ParseEngine("auto"); err != nil || e != aw.EngineAuto {
		t.Errorf("ParseEngine(auto) = %v, %v", e, err)
	}
	if aw.EngineAuto.String() != "auto" {
		t.Errorf("EngineAuto.String = %q", aw.EngineAuto.String())
	}
}

func TestStreamBadSortKey(t *testing.T) {
	s := attackSchema(t)
	if _, err := aw.RunStream(context.Background(), busyWorkflow(t, s, 1), aw.StreamOptions{
		SortKey: aw.SortKey{{Dim: 99, Lvl: 0}},
	}); err == nil {
		t.Fatal("bad stream sort key accepted")
	}
}
