package aw

import (
	"fmt"
	"strings"
	"time"

	"awra/internal/exec/multipass"
	"awra/internal/exec/partscan"
	"awra/internal/exec/scan"
	"awra/internal/exec/singlescan"
	"awra/internal/exec/sortscan"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/opt"
	"awra/internal/plan"
	"awra/internal/qguard"
	"awra/internal/relbaseline"
	"awra/internal/resultstore"
	"awra/internal/stats"
	"awra/internal/storage"
)

// Engine selects an evaluation strategy.
type Engine int

const (
	// EngineSortScan is the paper's one-pass sort/scan algorithm
	// (default): sort once by an optimizer-chosen key, stream all
	// measures with watermark-based early flushing.
	EngineSortScan Engine = iota
	// EngineSingleScan evaluates without sorting: one hash table per
	// measure, optionally spilling under a memory budget.
	EngineSingleScan
	// EngineMultiPass partitions measures across several sort/scan
	// passes when one pass's footprint exceeds the budget.
	EngineMultiPass
	// EngineRelational is the materializing SQL-style baseline; it is
	// intended for comparison, not production use.
	EngineRelational
	// EngineAuto applies the paper's Section 6 decision procedure:
	// simple scan when every hash table fits the budget, otherwise the
	// best-key sort/scan, otherwise multi-pass.
	EngineAuto
	// EnginePartScan hash-partitions the fact file on a chosen
	// dimension/level and runs an independent sort/scan per partition in
	// parallel. Requires a file input and a partition-valid workflow
	// (see QueryOptions.PartitionDim).
	EnginePartScan
	// EngineShardScan splits the fact file into Parallelism shards by
	// the leading part of the optimizer-chosen sort key, runs an
	// independent sort/scan per shard in parallel, and combines the
	// per-shard outputs (concatenation for nesting measures, aggregate
	// state merge for measures whose regions span shards). Requires a
	// file input and a shardable workflow; EngineAuto selects it
	// automatically when Parallelism > 1 and the workflow qualifies.
	EngineShardScan
)

// engineNames is the single source of truth tying each engine constant
// to its canonical name: String() reads it, ParseEngine accepts every
// entry, and UnknownEngineError lists it — so help text and the parser
// cannot drift, and every constant round-trips through its String()
// form.
var engineNames = [...]string{
	EngineSortScan:   "sortscan",
	EngineSingleScan: "singlescan",
	EngineMultiPass:  "multipass",
	EngineRelational: "relational",
	EngineAuto:       "auto",
	EnginePartScan:   "partscan",
	EngineShardScan:  "shardscan",
}

// engineAliases maps accepted non-canonical spellings (String() never
// produces these, but ParseEngine keeps reading them).
var engineAliases = map[string]Engine{
	"scan": EngineSingleScan,
	"db":   EngineRelational,
}

// EngineNames returns the canonical engine names, in constant order.
func EngineNames() []string {
	out := make([]string, len(engineNames))
	copy(out, engineNames[:])
	return out
}

func (e Engine) String() string {
	if e >= 0 && int(e) < len(engineNames) {
		return engineNames[e]
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// UnknownEngineError reports an engine name ParseEngine does not
// recognize, carrying the valid canonical names.
type UnknownEngineError struct {
	// Name is the rejected input.
	Name string
	// Valid lists the canonical engine names.
	Valid []string
}

func (e *UnknownEngineError) Error() string {
	return fmt.Sprintf("aw: unknown engine %q (valid: %s)", e.Name, strings.Join(e.Valid, ", "))
}

// ParseEngine resolves an engine name: every canonical String() form,
// the aliases "scan" and "db", and "" (the default engine). Unknown
// names return an *UnknownEngineError listing the valid names.
func ParseEngine(name string) (Engine, error) {
	if name == "" {
		return EngineSortScan, nil
	}
	for e, n := range engineNames {
		if name == n {
			return Engine(e), nil
		}
	}
	if e, ok := engineAliases[name]; ok {
		return e, nil
	}
	return 0, &UnknownEngineError{Name: name, Valid: EngineNames()}
}

// ExecOptions are the execution knobs shared by every entry point:
// engine selection, parallelism, memory and guardrail budgets,
// observability, and the degraded-read policy. QueryOptions and
// StreamOptions embed it, so a new knob is added once and honored
// uniformly by batch and streaming evaluation alike.
type ExecOptions struct {
	// Engine selects the evaluation strategy (default EngineSortScan).
	// Streaming sessions always use the one-pass streaming engine and
	// ignore this field.
	Engine Engine
	// MemoryBudget bounds memory: spill threshold for single-scan,
	// per-pass footprint for multi-pass, and the decision input for
	// EngineAuto. 0 = unlimited / one pass.
	MemoryBudget int64
	// Parallelism is the worker count for parallel evaluation: the
	// shard count for EngineShardScan, sort workers for the sort/scan
	// engine's external sort, scan workers for the single-scan engine,
	// and the default partition count for EnginePartScan. 0 or 1 means
	// serial. Under EngineAuto, Parallelism > 1 upgrades a sort/scan
	// decision to the sharded engine whenever the workflow shards
	// safely (every measure either nests inside shard units or merges
	// commutatively). Streaming sessions ignore it.
	Parallelism int
	// Recorder, if non-nil, collects the query's span tree (rooted at a
	// "query" span) and engine metrics. A nil recorder is a no-op; the
	// engines then keep private recorders so their Stats stay complete.
	Recorder *Recorder
	// Timeout, if positive, bounds the query's wall-clock time; when it
	// lapses the run aborts with ErrDeadlineExceeded. It composes with
	// any deadline already on the context passed to Run or RunStream.
	Timeout time.Duration
	// MaxLiveCells caps simultaneously live hash entries (the paper's
	// memory frontier) across streaming engines. 0 = unlimited. Under
	// EngineAuto, a sort/scan run that trips this guardrail is retried
	// once as a multi-pass plan before the error is surfaced. Parallel
	// engines divide the budget evenly across their workers.
	MaxLiveCells int64
	// MaxResultRows caps total finalized output rows across all
	// non-hidden measures. 0 = unlimited.
	MaxResultRows int64
	// MaxSpillBytes caps bytes written to disk by sorts, spills, and
	// partition/shard splits, accounted globally across parallel
	// workers. 0 = unlimited. Streaming sessions never spill.
	MaxSpillBytes int64
	// SkipCorruptRows degrades checksummed file reads: rows whose CRC
	// does not verify are skipped and counted (rows_corrupt_skipped)
	// instead of failing the query. File inputs only.
	SkipCorruptRows bool
	// History, if non-nil, records every run's completion (success,
	// budget trip, cancel, or error) in the persistent query-history
	// log, and lets the planner reuse measured per-node cell counts
	// from earlier completed runs on the same collection (EXPLAIN then
	// labels those estimates "measured"). Open one with OpenHistory and
	// share it across queries.
	History *History
	// RequestID names the client request this run serves, making
	// retries idempotent in the history: a retried request reuses its
	// ID, and a later record with the same ID supersedes the earlier
	// attempt's, so one request logs one final outcome no matter how
	// many attempts it took. Empty means every run logs independently.
	RequestID string
	// TraceID keys this run's entry in the query flight recorder. Empty
	// means the run generates its own ID (NewTraceID). Callers that must
	// know the ID up front — the serve layer echoing it to clients, or a
	// CLI printing the trace — generate one and pass it here; a retried
	// request reuses its ID so all attempts land in one trace.
	TraceID string
	// ReadBatchSize is the chunk size in bytes for the batched fact
	// reads under every file-backed engine (the internal/exec/scan
	// reader). 0 uses the default (a few MB); positive values below the
	// reader's minimum are clamped up; negative values are rejected at
	// entry. In-memory and streaming inputs batch at a fixed record
	// count and ignore it.
	ReadBatchSize int
}

// normalize validates and canonicalizes the execution knobs once, at
// every entry point (Run, RunStream, serve) — so engines can trust the
// values they receive. It returns the normalized copy.
func (o ExecOptions) normalize() (ExecOptions, error) {
	if o.ReadBatchSize < 0 {
		return o, fmt.Errorf("aw: negative ReadBatchSize %d", o.ReadBatchSize)
	}
	if o.Parallelism < 0 {
		return o, fmt.Errorf("aw: negative Parallelism %d", o.Parallelism)
	}
	if o.MemoryBudget < 0 || o.MaxLiveCells < 0 || o.MaxResultRows < 0 || o.MaxSpillBytes < 0 {
		return o, fmt.Errorf("aw: negative resource budget")
	}
	if o.ReadBatchSize > 0 && o.ReadBatchSize < scan.MinBatchBytes {
		o.ReadBatchSize = scan.MinBatchBytes
	}
	return o, nil
}

// TightenBudgets returns a copy of the options with every nonzero
// resource guardrail scaled down by f in (0, 1) — the serving layer's
// overload hook (see qguard.Limits.Scale). Zero (unlimited) budgets
// stay unlimited, and f outside (0, 1) returns the options unchanged.
func (o ExecOptions) TightenBudgets(f float64) ExecOptions {
	if f <= 0 || f >= 1 {
		return o
	}
	l := qguard.Limits{
		MaxLiveCells:  o.MaxLiveCells,
		MaxResultRows: o.MaxResultRows,
		MaxSpillBytes: o.MaxSpillBytes,
	}.Scale(f)
	o.MaxLiveCells = l.MaxLiveCells
	o.MaxResultRows = l.MaxResultRows
	o.MaxSpillBytes = l.MaxSpillBytes
	if o.MemoryBudget > 0 {
		if s := int64(float64(o.MemoryBudget) * f); s >= 1 {
			o.MemoryBudget = s
		} else {
			o.MemoryBudget = 1
		}
	}
	return o
}

// QueryOptions configures batch evaluation (Run, RunCompiled). The
// execution knobs shared with streaming live in the embedded
// ExecOptions; construct as
//
//	aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EngineAuto, Parallelism: 4}}
type QueryOptions struct {
	ExecOptions
	// SortKey overrides the optimizer's choice (sortscan/shardscan).
	SortKey SortKey
	// TempDir receives sort runs, spills, and shard files.
	TempDir string
	// BaseCards estimates per-dimension base cardinalities for the
	// optimizer; nil uses defaults.
	BaseCards []float64
	// AutoStats collects per-dimension cardinality estimates from the
	// fact file (one extra sampling scan) before planning, instead of
	// relying on BaseCards or defaults. File inputs only.
	AutoStats bool
	// PartitionDim and PartitionLevel choose the partition unit for
	// EnginePartScan (dimension index and hierarchy level).
	PartitionDim   int
	PartitionLevel Level
	// Partitions is the EnginePartScan worker count (>= 1; 0 means
	// max(Parallelism, 1)).
	Partitions int
}

// parallelism resolves the effective worker count.
func (o *QueryOptions) parallelism() int {
	return o.Parallelism
}

// Input is a fact-table source for Query.
type Input struct {
	path string
	recs []Record
	n    int
}

// FromFile reads the fact table from a binary record file.
func FromFile(path string) Input { return Input{path: path} }

// FromRecords evaluates over an in-memory record slice.
func FromRecords(recs []Record) Input { return Input{recs: recs, n: len(recs)} }

// Results maps measure names to their computed tables.
type Results map[string]*Table

// ResultsEqual reports whether two result sets answer the same query
// identically: the same measure names, each table equal within eps.
// With eps 0 this is the bit-identity discipline the serve cache and
// scan-sharing differential tests pin cached/shared answers against.
func ResultsEqual(a, b Results, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for name, ta := range a {
		tb, ok := b[name]
		if !ok {
			return false
		}
		if (ta == nil) != (tb == nil) {
			return false
		}
		if ta != nil && !ta.Equal(tb, eps) {
			return false
		}
	}
	return true
}

// planStats assembles the planner's cardinality input for one run:
// caller or AutoStats cardinalities (labeled "collected"), paper
// defaults otherwise ("assumed"), plus — when a History is attached —
// a measured-statistics lookup keyed by this collection's fingerprint
// and each node's content signature ("measured"). The lookup runs only
// at plan time, never on the scan path.
func planStats(c *Compiled, in Input, o *QueryOptions) *plan.Stats {
	st := &plan.Stats{BaseCard: o.BaseCards}
	if len(o.BaseCards) > 0 {
		st.Source = plan.SourceCollected
	}
	if h := o.History; h != nil {
		fp := collectionFingerprint(in)
		st.Measured = func(sig string) (float64, bool) {
			m, ok := h.store.Lookup(fp, sig)
			return m.Cells, ok
		}
	}
	return st
}

// runEngines dispatches one evaluation attempt to the selected engine
// under the given guard and query span, returning the engine that
// actually ran (the EngineAuto decision resolved).
func runEngines(c *Compiled, in Input, o QueryOptions, st *plan.Stats, g *qguard.Guard, inq *obs.InflightQuery, qSpan *obs.Span) (Results, Engine, error) {
	qrec := o.Recorder.At(qSpan)

	// setKey records the resolved sort order on the query span, where
	// ExplainAnalyze, in-flight snapshots, and history records read it.
	setKey := func(key model.SortKey) {
		qSpan.SetAttr("sort_key", key.String(c.Schema))
	}

	// chooseKey runs the optimizer under an "optimize" span.
	chooseKey := func() (SortKey, error) {
		optSpan := qrec.Start(obs.SpanOptimize)
		defer optSpan.End()
		ch, err := opt.Best(c, st, qrec.At(optSpan))
		if err != nil {
			return nil, err
		}
		return ch.Key, nil
	}

	if o.Engine == EngineAuto {
		optSpan := qrec.Start(obs.SpanOptimize)
		d, err := opt.Choose(c, st, float64(o.MemoryBudget), qrec.At(optSpan))
		optSpan.End()
		if err != nil {
			return nil, o.Engine, err
		}
		switch d.Strategy {
		case opt.StrategySingleScan:
			o.Engine = EngineSingleScan
		case opt.StrategySortScan:
			o.Engine = EngineSortScan
			if o.SortKey == nil {
				o.SortKey = d.Key
			}
			// With parallelism requested, upgrade to the sharded engine
			// when the workflow splits safely by the sort key's leading
			// part; otherwise stay serial rather than fail.
			if o.parallelism() > 1 && in.path != "" {
				if nk, err := SortKey(o.SortKey).Normalize(c.Schema); err == nil {
					if _, err := opt.ShardPrefix(c, nk); err == nil {
						o.Engine = EngineShardScan
					}
				}
			}
		default:
			o.Engine = EngineMultiPass
		}
	}

	qSpan.SetAttr("engine", o.Engine.String())
	inq.SetEngine(o.Engine.String())

	// In-memory input paths.
	if in.path == "" {
		switch o.Engine {
		case EngineSingleScan:
			res, err := singlescan.Run(c, &storage.SliceSource{Recs: in.recs}, singlescan.Options{
				MemoryBudget: o.MemoryBudget, TempDir: o.TempDir, Recorder: qrec, Guard: g,
			})
			if err != nil {
				return nil, o.Engine, err
			}
			return res.Tables, o.Engine, nil
		case EngineSortScan:
			key := o.SortKey
			if key == nil {
				var err error
				if key, err = chooseKey(); err != nil {
					return nil, o.Engine, err
				}
			}
			nk, err := SortKey(key).Normalize(c.Schema)
			if err != nil {
				return nil, o.Engine, err
			}
			setKey(nk)
			sorted := make([]Record, len(in.recs))
			copy(sorted, in.recs)
			sortSpan := qrec.Start(obs.SpanSort)
			var sortErr error
			func() {
				defer qguard.RecoverAbort(&sortErr)
				var n int
				storage.SortRecords(sorted, func(a, b *Record) bool {
					if n++; n&4095 == 0 {
						g.CheckAbort()
					}
					return nk.RecordLess(c.Schema, a, b)
				})
			}()
			sortSpan.End()
			if sortErr != nil {
				return nil, o.Engine, sortErr
			}
			pl, err := plan.Build(c, nk, st)
			if err != nil {
				return nil, o.Engine, err
			}
			res, err := sortscan.RunSortedGuarded(c, pl, &storage.SliceSource{Recs: sorted}, g, qrec)
			if err != nil {
				return nil, o.Engine, err
			}
			return res.Tables, o.Engine, nil
		default:
			return nil, o.Engine, fmt.Errorf("aw: engine %v requires a file input (use FromFile)", o.Engine)
		}
	}

	par := o.parallelism()
	switch o.Engine {
	case EngineSortScan:
		key := o.SortKey
		if key == nil {
			var err error
			if key, err = chooseKey(); err != nil {
				return nil, o.Engine, err
			}
		}
		if nk, err := SortKey(key).Normalize(c.Schema); err == nil {
			setKey(nk)
		}
		res, err := sortscan.Run(c, in.path, sortscan.Options{
			SortKey: key, TempDir: o.TempDir, Stats: st,
			ParallelSort: par > 1, SortWorkers: par,
			ReadBatchBytes: o.ReadBatchSize,
			Recorder:       qrec, Guard: g,
		})
		if err != nil {
			return nil, o.Engine, err
		}
		return res.Tables, o.Engine, nil
	case EngineShardScan:
		key := o.SortKey
		if key == nil {
			var err error
			if key, err = chooseKey(); err != nil {
				return nil, o.Engine, err
			}
		}
		shards := par
		if shards < 1 {
			shards = 1
		}
		if nk, err := SortKey(key).Normalize(c.Schema); err == nil {
			setKey(nk)
		}
		res, err := sortscan.RunSharded(c, in.path, sortscan.ShardedOptions{
			SortKey: key, Shards: shards, TempDir: o.TempDir, Stats: st,
			ReadBatchBytes: o.ReadBatchSize,
			Recorder:       qrec, Guard: g,
		})
		if err != nil {
			return nil, o.Engine, err
		}
		return res.Tables, o.Engine, nil
	case EngineSingleScan:
		var res *singlescan.Result
		if par > 1 {
			r, err := storage.OpenGuarded(in.path, g)
			if err != nil {
				return nil, o.Engine, err
			}
			defer r.Close()
			res, err = singlescan.RunParallel(c, r, par, singlescan.Options{TempDir: o.TempDir, MemoryBudget: o.MemoryBudget, Recorder: qrec, Guard: g})
			if err != nil {
				return nil, o.Engine, err
			}
		} else {
			var err error
			res, err = singlescan.RunFile(c, in.path, singlescan.Options{
				MemoryBudget: o.MemoryBudget, TempDir: o.TempDir,
				ReadBatchBytes: o.ReadBatchSize, Recorder: qrec, Guard: g,
			})
			if err != nil {
				return nil, o.Engine, err
			}
		}
		return res.Tables, o.Engine, nil
	case EngineMultiPass:
		res, err := multipass.Run(c, in.path, multipass.Options{
			MemoryBudget: float64(o.MemoryBudget), Stats: st, TempDir: o.TempDir,
			ReadBatchBytes: o.ReadBatchSize,
			Recorder:       qrec, Guard: g,
		})
		if err != nil {
			return nil, o.Engine, err
		}
		return res.Tables, o.Engine, nil
	case EnginePartScan:
		key := o.SortKey
		if key == nil {
			var err error
			if key, err = chooseKey(); err != nil {
				return nil, o.Engine, err
			}
		}
		parts := o.Partitions
		if parts < 1 {
			parts = par
		}
		if parts < 1 {
			parts = 1
		}
		if nk, err := SortKey(key).Normalize(c.Schema); err == nil {
			setKey(nk)
		}
		res, err := partscan.Run(c, in.path, partscan.Options{
			PartitionDim:   o.PartitionDim,
			PartitionLevel: o.PartitionLevel,
			Partitions:     parts,
			SortKey:        key,
			TempDir:        o.TempDir,
			Stats:          st,
			ReadBatchBytes: o.ReadBatchSize,
			Recorder:       qrec,
			Guard:          g,
		})
		if err != nil {
			return nil, o.Engine, err
		}
		return res.Tables, o.Engine, nil
	case EngineRelational:
		res, err := relbaseline.Run(c, in.path, relbaseline.Options{TempDir: o.TempDir, Recorder: qrec, Guard: g})
		if err != nil {
			return nil, o.Engine, err
		}
		return res.Tables, o.Engine, nil
	}
	return nil, o.Engine, fmt.Errorf("aw: unknown engine %v", o.Engine)
}

// CollectStats samples a fact file (up to sampleLimit records; 0 =
// all) and returns per-dimension distinct-value estimates suitable for
// QueryOptions.BaseCards.
func CollectStats(path string, sampleLimit int64) ([]float64, error) {
	st, err := stats.CollectFile(path, stats.Options{SampleLimit: sampleLimit})
	if err != nil {
		return nil, err
	}
	return st.PlanStats().BaseCard, nil
}

// SaveResults persists computed measure tables into a directory (one
// record file per measure plus a JSON manifest) for later sessions.
func SaveResults(dir string, schema *Schema, res Results) error {
	return resultstore.Save(dir, schema, res)
}

// LoadResults reads back measure tables saved with SaveResults,
// validating them against the schema.
func LoadResults(dir string, schema *Schema) (Results, error) {
	return resultstore.Load(dir, schema)
}

// LoadResult reads back one saved measure by name.
func LoadResult(dir string, schema *Schema, name string) (*Table, error) {
	return resultstore.LoadMeasure(dir, schema, name)
}

// BestSortKey runs the optimizer and returns the chosen key with its
// estimated footprint in bytes.
func BestSortKey(c *Compiled, baseCards []float64) (SortKey, float64, error) {
	ch, err := opt.Best(c, &plan.Stats{BaseCard: baseCards})
	if err != nil {
		return nil, 0, err
	}
	return ch.Key, ch.EstBytes, nil
}

// ExplainPlan renders the streaming plan a sort key induces: per-node
// stream orders, comparable keys, watermark shifts, and footprint
// estimates.
func ExplainPlan(c *Compiled, key SortKey, baseCards []float64) (string, error) {
	p, err := plan.Build(c, key, &plan.Stats{BaseCard: baseCards})
	if err != nil {
		return "", err
	}
	return p.String(), nil
}

// DOT renders a compiled workflow as a Graphviz diagram in the style
// of the paper's aggregation-workflow figures.
func DOT(c *Compiled) string { return c.DOT() }
