// Package aw is the public API of the composite-subset-measures
// library, a Go implementation of the system described in "Composite
// Subset Measures" (Chen et al., VLDB 2006).
//
// The library computes measures — numeric summaries — for collections
// of regions of a multidimensional dataset, where a measure may be
// composed from the measures of related regions (ancestors,
// descendants, and moving-window neighbors in cube space), not just
// from raw records. Queries are declared as aggregation workflows and
// evaluated by streaming engines built on sorting and scanning flat
// files; no database is required.
//
// Typical use:
//
//	schema := aw.MustSchema([]*aw.Dimension{
//	    aw.TimeDimension("t"),
//	    aw.IPv4Dimension("src"),
//	}, )
//	gHour, _ := schema.MakeGran(map[string]string{"t": "Hour", "src": "IP"})
//	gH, _ := schema.MakeGran(map[string]string{"t": "Hour"})
//	wf := aw.NewWorkflow(schema).
//	    Basic("traffic", gHour, aw.Count, -1).
//	    Rollup("busy", gH, "traffic", aw.Count, aw.Where(aw.MWhere(0, aw.Gt, 5)))
//	res, err := aw.Run(ctx, wf, aw.FromFile("attacks.rec"))
//
// # Entry points
//
// The canonical API is context-first: Run and RunCompiled for batch
// evaluation, RunStream and RunStreamCompiled for streaming sessions.
// The context carries cancellation; execution knobs shared by both
// surfaces — engine, Parallelism, memory and guardrail budgets,
// recorder — live in the ExecOptions struct embedded in QueryOptions
// and StreamOptions.
//
// The pre-context entry points (Query, QueryCompiled, OpenStream,
// OpenStreamCompiled) and the Workers option are gone; replace
// aw.Query(wf, in, o) with aw.Run(ctx, wf, in, o), aw.OpenStream(wf, o)
// with aw.RunStream(ctx, wf, o), and QueryOptions{Workers: 4} with
// QueryOptions{ExecOptions: ExecOptions{Parallelism: 4}}.
//
// The underlying engines (one-pass sort/scan, sharded parallel
// sort/scan, single-scan, multi-pass, partitioned-parallel, and a
// relational-style baseline) are selectable through
// ExecOptions.Engine; by default Run picks a sort order with the
// brute-force optimizer and runs the one-pass sort/scan algorithm, and
// with ExecOptions{Engine: EngineAuto, Parallelism: N} it shards that
// pass across N workers whenever the workflow allows.
package aw

import (
	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/storage"
)

// Re-exported model types: dimensions, hierarchies, schemas, regions.
type (
	// Dimension is a dimension attribute with its linear domain
	// generalization hierarchy.
	Dimension = model.Dimension
	// DomainSpec describes one domain in a hierarchy.
	DomainSpec = model.DomainSpec
	// Level indexes a domain within a hierarchy (0 = base).
	Level = model.Level
	// Schema is the dimension vector plus measure attributes.
	Schema = model.Schema
	// Gran is a granularity vector identifying a region set.
	Gran = model.Gran
	// Record is one fact-table row.
	Record = model.Record
	// Key is a byte-encoded region identifier.
	Key = model.Key
	// SortKey is an order vector for sort/scan passes.
	SortKey = model.SortKey
	// SortPart is one (dimension, level) component of a SortKey.
	SortPart = model.SortPart
	// Region is a decoded region (granularity + codes).
	Region = model.Region
	// Dict resolves labels and codes for dictionary hierarchies.
	Dict = model.Dict
	// DictBuilder accumulates leaf paths for a dictionary hierarchy.
	DictBuilder = model.DictBuilder
)

// LevelALL resolves to a dimension's D_ALL level.
const LevelALL = model.LevelALL

// Dimension constructors.
var (
	// NewDimension builds a dimension from domain specs.
	NewDimension = model.NewDimension
	// MustDimension is NewDimension panicking on error.
	MustDimension = model.MustDimension
	// FixedFanout builds a uniform-fanout hierarchy.
	FixedFanout = model.FixedFanout
	// TimeDimension builds Second->Hour->Day->Month->Year->ALL.
	TimeDimension = model.TimeDimension
	// IPv4Dimension builds IP->/24->/16->/8->ALL.
	IPv4Dimension = model.IPv4Dimension
	// PortDimension builds Port->Class->ALL.
	PortDimension = model.PortDimension
	// NewDictBuilder starts a dictionary hierarchy for categorical
	// dimensions (site -> region -> country and the like).
	NewDictBuilder = model.NewDictBuilder
	// RegionOf decodes a key into an explicit Region.
	RegionOf = model.RegionOf
	// NewSchema builds a schema from dimensions and measure names.
	NewSchema = model.NewSchema
	// MustSchema is NewSchema panicking on error.
	MustSchema = model.MustSchema
)

// Time/IP code helpers.
var (
	// SecondCode, HourCode, DayCode, MonthCode build time-domain codes
	// from calendar components.
	SecondCode = model.SecondCode
	HourCode   = model.HourCode
	DayCode    = model.DayCode
	MonthCode  = model.MonthCode
	// IPCode builds an IPv4 base code from dotted-quad octets.
	IPCode = model.IPCode
)

// AggKind identifies an aggregation function.
type AggKind = agg.Kind

// Aggregation functions.
const (
	Count         = agg.Count
	CountNonNull  = agg.CountNonNull
	Sum           = agg.Sum
	Min           = agg.Min
	Max           = agg.Max
	Avg           = agg.Avg
	Var           = agg.Var
	StdDev        = agg.StdDev
	CountDistinct = agg.CountDistinct
	First         = agg.First
	Last          = agg.Last
	ConstZero     = agg.ConstZero
	Median        = agg.Median
	P95           = agg.P95
)

// Null and IsNull handle SQL-style NULL measure values (NaN).
var (
	Null   = agg.Null
	IsNull = agg.IsNull
)

// Workflow and algebra types.
type (
	// Workflow declares measures; Compile validates and orders them.
	Workflow = core.Workflow
	// Compiled is a validated, topologically ordered workflow.
	Compiled = core.Compiled
	// Measure is one compiled measure node.
	Measure = core.Measure
	// Window is a sibling-match moving window.
	Window = core.Window
	// Predicate is a selection condition.
	Predicate = core.Predicate
	// CombineFunc merges measures in a combine join.
	CombineFunc = core.CombineFunc
	// Table is a materialized measure table (the query result unit).
	Table = core.Table
	// Expr is an AW-RA algebra expression.
	Expr = core.Expr
	// CmpOp is a comparison operator for predicate helpers.
	CmpOp = core.CmpOp
)

// Comparison operators.
const (
	Lt = core.Lt
	Le = core.Le
	Eq = core.Eq
	Ne = core.Ne
	Ge = core.Ge
	Gt = core.Gt
)

// Workflow construction helpers.
var (
	// NewWorkflow starts a workflow over a schema.
	NewWorkflow = core.NewWorkflow
	// Where attaches a selection to a measure's inputs.
	Where = core.Where
	// WithBase names an explicit cell-providing base measure.
	WithBase = core.WithBase
	// MWhere compares a measure value; DimWhere a region code.
	MWhere   = core.MWhere
	DimWhere = core.DimWhere
	// And, Or, Not compose predicates.
	And = core.And
	Or  = core.Or
	Not = core.Not
	// Ratio, Diff, SumOf, MaxOf, Pick are common combine functions.
	Ratio = core.Ratio
	Diff  = core.Diff
	SumOf = core.SumOf
	MaxOf = core.MaxOf
	Pick  = core.Pick
	// Translate converts a compiled measure to its AW-RA expression
	// (Theorem 2); Eval evaluates an expression in memory.
	Translate = core.Translate
	Eval      = core.Eval
)

// Observability re-exports: pass a *Recorder through
// QueryOptions.Recorder to collect a span tree and engine metrics for
// a query, then render it with FormatTree, Snapshot, or
// WritePrometheus.
type (
	// Recorder collects spans and metrics for one query (nil is a
	// valid no-op recorder).
	Recorder = obs.Recorder
	// Span is one timed phase of a query.
	Span = obs.Span
	// MetricsSnapshot is a point-in-time JSON-serializable view of a
	// recorder.
	MetricsSnapshot = obs.Snapshot
)

// NewRecorder creates an empty observability recorder.
var NewRecorder = obs.New

// Storage helpers.
var (
	// CreateRecordFile / OpenRecordFile read and write the binary
	// fact-table format.
	CreateRecordFile = storage.Create
	OpenRecordFile   = storage.Open
	// WriteRecords writes a record slice to a file.
	WriteRecords = storage.WriteAll
	// ReadRecords loads a record file into memory.
	ReadRecords = storage.ReadAll
	// ImportCSV / ExportCSV convert between CSV and the binary format.
	ImportCSV = storage.ImportCSV
	ExportCSV = storage.ExportCSV
)
