package aw_test

import (
	"context"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"awra/aw"
)

// attackSchema builds the running-example schema of the paper.
func attackSchema(t *testing.T) *aw.Schema {
	t.Helper()
	s, err := aw.NewSchema([]*aw.Dimension{
		aw.TimeDimension("t"),
		aw.IPv4Dimension("U"),
		aw.IPv4Dimension("T"),
		aw.PortDimension("P"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func attackRecords(n int, seed int64) []aw.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]aw.Record, n)
	for i := range recs {
		sec := aw.SecondCode(2004, 3, 1+rng.Intn(3), rng.Intn(24), rng.Intn(60), rng.Intn(60))
		recs[i] = aw.Record{Dims: []int64{
			sec,
			aw.IPCode(1, rng.Intn(4), rng.Intn(4), rng.Intn(50)),
			aw.IPCode(10, 0, rng.Intn(8), rng.Intn(256)),
			int64(rng.Intn(1024)),
		}, Ms: []float64{}}
	}
	return recs
}

// busyWorkflow is Examples 1-3 of the paper: hourly per-source counts,
// then the number of busy sources per hour.
func busyWorkflow(t *testing.T, s *aw.Schema, threshold float64) *aw.Workflow {
	t.Helper()
	gHourIP, err := s.MakeGran(map[string]string{"t": "Hour", "U": "IP"})
	if err != nil {
		t.Fatal(err)
	}
	gHour, err := s.MakeGran(map[string]string{"t": "Hour"})
	if err != nil {
		t.Fatal(err)
	}
	return aw.NewWorkflow(s).
		Basic("Count", gHourIP, aw.Count, -1).
		Rollup("sCount", gHour, "Count", aw.Count, aw.Where(aw.MWhere(0, aw.Gt, threshold))).
		Rollup("sTraffic", gHour, "Count", aw.Sum, aw.Where(aw.MWhere(0, aw.Gt, threshold)))
}

func TestQueryInMemoryDefaultEngine(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(2000, 1)
	res, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromRecords(recs))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"Count", "sCount", "sTraffic"} {
		if res[m] == nil || len(res[m].Rows) == 0 {
			t.Fatalf("measure %s empty", m)
		}
	}
	// sTraffic >= 2*sCount per cell (each busy source has count > 1).
	sc, st := res["sCount"], res["sTraffic"]
	for k, v := range sc.Rows {
		if tv, ok := st.Rows[k]; !ok || tv < 2*v {
			t.Fatalf("cell %s: sCount %v, sTraffic %v", sc.Codec.Format(k), v, tv)
		}
	}
}

func TestAllEnginesAgreeOnFile(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(3000, 2)
	dir := t.TempDir()
	fact := filepath.Join(dir, "fact.rec")
	if err := aw.WriteRecords(fact, 4, 0, recs); err != nil {
		t.Fatal(err)
	}
	w := busyWorkflow(t, s, 1)
	want, err := aw.Run(context.Background(), w, aw.FromRecords(recs), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{Engine: aw.EngineSingleScan},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []aw.Engine{aw.EngineSortScan, aw.EngineSingleScan, aw.EngineMultiPass, aw.EngineRelational} {
		got, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromFile(fact), aw.QueryOptions{
			ExecOptions: aw.ExecOptions{Engine: eng},
			TempDir:     dir,
		})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		for name, tbl := range want {
			if !tbl.Equal(got[name], 1e-9) {
				t.Fatalf("%v: measure %s differs", eng, name)
			}
		}
	}
}

func TestQueryCompileError(t *testing.T) {
	s := attackSchema(t)
	w := aw.NewWorkflow(s).Rollup("r", s.AllGran(), "ghost", aw.Sum)
	if _, err := aw.Run(context.Background(), w, aw.FromRecords(nil)); err == nil {
		t.Fatal("invalid workflow accepted")
	}
}

func TestBestSortKeyAndExplain(t *testing.T) {
	s := attackSchema(t)
	c, err := busyWorkflow(t, s, 1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	key, bytes, err := aw.BestSortKey(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(key) == 0 || bytes <= 0 {
		t.Fatalf("key %v bytes %v", key, bytes)
	}
	text, err := aw.ExplainPlan(c, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "sort key") || !strings.Contains(text, "Count") {
		t.Errorf("explain output:\n%s", text)
	}
	if dot := aw.DOT(c); !strings.Contains(dot, "digraph") {
		t.Error("DOT output malformed")
	}
}

func TestParseEngine(t *testing.T) {
	cases := map[string]aw.Engine{
		"":           aw.EngineSortScan,
		"sortscan":   aw.EngineSortScan,
		"shardscan":  aw.EngineShardScan,
		"scan":       aw.EngineSingleScan,
		"singlescan": aw.EngineSingleScan,
		"multipass":  aw.EngineMultiPass,
		"db":         aw.EngineRelational,
		"relational": aw.EngineRelational,
	}
	for name, want := range cases {
		got, err := aw.ParseEngine(name)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := aw.ParseEngine("spark"); err == nil {
		t.Error("unknown engine accepted")
	}
	for _, e := range []aw.Engine{aw.EngineSortScan, aw.EngineShardScan, aw.EngineSingleScan, aw.EngineMultiPass, aw.EngineRelational} {
		if e.String() == "" || strings.HasPrefix(e.String(), "Engine(") {
			t.Errorf("engine %d has no name", e)
		}
	}
}

func TestSiblingAndCombineThroughFacade(t *testing.T) {
	// Example 4/5: moving average of busy-source counts and a ratio.
	s := attackSchema(t)
	gHourIP, _ := s.MakeGran(map[string]string{"t": "Hour", "U": "IP"})
	gHour, _ := s.MakeGran(map[string]string{"t": "Hour"})
	w := aw.NewWorkflow(s).
		Basic("Count", gHourIP, aw.Count, -1).
		Rollup("sCount", gHour, "Count", aw.Count, aw.Where(aw.MWhere(0, aw.Gt, 1))).
		Sliding("avgCount", "sCount", aw.Avg, []aw.Window{{Dim: 0, Lo: 0, Hi: 5}}).
		Combine("ratio", []string{"avgCount", "sCount"}, aw.Ratio(0, 1))
	res, err := aw.Run(context.Background(), w, aw.FromRecords(attackRecords(4000, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res["avgCount"].Rows) == 0 || len(res["ratio"].Rows) == 0 {
		t.Fatal("empty composite results")
	}
}

func TestCSVRoundTripThroughFacade(t *testing.T) {
	dir := t.TempDir()
	recPath := filepath.Join(dir, "a.rec")
	csvPath := filepath.Join(dir, "a.csv")
	recs := attackRecords(50, 4)
	if err := aw.WriteRecords(recPath, 4, 0, recs); err != nil {
		t.Fatal(err)
	}
	if err := aw.ExportCSV(recPath, csvPath, []string{"t", "U", "T", "P"}); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(dir, "b.rec")
	n, err := aw.ImportCSV(csvPath, back, 4)
	if err != nil || n != 50 {
		t.Fatalf("import: %v n=%d", err, n)
	}
}
