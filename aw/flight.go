package aw

import (
	"encoding/json"
	"io"

	"awra/internal/obs"
	"awra/internal/obs/flight"
	"awra/internal/qlog"
)

// Flight-recorder surface of the public API. Every Run/RunCompiled
// commits its finished trace — span tree, per-node profile, guard
// stats, retry-attempt chain — into the process-global flight ring
// under ExecOptions.TraceID (generated when empty). Pinned traces
// (errors, cancellations, budget trips, retries, slow queries) are
// additionally persisted into the history directory's traces log when
// the run carries a History, so slow-query post-mortems survive
// restarts.

// FlightTrace is one completed query's flight-recorder entry.
type FlightTrace = flight.Trace

// FlightSummary is the list-view projection of a flight trace.
type FlightSummary = flight.Summary

// NewTraceID returns a fresh flight-recorder trace ID (32 hex digits,
// the W3C trace-context format). Callers that need the ID before the
// run — to echo it to a client or print it alongside results —
// generate one here and pass it via ExecOptions.TraceID.
func NewTraceID() string { return flight.NewTraceID() }

// LookupTrace returns the retained flight trace with the given ID.
func LookupTrace(id string) (FlightTrace, bool) { return flight.Default.Get(id) }

// FlightTraces returns up to n retained trace summaries, newest first
// (n <= 0 = all).
func FlightTraces(n int) []FlightSummary { return flight.Default.List(n) }

// SlowTraces returns the slow-query log: retained traces at or above
// the effective slow threshold, slowest first.
func SlowTraces(n int) []FlightSummary { return flight.Default.Slow(n) }

// SetSlowThresholdUs sets the operator slow-query threshold in
// microseconds (0 reverts to the recorder's internal p99 fallback).
// The serve layer feeds it from its overload controller's sliding
// latency window.
func SetSlowThresholdUs(us int64) { flight.Default.SetSlowThreshold(us) }

// WriteTracesJSON writes the newest n trace summaries as indented JSON
// — the /debug/aw/traces payload.
func WriteTracesJSON(w io.Writer, n int) error { return flight.Default.WriteListJSON(w, n) }

// WriteSlowJSON writes the slow-query log as indented JSON — the
// /debug/aw/slow payload.
func WriteSlowJSON(w io.Writer, n int) error { return flight.Default.WriteSlowJSON(w, n) }

// WriteTraceJSON writes one full trace (span tree included) as
// indented JSON — the /debug/aw/traces/{id} payload; found=false means
// the ID is not retained.
func WriteTraceJSON(w io.Writer, id string) (found bool, err error) {
	return flight.Default.WriteTraceJSON(w, id)
}

// commitFlightTrace folds one finished run into the flight ring as a
// single attempt (the ring merges attempts sharing a trace ID), then
// persists the merged trace through the run's History when the ring
// pinned it. Re-persisting on every pinned commit means the trace
// log's last line for an ID carries the full attempt chain, and replay
// (last word wins) restores it whole.
func commitFlightTrace(o *QueryOptions, rec *HistoryRecord, span *obs.SpanSnapshot) {
	t := &flight.Trace{
		ID:         o.TraceID,
		Time:       rec.Time,
		RequestID:  rec.RequestID,
		Label:      rec.Label,
		Engine:     rec.Engine,
		SortKey:    rec.SortKey,
		Outcome:    rec.Outcome,
		Error:      rec.Error,
		DurationUs: rec.DurationUs,
		Attempts: []flight.Attempt{{
			Engine:     rec.Engine,
			Outcome:    rec.Outcome,
			Error:      rec.Error,
			DurationUs: rec.DurationUs,
			Guard: flight.GuardStats{
				ResultRows:  rec.ResultRows,
				SpillBytes:  rec.SpillBytes,
				CorruptRows: rec.CorruptRows,
			},
			Nodes: rec.Nodes,
			Span:  span,
		}},
	}
	merged, pinned := flight.Default.Commit(t)
	if pinned && o.History != nil {
		_ = o.History.AppendTrace(&merged)
	}
}

// tracesLogName is the base name of the pinned-trace log inside a
// history directory (traces.jsonl beside history.jsonl).
const tracesLogName = "traces"

// AppendTrace persists one pinned flight trace into the history
// directory's traces log. Nil-safe (drops the trace). Best effort at
// the call sites — a full disk must not fail a finished query.
func (h *History) AppendTrace(t *FlightTrace) error {
	if h == nil || t == nil {
		return nil
	}
	h.mu.Lock()
	tl := h.traces
	h.mu.Unlock()
	if tl == nil {
		return nil
	}
	b, err := json.Marshal(t)
	if err != nil {
		return err
	}
	return tl.AppendJSON(b)
}

// replayTraces restores the traces log into the flight ring so pinned
// traces — slow queries especially — survive restarts. Later lines for
// the same trace ID supersede earlier ones.
func replayTraces(dir string) {
	_, _ = qlog.ReplayLines(dir, tracesLogName, func(line []byte) bool {
		t := &flight.Trace{}
		if json.Unmarshal(line, t) != nil {
			return false
		}
		flight.Default.Restore(t)
		return true
	})
}
