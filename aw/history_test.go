package aw_test

import (
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"awra/aw"
	"awra/internal/obs"
)

func countSources(p *aw.Profile) (measured, other int) {
	for _, n := range p.Nodes {
		if n.EstSource == aw.SourceMeasured {
			measured++
		} else {
			other++
		}
	}
	return
}

// TestHistoryMeasuredFeedback is the tentpole round trip: run once with
// a History attached, and the second plan for the same workflow on the
// same collection uses measured cell counts, visibly in EXPLAIN.
func TestHistoryMeasuredFeedback(t *testing.T) {
	s := attackSchema(t)
	fact := writeAttackFact(t, attackRecords(3000, 31))
	dir := t.TempDir()
	h, err := aw.OpenHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	c, err := busyWorkflow(t, s, 1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	in := aw.FromFile(fact)
	o := aw.QueryOptions{
		ExecOptions: aw.ExecOptions{History: h},
		TempDir:     filepath.Dir(fact),
	}

	prof, err := aw.ExplainFor(c, in, o)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countSources(prof); m != 0 {
		t.Fatalf("plan used %d measured nodes before any run", m)
	}

	if _, err := aw.RunCompiled(context.Background(), c, in, o); err != nil {
		t.Fatal(err)
	}
	if n := h.Len(); n != 1 {
		t.Fatalf("history has %d records after one run, want 1", n)
	}
	if h.MeasuredStats() == 0 {
		t.Fatal("no measured statistics after a successful run")
	}

	prof2, err := aw.ExplainFor(c, in, o)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countSources(prof2); m == 0 {
		t.Fatalf("second plan has no measured nodes: %+v", prof2.Nodes)
	}
	if !strings.Contains(prof2.String(), "(measured)") {
		t.Errorf("EXPLAIN does not label measured estimates:\n%s", prof2.String())
	}
	b, err := json.Marshal(prof2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"est_source":"measured"`) {
		t.Errorf("profile JSON lacks est_source=measured: %s", b)
	}

	// A plan without the history must not see measured statistics.
	plain, err := aw.ExplainFor(c, in, aw.QueryOptions{TempDir: filepath.Dir(fact)})
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countSources(plain); m != 0 {
		t.Fatalf("history-free plan claims %d measured nodes", m)
	}

	// The second run itself still succeeds and appends.
	if _, err := aw.RunCompiled(context.Background(), c, in, o); err != nil {
		t.Fatal(err)
	}
	if n := h.Len(); n != 2 {
		t.Fatalf("history has %d records after two runs, want 2", n)
	}
}

// TestHistoryAnalyzeLabelsFirstRunUnmeasured guards the freeze
// semantics: ExplainAnalyze's profile reflects what the planner knew
// before the run, so the very first analyzed run must not label itself
// "measured" from its own record.
func TestHistoryAnalyzeLabelsFirstRunUnmeasured(t *testing.T) {
	s := attackSchema(t)
	fact := writeAttackFact(t, attackRecords(2000, 32))
	h, err := aw.OpenHistory(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	c, err := busyWorkflow(t, s, 1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	o := aw.QueryOptions{ExecOptions: aw.ExecOptions{History: h}, TempDir: filepath.Dir(fact)}
	r1, err := aw.ExplainAnalyzeCompiled(context.Background(), c, aw.FromFile(fact), o)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countSources(r1.Profile); m != 0 {
		t.Fatalf("first analyzed run labeled %d nodes measured from its own record", m)
	}
	r2, err := aw.ExplainAnalyzeCompiled(context.Background(), c, aw.FromFile(fact), o)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countSources(r2.Profile); m == 0 {
		t.Fatal("second analyzed run planned without measured statistics")
	}
}

// TestHistorySurvivesRestart: the JSONL log is the source of truth —
// reopening the directory restores the measured store, the recent ring,
// and the latency percentiles.
func TestHistorySurvivesRestart(t *testing.T) {
	s := attackSchema(t)
	fact := writeAttackFact(t, attackRecords(2000, 33))
	dir := t.TempDir()
	h, err := aw.OpenHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := busyWorkflow(t, s, 1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	in := aw.FromFile(fact)
	o := aw.QueryOptions{ExecOptions: aw.ExecOptions{History: h}, TempDir: filepath.Dir(fact)}
	if _, err := aw.RunCompiled(context.Background(), c, in, o); err != nil {
		t.Fatal(err)
	}
	wantStats := h.MeasuredStats()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	h2, err := aw.OpenHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if n := h2.Len(); n != 1 {
		t.Fatalf("reopened history has %d records, want 1", n)
	}
	if got := h2.MeasuredStats(); got != wantStats {
		t.Fatalf("reopened history has %d measured stats, want %d", got, wantStats)
	}
	sum := h2.Summary(10)
	if len(sum.Recent) != 1 || sum.Recent[0].Outcome != aw.OutcomeOK {
		t.Fatalf("reopened summary recent = %+v", sum.Recent)
	}
	if len(sum.Latency) == 0 || sum.Latency[0].Count != 1 || sum.Latency[0].P50Us <= 0 {
		t.Fatalf("reopened summary lost latency histograms: %+v", sum.Latency)
	}
	// And the restored store still feeds plans.
	o2 := aw.QueryOptions{ExecOptions: aw.ExecOptions{History: h2}, TempDir: filepath.Dir(fact)}
	prof, err := aw.ExplainFor(c, in, o2)
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := countSources(prof); m == 0 {
		t.Fatal("plan after restart has no measured nodes")
	}
}

// inflightEmpty asserts no query is stuck in the process-global
// registry.
func inflightEmpty(t *testing.T) {
	t.Helper()
	if qs := obs.DefaultInflight.Snapshot(); len(qs) != 0 {
		t.Fatalf("in-flight registry not empty: %+v", qs)
	}
}

// TestHistoryEarlyFailures: queries that fail before (or immediately
// after) reaching an engine must leave the in-flight registry clean AND
// still produce a history record with the right outcome.
func TestHistoryEarlyFailures(t *testing.T) {
	s := attackSchema(t)
	fact := writeAttackFact(t, attackRecords(2000, 34))
	h, err := aw.OpenHistory(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// 1. Compile error: never enters the registry, still recorded.
	bad := aw.NewWorkflow(s).Rollup("orphan", aw.Gran{0, 0, 0, 0}, "missing", aw.Sum)
	if _, err := aw.Run(context.Background(), bad, aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{History: h},
	}); err == nil {
		t.Fatal("compile error did not surface")
	}
	inflightEmpty(t)
	if n := h.Len(); n != 1 {
		t.Fatalf("history has %d records after compile error, want 1", n)
	}
	if r := h.Recent(1)[0]; r.Outcome != aw.OutcomeError || r.Error == "" {
		t.Fatalf("compile-error record = %+v", r)
	}

	// 2. Unshardable plan: forcing shardscan on a workflow whose sliding
	// window spans shard units fails in planning.
	gHourIP, err := s.MakeGran(map[string]string{"t": "Hour", "U": "IP"})
	if err != nil {
		t.Fatal(err)
	}
	win := aw.NewWorkflow(s).
		Basic("Count", gHourIP, aw.Count, -1).
		Sliding("prev", "Count", aw.Sum, []aw.Window{{Dim: 0, Lo: -1, Hi: -1}})
	if _, err := aw.Run(context.Background(), win, aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{History: h, Engine: aw.EngineShardScan, Parallelism: 2},
		TempDir:     filepath.Dir(fact),
	}); err == nil {
		t.Fatal("unshardable plan did not surface an error")
	}
	inflightEmpty(t)
	if n := h.Len(); n != 2 {
		t.Fatalf("history has %d records after unshardable plan, want 2", n)
	}
	if r := h.Recent(1)[0]; r.Outcome != aw.OutcomeError {
		t.Fatalf("unshardable-plan record = %+v", r)
	}

	// 3. Immediate budget rejection.
	if _, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{History: h, MaxResultRows: 1},
		TempDir:     filepath.Dir(fact),
	}); !errors.Is(err, aw.ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	inflightEmpty(t)
	if r := h.Recent(1)[0]; r.Outcome != aw.OutcomeBudget {
		t.Fatalf("budget record = %+v", r)
	}

	// 4. Timeout: recorded as canceled.
	if _, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{History: h, Timeout: time.Nanosecond},
		TempDir:     filepath.Dir(fact),
	}); !errors.Is(err, aw.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded", err)
	}
	inflightEmpty(t)
	if r := h.Recent(1)[0]; r.Outcome != aw.OutcomeCanceled {
		t.Fatalf("timeout record = %+v", r)
	}
	if n := h.Len(); n != 4 {
		t.Fatalf("history has %d records, want 4", n)
	}
}

// TestHistoryRecordContents spot-checks the fields downstream tooling
// depends on: phases, node profiles with signatures, and fingerprints.
func TestHistoryRecordContents(t *testing.T) {
	s := attackSchema(t)
	fact := writeAttackFact(t, attackRecords(2000, 35))
	h, err := aw.OpenHistory(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	c, err := busyWorkflow(t, s, 1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aw.RunCompiled(context.Background(), c, aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{History: h, Engine: aw.EngineSortScan},
		TempDir:     filepath.Dir(fact),
	}); err != nil {
		t.Fatal(err)
	}
	r := h.Recent(1)[0]
	if r.Engine != "sortscan" || r.Outcome != aw.OutcomeOK {
		t.Fatalf("record = %+v", r)
	}
	if r.QueryFP == "" || !strings.HasPrefix(r.CollectionFP, "f-") {
		t.Fatalf("missing fingerprints: %q %q", r.QueryFP, r.CollectionFP)
	}
	if r.DurationUs <= 0 || r.RecordsScanned == 0 {
		t.Fatalf("missing run totals: %+v", r)
	}
	if len(r.Phases) == 0 {
		t.Fatal("no phase durations")
	}
	if r.SortKey == "" {
		t.Fatal("no sort key on a sortscan run")
	}
	if len(r.Nodes) != 3 {
		t.Fatalf("got %d node profiles, want 3", len(r.Nodes))
	}
	for _, n := range r.Nodes {
		if n.Sig == "" {
			t.Fatalf("node %q has no signature", n.Node)
		}
		if n.CellsFinalized == 0 {
			t.Fatalf("node %q has no finalized cells: %+v", n.Node, n)
		}
	}
}
