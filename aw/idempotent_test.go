package aw_test

// Regression tests for the serving layer's two library-side contracts:
// a retried-then-successful degraded read publishes rows_corrupt_skipped
// once (not once per attempt), and history records carrying the same
// RequestID supersede each other (server-side retries never double-log).

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"awra/aw"
	"awra/internal/obs"
)

// corruptAttackRecord flips a byte in record i of a fact file written
// by writeAttackFact (4 dims, 0 measures, format v2: 36-byte records
// after a 32-byte header).
func corruptAttackRecord(t *testing.T, path string, i int) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[32+i*36] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFaultFallbackCorruptSkipCountedOnce: a degraded read whose
// sort/scan attempt trips the live-cell budget is retried as
// multi-pass, re-reading the file and re-skipping the same corrupt
// rows. The published rows_corrupt_skipped must match a direct
// multi-pass run — the failed attempt's skips must not be added on top.
func TestFaultFallbackCorruptSkipCountedOnce(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(3000, 24)
	fact := writeAttackFact(t, recs)
	for _, i := range []int{100, 1500, 2500} {
		corruptAttackRecord(t, fact, i)
	}
	gT, err := s.MakeGran(map[string]string{"t": "Second"})
	if err != nil {
		t.Fatal(err)
	}
	gU, err := s.MakeGran(map[string]string{"U": "IP"})
	if err != nil {
		t.Fatal(err)
	}
	wf := func() *aw.Workflow {
		return aw.NewWorkflow(s).
			Basic("mT", gT, aw.Count, -1).
			Basic("mU", gU, aw.Count, -1)
	}
	// The same wildly wrong claimed cardinalities as
	// TestFaultAutoFallbackMultipass: EngineAuto picks sort/scan, the
	// run-time frontier blows MaxLiveCells, multi-pass rescues it.
	baseCards := []float64{1.5e7, 1.5e7, 1, 1}

	// Baseline: a direct multi-pass run with the budget the fallback
	// retry will compute (MaxLiveCells * 64 bytes/cell). Its corrupt
	// count is what one final attempt reports — multi-pass may lawfully
	// skip a corrupt row once per pass, so the baseline is measured, not
	// assumed to be 3.
	recMP := aw.NewRecorder()
	if _, err := aw.Run(context.Background(), wf(), aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{
			Engine:          aw.EngineMultiPass,
			MemoryBudget:    400 * 64,
			MaxLiveCells:    400,
			SkipCorruptRows: true,
			Recorder:        recMP,
		},
		TempDir:   t.TempDir(),
		BaseCards: baseCards,
	}); err != nil {
		t.Fatalf("baseline multipass: %v", err)
	}
	want := recMP.Counter(obs.MRowsCorruptSkipped).Value()
	if want == 0 {
		t.Fatal("baseline skipped no corrupt rows; corruption setup is wrong")
	}

	rec := aw.NewRecorder()
	if _, err := aw.Run(context.Background(), wf(), aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{
			Engine:          aw.EngineAuto,
			MaxLiveCells:    400,
			SkipCorruptRows: true,
			Recorder:        rec,
		},
		TempDir:   t.TempDir(),
		BaseCards: baseCards,
	}); err != nil {
		t.Fatalf("fallback run: %v", err)
	}
	if n := rec.Counter(obs.MFallbackSwitches).Value(); n != 1 {
		t.Fatalf("fallback_engine_switches = %d, want 1 (setup no longer forces the fallback)", n)
	}
	if got := rec.Counter(obs.MRowsCorruptSkipped).Value(); got != want {
		t.Errorf("rows_corrupt_skipped = %d after fallback, want %d (failed attempt must not be added)", got, want)
	}
}

// TestHistoryRequestIDSupersedes: records sharing a RequestID count
// once — the later record (the retry's final outcome) replaces the
// earlier in the recent ring and the total, both live and across a
// reopen's replay.
func TestHistoryRequestIDSupersedes(t *testing.T) {
	dir := t.TempDir()
	h, err := aw.OpenHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	app := func(id, outcome string) {
		t.Helper()
		if err := h.Append(&aw.HistoryRecord{RequestID: id, Label: "q", Engine: "sortscan",
			Outcome: outcome, DurationUs: 5}); err != nil {
			t.Fatal(err)
		}
	}
	app("req-1", aw.OutcomeError) // a transiently-failed attempt
	app("req-1", aw.OutcomeOK)    // its successful retry
	app("req-2", aw.OutcomeOK)
	app("", aw.OutcomeOK) // records without IDs never dedupe
	app("", aw.OutcomeOK)

	check := func(h *aw.History, phase string) {
		t.Helper()
		if n := h.Len(); n != 4 {
			t.Fatalf("%s: Len = %d, want 4 (req-1 retried, 2 anonymous)", phase, n)
		}
		var got []string
		for _, r := range h.Recent(10) {
			if r.RequestID == "req-1" {
				got = append(got, r.Outcome)
			}
		}
		if len(got) != 1 || got[0] != aw.OutcomeOK {
			t.Fatalf("%s: req-1 records = %v, want exactly one with outcome ok", phase, got)
		}
	}
	check(h, "live")
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay applies the same supersede rule: the on-disk log keeps both
	// attempts, the views keep one.
	h2, err := aw.OpenHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	check(h2, "replayed")
}

// TestRunRequestIDInHistory: the RequestID option flows end-to-end into
// the appended record, including for compile failures (which never
// reach an engine but still log).
func TestRunRequestIDInHistory(t *testing.T) {
	s := attackSchema(t)
	fact := writeAttackFact(t, attackRecords(200, 7))
	dir := t.TempDir()
	h, err := aw.OpenHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	if _, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{History: h, RequestID: "good-1"},
		TempDir:     filepath.Dir(fact),
	}); err != nil {
		t.Fatal(err)
	}

	gHour, err := s.MakeGran(map[string]string{"t": "Hour"})
	if err != nil {
		t.Fatal(err)
	}
	bad := aw.NewWorkflow(s).Rollup("r", gHour, "missing", aw.Sum)
	if _, err := aw.Run(context.Background(), bad, aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{History: h, RequestID: "bad-1"},
	}); err == nil {
		t.Fatal("rollup over a missing measure compiled")
	}

	byID := map[string]string{}
	for _, r := range h.Recent(10) {
		byID[r.RequestID] = r.Outcome
	}
	if byID["good-1"] != aw.OutcomeOK {
		t.Errorf("good-1 outcome = %q, want ok", byID["good-1"])
	}
	if byID["bad-1"] != aw.OutcomeError {
		t.Errorf("bad-1 outcome = %q, want error", byID["bad-1"])
	}
}
