package aw_test

import (
	"context"
	"fmt"

	"awra/aw"
)

// ExampleRun computes the paper's Example 1 and 2 measures (per-hour
// per-source counts, then the number of busy sources per hour) over a
// tiny hand-built attack log.
func ExampleRun() {
	schema := aw.MustSchema([]*aw.Dimension{
		aw.TimeDimension("t"),
		aw.IPv4Dimension("U"),
	})
	rec := func(hour, minute, a, b, c, d int) aw.Record {
		return aw.Record{Dims: []int64{
			aw.SecondCode(2004, 3, 1, hour, minute, 0),
			aw.IPCode(a, b, c, d),
		}, Ms: []float64{}}
	}
	// Source 1.2.3.4 sends three packets in hour 9; 1.2.3.5 sends one.
	recs := []aw.Record{
		rec(9, 0, 1, 2, 3, 4), rec(9, 5, 1, 2, 3, 4), rec(9, 10, 1, 2, 3, 4),
		rec(9, 20, 1, 2, 3, 5),
		rec(10, 0, 1, 2, 3, 5), rec(10, 1, 1, 2, 3, 5),
	}

	gHourSrc, _ := schema.MakeGran(map[string]string{"t": "Hour", "U": "IP"})
	gHour, _ := schema.MakeGran(map[string]string{"t": "Hour"})
	wf := aw.NewWorkflow(schema).
		Basic("Count", gHourSrc, aw.Count, -1).
		Rollup("busy", gHour, "Count", aw.Count, aw.Where(aw.MWhere(0, aw.Ge, 2)))

	res, _ := aw.Run(context.Background(), wf, aw.FromRecords(recs))
	busy := res["busy"]
	for _, k := range busy.SortedKeys() {
		fmt.Printf("%s: %g busy sources\n", busy.Codec.Format(k), busy.Rows[k])
	}
	// Output:
	// t:2004-03-01 09h: 1 busy sources
	// t:2004-03-01 10h: 1 busy sources
}

// ExampleWorkflow_Sliding shows a sibling match join: a trailing
// two-hour sum over hourly counts.
func ExampleWorkflow_Sliding() {
	schema := aw.MustSchema([]*aw.Dimension{aw.TimeDimension("t")})
	var recs []aw.Record
	for hour, n := range []int{1, 2, 4} {
		for i := 0; i < n; i++ {
			recs = append(recs, aw.Record{
				Dims: []int64{aw.SecondCode(2004, 3, 1, 9+hour, i, 0)},
				Ms:   []float64{},
			})
		}
	}
	gHour, _ := schema.MakeGran(map[string]string{"t": "Hour"})
	wf := aw.NewWorkflow(schema).
		Basic("cnt", gHour, aw.Count, -1).
		Sliding("sum2h", "cnt", aw.Sum, []aw.Window{{Dim: 0, Lo: -1, Hi: 0}})

	res, _ := aw.Run(context.Background(), wf, aw.FromRecords(recs))
	tbl := res["sum2h"]
	for _, k := range tbl.SortedKeys() {
		fmt.Printf("%s: %g\n", tbl.Codec.Format(k), tbl.Rows[k])
	}
	// Output:
	// t:2004-03-01 09h: 1
	// t:2004-03-01 10h: 3
	// t:2004-03-01 11h: 6
}

// ExampleTranslate renders a workflow measure as its AW-RA algebra
// expression (Theorem 2 of the paper).
func ExampleTranslate() {
	schema := aw.MustSchema([]*aw.Dimension{
		aw.TimeDimension("t"),
		aw.IPv4Dimension("U"),
	})
	gHourSrc, _ := schema.MakeGran(map[string]string{"t": "Hour", "U": "IP"})
	gHour, _ := schema.MakeGran(map[string]string{"t": "Hour"})
	c, _ := aw.NewWorkflow(schema).
		Basic("Count", gHourSrc, aw.Count, -1).
		Rollup("busy", gHour, "Count", aw.Count, aw.Where(aw.MWhere(0, aw.Gt, 5))).
		Compile()
	e, _ := aw.Translate(c, "busy")
	fmt.Println(e)
	// Output:
	// g_(t:Hour),count(sigma_[M0 > 5](g_(t:Hour, U:IP),count(D)))
}
