package aw_test

import (
	"context"
	"errors"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"awra/aw"
	"awra/internal/obs"
)

func writeAttackFact(t *testing.T, recs []aw.Record) string {
	t.Helper()
	fact := filepath.Join(t.TempDir(), "fact.rec")
	if err := aw.WriteRecords(fact, 4, 0, recs); err != nil {
		t.Fatal(err)
	}
	return fact
}

func TestFaultTimeoutDeadlineExceeded(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(5000, 21)
	fact := writeAttackFact(t, recs)
	rec := aw.NewRecorder()
	_, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{Timeout: time.Nanosecond, Recorder: rec},
		TempDir:     filepath.Dir(fact),
	})
	if !errors.Is(err, aw.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded", err)
	}
	if n := rec.Counter(obs.MQueriesCanceled).Value(); n != 1 {
		t.Errorf("queries_canceled = %d, want 1", n)
	}
}

func TestFaultMaxResultRowsBudget(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(2000, 22)
	fact := writeAttackFact(t, recs)
	rec := aw.NewRecorder()
	_, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{MaxResultRows: 10, Recorder: rec},
		TempDir:     filepath.Dir(fact),
	})
	be, ok := aw.AsBudgetError(err)
	if !ok || be.Resource != aw.ResResultRows {
		t.Fatalf("got %v, want result-rows BudgetError", err)
	}
	if !errors.Is(err, aw.ErrBudgetExceeded) {
		t.Fatalf("BudgetError does not unwrap to ErrBudgetExceeded: %v", err)
	}
	if n := rec.Counter(obs.MBudgetRejections).Value(); n != 1 {
		t.Errorf("budget_rejections = %d, want 1", n)
	}
}

func TestFaultMaxSpillBytesBudget(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(5000, 23)
	fact := writeAttackFact(t, recs)
	_, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{Engine: aw.EngineSortScan, MaxSpillBytes: 1024},
		TempDir:     filepath.Dir(fact),
	})
	be, ok := aw.AsBudgetError(err)
	if !ok || be.Resource != aw.ResSpillBytes {
		t.Fatalf("got %v, want spill BudgetError", err)
	}
}

// TestFaultPanicRecovered: malformed in-memory records (fewer dims than
// the schema) panic deep inside an engine; the public API must turn
// that into an error, not crash the caller.
func TestFaultPanicRecovered(t *testing.T) {
	s := attackSchema(t)
	bad := []aw.Record{{Dims: []int64{1}, Ms: nil}, {Dims: []int64{2}, Ms: nil}}
	_, err := aw.Run(context.Background(), busyWorkflow(t, s, 1), aw.FromRecords(bad))
	if err == nil {
		t.Fatal("malformed records evaluated without error")
	}
	if !strings.Contains(err.Error(), "internal error") {
		t.Fatalf("got %v, want an internal-error report", err)
	}
}

// TestFaultAutoFallbackMultipass: EngineAuto picks sort/scan off wildly
// wrong cardinality estimates; the run-time live-cell guardrail trips,
// and the query must degrade to multi-pass and still produce correct
// results, counting one fallback_engine_switches.
func TestFaultAutoFallbackMultipass(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(3000, 24)
	fact := writeAttackFact(t, recs)
	gT, err := s.MakeGran(map[string]string{"t": "Second"})
	if err != nil {
		t.Fatal(err)
	}
	gU, err := s.MakeGran(map[string]string{"U": "IP"})
	if err != nil {
		t.Fatal(err)
	}
	wf := func() *aw.Workflow {
		return aw.NewWorkflow(s).
			Basic("mT", gT, aw.Count, -1).
			Basic("mU", gU, aw.Count, -1)
	}

	want, err := aw.Run(context.Background(), wf(), aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{Engine: aw.EngineSingleScan},
		TempDir:     filepath.Dir(fact),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Claimed cardinalities make single-scan look too big for the
	// default budget while one sorted pass looks fine; the real data has
	// ~3000 distinct seconds and ~750 distinct IPs, so whichever
	// dimension the chosen key leaves unsorted overflows MaxLiveCells.
	rec := aw.NewRecorder()
	got, err := aw.Run(context.Background(), wf(), aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{
			Engine:       aw.EngineAuto,
			MaxLiveCells: 400,
			Recorder:     rec,
		},
		TempDir:   filepath.Dir(fact),
		BaseCards: []float64{1.5e7, 1.5e7, 1, 1},
	})
	if err != nil {
		t.Fatalf("fallback did not rescue the query: %v", err)
	}
	if n := rec.Counter(obs.MFallbackSwitches).Value(); n != 1 {
		t.Errorf("fallback_engine_switches = %d, want 1", n)
	}
	for name, tbl := range want {
		if !tbl.Equal(got[name], 1e-9) {
			t.Errorf("measure %s differs after fallback", name)
		}
	}
}

// TestFaultAutoInMemoryBudgetKeepsTypedError: with an in-memory input
// the multipass fallback is unavailable, so an EngineAuto sort/scan
// attempt that blows the live-cell budget must surface the original
// typed BudgetError (counted as a budget rejection), not a
// "requires a file input" retry failure.
func TestFaultAutoInMemoryBudgetKeepsTypedError(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(3000, 24)
	gT, err := s.MakeGran(map[string]string{"t": "Second"})
	if err != nil {
		t.Fatal(err)
	}
	gU, err := s.MakeGran(map[string]string{"U": "IP"})
	if err != nil {
		t.Fatal(err)
	}
	wf := aw.NewWorkflow(s).
		Basic("mT", gT, aw.Count, -1).
		Basic("mU", gU, aw.Count, -1)

	rec := aw.NewRecorder()
	_, err = aw.Run(context.Background(), wf, aw.FromRecords(recs), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{
			Engine:       aw.EngineAuto,
			MaxLiveCells: 400,
			Recorder:     rec,
		},
		BaseCards: []float64{1.5e7, 1.5e7, 1, 1},
	})
	be, ok := aw.AsBudgetError(err)
	if !ok || be.Resource != aw.ResLiveCells {
		t.Fatalf("got %v, want live-cells BudgetError", err)
	}
	if n := rec.Counter(obs.MFallbackSwitches).Value(); n != 0 {
		t.Errorf("fallback_engine_switches = %d, want 0 for in-memory input", n)
	}
	if n := rec.Counter(obs.MBudgetRejections).Value(); n != 1 {
		t.Errorf("budget_rejections = %d, want 1", n)
	}
}

// sortForStream orders records by the stream's arrival key.
func sortForStream(s *aw.Schema, key aw.SortKey, recs []aw.Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		return key.RecordLess(s, &recs[i], &recs[j])
	})
}

func TestFaultStreamCancelMidPush(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(2000, 25)
	ctx, cancel := context.WithCancel(context.Background())
	stream, err := aw.RunStream(ctx, busyWorkflow(t, s, 1), aw.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sortForStream(s, stream.SortKey(), recs)
	cancel()
	var pushErr error
	for i := range recs {
		if pushErr = stream.Push(&recs[i]); pushErr != nil {
			break
		}
	}
	if !errors.Is(pushErr, aw.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled within the push stride", pushErr)
	}
}

func TestFaultStreamLiveCellBudget(t *testing.T) {
	s := attackSchema(t)
	recs := attackRecords(3000, 26)
	gIP, err := s.MakeGran(map[string]string{"U": "IP"})
	if err != nil {
		t.Fatal(err)
	}
	// A per-IP measure under a time-ordered stream cannot finalize any
	// cell before end-of-stream, so the frontier grows to the ~750
	// distinct source IPs and must trip the 50-cell budget at a push
	// stride. (A well-aligned key keeps the frontier tiny — that is the
	// paper's point — so the budget is exercised with a hostile key.)
	w := aw.NewWorkflow(s).Basic("perIP", gIP, aw.Count, -1)
	key := aw.SortKey{{Dim: 0, Lvl: 0}}
	stream, err := aw.RunStream(context.Background(), w, aw.StreamOptions{
		ExecOptions: aw.ExecOptions{MaxLiveCells: 50},
		SortKey:     key,
	})
	if err != nil {
		t.Fatal(err)
	}
	sortForStream(s, key, recs)
	var pushErr error
	for i := range recs {
		if pushErr = stream.Push(&recs[i]); pushErr != nil {
			break
		}
	}
	be, ok := aw.AsBudgetError(pushErr)
	if !ok || be.Resource != aw.ResLiveCells {
		t.Fatalf("got %v, want live-cells BudgetError", pushErr)
	}
}
