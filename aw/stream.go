package aw

import (
	"awra/internal/exec/sortscan"
	"awra/internal/opt"
	"awra/internal/plan"
)

// Stream is a continuous evaluation session: records pushed in sort
// order flow through the one-pass streaming engine, and finalized
// measure values are delivered through the Emit callback as soon as no
// future record can change them. This is the natural mode for the
// paper's monitoring workloads, where logs arrive ordered by time.
type Stream struct {
	s        *sortscan.Session
	compiled *Compiled
	key      SortKey
}

// StreamOptions configures OpenStream.
type StreamOptions struct {
	// SortKey is the order records will arrive in; nil asks the
	// optimizer (which usually picks a time-leading key for monitoring
	// schemas, matching arrival order).
	SortKey SortKey
	// Emit receives each finalized (measure, region, value).
	Emit func(measure string, key Key, value float64)
	// ValidateOrder rejects out-of-order pushes.
	ValidateOrder bool
	// BaseCards feeds the optimizer when SortKey is nil.
	BaseCards []float64
}

// OpenStream compiles the workflow and starts a streaming session.
func OpenStream(w *Workflow, o StreamOptions) (*Stream, error) {
	c, err := w.Compile()
	if err != nil {
		return nil, err
	}
	return OpenStreamCompiled(c, o)
}

// OpenStreamCompiled starts a streaming session over a compiled
// workflow.
func OpenStreamCompiled(c *Compiled, o StreamOptions) (*Stream, error) {
	st := &plan.Stats{BaseCard: o.BaseCards}
	key := o.SortKey
	if key == nil {
		ch, err := opt.Best(c, st)
		if err != nil {
			return nil, err
		}
		key = ch.Key
	}
	nk, err := key.Normalize(c.Schema)
	if err != nil {
		return nil, err
	}
	pl, err := plan.Build(c, nk, st)
	if err != nil {
		return nil, err
	}
	var emit sortscan.EmitFunc
	if o.Emit != nil {
		emit = sortscan.EmitFunc(o.Emit)
	}
	s := sortscan.NewSession(c, pl, sortscan.SessionOptions{
		Emit:          emit,
		ValidateOrder: o.ValidateOrder,
	})
	return &Stream{s: s, compiled: c, key: nk}, nil
}

// SortKey returns the order records must be pushed in.
func (st *Stream) SortKey() SortKey { return st.key }

// Workflow returns the compiled workflow (for resolving measure codecs
// in Emit callbacks).
func (st *Stream) Workflow() *Compiled { return st.compiled }

// Push feeds one record.
func (st *Stream) Push(rec *Record) error { return st.s.Push(rec) }

// Records reports how many records have been pushed.
func (st *Stream) Records() int64 { return st.s.Records() }

// LiveCells reports the current streaming frontier size.
func (st *Stream) LiveCells() int64 { return st.s.LiveCells() }

// Close flushes everything and returns the complete results.
func (st *Stream) Close() (Results, error) {
	res, err := st.s.Close()
	if err != nil {
		return nil, err
	}
	return res.Tables, nil
}
