package aw

import (
	"context"

	"awra/internal/exec/sortscan"
	"awra/internal/opt"
	"awra/internal/plan"
	"awra/internal/qguard"
)

// Stream is a continuous evaluation session: records pushed in sort
// order flow through the one-pass streaming engine, and finalized
// measure values are delivered through the Emit callback as soon as no
// future record can change them. This is the natural mode for the
// paper's monitoring workloads, where logs arrive ordered by time.
type Stream struct {
	s        *sortscan.Session
	compiled *Compiled
	key      SortKey
	cancel   context.CancelFunc
}

// StreamOptions configures streaming sessions (RunStream). The
// execution knobs shared with batch evaluation live in the embedded
// ExecOptions; a session honors its Recorder, Timeout, MaxLiveCells,
// and MaxResultRows, and ignores the batch-only fields (Engine,
// MemoryBudget, Parallelism, MaxSpillBytes, SkipCorruptRows,
// ReadBatchSize).
type StreamOptions struct {
	ExecOptions
	// SortKey is the order records will arrive in; nil asks the
	// optimizer (which usually picks a time-leading key for monitoring
	// schemas, matching arrival order).
	SortKey SortKey
	// Emit receives each finalized (measure, region, value).
	Emit func(measure string, key Key, value float64)
	// ValidateOrder rejects out-of-order pushes.
	ValidateOrder bool
	// BaseCards feeds the optimizer when SortKey is nil.
	BaseCards []float64
}

// RunStream compiles the workflow and starts a streaming session bound
// to ctx: canceling the context makes subsequent pushes fail with
// ErrCanceled, and the StreamOptions guardrails (Timeout, MaxLiveCells,
// MaxResultRows) are enforced cooperatively at push strides.
func RunStream(ctx context.Context, w *Workflow, o StreamOptions) (*Stream, error) {
	c, err := w.Compile()
	if err != nil {
		return nil, err
	}
	return RunStreamCompiled(ctx, c, o)
}

// RunStreamCompiled is RunStream over a compiled workflow.
func RunStreamCompiled(ctx context.Context, c *Compiled, o StreamOptions) (*Stream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	no, err := o.ExecOptions.normalize()
	if err != nil {
		return nil, err
	}
	o.ExecOptions = no
	var cancel context.CancelFunc
	if o.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
	}
	g := qguard.New(ctx, qguard.Limits{
		MaxLiveCells:  o.MaxLiveCells,
		MaxResultRows: o.MaxResultRows,
	})
	st, err := openStreamCompiled(c, o, g)
	if err != nil {
		if cancel != nil {
			cancel()
		}
		return nil, err
	}
	st.cancel = cancel
	return st, nil
}

func openStreamCompiled(c *Compiled, o StreamOptions, g *qguard.Guard) (*Stream, error) {
	st := &plan.Stats{BaseCard: o.BaseCards}
	key := o.SortKey
	if key == nil {
		ch, err := opt.Best(c, st)
		if err != nil {
			return nil, err
		}
		key = ch.Key
	}
	nk, err := key.Normalize(c.Schema)
	if err != nil {
		return nil, err
	}
	pl, err := plan.Build(c, nk, st)
	if err != nil {
		return nil, err
	}
	var emit sortscan.EmitFunc
	if o.Emit != nil {
		emit = sortscan.EmitFunc(o.Emit)
	}
	s := sortscan.NewSession(c, pl, sortscan.SessionOptions{
		Emit:          emit,
		ValidateOrder: o.ValidateOrder,
		Recorder:      o.Recorder,
		Guard:         g,
	})
	return &Stream{s: s, compiled: c, key: nk}, nil
}

// SortKey returns the order records must be pushed in.
func (st *Stream) SortKey() SortKey { return st.key }

// Workflow returns the compiled workflow (for resolving measure codecs
// in Emit callbacks).
func (st *Stream) Workflow() *Compiled { return st.compiled }

// Push feeds one record.
func (st *Stream) Push(rec *Record) error { return st.s.Push(rec) }

// Records reports how many records have been pushed.
func (st *Stream) Records() int64 { return st.s.Records() }

// LiveCells reports the current streaming frontier size.
func (st *Stream) LiveCells() int64 { return st.s.LiveCells() }

// Close flushes everything and returns the complete results. It also
// releases the session's deadline timer when one was set.
func (st *Stream) Close() (Results, error) {
	if st.cancel != nil {
		defer st.cancel()
	}
	res, err := st.s.Close()
	if err != nil {
		return nil, err
	}
	return res.Tables, nil
}
