package aw

import (
	"sort"

	"awra/internal/agg"
)

// Row is a decoded result row: a formatted region plus its value.
type Row struct {
	Key    Key
	Label  string
	Value  float64
	Region Region
}

// TopK returns the k rows of a table with the largest values (NULLs
// excluded), ties broken by key order. k <= 0 returns all non-NULL
// rows sorted descending.
func TopK(t *Table, k int) []Row {
	rows := make([]Row, 0, len(t.Rows))
	for key, v := range t.Rows {
		if agg.IsNull(v) {
			continue
		}
		rows = append(rows, Row{Key: key, Value: v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Value != rows[j].Value {
			return rows[i].Value > rows[j].Value
		}
		return rows[i].Key < rows[j].Key
	})
	if k > 0 && len(rows) > k {
		rows = rows[:k]
	}
	for i := range rows {
		rows[i].Label = t.Codec.Format(rows[i].Key)
		rows[i].Region = RegionOf(t.Codec, rows[i].Key)
	}
	return rows
}

// FilterRows returns the non-NULL rows satisfying pred, in key order.
func FilterRows(t *Table, pred func(Region, float64) bool) []Row {
	var rows []Row
	for _, key := range t.SortedKeys() {
		v := t.Rows[key]
		if agg.IsNull(v) {
			continue
		}
		r := RegionOf(t.Codec, key)
		if pred(r, v) {
			rows = append(rows, Row{Key: key, Label: t.Codec.Format(key), Value: v, Region: r})
		}
	}
	return rows
}

// SumValues totals the non-NULL values of a table (handy for sanity
// checks and shares).
func SumValues(t *Table) float64 {
	s := 0.0
	for _, v := range t.Rows {
		if !agg.IsNull(v) {
			s += v
		}
	}
	return s
}
