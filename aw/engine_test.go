package aw

import (
	"errors"
	"testing"

	"awra/internal/exec/scan"
)

// TestEngineRoundTrip: every engine constant's String() form must parse
// back to the same constant, and the canonical name list must agree.
func TestEngineRoundTrip(t *testing.T) {
	names := EngineNames()
	if len(names) != len(engineNames) {
		t.Fatalf("EngineNames returned %d names, want %d", len(names), len(engineNames))
	}
	for i, name := range names {
		e := Engine(i)
		if e.String() != name {
			t.Errorf("Engine(%d).String() = %q, want %q", i, e.String(), name)
		}
		back, err := ParseEngine(name)
		if err != nil {
			t.Errorf("ParseEngine(%q): %v", name, err)
		}
		if back != e {
			t.Errorf("ParseEngine(%q) = %v, want %v", name, back, e)
		}
	}
}

func TestParseEngineAliasesAndDefault(t *testing.T) {
	for name, want := range map[string]Engine{
		"":     EngineSortScan,
		"scan": EngineSingleScan,
		"db":   EngineRelational,
	} {
		got, err := ParseEngine(name)
		if err != nil {
			t.Errorf("ParseEngine(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("ParseEngine(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestParseEngineUnknown(t *testing.T) {
	_, err := ParseEngine("bogus")
	if err == nil {
		t.Fatal("unknown engine name accepted")
	}
	var ue *UnknownEngineError
	if !errors.As(err, &ue) {
		t.Fatalf("error type %T, want *UnknownEngineError", err)
	}
	if ue.Name != "bogus" {
		t.Errorf("UnknownEngineError.Name = %q", ue.Name)
	}
	if len(ue.Valid) != len(engineNames) {
		t.Errorf("UnknownEngineError.Valid lists %d names, want %d", len(ue.Valid), len(engineNames))
	}
}

// TestEngineStringOutOfRange: values outside the constant range print a
// diagnostic form rather than panicking or aliasing a real engine.
func TestEngineStringOutOfRange(t *testing.T) {
	if s := Engine(-1).String(); s != "Engine(-1)" {
		t.Errorf("Engine(-1).String() = %q", s)
	}
	if s := Engine(99).String(); s != "Engine(99)" {
		t.Errorf("Engine(99).String() = %q", s)
	}
}

// TestExecOptionsNormalize: the shared entry-point validation must
// reject negative knobs and clamp small read batches up to the scan
// reader's minimum.
func TestExecOptionsNormalize(t *testing.T) {
	for _, bad := range []ExecOptions{
		{ReadBatchSize: -1},
		{Parallelism: -2},
		{MemoryBudget: -1},
		{MaxLiveCells: -5},
		{MaxResultRows: -1},
		{MaxSpillBytes: -1},
	} {
		if _, err := bad.normalize(); err == nil {
			t.Errorf("normalize accepted %+v", bad)
		}
	}

	got, err := ExecOptions{ReadBatchSize: 1}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if got.ReadBatchSize != scan.MinBatchBytes {
		t.Errorf("ReadBatchSize clamped to %d, want %d", got.ReadBatchSize, scan.MinBatchBytes)
	}

	got, err = ExecOptions{ReadBatchSize: scan.MinBatchBytes * 2, Parallelism: 4}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if got.ReadBatchSize != scan.MinBatchBytes*2 || got.Parallelism != 4 {
		t.Errorf("valid options altered: %+v", got)
	}

	got, err = ExecOptions{}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if got.ReadBatchSize != 0 {
		t.Errorf("zero ReadBatchSize rewritten to %d (engines apply their own default)", got.ReadBatchSize)
	}
}
