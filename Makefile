# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short cover bench figures examples vet fmt clean

all: vet test build

build:
	$(GO) build ./...
	$(GO) build -o bin/awgen ./cmd/awgen
	$(GO) build -o bin/awquery ./cmd/awquery
	$(GO) build -o bin/awbench ./cmd/awbench

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./...

# One benchmark per paper figure (plus ablations and micro-benchmarks).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Full-scale figure regeneration (see EXPERIMENTS.md).
figures: build
	./bin/awbench -dir ./benchdata

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/netescalation
	$(GO) run ./examples/multirecon
	$(GO) run ./examples/trafficreport
	$(GO) run ./examples/airquality
	$(GO) run ./examples/livemonitor

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

clean:
	rm -rf bin benchdata
