// Command awgen generates the evaluation datasets: the synthetic
// multidimensional workload of the paper's Section 7.1 and the
// network attack log that substitutes for the DShield / LBL HoneyNet
// data of Section 7.2.
//
// Usage:
//
//	awgen -kind synth -n 1000000 -out synth.rec [-dims 4] [-depth 3] [-fanout 10] [-seed 1]
//	awgen -kind net   -n 1000000 -out net.rec   [-days 7] [-subnets 256] [-sources 4096] [-seed 1]
//	awgen ... -csv out.csv   # additionally export as CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"awra/internal/gen"
	"awra/internal/storage"
)

func main() {
	var (
		kind    = flag.String("kind", "synth", "dataset kind: synth or net")
		n       = flag.Int64("n", 100000, "approximate number of records")
		out     = flag.String("out", "", "output record file (required)")
		csvOut  = flag.String("csv", "", "also export the dataset as CSV to this path")
		seed    = flag.Int64("seed", 1, "random seed")
		dims    = flag.Int("dims", 4, "synth: number of dimensions")
		depth   = flag.Int("depth", 3, "synth: concrete domains per hierarchy")
		fanout  = flag.Int("fanout", 10, "synth: per-level fanout")
		days    = flag.Int("days", 7, "net: days of traffic")
		subnets = flag.Int("subnets", 256, "net: distinct target /24 subnets")
		sources = flag.Int("sources", 4096, "net: distinct source IPs")
		escal   = flag.Int("escalations", 4, "net: planted escalation events")
		recons  = flag.Int("recons", 4, "net: planted recon sweeps")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "awgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var cols []string
	switch *kind {
	case "synth":
		cfg := gen.SynthConfig{Dims: *dims, Depth: *depth, Fanout: *fanout, Seed: *seed}
		s, err := gen.Synth(*out, *n, cfg)
		if err != nil {
			fatal(err)
		}
		for i := 0; i < s.NumDims(); i++ {
			cols = append(cols, s.Dim(i).Name())
		}
		for i := 0; i < s.NumMeasures(); i++ {
			cols = append(cols, s.MeasureName(i))
		}
		fmt.Printf("wrote %s: %d-dimensional synthetic dataset\n", *out, s.NumDims())
	case "net":
		cfg := gen.NetConfig{
			Days: *days, Subnets: *subnets, Sources: *sources,
			Escalations: *escal, Recons: *recons, Seed: *seed,
		}
		s, truth, err := gen.NetLog(*out, *n, cfg)
		if err != nil {
			fatal(err)
		}
		cols = []string{"t", "U", "T", "P"}
		fmt.Printf("wrote %s: network log with %d planted escalations, %d recon sweeps\n",
			*out, len(truth.Escalations), len(truth.Recons))
		for _, e := range truth.Escalations {
			hourLvl, _ := s.Dim(0).LevelByName("Hour")
			sub, _ := s.Dim(2).LevelByName("/24")
			fmt.Printf("  escalation: target %s peak %s\n",
				s.Dim(2).FormatCode(sub, e.TargetSubnet), s.Dim(0).FormatCode(hourLvl, e.HourCode))
		}
		for _, r := range truth.Recons {
			dayLvl, _ := s.Dim(0).LevelByName("Day")
			sub, _ := s.Dim(2).LevelByName("/24")
			fmt.Printf("  recon: target %s on %s (%d sources)\n",
				s.Dim(2).FormatCode(sub, r.TargetSubnet), s.Dim(0).FormatCode(dayLvl, r.DayCode), r.Sources)
		}
	default:
		fatal(fmt.Errorf("unknown -kind %q (synth, net)", *kind))
	}

	r, err := storage.Open(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("records: %d\n", r.Header().Count)
	r.Close()

	if *csvOut != "" {
		if err := storage.ExportCSV(*out, *csvOut, cols); err != nil {
			fatal(err)
		}
		fmt.Printf("exported CSV to %s\n", *csvOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "awgen:", err)
	os.Exit(1)
}
