// Command awbench regenerates the figures of the paper's evaluation
// section (Section 7) at laptop scale: Figures 6(a)-6(f) on the
// synthetic workload and 7(a)-7(b) on the network attack log.
//
// Usage:
//
//	awbench -dir ./benchdata                # all figures
//	awbench -dir ./benchdata -fig fig6a     # one figure
//	awbench -dir ./benchdata -scale 4       # larger datasets
//	awbench -list                           # available figures
//
// The -scale flag multiplies dataset sizes (1.0 corresponds to
// 12.5k-400k records; the paper ran 2M-64M on 2006 hardware). Shapes,
// not absolute milliseconds, are the reproduction target; see
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on -httpaddr
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"awra/aw"
	"awra/internal/bench"
)

func main() {
	var (
		dir      = flag.String("dir", "", "working directory for datasets and temporaries (required)")
		fig      = flag.String("fig", "all", "figure id to regenerate, or 'all'")
		scale    = flag.Float64("scale", 1.0, "dataset size multiplier")
		seed     = flag.Int64("seed", 2006, "dataset generation seed")
		budget   = flag.Int64("budget", 8<<20, "single-scan memory budget in bytes")
		par      = flag.Int("parallelism", runtime.GOMAXPROCS(0), "worker count for the sharded-parallel figure")
		readBat  = flag.Int("read-batch", 0, "batched fact-read chunk size in bytes (0 = scan reader default)")
		list     = flag.Bool("list", false, "list available figures and exit")
		quiet    = flag.Bool("q", false, "suppress progress output")
		jsonOut  = flag.Bool("json", false, "print figures as JSON (rows plus metrics snapshot) instead of text tables")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to FILE")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit to FILE")
		httpAddr = flag.String("httpaddr", "", "serve live /metrics (Prometheus), /debug/vars, and /debug/pprof on this address while running")
		histDir  = flag.String("history-dir", "", "persistent query-history directory for the hist-feedback figure and the /debug/aw/history endpoint (default: DIR/history)")
		serve    = flag.Bool("serve", false, "with -httpaddr: keep serving after the figures finish, until interrupted")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(bench.IDs(), "\n"))
		return
	}
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "awbench: -dir is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	cfg := bench.Config{
		Dir:              *dir,
		Scale:            *scale,
		Seed:             *seed,
		SingleScanBudget: *budget,
		Parallelism:      *par,
		History:          *histDir,
		ReadBatchBytes:   *readBat,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	if *httpAddr != "" {
		// One shared recorder so the live endpoints see every figure's
		// metrics as they accumulate.
		rec := aw.NewRecorder()
		cfg.Recorder = rec
		rec.Publish("awra")
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			rec.WritePrometheus(w)
		})
		http.HandleFunc("/debug/aw/queries", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := aw.WriteInflightJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		// /debug/aw/history opens the history directory per request, so
		// it reflects runs appended by this process and by others (the
		// log is the source of truth, not process memory).
		hdir := *histDir
		if hdir == "" {
			hdir = filepath.Join(*dir, "history")
		}
		http.HandleFunc("/debug/aw/history", func(w http.ResponseWriter, r *http.Request) {
			h, err := aw.OpenHistory(hdir)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			defer h.Close()
			n := 50
			if s := r.URL.Query().Get("n"); s != "" {
				if v, err := strconv.Atoi(s); err == nil && v > 0 {
					n = v
				}
			}
			w.Header().Set("Content-Type", "application/json")
			if err := h.WriteJSON(w, n); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		// Flight-recorder endpoints: every benchmark run commits a trace,
		// so the ring doubles as a live query post-mortem view here too.
		http.HandleFunc("/debug/aw/traces", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := aw.WriteTracesJSON(w, 0); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		http.HandleFunc("/debug/aw/traces/", func(w http.ResponseWriter, r *http.Request) {
			id := strings.TrimPrefix(r.URL.Path, "/debug/aw/traces/")
			w.Header().Set("Content-Type", "application/json")
			found, err := aw.WriteTraceJSON(w, id)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if !found {
				http.Error(w, "trace not retained", http.StatusNotFound)
			}
		})
		http.HandleFunc("/debug/aw/slow", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := aw.WriteSlowJSON(w, 0); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		go func() {
			if err := http.ListenAndServe(*httpAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "awbench: http:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "awbench: serving /metrics, /debug/aw/queries, /debug/aw/traces, /debug/aw/slow, /debug/vars, /debug/pprof on %s\n", *httpAddr)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	writeMemProfile := func() {
		if *memProf == "" {
			return
		}
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		f.Close()
	}

	emit := func(f *bench.Figure) {
		if *jsonOut {
			if err := f.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		f.Fprint(os.Stdout)
	}
	if *fig == "all" {
		figs, err := bench.All(cfg)
		for _, f := range figs {
			emit(f)
		}
		writeMemProfile()
		if err != nil {
			fatal(err)
		}
		serveForever(*httpAddr, *serve)
		return
	}
	f, err := bench.Run(*fig, cfg)
	if err != nil {
		fatal(err)
	}
	emit(f)
	writeMemProfile()
	serveForever(*httpAddr, *serve)
}

// serveForever blocks until SIGINT when -serve asked to keep the live
// endpoints (metrics, history) queryable after the figures finish.
func serveForever(addr string, serve bool) {
	if addr == "" || !serve {
		return
	}
	fmt.Fprintf(os.Stderr, "awbench: figures done; still serving on %s (interrupt to exit)\n", addr)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "awbench:", err)
	os.Exit(1)
}
