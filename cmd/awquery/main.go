// Command awquery evaluates an aggregation workflow — written in the
// small text DSL of internal/wfdsl — over a binary record file, using
// any of the library's engines.
//
// Usage:
//
//	awquery -wf query.aw -data net.rec [-engine sortscan] [-measure NAME] [-limit 20]
//	awquery -wf query.aw -explain          # show the streaming plan and DOT graph
//	awquery -wf query.aw -data net.rec -history-dir ./hist   # log the run; later plans reuse its measured stats
//	awquery -history-dir ./hist -history 20                  # list recent runs (outcome, duration, records)
//
// Example workflow file:
//
//	schema net
//	basic   Count   gran(t=Hour, U=IP) agg=count
//	rollup  sCount  gran(t=Hour) src=Count agg=count where "m0 > 5"
//	sliding avg6    src=sCount agg=avg window t 0..5
//	combine ratio   src=avg6,sCount fc=ratio
//
// Exit codes distinguish operational outcomes for scripting:
//
//	0  success
//	1  genuine failure (bad input, I/O error, corrupt data, ...)
//	2  usage error
//	3  canceled or timed out (-timeout, SIGINT)
//	4  a resource guardrail tripped (-max-result-rows, -max-live-cells,
//	   -max-spill-bytes)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"

	"awra/aw"
	"awra/internal/wfdsl"
)

func main() {
	var (
		wfPath  = flag.String("wf", "", "workflow file (required)")
		data    = flag.String("data", "", "binary record file to query")
		engine  = flag.String("engine", "sortscan", "engine: auto, sortscan, shardscan, singlescan, multipass, partscan, relational")
		measure = flag.String("measure", "", "print only this measure (default: all)")
		limit   = flag.Int("limit", 20, "max rows to print per measure (0 = all)")
		budget  = flag.Int64("budget", 0, "memory budget in bytes (singlescan spill / multipass per-pass / auto decision)")
		par     = flag.Int("parallelism", 1, "parallel workers: shardscan shards, singlescan scan workers, sortscan sort workers")
		readBat = flag.Int("read-batch", 0, "fact-read chunk size in bytes for file-backed engines (0 = default)")
		csvOut  = flag.String("o", "", "write the selected measure(s) as CSV file(s): PATH, or PATH prefix when printing several")
		explain = flag.Bool("explain", false, "print the plan tree with optimizer estimates (and the workflow DOT graph), then exit")
		analyze = flag.Bool("explain-analyze", false, "run the query, then print the plan tree with per-node actuals vs estimates instead of result rows")
		jsonOut = flag.Bool("json", false, "with -explain/-explain-analyze: emit the profile as JSON")
		dot     = flag.Bool("dot", false, "print only the Graphviz workflow diagram, then exit")
		stats   = flag.Bool("stats", false, "sample the data file and print per-dimension statistics, then exit")
		auto    = flag.Bool("autostats", false, "feed sampled statistics to the sort-order optimizer")
		save    = flag.String("save", "", "persist all computed measures into this directory (resultstore)")
		load    = flag.String("load", "", "print measures previously saved into this directory instead of recomputing")
		trace   = flag.Bool("trace", false, "print the query's span tree (per-phase times and percentages) to stderr")
		traceID = flag.String("trace-id", "", "flight-recorder trace ID for this run (32 hex digits; default: generated). The ID is printed to stderr so the run's flight trace can be referenced")
		traceJS = flag.String("trace-json", "", "write the run's full flight-recorder trace as JSON to FILE (\"-\" = stdout)")
		metrics = flag.String("metrics", "", "write the query's metrics snapshot as JSON to FILE (\"-\" = stdout)")
		partDim = flag.String("partdim", "", "partscan: partition dimension, by name or index (default: dimension 0)")
		partLvl = flag.Int("partlevel", 0, "partscan: partition hierarchy level (0 = base)")
		parts   = flag.Int("partitions", 0, "partscan: partition/worker count (default: -parallelism, else 1)")
		timeout = flag.Duration("timeout", 0, "abort the query after this duration (exit code 3)")
		maxRows = flag.Int64("max-result-rows", 0, "fail once the result exceeds this many rows (exit code 4; 0 = unlimited)")
		maxCell = flag.Int64("max-live-cells", 0, "cap simultaneously live aggregation cells (exit code 4; 0 = unlimited)")
		maxSpil = flag.Int64("max-spill-bytes", 0, "cap bytes spilled to disk by sorts (exit code 4; 0 = unlimited)")
		skipBad = flag.Bool("skip-corrupt", false, "skip and count checksum-failing rows instead of failing")
		histDir = flag.String("history-dir", "", "persistent query-history directory: every run is logged there, and plans reuse measured statistics from earlier runs on the same data")
		histN   = flag.Int("history", 0, "print the N most recent runs from -history-dir, then exit")
	)
	flag.Parse()

	// -history lists past runs and needs no workflow.
	if *histN > 0 {
		if *histDir == "" {
			fmt.Fprintln(os.Stderr, "awquery: -history requires -history-dir")
			os.Exit(2)
		}
		h, err := aw.OpenHistory(*histDir)
		if err != nil {
			fatal(err)
		}
		defer h.Close()
		if *jsonOut {
			if err := h.WriteJSON(os.Stdout, *histN); err != nil {
				fatal(err)
			}
		} else {
			fmt.Printf("%d runs, %d measured statistics in %s\n", h.Len(), h.MeasuredStats(), h.Dir())
			fmt.Print(h.FormatRecent(*histN))
		}
		return
	}

	if *wfPath == "" {
		fmt.Fprintln(os.Stderr, "awquery: -wf is required")
		flag.Usage()
		os.Exit(2)
	}

	var hist *aw.History
	if *histDir != "" {
		h, err := aw.OpenHistory(*histDir)
		if err != nil {
			fatal(err)
		}
		defer h.Close()
		hist = h
	}
	text, err := os.ReadFile(*wfPath)
	if err != nil {
		fatal(err)
	}
	parsed, err := wfdsl.Parse(string(text))
	if err != nil {
		fatal(err)
	}
	c := parsed.Compiled

	if *dot {
		fmt.Print(aw.DOT(c))
		return
	}
	if *explain {
		eng, err := aw.ParseEngine(*engine)
		if err != nil {
			fatal(err)
		}
		qo := aw.QueryOptions{ExecOptions: aw.ExecOptions{
			Engine: eng, MemoryBudget: *budget, Parallelism: *par, History: hist,
		}}
		// With the collection known, measured statistics from the
		// history apply, exactly as a run would plan.
		var prof *aw.Profile
		if *data != "" {
			prof, err = aw.ExplainFor(c, aw.FromFile(*data), qo)
		} else {
			prof, err = aw.Explain(c, qo)
		}
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			writeProfile(prof)
			return
		}
		fmt.Print(prof.String())
		fmt.Println()
		fmt.Println(aw.DOT(c))
		return
	}
	if *data == "" && *load == "" {
		// With no data, describe the workflow instead of failing.
		fmt.Print(c.Describe())
		fmt.Fprintln(os.Stderr, "\nawquery: pass -data FILE to evaluate (or -explain for the plan)")
		os.Exit(2)
	}

	if *stats {
		cards, err := aw.CollectStats(*data, 0)
		if err != nil {
			fatal(err)
		}
		for d, card := range cards {
			fmt.Printf("%-12s ~%.0f distinct base values\n", parsed.Schema.Dim(d).Name(), card)
		}
		return
	}

	eng, err := aw.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}
	pd := 0
	if *partDim != "" {
		pd = -1
		for d := 0; d < parsed.Schema.NumDims(); d++ {
			if parsed.Schema.Dim(d).Name() == *partDim {
				pd = d
				break
			}
		}
		if pd < 0 {
			n, aerr := strconv.Atoi(*partDim)
			if aerr != nil {
				fatal(fmt.Errorf("unknown dimension %q", *partDim))
			}
			pd = n
		}
	}
	var rec *aw.Recorder
	if *trace || *metrics != "" {
		rec = aw.NewRecorder()
	}
	var res aw.Results
	var prof *aw.Profile
	if *load != "" {
		if *analyze {
			fatal(fmt.Errorf("-explain-analyze requires running a query (incompatible with -load)"))
		}
		res, err = aw.LoadResults(*load, parsed.Schema)
		if err != nil {
			fatal(err)
		}
	} else {
		// SIGINT cancels the query cooperatively; the engines abort at
		// their next scan stride and clean up temp files.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		// The trace ID is fixed before the run so the flight-recorder
		// entry can be referenced whatever the outcome.
		tid := *traceID
		if tid == "" {
			tid = aw.NewTraceID()
		}
		qo := aw.QueryOptions{
			ExecOptions: aw.ExecOptions{
				Engine:          eng,
				MemoryBudget:    *budget,
				Parallelism:     *par,
				ReadBatchSize:   *readBat,
				Recorder:        rec,
				Timeout:         *timeout,
				MaxResultRows:   *maxRows,
				MaxLiveCells:    *maxCell,
				MaxSpillBytes:   *maxSpil,
				SkipCorruptRows: *skipBad,
				History:         hist,
				TraceID:         tid,
			},
			AutoStats:      *auto,
			PartitionDim:   pd,
			PartitionLevel: aw.Level(*partLvl),
			Partitions:     *parts,
		}
		if *analyze {
			var r *aw.Result
			r, err = aw.ExplainAnalyzeCompiled(ctx, c, aw.FromFile(*data), qo)
			if err == nil {
				res, prof = r.Tables, r.Profile
			}
		} else {
			res, err = aw.RunCompiled(ctx, c, aw.FromFile(*data), qo)
		}
		stop()
		// The flight trace exists for failed runs too — that is the
		// point of a flight recorder — so emit it before exiting.
		if *traceID != "" || *traceJS != "" {
			fmt.Fprintln(os.Stderr, "trace_id:", tid)
		}
		writeFlightTrace(*traceJS, tid)
		if err != nil {
			fatal(err)
		}
	}
	if *trace {
		fmt.Fprint(os.Stderr, rec.FormatTree())
	}
	if *metrics != "" {
		snap := rec.Snapshot()
		if *metrics == "-" {
			if err := snap.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			f, err := os.Create(*metrics)
			if err != nil {
				fatal(err)
			}
			if err := snap.WriteJSON(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
	}
	if *save != "" {
		if err := aw.SaveResults(*save, parsed.Schema, res); err != nil {
			fatal(err)
		}
		fmt.Printf("saved %d measures to %s\n", len(res), *save)
	}

	if prof != nil {
		if *jsonOut {
			writeProfile(prof)
		} else {
			fmt.Print(prof.String())
		}
		if *csvOut == "" {
			return
		}
	}

	names := c.Outputs()
	if *measure != "" {
		if _, err := c.MeasureByName(*measure); err != nil {
			fatal(err)
		}
		names = []string{*measure}
	}
	for _, name := range names {
		tbl := res[name]
		if tbl == nil {
			fmt.Printf("== %s (not present in the loaded results)\n", name)
			continue
		}
		if *csvOut != "" {
			path := *csvOut
			if len(names) > 1 {
				path = *csvOut + name + ".csv"
			}
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := tbl.WriteCSV(f, name); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d regions)\n", path, len(tbl.Rows))
			continue
		}
		fmt.Printf("== %s (%d regions)\n", name, len(tbl.Rows))
		keys := tbl.SortedKeys()
		shown := 0
		for _, k := range keys {
			if *limit > 0 && shown >= *limit {
				fmt.Printf("   ... %d more\n", len(keys)-shown)
				break
			}
			fmt.Printf("   %-50s %v\n", tbl.Codec.Format(k), tbl.Rows[k])
			shown++
		}
	}
}

// writeFlightTrace writes the run's flight-recorder trace to dst
// ("" = skip, "-" = stdout). A run sampled out of the flight ring
// (healthy and fast) may legitimately not be retained.
func writeFlightTrace(dst, tid string) {
	if dst == "" {
		return
	}
	out := os.Stdout
	if dst != "-" {
		f, err := os.Create(dst)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		out = f
	}
	found, err := aw.WriteTraceJSON(out, tid)
	if err != nil {
		fatal(err)
	}
	if !found {
		fmt.Fprintf(os.Stderr, "awquery: trace %s not retained (healthy fast runs are sampled)\n", tid)
	}
}

// writeProfile emits a profile as indented JSON on stdout.
func writeProfile(p *aw.Profile) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		fatal(err)
	}
}

// fatal reports the error and exits with a code that tells scripts
// whether the query was canceled (3), rejected by a guardrail (4), or
// genuinely failed (1).
func fatal(err error) {
	code := 1
	switch {
	case errors.Is(err, aw.ErrCanceled), errors.Is(err, aw.ErrDeadlineExceeded):
		code = 3
	case errors.Is(err, aw.ErrBudgetExceeded):
		code = 4
	}
	fmt.Fprintln(os.Stderr, "awquery:", err)
	os.Exit(code)
}
