// Command awserved runs the always-on query service of internal/serve:
// an HTTP/JSON front end answering workflow queries (the internal/wfdsl
// text form) over registered fact-file collections, with admission
// control, overload degradation, transient-fault retry, and a graceful
// SIGTERM drain.
//
// Usage:
//
//	awserved -collection net=net.rec [-collection web=web.rec] \
//	    [-addr :8080] [-history ./hist] [-max-concurrent 8] ...
//
// Query with:
//
//	curl -s localhost:8080/query -d '{
//	  "workflow": "schema net\nbasic Count gran(t=Hour, U=IP) agg=count",
//	  "collection": "net"
//	}'
//
// Operational endpoints: /healthz (liveness), /readyz (flips to 503
// while draining), /metrics (Prometheus), /debug/aw/queries (in-flight
// registry), /debug/aw/history (recent runs), /debug/aw/traces (the
// query flight recorder; /debug/aw/traces/{trace_id} for one full
// trace), /debug/aw/slow (the slow-query log), and /debug/aw/cache
// (the result cache: entries, hit/miss/eviction counts).
//
// Identical queries over an unchanged collection are answered from the
// result cache (served_from=cache in the response) without occupying
// an admission slot; -share-window additionally merges compatible
// concurrent queries onto one fact-table pass (served_from=shared for
// the fanned-out members).
//
// Every query response carries a trace_id (a caller-supplied W3C
// traceparent header is honored and echoed) keying its entry in the
// flight recorder; pinned traces — errors, budget trips, retries, slow
// queries — persist in the history directory across restarts.
//
// On SIGTERM or SIGINT the server stops admitting, lets in-flight
// queries finish under -drain-timeout, cancels stragglers, flushes the
// history log, and exits 0; any other failure exits 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"awra/aw"
	"awra/internal/serve"
)

// collections collects repeated -collection name=path flags.
type collections map[string]string

func (c collections) String() string {
	parts := make([]string, 0, len(c))
	for k, v := range c {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (c collections) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	if _, dup := c[name]; dup {
		return fmt.Errorf("collection %q registered twice", name)
	}
	c[name] = path
	return nil
}

func main() {
	cols := collections{}
	flag.Var(cols, "collection", "register a collection as name=path (repeatable, required)")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		histDir  = flag.String("history", "", "persistent query-history directory (retries stay idempotent by request ID; plans reuse measured stats)")
		tempDir  = flag.String("tempdir", "", "directory for sort runs and spills (default: system temp)")
		engine   = flag.String("engine", "auto", "default engine for queries that name none: auto, sortscan, shardscan, singlescan, multipass, partscan, relational")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-query execution timeout (0 = none; requests may shorten it, never extend)")
		maxConc  = flag.Int("max-concurrent", 8, "queries executing at once (admission slots)")
		tenantLm = flag.Int("tenant-limit", 0, "concurrent queries per tenant (0 = no per-tenant cap)")
		queueD   = flag.Int("queue-depth", 16, "requests allowed to wait for a slot (0 = shed immediately when saturated)")
		queueW   = flag.Duration("queue-wait", time.Second, "how long a queued request waits before it is shed")
		retries  = flag.Int("retries", 3, "max attempts per query for transient storage faults (1 = no retries)")
		retryDel = flag.Duration("retry-delay", 10*time.Millisecond, "first retry backoff; doubles each retry with jitter")
		memBud   = flag.Int64("mem-budget", 64<<20, "EngineAuto planning budget in bytes (the Section 6 sort-vs-multipass decision)")
		par      = flag.Int("parallelism", 1, "engine parallelism (shard / sort workers)")
		readBat  = flag.Int("read-batch", 0, "fact-read chunk size in bytes (0 = engine default)")
		maxCell  = flag.Int64("max-live-cells", 0, "per-query cap on simultaneously live aggregation cells (0 = unlimited)")
		maxRows  = flag.Int64("max-result-rows", 0, "per-query cap on result rows (0 = unlimited)")
		maxSpill = flag.Int64("max-spill-bytes", 0, "per-query cap on bytes spilled to disk (0 = unlimited)")
		skipBad  = flag.Bool("skip-corrupt", false, "degraded reads: skip and count checksum-failing rows instead of failing")
		noCache  = flag.Bool("no-cache", false, "disable the result cache (every query executes)")
		cacheByt = flag.Int64("cache-max-bytes", 64<<20, "result-cache byte budget (LRU eviction past it)")
		cacheEnt = flag.Int("cache-max-entries", 256, "result-cache entry cap")
		shareWin = flag.Duration("share-window", 0, "scan-sharing hold window: compatible queries arriving within it run as one merged fact-table pass (0 = off)")
		shareMax = flag.Int("share-max-batch", 8, "max queries merged into one scan-sharing run")
		highP95  = flag.Duration("overload-p95", 0, "tighten budgets when recent p95 latency exceeds this (0 = latency trigger off)")
		highCell = flag.Int64("overload-live-cells", 0, "tighten budgets when a query's live-cell high-water mark exceeds this (0 = memory trigger off)")
		drainTO  = flag.Duration("drain-timeout", 10*time.Second, "how long SIGTERM waits for in-flight queries before canceling them")
	)
	flag.Parse()

	if len(cols) == 0 {
		fmt.Fprintln(os.Stderr, "awserved: at least one -collection name=path is required")
		flag.Usage()
		os.Exit(2)
	}
	eng, err := aw.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "awserved: %v\n", err)
		os.Exit(2)
	}
	for name, path := range cols {
		if _, err := os.Stat(path); err != nil {
			fmt.Fprintf(os.Stderr, "awserved: collection %s: %v\n", name, err)
			os.Exit(2)
		}
	}

	s, err := serve.New(serve.Config{
		Collections: cols,
		HistoryDir:  *histDir,
		TempDir:     *tempDir,
		Gate: serve.GateConfig{
			MaxConcurrent: *maxConc,
			TenantLimit:   *tenantLm,
			QueueDepth:    *queueD,
			QueueWait:     *queueW,
		},
		Overload: serve.OverloadConfig{
			HighP95:       *highP95,
			HighLiveCells: *highCell,
		},
		Retry: serve.RetryPolicy{
			MaxAttempts: *retries,
			BaseDelay:   *retryDel,
		},
		DefaultTimeout:  *timeout,
		DefaultEngine:   eng,
		MaxLiveCells:    *maxCell,
		MaxResultRows:   *maxRows,
		MaxSpillBytes:   *maxSpill,
		MemoryBudget:    *memBud,
		Parallelism:     *par,
		ReadBatchSize:   *readBat,
		SkipCorruptRows: *skipBad,
		Cache: serve.CacheConfig{
			Disabled:   *noCache,
			MaxBytes:   *cacheByt,
			MaxEntries: *cacheEnt,
		},
		Share: serve.ShareConfig{
			Window:   *shareWin,
			MaxBatch: *shareMax,
		},
		DrainTimeout: *drainTO,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "awserved: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	log.Printf("awserved: serving %d collection(s) on %s (slots=%d queue=%d engine=%s)",
		len(cols), *addr, *maxConc, *queueD, *engine)
	if err := s.ListenAndServe(ctx, *addr); err != nil {
		log.Printf("awserved: %v", err)
		os.Exit(1)
	}
	log.Printf("awserved: drained clean")
}
