package serve

import (
	"testing"
	"time"

	"awra/aw"
	"awra/internal/obs"
)

func newTestController(gate *Gate) (*Controller, *obs.Recorder) {
	rec := obs.New()
	return NewController(OverloadConfig{
		HighP95:       10 * time.Millisecond,
		HighLiveCells: 1000,
		Cooldown:      3,
		Window:        4,
	}, gate, rec), rec
}

func TestControllerLadderUpAndDown(t *testing.T) {
	c, rec := newTestController(nil)
	if c.Level() != LevelNormal {
		t.Fatalf("initial level = %d", c.Level())
	}
	// Slow observations escalate one step each.
	c.Observe(50*time.Millisecond, 0)
	if c.Level() != LevelDegraded {
		t.Fatalf("after 1 slow: level = %d, want degraded", c.Level())
	}
	c.Observe(50*time.Millisecond, 0)
	if c.Level() != LevelShedding {
		t.Fatalf("after 2 slow: level = %d, want shedding", c.Level())
	}
	// Escalation saturates at shedding.
	c.Observe(50*time.Millisecond, 0)
	if c.Level() != LevelShedding {
		t.Fatalf("level = %d, want still shedding", c.Level())
	}
	if v := rec.Gauge(obs.GServeOverloadLevel).Value(); v != LevelShedding {
		t.Errorf("overload gauge = %d, want %d", v, LevelShedding)
	}

	// Healthy observations de-escalate only after the cooldown, one
	// level at a time. The slow samples age out of the 4-wide window
	// after 4 healthy ones; the p95 then drops below the threshold.
	for i := 0; i < 7; i++ {
		c.Observe(time.Millisecond, 0)
	}
	if c.Level() != LevelDegraded {
		t.Fatalf("after 7 healthy: level = %d, want degraded (one step down)", c.Level())
	}
	for i := 0; i < 3; i++ {
		c.Observe(time.Millisecond, 0)
	}
	if c.Level() != LevelNormal {
		t.Fatalf("after cooldown again: level = %d, want normal", c.Level())
	}
}

func TestControllerLiveCellTrigger(t *testing.T) {
	c, _ := newTestController(nil)
	c.Observe(time.Millisecond, 5000) // fast but memory-hungry
	if c.Level() != LevelDegraded {
		t.Fatalf("level = %d, want degraded on live-cell HWM", c.Level())
	}
}

func TestControllerApplyDegrades(t *testing.T) {
	c, rec := newTestController(nil)
	base := aw.QueryOptions{ExecOptions: aw.ExecOptions{
		Engine:        aw.EngineSortScan,
		MemoryBudget:  1 << 30,
		MaxLiveCells:  1000,
		MaxResultRows: 0, // unlimited stays unlimited
	}}

	o := base
	if c.Apply(&o) {
		t.Fatal("Apply degraded at LevelNormal")
	}
	if o.Engine != base.Engine || o.MemoryBudget != base.MemoryBudget {
		t.Fatal("Apply mutated options at LevelNormal")
	}

	c.Observe(time.Hour, 0) // escalate to degraded
	o = base
	if !c.Apply(&o) {
		t.Fatal("Apply did not degrade at LevelDegraded")
	}
	if o.Engine != aw.EngineAuto {
		t.Errorf("engine = %v, want EngineAuto (the §6 chooser must own the plan)", o.Engine)
	}
	if o.MemoryBudget != 8<<20 {
		t.Errorf("memory budget = %d, want capped to %d", o.MemoryBudget, 8<<20)
	}
	if o.MaxLiveCells != 500 {
		t.Errorf("MaxLiveCells = %d, want 500 (tightened by 0.5)", o.MaxLiveCells)
	}
	if o.MaxResultRows != 0 {
		t.Errorf("MaxResultRows = %d, want 0 (unlimited must stay unlimited)", o.MaxResultRows)
	}
	if n := rec.Counter(obs.MServeDegraded).Value(); n != 1 {
		t.Errorf("serve_degraded_runs = %d, want 1", n)
	}
}

func TestControllerDrivesGateShedding(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 1, QueueDepth: 4, QueueWait: time.Second}, nil)
	c, _ := newTestController(g)
	c.Observe(time.Hour, 0)
	c.Observe(time.Hour, 0)
	if c.Level() != LevelShedding {
		t.Fatalf("level = %d, want shedding", c.Level())
	}
	r, err := g.Admit(t.Context(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer r()
	// Saturated + shedding: immediate rejection despite queue space.
	if _, err := g.Admit(t.Context(), "b"); !isReason(err, ReasonQueueFull) {
		t.Fatalf("got %v, want queue_full under shedding", err)
	}
	// Recovery switches queueing back on.
	for i := 0; i < 12; i++ {
		c.Observe(time.Microsecond, 0)
	}
	if c.Level() != LevelNormal {
		t.Fatalf("level = %d after recovery, want normal", c.Level())
	}
	done := make(chan error, 1)
	go func() {
		r2, err := g.Admit(t.Context(), "b")
		if err == nil {
			r2()
		}
		done <- err
	}()
	waitFor(t, func() bool { return g.Waiting() == 1 })
	r()
	if err := <-done; err != nil {
		t.Fatalf("queueing not restored after recovery: %v", err)
	}
}
