package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"awra/aw"
	"awra/internal/faultfs"
	"awra/internal/obs"
)

// transientErr mimics what a query returns when an engine read hits an
// injected transient fault: the sentinel is wrapped several layers
// deep, as real errors are.
var transientErr = fmt.Errorf("aw: scan: %w",
	fmt.Errorf("%w: %w: read fact.rec", faultfs.ErrInjected, faultfs.ErrTransient))

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{transientErr, true},
		{faultfs.ErrTransient, true},
		{faultfs.ErrInjected, false}, // permanent injected fault
		{errors.New("disk on fire"), false},
		{fmt.Errorf("wrap: %w", aw.ErrCanceled), false},
		{fmt.Errorf("wrap: %w", aw.ErrDeadlineExceeded), false},
		{fmt.Errorf("wrap: %w", aw.ErrBudgetExceeded), false},
		{fmt.Errorf("wrap: %w", aw.ErrAdmissionRejected), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryTransientThenSuccess(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	rec := obs.New()
	calls := 0
	attempts, err := p.Do(context.Background(), rec, func(attempt int) error {
		calls++
		if attempt != calls {
			t.Fatalf("attempt = %d on call %d", attempt, calls)
		}
		if calls < 3 {
			return transientErr
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("got attempts=%d err=%v, want 3, nil", attempts, err)
	}
	if n := rec.Counter(obs.MServeRetries).Value(); n != 2 {
		t.Errorf("serve_retries = %d, want 2", n)
	}
}

func TestRetryPermanentFailsFast(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	permanent := errors.New("checksum mismatch")
	attempts, err := p.Do(context.Background(), nil, func(int) error { return permanent })
	if attempts != 1 || !errors.Is(err, permanent) {
		t.Fatalf("got attempts=%d err=%v, want 1 attempt, the permanent error", attempts, err)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	attempts, err := p.Do(context.Background(), nil, func(int) error { return transientErr })
	if attempts != 3 || !faultfs.IsTransient(err) {
		t.Fatalf("got attempts=%d err=%v, want 3 attempts, the transient error surfaced", attempts, err)
	}
}

func TestRetryZeroValueMeansOneAttempt(t *testing.T) {
	var p RetryPolicy
	attempts, err := p.Do(context.Background(), nil, func(int) error { return transientErr })
	if attempts != 1 || err == nil {
		t.Fatalf("got attempts=%d err=%v, want exactly 1 attempt", attempts, err)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Hour, MaxDelay: time.Hour, Budget: 10 * time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	attempts, err := p.Do(ctx, nil, func(int) error { return transientErr })
	if attempts != 1 || !faultfs.IsTransient(err) {
		t.Fatalf("got attempts=%d err=%v, want 1 attempt with the transient error", attempts, err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancel did not interrupt the backoff sleep")
	}
}

func TestRetryBackoffBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 8 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	for n := 1; n <= 10; n++ {
		d := p.backoff(n, time.Hour)
		if d <= 0 || d > 20*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want in (0, 20ms]", n, d)
		}
		// Exponential growth with full jitter stays >= half the capped
		// ideal delay.
		ideal := 8 * time.Millisecond << uint(n-1)
		if ideal <= 0 || ideal > 20*time.Millisecond {
			ideal = 20 * time.Millisecond
		}
		if d < ideal/2 {
			t.Fatalf("backoff(%d) = %v, want >= %v", n, d, ideal/2)
		}
	}
	// The remaining budget clips the delay.
	if d := p.backoff(5, time.Millisecond); d > time.Millisecond {
		t.Fatalf("budget-clipped backoff = %v, want <= 1ms", d)
	}
}
