package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"awra/aw"
	"awra/internal/faultfs"
	"awra/internal/obs"
)

// RetryPolicy retries transiently-failed query attempts with jittered
// exponential backoff under a per-query retry budget. Classification
// is deliberately conservative: only errors the storage layer marks
// transient (faultfs.ErrTransient today; a real deployment would add
// EINTR-class syscall errors) are retried — budget trips, checksum
// corruption, cancellation, and compile errors are permanent and
// surface immediately.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts (first try included); values
	// < 1 mean 1 (no retries).
	MaxAttempts int
	// BaseDelay is the first backoff; doubles each retry. 0 defaults
	// to 10ms.
	BaseDelay time.Duration
	// MaxDelay caps one backoff step; 0 defaults to 1s.
	MaxDelay time.Duration
	// Budget caps the summed backoff sleep per query; 0 defaults to
	// 5s. Attempts stop early once the budget is spent even if
	// MaxAttempts remain.
	Budget time.Duration
	// Classify overrides the transient-error test; nil uses
	// IsTransient.
	Classify func(error) bool
}

// jitterRng backs backoff jitter for every policy; package-level so
// RetryPolicy stays a plain copyable value (it rides inside Config).
var (
	jitterMu  sync.Mutex
	jitterRng *rand.Rand
)

// IsTransient is the default retryability test: storage faults the
// fault layer classifies as self-clearing. Anything already mapped to
// the library's typed errors (cancellation, deadlines, budgets,
// admission) is never retryable at this layer — the caller owns those.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, aw.ErrCanceled) || errors.Is(err, aw.ErrDeadlineExceeded) ||
		errors.Is(err, aw.ErrBudgetExceeded) || errors.Is(err, aw.ErrAdmissionRejected) {
		return false
	}
	return faultfs.IsTransient(err)
}

func (p RetryPolicy) classify(err error) bool {
	if p.Classify != nil {
		return p.Classify(err)
	}
	return IsTransient(err)
}

// backoff computes the jittered delay before retry attempt n (1-based:
// the delay after the nth failure), honoring the remaining budget.
func (p RetryPolicy) backoff(n int, remaining time.Duration) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = time.Second
	}
	d := base << uint(n-1)
	if d <= 0 || d > max { // <= 0 catches shift overflow
		d = max
	}
	// Full jitter in [d/2, d): desynchronizes retry herds without ever
	// retrying instantly.
	jitterMu.Lock()
	if jitterRng == nil {
		jitterRng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	d = d/2 + time.Duration(jitterRng.Int63n(int64(d/2)+1))
	jitterMu.Unlock()
	if d > remaining {
		d = remaining
	}
	return d
}

// Do runs fn (attempt is 1-based) until it succeeds, fails permanently,
// exhausts MaxAttempts or the backoff budget, or ctx ends. It returns
// the last error and the number of attempts made. rec (nil-safe)
// counts retries under obs.MServeRetries.
func (p RetryPolicy) Do(ctx context.Context, rec *obs.Recorder, fn func(attempt int) error) (attempts int, err error) {
	maxAttempts := p.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	budget := p.Budget
	if budget <= 0 {
		budget = 5 * time.Second
	}
	for attempt := 1; ; attempt++ {
		attempts = attempt
		err = fn(attempt)
		if err == nil || !p.classify(err) || attempt >= maxAttempts {
			return attempts, err
		}
		d := p.backoff(attempt, budget)
		if d <= 0 {
			return attempts, err
		}
		budget -= d
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return attempts, err
		}
		rec.Counter(obs.MServeRetries).Add(1)
	}
}
