// Result cache: finalized measure tables keyed by what they answer —
// (collection file fingerprint × compiled-workflow fingerprint) — with
// LRU + byte-budget eviction. The paper's Section 5 contribution is
// sharing one fact-table pass across a workflow's measures; caching
// the finalized tables extends that sharing across *time*: the next
// identical query over an unchanged collection re-uses the pass that
// already happened. Gray et al.'s Data-Cube classification is what
// makes this sound — every cached table is the finalized output of
// distributive/algebraic/holistic aggregation over an immutable input
// snapshot, so as long as the input fingerprint still matches, the
// bytes cannot have changed.
package serve

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
	"time"

	"awra/aw"
	"awra/internal/obs"
)

// CacheConfig tunes the serve result cache.
type CacheConfig struct {
	// Disabled turns the cache off (every query executes).
	Disabled bool
	// MaxBytes bounds the estimated footprint of cached tables;
	// 0 defaults to 64 MiB. Least-recently-used entries are evicted
	// past it.
	MaxBytes int64
	// MaxEntries bounds the entry count; 0 defaults to 256.
	MaxEntries int
}

func (c CacheConfig) withDefaults() CacheConfig {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 256
	}
	return c
}

// probeBytes is how much of each end of a collection file the content
// fingerprint hashes. Together with size+mtime this catches every
// append and every rewrite that preserves size and mtime resolution —
// e.g. an equal-length in-place edit — without rescanning gigabytes.
const probeBytes = 64 << 10

// fileFingerprint fingerprints a collection file's current state:
// size, mtime, and an FNV-1a hash of the first and last probeBytes of
// content. It reads through the OS directly — like the history log,
// cache bookkeeping is not subject to injected storage faults, so a
// chaos run's transient read errors hit query execution, never
// invalidation correctness.
func fileFingerprint(path string) (string, error) {
	st, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|", st.Size(), st.ModTime().UnixNano())
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	buf := make([]byte, probeBytes)
	n, err := f.Read(buf)
	if err != nil && err != io.EOF {
		return "", err
	}
	h.Write(buf[:n])
	if tail := st.Size() - probeBytes; tail > 0 {
		n, err = f.ReadAt(buf, tail)
		if err != nil && err != io.EOF {
			return "", err
		}
		h.Write(buf[:n])
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// cacheKey identifies what a cached entry answers: which collection
// file, which compiled workflow (core fingerprint over output node
// signatures), and the one option that changes answers rather than
// just plans — degraded corrupt-row skipping. Engine, parallelism, and
// budgets are deliberately absent: every engine computes the same
// tables (the cross-engine equivalence suite pins that), so an answer
// computed by one serves them all.
func cacheKey(path, workflowFP string, skipCorrupt bool) string {
	return fmt.Sprintf("%s|%s|skip=%v", path, workflowFP, skipCorrupt)
}

// cacheEntry is one cached result set plus the provenance needed for
// observability and invalidation.
type cacheEntry struct {
	key    string
	path   string
	fileFP string // collection file fingerprint when the result was computed
	res    aw.Results
	bytes  int64

	// Provenance: the run that computed the tables.
	traceID string
	engine  string
	created time.Time

	hits    int64
	lastHit time.Time
}

// resultCache is the LRU. Cached aw.Results share *Table pointers with
// the responses served from them; tables are read-only once finalized
// (TopK and friends only read), so sharing is safe.
type resultCache struct {
	cfg CacheConfig
	rec *obs.Recorder

	mu    sync.Mutex
	ll    *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element
	bytes int64
}

// newResultCache builds the cache and registers its metrics; returns
// nil when disabled (all methods are nil-safe misses).
func newResultCache(cfg CacheConfig, rec *obs.Recorder) *resultCache {
	if cfg.Disabled {
		return nil
	}
	cfg = cfg.withDefaults()
	c := &resultCache{cfg: cfg, rec: rec, ll: list.New(), byKey: make(map[string]*list.Element)}
	rec.Counter(obs.MServeCacheHits)
	rec.Counter(obs.MServeCacheMisses)
	rec.Counter(obs.MServeCacheEvictions)
	rec.Counter(obs.MServeCacheInvalidations)
	rec.Gauge(obs.GServeCacheEntries)
	rec.Gauge(obs.GServeCacheBytes)
	return c
}

// Get returns the cached entry for key if its collection file still
// fingerprints as it did when the result was computed. A changed (or
// unreadable) file invalidates the entry on the spot — the acknowledged
// invalidation point the concurrency tests pin: once a writer's change
// is visible to fileFingerprint, no later Get can return the old
// tables.
func (c *resultCache) Get(key, path string) (*cacheEntry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.rec.Counter(obs.MServeCacheMisses).Add(1)
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	cur, err := fileFingerprint(path)
	if err != nil || cur != e.fileFP {
		c.removeLocked(el)
		c.rec.Counter(obs.MServeCacheInvalidations).Add(1)
		c.rec.Counter(obs.MServeCacheMisses).Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	e.hits++
	e.lastHit = time.Now()
	c.rec.Counter(obs.MServeCacheHits).Add(1)
	return e, true
}

// Put stores a successful run's results — but only if the collection
// file still fingerprints as preFP, the fingerprint taken before the
// run started. A file that changed mid-run would leave the tables
// describing an input that no longer exists; such results are simply
// not cached. Error-path results never reach Put at all.
func (c *resultCache) Put(key, path, preFP string, res aw.Results, traceID, engine string) bool {
	if c == nil || preFP == "" || len(res) == 0 {
		return false
	}
	cur, err := fileFingerprint(path)
	if err != nil || cur != preFP {
		return false
	}
	e := &cacheEntry{
		key: key, path: path, fileFP: preFP, res: res,
		bytes: estimateResultBytes(res), traceID: traceID, engine: engine,
		created: time.Now(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.byKey[key]; ok {
		c.removeLocked(old)
	}
	c.byKey[key] = c.ll.PushFront(e)
	c.bytes += e.bytes
	for (c.bytes > c.cfg.MaxBytes || c.ll.Len() > c.cfg.MaxEntries) && c.ll.Len() > 1 {
		c.removeLocked(c.ll.Back())
		c.rec.Counter(obs.MServeCacheEvictions).Add(1)
	}
	c.gaugesLocked()
	return true
}

// removeLocked unlinks one entry and updates gauges.
func (c *resultCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.byKey, e.key)
	c.bytes -= e.bytes
	c.gaugesLocked()
}

func (c *resultCache) gaugesLocked() {
	c.rec.Gauge(obs.GServeCacheEntries).Set(int64(c.ll.Len()))
	c.rec.Gauge(obs.GServeCacheBytes).Set(c.bytes)
}

// Len returns the current entry count. Nil-safe (0).
func (c *resultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// estimateResultBytes approximates the in-memory footprint of a result
// set: per row, the key bytes plus the float64 value plus map-entry
// overhead, and a fixed per-table charge for codec and headers.
func estimateResultBytes(res aw.Results) int64 {
	var n int64
	for name, t := range res {
		n += int64(len(name)) + 256
		if t == nil {
			continue
		}
		for k := range t.Rows {
			n += int64(len(k)) + 8 + 48
		}
	}
	return n
}

// CacheEntryInfo is one entry in the /debug/aw/cache payload.
type CacheEntryInfo struct {
	Key      string    `json:"key"`
	Path     string    `json:"path"`
	FileFP   string    `json:"file_fp"`
	Bytes    int64     `json:"bytes"`
	Measures int       `json:"measures"`
	Rows     int       `json:"rows"`
	TraceID  string    `json:"trace_id,omitempty"`
	Engine   string    `json:"engine,omitempty"`
	Created  time.Time `json:"created"`
	Hits     int64     `json:"hits"`
	LastHit  time.Time `json:"last_hit,omitempty"`
}

// CacheSnapshot is the /debug/aw/cache payload.
type CacheSnapshot struct {
	Enabled       bool             `json:"enabled"`
	Entries       int              `json:"entries"`
	Bytes         int64            `json:"bytes"`
	MaxBytes      int64            `json:"max_bytes,omitempty"`
	MaxEntries    int              `json:"max_entries,omitempty"`
	Hits          int64            `json:"hits"`
	Misses        int64            `json:"misses"`
	Evictions     int64            `json:"evictions"`
	Invalidations int64            `json:"invalidations"`
	List          []CacheEntryInfo `json:"list,omitempty"`
}

// Snapshot renders the cache state for /debug/aw/cache, entries in
// most-recently-used order. Nil-safe (disabled snapshot).
func (c *resultCache) Snapshot() CacheSnapshot {
	if c == nil {
		return CacheSnapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheSnapshot{
		Enabled:       true,
		Entries:       c.ll.Len(),
		Bytes:         c.bytes,
		MaxBytes:      c.cfg.MaxBytes,
		MaxEntries:    c.cfg.MaxEntries,
		Hits:          c.rec.Counter(obs.MServeCacheHits).Value(),
		Misses:        c.rec.Counter(obs.MServeCacheMisses).Value(),
		Evictions:     c.rec.Counter(obs.MServeCacheEvictions).Value(),
		Invalidations: c.rec.Counter(obs.MServeCacheInvalidations).Value(),
	}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		info := CacheEntryInfo{
			Key: e.key, Path: e.path, FileFP: e.fileFP, Bytes: e.bytes,
			Measures: len(e.res), TraceID: e.traceID, Engine: e.engine,
			Created: e.created, Hits: e.hits, LastHit: e.lastHit,
		}
		for _, t := range e.res {
			if t != nil {
				info.Rows += len(t.Rows)
			}
		}
		s.List = append(s.List, info)
	}
	return s
}
