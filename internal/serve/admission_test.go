package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"awra/aw"
	"awra/internal/obs"
)

func TestGateConcurrencyCapAndRecovery(t *testing.T) {
	rec := obs.New()
	g := NewGate(GateConfig{MaxConcurrent: 2, QueueDepth: 0}, rec)
	ctx := context.Background()

	r1, err := g.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Admit(ctx, "b")
	if err != nil {
		t.Fatal(err)
	}
	if g.Active() != 2 {
		t.Fatalf("Active = %d, want 2", g.Active())
	}

	_, err = g.Admit(ctx, "c")
	re, ok := AsReject(err)
	if !ok || re.Reason != ReasonQueueFull {
		t.Fatalf("3rd admit: got %v, want queue_full reject", err)
	}
	if !errors.Is(err, aw.ErrAdmissionRejected) {
		t.Fatalf("reject does not unwrap to ErrAdmissionRejected: %v", err)
	}
	if re.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", re.RetryAfter)
	}

	r1()
	r3, err := g.Admit(ctx, "c")
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	r3()
	r2()
	if g.Active() != 0 {
		t.Fatalf("Active = %d after all releases, want 0", g.Active())
	}
	if n := rec.Counter(obs.MServeShed).Value(); n != 1 {
		t.Errorf("serve_shed = %d, want 1", n)
	}
	if n := rec.Counter(obs.MServeAdmitted).Value(); n != 3 {
		t.Errorf("serve_admitted = %d, want 3", n)
	}
}

func TestGateTenantLimit(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 4, TenantLimit: 1, QueueDepth: 4}, nil)
	ctx := context.Background()

	rA, err := g.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Over-limit tenants are rejected immediately, never queued, even
	// though both slots and queue space are free.
	_, err = g.Admit(ctx, "a")
	if re, ok := AsReject(err); !ok || re.Reason != ReasonTenantLimit {
		t.Fatalf("2nd a: got %v, want tenant_limit", err)
	}
	if g.Waiting() != 0 {
		t.Fatalf("Waiting = %d, want 0 (tenant rejects bypass the queue)", g.Waiting())
	}
	rB, err := g.Admit(ctx, "b")
	if err != nil {
		t.Fatalf("tenant b: %v", err)
	}
	rA()
	rA2, err := g.Admit(ctx, "a")
	if err != nil {
		t.Fatalf("a after release: %v", err)
	}
	rA2()
	rB()
}

func TestGateReleaseIdempotent(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 1}, nil)
	r, err := g.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	r()
	r() // double release must not free a second slot or go negative
	if g.Active() != 0 {
		t.Fatalf("Active = %d, want 0", g.Active())
	}
	r2, err := g.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer r2()
	if _, err := g.Admit(context.Background(), "b"); !errors.Is(err, aw.ErrAdmissionRejected) {
		t.Fatalf("slot leaked by double release: %v", err)
	}
}

func TestGateQueueTimeoutAndOverflow(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 1, QueueDepth: 1, QueueWait: 30 * time.Millisecond}, nil)
	ctx := context.Background()
	r, err := g.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer r()

	// One waiter fits in the queue; a second overflows immediately.
	type res struct {
		err error
	}
	ch := make(chan res, 1)
	go func() {
		_, err := g.Admit(ctx, "b")
		ch <- res{err}
	}()
	waitFor(t, func() bool { return g.Waiting() == 1 })
	if _, err := g.Admit(ctx, "c"); !isReason(err, ReasonQueueFull) {
		t.Fatalf("overflow: got %v, want queue_full", err)
	}
	if got := <-ch; !isReason(got.err, ReasonQueueTimeout) {
		t.Fatalf("queued waiter: got %v, want queue_timeout", got.err)
	}
}

func TestGateQueueHandoff(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 1, QueueDepth: 2, QueueWait: 2 * time.Second}, nil)
	ctx := context.Background()
	r, err := g.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		r2, err := g.Admit(ctx, "b")
		if err == nil {
			r2()
		}
		done <- err
	}()
	waitFor(t, func() bool { return g.Waiting() == 1 })
	r()
	if err := <-done; err != nil {
		t.Fatalf("queued admit after release: %v", err)
	}
}

func TestGateSheddingSkipsQueue(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 1, QueueDepth: 8, QueueWait: time.Second}, nil)
	r, err := g.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer r()
	g.SetShedding(true)
	if _, err := g.Admit(context.Background(), "b"); !isReason(err, ReasonQueueFull) {
		t.Fatalf("shedding admit: got %v, want immediate queue_full", err)
	}
	g.SetShedding(false)
}

func TestGateCloseRejectsAndDrainsQueue(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 1, QueueDepth: 2, QueueWait: 2 * time.Second}, nil)
	ctx := context.Background()
	r, err := g.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := g.Admit(ctx, "b")
		done <- err
	}()
	waitFor(t, func() bool { return g.Waiting() == 1 })
	g.Close()
	if _, err := g.Admit(ctx, "c"); !isReason(err, ReasonDraining) {
		t.Fatalf("post-close admit: got %v, want draining", err)
	}
	// The queued waiter must not sneak in when the active query's slot
	// frees up under a closed gate.
	r()
	if err := <-done; !isReason(err, ReasonDraining) {
		t.Fatalf("queued waiter after close: got %v, want draining", err)
	}
	if g.Active() != 0 {
		t.Fatalf("Active = %d, want 0", g.Active())
	}
}

func TestGateCtxCanceledWhileQueued(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 1, QueueDepth: 1, QueueWait: 2 * time.Second}, nil)
	r, err := g.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer r()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Admit(ctx, "b")
		done <- err
	}()
	waitFor(t, func() bool { return g.Waiting() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter: got %v, want context.Canceled", err)
	}
	if g.Waiting() != 0 {
		t.Fatalf("Waiting = %d, want 0", g.Waiting())
	}
}

func isReason(err error, reason string) bool {
	re, ok := AsReject(err)
	return ok && re.Reason == reason
}

// waitFor polls cond until true or a deadline; the queue transitions
// it watches are local channel handoffs, never real work.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 2s")
		}
		time.Sleep(time.Millisecond)
	}
}
