// Scan sharing: the paper's Section 5 idea — one pass over the fact
// table computes an entire workflow of measures — applied across
// concurrent queries. Compatible queries (same collection file, same
// schema shape, same result-affecting options) that arrive within a
// short hold window are merged into ONE compiled workflow
// (core.MergeCompiled deduplicates structurally identical nodes), run
// as a single engine pass under the leader's admission slot and
// options, and the finalized tables are fanned back out to every
// waiter by name projection.
//
// The hold window trades a bounded latency add for a fact-scan
// multiplier: N compatible queries cost one scan instead of N. It is
// off by default (Window = 0) — an always-on service enables it when
// repeated scan-heavy workloads dominate.
package serve

import (
	"context"
	"sync"
	"time"

	"awra/aw"
	"awra/internal/core"
	"awra/internal/obs"
)

// ShareConfig tunes the scan-sharing batcher.
type ShareConfig struct {
	// Window is how long the first query of a batch waits for
	// compatible queries to join before running. 0 disables sharing.
	Window time.Duration
	// MaxBatch caps queries merged into one run; 0 defaults to 8.
	// When the cap is reached the batch launches immediately.
	MaxBatch int
}

func (c ShareConfig) withDefaults() ShareConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	return c
}

// shareExec runs one (merged) workflow and reports the results, the
// engine that ran, and the attempt count. Supplied by the server so
// the batch runs under the leader's retry policy and query options.
type shareExec func(merged *core.Compiled) (aw.Results, string, int, error)

// shareMember is one query waiting on a batch. Its out field is
// written only under the sharer's mutex; done is closed after the
// write, so readers that waited on done see a settled value.
type shareMember struct {
	compiled  *core.Compiled
	done      chan struct{}
	abandoned bool // set under mu when the member's ctx gave up waiting
	out       shareOutcome
}

// shareOutcome is what a batched query receives back.
type shareOutcome struct {
	// solo means the member must execute by itself: sharing formed a
	// one-member batch, the merge failed, or the wait was abandoned.
	solo bool
	// res holds this member's own measures, projected out of the
	// merged run (nil when solo or on error).
	res aw.Results
	// leader marks the member whose options and request identity the
	// merged run used; its history record and flight trace are the
	// run's own. Followers synthesize theirs.
	leader bool
	// leaderTraceID is the flight trace of the run that computed the
	// tables (followers link to it).
	leaderTraceID string
	engine        string
	attempts      int
	size          int // members actually served by the merged run
	err           error
}

// shareGroup is one forming batch.
type shareGroup struct {
	key     string
	members []*shareMember
	timer   *time.Timer
	full    chan struct{} // closed when MaxBatch is hit (launch early)
	closed  bool          // full already closed
}

// sharer coalesces compatible concurrently-admitted queries. One
// instance per server; nil disables sharing (all methods nil-safe).
type sharer struct {
	cfg ShareConfig
	rec *obs.Recorder

	mu     sync.Mutex
	groups map[string]*shareGroup
}

func newSharer(cfg ShareConfig, rec *obs.Recorder) *sharer {
	if cfg.Window <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	rec.Counter(obs.MShareBatches)
	rec.Counter(obs.MShareBatchedQueries)
	return &sharer{cfg: cfg, rec: rec, groups: make(map[string]*shareGroup)}
}

// submit enrolls a query in the batch forming under key and blocks
// until the batch resolves or ctx is canceled. The first member of a
// batch becomes its runner: it waits out the hold window (or until the
// batch is full), merges the members' workflows, and executes the
// merged workflow via ITS exec closure. ok=false means the caller must
// run solo — sharing formed a one-member batch, the merge was not
// possible, or the wait was abandoned.
func (sh *sharer) submit(ctx context.Context, key string, c *core.Compiled, traceID string, exec shareExec) (shareOutcome, bool) {
	if sh == nil {
		return shareOutcome{}, false
	}
	m := &shareMember{compiled: c, done: make(chan struct{})}

	sh.mu.Lock()
	g := sh.groups[key]
	runner := g == nil
	if runner {
		g = &shareGroup{key: key, full: make(chan struct{})}
		g.timer = time.NewTimer(sh.cfg.Window)
		sh.groups[key] = g
	}
	g.members = append(g.members, m)
	if len(g.members) >= sh.cfg.MaxBatch && !g.closed {
		g.closed = true
		close(g.full)
	}
	sh.mu.Unlock()

	if runner {
		sh.runBatch(ctx, g, exec, traceID)
		return m.out, !m.out.solo
	}
	select {
	case <-m.done:
		return m.out, !m.out.solo
	case <-ctx.Done():
		// Give up the wait. If the batch has not collected this member
		// yet, it will be skipped; if it has, its result is simply
		// discarded — the caller's ctx error wins either way.
		sh.mu.Lock()
		m.abandoned = true
		sh.mu.Unlock()
		return shareOutcome{solo: true}, false
	}
}

// settle writes a member's outcome (under the mutex, see shareMember)
// and releases its waiter.
func (sh *sharer) settle(m *shareMember, out shareOutcome) {
	sh.mu.Lock()
	m.out = out
	sh.mu.Unlock()
	close(m.done)
}

// runBatch is executed by the batch's first member: wait out the hold
// window, detach the group, merge, run once, fan out.
func (sh *sharer) runBatch(ctx context.Context, g *shareGroup, exec shareExec, leaderTraceID string) {
	select {
	case <-g.timer.C:
	case <-g.full:
		g.timer.Stop()
	case <-ctx.Done():
		g.timer.Stop()
	}

	sh.mu.Lock()
	delete(sh.groups, g.key)
	if !g.closed {
		g.closed = true
		close(g.full) // late arrivals race the delete, never the run
	}
	members := make([]*shareMember, 0, len(g.members))
	var gone []*shareMember
	for _, m := range g.members {
		if m.abandoned && m != g.members[0] {
			gone = append(gone, m)
			continue
		}
		members = append(members, m)
	}
	sh.mu.Unlock()
	for _, m := range gone {
		sh.settle(m, shareOutcome{solo: true})
	}

	leader := members[0]
	if len(members) == 1 {
		sh.settle(leader, shareOutcome{solo: true})
		return
	}

	parts := make([]*core.Compiled, len(members))
	for i, m := range members {
		parts[i] = m.compiled
	}
	merged, nameMaps, err := core.MergeCompiled(parts)
	if err != nil {
		// Cannot merge — and a wrong merge would be a silent wrong
		// answer, so never force it: everyone executes solo.
		for _, m := range members {
			sh.settle(m, shareOutcome{solo: true})
		}
		return
	}

	res, engine, attempts, runErr := exec(merged)
	sh.rec.Counter(obs.MShareBatches).Add(1)
	sh.rec.Counter(obs.MShareBatchedQueries).Add(int64(len(members) - 1))

	for i, m := range members {
		out := shareOutcome{
			leader:        m == leader,
			leaderTraceID: leaderTraceID,
			engine:        engine,
			attempts:      attempts,
			size:          len(members),
			err:           runErr,
		}
		if runErr == nil {
			out.res = projectResults(res, nameMaps[i], m.compiled.Outputs())
		}
		sh.settle(m, out)
	}
}

// projectResults extracts one member's measures from a merged run's
// results through its name map. The *Table values are shared, not
// copied: finalized tables are read-only.
func projectResults(merged aw.Results, nameMap map[string]string, outputs []string) aw.Results {
	out := make(aw.Results, len(outputs))
	for _, name := range outputs {
		if t, ok := merged[nameMap[name]]; ok {
			out[name] = t
		}
	}
	return out
}
