package serve

// The differential/metamorphic harness for the result cache and the
// scan-sharing batcher: every answer the service produces — solo runs
// across every engine and option combination, cache hits, shared
// fan-outs, answers computed under injected faults and concurrent
// invalidation — is replayed cold through the serial single-scan
// engine and must be BIT-IDENTICAL (eps 0, reflect.DeepEqual on the
// decoded float64s). The workflows are count-derived, so every value
// is an exact small rational: sums and counts of integers are exact
// in float64, their ratios deterministic, and Go's JSON encoder
// round-trips float64 exactly — any engine-, cache-, or
// sharing-induced deviation shows up as a hard mismatch, not an
// epsilon wobble.

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"awra/aw"
	"awra/internal/faultfs"
	"awra/internal/obs"
	"awra/internal/wfdsl"
)

// diffLimit is large enough that responses carry every result row, so
// equality checks cover full tables, not a top-K prefix.
const diffLimit = 1 << 20

// diffWorkflows spans the measure taxonomy — basic, filtered rollup,
// combine (ratio), sliding window, dimension predicate — while staying
// count-derived (the net fact file declares no fact measures, and
// NULL-free outputs keep the HTTP JSON layer exact).
var diffWorkflows = map[string]string{
	"count":  "schema net\nbasic Count gran(t=Hour, U=IP) agg=count",
	"rollup": testWorkflow,
	"share": `schema net
basic   Count gran(t=Hour, U=IP) agg=count
rollup  Busy  gran(t=Hour) src=Count agg=count where "m0 > 1"
rollup  Tot   gran(t=Hour) src=Count agg=count
combine Share src=Busy,Tot fc=ratio`,
	"sliding": "schema net\nbasic Count gran(t=Hour) agg=count\nsliding Avg6 src=Count agg=avg window t -5..0",
	"dim":     "schema net\nbasic HiPort gran(t=Day, T=/24) agg=count where \"dim P > 512\"",
}

// coldMeasures is the oracle: parse the workflow text and run it cold
// through the serial single-scan engine over the fact file, projecting
// the full tables exactly as the server projects responses.
func coldMeasures(t *testing.T, fact, wfText string) map[string][]ValueAt {
	t.Helper()
	parsed, err := wfdsl.Parse(wfText)
	if err != nil {
		t.Fatal(err)
	}
	res, err := aw.RunCompiled(context.Background(), parsed.Compiled, aw.FromFile(fact),
		aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EngineSingleScan}, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return topkMeasures(res, QueryRequest{Limit: diffLimit})
}

// oracleSet precomputes the cold oracle for every diff workflow.
func oracleSet(t *testing.T, fact string) map[string]map[string][]ValueAt {
	t.Helper()
	out := make(map[string]map[string][]ValueAt, len(diffWorkflows))
	for name, wf := range diffWorkflows {
		out[name] = coldMeasures(t, fact, wf)
	}
	return out
}

func requireIdentical(t *testing.T, ctxLabel string, got, want map[string][]ValueAt) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: measures diverge from the cold serial oracle\ngot:  %v\nwant: %v", ctxLabel, got, want)
	}
}

// TestServeDifferentialEngineMatrix drives every engine over every
// workflow (cache off, so each query really executes) and requires
// bit-identity with the cold single-scan oracle.
func TestServeDifferentialEngineMatrix(t *testing.T) {
	fact := writeNetFact(t, 2000, 11)
	oracles := oracleSet(t, fact)
	_, ts := newServerOverFact(t, fact, func(c *Config) { c.Cache.Disabled = true })

	for _, engine := range []string{"auto", "sortscan", "singlescan", "multipass", "shardscan"} {
		for name, wf := range diffWorkflows {
			if engine == "shardscan" && name == "sliding" {
				// A sliding window along the shard dimension legitimately
				// refuses to shard; not a differential case.
				continue
			}
			id := fmt.Sprintf("diff-%s-%s", engine, name)
			status, qr, _ := postQuery(t, ts.URL, QueryRequest{
				Workflow: wf, Collection: "net", RequestID: id,
				Engine: engine, Limit: diffLimit,
			})
			if status != http.StatusOK || qr.Outcome != "ok" {
				t.Fatalf("%s: status=%d outcome=%q error=%q", id, status, qr.Outcome, qr.Error)
			}
			if qr.ServedFrom != "" {
				t.Fatalf("%s: served_from=%q with cache disabled", id, qr.ServedFrom)
			}
			requireIdentical(t, id, qr.Measures, oracles[name])
		}
	}
}

// TestServeDifferentialOptionCombos runs every workflow under option
// combinations that change plans but must never change answers —
// memory budgets, read batch sizes, parallelism, degraded corrupt-row
// skipping — and requires bit-identity with the oracle.
func TestServeDifferentialOptionCombos(t *testing.T) {
	fact := writeNetFact(t, 2000, 11)
	oracles := oracleSet(t, fact)

	combos := []struct {
		name  string
		tweak func(*Config)
	}{
		{"tight-budget", func(c *Config) { c.MemoryBudget = 1 << 18 }},
		{"small-batches", func(c *Config) { c.ReadBatchSize = 1 << 12; c.MemoryBudget = 1 << 20 }},
		{"parallel", func(c *Config) { c.Parallelism = 2 }},
		{"skip-corrupt", func(c *Config) { c.SkipCorruptRows = true; c.ReadBatchSize = 1 << 14 }},
	}
	for _, combo := range combos {
		t.Run(combo.name, func(t *testing.T) {
			_, ts := newServerOverFact(t, fact, func(c *Config) {
				c.Cache.Disabled = true
				combo.tweak(c)
			})
			for name, wf := range diffWorkflows {
				id := fmt.Sprintf("diff-%s-%s", combo.name, name)
				status, qr, _ := postQuery(t, ts.URL, QueryRequest{
					Workflow: wf, Collection: "net", RequestID: id, Limit: diffLimit,
				})
				if status != http.StatusOK || qr.Outcome != "ok" {
					t.Fatalf("%s: status=%d outcome=%q error=%q", id, status, qr.Outcome, qr.Error)
				}
				requireIdentical(t, id, qr.Measures, oracles[name])
			}
		})
	}
}

// TestServeCacheHitBitIdentical proves the tentpole property for the
// cache: a hit returns the same bytes the computing run returned, and
// both equal the cold oracle. Provenance, metrics, the debug endpoint,
// and the measured-statistics firewall are checked alongside.
func TestServeCacheHitBitIdentical(t *testing.T) {
	fact := writeNetFact(t, 2000, 11)
	oracles := oracleSet(t, fact)
	s, ts := newServerOverFact(t, fact, nil)

	ms0 := s.History().MeasuredStats()
	for name, wf := range diffWorkflows {
		cold, _, _ := postQuery(t, ts.URL, QueryRequest{
			Workflow: wf, Collection: "net", RequestID: "warm-" + name, Limit: diffLimit,
		})
		if cold != http.StatusOK {
			t.Fatalf("warm %s: status=%d", name, cold)
		}
	}
	msWarm := s.History().MeasuredStats()
	if msWarm <= ms0 {
		t.Fatalf("executed runs contributed no measured statistics (%d -> %d)", ms0, msWarm)
	}

	firstTrace := map[string]string{}
	for name, wf := range diffWorkflows {
		status, qr, _ := postQuery(t, ts.URL, QueryRequest{
			Workflow: wf, Collection: "net", RequestID: "hit-" + name, Limit: diffLimit,
		})
		if status != http.StatusOK || qr.Outcome != "ok" {
			t.Fatalf("hit %s: status=%d %+v", name, status, qr)
		}
		if qr.ServedFrom != "cache" || qr.Attempts != 0 {
			t.Fatalf("hit %s: served_from=%q attempts=%d, want cache/0", name, qr.ServedFrom, qr.Attempts)
		}
		if qr.SourceTraceID == "" || qr.SourceTraceID == qr.TraceID {
			t.Fatalf("hit %s: source_trace_id=%q must name the computing run, not itself (%q)",
				name, qr.SourceTraceID, qr.TraceID)
		}
		firstTrace[name] = qr.SourceTraceID
		requireIdentical(t, "hit "+name, qr.Measures, oracles[name])
	}

	// Cache hits must never feed measured statistics.
	if got := s.History().MeasuredStats(); got != msWarm {
		t.Fatalf("cache hits changed measured statistics: %d -> %d", msWarm, got)
	}
	// And each hit logged exactly one history record with the cache_hit
	// outcome and provenance.
	for name := range diffWorkflows {
		var n int
		for _, r := range s.History().Recent(100) {
			if r.RequestID != "hit-"+name {
				continue
			}
			n++
			if r.Outcome != aw.OutcomeCacheHit || r.ServedFrom != "cache" || r.SourceTraceID != firstTrace[name] {
				t.Errorf("hit-%s record: outcome=%q served_from=%q source=%q", name, r.Outcome, r.ServedFrom, r.SourceTraceID)
			}
		}
		if n != 1 {
			t.Errorf("hit-%s: %d history records, want 1", name, n)
		}
	}

	snap := s.cache.Snapshot()
	if snap.Entries != len(diffWorkflows) || snap.Hits < int64(len(diffWorkflows)) {
		t.Fatalf("cache snapshot: %d entries %d hits, want %d entries and >= %d hits",
			snap.Entries, snap.Hits, len(diffWorkflows), len(diffWorkflows))
	}
	if got := s.rec.Counter(obs.MServeCacheHits).Value(); got != snap.Hits {
		t.Fatalf("hit counter %d disagrees with snapshot %d", got, snap.Hits)
	}
}

// TestServeShareDifferentialFanout launches compatible concurrent
// queries (identical and distinct) into an open share window: at least
// one merged batch must form, followers must be marked served_from=
// shared with the leader's trace, and every response — leader and
// follower alike — must be bit-identical to the cold oracle.
func TestServeShareDifferentialFanout(t *testing.T) {
	fact := writeNetFact(t, 2000, 11)
	oracles := oracleSet(t, fact)
	s, ts := newServerOverFact(t, fact, func(c *Config) {
		c.Cache.Disabled = true // isolate sharing from caching
		c.Share = ShareConfig{Window: 250 * time.Millisecond, MaxBatch: 16}
		c.Gate = GateConfig{MaxConcurrent: 8, QueueDepth: 8, QueueWait: 2 * time.Second}
	})

	// Two clients per workflow across three workflows: identical pairs
	// dedup fully in the merge, distinct ones share the common scan.
	names := []string{"count", "rollup", "share", "count", "rollup", "share"}
	type reply struct {
		name string
		qr   QueryResponse
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		replies []reply
	)
	start := make(chan struct{})
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			<-start
			status, qr, _ := postQuery(t, ts.URL, QueryRequest{
				Workflow: diffWorkflows[name], Collection: "net",
				RequestID: fmt.Sprintf("fan-%d-%s", i, name), Limit: diffLimit,
			})
			if status != http.StatusOK || qr.Outcome != "ok" {
				t.Errorf("fan-%d-%s: status=%d %+v", i, name, status, qr)
				return
			}
			mu.Lock()
			replies = append(replies, reply{name, qr})
			mu.Unlock()
		}(i, name)
	}
	close(start)
	wg.Wait()
	if len(replies) != len(names) {
		t.Fatalf("%d/%d queries succeeded", len(replies), len(names))
	}

	leaderTraces := map[string]bool{}
	sharedCount := 0
	for _, r := range replies {
		requireIdentical(t, r.qr.RequestID, r.qr.Measures, oracles[r.name])
		if r.qr.ServedFrom == "" {
			leaderTraces[r.qr.TraceID] = true
		}
	}
	for _, r := range replies {
		if r.qr.ServedFrom == "" {
			continue
		}
		sharedCount++
		if r.qr.ServedFrom != "shared" {
			t.Errorf("%s: served_from=%q, want shared", r.qr.RequestID, r.qr.ServedFrom)
		}
		if !leaderTraces[r.qr.SourceTraceID] {
			t.Errorf("%s: source trace %q is not any leader's trace", r.qr.RequestID, r.qr.SourceTraceID)
		}
		if r.qr.Attempts < 1 {
			t.Errorf("%s: shared response reports %d attempts", r.qr.RequestID, r.qr.Attempts)
		}
	}

	if got := s.rec.Counter(obs.MShareBatches).Value(); got < 1 {
		t.Fatalf("scan_share_batches = %d, want >= 1", got)
	}
	if got := s.rec.Counter(obs.MShareBatchedQueries).Value(); got != int64(sharedCount) {
		t.Fatalf("scan_share_batched_queries = %d, %d responses marked shared", got, sharedCount)
	}
	if sharedCount == 0 {
		t.Fatal("no query was served from a merged batch inside a 250ms window")
	}

	// One history record per request, shared or not.
	seen := map[string]int{}
	for _, r := range s.History().Recent(100) {
		seen[r.RequestID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("request %s has %d history records, want 1", id, n)
		}
	}
	if len(seen) != len(names) {
		t.Errorf("history holds %d requests, want %d", len(seen), len(names))
	}
}

// writeFactState atomically replaces the fact file with n records
// (write-to-temp + rename, so concurrent readers see the old or the
// new state, never a torn one).
func writeFactState(t *testing.T, fact string, n int, seed int64) {
	t.Helper()
	tmp := fact + ".tmp"
	if err := aw.WriteRecords(tmp, 4, 0, netRecords(n, seed)); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, fact); err != nil {
		t.Fatal(err)
	}
}

// TestServeCacheInvalidationChurn is the -race concurrency test: N
// clients fire identical and distinct queries while an appender
// rewrites the collection mid-flight. Every 200 must match the cold
// oracle of one of the states the file actually passed through, and
// once the final write is acknowledged no stale answer may surface —
// cached or not.
func TestServeCacheInvalidationChurn(t *testing.T) {
	dir := t.TempDir()
	fact := filepath.Join(dir, "fact.rec")

	// Three file states the appender cycles through, each with its own
	// oracle, computed from identical bytes written elsewhere.
	type state struct{ n, seed int }
	states := []state{{1500, 21}, {2100, 22}, {1800, 23}}
	oracleFor := func(st state, wf string) map[string][]ValueAt {
		p := filepath.Join(t.TempDir(), "oracle.rec")
		if err := aw.WriteRecords(p, 4, 0, netRecords(st.n, int64(st.seed))); err != nil {
			t.Fatal(err)
		}
		return coldMeasures(t, p, wf)
	}
	wfs := []string{"rollup", "count"}
	oracles := map[string][]map[string][]ValueAt{} // wf -> per-state oracle
	for _, wf := range wfs {
		for _, st := range states {
			oracles[wf] = append(oracles[wf], oracleFor(st, diffWorkflows[wf]))
		}
	}

	writeFactState(t, fact, states[0].n, int64(states[0].seed))
	s, ts := newServerOverFact(t, fact, func(c *Config) {
		// One-pass engine: a rename mid-query leaves the scan on the old
		// inode, so every answer reflects exactly one state.
		c.DefaultEngine = aw.EngineSingleScan
		c.Gate = GateConfig{MaxConcurrent: 8, QueueDepth: 8, QueueWait: 2 * time.Second}
	})

	// The appender: cycle the states, ending deterministically on the
	// last one.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 1; i <= 24; i++ {
			st := states[i%len(states)]
			writeFactState(t, fact, st.n, int64(st.seed))
			time.Sleep(2 * time.Millisecond)
		}
		final := states[len(states)-1]
		writeFactState(t, fact, final.n, int64(final.seed))
	}()

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < 12; j++ {
				wf := wfs[(c+j)%len(wfs)]
				id := fmt.Sprintf("churn-%d-%d", c, j)
				status, qr, _ := postQuery(t, ts.URL, QueryRequest{
					Workflow: diffWorkflows[wf], Collection: "net", RequestID: id, Limit: diffLimit,
				})
				if status != http.StatusOK || qr.Outcome != "ok" {
					t.Errorf("%s: status=%d %+v", id, status, qr)
					continue
				}
				// The answer must be SOME state's truth — bit-identical to
				// one of the oracles — never a chimera of two states.
				matched := false
				for _, want := range oracles[wf] {
					if reflect.DeepEqual(qr.Measures, want) {
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("%s (served_from=%q): answer matches NO file state the collection passed through", id, qr.ServedFrom)
				}
			}
		}(c)
	}
	wg.Wait()
	<-churnDone

	// Churn over: the final state is acknowledged. The next answers must
	// be the final oracle — and the second one must be a genuine hit.
	finalIdx := len(states) - 1
	for round := 0; round < 2; round++ {
		status, qr, _ := postQuery(t, ts.URL, QueryRequest{
			Workflow: diffWorkflows["rollup"], Collection: "net",
			RequestID: fmt.Sprintf("settle-%d", round), Limit: diffLimit,
		})
		if status != http.StatusOK {
			t.Fatalf("settle-%d: status=%d %+v", round, status, qr)
		}
		requireIdentical(t, fmt.Sprintf("settle-%d", round), qr.Measures, oracles["rollup"][finalIdx])
		if round == 1 && qr.ServedFrom != "cache" {
			t.Fatalf("settle-1: served_from=%q, want cache (unchanged file, repeated query)", qr.ServedFrom)
		}
	}

	// One more acknowledged invalidation: rewrite the file once, then
	// query. A stale cached answer here would be the bug this whole test
	// exists to catch.
	inv0 := s.rec.Counter(obs.MServeCacheInvalidations).Value()
	post := state{1900, 24}
	postOracle := oracleFor(post, diffWorkflows["rollup"])
	writeFactState(t, fact, post.n, int64(post.seed))
	status, qr, _ := postQuery(t, ts.URL, QueryRequest{
		Workflow: diffWorkflows["rollup"], Collection: "net", RequestID: "post-inv", Limit: diffLimit,
	})
	if status != http.StatusOK {
		t.Fatalf("post-inv: status=%d %+v", status, qr)
	}
	if qr.ServedFrom == "cache" {
		t.Fatal("post-inv: served from cache after the file changed — stale hit")
	}
	requireIdentical(t, "post-inv", qr.Measures, postOracle)
	if got := s.rec.Counter(obs.MServeCacheInvalidations).Value(); got <= inv0 {
		t.Fatalf("invalidations counter did not move past the acknowledged rewrite (%d -> %d)", inv0, got)
	}
}

// TestServeChaosWithCache is the chaos test with the cache in play:
// concurrent repeated queries under sustained transient storage faults.
// Every 200 — executed, retried, cached, whatever — must equal the cold
// oracle, every cache entry must hold oracle-identical tables (a
// failed or retried attempt must never populate), and the
// one-history-record-per-request invariant must survive cache hits.
func TestServeChaosWithCache(t *testing.T) {
	fact := writeNetFact(t, 2000, 11)

	// Each client owns a distinct rollup variant (distinct workflow
	// fingerprint), so every client executes at least one real run under
	// fault pressure; repeats within a client and the shared final-round
	// "count" query exercise hits and same-key Put/Get races.
	const clients = 10
	variant := func(i int) string {
		return fmt.Sprintf("schema net\nbasic Count gran(t=Hour, U=IP) agg=count\nrollup Busy gran(t=Hour) src=Count agg=count where \"m0 > %d\"", i)
	}
	wfText := func(i, j int) (string, string) {
		if j == 3 {
			return "count", diffWorkflows["count"]
		}
		return fmt.Sprintf("variant-%d", i), variant(i)
	}
	// Oracles, computed before faults are armed.
	oracles := map[string]map[string][]ValueAt{"count": coldMeasures(t, fact, diffWorkflows["count"])}
	for i := 0; i < clients; i++ {
		oracles[fmt.Sprintf("variant-%d", i)] = coldMeasures(t, fact, variant(i))
	}

	s, ts := newServerOverFact(t, fact, func(c *Config) {
		c.Gate = GateConfig{MaxConcurrent: 3, QueueDepth: 3, QueueWait: 2 * time.Second}
		c.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	})
	restore := swapFaultFS(t, func(fs *faultfs.FS) { fs.TransientReadEvery(10) })
	defer restore()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		executed = map[string]bool{}
		hits     int
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				name, text := wfText(i, j)
				id := fmt.Sprintf("cchaos-%d-%d", i, j)
				status, qr, _ := postQuery(t, ts.URL, QueryRequest{
					Workflow: text, Collection: "net", RequestID: id, Limit: diffLimit,
				})
				switch status {
				case http.StatusOK:
					if !reflect.DeepEqual(qr.Measures, oracles[name]) {
						t.Errorf("%s (served_from=%q, attempts=%d): answer diverges from oracle under faults",
							id, qr.ServedFrom, qr.Attempts)
					}
					if qr.ServedFrom == "cache" && qr.Attempts != 0 {
						t.Errorf("%s: cache hit with %d attempts", id, qr.Attempts)
					}
					mu.Lock()
					executed[id] = true
					if qr.ServedFrom == "cache" {
						hits++
					}
					mu.Unlock()
				case http.StatusInternalServerError:
					mu.Lock()
					executed[id] = true
					mu.Unlock()
				case http.StatusTooManyRequests:
					// Shed; nothing to verify.
				default:
					t.Errorf("%s: unexpected status %d (%+v)", id, status, qr)
				}
			}
		}(i)
	}
	wg.Wait()

	// Every cached entry must be oracle-identical: a failed or retried
	// attempt populating the cache would surface right here.
	wfKeys := map[string]string{}
	for j := 0; j <= 3; j += 3 {
		for i := 0; i < clients; i++ {
			name, text := wfText(i, j)
			parsed, err := wfdsl.Parse(text)
			if err != nil {
				t.Fatal(err)
			}
			wfKeys[cacheKey(fact, parsed.Compiled.Fingerprint(), false)] = name
		}
	}
	s.cache.mu.Lock()
	entries := make(map[string]aw.Results, len(s.cache.byKey))
	for k, el := range s.cache.byKey {
		entries[k] = el.Value.(*cacheEntry).res
	}
	s.cache.mu.Unlock()
	if len(entries) == 0 {
		t.Fatal("no query populated the cache under chaos")
	}
	for k, res := range entries {
		name, ok := wfKeys[k]
		if !ok {
			t.Fatalf("cache holds an entry for an unknown key %q", k)
		}
		requireIdentical(t, "cached "+name, topkMeasures(res, QueryRequest{Limit: diffLimit}), oracles[name])
	}

	// History invariant: exactly one record per executed request (200 or
	// 500, cache hit or real run), none for shed ones.
	seen := map[string]int{}
	for _, r := range s.History().Recent(500) {
		seen[r.RequestID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("request %s has %d history records, want 1", id, n)
		}
	}
	if len(seen) != len(executed) {
		t.Errorf("history holds %d requests, %d executed", len(seen), len(executed))
	}
	if int64(hits) != s.rec.Counter(obs.MServeCacheHits).Value() {
		t.Errorf("responses marked cache=%d, hit counter=%d", hits, s.rec.Counter(obs.MServeCacheHits).Value())
	}
	t.Logf("chaos-with-cache: %d executed, %d cache hits, %d entries, %d retries",
		len(executed), hits, len(entries), s.rec.Counter(obs.MServeRetries).Value())
}

// TestServeCacheFailedRunNeverPopulates drives a query to a hard 500
// (retries exhausted) and proves the cache stayed empty; after the
// fault heals, the same request ID executes, and its replay is served
// as a hit — the idempotent-replay path the issue requires.
func TestServeCacheFailedRunNeverPopulates(t *testing.T) {
	fact := writeNetFact(t, 2000, 11)
	oracle := coldMeasures(t, fact, diffWorkflows["rollup"])
	s, ts := newServerOverFact(t, fact, func(c *Config) {
		c.Retry = RetryPolicy{MaxAttempts: 1}
	})
	restore := swapFaultFS(t, func(fs *faultfs.FS) { fs.TransientReadEvery(1) })
	healed := false
	defer func() {
		if !healed {
			restore()
		}
	}()

	status, qr, _ := postQuery(t, ts.URL, QueryRequest{
		Workflow: diffWorkflows["rollup"], Collection: "net", RequestID: "replay-1", Limit: diffLimit,
	})
	if status != http.StatusInternalServerError {
		t.Fatalf("under total read failure: status=%d %+v", status, qr)
	}
	if s.cache.Len() != 0 {
		t.Fatalf("failed run populated the cache: %d entries", s.cache.Len())
	}
	if snap := s.cache.Snapshot(); snap.Entries != 0 || snap.Hits != 0 {
		t.Fatalf("cache snapshot after failure: %+v", snap)
	}

	restore()
	healed = true

	status, qr, _ = postQuery(t, ts.URL, QueryRequest{
		Workflow: diffWorkflows["rollup"], Collection: "net", RequestID: "replay-1", Limit: diffLimit,
	})
	if status != http.StatusOK || qr.ServedFrom != "" || qr.Attempts != 1 {
		t.Fatalf("healed run: status=%d %+v", status, qr)
	}
	requireIdentical(t, "healed run", qr.Measures, oracle)
	ms := s.History().MeasuredStats()

	status, qr, _ = postQuery(t, ts.URL, QueryRequest{
		Workflow: diffWorkflows["rollup"], Collection: "net", RequestID: "replay-1", Limit: diffLimit,
	})
	if status != http.StatusOK || qr.ServedFrom != "cache" || qr.Attempts != 0 {
		t.Fatalf("replay: status=%d %+v, want a cache hit", status, qr)
	}
	requireIdentical(t, "replay", qr.Measures, oracle)
	if got := s.History().MeasuredStats(); got != ms {
		t.Fatalf("replay hit changed measured statistics: %d -> %d", ms, got)
	}

	// The replayed request ID supersedes its earlier record: history
	// holds ONE record for replay-1, and it is the cache hit.
	var recs int
	for _, r := range s.History().Recent(50) {
		if r.RequestID == "replay-1" {
			recs++
			if r.Outcome != aw.OutcomeCacheHit {
				t.Errorf("replay-1 final outcome = %q, want cache_hit", r.Outcome)
			}
		}
	}
	if recs != 1 {
		t.Fatalf("replay-1 history records = %d, want 1 (idempotent replay)", recs)
	}
}
