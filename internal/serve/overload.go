package serve

import (
	"sort"
	"sync"
	"time"

	"awra/aw"
	"awra/internal/obs"
)

// Overload levels. The controller moves one step at a time: escalation
// is immediate (pressure is expensive), de-escalation needs several
// consecutive healthy observations (hysteresis, so the ladder does not
// flap around the threshold).
const (
	// LevelNormal: requests run with their configured budgets.
	LevelNormal = 0
	// LevelDegraded: budgets are tightened (qguard.Limits.Scale) and
	// EngineAuto is forced with a reduced memory budget, so the §6
	// decision procedure downgrades big sort/scan plans to multi-pass —
	// each query gets smaller and slower instead of being rejected.
	LevelDegraded = 1
	// LevelShedding: on top of degraded budgets, the admission gate
	// stops queueing — saturated arrivals are rejected immediately.
	LevelShedding = 2
)

// OverloadConfig tunes the controller's thresholds.
type OverloadConfig struct {
	// HighP95 escalates when the recent p95 request latency exceeds
	// it; 0 disables the latency trigger.
	HighP95 time.Duration
	// HighLiveCells escalates when a completed query's live-cell
	// high-water mark exceeds it; 0 disables the memory trigger.
	HighLiveCells int64
	// TightenFactor scales budgets at LevelDegraded and above
	// (qguard.Limits.Scale); 0 defaults to 0.5.
	TightenFactor float64
	// DegradedMemoryBudget is the EngineAuto memory budget imposed at
	// LevelDegraded and above, forcing the Section 6 chooser toward
	// multi-pass plans; 0 defaults to 8 MiB.
	DegradedMemoryBudget int64
	// Cooldown is how many consecutive healthy observations
	// de-escalate one level; 0 defaults to 8.
	Cooldown int
	// Window is how many recent completions the p95 is computed over;
	// 0 defaults to 64.
	Window int
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.TightenFactor <= 0 || c.TightenFactor >= 1 {
		c.TightenFactor = 0.5
	}
	if c.DegradedMemoryBudget <= 0 {
		c.DegradedMemoryBudget = 8 << 20
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 8
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	return c
}

// Controller is the graceful-degradation ladder. Every completed
// request reports its latency and live-cell high-water mark through
// Observe; the controller keeps a sliding window, recomputes the
// recent p95, and moves the overload level. Apply stamps the current
// level's policy onto a query's options before it runs.
//
// The same measurements also feed the serve recorder's cumulative
// histograms (HServeLatencyUs) for /metrics; the controller's window
// is the responsive, recent-history view of that distribution.
type Controller struct {
	cfg  OverloadConfig
	gate *Gate
	rec  *obs.Recorder

	mu      sync.Mutex
	level   int
	healthy int // consecutive healthy observations at current level
	win     []int64
	pos     int
	filled  bool
	hwm     int64 // largest live-cell HWM in the current window epoch
}

// NewController builds a controller that drives gate's shedding mode.
// Both gate and rec may be nil (standalone evaluation in tests).
func NewController(cfg OverloadConfig, gate *Gate, rec *obs.Recorder) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, gate: gate, rec: rec, win: make([]int64, cfg.Window)}
	rec.Gauge(obs.GServeOverloadLevel)
	rec.Counter(obs.MServeDegraded)
	return c
}

// Level returns the current overload level.
func (c *Controller) Level() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// Observe folds one completed request into the window and re-evaluates
// the level: latency is the request's end-to-end duration, liveCells
// the query's live-cell high-water mark (0 when unknown).
func (c *Controller) Observe(latency time.Duration, liveCells int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.win[c.pos] = latency.Microseconds()
	c.pos = (c.pos + 1) % len(c.win)
	if c.pos == 0 {
		c.filled = true
	}
	if liveCells > c.hwm {
		c.hwm = liveCells
	}
	c.evaluateLocked()
}

// p95Locked computes the p95 of the filled portion of the window.
func (c *Controller) p95Locked() int64 {
	n := len(c.win)
	if !c.filled {
		n = c.pos
	}
	if n == 0 {
		return 0
	}
	s := make([]int64, n)
	copy(s, c.win[:n])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (n*95 + 99) / 100
	if idx > 0 {
		idx--
	}
	return s[idx]
}

// WindowP95 returns the sliding window's p95 request latency (0 until
// the window has observations). The flight recorder's slow-query
// threshold is derived from it, so "slow" tracks the service's actual
// recent latency distribution instead of a static cutoff.
func (c *Controller) WindowP95() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.p95Locked()) * time.Microsecond
}

// evaluateLocked moves the level one step based on the window.
func (c *Controller) evaluateLocked() {
	overloaded := false
	if c.cfg.HighP95 > 0 && c.p95Locked() > c.cfg.HighP95.Microseconds() {
		overloaded = true
	}
	if c.cfg.HighLiveCells > 0 && c.hwm > c.cfg.HighLiveCells {
		overloaded = true
	}
	switch {
	case overloaded && c.level < LevelShedding:
		c.level++
		c.healthy = 0
		c.hwm = 0 // each level change starts a fresh memory-pressure epoch
	case overloaded:
		c.healthy = 0
	case c.level > LevelNormal:
		c.healthy++
		if c.healthy >= c.cfg.Cooldown {
			c.level--
			c.healthy = 0
			c.hwm = 0
		}
	}
	c.rec.Gauge(obs.GServeOverloadLevel).Set(int64(c.level))
	if c.gate != nil {
		c.gate.SetShedding(c.level >= LevelShedding)
	}
}

// Apply stamps the current level's degradation policy onto one query's
// options and reports whether the query runs degraded. At LevelNormal
// it is the identity. At LevelDegraded and above, the engine is forced
// to EngineAuto with a capped memory budget — the paper's Section 6
// decision procedure then plans multi-pass when one pass's footprint
// no longer fits — and every hard guardrail is tightened by
// TightenFactor, shrinking each admitted query's footprint before the
// gate ever has to shed.
func (c *Controller) Apply(o *aw.QueryOptions) bool {
	c.mu.Lock()
	level := c.level
	c.mu.Unlock()
	if level < LevelDegraded || o == nil {
		return false
	}
	o.Engine = aw.EngineAuto
	o.ExecOptions = o.ExecOptions.TightenBudgets(c.cfg.TightenFactor)
	if o.MemoryBudget <= 0 || o.MemoryBudget > c.cfg.DegradedMemoryBudget {
		o.MemoryBudget = c.cfg.DegradedMemoryBudget
	}
	c.rec.Counter(obs.MServeDegraded).Add(1)
	return true
}
