package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"awra/aw"
	"awra/internal/obs"
)

// Rejection reasons found in RejectError.Reason.
const (
	// ReasonTenantLimit: the tenant already runs its full concurrency
	// share; rejected immediately (never queued) so one tenant cannot
	// monopolize the wait queue.
	ReasonTenantLimit = "tenant_limit"
	// ReasonQueueFull: every execution slot is busy and the bounded
	// wait queue is at capacity (or shedding disabled queueing).
	ReasonQueueFull = "queue_full"
	// ReasonQueueTimeout: the request waited its full queue allowance
	// without a slot freeing up.
	ReasonQueueTimeout = "queue_timeout"
	// ReasonDraining: the server is draining and admits nothing new.
	ReasonDraining = "draining"
)

// RejectError is the concrete error behind aw.ErrAdmissionRejected: it
// names why admission control turned the request away and how long the
// caller should wait before retrying (the Retry-After header value).
type RejectError struct {
	Reason     string
	Tenant     string
	RetryAfter time.Duration
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("aw: admission rejected (%s, tenant %q, retry after %s)", e.Reason, e.Tenant, e.RetryAfter)
}

// Unwrap makes errors.Is(err, aw.ErrAdmissionRejected) true.
func (e *RejectError) Unwrap() error { return aw.ErrAdmissionRejected }

// AsReject extracts a *RejectError from an error chain.
func AsReject(err error) (*RejectError, bool) {
	var re *RejectError
	if errors.As(err, &re) {
		return re, true
	}
	return nil, false
}

// GateConfig tunes the admission gate.
type GateConfig struct {
	// MaxConcurrent is the number of queries allowed to execute at
	// once (the weighted-semaphore width). Must be >= 1.
	MaxConcurrent int
	// TenantLimit caps concurrent queries per tenant; 0 means
	// MaxConcurrent (no per-tenant fairness).
	TenantLimit int
	// QueueDepth bounds how many requests may wait for a slot once all
	// are busy; a request arriving to a full queue is shed. 0 disables
	// queueing (immediate shed when saturated).
	QueueDepth int
	// QueueWait bounds how long a queued request waits before it is
	// shed; 0 defaults to one second.
	QueueWait time.Duration
	// RetryAfter is the base backoff hint attached to rejections; 0
	// defaults to one second.
	RetryAfter time.Duration
}

func (c GateConfig) withDefaults() GateConfig {
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = 1
	}
	if c.TenantLimit <= 0 || c.TenantLimit > c.MaxConcurrent {
		c.TenantLimit = c.MaxConcurrent
	}
	if c.QueueWait <= 0 {
		c.QueueWait = time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Gate is the admission-control front door: a semaphore of
// MaxConcurrent execution slots with a bounded FIFO wait queue and
// per-tenant concurrency limits. Admit either returns a release
// function (the request owns a slot until it calls it) or a
// *RejectError wrapping aw.ErrAdmissionRejected. Closing the gate
// (drain) rejects all new admissions while released slots drain out.
//
// Rejection is deliberately the cheap path: no planning, no I/O, just
// a counter check under one mutex — the "say no early" half of the
// paper's Section 6 budgeting, applied per process instead of per
// query.
type Gate struct {
	cfg GateConfig
	rec *obs.Recorder

	mu        sync.Mutex
	active    int
	perTenant map[string]int
	waiting   int
	shedding  bool
	closed    bool
	// slots is the semaphore: buffered to MaxConcurrent, a token in
	// the channel is a free execution slot.
	slots chan struct{}
}

// NewGate builds an admission gate. rec (nil-safe) receives the
// serve_admitted/serve_shed/serve_queued counters and the
// queue-depth/active gauges.
func NewGate(cfg GateConfig, rec *obs.Recorder) *Gate {
	cfg = cfg.withDefaults()
	g := &Gate{cfg: cfg, rec: rec, perTenant: make(map[string]int), slots: make(chan struct{}, cfg.MaxConcurrent)}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		g.slots <- struct{}{}
	}
	// Register the vocabulary up front so /metrics shows zeros.
	rec.Counter(obs.MServeAdmitted)
	rec.Counter(obs.MServeShed)
	rec.Counter(obs.MServeQueued)
	rec.Gauge(obs.GServeActive)
	rec.Gauge(obs.GServeQueueDepth)
	return g
}

// SetShedding switches queueing off (true) or back on (false): while
// shedding, saturated arrivals are rejected immediately instead of
// queued — the overload controller's level-2 action.
func (g *Gate) SetShedding(on bool) {
	g.mu.Lock()
	g.shedding = on
	g.mu.Unlock()
}

// Close stops all future admissions (drain). Idempotent.
func (g *Gate) Close() {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
}

// Active returns the number of admitted, unreleased requests.
func (g *Gate) Active() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.active
}

// Waiting returns the current queue depth.
func (g *Gate) Waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiting
}

// reject counts and builds one rejection.
func (g *Gate) reject(reason, tenant string) error {
	g.rec.Counter(obs.MServeShed).Add(1)
	return &RejectError{Reason: reason, Tenant: tenant, RetryAfter: g.cfg.RetryAfter}
}

// Admit asks for an execution slot for tenant. On success the caller
// MUST call the returned release exactly once when the query finishes.
// On failure the error wraps aw.ErrAdmissionRejected (and ctx errors
// pass through when the caller gave up first).
func (g *Gate) Admit(ctx context.Context, tenant string) (release func(), err error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, g.reject(ReasonDraining, tenant)
	}
	if g.perTenant[tenant] >= g.cfg.TenantLimit {
		g.mu.Unlock()
		return nil, g.reject(ReasonTenantLimit, tenant)
	}
	// Fast path: a free slot with no queue ahead of us.
	if g.waiting == 0 {
		select {
		case <-g.slots:
			return g.admitLocked(tenant), nil
		default:
		}
	}
	// Saturated: queue if allowed, shed otherwise.
	if g.shedding || g.waiting >= g.cfg.QueueDepth {
		g.mu.Unlock()
		return nil, g.reject(ReasonQueueFull, tenant)
	}
	g.waiting++
	g.rec.Counter(obs.MServeQueued).Add(1)
	g.rec.Gauge(obs.GServeQueueDepth).Set(int64(g.waiting))
	g.mu.Unlock()

	timer := time.NewTimer(g.cfg.QueueWait)
	defer timer.Stop()
	waited := func() {
		g.mu.Lock()
		g.waiting--
		g.rec.Gauge(obs.GServeQueueDepth).Set(int64(g.waiting))
	}
	select {
	case <-g.slots:
		waited() // leaves g.mu held
		if g.closed {
			g.slots <- struct{}{}
			g.mu.Unlock()
			return nil, g.reject(ReasonDraining, tenant)
		}
		if g.perTenant[tenant] >= g.cfg.TenantLimit {
			// The tenant filled its share while this request queued.
			g.slots <- struct{}{}
			g.mu.Unlock()
			return nil, g.reject(ReasonTenantLimit, tenant)
		}
		return g.admitLocked(tenant), nil
	case <-timer.C:
		waited()
		g.mu.Unlock()
		return nil, g.reject(ReasonQueueTimeout, tenant)
	case <-ctx.Done():
		waited()
		g.mu.Unlock()
		return nil, ctx.Err()
	}
}

// admitLocked finishes an admission that already holds a slot token
// and g.mu; it returns the release func and unlocks.
func (g *Gate) admitLocked(tenant string) (release func()) {
	g.active++
	g.perTenant[tenant]++
	g.rec.Counter(obs.MServeAdmitted).Add(1)
	g.rec.Gauge(obs.GServeActive).Set(int64(g.active))
	g.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.active--
			g.perTenant[tenant]--
			if g.perTenant[tenant] <= 0 {
				delete(g.perTenant, tenant)
			}
			g.rec.Gauge(obs.GServeActive).Set(int64(g.active))
			g.mu.Unlock()
			g.slots <- struct{}{}
		})
	}
}
