package serve

// The acceptance chaos test: concurrent queries at twice the admission
// limit against storage under sustained injected transient faults. The
// service must never panic or deadlock, every response must be a clean
// 200 (possibly after retries), 429/503 (admission), or 5xx (fault
// survived every retry) — and afterwards the in-flight registry is
// empty, the gate is idle, and the history holds exactly one record
// per executed request.

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"awra/aw"
	"awra/internal/faultfs"
)

func TestServeChaos(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Gate = GateConfig{MaxConcurrent: 3, QueueDepth: 3, QueueWait: 2 * time.Second}
		c.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	})
	// Sustained pressure: every 40th read call fails transiently, so
	// faults land mid-query at unpredictable points; some queries need
	// several retries, and a few may exhaust all four attempts.
	restore := swapFaultFS(t, func(fs *faultfs.FS) { fs.TransientReadEvery(40) })
	defer restore()

	const clients = 12 // 2x over MaxConcurrent+QueueDepth
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		byStatus = map[int]int{}
		attempts = map[string]int{}
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				id := fmt.Sprintf("chaos-%d-%d", i, j)
				status, qr, hdr := postQuery(t, ts.URL, QueryRequest{
					Workflow: testWorkflow, Collection: "net", RequestID: id,
					Tenant: fmt.Sprintf("tenant-%d", i%3),
				})
				mu.Lock()
				byStatus[status]++
				if status == http.StatusOK || status == http.StatusInternalServerError {
					attempts[id] = qr.Attempts
				}
				mu.Unlock()
				switch status {
				case http.StatusOK:
					if qr.Outcome != "ok" || len(qr.Measures) == 0 {
						t.Errorf("%s: 200 with %+v", id, qr)
					}
				case http.StatusTooManyRequests:
					if hdr.Get("Retry-After") == "" {
						t.Errorf("%s: 429 without Retry-After", id)
					}
					if qr.Measures != nil {
						t.Errorf("%s: shed request returned data", id)
					}
				case http.StatusInternalServerError:
					if qr.Attempts < 2 {
						t.Errorf("%s: 500 after %d attempts, want the retry budget spent: %s", id, qr.Attempts, qr.Error)
					}
				default:
					t.Errorf("%s: unexpected status %d (%+v)", id, status, qr)
				}
			}
		}(i)
	}
	wg.Wait()

	if byStatus[http.StatusOK] == 0 {
		t.Fatal("no query succeeded under chaos")
	}
	t.Logf("status mix under chaos: %v", byStatus)

	// Quiescence: nothing in flight, no slot leaked, queue empty.
	if got := aw.InflightQueries(); len(got) != 0 {
		t.Errorf("in-flight registry not empty after chaos: %d entries", len(got))
	}
	if s.Gate().Active() != 0 || s.Gate().Waiting() != 0 {
		t.Errorf("gate not idle: active=%d waiting=%d", s.Gate().Active(), s.Gate().Waiting())
	}

	// History consistency: exactly one record per executed request (200
	// or 500), none for shed ones, regardless of per-request retries.
	seen := map[string]int{}
	for _, r := range s.History().Recent(500) {
		seen[r.RequestID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("request %s has %d history records, want 1", id, n)
		}
	}
	if len(seen) != len(attempts) {
		t.Errorf("history holds %d requests, %d executed", len(seen), len(attempts))
	}
	executed := int64(byStatus[http.StatusOK] + byStatus[http.StatusInternalServerError])
	if got := s.History().Len(); got != executed {
		t.Errorf("history Len = %d, want %d (one per executed request)", got, executed)
	}
}
