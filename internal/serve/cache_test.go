package serve

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"awra/aw"
	"awra/internal/core"
	"awra/internal/model"
	"awra/internal/obs"
)

func writeTempFile(t *testing.T, name string, data []byte) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func fakeResults(rows int) aw.Results {
	tbl := &core.Table{Rows: make(map[model.Key]float64, rows)}
	for i := 0; i < rows; i++ {
		tbl.Rows[model.Key(string(rune('a'+i%26))+string(rune('0'+i/26)))] = float64(i)
	}
	return aw.Results{"m": tbl}
}

func TestCacheHitMissAndFingerprintInvalidation(t *testing.T) {
	rec := obs.New()
	c := newResultCache(CacheConfig{}, rec)
	p := writeTempFile(t, "facts.rec", []byte("row1\nrow2\n"))
	fp, err := fileFingerprint(p)
	if err != nil {
		t.Fatal(err)
	}
	key := cacheKey(p, "wf1", false)

	if _, ok := c.Get(key, p); ok {
		t.Fatal("hit on empty cache")
	}
	if !c.Put(key, p, fp, fakeResults(3), "trace-1", "sortscan") {
		t.Fatal("Put refused with unchanged file")
	}
	e, ok := c.Get(key, p)
	if !ok {
		t.Fatal("expected hit after Put")
	}
	if e.traceID != "trace-1" || e.engine != "sortscan" {
		t.Fatalf("provenance lost: %+v", e)
	}

	// Append to the file: size changes, entry must be invalidated even
	// though the key is unchanged.
	f, err := os.OpenFile(p, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("row3\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, ok := c.Get(key, p); ok {
		t.Fatal("stale hit served after file change")
	}
	if got := rec.Counter(obs.MServeCacheInvalidations).Value(); got != 1 {
		t.Fatalf("invalidations = %d, want 1", got)
	}
}

func TestCacheDetectsEqualLengthRewrite(t *testing.T) {
	// Same size, same mtime: only the content probe can catch it.
	rec := obs.New()
	c := newResultCache(CacheConfig{}, rec)
	p := writeTempFile(t, "facts.rec", []byte("AAAAAAAA"))
	fp, err := fileFingerprint(p)
	if err != nil {
		t.Fatal(err)
	}
	key := cacheKey(p, "wf1", false)
	if !c.Put(key, p, fp, fakeResults(1), "t", "e") {
		t.Fatal("Put refused")
	}
	st, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte("BBBBBBBB"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(p, time.Now(), st.ModTime()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key, p); ok {
		t.Fatal("stale hit served after equal-length rewrite with preserved mtime")
	}
}

func TestCachePutRefusesMidRunChange(t *testing.T) {
	rec := obs.New()
	c := newResultCache(CacheConfig{}, rec)
	p := writeTempFile(t, "facts.rec", []byte("before\n"))
	fp, err := fileFingerprint(p)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a mid-run change: fingerprint taken, then file grows
	// before the run finishes and tries to populate.
	if err := os.WriteFile(p, []byte("before\nand-after\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	key := cacheKey(p, "wf1", false)
	if c.Put(key, p, fp, fakeResults(1), "t", "e") {
		t.Fatal("Put accepted results computed from a superseded file state")
	}
	if c.Len() != 0 {
		t.Fatalf("cache has %d entries, want 0", c.Len())
	}
}

func TestCacheLRUEvictionByEntriesAndBytes(t *testing.T) {
	rec := obs.New()
	c := newResultCache(CacheConfig{MaxEntries: 2, MaxBytes: 1 << 20}, rec)
	p := writeTempFile(t, "facts.rec", []byte("data\n"))
	fp, err := fileFingerprint(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, wf := range []string{"wf1", "wf2"} {
		if !c.Put(cacheKey(p, wf, false), p, fp, fakeResults(2), "t", "e") {
			t.Fatalf("Put %s refused", wf)
		}
	}
	// Touch wf1 so wf2 is the LRU victim when wf3 arrives.
	if _, ok := c.Get(cacheKey(p, "wf1", false), p); !ok {
		t.Fatal("wf1 should hit")
	}
	if !c.Put(cacheKey(p, "wf3", false), p, fp, fakeResults(2), "t", "e") {
		t.Fatal("Put wf3 refused")
	}
	if _, ok := c.Get(cacheKey(p, "wf2", false), p); ok {
		t.Fatal("LRU victim wf2 still cached")
	}
	if _, ok := c.Get(cacheKey(p, "wf1", false), p); !ok {
		t.Fatal("recently used wf1 evicted")
	}
	if got := rec.Counter(obs.MServeCacheEvictions).Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}

	// Byte budget: a cache too small for two entries keeps only the newest.
	small := newResultCache(CacheConfig{MaxBytes: 1, MaxEntries: 100}, obs.New())
	small.Put(cacheKey(p, "wf1", false), p, fp, fakeResults(4), "t", "e")
	small.Put(cacheKey(p, "wf2", false), p, fp, fakeResults(4), "t", "e")
	if small.Len() != 1 {
		t.Fatalf("byte-budget cache has %d entries, want 1", small.Len())
	}
	if _, ok := small.Get(cacheKey(p, "wf2", false), p); !ok {
		t.Fatal("newest entry should survive the byte budget")
	}
}

func TestCacheSnapshotAndDisabled(t *testing.T) {
	rec := obs.New()
	c := newResultCache(CacheConfig{}, rec)
	p := writeTempFile(t, "facts.rec", []byte("data\n"))
	fp, _ := fileFingerprint(p)
	c.Put(cacheKey(p, "wf1", false), p, fp, fakeResults(3), "trace-9", "auto")
	c.Get(cacheKey(p, "wf1", false), p)
	s := c.Snapshot()
	if !s.Enabled || s.Entries != 1 || s.Hits != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.List) != 1 || s.List[0].Rows != 3 || s.List[0].TraceID != "trace-9" {
		t.Fatalf("snapshot list = %+v", s.List)
	}

	var off *resultCache // Disabled config yields nil; nil must be inert.
	if off = newResultCache(CacheConfig{Disabled: true}, rec); off != nil {
		t.Fatal("disabled cache should be nil")
	}
	if _, ok := off.Get("k", p); ok {
		t.Fatal("nil cache hit")
	}
	if off.Put("k", p, fp, fakeResults(1), "t", "e") {
		t.Fatal("nil cache accepted Put")
	}
	if s := off.Snapshot(); s.Enabled {
		t.Fatal("nil snapshot enabled")
	}
}
