package serve

// Flight-recorder integration: trace IDs end-to-end through the HTTP
// service, one trace per request across retries, tail-based pinning of
// budget-tripped queries, and correlation IDs on every error response.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"awra/aw"
	"awra/internal/faultfs"
	"awra/internal/obs/flight"
)

// getTrace fetches /debug/aw/traces/{id} and decodes the full trace.
func getTrace(t *testing.T, base, id string) (int, flight.Trace) {
	t.Helper()
	resp, err := http.Get(base + "/debug/aw/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr flight.Trace
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, tr
}

func TestServeResponseCarriesTraceID(t *testing.T) {
	_, ts := newTestServer(t, nil)
	status, qr, hdr := postQuery(t, ts.URL, QueryRequest{
		Workflow: testWorkflow, Collection: "net", RequestID: "q-trace", Limit: 5,
	})
	if status != http.StatusOK || qr.Outcome != "ok" {
		t.Fatalf("status=%d outcome=%q error=%q", status, qr.Outcome, qr.Error)
	}
	if len(qr.TraceID) != 32 {
		t.Fatalf("trace_id %q is not a 32-hex trace ID", qr.TraceID)
	}
	tp := hdr.Get("traceparent")
	if got, ok := flight.ParseTraceparent(tp); !ok || got != qr.TraceID {
		t.Fatalf("traceparent echo %q does not carry trace_id %q", tp, qr.TraceID)
	}
}

func TestServeTraceparentIngested(t *testing.T) {
	// The query budget-trips so its trace is pinned — retention under
	// the caller's ID must be deterministic, not a sampling draw.
	_, ts := newTestServer(t, func(c *Config) {
		c.DefaultEngine = aw.EngineSortScan
		c.MaxLiveCells = 1
	})
	want := "4bf92f3577b34da6a3ce929d0e0e4736"
	body := fmt.Sprintf(`{"workflow": %q, "collection": "net", "request_id": "q-tp"}`, testWorkflow)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+want+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.TraceID != want {
		t.Fatalf("trace_id = %q, want ingested traceparent ID %q", qr.TraceID, want)
	}
	// The completed trace is retrievable under the caller's ID.
	status, tr := getTrace(t, ts.URL, want)
	if status != http.StatusOK || tr.ID != want {
		t.Fatalf("GET trace by ingested ID: status=%d id=%q", status, tr.ID)
	}
}

func TestServeBudgetTripPinnedWithProfile(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		c.DefaultEngine = aw.EngineSortScan // no auto fallback: the trip must surface
		c.MaxLiveCells = 1
	})
	status, qr, _ := postQuery(t, ts.URL, QueryRequest{
		Workflow: testWorkflow, Collection: "net", RequestID: "q-budget",
	})
	if status != http.StatusUnprocessableEntity || qr.TraceID == "" {
		t.Fatalf("budget trip: status=%d trace_id=%q (want 422 with trace_id)", status, qr.TraceID)
	}
	gstatus, tr := getTrace(t, ts.URL, qr.TraceID)
	if gstatus != http.StatusOK {
		t.Fatalf("budget-tripped trace not retrievable: %d", gstatus)
	}
	if !tr.Pinned || !strings.Contains(strings.Join(tr.PinReasons, ","), flight.PinBudget) {
		t.Fatalf("trace pinned=%v reasons=%v, want pinned with %q", tr.Pinned, tr.PinReasons, flight.PinBudget)
	}
	if len(tr.Attempts) != 1 {
		t.Fatalf("attempts = %d, want 1", len(tr.Attempts))
	}
	att := tr.Attempts[0]
	if att.Span == nil || att.Span.Name != "query" {
		t.Fatalf("attempt span missing or misnamed: %+v", att.Span)
	}
	if len(att.Nodes) == 0 {
		t.Fatal("attempt carries no per-node estimate-vs-actual profile")
	}
	if att.Span.Attrs["trace_id"] != qr.TraceID {
		t.Fatalf("query span trace_id attr = %q, want %q", att.Span.Attrs["trace_id"], qr.TraceID)
	}
}

func TestServeRetryOneTraceManyAttempts(t *testing.T) {
	// Every read fails transiently twice, then succeeds — the request
	// needs 3 attempts, and all of them must land in ONE trace.
	restore := swapFaultFS(t, func(fs *faultfs.FS) { fs.TransientReadFaults(2) })
	defer restore()
	_, ts := newTestServer(t, func(c *Config) {
		c.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	})
	status, qr, _ := postQuery(t, ts.URL, QueryRequest{
		Workflow: testWorkflow, Collection: "net", RequestID: "q-retry",
	})
	if status != http.StatusOK || qr.Outcome != "ok" {
		t.Fatalf("status=%d outcome=%q error=%q", status, qr.Outcome, qr.Error)
	}
	if qr.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (transient faults armed)", qr.Attempts)
	}
	gstatus, tr := getTrace(t, ts.URL, qr.TraceID)
	if gstatus != http.StatusOK {
		t.Fatalf("retried trace not retrievable: %d", gstatus)
	}
	if len(tr.Attempts) != qr.Attempts {
		t.Fatalf("trace has %d attempt spans, response says %d attempts — want one trace, N attempts",
			len(tr.Attempts), qr.Attempts)
	}
	for i, att := range tr.Attempts {
		if att.Seq != i+1 {
			t.Fatalf("attempt %d has seq %d", i, att.Seq)
		}
		if att.Span == nil {
			t.Fatalf("attempt %d carries no span tree", i+1)
		}
	}
	// Earlier attempts failed, the last succeeded; the chain shows it.
	if tr.Attempts[0].Outcome == "ok" || tr.Attempts[len(tr.Attempts)-1].Outcome != "ok" {
		t.Fatalf("attempt outcomes: first=%q last=%q", tr.Attempts[0].Outcome, tr.Attempts[len(tr.Attempts)-1].Outcome)
	}
	reasons := strings.Join(tr.PinReasons, ",")
	if !tr.Pinned || !strings.Contains(reasons, flight.PinRetried) {
		t.Fatalf("retried trace pinned=%v reasons=%q, want %q", tr.Pinned, reasons, flight.PinRetried)
	}
}

func TestServeErrorResponsesCarryCorrelationIDs(t *testing.T) {
	s, ts := newTestServer(t, nil)

	// 404 unknown collection and 400 parse errors echo both IDs.
	status, qr, _ := postQuery(t, ts.URL, QueryRequest{
		Workflow: testWorkflow, Collection: "nope", RequestID: "q-404",
	})
	if status != http.StatusNotFound || qr.RequestID != "q-404" || qr.TraceID == "" {
		t.Fatalf("404: status=%d request_id=%q trace_id=%q", status, qr.RequestID, qr.TraceID)
	}
	status, qr, _ = postQuery(t, ts.URL, QueryRequest{
		Workflow: "schema net\nbogus line", Collection: "net", RequestID: "q-400",
	})
	if status != http.StatusBadRequest || qr.RequestID != "q-400" || qr.TraceID == "" {
		t.Fatalf("400: status=%d request_id=%q trace_id=%q", status, qr.RequestID, qr.TraceID)
	}

	// Draining 503s are correlatable too.
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	status, qr, hdr := postQuery(t, ts.URL, QueryRequest{
		Workflow: testWorkflow, Collection: "net", RequestID: "q-drain",
	})
	if status != http.StatusServiceUnavailable || qr.RequestID != "q-drain" || qr.TraceID == "" {
		t.Fatalf("draining 503: status=%d request_id=%q trace_id=%q", status, qr.RequestID, qr.TraceID)
	}
	if hdr.Get("traceparent") == "" {
		t.Fatal("draining 503 without traceparent echo")
	}
}

func TestServeInflightLinksTraces(t *testing.T) {
	// The in-flight registry's snapshots carry trace_id + trace_path;
	// validated via the library surface the endpoint serializes.
	_, ts := newTestServer(t, nil)
	_, qr, _ := postQuery(t, ts.URL, QueryRequest{
		Workflow: testWorkflow, Collection: "net", RequestID: "q-link",
	})
	resp, err := http.Get(ts.URL + "/debug/aw/traces?n=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Traces []flight.Summary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	for _, s := range list.Traces {
		if s.ID == qr.TraceID {
			if s.Path != "/debug/aw/traces/"+qr.TraceID {
				t.Fatalf("trace list path = %q", s.Path)
			}
			return
		}
	}
	// The run may have been sampled out only if unpinned AND the draw
	// missed; with a fresh ring per process this is deterministic, so a
	// miss here means list/commit are broken. But other tests in the
	// package share the global ring, so only assert when present — the
	// by-ID and pinning paths are covered above.
	t.Logf("trace %s not in list (sampled out by shared-ring sequence)", qr.TraceID)
}

func TestServeSlowEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/debug/aw/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/aw/slow status %d", resp.StatusCode)
	}
	var payload struct {
		Total  int              `json:"total"`
		Traces []flight.Summary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
}
