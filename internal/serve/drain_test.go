package serve

// Graceful-drain coverage (the SIGTERM path minus the signal): drain
// stops admissions, lets in-flight queries finish inside the deadline,
// cancels stragglers through cooperative cancellation, flushes the
// history log — and every executed request appears in the history
// exactly once, whatever its outcome.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"awra/aw"
	"awra/internal/obs"
	"awra/internal/qlog"
)

func TestDrainLetsInflightFinish(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.DrainTimeout = 10 * time.Second
	})

	type result struct {
		status int
		qr     QueryResponse
	}
	started := make(chan struct{})
	done := make(chan result, 1)
	go func() {
		close(started)
		st, qr, _ := postQuery(t, ts.URL, QueryRequest{
			Workflow: testWorkflow, Collection: "net", RequestID: "inflight-1",
		})
		done <- result{st, qr}
	}()
	<-started
	waitFor(t, func() bool { return s.Gate().Active() > 0 || len(done) > 0 })

	if err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	r := <-done
	if r.status != http.StatusOK || r.qr.Outcome != "ok" {
		t.Fatalf("in-flight query under drain: status=%d %+v", r.status, r.qr)
	}

	// Readiness flips, liveness stays, new queries are turned away with
	// a retry hint.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("readyz during drain: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %d", resp.StatusCode)
	}
	status, _, hdr := postQuery(t, ts.URL, QueryRequest{Workflow: testWorkflow, Collection: "net"})
	if status != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("query during drain: status=%d", status)
	}

	// Drain is idempotent.
	if err := s.Drain(); err != nil {
		t.Fatalf("second Drain: %v", err)
	}

	// The flushed log holds the completed run exactly once; read it
	// back from disk, not through the in-memory ring.
	assertLoggedOnce(t, s.cfg.HistoryDir, "inflight-1", aw.OutcomeOK)
}

func TestDrainCancelsStragglers(t *testing.T) {
	// A large collection plus a drain deadline shorter than the query
	// makes the in-flight query a straggler.
	fact := writeNetFactN(t, 400000)
	hist := filepath.Join(t.TempDir(), "history")
	s, err := New(Config{
		Collections:   map[string]string{"net": fact},
		HistoryDir:    hist,
		TempDir:       t.TempDir(),
		Gate:          GateConfig{MaxConcurrent: 2, QueueDepth: 2},
		DefaultEngine: aw.EngineAuto,
		DrainTimeout:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(s.Handler())
	t.Cleanup(hts.Close)
	ts := hts.URL

	done := make(chan int, 1)
	go func() {
		st, _, _ := postQuery(t, ts, QueryRequest{
			Workflow: testWorkflow, Collection: "net", RequestID: "straggler-1",
		})
		done <- st
	}()
	waitFor(t, func() bool { return s.Gate().Active() == 1 })

	start := time.Now()
	if err := s.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %v; cancellation did not bite", elapsed)
	}
	status := <-done
	if status != http.StatusServiceUnavailable {
		t.Fatalf("straggler response = %d, want 503 (drain-canceled)", status)
	}
	if n := s.rec.Counter(obs.MServeDrainCanceled).Value(); n != 1 {
		t.Errorf("serve_drain_canceled = %d, want 1", n)
	}
	if s.Gate().Active() != 0 {
		t.Errorf("gate active = %d after drain", s.Gate().Active())
	}
	if got := aw.InflightQueries(); len(got) != 0 {
		t.Errorf("in-flight registry not empty after drain: %d", len(got))
	}
	assertLoggedOnce(t, hist, "straggler-1", aw.OutcomeCanceled)
}

// writeNetFactN is writeNetFact with a size knob.
func writeNetFactN(t *testing.T, n int) string {
	t.Helper()
	return writeNetFact(t, n, 29)
}

// assertLoggedOnce replays the on-disk history log and asserts id
// appears exactly once with the given outcome — drain must flush the
// log, and retries/cancellation must not double-log.
func assertLoggedOnce(t *testing.T, dir, id, outcome string) {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, "history.jsonl"))
	if err != nil {
		t.Fatalf("history log not flushed: %v", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	var n int
	for dec.More() {
		var r qlog.Record
		if err := dec.Decode(&r); err != nil {
			t.Fatalf("corrupt history line: %v", err)
		}
		if r.RequestID == id {
			n++
			if r.Outcome != outcome {
				t.Errorf("%s outcome = %q, want %q", id, r.Outcome, outcome)
			}
		}
	}
	if n != 1 {
		t.Errorf("%s appears %d times in the flushed log, want 1", id, n)
	}
}
