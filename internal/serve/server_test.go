package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"awra/aw"
	"awra/internal/faultfs"
	"awra/internal/obs"
	"awra/internal/storage"
)

const testWorkflow = `
schema net
basic Count  gran(t=Hour, U=IP) agg=count
rollup Busy  gran(t=Hour) src=Count agg=count where "m0 > 1"
`

// netRecords generates n deterministic synthetic records of the
// paper's Table 1 schema (t, U, T, P — the same shape wfdsl's
// "schema net" declares).
func netRecords(n int, seed int64) []aw.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]aw.Record, n)
	for i := range recs {
		recs[i] = aw.Record{Dims: []int64{
			aw.SecondCode(2004, 3, 1+rng.Intn(3), rng.Intn(24), rng.Intn(60), rng.Intn(60)),
			aw.IPCode(1, rng.Intn(4), rng.Intn(4), rng.Intn(50)),
			aw.IPCode(10, 0, rng.Intn(8), rng.Intn(256)),
			int64(rng.Intn(1024)),
		}, Ms: []float64{}}
	}
	return recs
}

// writeNetFact writes n synthetic records to a fresh fact file.
func writeNetFact(t *testing.T, n int, seed int64) string {
	t.Helper()
	fact := filepath.Join(t.TempDir(), "fact.rec")
	if err := aw.WriteRecords(fact, 4, 0, netRecords(n, seed)); err != nil {
		t.Fatal(err)
	}
	return fact
}

// newServerOverFact builds a server over an existing fact file with
// fast defaults; mutate cfg before New via the optional tweak.
func newServerOverFact(t *testing.T, fact string, tweak func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Collections:   map[string]string{"net": fact},
		HistoryDir:    filepath.Join(t.TempDir(), "history"),
		TempDir:       t.TempDir(),
		Gate:          GateConfig{MaxConcurrent: 4, QueueDepth: 4, QueueWait: 200 * time.Millisecond},
		Retry:         RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		DefaultEngine: aw.EngineAuto,
		DrainTimeout:  5 * time.Second,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Drain()
	})
	return s, ts
}

// newTestServer is newServerOverFact over a fresh 2000-record fact.
func newTestServer(t *testing.T, tweak func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	return newServerOverFact(t, writeNetFact(t, 2000, 11), tweak)
}

// swapFaultFS installs a process-global fault-injecting filesystem and
// returns its restore func. History writes bypass it (qlog uses the OS
// directly), so injected faults hit only query reads.
func swapFaultFS(t *testing.T, arm func(*faultfs.FS)) func() {
	t.Helper()
	fs := faultfs.New()
	arm(fs)
	return storage.SwapFS(fs)
}

func postQuery(t *testing.T, url string, req QueryRequest) (int, QueryResponse, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, qr, resp.Header
}

func TestServeQueryOK(t *testing.T) {
	_, ts := newTestServer(t, nil)
	status, qr, _ := postQuery(t, ts.URL, QueryRequest{
		Workflow: testWorkflow, Collection: "net", RequestID: "q-1", Limit: 5,
	})
	if status != http.StatusOK || qr.Outcome != "ok" {
		t.Fatalf("status=%d outcome=%q error=%q", status, qr.Outcome, qr.Error)
	}
	if qr.RequestID != "q-1" || qr.Attempts != 1 || qr.Engine == "" {
		t.Fatalf("envelope: %+v", qr)
	}
	for _, m := range []string{"Count", "Busy"} {
		rows := qr.Measures[m]
		if len(rows) == 0 || len(rows) > 5 {
			t.Fatalf("measure %s: %d rows, want 1..5", m, len(rows))
		}
		if rows[0].Region == "" || rows[0].Value <= 0 {
			t.Fatalf("measure %s row 0: %+v", m, rows[0])
		}
	}
}

func TestServeErrorMapping(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.MaxResultRows = 3 })

	// Unknown collection.
	status, qr, _ := postQuery(t, ts.URL, QueryRequest{Workflow: testWorkflow, Collection: "nope"})
	if status != http.StatusNotFound || !strings.Contains(qr.Error, "unknown collection") {
		t.Fatalf("unknown collection: status=%d %+v", status, qr)
	}

	// Workflow that does not parse.
	status, qr, _ = postQuery(t, ts.URL, QueryRequest{Workflow: "schema net\nbogus x", Collection: "net"})
	if status != http.StatusBadRequest {
		t.Fatalf("bad workflow: status=%d %+v", status, qr)
	}

	// Unknown engine name.
	status, _, _ = postQuery(t, ts.URL, QueryRequest{Workflow: testWorkflow, Collection: "net", Engine: "warp"})
	if status != http.StatusBadRequest {
		t.Fatalf("bad engine: status=%d", status)
	}

	// A query over its result-row allowance is the client's problem.
	status, qr, _ = postQuery(t, ts.URL, QueryRequest{Workflow: testWorkflow, Collection: "net", RequestID: "big-1"})
	if status != http.StatusUnprocessableEntity || qr.Outcome != "error" {
		t.Fatalf("budget trip: status=%d %+v", status, qr)
	}

	// GET is not a query.
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status=%d", resp.StatusCode)
	}

	// Budget trips and parse failures logged exactly one history record
	// for the IDed request.
	var n int
	for _, r := range s.History().Recent(50) {
		if r.RequestID == "big-1" {
			n++
			if r.Outcome != aw.OutcomeBudget {
				t.Errorf("big-1 outcome = %q, want budget", r.Outcome)
			}
		}
	}
	if n != 1 {
		t.Errorf("big-1 history records = %d, want 1", n)
	}
}

func TestServeOverLimit429(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Gate = GateConfig{MaxConcurrent: 1, QueueDepth: 0, RetryAfter: 2 * time.Second}
	})
	// Occupy the only slot from outside, then knock on the front door.
	release, err := s.Gate().Admit(context.Background(), "hog")
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	status, qr, hdr := postQuery(t, ts.URL, QueryRequest{Workflow: testWorkflow, Collection: "net"})
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%+v)", status, qr)
	}
	if ra := hdr.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	// Same-tenant second query: per-tenant limit, also 429.
	release2, err := s.Gate().Admit(context.Background(), "default")
	if err == nil {
		release2()
		t.Fatal("second slot existed")
	}
	if !isReason(err, ReasonQueueFull) {
		t.Fatalf("got %v", err)
	}
}

func TestServeRetryTransientIdempotent(t *testing.T) {
	s, ts := newTestServer(t, nil)
	restore := swapFaultFS(t, func(fs *faultfs.FS) { fs.TransientReadFaults(2) })
	defer restore()

	status, qr, _ := postQuery(t, ts.URL, QueryRequest{
		Workflow: testWorkflow, Collection: "net", RequestID: "flaky-1",
	})
	if status != http.StatusOK || qr.Outcome != "ok" {
		t.Fatalf("status=%d %+v", status, qr)
	}
	if qr.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (the fault must have fired)", qr.Attempts)
	}

	// Exactly one history record despite the retries, with the final
	// outcome.
	var n int
	for _, r := range s.History().Recent(50) {
		if r.RequestID == "flaky-1" {
			n++
			if r.Outcome != aw.OutcomeOK {
				t.Errorf("flaky-1 outcome = %q, want ok", r.Outcome)
			}
		}
	}
	if n != 1 {
		t.Fatalf("flaky-1 history records = %d, want exactly 1", n)
	}
}

func TestServeObservabilityEndpoints(t *testing.T) {
	_, ts := newTestServer(t, nil)
	if status, _, _ := postQuery(t, ts.URL, QueryRequest{Workflow: testWorkflow, Collection: "net"}); status != 200 {
		t.Fatalf("seed query: %d", status)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if st, body := get("/healthz"); st != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", st, body)
	}
	if st, body := get("/readyz"); st != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("readyz: %d %q", st, body)
	}
	st, body := get("/metrics")
	if st != 200 {
		t.Fatalf("metrics: %d", st)
	}
	for _, want := range []string{
		"awra_" + obs.MServeRequests, "awra_" + obs.MServeAdmitted, "awra_" + obs.MServeShed,
		"awra_" + obs.GServeActive, "awra_" + obs.HServeLatencyUs,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
	if st, body := get("/debug/aw/queries"); st != 200 || !json.Valid([]byte(body)) {
		t.Fatalf("debug queries: %d %q", st, body)
	}
	st, body = get("/debug/aw/history")
	if st != 200 || !json.Valid([]byte(body)) {
		t.Fatalf("debug history: %d", st)
	}
	if !strings.Contains(body, `"total_runs": 1`) {
		t.Errorf("history summary does not show the run:\n%s", body)
	}
}

func TestServeDegradedUnderOverload(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Overload = OverloadConfig{HighP95: time.Nanosecond, Window: 4, Cooldown: 1000}
		c.MemoryBudget = 1 << 30
		// The second (identical) query must actually execute to observe
		// the degraded ladder — a cache hit would bypass it.
		c.Cache.Disabled = true
	})
	// Any completed request trips the nanosecond p95 threshold.
	if status, _, _ := postQuery(t, ts.URL, QueryRequest{Workflow: testWorkflow, Collection: "net"}); status != 200 {
		t.Fatal("seed query failed")
	}
	if s.Controller().Level() < LevelDegraded {
		t.Fatalf("level = %d, want >= degraded", s.Controller().Level())
	}
	status, qr, _ := postQuery(t, ts.URL, QueryRequest{Workflow: testWorkflow, Collection: "net"})
	if status != 200 || !qr.Degraded {
		t.Fatalf("degraded run: status=%d %+v", status, qr)
	}
}
