// Package serve is the always-on query service built on the aw
// library: an HTTP/JSON front end that keeps answering compiled
// workflow queries for many concurrent callers without falling over.
// Robustness is the architecture, in four layers:
//
//   - admission control (Gate): a semaphore of execution slots with a
//     bounded FIFO wait queue and per-tenant concurrency limits;
//     saturated arrivals get 429 + Retry-After instead of a pile-up;
//   - graceful degradation (Controller): the recent p95 latency and
//     live-cell high-water marks drive a three-level overload ladder —
//     normal → tightened budgets with a forced sortscan→multipass
//     downgrade (the paper's Section 6 decision procedure under a
//     smaller budget) → shedding;
//   - retry with backoff (RetryPolicy): transient storage faults are
//     retried under jittered exponential backoff and a per-query retry
//     budget, with idempotent request IDs so a retried query logs one
//     history record;
//   - graceful drain (Server.Drain): stop admissions, let in-flight
//     queries finish under a deadline, cancel stragglers through the
//     engines' cooperative cancellation, flush the history log, exit
//     clean.
//
// The service surfaces /healthz, /readyz, /metrics (Prometheus), and
// the library's /debug/aw/queries and /debug/aw/history endpoints,
// plus the query flight recorder: /debug/aw/traces (retained traces),
// /debug/aw/traces/{trace_id} (one full trace), and /debug/aw/slow
// (the slow-query log). Every response carries the query's trace ID
// (W3C traceparent in, trace_id + traceparent echo out).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"awra/aw"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/obs/flight"
	"awra/internal/wfdsl"
)

// Server states (the readiness ladder).
const (
	stateReady int32 = iota
	stateDraining
	stateStopped
)

// Config assembles one server.
type Config struct {
	// Collections maps collection names to fact-file paths. Queries
	// name a collection; the workflow text declares its schema.
	Collections map[string]string
	// HistoryDir, when set, opens the persistent query history there:
	// every request logs one record (retries are idempotent by request
	// ID) and plans reuse measured statistics. The server owns the
	// history and closes it on drain.
	HistoryDir string
	// TempDir receives sort runs and spills; empty uses os.TempDir.
	TempDir string
	// Gate tunes admission control.
	Gate GateConfig
	// Overload tunes the degradation ladder.
	Overload OverloadConfig
	// Retry tunes transient-fault retry. (RetryPolicy's zero value
	// means "one attempt, no retries".)
	Retry RetryPolicy
	// DefaultTimeout bounds each query's execution (all attempts
	// combined share the request context; the timeout applies per
	// attempt). 0 means no timeout.
	DefaultTimeout time.Duration
	// DefaultEngine runs queries that do not name an engine;
	// zero-value is aw.EngineSortScan, so set EngineAuto explicitly
	// for the Section 6 decision procedure.
	DefaultEngine aw.Engine
	// Budgets are the per-query guardrails applied to every request;
	// the overload controller tightens them further under pressure.
	MaxLiveCells  int64
	MaxResultRows int64
	MaxSpillBytes int64
	// MemoryBudget is the EngineAuto planning budget in bytes.
	MemoryBudget int64
	// Parallelism is passed through to the engines (shard count).
	Parallelism int
	// ReadBatchSize is the fact-read chunk size in bytes for every
	// query (0 = engine default); validated by aw's shared option
	// normalization at run time.
	ReadBatchSize int
	// SkipCorruptRows enables degraded reads for all queries.
	SkipCorruptRows bool
	// Cache tunes the result cache: finalized measure tables keyed by
	// (collection fingerprint × workflow fingerprint), LRU + byte
	// budget, invalidated when the collection file changes. On by
	// default; hits bypass admission entirely.
	Cache CacheConfig
	// Share tunes the scan-sharing batcher: compatible queries arriving
	// within Share.Window are merged onto one fact-table pass. Off by
	// default (Window = 0).
	Share ShareConfig
	// DrainTimeout bounds how long Drain waits for in-flight queries
	// before canceling them; 0 defaults to 10s.
	DrainTimeout time.Duration
	// Recorder receives process-level serve metrics; nil allocates a
	// private one.
	Recorder *obs.Recorder
}

// Server is one running query service. Create with New, mount
// Handler() (or use ListenAndServe), stop with Drain.
type Server struct {
	cfg    Config
	rec    *obs.Recorder
	gate   *Gate
	ctl    *Controller
	hist   *aw.History
	cache  *resultCache
	sharer *sharer
	state  atomic.Int32
	seq    atomic.Int64

	mu       sync.Mutex
	inflight map[int64]context.CancelFunc

	// wfCache caches compiled workflows by text hash: compilation is
	// pure, so concurrent recomputation is only wasted work.
	wfCache sync.Map // uint64 -> *wfdsl.Parsed

	mux *http.ServeMux
}

// New builds a server (opening the history directory when configured)
// but does not listen; mount Handler on any http.Server, or call
// ListenAndServe.
func New(cfg Config) (*Server, error) {
	if len(cfg.Collections) == 0 {
		return nil, fmt.Errorf("serve: no collections registered")
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = obs.New()
	}
	s := &Server{cfg: cfg, rec: rec, inflight: make(map[int64]context.CancelFunc)}
	s.gate = NewGate(cfg.Gate, rec)
	s.ctl = NewController(cfg.Overload, s.gate, rec)
	s.cache = newResultCache(cfg.Cache, rec)
	s.sharer = newSharer(cfg.Share, rec)
	if cfg.HistoryDir != "" {
		h, err := aw.OpenHistory(cfg.HistoryDir)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.hist = h
	}
	// Register the rest of the metric vocabulary up front.
	rec.Counter(obs.MServeRequests)
	rec.Counter(obs.MServeRetries)
	rec.Counter(obs.MServeDrainCanceled)

	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/aw/queries", s.handleInflight)
	mux.HandleFunc("/debug/aw/history", s.handleHistory)
	mux.HandleFunc("/debug/aw/traces", s.handleTraces)
	mux.HandleFunc("/debug/aw/traces/", s.handleTraceByID)
	mux.HandleFunc("/debug/aw/slow", s.handleSlow)
	mux.HandleFunc("/debug/aw/cache", s.handleCache)
	s.mux = mux
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// History returns the server's history (nil when not configured).
func (s *Server) History() *aw.History { return s.hist }

// Controller returns the overload controller (tests and operators).
func (s *Server) Controller() *Controller { return s.ctl }

// Gate returns the admission gate.
func (s *Server) Gate() *Gate { return s.gate }

// CacheSnapshot returns the result cache's current state — the same
// payload /debug/aw/cache serves.
func (s *Server) CacheSnapshot() CacheSnapshot { return s.cache.Snapshot() }

// QueryRequest is the POST /query payload.
type QueryRequest struct {
	// Workflow is the query text in the wfdsl syntax (schema + measure
	// declarations). Required.
	Workflow string `json:"workflow"`
	// Collection names a registered fact file. Required.
	Collection string `json:"collection"`
	// Tenant scopes per-tenant admission limits; empty = "default".
	Tenant string `json:"tenant,omitempty"`
	// RequestID makes retries idempotent in the query history; empty
	// generates one.
	RequestID string `json:"request_id,omitempty"`
	// Engine overrides the server's default engine by name.
	Engine string `json:"engine,omitempty"`
	// TimeoutMs overrides (only downward) the server's default query
	// timeout.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Limit caps rows returned per measure; 0 defaults to 50.
	Limit int `json:"limit,omitempty"`
	// Measure returns only this measure's table.
	Measure string `json:"measure,omitempty"`
}

// QueryResponse is the POST /query result envelope.
type QueryResponse struct {
	RequestID string `json:"request_id"`
	// TraceID keys the query's flight-recorder entry: GET
	// /debug/aw/traces/<trace_id> returns the full trace. Every
	// response — success or error — carries it (and echoes a W3C
	// traceparent header), so any outcome can be correlated after the
	// fact.
	TraceID    string `json:"trace_id,omitempty"`
	Outcome    string `json:"outcome"` // ok | error
	Error      string `json:"error,omitempty"`
	Engine     string `json:"engine,omitempty"`
	DurationUs int64  `json:"duration_us"`
	Attempts   int    `json:"attempts"`
	Degraded   bool   `json:"degraded,omitempty"`
	// ServedFrom marks an answer produced without a dedicated engine
	// run: "cache" (result-cache hit, zero attempts) or "shared"
	// (fanned out from a merged scan-sharing run).
	ServedFrom string `json:"served_from,omitempty"`
	// SourceTraceID is the flight trace of the run that actually
	// computed the tables, when ServedFrom is set.
	SourceTraceID string               `json:"source_trace_id,omitempty"`
	Measures      map[string][]ValueAt `json:"measures,omitempty"`
}

// ValueAt is one result row: a formatted region and its value.
type ValueAt struct {
	Region string  `json:"region"`
	Value  float64 `json:"value"`
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// retryAfterHeader formats a Retry-After value in whole seconds,
// rounded up (0 would invite an immediate retry).
func retryAfterHeader(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// parseWorkflow compiles (with caching) the request's workflow text.
func (s *Server) parseWorkflow(text string) (*wfdsl.Parsed, error) {
	h := fnv.New64a()
	h.Write([]byte(text))
	key := h.Sum64()
	if p, ok := s.wfCache.Load(key); ok {
		return p.(*wfdsl.Parsed), nil
	}
	p, err := wfdsl.Parse(text)
	if err != nil {
		return nil, err
	}
	s.wfCache.Store(key, p)
	return p, nil
}

// track registers an in-flight query's cancel func for drain.
func (s *Server) track(id int64, cancel context.CancelFunc) {
	s.mu.Lock()
	s.inflight[id] = cancel
	s.mu.Unlock()
}

func (s *Server) untrack(id int64) {
	s.mu.Lock()
	delete(s.inflight, id)
	s.mu.Unlock()
}

// cancelInflight cancels every tracked query (drain stragglers) and
// returns how many it canceled.
func (s *Server) cancelInflight() int {
	s.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(s.inflight))
	for _, c := range s.inflight {
		cancels = append(cancels, c)
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
	return len(cancels)
}

// mergeAttempt folds one finished attempt's engine metrics into the
// server recorder. Only the FINAL attempt of a request is merged:
// earlier transiently-failed attempts re-read the same data, so
// folding every attempt would double-count per-row metrics — most
// visibly rows_corrupt_skipped after a retried-then-successful
// degraded read.
func (s *Server) mergeAttempt(att *obs.Recorder) (liveCells int64) {
	snap := att.Snapshot()
	for name, v := range snap.Counters {
		if v != 0 {
			s.rec.Counter(name).Add(v)
		}
	}
	for name, v := range snap.Gauges {
		s.rec.Gauge(name).SetMax(v)
	}
	return snap.Gauges[obs.GLiveCellsHWM]
}

// resolvedEngine pulls the engine that actually ran from the attempt's
// query span (EngineAuto decisions resolved), falling back to the
// requested engine.
func resolvedEngine(att *obs.Recorder, fallback aw.Engine) string {
	snap := att.Snapshot()
	for _, sp := range snap.Spans {
		if sp.Name == obs.SpanQuery && sp.Attrs["engine"] != "" {
			return sp.Attrs["engine"]
		}
	}
	return fallback.String()
}

// handleQuery is the service's one write path: admission, degradation,
// execution with retry, and response mapping.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.rec.Counter(obs.MServeRequests).Add(1)
	// Trace identity first: ingest the caller's W3C traceparent (so a
	// distributed trace spans client and engine) or mint a fresh ID,
	// and echo it on every response — including the early rejects below
	// — so any outcome can be correlated with its flight-recorder entry.
	traceID, ok := flight.ParseTraceparent(r.Header.Get(flight.Traceparent))
	if !ok {
		traceID = flight.NewTraceID()
	}
	w.Header().Set(flight.Traceparent, flight.FormatTraceparent(traceID))
	var req QueryRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, QueryResponse{TraceID: traceID, Outcome: "error", Error: "bad request: " + err.Error()})
		return
	}
	reqID := req.RequestID
	if reqID == "" {
		reqID = "srv-" + strconv.FormatInt(s.seq.Add(1), 10)
	}
	if s.state.Load() != stateReady {
		w.Header().Set("Retry-After", retryAfterHeader(s.gate.cfg.RetryAfter))
		writeJSON(w, http.StatusServiceUnavailable, QueryResponse{RequestID: reqID, TraceID: traceID, Outcome: "error", Error: "draining"})
		return
	}
	factPath, ok := s.cfg.Collections[req.Collection]
	if !ok {
		writeJSON(w, http.StatusNotFound, QueryResponse{RequestID: reqID, TraceID: traceID, Outcome: "error",
			Error: fmt.Sprintf("unknown collection %q (have %s)", req.Collection, strings.Join(s.collectionNames(), ", "))})
		return
	}
	parsed, err := s.parseWorkflow(req.Workflow)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, QueryResponse{RequestID: reqID, TraceID: traceID, Outcome: "error", Error: err.Error()})
		return
	}
	engine := s.cfg.DefaultEngine
	if req.Engine != "" {
		if engine, err = aw.ParseEngine(req.Engine); err != nil {
			writeJSON(w, http.StatusBadRequest, QueryResponse{RequestID: reqID, TraceID: traceID, Outcome: "error", Error: err.Error()})
			return
		}
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	t0 := time.Now()

	// Result cache, consulted BEFORE admission: a hit costs no engine
	// work, so it must not occupy an execution slot — under overload,
	// cache hits keep flowing while the gate sheds real work.
	ck := cacheKey(factPath, parsed.Compiled.Fingerprint(), s.cfg.SkipCorruptRows)
	if e, ok := s.cache.Get(ck, factPath); ok {
		s.serveFromCache(w, req, reqID, traceID, factPath, parsed, e, t0)
		return
	}

	// Admission: the only wait in the request path, bounded by the
	// gate's queue depth and wait allowance.
	release, err := s.gate.Admit(r.Context(), tenant)
	if waited := time.Since(t0); waited > time.Millisecond {
		s.rec.Histogram(obs.HServeWaitUs).Observe(waited.Microseconds())
	}
	if err != nil {
		if re, ok := AsReject(err); ok {
			status := http.StatusTooManyRequests
			if re.Reason == ReasonDraining {
				status = http.StatusServiceUnavailable
			}
			w.Header().Set("Retry-After", retryAfterHeader(re.RetryAfter))
			writeJSON(w, status, QueryResponse{RequestID: reqID, TraceID: traceID, Outcome: "error", Error: re.Error()})
			return
		}
		// The client went away while queued.
		writeJSON(w, http.StatusRequestTimeout, QueryResponse{RequestID: reqID, TraceID: traceID, Outcome: "error", Error: err.Error()})
		return
	}
	defer release()

	opts := aw.QueryOptions{
		ExecOptions: aw.ExecOptions{
			Engine:          engine,
			MemoryBudget:    s.cfg.MemoryBudget,
			Parallelism:     s.cfg.Parallelism,
			ReadBatchSize:   s.cfg.ReadBatchSize,
			Timeout:         s.cfg.DefaultTimeout,
			MaxLiveCells:    s.cfg.MaxLiveCells,
			MaxResultRows:   s.cfg.MaxResultRows,
			MaxSpillBytes:   s.cfg.MaxSpillBytes,
			SkipCorruptRows: s.cfg.SkipCorruptRows,
			History:         s.hist,
			RequestID:       reqID,
			// One trace ID across every retry attempt: the flight ring
			// merges attempts sharing it, so a retried request reads as
			// one trace with N attempt spans.
			TraceID: traceID,
		},
		TempDir: s.cfg.TempDir,
	}
	if req.TimeoutMs > 0 {
		t := time.Duration(req.TimeoutMs) * time.Millisecond
		if opts.Timeout == 0 || t < opts.Timeout {
			opts.Timeout = t
		}
	}
	degraded := s.ctl.Apply(&opts)

	// The query context is the client's, cancelable by drain.
	qctx, cancel := context.WithCancel(r.Context())
	qid := s.seq.Add(1)
	s.track(qid, cancel)
	defer func() { s.untrack(qid); cancel() }()

	in := aw.FromFile(factPath)
	// Fingerprint the collection file before running: Put revalidates
	// against it, so a file that changes mid-run never populates the
	// cache with tables describing a state that no longer exists.
	// A fingerprint error just disables population for this request.
	preFP, _ := fileFingerprint(factPath)

	// runWorkflow executes one compiled workflow (the request's own, or
	// a merged batch) under this request's options and retry policy.
	runWorkflow := func(c *aw.Compiled) (aw.Results, *obs.Recorder, int, error) {
		var (
			res        aw.Results
			attemptRec *obs.Recorder
		)
		attempts, runErr := s.cfg.Retry.Do(qctx, s.rec, func(attempt int) error {
			// A fresh recorder per attempt: only the final attempt's
			// metrics are merged (see mergeAttempt), so a retried attempt
			// that re-skipped the same corrupt rows is not double-counted.
			attemptRec = obs.New()
			o := opts
			o.Recorder = attemptRec
			var err error
			res, err = aw.RunCompiled(qctx, c, in, o)
			return err
		})
		return res, attemptRec, attempts, runErr
	}

	var (
		res         aw.Results
		attemptRec  *obs.Recorder
		attempts    int
		runErr      error
		engineName  string
		servedFrom  string
		sourceTrace string
	)
	shared := false
	if s.sharer != nil {
		// Scan sharing: queries over the same file, schema shape, and
		// result-affecting options arriving within the hold window run
		// as ONE merged workflow — one fact-table pass for the batch.
		groupKey := fmt.Sprintf("%s|%s|skip=%v|eng=%s",
			factPath, model.SchemaSignature(parsed.Schema), s.cfg.SkipCorruptRows, engine)
		var out shareOutcome
		out, shared = s.sharer.submit(qctx, groupKey, parsed.Compiled, traceID,
			func(merged *aw.Compiled) (aw.Results, string, int, error) {
				mres, mrec, matt, err := runWorkflow(merged)
				attemptRec = mrec // runner == leader: single-goroutine capture
				return mres, resolvedEngine(mrec, engine), matt, err
			})
		if shared {
			res, runErr = out.res, out.err
			engineName, attempts = out.engine, out.attempts
			if !out.leader {
				servedFrom, sourceTrace = "shared", out.leaderTraceID
			}
		}
	}
	if !shared {
		res, attemptRec, attempts, runErr = runWorkflow(parsed.Compiled)
		engineName = resolvedEngine(attemptRec, engine)
	}

	latency := time.Since(t0)
	var liveCells int64
	if attemptRec != nil {
		liveCells = s.mergeAttempt(attemptRec)
	}
	s.ctl.Observe(latency, liveCells)
	// The slow-query threshold tracks the service's recent latency
	// distribution: 2× the overload window's p95 (0 until the window
	// has signal, which leaves the flight ring on its own p99 fallback).
	aw.SetSlowThresholdUs(2 * s.ctl.WindowP95().Microseconds())
	outcome := "ok"
	if runErr != nil {
		outcome = "error"
	}
	s.rec.Histogram(obs.HServeLatencyUs, "outcome", outcome).Observe(latency.Microseconds())

	if servedFrom == "shared" {
		// The merged run logged ONE history record and flight trace
		// under the leader's identity; followers synthesize theirs so
		// the one-record-per-request invariant holds, linked to the
		// leader's trace, with no per-node profile (no work happened
		// here — stats must not see zero-cardinality nodes).
		s.recordServed(req, reqID, traceID, factPath, parsed, "shared", sourceTrace, engineName, latency, runErr)
	}
	if runErr == nil {
		// Populate the cache for every batch member's own key (and for
		// solo runs): only final, successful results, and only if the
		// collection file still fingerprints as it did pre-run.
		srcTrace := traceID
		if sourceTrace != "" {
			srcTrace = sourceTrace
		}
		s.cache.Put(ck, factPath, preFP, res, srcTrace, engineName)
	}

	resp := QueryResponse{
		RequestID:     reqID,
		TraceID:       traceID,
		Outcome:       outcome,
		Engine:        engineName,
		DurationUs:    latency.Microseconds(),
		Attempts:      attempts,
		Degraded:      degraded,
		ServedFrom:    servedFrom,
		SourceTraceID: sourceTrace,
	}
	if runErr != nil {
		resp.Error = runErr.Error()
		writeJSON(w, s.statusFor(runErr), resp)
		return
	}
	resp.Measures = topkMeasures(res, req)
	writeJSON(w, http.StatusOK, resp)
}

// topkMeasures maps full result tables to the response's top-K rows.
func topkMeasures(res aw.Results, req QueryRequest) map[string][]ValueAt {
	limit := req.Limit
	if limit <= 0 {
		limit = 50
	}
	out := make(map[string][]ValueAt)
	for name, table := range res {
		if req.Measure != "" && name != req.Measure {
			continue
		}
		rows := aw.TopK(table, limit)
		vals := make([]ValueAt, len(rows))
		for i, row := range rows {
			vals[i] = ValueAt{Region: row.Label, Value: row.Value}
		}
		out[name] = vals
	}
	return out
}

// serveFromCache answers a query from a cache entry: no admission, no
// engine, zero attempts. It still leaves the full observability trail —
// a history record (outcome cache_hit, which measured statistics
// ignore), a flight trace linking to the computing run, and its own
// latency histogram bucket.
func (s *Server) serveFromCache(w http.ResponseWriter, req QueryRequest, reqID, traceID, factPath string, parsed *wfdsl.Parsed, e *cacheEntry, t0 time.Time) {
	latency := time.Since(t0)
	s.rec.Histogram(obs.HServeLatencyUs, "outcome", "cache_hit").Observe(latency.Microseconds())
	s.recordServed(req, reqID, traceID, factPath, parsed, "cache", e.traceID, e.engine, latency, nil)
	resp := QueryResponse{
		RequestID:     reqID,
		TraceID:       traceID,
		Outcome:       "ok",
		Engine:        e.engine,
		DurationUs:    latency.Microseconds(),
		Attempts:      0,
		ServedFrom:    "cache",
		SourceTraceID: e.traceID,
		Measures:      topkMeasures(e.res, req),
	}
	writeJSON(w, http.StatusOK, resp)
}

// recordServed writes the history record and flight trace for a query
// answered without its own engine run (cache hit or shared fan-out).
// The record carries no per-node profile: the measured-statistics
// store folds only OutcomeOK records, so zero-work answers can never
// skew per-node cardinalities.
func (s *Server) recordServed(req QueryRequest, reqID, traceID, factPath string, parsed *wfdsl.Parsed, servedFrom, sourceTrace, engine string, latency time.Duration, runErr error) {
	outcome := aw.OutcomeCacheHit
	errMsg := ""
	if servedFrom == "shared" {
		outcome, errMsg = servedOutcome(runErr)
	}
	label := strings.Join(parsed.Compiled.Outputs(), ",")
	rec := &aw.HistoryRecord{
		Time:          time.Now(),
		RequestID:     reqID,
		TraceID:       traceID,
		Label:         label,
		QueryFP:       parsed.Compiled.Fingerprint(),
		CollectionFP:  aw.CollectionFingerprint(aw.FromFile(factPath)),
		Engine:        servedFrom,
		Outcome:       outcome,
		Error:         errMsg,
		ServedFrom:    servedFrom,
		SourceTraceID: sourceTrace,
		DurationUs:    latency.Microseconds(),
	}
	_ = s.hist.Append(rec)
	flight.Default.Commit(&flight.Trace{
		ID:            traceID,
		RequestID:     reqID,
		Label:         label,
		Engine:        engine,
		Outcome:       outcome,
		Error:         errMsg,
		DurationUs:    latency.Microseconds(),
		ServedFrom:    servedFrom,
		SourceTraceID: sourceTrace,
	})
}

// servedOutcome classifies a shared run's error for a follower's
// synthesized history record, mirroring aw's own outcome mapping.
func servedOutcome(err error) (string, string) {
	switch {
	case err == nil:
		return aw.OutcomeOK, ""
	case errors.Is(err, aw.ErrCanceled), errors.Is(err, aw.ErrDeadlineExceeded):
		return aw.OutcomeCanceled, err.Error()
	case errors.Is(err, aw.ErrBudgetExceeded):
		return aw.OutcomeBudget, err.Error()
	default:
		return aw.OutcomeError, err.Error()
	}
}

// handleCache serves the result cache's state at /debug/aw/cache.
func (s *Server) handleCache(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cache.Snapshot())
}

// statusFor maps a final query error onto the HTTP status ladder:
// 429/503 for admission (handled earlier), 422 for a query that blew
// its resource budget (a client problem: the query is too big for its
// allowance), 503 when drain canceled it, 504 for a timeout, and 500
// for everything else (including transient faults that survived every
// retry).
func (s *Server) statusFor(err error) int {
	switch {
	case errors.Is(err, aw.ErrBudgetExceeded):
		return http.StatusUnprocessableEntity
	case errors.Is(err, aw.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, aw.ErrCanceled):
		if s.state.Load() != stateReady {
			return http.StatusServiceUnavailable
		}
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) collectionNames() []string {
	names := make([]string, 0, len(s.cfg.Collections))
	for n := range s.cfg.Collections {
		names = append(names, n)
	}
	return names
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// Liveness: the process is up, even while draining.
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.state.Load() != stateReady {
		w.Header().Set("Retry-After", retryAfterHeader(s.gate.cfg.RetryAfter))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.rec.WritePrometheus(w); err != nil {
		return
	}
	// The history's cross-run latency histograms use disjoint family
	// names, so both exports share one exposition cleanly.
	_ = s.hist.WritePrometheus(w)
}

func (s *Server) handleInflight(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := aw.WriteInflightJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	n := 50
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.hist.WriteJSON(w, n); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleTraces lists the flight recorder's retained traces, newest
// first (?n= caps the count).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := aw.WriteTracesJSON(w, n); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleTraceByID serves one full flight trace (span tree, per-node
// profile, attempt chain) at /debug/aw/traces/{trace_id}.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/debug/aw/traces/")
	if id == "" {
		s.handleTraces(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	found, err := aw.WriteTraceJSON(w, id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !found {
		http.Error(w, fmt.Sprintf("trace %q not retained", id), http.StatusNotFound)
	}
}

// handleSlow serves the slow-query log: retained traces at or above
// the effective slow threshold, slowest first.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := aw.WriteSlowJSON(w, n); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Draining reports whether the server has left the ready state.
func (s *Server) Draining() bool { return s.state.Load() != stateReady }

// Drain performs the graceful shutdown ladder: stop admissions (readyz
// flips to 503, new queries get 503 + Retry-After), wait up to the
// drain timeout for in-flight queries to finish, cancel stragglers
// through the engines' cooperative cancellation paths, then close the
// history log (flushing it). It returns nil when everything finished
// or was canceled cleanly; an error if queries were still running when
// the post-cancel grace expired. Idempotent: later calls return nil.
func (s *Server) Drain() error {
	if !s.state.CompareAndSwap(stateReady, stateDraining) {
		return nil
	}
	s.gate.Close()
	timeout := s.cfg.DrainTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for s.gate.Active() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	var drainErr error
	if s.gate.Active() > 0 {
		n := s.cancelInflight()
		s.rec.Counter(obs.MServeDrainCanceled).Add(int64(n))
		// Cooperative cancellation bounds are sub-250ms on engine
		// strides; allow a generous grace for unwinding and history
		// appends.
		grace := time.Now().Add(5 * time.Second)
		for s.gate.Active() > 0 && time.Now().Before(grace) {
			time.Sleep(5 * time.Millisecond)
		}
		if n := s.gate.Active(); n > 0 {
			drainErr = fmt.Errorf("serve: %d queries still running after drain deadline + cancel grace", n)
		}
	}
	s.state.Store(stateStopped)
	if s.hist != nil && drainErr == nil {
		if err := s.hist.Close(); err != nil {
			drainErr = err
		}
	}
	return drainErr
}

// ListenAndServe runs the service on addr until ctx is canceled, then
// drains and shuts the listener down, returning the drain error (nil
// on a clean exit).
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	hs := &http.Server{Addr: addr, Handler: s.mux}
	errCh := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	drainErr := s.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}
