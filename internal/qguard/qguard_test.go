package qguard

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilGuardIsNoOp(t *testing.T) {
	var g *Guard
	if err := g.Err(); err != nil {
		t.Fatalf("nil guard Err: %v", err)
	}
	if err := g.NoteLiveCells(1 << 40); err != nil {
		t.Fatalf("nil guard NoteLiveCells: %v", err)
	}
	if err := g.NoteResultRows(1 << 40); err != nil {
		t.Fatalf("nil guard NoteResultRows: %v", err)
	}
	if err := g.NoteSpill(1 << 40); err != nil {
		t.Fatalf("nil guard NoteSpill: %v", err)
	}
	if g.SkipCorruptRows() {
		t.Fatal("nil guard should not skip corrupt rows")
	}
	g.NoteCorruptRow() // must not panic
	if g.Context() == nil {
		t.Fatal("nil guard Context must not be nil")
	}
	g.CheckAbort() // must not panic
}

func TestCancelMapsToErrCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	if err := g.Err(); err != nil {
		t.Fatalf("before cancel: %v", err)
	}
	cancel()
	if err := g.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

func TestDeadlineMapsToErrDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	g := New(ctx, Limits{})
	if err := g.Err(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got %v, want ErrDeadlineExceeded", err)
	}
}

func TestBudgets(t *testing.T) {
	g := New(context.Background(), Limits{MaxLiveCells: 10, MaxResultRows: 5, MaxSpillBytes: 100})
	if err := g.NoteLiveCells(10); err != nil {
		t.Fatalf("at limit: %v", err)
	}
	err := g.NoteLiveCells(11)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	be, ok := AsBudget(err)
	if !ok || be.Resource != ResLiveCells || be.Limit != 10 || be.Used != 11 {
		t.Fatalf("bad BudgetError: %+v ok=%v", be, ok)
	}
	// The first error sticks: later checks keep returning it.
	if err2 := g.Err(); !errors.Is(err2, ErrBudgetExceeded) {
		t.Fatalf("sticky error lost: %v", err2)
	}
}

func TestResultRowsAccumulate(t *testing.T) {
	g := New(context.Background(), Limits{MaxResultRows: 5})
	if err := g.NoteResultRows(3); err != nil {
		t.Fatal(err)
	}
	if err := g.NoteResultRows(2); err != nil {
		t.Fatal(err)
	}
	err := g.NoteResultRows(1)
	be, ok := AsBudget(err)
	if !ok || be.Resource != ResResultRows || be.Used != 6 {
		t.Fatalf("got %v", err)
	}
}

func TestFirstErrorWinsUnderConcurrency(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{MaxSpillBytes: 1})
	cancel()
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				errs[i] = g.Err()
			} else {
				errs[i] = g.NoteSpill(100)
			}
		}(i)
	}
	wg.Wait()
	first := g.Err()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("goroutine %d saw no error", i)
		}
	}
	// Whatever won must be returned consistently from now on.
	if again := g.Err(); !errors.Is(again, first) {
		t.Fatalf("sticky error changed: %v then %v", first, again)
	}
}

// Regression: fail is called with different concrete error types
// (sentinel errors vs *BudgetError). When the second type arrives after
// the first is stored, the sticky slot must keep returning the winner
// instead of panicking on an inconsistently typed atomic store.
func TestFailMixedConcreteTypes(t *testing.T) {
	// Cancellation first, budget error second.
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{MaxSpillBytes: 1})
	cancel()
	if err := g.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if err := g.NoteSpill(100); !errors.Is(err, ErrCanceled) {
		t.Fatalf("budget loser: got %v, want sticky ErrCanceled", err)
	}

	// Budget error first, cancellation second.
	ctx2, cancel2 := context.WithCancel(context.Background())
	g2 := New(ctx2, Limits{MaxSpillBytes: 1})
	if err := g2.NoteSpill(100); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	cancel2()
	if err := g2.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("cancel loser: got %v, want sticky ErrBudgetExceeded", err)
	}
}

func TestRecoverAbort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	cancel()
	err := func() (err error) {
		defer RecoverAbort(&err)
		g.CheckAbort()
		return nil
	}()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

func TestRecoverAbortRepanicsForeignPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	var err error
	defer RecoverAbort(&err)
	panic("not an abort")
}

// TestLimitsScale: the overload controller's tightening hook must
// shrink set budgets, leave unlimited (zero) budgets unlimited, never
// round a budget down to zero, and ignore nonsense factors.
func TestLimitsScale(t *testing.T) {
	l := Limits{MaxLiveCells: 1000, MaxResultRows: 3, MaxSpillBytes: 0, SkipCorruptRows: true}

	s := l.Scale(0.5)
	if s.MaxLiveCells != 500 {
		t.Errorf("MaxLiveCells = %d, want 500", s.MaxLiveCells)
	}
	if s.MaxResultRows != 1 {
		t.Errorf("MaxResultRows = %d, want 1", s.MaxResultRows)
	}
	if s.MaxSpillBytes != 0 {
		t.Errorf("MaxSpillBytes = %d, want 0 (unlimited stays unlimited)", s.MaxSpillBytes)
	}
	if !s.SkipCorruptRows {
		t.Error("SkipCorruptRows lost in Scale")
	}

	// A tiny budget tightens to 1, never 0 (0 would mean unlimited).
	if got := (Limits{MaxResultRows: 1}).Scale(0.1).MaxResultRows; got != 1 {
		t.Errorf("Scale(0.1) of 1 row = %d, want 1", got)
	}

	// Factors outside (0, 1) are identity.
	for _, f := range []float64{0, -1, 1, 2} {
		if got := l.Scale(f); got != l {
			t.Errorf("Scale(%v) = %+v, want unchanged", f, got)
		}
	}
}
