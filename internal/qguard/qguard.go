// Package qguard is the query-control substrate shared by every
// evaluator: cooperative cancellation (context + per-query deadline),
// hard resource guardrails (live cells, result rows, spill bytes), and
// the degraded-read policy for checksummed storage. A *Guard is
// threaded from the public API through engines and the storage layer;
// a nil *Guard is a valid no-op guard (like a nil obs.Recorder), so
// instrumented code never branches on "is robustness enabled".
//
// The guard's job is the flip side of the paper's Section 6
// memory-budget decision procedure: the optimizer *estimates* that a
// plan fits the budget, and the guard *enforces* that the estimate was
// right at run time, turning runaway queries into typed errors instead
// of OOM kills or unbounded result sets.
package qguard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Typed errors surfaced through the aw package. The messages carry the
// public "aw:" prefix because user code matches these sentinels via
// errors.Is on errors returned from the aw API.
var (
	// ErrCanceled reports that the query's context was canceled.
	ErrCanceled = errors.New("aw: query canceled")
	// ErrDeadlineExceeded reports that the query's deadline passed.
	ErrDeadlineExceeded = errors.New("aw: query deadline exceeded")
	// ErrBudgetExceeded reports that a hard resource guardrail tripped.
	ErrBudgetExceeded = errors.New("aw: resource budget exceeded")
)

// Budget resources, used in BudgetError.Resource.
const (
	ResLiveCells  = "live_cells"
	ResResultRows = "result_rows"
	ResSpillBytes = "spill_bytes"
)

// BudgetError wraps ErrBudgetExceeded with the resource that tripped,
// so callers can distinguish a blown memory frontier (recoverable by
// switching to a multi-pass plan) from an oversized result set (not).
type BudgetError struct {
	Resource string
	Limit    int64
	Used     int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("aw: resource budget exceeded: %s %d > limit %d", e.Resource, e.Used, e.Limit)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) true.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// AsBudget extracts a BudgetError from an error chain.
func AsBudget(err error) (*BudgetError, bool) {
	var be *BudgetError
	if errors.As(err, &be) {
		return be, true
	}
	return nil, false
}

// Limits configures a guard's hard guardrails. Zero means unlimited.
type Limits struct {
	// MaxLiveCells caps simultaneously live hash entries in streaming
	// engines (the paper's memory frontier).
	MaxLiveCells int64
	// MaxResultRows caps total finalized output rows across measures.
	MaxResultRows int64
	// MaxSpillBytes caps bytes written to disk by sorts and spills.
	MaxSpillBytes int64
	// SkipCorruptRows switches checksummed reads into degraded mode:
	// corrupt rows are counted and skipped instead of failing the query.
	SkipCorruptRows bool
}

// Scale returns a tightened copy of the limits: every nonzero budget
// is multiplied by f (clamped to at least 1 so a budget never silently
// becomes "unlimited"), while zero budgets stay unlimited — tightening
// must not invent limits the operator never set. It is the overload
// controller's hook: under pressure the serve layer admits queries with
// Scale(0.5) (or tighter) limits, shrinking each query's footprint so
// the process degrades instead of shedding. f outside (0, 1] returns
// the limits unchanged.
func (l Limits) Scale(f float64) Limits {
	if f <= 0 || f >= 1 {
		return l
	}
	scale := func(v int64) int64 {
		if v <= 0 {
			return v
		}
		s := int64(float64(v) * f)
		if s < 1 {
			s = 1
		}
		return s
	}
	l.MaxLiveCells = scale(l.MaxLiveCells)
	l.MaxResultRows = scale(l.MaxResultRows)
	l.MaxSpillBytes = scale(l.MaxSpillBytes)
	return l
}

// Guard carries one query's cancellation and budget state. All methods
// are nil-safe; a nil Guard enforces nothing. A Guard may be shared
// across goroutines (partitions, parallel sorts): budget accounting is
// atomic and the first error wins and sticks.
type Guard struct {
	ctx        context.Context
	limits     Limits
	resultRows atomic.Int64
	spillBytes atomic.Int64
	corrupt    atomic.Int64
	// sticky holds the first fatal error observed, so every later check
	// fails fast without re-deriving it from the context. The error is
	// boxed so the pointer's concrete type is always *stickyErr:
	// atomic CAS slots panic if stores mix concrete types, and fail is
	// called with both sentinel errors and *BudgetError.
	sticky atomic.Pointer[stickyErr]
	// root, when non-nil, is the guard whose accumulators and sticky
	// error this derived view shares (see Shard). Totals for result
	// rows, spill bytes, and corrupt rows are query-global, and the
	// first fatal error anywhere must stop every worker; only the
	// live-cell limit is per-view.
	root *Guard
}

// base returns the guard owning the shared accumulators: the root for
// a derived shard view, the guard itself otherwise.
func (g *Guard) base() *Guard {
	if g.root != nil {
		return g.root
	}
	return g
}

// Shard derives a per-worker view of the guard for parallel execution
// across n workers: the live-cell budget is divided evenly (each worker
// checks its own frontier against an n-th of the limit, rounded up),
// while cancellation, the sticky first error, and the result-row,
// spill-byte, and corrupt-row accounting remain shared with the parent
// so those budgets stay query-global. A nil guard shards to nil.
func (g *Guard) Shard(n int) *Guard {
	if g == nil {
		return nil
	}
	if n < 1 {
		n = 1
	}
	lim := g.limits
	if lim.MaxLiveCells > 0 {
		lim.MaxLiveCells = (lim.MaxLiveCells + int64(n) - 1) / int64(n)
	}
	return &Guard{ctx: g.ctx, limits: lim, root: g.base()}
}

// stickyErr boxes the guard's first fatal error (see Guard.sticky).
type stickyErr struct{ err error }

// New builds a guard bound to ctx. A nil ctx means context.Background().
func New(ctx context.Context, limits Limits) *Guard {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Guard{ctx: ctx, limits: limits}
}

// Context returns the guard's context (context.Background() for a nil
// guard).
func (g *Guard) Context() context.Context {
	if g == nil {
		return context.Background()
	}
	return g.ctx
}

// Err checks for cancellation: it returns ErrCanceled or
// ErrDeadlineExceeded once the context is done, any previously recorded
// sticky error, and nil otherwise. Call it at loop strides, not per
// record — storage.Reader and the engines stride internally.
func (g *Guard) Err() error {
	if g == nil {
		return nil
	}
	if box := g.base().sticky.Load(); box != nil {
		return box.err
	}
	if err := g.ctx.Err(); err != nil {
		return g.fail(mapCtxErr(err))
	}
	return nil
}

func mapCtxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadlineExceeded
	}
	return ErrCanceled
}

// fail records err as the guard's sticky error (first writer wins) and
// returns the winning error.
func (g *Guard) fail(err error) error {
	b := g.base()
	if b.sticky.CompareAndSwap(nil, &stickyErr{err: err}) {
		return err
	}
	return b.sticky.Load().err
}

// NoteLiveCells checks the live-cell high-water mark against the
// budget. Engines call it when the frontier grows.
func (g *Guard) NoteLiveCells(live int64) error {
	if g == nil || g.limits.MaxLiveCells <= 0 || live <= g.limits.MaxLiveCells {
		return nil
	}
	return g.fail(&BudgetError{Resource: ResLiveCells, Limit: g.limits.MaxLiveCells, Used: live})
}

// NoteResultRows adds finalized output rows to the query's total and
// checks the budget.
func (g *Guard) NoteResultRows(delta int64) error {
	if g == nil {
		return nil
	}
	total := g.base().resultRows.Add(delta)
	if g.limits.MaxResultRows > 0 && total > g.limits.MaxResultRows {
		return g.fail(&BudgetError{Resource: ResResultRows, Limit: g.limits.MaxResultRows, Used: total})
	}
	return nil
}

// NoteSpill adds spilled bytes to the query's total and checks the
// budget.
func (g *Guard) NoteSpill(bytes int64) error {
	if g == nil {
		return nil
	}
	total := g.base().spillBytes.Add(bytes)
	if g.limits.MaxSpillBytes > 0 && total > g.limits.MaxSpillBytes {
		return g.fail(&BudgetError{Resource: ResSpillBytes, Limit: g.limits.MaxSpillBytes, Used: total})
	}
	return nil
}

// SkipCorruptRows reports whether corrupt rows should be skipped and
// counted instead of failing the read.
func (g *Guard) SkipCorruptRows() bool { return g != nil && g.limits.SkipCorruptRows }

// NoteCorruptRow counts one skipped corrupt row (degraded mode).
func (g *Guard) NoteCorruptRow() {
	if g != nil {
		g.base().corrupt.Add(1)
	}
}

// CorruptRows returns how many corrupt rows were skipped.
func (g *Guard) CorruptRows() int64 {
	if g == nil {
		return 0
	}
	return g.base().corrupt.Load()
}

// ResultRows returns the finalized-row total recorded so far.
func (g *Guard) ResultRows() int64 {
	if g == nil {
		return 0
	}
	return g.base().resultRows.Load()
}

// SpillBytes returns the spill total recorded so far.
func (g *Guard) SpillBytes() int64 {
	if g == nil {
		return 0
	}
	return g.base().spillBytes.Load()
}

// Stats is a point-in-time view of a guard's shared accumulators,
// suitable for live in-flight snapshots and post-run profiles.
type Stats struct {
	ResultRows  int64 `json:"result_rows"`
	SpillBytes  int64 `json:"spill_bytes"`
	CorruptRows int64 `json:"corrupt_rows,omitempty"`
}

// Stats snapshots the query-global accumulators (zero for a nil guard).
// Safe to call concurrently with running workers.
func (g *Guard) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	b := g.base()
	return Stats{
		ResultRows:  b.resultRows.Load(),
		SpillBytes:  b.spillBytes.Load(),
		CorruptRows: b.corrupt.Load(),
	}
}

// Abort carries a guard error across a panic unwind. Sort comparators
// cannot return errors, so a cancelable sort panics with an Abort and
// the sort's caller converts it back with RecoverAbort.
type Abort struct{ Err error }

// RecoverAbort converts a panicking Abort back into an error; any
// other panic is re-raised. Use as: defer qguard.RecoverAbort(&err).
func RecoverAbort(errp *error) {
	switch r := recover().(type) {
	case nil:
	case Abort:
		*errp = r.Err
	default:
		panic(r)
	}
}

// CheckAbort panics with an Abort if the guard reports an error. It is
// the stride body for cancelable comparators.
func (g *Guard) CheckAbort() {
	if err := g.Err(); err != nil {
		panic(Abort{Err: err})
	}
}
