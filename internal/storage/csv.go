package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"awra/internal/model"
)

// ExportCSV writes a record file as CSV with a header row of the given
// column names (dimension names followed by measure names).
func ExportCSV(recPath, csvPath string, cols []string) error {
	r, err := Open(recPath)
	if err != nil {
		return err
	}
	defer r.Close()
	hdr := r.Header()
	if len(cols) != hdr.NumDims+hdr.NumMeasures {
		return fmt.Errorf("storage: %d column names for %d attributes", len(cols), hdr.NumDims+hdr.NumMeasures)
	}
	f, err := os.Create(csvPath)
	if err != nil {
		return fmt.Errorf("storage: create %s: %w", csvPath, err)
	}
	w := csv.NewWriter(f)
	if err := w.Write(cols); err != nil {
		f.Close()
		return err
	}
	row := make([]string, len(cols))
	var rec model.Record
	for {
		ok, err := r.Next(&rec)
		if err != nil {
			f.Close()
			return err
		}
		if !ok {
			break
		}
		for i, v := range rec.Dims {
			row[i] = strconv.FormatInt(v, 10)
		}
		for i, v := range rec.Ms {
			row[hdr.NumDims+i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := w.Write(row); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ImportCSV reads a CSV file with a header row into a record file. The
// first numDims columns are parsed as int64 dimension codes and the
// remainder as float64 measures.
func ImportCSV(csvPath, recPath string, numDims int) (int64, error) {
	f, err := os.Open(csvPath)
	if err != nil {
		return 0, fmt.Errorf("storage: open %s: %w", csvPath, err)
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("storage: read CSV header: %w", err)
	}
	if numDims > len(header) {
		return 0, fmt.Errorf("storage: CSV has %d columns, need at least %d dimensions", len(header), numDims)
	}
	numMs := len(header) - numDims
	w, err := Create(recPath, numDims, numMs)
	if err != nil {
		return 0, err
	}
	rec := model.Record{Dims: make([]int64, numDims), Ms: make([]float64, numMs)}
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			w.f.Close()
			return 0, fmt.Errorf("storage: CSV line %d: %w", line, err)
		}
		for i := 0; i < numDims; i++ {
			rec.Dims[i], err = strconv.ParseInt(row[i], 10, 64)
			if err != nil {
				w.f.Close()
				return 0, fmt.Errorf("storage: CSV line %d, column %q: %w", line, header[i], err)
			}
		}
		for i := 0; i < numMs; i++ {
			rec.Ms[i], err = strconv.ParseFloat(row[numDims+i], 64)
			if err != nil {
				w.f.Close()
				return 0, fmt.Errorf("storage: CSV line %d, column %q: %w", line, header[numDims+i], err)
			}
		}
		if err := w.Write(&rec); err != nil {
			w.f.Close()
			return 0, err
		}
	}
	n := w.Count()
	return n, w.Close()
}
