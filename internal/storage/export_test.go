package storage

// Test-only exports so external robustness tests (package storage_test,
// which must be external because faultfs imports this package) can reach
// format internals.

const (
	HeaderSizeForTest    = headerSize
	FormatVersionForTest = formatVersion
)

var (
	CreateVersionForTest   = createVersion
	UnmarshalHeaderForTest = unmarshalHeader
)

func (h Header) DiskRecordBytesForTest() int { return h.diskRecordBytes() }
