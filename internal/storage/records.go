// Package storage provides the fact-table substrate for the engines:
// a fixed-width binary record format with self-describing headers and
// per-row checksums, buffered readers and writers, CSV import/export,
// and an external merge sort. The paper's evaluation framework is
// built on "multiple passes of sorting and scanning over the original
// dataset"; this package is that sorting/scanning layer.
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"awra/internal/model"
	"awra/internal/qguard"
)

// File layout: a 32-byte header followed by fixed-width records. Each
// record is NumDims int64 values then NumMeasures float64 values, all
// little-endian. Version 2 files append a CRC32-C checksum of the row
// payload to every record, so a flipped bit or torn write surfaces as
// ErrCorrupt (or is skipped and counted in degraded mode) instead of
// silently feeding garbage codes to the engines. Version 1 files (no
// checksums) remain readable.
const (
	magic         = "AWRA"
	formatVersion = 2
	headerSize    = 32
	crcBytes      = 4
)

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is returned when a file fails structural validation or a
// row fails its checksum.
var ErrCorrupt = errors.New("storage: corrupt record file")

// Header describes the contents of a record file.
type Header struct {
	NumDims     int
	NumMeasures int
	Count       int64
	// Version is the on-disk format version the file was written with
	// (1 = no row checksums, 2 = CRC32-C per row). Create always writes
	// the current version; the field is informational on write.
	Version int
}

// recordBytes is the payload size of one record (codes + measures).
func (h Header) recordBytes() int { return 8 * (h.NumDims + h.NumMeasures) }

// diskRecordBytes is the on-disk size of one record, including the
// checksum suffix for version-2 files.
func (h Header) diskRecordBytes() int {
	if h.Version >= 2 {
		return h.recordBytes() + crcBytes
	}
	return h.recordBytes()
}

func (h Header) marshal() []byte {
	b := make([]byte, headerSize)
	copy(b, magic)
	v := h.Version
	if v == 0 {
		v = formatVersion
	}
	binary.LittleEndian.PutUint32(b[4:], uint32(v))
	binary.LittleEndian.PutUint32(b[8:], uint32(h.NumDims))
	binary.LittleEndian.PutUint32(b[12:], uint32(h.NumMeasures))
	binary.LittleEndian.PutUint64(b[16:], uint64(h.Count))
	return b
}

func unmarshalHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < headerSize || string(b[:4]) != magic {
		return h, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	v := binary.LittleEndian.Uint32(b[4:])
	if v < 1 || v > formatVersion {
		return h, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	h.Version = int(v)
	h.NumDims = int(binary.LittleEndian.Uint32(b[8:]))
	h.NumMeasures = int(binary.LittleEndian.Uint32(b[12:]))
	h.Count = int64(binary.LittleEndian.Uint64(b[16:]))
	if h.NumDims < 0 || h.NumDims > 1<<16 || h.NumMeasures < 0 || h.NumMeasures > 1<<16 {
		return h, fmt.Errorf("%w: implausible shape %d dims, %d measures", ErrCorrupt, h.NumDims, h.NumMeasures)
	}
	return h, nil
}

// Writer writes records to a file. It buffers writes and fixes up the
// record count in the header on Close.
type Writer struct {
	f     File
	w     *bufio.Writer
	hdr   Header
	buf   []byte
	count int64
}

// Create opens a new record file for writing, truncating any existing
// file at the path. Files are written in the current format version
// (per-row checksums).
func Create(path string, numDims, numMeasures int) (*Writer, error) {
	return createVersion(path, numDims, numMeasures, formatVersion)
}

// createVersion writes the given on-disk version; tests use it to
// produce version-1 (checksum-less) files for compatibility coverage.
func createVersion(path string, numDims, numMeasures, version int) (*Writer, error) {
	f, err := filesystem.Create(path)
	if err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", path, err)
	}
	hdr := Header{NumDims: numDims, NumMeasures: numMeasures, Version: version}
	w := &Writer{
		f:   f,
		w:   bufio.NewWriterSize(f, 1<<20),
		hdr: hdr,
		buf: make([]byte, hdr.diskRecordBytes()),
	}
	if _, err := w.w.Write(w.hdr.marshal()); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: write header: %w", err)
	}
	return w, nil
}

// Write appends one record. The record's shape must match the file's.
func (w *Writer) Write(r *model.Record) error {
	if len(r.Dims) != w.hdr.NumDims || len(r.Ms) != w.hdr.NumMeasures {
		return fmt.Errorf("storage: record shape (%d,%d) does not match file (%d,%d)",
			len(r.Dims), len(r.Ms), w.hdr.NumDims, w.hdr.NumMeasures)
	}
	b := w.buf
	for i, v := range r.Dims {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	off := 8 * len(r.Dims)
	for i, v := range r.Ms {
		binary.LittleEndian.PutUint64(b[off+8*i:], mathFloat64bits(v))
	}
	if w.hdr.Version >= 2 {
		payload := w.hdr.recordBytes()
		binary.LittleEndian.PutUint32(b[payload:], crc32.Checksum(b[:payload], castagnoli))
	}
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("storage: write record: %w", err)
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int64 { return w.count }

// Close flushes buffered data, rewrites the header with the final
// record count, and closes the file.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("storage: flush: %w", err)
	}
	w.hdr.Count = w.count
	if _, err := w.f.WriteAt(w.hdr.marshal(), 0); err != nil {
		w.f.Close()
		return fmt.Errorf("storage: rewrite header: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("storage: close: %w", err)
	}
	return nil
}

// Reader reads records from a file sequentially.
type Reader struct {
	f     File
	r     *bufio.Reader
	hdr   Header
	buf   []byte
	read  int64
	guard *qguard.Guard
	// corrupt counts checksum-failing rows skipped in degraded mode
	// (also reported to the guard).
	corrupt int64
}

// Open opens a record file for reading and validates its header.
func Open(path string) (*Reader, error) { return OpenGuarded(path, nil) }

// OpenGuarded opens a record file under a query guard: Next checks the
// guard for cancellation at a stride, and checksum-failing rows follow
// the guard's degraded-read policy (skip and count vs. fail). A nil
// guard behaves exactly like Open.
func OpenGuarded(path string, g *qguard.Guard) (*Reader, error) {
	f, err := filesystem.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	hb := make([]byte, headerSize)
	if _, err := io.ReadFull(br, hb); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: read header of %s: %w (%w)", path, err, ErrCorrupt)
	}
	hdr, err := unmarshalHeader(hb)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: %s: %w", path, err)
	}
	return &Reader{f: f, r: br, hdr: hdr, buf: make([]byte, hdr.diskRecordBytes()), guard: g}, nil
}

// Header returns the file's header.
func (r *Reader) Header() Header { return r.hdr }

// CorruptSkipped returns how many checksum-failing rows this reader
// skipped in degraded mode.
func (r *Reader) CorruptSkipped() int64 { return r.corrupt }

// guardStride is how many records a reader consumes between guard
// checks: small enough that canceling a scan over millions of rows
// responds in well under 250ms, large enough to stay out of the hot
// loop's profile.
const guardStride = 256

// Next reads the next record into rec, resizing its slices as needed.
// It returns false at clean end-of-file. Rows failing their checksum
// return ErrCorrupt, or are skipped and counted when the reader's
// guard enables degraded mode.
func (r *Reader) Next(rec *model.Record) (bool, error) {
	for {
		if r.read >= r.hdr.Count {
			return false, nil
		}
		if r.read%guardStride == 0 {
			if err := r.guard.Err(); err != nil {
				return false, err
			}
		}
		if _, err := io.ReadFull(r.r, r.buf); err != nil {
			return false, fmt.Errorf("storage: truncated file (record %d of %d): %w (%w)", r.read, r.hdr.Count, err, ErrCorrupt)
		}
		r.read++
		if r.hdr.Version >= 2 {
			payload := r.hdr.recordBytes()
			want := binary.LittleEndian.Uint32(r.buf[payload:])
			if crc32.Checksum(r.buf[:payload], castagnoli) != want {
				if r.guard.SkipCorruptRows() {
					r.corrupt++
					r.guard.NoteCorruptRow()
					continue
				}
				return false, fmt.Errorf("storage: checksum mismatch (record %d of %d): %w", r.read-1, r.hdr.Count, ErrCorrupt)
			}
		}
		break
	}
	if cap(rec.Dims) < r.hdr.NumDims {
		rec.Dims = make([]int64, r.hdr.NumDims)
	}
	rec.Dims = rec.Dims[:r.hdr.NumDims]
	if cap(rec.Ms) < r.hdr.NumMeasures {
		rec.Ms = make([]float64, r.hdr.NumMeasures)
	}
	rec.Ms = rec.Ms[:r.hdr.NumMeasures]
	for i := range rec.Dims {
		rec.Dims[i] = int64(binary.LittleEndian.Uint64(r.buf[8*i:]))
	}
	off := 8 * r.hdr.NumDims
	for i := range rec.Ms {
		rec.Ms[i] = mathFloat64frombits(binary.LittleEndian.Uint64(r.buf[off+8*i:]))
	}
	return true, nil
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// TotalRecords returns the exact number of records in the file — the
// header count, which fixed-width rows make exact from the file size.
// Engines use it as the denominator for in-flight progress.
func (r *Reader) TotalRecords() int64 { return r.hdr.Count }

// Source is a sequential stream of records; engines consume fact
// tables and materialized measure tables through it.
type Source interface {
	// Next fills rec with the next record, returning false at the end.
	Next(rec *model.Record) (bool, error)
	// Close releases resources.
	Close() error
}

// FileSource adapts a Reader to Source. (Reader already satisfies it.)
var _ Source = (*Reader)(nil)

// SliceSource streams an in-memory record slice.
type SliceSource struct {
	Recs []model.Record
	pos  int
}

// Next implements Source.
func (s *SliceSource) Next(rec *model.Record) (bool, error) {
	if s.pos >= len(s.Recs) {
		return false, nil
	}
	src := &s.Recs[s.pos]
	s.pos++
	rec.Dims = append(rec.Dims[:0], src.Dims...)
	rec.Ms = append(rec.Ms[:0], src.Ms...)
	return true, nil
}

// Close implements Source.
func (s *SliceSource) Close() error { return nil }

// TotalRecords returns the slice length (progress denominator).
func (s *SliceSource) TotalRecords() int64 { return int64(len(s.Recs)) }

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// WriteAll writes a record slice to a file.
func WriteAll(path string, numDims, numMeasures int, recs []model.Record) error {
	w, err := Create(path, numDims, numMeasures)
	if err != nil {
		return err
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			w.f.Close()
			return err
		}
	}
	return w.Close()
}

// ReadAll loads an entire record file into memory.
func ReadAll(path string) ([]model.Record, Header, error) {
	r, err := Open(path)
	if err != nil {
		return nil, Header{}, err
	}
	defer r.Close()
	recs := make([]model.Record, 0, r.hdr.Count)
	for {
		var rec model.Record
		ok, err := r.Next(&rec)
		if err != nil {
			return nil, r.hdr, err
		}
		if !ok {
			return recs, r.hdr, nil
		}
		recs = append(recs, rec)
	}
}
