package storage_test

import (
	"encoding/binary"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"awra/internal/model"
	"awra/internal/storage"
)

// FuzzRecordRoundTrip drives the v2 record codec with arbitrary shapes
// and values: whatever records the fuzzer constructs must survive a
// write/read cycle bit-for-bit, and readers must never panic.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(1), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(uint8(1), uint8(1), []byte{})
	f.Add(uint8(8), uint8(4), []byte{0xFF, 0x00, 0x80, 0x7F})
	f.Fuzz(func(t *testing.T, nd, nm uint8, data []byte) {
		numDims := int(nd%8) + 1
		numMeasures := int(nm%4) + 1

		// Slice data into records: 8 bytes per dim code, 8 per measure.
		stride := 8 * (numDims + numMeasures)
		n := len(data) / stride
		if n > 256 {
			n = 256
		}
		recs := make([]model.Record, n)
		for i := range recs {
			row := data[i*stride:]
			dims := make([]int64, numDims)
			ms := make([]float64, numMeasures)
			for d := range dims {
				dims[d] = int64(binary.LittleEndian.Uint64(row[8*d:]))
			}
			for m := range ms {
				ms[m] = math.Float64frombits(binary.LittleEndian.Uint64(row[8*(numDims+m):]))
			}
			recs[i] = model.Record{Dims: dims, Ms: ms}
		}

		path := filepath.Join(t.TempDir(), "fuzz.rec")
		if err := storage.WriteAll(path, numDims, numMeasures, recs); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, hdr, err := storage.ReadAll(path)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if hdr.NumDims != numDims || hdr.NumMeasures != numMeasures {
			t.Fatalf("header shape %d/%d, want %d/%d", hdr.NumDims, hdr.NumMeasures, numDims, numMeasures)
		}
		if len(got) != len(recs) {
			t.Fatalf("read %d records, want %d", len(got), len(recs))
		}
		for i := range recs {
			for d := range recs[i].Dims {
				if got[i].Dims[d] != recs[i].Dims[d] {
					t.Fatalf("record %d dim %d: %d != %d", i, d, got[i].Dims[d], recs[i].Dims[d])
				}
			}
			for m := range recs[i].Ms {
				a, b := got[i].Ms[m], recs[i].Ms[m]
				if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
					t.Fatalf("record %d measure %d: %v != %v", i, m, a, b)
				}
			}
		}

		// Second leg: the reader must reject (not panic on) a mangled
		// copy of the same file.
		if len(recs) > 0 {
			corruptRecord(t, path, n/2)
			_, _, err := storage.ReadAll(path)
			if err != nil && !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("corrupt read: %v", err)
			}
			if err == nil {
				// A lucky byte flip landing on its own inverse bit is
				// impossible (XOR 0xFF always changes the payload), so the
				// checksum must have caught it.
				t.Fatal("byte flip not detected")
			}
		}
	})
}
