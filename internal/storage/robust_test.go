package storage_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"awra/internal/faultfs"
	"awra/internal/model"
	"awra/internal/qguard"
	"awra/internal/storage"
)

func mkRecs(n int) []model.Record {
	recs := make([]model.Record, n)
	for i := range recs {
		recs[i] = model.Record{
			Dims: []int64{int64(i), int64(i % 7)},
			Ms:   []float64{float64(i) * 1.5},
		}
	}
	return recs
}

func writeFile(t *testing.T, path string, recs []model.Record) {
	t.Helper()
	if err := storage.WriteAll(path, 2, 1, recs); err != nil {
		t.Fatal(err)
	}
}

// assertNoTempFiles fails if dir holds leftover run/spill temp files.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), "awra-run-") || strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file: %s", e.Name())
		}
	}
}

func TestChecksumRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v2.rec")
	recs := mkRecs(1000)
	writeFile(t, path, recs)
	got, hdr, err := storage.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Version != storage.FormatVersionForTest {
		t.Fatalf("version %d, want %d", hdr.Version, storage.FormatVersionForTest)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Dims[0] != recs[i].Dims[0] || got[i].Ms[0] != recs[i].Ms[0] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestVersion1FilesStillReadable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.rec")
	recs := mkRecs(100)
	w, err := storage.CreateVersionForTest(path, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, hdr, err := storage.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Version != 1 {
		t.Fatalf("version %d, want 1", hdr.Version)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Dims[0] != recs[i].Dims[0] || got[i].Ms[0] != recs[i].Ms[0] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// corruptRecord flips one byte inside record i's payload on disk.
func corruptRecord(t *testing.T, path string, i int) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := storage.UnmarshalHeaderForTest(b[:storage.HeaderSizeForTest])
	if err != nil {
		t.Fatal(err)
	}
	off := storage.HeaderSizeForTest + i*hdr.DiskRecordBytesForTest()
	b[off] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptRowDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.rec")
	writeFile(t, path, mkRecs(50))
	corruptRecord(t, path, 17)
	_, _, err := storage.ReadAll(path)
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestCorruptRowSkippedInDegradedMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.rec")
	recs := mkRecs(50)
	writeFile(t, path, recs)
	corruptRecord(t, path, 17)
	corruptRecord(t, path, 31)
	g := qguard.New(context.Background(), qguard.Limits{SkipCorruptRows: true})
	r, err := storage.OpenGuarded(path, g)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []model.Record
	for {
		var rec model.Record
		ok, err := r.Next(&rec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, rec.Clone())
	}
	if len(got) != 48 {
		t.Fatalf("read %d records, want 48", len(got))
	}
	if r.CorruptSkipped() != 2 || g.CorruptRows() != 2 {
		t.Fatalf("skipped=%d guard=%d, want 2", r.CorruptSkipped(), g.CorruptRows())
	}
	for _, rec := range got {
		if rec.Dims[0] == 17 || rec.Dims[0] == 31 {
			t.Fatalf("corrupt record %d leaked into results", rec.Dims[0])
		}
	}
}

func TestTruncatedFileDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.rec")
	writeFile(t, path, mkRecs(50))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = storage.ReadAll(path)
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestReaderCancellation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.rec")
	writeFile(t, path, mkRecs(10))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := storage.OpenGuarded(path, qguard.New(ctx, qguard.Limits{}))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var rec model.Record
	if _, err := r.Next(&rec); !errors.Is(err, qguard.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

func sortLess(a, b *model.Record) bool { return a.Dims[0] < b.Dims[0] }

func TestSortFileCanceledCleansRuns(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		dir := t.TempDir()
		in := filepath.Join(dir, "in.rec")
		out := filepath.Join(dir, "out.rec")
		writeFile(t, in, mkRecs(5000))
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := storage.SortFile(in, out, sortLess, storage.SortOptions{
			ChunkRecords: 100, TempDir: dir, Parallel: parallel,
			Guard: qguard.New(ctx, qguard.Limits{}),
		})
		if !errors.Is(err, qguard.ErrCanceled) {
			t.Fatalf("parallel=%v: got %v, want ErrCanceled", parallel, err)
		}
		if _, err := os.Stat(out); !os.IsNotExist(err) {
			t.Fatalf("parallel=%v: partial output left behind", parallel)
		}
		assertNoTempFiles(t, dir)
	}
}

func TestSortFileSpillBudget(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.rec")
	out := filepath.Join(dir, "out.rec")
	writeFile(t, in, mkRecs(5000))
	g := qguard.New(context.Background(), qguard.Limits{MaxSpillBytes: 1024})
	_, err := storage.SortFile(in, out, sortLess, storage.SortOptions{ChunkRecords: 100, TempDir: dir, Guard: g})
	be, ok := qguard.AsBudget(err)
	if !ok || be.Resource != qguard.ResSpillBytes {
		t.Fatalf("got %v, want spill BudgetError", err)
	}
	assertNoTempFiles(t, dir)
}

func TestSortFileInjectedWriteFailureCleansUp(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		dir := t.TempDir()
		in := filepath.Join(dir, "in.rec")
		out := filepath.Join(dir, "out.rec")
		writeFile(t, in, mkRecs(5000))

		// A small global write budget makes the failure land while run
		// files are being written (the input was written before the swap).
		restore := storage.SwapFS(faultfs.New().FailWriteAfter(8192))
		_, err := storage.SortFile(in, out, sortLess, storage.SortOptions{
			ChunkRecords: 100, TempDir: dir, Parallel: parallel,
		})
		restore()
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("parallel=%v: got %v, want ErrInjected", parallel, err)
		}
		if _, err := os.Stat(out); !os.IsNotExist(err) {
			t.Fatalf("parallel=%v: partial output left behind", parallel)
		}
		assertNoTempFiles(t, dir)
	}
}

func TestSortFileInjectedCreateFailureCleansUp(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.rec")
	out := filepath.Join(dir, "out.rec")
	writeFile(t, in, mkRecs(5000))

	// Fail the 3rd file create inside a parallel sort (a run file, since
	// the input was created before the swap).
	restore := storage.SwapFS(faultfs.New().FailCreate(3))
	_, err := storage.SortFile(in, out, sortLess, storage.SortOptions{
		ChunkRecords: 100, TempDir: dir, Parallel: true, Workers: 4,
	})
	restore()
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatal("partial output left behind")
	}
	assertNoTempFiles(t, dir)
}

func TestSortFileInjectedReadFailure(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.rec")
	out := filepath.Join(dir, "out.rec")
	writeFile(t, in, mkRecs(5000))

	restore := storage.SwapFS(faultfs.New().FailReadAfter(16 * 1024))
	_, err := storage.SortFile(in, out, sortLess, storage.SortOptions{ChunkRecords: 100, TempDir: dir})
	restore()
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatal("partial output left behind")
	}
	assertNoTempFiles(t, dir)
}

func TestShortReadsResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.rec")
	recs := mkRecs(64)
	writeFile(t, path, recs)

	restore := storage.SwapFS(faultfs.New().ShortReads())
	defer restore()
	got, _, err := storage.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records under short reads, want %d", len(got), len(recs))
	}
}

func TestSortFileSucceedsUnderGuard(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.rec")
	out := filepath.Join(dir, "out.rec")
	writeFile(t, in, mkRecs(5000))
	g := qguard.New(context.Background(), qguard.Limits{})
	st, err := storage.SortFile(in, out, sortLess, storage.SortOptions{
		ChunkRecords: 100, TempDir: dir, Parallel: true, Guard: g,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 5000 || st.Runs != 50 {
		t.Fatalf("stats %+v", st)
	}
	got, _, err := storage.ReadAll(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Dims[0] > got[i].Dims[0] {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if g.SpillBytes() == 0 {
		t.Fatal("spill bytes not charged to guard")
	}
	assertNoTempFiles(t, dir)
}
