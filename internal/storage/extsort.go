package storage

import (
	"container/heap"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/qguard"
)

func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }

// Less orders records; SortFile and MergeSources use it.
type Less func(a, b *model.Record) bool

// SortOptions tunes the external sort.
type SortOptions struct {
	// ChunkRecords is the number of records sorted in memory per run.
	// Zero selects a default sized for roughly 64 MB runs.
	ChunkRecords int
	// TempDir is where run files are placed; empty uses the output
	// file's directory.
	TempDir string
	// Parallel sorts and writes run files on Workers goroutines while
	// the input keeps streaming. Memory grows to roughly
	// Workers x ChunkRecords records.
	Parallel bool
	// Workers bounds the run-sorting goroutines when Parallel is set;
	// zero uses GOMAXPROCS.
	Workers int
	// Recorder, if non-nil, receives run/merge spans and the
	// sort_runs, spill_events, spill_bytes, and heap_comparisons
	// metrics.
	Recorder *obs.Recorder
	// Guard, if non-nil, makes the sort cooperatively cancelable (the
	// read loop, in-memory chunk sorts, and the merge all check it) and
	// charges run files against the spill-byte budget.
	Guard *qguard.Guard
}

func (o SortOptions) chunk(recordBytes int) int {
	if o.ChunkRecords > 0 {
		return o.ChunkRecords
	}
	if recordBytes <= 0 {
		recordBytes = 64
	}
	c := (64 << 20) / recordBytes
	if c < 1024 {
		c = 1024
	}
	return c
}

// SortStats reports what the sort did; the benchmark harness uses it
// for the paper's sort-vs-scan cost breakdown (Figure 6(e)).
type SortStats struct {
	Records int64
	Runs    int
}

// guardedErr is the explicit first-error-wins guard shared between the
// run-writer goroutines and the driving goroutine.
type guardedErr struct {
	mu  sync.Mutex
	err error
}

func (g *guardedErr) Set(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.mu.Unlock()
}

func (g *guardedErr) Get() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// abortingLess wraps less with a strided guard check that panics with
// qguard.Abort, so a cancellation interrupts even a large in-memory
// chunk sort; callers recover with qguard.RecoverAbort.
func abortingLess(g *qguard.Guard, less Less) Less {
	if g == nil {
		return less
	}
	n := 0
	return func(a, b *model.Record) bool {
		if n++; n&4095 == 0 {
			g.CheckAbort()
		}
		return less(a, b)
	}
}

// extsortSeq disambiguates run-file names across concurrent SortFile
// calls in one process sharing a temp directory (a serving process
// sorting the same collection for several queries at once).
var extsortSeq atomic.Int64

// SortFile sorts a record file into a new file using an external merge
// sort: sorted runs of ChunkRecords records are spilled to temporary
// files and k-way merged with a heap. The input file is not modified.
// On any error (including cancellation) every run file and the partial
// output file are removed.
func SortFile(inPath, outPath string, less Less, opts SortOptions) (SortStats, error) {
	var stats SortStats
	rec := opts.Recorder // nil-safe: all obs calls no-op
	guard := opts.Guard  // nil-safe likewise
	in, err := OpenGuarded(inPath, guard)
	if err != nil {
		return stats, err
	}
	defer in.Close()
	hdr := in.Header()
	chunk := opts.chunk(hdr.recordBytes())
	tempDir := opts.TempDir
	if tempDir == "" {
		tempDir = filepath.Dir(outPath)
	}

	// Phase 1: produce sorted runs. In parallel mode, full chunks are
	// handed to worker goroutines that sort and spill them while the
	// input keeps streaming.
	sortID := extsortSeq.Add(1)
	var (
		runPaths []string
		runSeq   int
		wg       sync.WaitGroup
		workErr  guardedErr
		sem      chan struct{}
	)
	// Cleanup covers every exit: wait for in-flight run writers first,
	// so runs created after a failure (or during cancellation) are on
	// disk and removable by the time the loop below runs.
	defer func() {
		wg.Wait()
		for _, p := range runPaths {
			os.Remove(p)
		}
	}()
	if opts.Parallel {
		w := opts.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		sem = make(chan struct{}, w)
	}
	runsSpan := rec.Start(obs.SpanSortRuns)
	spillEvents := rec.Counter(obs.MSpillEvents)
	spillBytes := rec.Counter(obs.MSpillBytes)
	// writeRun sorts one chunk with its own aborting comparator (each
	// call gets a private stride counter, so parallel run writers don't
	// share state) and spills it, charging the spill budget.
	writeRun := func(buf []model.Record, path string) (err error) {
		defer qguard.RecoverAbort(&err)
		cmp := abortingLess(guard, less)
		sort.SliceStable(buf, func(i, j int) bool { return cmp(&buf[i], &buf[j]) })
		runBytes := int64(len(buf)) * int64(hdr.recordBytes())
		spillEvents.Add(1)
		spillBytes.Add(runBytes)
		if err := guard.NoteSpill(runBytes); err != nil {
			return err
		}
		return WriteAll(path, hdr.NumDims, hdr.NumMeasures, buf)
	}
	buf := make([]model.Record, 0, chunk)
	flushRun := func() error {
		if len(buf) == 0 {
			return nil
		}
		p := filepath.Join(tempDir, fmt.Sprintf("awra-run-%d-%d-%d.tmp", os.Getpid(), sortID, runSeq))
		runSeq++
		runPaths = append(runPaths, p)
		if !opts.Parallel {
			err := writeRun(buf, p)
			buf = buf[:0]
			return err
		}
		if err := workErr.Get(); err != nil {
			return err
		}
		chunkBuf := buf
		buf = make([]model.Record, 0, chunk)
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			// A panic escaping a goroutine kills the process, bypassing
			// the aw boundary's recover; convert it to a sort error.
			defer func() {
				if r := recover(); r != nil {
					workErr.Set(fmt.Errorf("storage: run writer panic: %v", r))
				}
			}()
			if err := writeRun(chunkBuf, p); err != nil {
				workErr.Set(err)
			}
		}()
		return nil
	}
	for {
		var rec model.Record
		ok, err := in.Next(&rec)
		if err != nil {
			return stats, err
		}
		if !ok {
			break
		}
		stats.Records++
		buf = append(buf, rec)
		if len(buf) >= chunk {
			if err := flushRun(); err != nil {
				return stats, err
			}
		}
	}

	out, err := Create(outPath, hdr.NumDims, hdr.NumMeasures)
	if err != nil {
		return stats, err
	}
	// fail closes and removes the partial output so error and
	// cancellation paths never leave a half-written result behind.
	fail := func(err error) (SortStats, error) {
		out.f.Close()
		os.Remove(outPath)
		return stats, err
	}

	// Single-run (or in-memory) fast path.
	if len(runPaths) == 0 {
		var sortErr error
		func() {
			defer qguard.RecoverAbort(&sortErr)
			al := abortingLess(guard, less)
			sort.SliceStable(buf, func(i, j int) bool { return al(&buf[i], &buf[j]) })
		}()
		if sortErr != nil {
			return fail(sortErr)
		}
		// The sorted output is disk the query consumed, even when no runs
		// were spilled; charge it so MaxSpillBytes bounds total sort I/O.
		if err := guard.NoteSpill(int64(len(buf)) * int64(hdr.recordBytes())); err != nil {
			return fail(err)
		}
		for i := range buf {
			if err := out.Write(&buf[i]); err != nil {
				return fail(err)
			}
		}
		stats.Runs = 1
		runsSpan.End()
		rec.Counter(obs.MSortRuns).Add(1)
		if err := out.Close(); err != nil {
			os.Remove(outPath)
			return stats, err
		}
		return stats, nil
	}
	if err := flushRun(); err != nil {
		return fail(err)
	}
	wg.Wait()
	runsSpan.End()
	if err := workErr.Get(); err != nil {
		return fail(err)
	}
	stats.Runs = len(runPaths)
	rec.Counter(obs.MSortRuns).Add(int64(stats.Runs))
	// Charge the merged output file up front, like the run files.
	if err := guard.NoteSpill(stats.Records * int64(hdr.recordBytes())); err != nil {
		return fail(err)
	}

	// Phase 2: k-way merge. Run readers carry the guard, so the merge
	// observes cancellation through their strided checks.
	mergeSpan := rec.Start(obs.SpanMerge)
	mergeSpan.SetAttr("runs", fmt.Sprint(len(runPaths)))
	sources := make([]Source, len(runPaths))
	for i, p := range runPaths {
		r, err := OpenGuarded(p, guard)
		if err != nil {
			for _, s := range sources[:i] {
				s.Close()
			}
			return fail(err)
		}
		sources[i] = r
	}
	cmps, err := mergeSources(sources, less, func(rec *model.Record) error { return out.Write(rec) })
	for _, s := range sources {
		s.Close()
	}
	rec.Counter(obs.MHeapComparisons).Add(cmps)
	mergeSpan.End()
	if err != nil {
		return fail(err)
	}
	if err := out.Close(); err != nil {
		os.Remove(outPath)
		return stats, err
	}
	return stats, nil
}

// SortRecords sorts an in-memory record slice (stable).
func SortRecords(recs []model.Record, less Less) {
	sort.SliceStable(recs, func(i, j int) bool { return less(&recs[i], &recs[j]) })
}

type mergeItem struct {
	rec model.Record
	src int
}

type mergeHeap struct {
	items []mergeItem
	less  Less
	cmps  int64 // record comparisons, for the heap_comparisons metric
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	h.cmps++
	if h.less(&h.items[i].rec, &h.items[j].rec) {
		return true
	}
	if h.less(&h.items[j].rec, &h.items[i].rec) {
		return false
	}
	return h.items[i].src < h.items[j].src // stability across runs
}
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// MergeSources merges already-sorted sources into a single sorted
// stream, invoking emit for every record in order.
func MergeSources(sources []Source, less Less, emit func(*model.Record) error) error {
	_, err := mergeSources(sources, less, emit)
	return err
}

// mergeSources is MergeSources plus a count of the heap's record
// comparisons (the merge-cost metric).
func mergeSources(sources []Source, less Less, emit func(*model.Record) error) (int64, error) {
	h := &mergeHeap{less: less}
	for i, s := range sources {
		var rec model.Record
		ok, err := s.Next(&rec)
		if err != nil {
			return h.cmps, err
		}
		if ok {
			h.items = append(h.items, mergeItem{rec: rec, src: i})
		}
	}
	heap.Init(h)
	for h.Len() > 0 {
		it := h.items[0]
		if err := emit(&it.rec); err != nil {
			return h.cmps, err
		}
		var rec model.Record
		ok, err := sources[it.src].Next(&rec)
		if err != nil {
			return h.cmps, err
		}
		if ok {
			h.items[0] = mergeItem{rec: rec, src: it.src}
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return h.cmps, nil
}
