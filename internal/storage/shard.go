package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"awra/internal/model"
	"awra/internal/qguard"
)

// shardSeq disambiguates shard paths across concurrent queries in one
// process; pid alone is not unique when a server runs many at once.
var shardSeq atomic.Int64

// ShardOptions configures ShardFile.
type ShardOptions struct {
	// TempDir receives the shard files; empty uses os.TempDir().
	TempDir string
	// Prefix names the shard files:
	// <TempDir>/<Prefix>-<pid>-<seq>-<i>.rec, where seq is unique per
	// ShardFile call. Empty uses "awra-shard".
	Prefix string
	// Guard, if non-nil, makes the split cooperatively cancelable,
	// applies the degraded-read policy to the input, and charges the
	// shard files against the spill-byte budget.
	Guard *qguard.Guard
}

// ShardFile splits a record file into n shard files, routing each
// record through assign (which must return a value in [0, n)). It
// returns the shard paths and per-shard record counts; the caller owns
// the files and removes them when done. On error (including
// cancellation) every partial shard file is removed.
func ShardFile(inPath string, n int, assign func(r *model.Record) int, opts ShardOptions) (paths []string, counts []int64, err error) {
	if n < 1 {
		n = 1
	}
	tempDir := opts.TempDir
	if tempDir == "" {
		tempDir = os.TempDir()
	}
	prefix := opts.Prefix
	if prefix == "" {
		prefix = "awra-shard"
	}
	in, err := OpenGuarded(inPath, opts.Guard)
	if err != nil {
		return nil, nil, err
	}
	defer in.Close()
	hdr := in.Header()

	paths = make([]string, n)
	counts = make([]int64, n)
	writers := make([]*Writer, n)
	cleanup := func() {
		for i, w := range writers {
			if w != nil {
				w.f.Close()
			}
			os.Remove(paths[i])
		}
	}
	seq := shardSeq.Add(1)
	for i := range writers {
		paths[i] = filepath.Join(tempDir, fmt.Sprintf("%s-%d-%d-%d.rec", prefix, os.Getpid(), seq, i))
		w, err := Create(paths[i], hdr.NumDims, hdr.NumMeasures)
		if err != nil {
			writers[i] = nil
			cleanup()
			return nil, nil, err
		}
		writers[i] = w
	}

	// The shard files are disk the query consumed; charge them like
	// external-sort runs (at a stride, so the overshoot past
	// MaxSpillBytes stays bounded) so the budget covers split I/O.
	const spillStride = 8192
	var rec model.Record
	var written, charged int64
	for {
		ok, err := in.Next(&rec)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		if !ok {
			break
		}
		s := assign(&rec)
		if s < 0 || s >= n {
			cleanup()
			return nil, nil, fmt.Errorf("storage: shard assignment %d out of range [0,%d)", s, n)
		}
		if err := writers[s].Write(&rec); err != nil {
			cleanup()
			return nil, nil, err
		}
		counts[s]++
		if written++; written-charged >= spillStride {
			if err := opts.Guard.NoteSpill((written - charged) * int64(hdr.recordBytes())); err != nil {
				cleanup()
				return nil, nil, err
			}
			charged = written
		}
	}
	if err := opts.Guard.NoteSpill((written - charged) * int64(hdr.recordBytes())); err != nil {
		cleanup()
		return nil, nil, err
	}
	for i, w := range writers {
		writers[i] = nil // closed below; cleanup must not double-close
		if err := w.Close(); err != nil {
			cleanup()
			os.Remove(paths[i])
			return nil, nil, err
		}
	}
	return paths, counts, nil
}
