package storage

import (
	"io"
	"os"
)

// File is the slice of *os.File the storage layer actually uses.
// Writers need WriteAt (the header-count fixup on Close) and Sync;
// readers only Read.
type File interface {
	io.Reader
	io.Writer
	io.WriterAt
	io.Closer
	Sync() error
}

// FileSystem abstracts file creation and opening so tests can inject
// faults (see internal/faultfs) without touching the hot paths: the
// production implementation is a direct pass-through to the os package.
type FileSystem interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
}

// OSFS is the production FileSystem.
type OSFS struct{}

// Create implements FileSystem.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// Open implements FileSystem.
func (OSFS) Open(name string) (File, error) { return os.Open(name) }

// filesystem is the package's active FileSystem. It is swapped only by
// tests (via SwapFS) before any concurrent use, never during a run.
var filesystem FileSystem = OSFS{}

// SwapFS installs fs as the package's FileSystem and returns a restore
// function. Test-only: callers must not run concurrently with other
// storage users while a fault-injecting FileSystem is installed.
func SwapFS(fs FileSystem) (restore func()) {
	old := filesystem
	filesystem = fs
	return func() { filesystem = old }
}
