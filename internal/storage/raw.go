package storage

import (
	"fmt"
	"hash/crc32"
	"io"
)

// This file is the raw byte-level seam under the batched record
// pipeline (internal/exec/scan): it exposes the header, row layout,
// and checksum of the record format without forcing callers through
// per-row model.Record decoding. All raw I/O still goes through the
// package's FileSystem, so fault injection (internal/faultfs) covers
// the batched paths exactly like the row-at-a-time ones.

// HeaderBytes is the size of the fixed file header.
const HeaderBytes = headerSize

// RowBytes is the payload size of one record: the dimension codes and
// measure values, without the checksum suffix.
func (h Header) RowBytes() int { return h.recordBytes() }

// DiskRowBytes is the on-disk size of one record, including the
// CRC32-C suffix for version-2 files.
func (h Header) DiskRowBytes() int { return h.diskRecordBytes() }

// Checksum computes the record format's row checksum (CRC32-C,
// hardware-accelerated where available) over a row payload.
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, castagnoli) }

// ParseHeader validates and decodes a file header from its first
// HeaderBytes bytes.
func ParseHeader(b []byte) (Header, error) { return unmarshalHeader(b) }

// OpenRaw opens a record file through the active FileSystem, reads and
// validates its header, and returns the file positioned at the first
// record byte. The caller owns the file and must Close it.
func OpenRaw(path string) (File, Header, error) {
	f, err := filesystem.Open(path)
	if err != nil {
		return nil, Header{}, fmt.Errorf("storage: open %s: %w", path, err)
	}
	hb := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hb); err != nil {
		f.Close()
		return nil, Header{}, fmt.Errorf("storage: read header of %s: %w (%w)", path, err, ErrCorrupt)
	}
	hdr, err := unmarshalHeader(hb)
	if err != nil {
		f.Close()
		return nil, Header{}, fmt.Errorf("storage: %s: %w", path, err)
	}
	return f, hdr, nil
}

// RawWriter writes pre-encoded disk rows (payload plus any checksum
// suffix, exactly DiskRowBytes each) to a new record file. The byte
// sort uses it to move rows verbatim — checksums computed when the
// rows were first written travel with them, so a sorted copy needs no
// re-hashing and carries torn-write detection through.
type RawWriter struct {
	f     File
	hdr   Header
	buf   []byte
	count int64
	werr  error
}

// CreateRaw opens a new raw record file with the given shape and
// format version (0 means the current version).
func CreateRaw(path string, hdr Header) (*RawWriter, error) {
	if hdr.Version == 0 {
		hdr.Version = formatVersion
	}
	f, err := filesystem.Create(path)
	if err != nil {
		return nil, fmt.Errorf("storage: create %s: %w", path, err)
	}
	w := &RawWriter{f: f, hdr: hdr, buf: make([]byte, 0, 1<<20)}
	w.buf = append(w.buf, w.hdr.marshal()...)
	return w, nil
}

// Header returns the writer's header (Count reflects rows written so
// far only after Close).
func (w *RawWriter) Header() Header { return w.hdr }

// WriteRow appends one disk row (DiskRowBytes bytes, checksum
// included for v2 shapes). The bytes are copied.
func (w *RawWriter) WriteRow(row []byte) error {
	w.buf = append(w.buf, row...)
	w.count++
	if len(w.buf) >= 1<<20 {
		return w.flush()
	}
	return nil
}

func (w *RawWriter) flush() error {
	if len(w.buf) == 0 || w.werr != nil {
		return w.werr
	}
	if _, err := w.f.Write(w.buf); err != nil {
		w.werr = fmt.Errorf("storage: write rows: %w", err)
		return w.werr
	}
	w.buf = w.buf[:0]
	return nil
}

// Count returns the number of rows written so far.
func (w *RawWriter) Count() int64 { return w.count }

// Close flushes buffered rows, rewrites the header with the final row
// count, and closes the file.
func (w *RawWriter) Close() error {
	if err := w.flush(); err != nil {
		w.f.Close()
		return err
	}
	w.hdr.Count = w.count
	if _, err := w.f.WriteAt(w.hdr.marshal(), 0); err != nil {
		w.f.Close()
		return fmt.Errorf("storage: rewrite header: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("storage: close: %w", err)
	}
	return nil
}
