package storage

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"awra/internal/model"
)

func randRecords(rng *rand.Rand, n, nd, nm int) []model.Record {
	recs := make([]model.Record, n)
	for i := range recs {
		recs[i] = model.Record{Dims: make([]int64, nd), Ms: make([]float64, nm)}
		for j := range recs[i].Dims {
			recs[i].Dims[j] = rng.Int63n(1000) - 500
		}
		for j := range recs[i].Ms {
			recs[i].Ms[j] = rng.NormFloat64() * 100
		}
	}
	return recs
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.rec")
	rng := rand.New(rand.NewSource(1))
	recs := randRecords(rng, 500, 3, 2)
	if err := WriteAll(path, 3, 2, recs); err != nil {
		t.Fatal(err)
	}
	got, hdr, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.NumDims != 3 || hdr.NumMeasures != 2 || hdr.Count != 500 {
		t.Fatalf("header = %+v", hdr)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		for j := range recs[i].Dims {
			if got[i].Dims[j] != recs[i].Dims[j] {
				t.Fatalf("record %d dim %d mismatch", i, j)
			}
		}
		for j := range recs[i].Ms {
			if got[i].Ms[j] != recs[i].Ms[j] {
				t.Fatalf("record %d measure %d mismatch", i, j)
			}
		}
	}
}

func TestSpecialFloatValues(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.rec")
	recs := []model.Record{
		{Dims: []int64{1}, Ms: []float64{math.NaN()}},
		{Dims: []int64{2}, Ms: []float64{math.Inf(1)}},
		{Dims: []int64{3}, Ms: []float64{math.Inf(-1)}},
	}
	if err := WriteAll(path, 1, 1, recs); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got[0].Ms[0]) || !math.IsInf(got[1].Ms[0], 1) || !math.IsInf(got[2].Ms[0], -1) {
		t.Errorf("special values corrupted: %v %v %v", got[0].Ms[0], got[1].Ms[0], got[2].Ms[0])
	}
}

func TestWriterRejectsWrongShape(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(filepath.Join(dir, "t.rec"), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Write(&model.Record{Dims: []int64{1}, Ms: []float64{1}}); err == nil {
		t.Error("wrong dim count accepted")
	}
	if err := w.Write(&model.Record{Dims: []int64{1, 2}, Ms: nil}); err == nil {
		t.Error("wrong measure count accepted")
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing.rec")); err == nil {
		t.Error("missing file opened")
	}
	bad := filepath.Join(dir, "bad.rec")
	if err := os.WriteFile(bad, []byte("not a record file, definitely not 32 bytes of header"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Error("bad magic accepted")
	}
	short := filepath.Join(dir, "short.rec")
	if err := os.WriteFile(short, []byte("AW"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(short); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestTruncatedBody(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.rec")
	recs := randRecords(rand.New(rand.NewSource(2)), 10, 2, 1)
	if err := WriteAll(path, 2, 1, recs); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = ReadAll(path)
	if err == nil {
		t.Fatal("truncated body read without error")
	}
}

func TestSliceSource(t *testing.T) {
	recs := randRecords(rand.New(rand.NewSource(3)), 5, 2, 1)
	s := &SliceSource{Recs: recs}
	var rec model.Record
	n := 0
	for {
		ok, err := s.Next(&rec)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if rec.Dims[0] != recs[n].Dims[0] {
			t.Fatalf("record %d mismatch", n)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("streamed %d records", n)
	}
	s.Reset()
	ok, _ := s.Next(&rec)
	if !ok {
		t.Error("Reset did not rewind")
	}
	if err := s.Close(); err != nil {
		t.Error(err)
	}
}

func dimLess(a, b *model.Record) bool {
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] {
			return a.Dims[i] < b.Dims[i]
		}
	}
	return false
}

func TestSortFileSmall(t *testing.T) {
	testSortFile(t, 100, SortOptions{})
}

func TestSortFileMultiRun(t *testing.T) {
	testSortFile(t, 5000, SortOptions{ChunkRecords: 128})
}

func testSortFile(t *testing.T, n int, opts SortOptions) {
	t.Helper()
	dir := t.TempDir()
	in := filepath.Join(dir, "in.rec")
	out := filepath.Join(dir, "out.rec")
	rng := rand.New(rand.NewSource(4))
	recs := randRecords(rng, n, 2, 1)
	if err := WriteAll(in, 2, 1, recs); err != nil {
		t.Fatal(err)
	}
	stats, err := SortFile(in, out, dimLess, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != int64(n) {
		t.Errorf("stats.Records = %d, want %d", stats.Records, n)
	}
	got, hdr, err := ReadAll(out)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Count != int64(n) {
		t.Errorf("output count = %d", hdr.Count)
	}
	for i := 0; i+1 < len(got); i++ {
		if dimLess(&got[i+1], &got[i]) {
			t.Fatalf("output not sorted at %d: %v > %v", i, got[i].Dims, got[i+1].Dims)
		}
	}
	// Multiset equality: compare measure sums and per-position dim sums.
	var sumIn, sumOut float64
	for i := range recs {
		sumIn += recs[i].Ms[0] + float64(recs[i].Dims[0])*1e-3
		sumOut += got[i].Ms[0] + float64(got[i].Dims[0])*1e-3
	}
	if math.Abs(sumIn-sumOut) > 1e-6 {
		t.Error("output is not a permutation of input")
	}
	// Run files must have been cleaned up.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() != "in.rec" && e.Name() != "out.rec" {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestSortFileParallel(t *testing.T) {
	testSortFile(t, 5000, SortOptions{ChunkRecords: 128, Parallel: true, Workers: 4})
}

func TestParallelMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.rec")
	seq := filepath.Join(dir, "seq.rec")
	par := filepath.Join(dir, "par.rec")
	recs := randRecords(rand.New(rand.NewSource(9)), 3000, 2, 1)
	if err := WriteAll(in, 2, 1, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := SortFile(in, seq, dimLess, SortOptions{ChunkRecords: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := SortFile(in, par, dimLess, SortOptions{ChunkRecords: 100, Parallel: true}); err != nil {
		t.Fatal(err)
	}
	a, _, err := ReadAll(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ReadAll(par)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Dims[0] != b[i].Dims[0] || a[i].Dims[1] != b[i].Dims[1] || a[i].Ms[0] != b[i].Ms[0] {
			t.Fatalf("parallel and sequential sorts disagree at record %d", i)
		}
	}
}

func TestSortIsPermutationQuick(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(vals []int16) bool {
		i++
		in := filepath.Join(dir, "in.rec")
		out := filepath.Join(dir, "out.rec")
		recs := make([]model.Record, len(vals))
		counts := map[int64]int{}
		for j, v := range vals {
			recs[j] = model.Record{Dims: []int64{int64(v)}, Ms: []float64{}}
			counts[int64(v)]++
		}
		if err := WriteAll(in, 1, 0, recs); err != nil {
			t.Fatal(err)
		}
		if _, err := SortFile(in, out, dimLess, SortOptions{ChunkRecords: 4}); err != nil {
			t.Fatal(err)
		}
		got, _, err := ReadAll(out)
		if err != nil {
			t.Fatal(err)
		}
		prev := int64(math.MinInt64)
		for _, r := range got {
			if r.Dims[0] < prev {
				return false
			}
			prev = r.Dims[0]
			counts[r.Dims[0]]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return len(got) == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSourcesStability(t *testing.T) {
	// Records comparing equal must come out in source order.
	a := &SliceSource{Recs: []model.Record{
		{Dims: []int64{1}, Ms: []float64{0}},
		{Dims: []int64{3}, Ms: []float64{0}},
	}}
	b := &SliceSource{Recs: []model.Record{
		{Dims: []int64{1}, Ms: []float64{1}},
		{Dims: []int64{2}, Ms: []float64{1}},
	}}
	var got []model.Record
	err := MergeSources([]Source{a, b}, dimLess, func(r *model.Record) error {
		got = append(got, r.Clone())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantDims := []int64{1, 1, 2, 3}
	wantMs := []float64{0, 1, 1, 0}
	for i := range got {
		if got[i].Dims[0] != wantDims[i] || got[i].Ms[0] != wantMs[i] {
			t.Fatalf("merge[%d] = %v/%v, want %d/%v", i, got[i].Dims[0], got[i].Ms[0], wantDims[i], wantMs[i])
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rec1 := filepath.Join(dir, "a.rec")
	csvPath := filepath.Join(dir, "a.csv")
	rec2 := filepath.Join(dir, "b.rec")
	recs := randRecords(rand.New(rand.NewSource(5)), 50, 2, 1)
	if err := WriteAll(rec1, 2, 1, recs); err != nil {
		t.Fatal(err)
	}
	if err := ExportCSV(rec1, csvPath, []string{"a", "b", "m"}); err != nil {
		t.Fatal(err)
	}
	n, err := ImportCSV(csvPath, rec2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("imported %d records", n)
	}
	got, _, err := ReadAll(rec2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if got[i].Dims[0] != recs[i].Dims[0] || got[i].Ms[0] != recs[i].Ms[0] {
			t.Fatalf("record %d corrupted in CSV round trip", i)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("a,b\nx,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ImportCSV(bad, filepath.Join(dir, "o.rec"), 1); err == nil {
		t.Error("non-integer dimension accepted")
	}
	if _, err := ImportCSV(bad, filepath.Join(dir, "o.rec"), 5); err == nil {
		t.Error("too many dims accepted")
	}
	if _, err := ImportCSV(filepath.Join(dir, "none.csv"), filepath.Join(dir, "o.rec"), 1); err == nil {
		t.Error("missing csv accepted")
	}
	badm := filepath.Join(dir, "badm.csv")
	if err := os.WriteFile(badm, []byte("a,m\n1,zz\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ImportCSV(badm, filepath.Join(dir, "o.rec"), 1); err == nil {
		t.Error("non-numeric measure accepted")
	}
	rec := filepath.Join(dir, "x.rec")
	if err := WriteAll(rec, 1, 0, []model.Record{{Dims: []int64{1}, Ms: []float64{}}}); err != nil {
		t.Fatal(err)
	}
	if err := ExportCSV(rec, filepath.Join(dir, "x.csv"), []string{"a", "extra"}); err == nil {
		t.Error("wrong column count accepted")
	}
}
