package faultfs

import (
	"errors"
	"io"
	"path/filepath"
	"testing"
)

func TestFailSyncAndByteAccounting(t *testing.T) {
	fs := New().FailSync()
	path := filepath.Join(t.TempDir(), "f")
	w, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync: got %v, want ErrInjected", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.WriteBytes() != 5 {
		t.Fatalf("WriteBytes = %d, want 5", fs.WriteBytes())
	}

	r, err := fs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b := make([]byte, 5)
	if _, err := io.ReadFull(r, b); err != nil {
		t.Fatal(err)
	}
	if fs.ReadBytes() != 5 {
		t.Fatalf("ReadBytes = %d, want 5", fs.ReadBytes())
	}
}

// TestTransientReadBurst: one-shot transient faults drain and reads
// recover, which is exactly the contract the serve retry policy
// depends on; permanent faults must never classify as transient.
func TestTransientReadBurst(t *testing.T) {
	fs := New()
	path := filepath.Join(t.TempDir(), "f")
	w, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	fs.TransientReadFaults(2)
	r, err := fs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b := make([]byte, 5)
	for i := 0; i < 2; i++ {
		_, err := r.Read(b)
		if !errors.Is(err, ErrInjected) || !IsTransient(err) {
			t.Fatalf("read %d: got %v, want transient injected fault", i+1, err)
		}
	}
	if n := fs.TransientRemaining(); n != 0 {
		t.Fatalf("TransientRemaining = %d after burst drained, want 0", n)
	}
	if _, err := io.ReadFull(r, b); err != nil {
		t.Fatalf("read after burst drained: %v", err)
	}

	// A permanent injected fault is not transient.
	fs2 := New().FailReadAfter(0)
	r2, err := fs2.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	_, err = r2.Read(b)
	if !errors.Is(err, ErrInjected) || IsTransient(err) {
		t.Fatalf("budget fault: got %v, want permanent injected fault", err)
	}
	if IsTransient(nil) {
		t.Fatal("IsTransient(nil) = true")
	}
}

// TestTransientReadEvery: sustained every-Nth pressure where each
// individual failure is retryable.
func TestTransientReadEvery(t *testing.T) {
	fs := New()
	path := filepath.Join(t.TempDir(), "f")
	w, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello, world 123")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	fs.TransientReadEvery(3)
	r, err := fs.Open(path)
	// 9 reads of 1 byte with every 3rd faulting touches 6 data bytes.
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b := make([]byte, 1)
	var faults int
	for i := 0; i < 9; i++ {
		if _, err := r.Read(b); err != nil {
			if !IsTransient(err) {
				t.Fatalf("read %d: got %v, want transient", i+1, err)
			}
			faults++
		}
	}
	if faults != 3 {
		t.Fatalf("faults = %d over 9 reads with every=3, want 3", faults)
	}
}

func TestFailCreateNth(t *testing.T) {
	fs := New().FailCreate(2)
	dir := t.TempDir()
	f1, err := fs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	f1.Close()
	if _, err := fs.Create(filepath.Join(dir, "b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("2nd create: got %v, want ErrInjected", err)
	}
	f3, err := fs.Create(filepath.Join(dir, "c"))
	if err != nil {
		t.Fatalf("3rd create must succeed again: %v", err)
	}
	f3.Close()
}
