package faultfs

import (
	"errors"
	"io"
	"path/filepath"
	"testing"
)

func TestFailSyncAndByteAccounting(t *testing.T) {
	fs := New().FailSync()
	path := filepath.Join(t.TempDir(), "f")
	w, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync: got %v, want ErrInjected", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.WriteBytes() != 5 {
		t.Fatalf("WriteBytes = %d, want 5", fs.WriteBytes())
	}

	r, err := fs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b := make([]byte, 5)
	if _, err := io.ReadFull(r, b); err != nil {
		t.Fatal(err)
	}
	if fs.ReadBytes() != 5 {
		t.Fatalf("ReadBytes = %d, want 5", fs.ReadBytes())
	}
}

func TestFailCreateNth(t *testing.T) {
	fs := New().FailCreate(2)
	dir := t.TempDir()
	f1, err := fs.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	f1.Close()
	if _, err := fs.Create(filepath.Join(dir, "b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("2nd create: got %v, want ErrInjected", err)
	}
	f3, err := fs.Create(filepath.Join(dir, "c"))
	if err != nil {
		t.Fatalf("3rd create must succeed again: %v", err)
	}
	f3.Close()
}
