// Package faultfs is a fault-injecting storage.FileSystem for
// robustness tests: it wraps the real filesystem and fails operations
// on demand — the Nth file creation, reads after a global byte budget,
// writes after a global byte budget, fsync, or short (1-byte) reads.
// Install it with storage.SwapFS and drive any engine over it to prove
// error paths return typed errors and clean up their temp files.
//
// Byte budgets are global across all files opened through the FS, so a
// test can say "fail the 3rd megabyte of I/O wherever it lands" and hit
// sorts, spills, and scans alike. All counters are atomic; the FS is
// safe for the concurrent readers/writers the parallel engines spawn.
package faultfs

import (
	"errors"
	"fmt"
	"sync/atomic"

	"awra/internal/storage"
)

// ErrInjected is the root of every injected failure.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrTransient marks an injected failure as transient: the condition
// that caused it clears on its own (a blip, not a broken disk), so a
// caller that retries the whole operation can expect to succeed. The
// serve layer's retry policy keys off this class; permanent faults
// (exhausted budgets, armed FailCreate/FailSync) never carry it.
var ErrTransient = errors.New("transient")

// IsTransient reports whether err (anywhere in its chain) is a
// transient fault worth retrying. Injected faults armed through the
// Transient* methods qualify; everything else — permanent injected
// faults, checksum corruption, budget trips, cancellation — does not.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// FS wraps a base FileSystem with injectable faults. The zero value
// with Base nil wraps the OS filesystem and injects nothing until a
// Fail* method arms it.
type FS struct {
	// Base is the wrapped filesystem; nil means storage.OSFS.
	Base storage.FileSystem

	creates        atomic.Int64
	failCreateAt   atomic.Int64 // fail the Nth create (1-based), 0 = off
	readBytes      atomic.Int64
	failReadAfter  atomic.Int64 // total read bytes before failing, -1 = off
	writeBytes     atomic.Int64
	failWriteAfter atomic.Int64 // total written bytes before failing, -1 = off
	failSync       atomic.Bool
	shortReads     atomic.Bool
	// transientReads holds how many more Read calls will fail with a
	// transient error; unlike the budgets above the fault self-clears
	// as the counter drains, so retried operations eventually succeed.
	transientReads atomic.Int64
	// transientEvery, when > 0, fails every Nth Read call transiently —
	// sustained background pressure rather than a one-shot burst.
	transientEvery atomic.Int64
	reads          atomic.Int64
}

// New returns an FS over the OS filesystem with no faults armed.
func New() *FS {
	f := &FS{}
	f.failReadAfter.Store(-1)
	f.failWriteAfter.Store(-1)
	return f
}

// FailCreate arms a failure on the nth (1-based) Create call.
func (f *FS) FailCreate(n int64) *FS { f.failCreateAt.Store(n); return f }

// FailReadAfter arms a read failure once n bytes have been read in
// total across all files.
func (f *FS) FailReadAfter(n int64) *FS { f.failReadAfter.Store(n); return f }

// FailWriteAfter arms a write failure once n bytes have been written
// in total across all files.
func (f *FS) FailWriteAfter(n int64) *FS { f.failWriteAfter.Store(n); return f }

// FailSync makes every Sync call fail.
func (f *FS) FailSync() *FS { f.failSync.Store(true); return f }

// ShortReads makes every Read return at most one byte, exercising
// io.ReadFull resumption in callers.
func (f *FS) ShortReads() *FS { f.shortReads.Store(true); return f }

// TransientReadFaults arms n transient read failures: the next n Read
// calls (across all files) fail with an error satisfying IsTransient,
// then reads succeed again. Retried operations therefore recover once
// the burst drains.
func (f *FS) TransientReadFaults(n int64) *FS { f.transientReads.Store(n); return f }

// TransientReadEvery makes every nth Read call fail transiently
// (0 disarms) — sustained fault pressure for chaos tests, where every
// individual failure is still retryable.
func (f *FS) TransientReadEvery(n int64) *FS { f.transientEvery.Store(n); return f }

// TransientRemaining reports how many armed one-shot transient read
// faults have not fired yet.
func (f *FS) TransientRemaining() int64 { return f.transientReads.Load() }

// ReadBytes reports total bytes read through the FS.
func (f *FS) ReadBytes() int64 { return f.readBytes.Load() }

// WriteBytes reports total bytes written through the FS.
func (f *FS) WriteBytes() int64 { return f.writeBytes.Load() }

func (f *FS) base() storage.FileSystem {
	if f.Base != nil {
		return f.Base
	}
	return storage.OSFS{}
}

// Create implements storage.FileSystem.
func (f *FS) Create(name string) (storage.File, error) {
	n := f.creates.Add(1)
	if at := f.failCreateAt.Load(); at > 0 && n == at {
		return nil, fmt.Errorf("%w: create %s (call %d)", ErrInjected, name, n)
	}
	file, err := f.base().Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, name: name}, nil
}

// Open implements storage.FileSystem.
func (f *FS) Open(name string) (storage.File, error) {
	file, err := f.base().Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, name: name}, nil
}

type faultFile struct {
	fs   *FS
	f    storage.File
	name string
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if after := ff.fs.failReadAfter.Load(); after >= 0 && ff.fs.readBytes.Load() >= after {
		return 0, fmt.Errorf("%w: read %s after %d bytes", ErrInjected, ff.name, ff.fs.readBytes.Load())
	}
	call := ff.fs.reads.Add(1)
	if n := ff.fs.transientReads.Load(); n > 0 && ff.fs.transientReads.CompareAndSwap(n, n-1) {
		return 0, fmt.Errorf("%w: %w: read %s (burst, %d left)", ErrInjected, ErrTransient, ff.name, n-1)
	}
	if every := ff.fs.transientEvery.Load(); every > 0 && call%every == 0 {
		return 0, fmt.Errorf("%w: %w: read %s (call %d)", ErrInjected, ErrTransient, ff.name, call)
	}
	if ff.fs.shortReads.Load() && len(p) > 1 {
		p = p[:1]
	}
	n, err := ff.f.Read(p)
	ff.fs.readBytes.Add(int64(n))
	return n, err
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if after := ff.fs.failWriteAfter.Load(); after >= 0 && ff.fs.writeBytes.Load() >= after {
		return 0, fmt.Errorf("%w: write %s after %d bytes", ErrInjected, ff.name, ff.fs.writeBytes.Load())
	}
	n, err := ff.f.Write(p)
	ff.fs.writeBytes.Add(int64(n))
	return n, err
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if after := ff.fs.failWriteAfter.Load(); after >= 0 && ff.fs.writeBytes.Load() >= after {
		return 0, fmt.Errorf("%w: write-at %s after %d bytes", ErrInjected, ff.name, ff.fs.writeBytes.Load())
	}
	n, err := ff.f.WriteAt(p, off)
	ff.fs.writeBytes.Add(int64(n))
	return n, err
}

func (ff *faultFile) Sync() error {
	if ff.fs.failSync.Load() {
		return fmt.Errorf("%w: fsync %s", ErrInjected, ff.name)
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
