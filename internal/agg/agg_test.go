package agg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var allKinds = []Kind{
	Count, CountNonNull, Sum, Min, Max, Avg, Var, StdDev,
	CountDistinct, First, Last, ConstZero, Median, P95,
}

func feed(k Kind, vs []float64) float64 {
	a := k.New()
	for _, v := range vs {
		a.Update(v)
	}
	return a.Final()
}

func TestBasics(t *testing.T) {
	vs := []float64{3, 1, 4, 1, 5}
	cases := []struct {
		k    Kind
		want float64
	}{
		{Count, 5}, {CountNonNull, 5}, {Sum, 14}, {Min, 1}, {Max, 5},
		{Avg, 2.8}, {CountDistinct, 4}, {First, 3}, {Last, 5}, {ConstZero, 0},
	}
	for _, c := range cases {
		if got := feed(c.k, vs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v(%v) = %v, want %v", c.k, vs, got, c.want)
		}
	}
	if got := feed(Var, []float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-4) > 1e-12 {
		t.Errorf("Var = %v, want 4", got)
	}
	if got := feed(StdDev, []float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestEmptyInput(t *testing.T) {
	for _, k := range allKinds {
		got := k.New().Final()
		switch k {
		case Count, CountNonNull, CountDistinct, ConstZero:
			if got != 0 {
				t.Errorf("%v over empty = %v, want 0", k, got)
			}
		default:
			if !IsNull(got) {
				t.Errorf("%v over empty = %v, want NULL", k, got)
			}
		}
	}
}

func TestNullHandling(t *testing.T) {
	vs := []float64{Null(), 2, Null(), 6}
	if got := feed(Count, vs); got != 4 {
		t.Errorf("Count(*) with NULLs = %v, want 4", got)
	}
	if got := feed(CountNonNull, vs); got != 2 {
		t.Errorf("Count(M) with NULLs = %v, want 2", got)
	}
	if got := feed(Sum, vs); got != 8 {
		t.Errorf("Sum with NULLs = %v, want 8", got)
	}
	if got := feed(Avg, vs); got != 4 {
		t.Errorf("Avg with NULLs = %v, want 4", got)
	}
	if got := feed(Min, vs); got != 2 {
		t.Errorf("Min with NULLs = %v, want 2", got)
	}
	if got := feed(First, vs); got != 2 {
		t.Errorf("First with NULLs = %v, want 2", got)
	}
	if got := feed(Last, vs); got != 6 {
		t.Errorf("Last with NULLs = %v, want 6", got)
	}
	if got := feed(Sum, []float64{Null()}); !IsNull(got) {
		t.Errorf("Sum of only NULLs = %v, want NULL", got)
	}
}

func TestMergeEquivalentToConcatenation(t *testing.T) {
	// Property: splitting an input sequence at any point and merging
	// must equal feeding the whole sequence to one aggregator.
	// (First/Last depend on order, which merge preserves here since we
	// merge left then right.)
	rng := rand.New(rand.NewSource(42))
	for _, k := range allKinds {
		for trial := 0; trial < 100; trial++ {
			n := rng.Intn(20)
			vs := make([]float64, n)
			for i := range vs {
				if rng.Intn(10) == 0 {
					vs[i] = Null()
				} else {
					vs[i] = float64(rng.Intn(8))
				}
			}
			cut := 0
			if n > 0 {
				cut = rng.Intn(n + 1)
			}
			left, right := k.New(), k.New()
			for _, v := range vs[:cut] {
				left.Update(v)
			}
			for _, v := range vs[cut:] {
				right.Update(v)
			}
			left.Merge(right)
			want := feed(k, vs)
			got := left.Final()
			if IsNull(want) != IsNull(got) || (!IsNull(want) && math.Abs(got-want) > 1e-9) {
				t.Fatalf("%v: merge(%v cut %d) = %v, want %v", k, vs, cut, got, want)
			}
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range allKinds {
		for trial := 0; trial < 50; trial++ {
			a := k.New()
			n := rng.Intn(15)
			for i := 0; i < n; i++ {
				a.Update(float64(rng.Intn(6)))
			}
			b, err := k.Restore(a.State())
			if err != nil {
				t.Fatalf("%v: restore: %v", k, err)
			}
			wa, wb := a.Final(), b.Final()
			if IsNull(wa) != IsNull(wb) || (!IsNull(wa) && math.Abs(wa-wb) > 1e-12) {
				t.Fatalf("%v: round trip %v != %v", k, wb, wa)
			}
			// Restored aggregators must keep accepting updates.
			a.Update(3)
			b.Update(3)
			wa, wb = a.Final(), b.Final()
			if IsNull(wa) != IsNull(wb) || (!IsNull(wa) && math.Abs(wa-wb) > 1e-12) {
				t.Fatalf("%v: post-restore update %v != %v", k, wb, wa)
			}
		}
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	bad := []float64{1, 2, 3, 4, 5, 6, 7}
	for _, k := range []Kind{Count, Sum, Min, Avg, Var, First} {
		if _, err := k.Restore(bad); err == nil {
			t.Errorf("%v: garbage state accepted", k)
		}
	}
}

func TestVarMergeNumericallyStable(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		vs := make([]float64, len(raw))
		for i, r := range raw {
			vs[i] = float64(r) + 1e6 // large offset stresses naive formulas
		}
		whole := feed(Var, vs)
		cut := len(vs) / 2
		l, r := Var.New(), Var.New()
		for _, v := range vs[:cut] {
			l.Update(v)
		}
		for _, v := range vs[cut:] {
			r.Update(v)
		}
		l.Merge(r)
		return math.Abs(l.Final()-whole) < 1e-6*(1+whole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKindStringAndParse(t *testing.T) {
	for _, k := range allKinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("mode"); err == nil {
		t.Error("unknown kind accepted")
	}
	if got, err := ParseKind("  SUM "); err != nil || got != Sum {
		t.Errorf("case/space-insensitive parse failed: %v %v", got, err)
	}
	if s := Kind(99).String(); s != "agg.Kind(99)" {
		t.Errorf("unknown kind String = %q", s)
	}
}

func TestClassification(t *testing.T) {
	for _, k := range []Kind{Count, CountNonNull, Sum, Min, Max, ConstZero} {
		if !k.Distributive() || !k.Algebraic() {
			t.Errorf("%v should be distributive and algebraic", k)
		}
	}
	for _, k := range []Kind{Avg, Var, StdDev} {
		if k.Distributive() {
			t.Errorf("%v should not be distributive", k)
		}
		if !k.Algebraic() {
			t.Errorf("%v should be algebraic", k)
		}
	}
	for _, k := range []Kind{CountDistinct, First, Last, Median, P95} {
		if k.Algebraic() {
			t.Errorf("%v should be holistic", k)
		}
		if k.Distributive() {
			t.Errorf("%v should not be distributive", k)
		}
	}
}

func TestBytesPositive(t *testing.T) {
	for _, k := range allKinds {
		a := k.New()
		if a.Bytes() <= 0 {
			t.Errorf("%v: Bytes() = %d", k, a.Bytes())
		}
		a.Update(1)
		a.Update(2)
		if a.Bytes() <= 0 {
			t.Errorf("%v: Bytes() after updates = %d", k, a.Bytes())
		}
	}
}

func TestQuantiles(t *testing.T) {
	cases := []struct {
		k    Kind
		vs   []float64
		want float64
	}{
		{Median, []float64{5, 1, 3}, 3},
		{Median, []float64{4, 1, 3, 2}, 2.5}, // midpoint for even counts
		{Median, []float64{7}, 7},
		{P95, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 10}, // ceil(0.95*10) = 10th
		{P95, []float64{1}, 1},
	}
	for _, c := range cases {
		if got := feed(c.k, c.vs); got != c.want {
			t.Errorf("%v(%v) = %v, want %v", c.k, c.vs, got, c.want)
		}
	}
	// Order independence.
	a := feed(Median, []float64{9, 2, 5, 5, 1})
	b := feed(Median, []float64{1, 5, 9, 5, 2})
	if a != b {
		t.Errorf("median is order dependent: %v vs %v", a, b)
	}
	// NULLs ignored; all-NULL yields NULL.
	if got := feed(Median, []float64{Null(), 4, Null()}); got != 4 {
		t.Errorf("median with NULLs = %v", got)
	}
	if got := feed(P95, []float64{Null()}); !IsNull(got) {
		t.Errorf("p95 of only NULLs = %v", got)
	}
	// Final is repeatable (no destructive sort of live state).
	ag := Median.New()
	for _, v := range []float64{3, 1, 2} {
		ag.Update(v)
	}
	if ag.Final() != 2 || ag.Final() != 2 {
		t.Error("Final not idempotent")
	}
	ag.Update(10)
	if ag.Final() != 2.5 {
		t.Errorf("median after more updates = %v", ag.Final())
	}
}

func TestCountDistinctGrowth(t *testing.T) {
	a := CountDistinct.New()
	before := a.Bytes()
	for i := 0; i < 100; i++ {
		a.Update(float64(i))
	}
	if a.Bytes() <= before {
		t.Error("CountDistinct footprint did not grow with cardinality")
	}
	if a.Final() != 100 {
		t.Errorf("CountDistinct = %v", a.Final())
	}
}
