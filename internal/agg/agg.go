// Package agg implements the aggregation functions used to summarize
// regions: distributive functions (COUNT, SUM, MIN, MAX), algebraic
// functions (AVG, VAR, STDDEV) maintained as constant-size register
// tuples, and the holistic COUNT DISTINCT. All engines — single-scan,
// sort/scan, multi-pass, and the relational baseline — share these
// state machines, so cross-engine result equivalence is meaningful.
//
// An aggregator accumulates float64 inputs via Update, can absorb
// another aggregator of the same kind via Merge (required by the
// spilling single-scan engine and the multi-pass combiner), and
// produces its result via Final. Aggregators over an empty input
// produce the SQL-ish convention used by the paper's LEFT OUTER JOIN
// semantics: COUNT-like functions yield 0; value functions (SUM, MIN,
// MAX, AVG, ...) yield NULL, represented as NaN.
package agg

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Null is the representation of SQL NULL in measure values: NaN.
// The paper's match join is a LEFT OUTER JOIN, so unmatched regions
// produce NULL measures for value aggregates.
func Null() float64 { return math.NaN() }

// IsNull reports whether a measure value is NULL.
func IsNull(v float64) bool { return math.IsNaN(v) }

// Kind identifies an aggregation function.
type Kind int

const (
	// Count is COUNT(*) over the matched inputs (NULLs included:
	// COUNT(*) counts rows, and update streams deliver rows).
	Count Kind = iota
	// CountNonNull is COUNT(M): counts non-NULL inputs.
	CountNonNull
	// Sum is SUM(M), NULL over the empty input.
	Sum
	// Min is MIN(M).
	Min
	// Max is MAX(M).
	Max
	// Avg is AVG(M), maintained algebraically as (sum, count).
	Avg
	// Var is the population variance, maintained algebraically as
	// (count, mean, M2) via Welford's recurrence.
	Var
	// StdDev is the population standard deviation.
	StdDev
	// CountDistinct is COUNT(DISTINCT M): holistic, maintained as a
	// value set. The relational baseline uses it for the paper's Q1
	// ("we use COUNT(DISTINCT(...)) to generate the aggregation for
	// child regions").
	CountDistinct
	// First keeps the first non-NULL input (stream order dependent;
	// used only where the input order is deterministic).
	First
	// Last keeps the last non-NULL input.
	Last
	// ConstZero ignores its inputs and yields 0. It implements the
	// paper's auxiliary S_base = g_{G,0}(D) tables, which exist only
	// to enumerate the cells of a region set.
	ConstZero
	// Median is the holistic 50th percentile (midpoint of the two
	// central values for even counts). Order-independent, so it is
	// safe in every engine.
	Median
	// P95 is the holistic 95th percentile (nearest-rank).
	P95
)

var kindNames = map[Kind]string{
	Count:         "count",
	CountNonNull:  "countm",
	Sum:           "sum",
	Min:           "min",
	Max:           "max",
	Avg:           "avg",
	Var:           "var",
	StdDev:        "stddev",
	CountDistinct: "countdistinct",
	First:         "first",
	Last:          "last",
	ConstZero:     "zero",
	Median:        "median",
	P95:           "p95",
}

// String returns the lower-case name of the aggregation function.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("agg.Kind(%d)", int(k))
}

// ParseKind resolves an aggregation function name (case-insensitive).
func ParseKind(name string) (Kind, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	for k, kn := range kindNames {
		if kn == n {
			return k, nil
		}
	}
	return 0, fmt.Errorf("agg: unknown aggregation function %q", name)
}

// Distributive reports whether the function distributes over union of
// inputs with a single register (Property 1 of Theorem 1 requires a
// distributive function for aggregation collapsing).
func (k Kind) Distributive() bool {
	switch k {
	case Count, CountNonNull, Sum, Min, Max, ConstZero:
		return true
	}
	return false
}

// Algebraic reports whether the function is maintainable with a
// constant number of registers (distributive functions are trivially
// algebraic).
func (k Kind) Algebraic() bool {
	switch k {
	case CountDistinct, First, Last, Median, P95:
		return false
	}
	return true
}

// MergeCommutes reports whether partial aggregates of this kind can be
// combined with Merge in any order and grouping without changing the
// result — the property partition-then-merge evaluation (sharded
// sort/scan, spilling single-scan) relies on. Every kind satisfies it
// except First and Last, whose results depend on stream arrival order
// and therefore on which partition a row landed in.
func (k Kind) MergeCommutes() bool {
	switch k {
	case First, Last:
		return false
	}
	return true
}

// Aggregator accumulates inputs for one region's measure.
type Aggregator interface {
	// Update absorbs one input value. NULL inputs are ignored by all
	// functions except Count.
	Update(v float64)
	// Merge absorbs the state of another aggregator of the same kind.
	Merge(other Aggregator)
	// Final returns the aggregate over everything absorbed so far.
	Final() float64
	// State serializes the aggregator for spilling; Kind.Restore
	// rebuilds it. The encoding is a plain float64 slice.
	State() []float64
	// Bytes estimates the in-memory footprint of the state, for
	// memory accounting.
	Bytes() int
}

// New creates a fresh aggregator of the given kind.
func (k Kind) New() Aggregator {
	switch k {
	case Count:
		return &countAgg{countStar: true}
	case CountNonNull:
		return &countAgg{}
	case Sum:
		return &sumAgg{}
	case Min:
		return &minmaxAgg{min: true}
	case Max:
		return &minmaxAgg{}
	case Avg:
		return &avgAgg{}
	case Var:
		return &varAgg{}
	case StdDev:
		return &varAgg{stddev: true}
	case CountDistinct:
		return &distinctAgg{seen: make(map[float64]struct{})}
	case First:
		return &firstLastAgg{first: true, v: Null()}
	case Last:
		return &firstLastAgg{v: Null()}
	case ConstZero:
		return zeroAgg{}
	case Median:
		return &quantileAgg{q: 0.5, midpoint: true}
	case P95:
		return &quantileAgg{q: 0.95}
	}
	panic(fmt.Sprintf("agg: New on unknown kind %d", int(k)))
}

// Restore rebuilds an aggregator from a State() slice.
func (k Kind) Restore(state []float64) (Aggregator, error) {
	a := k.New()
	if err := loadState(a, state); err != nil {
		return nil, fmt.Errorf("agg: restoring %v: %w", k, err)
	}
	return a, nil
}

func loadState(a Aggregator, state []float64) error {
	switch ag := a.(type) {
	case *countAgg:
		if len(state) != 1 {
			return fmt.Errorf("count state has %d values", len(state))
		}
		ag.n = int64(state[0])
	case *sumAgg:
		if len(state) != 2 {
			return fmt.Errorf("sum state has %d values", len(state))
		}
		ag.sum, ag.n = state[0], int64(state[1])
	case *minmaxAgg:
		if len(state) != 2 {
			return fmt.Errorf("minmax state has %d values", len(state))
		}
		ag.v, ag.n = state[0], int64(state[1])
	case *avgAgg:
		if len(state) != 2 {
			return fmt.Errorf("avg state has %d values", len(state))
		}
		ag.sum, ag.n = state[0], int64(state[1])
	case *varAgg:
		if len(state) != 3 {
			return fmt.Errorf("var state has %d values", len(state))
		}
		ag.n, ag.mean, ag.m2 = int64(state[0]), state[1], state[2]
	case *distinctAgg:
		for _, v := range state {
			ag.seen[v] = struct{}{}
		}
	case *firstLastAgg:
		if len(state) != 2 {
			return fmt.Errorf("first/last state has %d values", len(state))
		}
		ag.v, ag.set = state[0], state[1] != 0
	case *quantileAgg:
		ag.vals = append(ag.vals, state...)
	case zeroAgg:
		// stateless
	default:
		return fmt.Errorf("unknown aggregator %T", a)
	}
	return nil
}

type countAgg struct {
	countStar bool
	n         int64
}

func (a *countAgg) Update(v float64) {
	if a.countStar || !IsNull(v) {
		a.n++
	}
}
func (a *countAgg) Merge(o Aggregator) { a.n += o.(*countAgg).n }
func (a *countAgg) Final() float64     { return float64(a.n) }
func (a *countAgg) State() []float64   { return []float64{float64(a.n)} }
func (a *countAgg) Bytes() int         { return 16 }

type sumAgg struct {
	sum float64
	n   int64
}

func (a *sumAgg) Update(v float64) {
	if !IsNull(v) {
		a.sum += v
		a.n++
	}
}
func (a *sumAgg) Merge(o Aggregator) {
	so := o.(*sumAgg)
	a.sum += so.sum
	a.n += so.n
}
func (a *sumAgg) Final() float64 {
	if a.n == 0 {
		return Null()
	}
	return a.sum
}
func (a *sumAgg) State() []float64 { return []float64{a.sum, float64(a.n)} }
func (a *sumAgg) Bytes() int       { return 16 }

type minmaxAgg struct {
	min bool
	v   float64
	n   int64
}

func (a *minmaxAgg) Update(v float64) {
	if IsNull(v) {
		return
	}
	if a.n == 0 || (a.min && v < a.v) || (!a.min && v > a.v) {
		a.v = v
	}
	a.n++
}
func (a *minmaxAgg) Merge(o Aggregator) {
	mo := o.(*minmaxAgg)
	if mo.n == 0 {
		return
	}
	if a.n == 0 || (a.min && mo.v < a.v) || (!a.min && mo.v > a.v) {
		a.v = mo.v
	}
	a.n += mo.n
}
func (a *minmaxAgg) Final() float64 {
	if a.n == 0 {
		return Null()
	}
	return a.v
}
func (a *minmaxAgg) State() []float64 { return []float64{a.v, float64(a.n)} }
func (a *minmaxAgg) Bytes() int       { return 24 }

type avgAgg struct {
	sum float64
	n   int64
}

func (a *avgAgg) Update(v float64) {
	if !IsNull(v) {
		a.sum += v
		a.n++
	}
}
func (a *avgAgg) Merge(o Aggregator) {
	ao := o.(*avgAgg)
	a.sum += ao.sum
	a.n += ao.n
}
func (a *avgAgg) Final() float64 {
	if a.n == 0 {
		return Null()
	}
	return a.sum / float64(a.n)
}
func (a *avgAgg) State() []float64 { return []float64{a.sum, float64(a.n)} }
func (a *avgAgg) Bytes() int       { return 16 }

type varAgg struct {
	stddev bool
	n      int64
	mean   float64
	m2     float64
}

func (a *varAgg) Update(v float64) {
	if IsNull(v) {
		return
	}
	a.n++
	d := v - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (v - a.mean)
}

func (a *varAgg) Merge(o Aggregator) {
	vo := o.(*varAgg)
	if vo.n == 0 {
		return
	}
	if a.n == 0 {
		a.n, a.mean, a.m2 = vo.n, vo.mean, vo.m2
		return
	}
	// Chan et al. parallel variance combination.
	n := a.n + vo.n
	d := vo.mean - a.mean
	a.m2 += vo.m2 + d*d*float64(a.n)*float64(vo.n)/float64(n)
	a.mean += d * float64(vo.n) / float64(n)
	a.n = n
}

func (a *varAgg) Final() float64 {
	if a.n == 0 {
		return Null()
	}
	v := a.m2 / float64(a.n)
	if v < 0 {
		v = 0 // numeric noise guard
	}
	if a.stddev {
		return math.Sqrt(v)
	}
	return v
}
func (a *varAgg) State() []float64 { return []float64{float64(a.n), a.mean, a.m2} }
func (a *varAgg) Bytes() int       { return 32 }

type distinctAgg struct {
	seen map[float64]struct{}
}

func (a *distinctAgg) Update(v float64) {
	if !IsNull(v) {
		a.seen[v] = struct{}{}
	}
}
func (a *distinctAgg) Merge(o Aggregator) {
	for v := range o.(*distinctAgg).seen {
		a.seen[v] = struct{}{}
	}
}
func (a *distinctAgg) Final() float64 { return float64(len(a.seen)) }
func (a *distinctAgg) State() []float64 {
	out := make([]float64, 0, len(a.seen))
	for v := range a.seen {
		out = append(out, v)
	}
	sort.Float64s(out) // deterministic serialization
	return out
}
func (a *distinctAgg) Bytes() int { return 48 + 16*len(a.seen) }

type firstLastAgg struct {
	first bool
	v     float64
	set   bool
}

func (a *firstLastAgg) Update(v float64) {
	if IsNull(v) {
		return
	}
	if a.first && a.set {
		return
	}
	a.v = v
	a.set = true
}
func (a *firstLastAgg) Merge(o Aggregator) {
	fo := o.(*firstLastAgg)
	if !fo.set {
		return
	}
	if a.first && a.set {
		return
	}
	a.v = fo.v
	a.set = true
}
func (a *firstLastAgg) Final() float64 {
	if !a.set {
		return Null()
	}
	return a.v
}
func (a *firstLastAgg) State() []float64 {
	s := 0.0
	if a.set {
		s = 1
	}
	return []float64{a.v, s}
}
func (a *firstLastAgg) Bytes() int { return 24 }

// quantileAgg keeps every non-NULL input (holistic). Median uses the
// midpoint convention for even counts; other quantiles use
// nearest-rank. Results are order-independent.
type quantileAgg struct {
	q        float64
	midpoint bool
	vals     []float64
}

func (a *quantileAgg) Update(v float64) {
	if !IsNull(v) {
		a.vals = append(a.vals, v)
	}
}

func (a *quantileAgg) Merge(o Aggregator) {
	a.vals = append(a.vals, o.(*quantileAgg).vals...)
}

func (a *quantileAgg) Final() float64 {
	n := len(a.vals)
	if n == 0 {
		return Null()
	}
	sorted := make([]float64, n)
	copy(sorted, a.vals)
	sort.Float64s(sorted)
	if a.midpoint && n%2 == 0 {
		return (sorted[n/2-1] + sorted[n/2]) / 2
	}
	rank := int(math.Ceil(a.q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

func (a *quantileAgg) State() []float64 {
	out := make([]float64, len(a.vals))
	copy(out, a.vals)
	sort.Float64s(out) // deterministic serialization
	return out
}

func (a *quantileAgg) Bytes() int { return 48 + 8*len(a.vals) }

type zeroAgg struct{}

func (zeroAgg) Update(float64)   {}
func (zeroAgg) Merge(Aggregator) {}
func (zeroAgg) Final() float64   { return 0 }
func (zeroAgg) State() []float64 { return nil }
func (zeroAgg) Bytes() int       { return 8 }
