package qlog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func rec(label, outcome, collFP string, nodes ...NodeProfile) *Record {
	return &Record{
		Time:         time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Label:        label,
		QueryFP:      "qfp",
		CollectionFP: collFP,
		Engine:       "sortscan",
		Outcome:      outcome,
		DurationUs:   1234,
		Nodes:        nodes,
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []*Record{
		rec("q1", OutcomeOK, "c1", NodeProfile{Node: "n", Sig: "s1", CellsFinalized: 42, EstCells: 10, EstSource: "assumed"}),
		rec("q2", OutcomeBudget, "c1"),
		rec("q3", OutcomeError, "c2"),
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got []*Record
	skipped, err := Replay(dir, func(r *Record) { got = append(got, r) })
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("skipped %d lines", skipped)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Label != want[i].Label || got[i].Outcome != want[i].Outcome {
			t.Errorf("record %d: got %q/%q, want %q/%q", i, got[i].Label, got[i].Outcome, want[i].Label, want[i].Outcome)
		}
	}
	if got[0].Nodes[0].CellsFinalized != 42 || got[0].Nodes[0].Sig != "s1" {
		t.Errorf("node profile did not round-trip: %+v", got[0].Nodes[0])
	}
}

func TestReplaySurvivesAppendAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	l.Append(rec("first", OutcomeOK, "c1"))
	l.Close()
	// A new process opens the same dir and appends more.
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	l2.Append(rec("second", OutcomeOK, "c1"))
	l2.Close()
	var labels []string
	if _, err := Replay(dir, func(r *Record) { labels = append(labels, r.Label) }); err != nil {
		t.Fatal(err)
	}
	if strings.Join(labels, ",") != "first,second" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestRotationKeepsNewestAndBoundsFiles(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	l.MaxBytes = 256 // force frequent rotation
	l.MaxFiles = 3
	const total = 60
	for i := 0; i < total; i++ {
		if err := l.Append(rec("q"+string(rune('A'+i%26)), OutcomeOK, "c1")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	ents, _ := os.ReadDir(dir)
	if len(ents) > 3 {
		t.Fatalf("rotation left %d files, want <= 3", len(ents))
	}
	var n int
	if _, err := Replay(dir, func(*Record) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n == 0 || n >= total {
		t.Fatalf("replayed %d records, want 0 < n < %d (oldest dropped)", n, total)
	}
}

func TestReplaySkipsTornLine(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir)
	l.Append(rec("good", OutcomeOK, "c1"))
	l.Close()
	// Simulate a crash mid-write: a torn trailing line.
	f, _ := os.OpenFile(filepath.Join(dir, "history.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"time":"2026-08-08T12:`)
	f.Close()
	var n int
	skipped, err := Replay(dir, func(*Record) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || skipped != 1 {
		t.Fatalf("n=%d skipped=%d, want 1/1", n, skipped)
	}
}

func TestReplayMissingDir(t *testing.T) {
	n := 0
	skipped, err := Replay(filepath.Join(t.TempDir(), "nope"), func(*Record) { n++ })
	if err != nil || n != 0 || skipped != 0 {
		t.Fatalf("missing dir: n=%d skipped=%d err=%v", n, skipped, err)
	}
}

func TestStoreObserveAndLookup(t *testing.T) {
	s := NewStore()
	s.Observe(rec("q", OutcomeOK, "c1",
		NodeProfile{Node: "a", Sig: "sa", CellsFinalized: 100},
		NodeProfile{Node: "b", Sig: "sb", CellsFinalized: 7},
		NodeProfile{Node: "skip", CellsFinalized: 5}, // no sig
	))
	if m, ok := s.Lookup("c1", "sa"); !ok || m.Cells != 100 || m.Runs != 1 {
		t.Fatalf("sa: %+v ok=%v", m, ok)
	}
	if _, ok := s.Lookup("c1", "missing"); ok {
		t.Fatal("lookup of unknown sig succeeded")
	}
	if _, ok := s.Lookup("c2", "sa"); ok {
		t.Fatal("lookup crossed collections")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	// Latest measurement wins.
	s.Observe(rec("q", OutcomeOK, "c1", NodeProfile{Node: "a", Sig: "sa", CellsFinalized: 120}))
	if m, _ := s.Lookup("c1", "sa"); m.Cells != 120 || m.Runs != 2 {
		t.Fatalf("after second run: %+v", m)
	}
}

func TestStoreIgnoresPartialRuns(t *testing.T) {
	s := NewStore()
	for _, outcome := range []string{OutcomeBudget, OutcomeCanceled, OutcomeError} {
		s.Observe(rec("q", outcome, "c1", NodeProfile{Node: "a", Sig: "sa", CellsFinalized: 100}))
	}
	if s.Len() != 0 {
		t.Fatalf("partial runs contributed %d entries", s.Len())
	}
	var nilStore *Store
	nilStore.Observe(rec("q", OutcomeOK, "c1"))
	if _, ok := nilStore.Lookup("c1", "sa"); ok {
		t.Fatal("nil store lookup succeeded")
	}
}
