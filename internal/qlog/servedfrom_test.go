package qlog

// Regression tests for the cache_hit outcome and the served_from
// provenance fields: a query answered from the serve layer's result
// cache scans nothing and finalizes nothing, so its history record
// must never feed the measured-statistics store — even if the record
// (adversarially) carries node profiles with non-zero cell counts.

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestStoreIgnoresCacheHitRecords(t *testing.T) {
	s := NewStore()
	now := time.Now()
	s.Observe(&Record{
		Time: now, CollectionFP: "c1", Outcome: OutcomeOK,
		Nodes: []NodeProfile{{Node: "Count", Sig: "sigA", CellsFinalized: 42}},
	})
	if s.Len() != 1 {
		t.Fatalf("Len = %d after one OK record, want 1", s.Len())
	}
	m, ok := s.Lookup("c1", "sigA")
	if !ok || m.Cells != 42 || m.Runs != 1 {
		t.Fatalf("Lookup(sigA) = %+v, %v", m, ok)
	}

	// A cache hit, even one adversarially claiming node cell counts,
	// contributes nothing: no new signatures, no updates to old ones.
	s.Observe(&Record{
		Time: now.Add(time.Minute), CollectionFP: "c1",
		Outcome: OutcomeCacheHit, ServedFrom: "cache", SourceTraceID: "t-src",
		Nodes: []NodeProfile{
			{Node: "Count", Sig: "sigA", CellsFinalized: 7},
			{Node: "Busy", Sig: "sigB", CellsFinalized: 9},
		},
	})
	if s.Len() != 1 {
		t.Fatalf("Len = %d after a cache_hit record, want 1 (unchanged)", s.Len())
	}
	if m, _ := s.Lookup("c1", "sigA"); m.Cells != 42 || m.Runs != 1 {
		t.Fatalf("cache_hit record skewed sigA: %+v", m)
	}
	if _, ok := s.Lookup("c1", "sigB"); ok {
		t.Fatal("cache_hit record introduced a measurement for sigB")
	}
}

func TestRecordServedFromRoundTrip(t *testing.T) {
	rec := &Record{
		RequestID: "r1", Outcome: OutcomeCacheHit,
		ServedFrom: "cache", SourceTraceID: "trace-src", DurationUs: 5,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"served_from":"cache"`, `"source_trace_id":"trace-src"`, `"outcome":"cache_hit"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("serialized record missing %s:\n%s", want, b)
		}
	}
	var back Record
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.ServedFrom != "cache" || back.SourceTraceID != "trace-src" || back.Outcome != OutcomeCacheHit {
		t.Fatalf("round trip lost provenance: %+v", back)
	}

	// Ordinary runs stay clean: the provenance fields are omitted.
	plain, err := json.Marshal(&Record{RequestID: "r2", Outcome: OutcomeOK})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "served_from") || strings.Contains(string(plain), "source_trace_id") {
		t.Fatalf("plain record carries serve provenance fields:\n%s", plain)
	}
}

// TestReplayedCacheHitsStayOutOfStats pins the restart path: a log
// holding both executed runs and cache hits replays into a store that
// reflects only the executed runs.
func TestReplayedCacheHitsStayOutOfStats(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "hist")
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ok := &Record{Time: time.Now(), RequestID: "a", CollectionFP: "c1", Outcome: OutcomeOK,
		Nodes: []NodeProfile{{Node: "Count", Sig: "sigA", CellsFinalized: 11}}}
	hit := &Record{Time: time.Now(), RequestID: "b", CollectionFP: "c1", Outcome: OutcomeCacheHit,
		ServedFrom: "cache", Nodes: []NodeProfile{{Node: "Count", Sig: "sigC", CellsFinalized: 99}}}
	for _, r := range []*Record{ok, hit} {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	s := NewStore()
	n := 0
	if _, err := Replay(dir, func(r *Record) { s.Observe(r); n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d records, want 2", n)
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d measurements after replay, want 1", s.Len())
	}
	if _, ok := s.Lookup("c1", "sigC"); ok {
		t.Fatal("replayed cache_hit fed the store")
	}
}
