package qlog

import (
	"sync"
	"time"
)

// Measured is the statistics remembered for one (collection, node
// signature) pair: the true cell count the engine reported the last
// time that node ran to completion on that collection.
type Measured struct {
	// Cells is the finalized cell count (the paper's card(G, D) for
	// this node's granularity over this collection).
	Cells float64 `json:"cells"`
	// Runs counts the completed runs that contributed.
	Runs int `json:"runs"`
	// LastSeen is the timestamp of the newest contributing run.
	LastSeen time.Time `json:"last_seen"`
}

// Store is the measured-statistics store: node-level cardinalities
// keyed by (collection fingerprint, node signature), fed by history
// records and consulted by the planner before it falls back to
// collected estimates or paper defaults. All methods are safe for
// concurrent use; a nil *Store is a valid empty no-op store.
type Store struct {
	mu   sync.RWMutex
	byFP map[string]map[string]Measured
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byFP: make(map[string]map[string]Measured)}
}

// Observe folds one history record into the store. Only OutcomeOK
// runs contribute: canceled, budget-tripped, or failed runs saw a
// partial stream and would undercount cells. Nil-safe.
func (s *Store) Observe(rec *Record) {
	if s == nil || rec == nil || rec.Outcome != OutcomeOK || rec.CollectionFP == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	coll := s.byFP[rec.CollectionFP]
	if coll == nil {
		coll = make(map[string]Measured)
		s.byFP[rec.CollectionFP] = coll
	}
	for _, n := range rec.Nodes {
		if n.Sig == "" || n.CellsFinalized <= 0 {
			continue
		}
		m := coll[n.Sig]
		// Latest measurement wins: the true cardinality is a property
		// of (node, collection), so successive runs agree unless the
		// collection changed — in which case newest is correct.
		m.Cells = float64(n.CellsFinalized)
		m.Runs++
		if rec.Time.After(m.LastSeen) {
			m.LastSeen = rec.Time
		}
		coll[n.Sig] = m
	}
}

// Lookup returns the measured cell count for a node signature on a
// collection. Nil-safe (reports no measurement).
func (s *Store) Lookup(collectionFP, sig string) (Measured, bool) {
	if s == nil {
		return Measured{}, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.byFP[collectionFP][sig]
	return m, ok
}

// Len returns the total number of (collection, signature) entries.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, coll := range s.byFP {
		n += len(coll)
	}
	return n
}
