// Package qlog is the persistent query-history layer: an append-only
// JSONL log of completed query runs (with size-based rotation) and a
// measured-statistics store derived from it.
//
// Every aw.Run* completion — success, budget trip, cancellation, or
// error — appends one Record. Replaying the log on startup rebuilds
// the measured-statistics store, closing the estimate→actual loop the
// paper leaves open: its Table 6 card() estimates are "imprecise"
// (Section 6), but the engine measures true per-node cell counts on
// every execution, so later runs of the same workflow on the same
// collection can plan from measurements instead of guesses.
package qlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Outcome values for Record.Outcome.
const (
	OutcomeOK       = "ok"
	OutcomeCanceled = "canceled" // context canceled or deadline exceeded
	OutcomeBudget   = "budget"   // resource guardrail rejection
	OutcomeError    = "error"    // compile/planning/IO failure
	// OutcomeCacheHit marks a query answered from the serve layer's
	// result cache without executing. It is deliberately distinct from
	// OutcomeOK: cache hits scan nothing and finalize nothing, so
	// folding them into measured statistics would skew per-node
	// cardinalities toward zero (Store.Observe only folds OutcomeOK).
	OutcomeCacheHit = "cache_hit"
)

// NodeProfile is one measure node's estimate-vs-actual profile within
// a Record. Sig is the content signature from core.NodeSignature — the
// key under which measured statistics are stored and looked up.
type NodeProfile struct {
	Node           string  `json:"node"`
	Sig            string  `json:"sig,omitempty"`
	EstCells       float64 `json:"est_cells,omitempty"`
	EstSource      string  `json:"est_source,omitempty"`
	CellsFinalized int64   `json:"cells_finalized,omitempty"`
	LiveCellsHWM   int64   `json:"live_cells_hwm,omitempty"`
	RecordsIn      int64   `json:"records_in,omitempty"`
	RecordsOut     int64   `json:"records_out,omitempty"`
}

// Record is one completed query run, serialized as a single JSONL
// line. Fields mirror the in-flight registry's vocabulary so live and
// historical views of a query agree.
type Record struct {
	Time time.Time `json:"time"`
	// RequestID identifies the client request that issued the run. A
	// retried request reuses its ID, and history readers treat a later
	// record with the same ID as superseding the earlier attempt — so a
	// query retried after a transient fault logs one final outcome, not
	// one per attempt.
	RequestID string `json:"request_id,omitempty"`
	// TraceID is the run's flight-recorder trace ID; the full span tree
	// lives in the flight ring (and the pinned-trace log) under it.
	TraceID      string `json:"trace_id,omitempty"`
	Label        string `json:"label,omitempty"`
	QueryFP      string    `json:"query_fp,omitempty"`
	CollectionFP string    `json:"collection_fp,omitempty"`
	Engine       string    `json:"engine,omitempty"`
	SortKey      string    `json:"sort_key,omitempty"`
	Outcome      string    `json:"outcome"`
	Error        string    `json:"error,omitempty"`
	// ServedFrom records how the answer was produced without running
	// the full engine: "cache" (result-cache hit) or "shared" (fanned
	// out from a merged scan-sharing run). Empty for ordinary runs.
	ServedFrom string `json:"served_from,omitempty"`
	// SourceTraceID links a cache hit or shared fan-out back to the
	// trace of the run that actually computed the tables.
	SourceTraceID string `json:"source_trace_id,omitempty"`
	DurationUs    int64  `json:"duration_us"`
	// Phases maps span names (sort, scan, optimize, ...) to their
	// summed durations in microseconds for this query.
	Phases         map[string]int64 `json:"phases_us,omitempty"`
	RecordsScanned int64            `json:"records_scanned,omitempty"`
	ResultRows     int64            `json:"result_rows,omitempty"`
	SpillBytes     int64            `json:"spill_bytes,omitempty"`
	CorruptRows    int64            `json:"corrupt_rows,omitempty"`
	Nodes          []NodeProfile    `json:"nodes,omitempty"`
}

const (
	// defaultBase is the base name of the classic history log; sibling
	// logs (e.g. the pinned-trace log) share the directory under their
	// own base names via OpenNamed.
	defaultBase = "history"
	// DefaultMaxBytes rotates the active log segment past ~4 MiB.
	DefaultMaxBytes = 4 << 20
	// DefaultMaxFiles keeps the active segment plus two rotated ones.
	DefaultMaxFiles = 3
)

// Log is an append-only JSONL history log with size-based rotation:
// history.jsonl is active; on rotation it becomes history.1.jsonl
// (older segments shift to .2, ..., the oldest beyond MaxFiles-1 is
// deleted). Append is serialized by a mutex — history writes happen
// once per query, never on the hot path.
type Log struct {
	// MaxBytes triggers rotation when the active segment exceeds it.
	MaxBytes int64
	// MaxFiles bounds the total segment count (active + rotated).
	MaxFiles int

	mu   sync.Mutex
	dir  string
	base string
	f    *os.File
	size int64
}

// Open creates (if needed) the history directory and opens the active
// log segment for appending.
func Open(dir string) (*Log, error) { return OpenNamed(dir, defaultBase) }

// OpenNamed opens a rotating JSONL log under dir with the given base
// name (active segment <base>.jsonl, rotated <base>.N.jsonl). The
// history log and its siblings — e.g. the pinned-trace log — share one
// directory this way.
func OpenNamed(dir, base string) (*Log, error) {
	if base == "" {
		base = defaultBase
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("qlog: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, base+".jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("qlog: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("qlog: %w", err)
	}
	return &Log{dir: dir, base: base, f: f, size: st.Size(), MaxBytes: DefaultMaxBytes, MaxFiles: DefaultMaxFiles}, nil
}

// Dir returns the history directory.
func (l *Log) Dir() string { return l.dir }

// Append writes one record as a JSONL line, rotating first if the
// active segment is full. Safe for concurrent use.
func (l *Log) Append(rec *Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("qlog: %w", err)
	}
	return l.AppendJSON(b)
}

// AppendJSON writes one pre-marshaled JSON value as a JSONL line,
// rotating first if the active segment is full. Logs whose line type
// is not Record (e.g. the pinned-trace log) append through here. Safe
// for concurrent use.
func (l *Log) AppendJSON(b []byte) error {
	b = append(b, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("qlog: log is closed")
	}
	if l.size > 0 && l.size+int64(len(b)) > l.MaxBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := l.f.Write(b)
	l.size += int64(n)
	if err != nil {
		return fmt.Errorf("qlog: %w", err)
	}
	return nil
}

func (l *Log) rotateLocked() error {
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("qlog: rotate: %w", err)
	}
	l.f = nil
	max := l.MaxFiles
	if max < 2 {
		max = 2
	}
	// Shift rotated segments up, dropping the oldest.
	os.Remove(l.segPath(max - 1))
	for i := max - 2; i >= 1; i-- {
		from := l.segPath(i)
		if _, err := os.Stat(from); err == nil {
			if err := os.Rename(from, l.segPath(i+1)); err != nil {
				return fmt.Errorf("qlog: rotate: %w", err)
			}
		}
	}
	if err := os.Rename(filepath.Join(l.dir, l.base+".jsonl"), l.segPath(1)); err != nil {
		return fmt.Errorf("qlog: rotate: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(l.dir, l.base+".jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("qlog: rotate: %w", err)
	}
	l.f, l.size = f, 0
	return nil
}

func (l *Log) segPath(i int) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s.%d.jsonl", l.base, i))
}

// Close closes the active segment. Further Appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Replay streams every record in dir, oldest first (rotated segments
// before the active one), calling fn for each. Unparsable lines —
// e.g. a torn final line after a crash — are skipped, not fatal; their
// count is returned. A missing directory or missing log is not an
// error: replay of an empty history calls fn zero times.
func Replay(dir string, fn func(*Record)) (skipped int, err error) {
	return ReplayLines(dir, defaultBase, func(line []byte) bool {
		rec := &Record{}
		if json.Unmarshal(line, rec) != nil {
			return false
		}
		fn(rec)
		return true
	})
}

// ReplayLines streams every JSONL line of the named log in dir, oldest
// segment first, calling fn for each non-empty line. fn returns false
// for lines it could not parse; those count as skipped. Missing logs
// replay as empty, and torn lines are tolerated, matching Replay.
func ReplayLines(dir, base string, fn func(line []byte) bool) (skipped int, err error) {
	if base == "" {
		base = defaultBase
	}
	var paths []string
	// Oldest rotated segment first. Segments are numbered contiguously
	// from 1, so stop at the first gap.
	var rotated []string
	for i := 1; ; i++ {
		p := filepath.Join(dir, fmt.Sprintf("%s.%d.jsonl", base, i))
		if _, statErr := os.Stat(p); statErr != nil {
			break
		}
		rotated = append(rotated, p)
	}
	for i := len(rotated) - 1; i >= 0; i-- {
		paths = append(paths, rotated[i])
	}
	paths = append(paths, filepath.Join(dir, base+".jsonl"))
	for _, p := range paths {
		f, openErr := os.Open(p)
		if openErr != nil {
			if os.IsNotExist(openErr) {
				continue
			}
			return skipped, fmt.Errorf("qlog: %w", openErr)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			if !fn(line) {
				skipped++
			}
		}
		scanErr := sc.Err()
		f.Close()
		if scanErr != nil {
			return skipped, fmt.Errorf("qlog: %s: %w", p, scanErr)
		}
	}
	return skipped, nil
}
