// Package partscan implements partitioned-parallel sort/scan — the
// distribution strategy the paper designed its language around
// ("potentially unlimited parallelism and ability to distribute
// computation", Sections 1 and 9) but left unimplemented.
//
// The fact table is split into P partitions by hashing each record's
// value of a chosen partition dimension at a chosen level; each
// partition runs the full one-pass sort/scan engine independently (in
// parallel goroutines, standing in for distributed workers), and the
// per-partition tables concatenate into the final result with no merge
// step.
//
// Concatenation is only correct when every measure's region set nests
// inside partition units, so Validate enforces, for every measure in
// the workflow (hidden bases included):
//
//   - the partition dimension is not at D_ALL (a global region would
//     need values from every partition), and
//   - the measure's level on the partition dimension is at or below
//     the partition level (each region maps into exactly one
//     partition), and
//   - sibling windows do not move along the partition dimension
//     (neighbors could live in other partitions).
//
// Workflows that fail validation still run everywhere else — this
// engine trades generality for embarrassing parallelism, exactly the
// design point of the paper's MapReduce-adjacent motivation.
package partscan

import (
	"fmt"
	"os"
	"runtime/pprof"
	"sync"
	"time"

	"awra/internal/core"
	"awra/internal/exec/sortscan"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/plan"
	"awra/internal/qguard"
	"awra/internal/storage"
)

// Options configures a run.
type Options struct {
	// PartitionDim and PartitionLevel choose the partition unit.
	PartitionDim   int
	PartitionLevel model.Level
	// Partitions is the number of partitions/workers (>= 1).
	Partitions int
	// SortKey orders each partition's pass (same key everywhere).
	SortKey model.SortKey
	// TempDir receives partition files and sort runs.
	TempDir string
	// ChunkRecords tunes the per-partition external sorts.
	ChunkRecords int
	// ReadBatchBytes is the chunk size of the batched fact reads in
	// the split and each partition's sort/scan (0 = default).
	ReadBatchBytes int
	// Stats feeds footprint estimation (informational).
	Stats *plan.Stats
	// Recorder, if non-nil, receives a "partition" span for the split
	// phase, one "scan"-rooted span subtree per partition, a "combine"
	// span for concatenation, and the standard engine metrics.
	Recorder *obs.Recorder
	// Guard, if non-nil, enforces cancellation and resource budgets
	// during the split and inside every partition's sort/scan.
	Guard *qguard.Guard
}

// Stats aggregates per-partition costs.
type Stats struct {
	Records       int64
	PartitionTime time.Duration // splitting the fact file
	ScanTime      time.Duration // wall-clock for the parallel phase
	PeakCells     int64         // summed across concurrent partitions
	Partitions    int
}

// Result holds the concatenated tables.
type Result struct {
	Tables map[string]*core.Table
	Stats  Stats
}

// Validate reports whether the workflow can be evaluated
// partition-parallel on the given dimension and level.
func Validate(c *core.Compiled, dim int, lvl model.Level) error {
	sch := c.Schema
	if dim < 0 || dim >= sch.NumDims() {
		return fmt.Errorf("partscan: no dimension %d", dim)
	}
	l, err := sch.Dim(dim).Resolve(lvl)
	if err != nil {
		return fmt.Errorf("partscan: %w", err)
	}
	if l == sch.Dim(dim).ALL() {
		return fmt.Errorf("partscan: cannot partition on D_ALL")
	}
	for _, m := range c.Measures {
		if m.Gran[dim] == sch.Dim(dim).ALL() {
			return fmt.Errorf("partscan: measure %q is at D_ALL on %q; its regions span partitions",
				m.Name, sch.Dim(dim).Name())
		}
		if m.Gran[dim] > l {
			return fmt.Errorf("partscan: measure %q is coarser than the partition unit on %q",
				m.Name, sch.Dim(dim).Name())
		}
		for _, w := range m.Windows {
			if w.Dim == dim {
				return fmt.Errorf("partscan: measure %q has a sibling window along the partition dimension %q",
					m.Name, sch.Dim(dim).Name())
			}
		}
	}
	return nil
}

// Run validates, partitions the fact file, evaluates every partition
// in parallel, and concatenates the results.
func Run(c *core.Compiled, factPath string, opts Options) (*Result, error) {
	if opts.Partitions < 1 {
		opts.Partitions = 1
	}
	if err := Validate(c, opts.PartitionDim, opts.PartitionLevel); err != nil {
		return nil, err
	}
	lvl, _ := c.Schema.Dim(opts.PartitionDim).Resolve(opts.PartitionLevel)
	if opts.TempDir == "" {
		opts.TempDir = os.TempDir()
	}
	orec := opts.Recorder
	if orec == nil {
		orec = obs.New()
	}
	orec.Counter(obs.MPartitions).Add(int64(opts.Partitions))
	orec.Counter(obs.MFactScans).Add(1) // the split pass reads the fact file once

	// Phase 1: split (the shared partitioned-split substrate handles
	// writer lifecycle, cancellation, and spill accounting).
	t0 := time.Now()
	splitSpan := orec.Start(obs.SpanSplit)
	var res Result
	res.Stats.Partitions = opts.Partitions
	dim := c.Schema.Dim(opts.PartitionDim)
	paths, counts, err := storage.ShardFile(factPath, opts.Partitions, func(rec *model.Record) int {
		unit := dim.Up(0, lvl, rec.Dims[opts.PartitionDim])
		return int(uint64(mix(unit)) % uint64(opts.Partitions))
	}, storage.ShardOptions{TempDir: opts.TempDir, Prefix: "awra-part", Guard: opts.Guard})
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, p := range paths {
			os.Remove(p)
		}
	}()
	for _, n := range counts {
		res.Stats.Records += n
	}
	splitSpan.SetAttr("records", fmt.Sprint(res.Stats.Records))
	splitSpan.SetAttr("partitions", fmt.Sprint(opts.Partitions))
	splitSpan.End()
	res.Stats.PartitionTime = time.Since(t0)

	// Phase 2: evaluate partitions in parallel.
	t1 := time.Now()
	type partOut struct {
		res *sortscan.Result
		err error
	}
	outs := make([]partOut, opts.Partitions)
	var wg sync.WaitGroup
	for i := 0; i < opts.Partitions; i++ {
		wg.Add(1)
		pSpan := orec.Start(obs.SpanPartition)
		pSpan.SetAttr("part", fmt.Sprint(i))
		go func(i int, pSpan *obs.Span) {
			defer wg.Done()
			defer pSpan.End()
			// CPU profiles attribute partition work to the query (labels
			// inherited through the guard's context) and phase.
			pprof.SetGoroutineLabels(pprof.WithLabels(opts.Guard.Context(), pprof.Labels("phase", "partition")))
			defer pprof.SetGoroutineLabels(opts.Guard.Context())
			pr, err := sortscan.Run(c, paths[i], sortscan.Options{
				SortKey:        opts.SortKey,
				TempDir:        opts.TempDir,
				ChunkRecords:   opts.ChunkRecords,
				ReadBatchBytes: opts.ReadBatchBytes,
				Stats:          opts.Stats,
				Recorder:       orec.At(pSpan),
				Guard:          opts.Guard,
			})
			outs[i] = partOut{pr, err}
			os.Remove(paths[i] + ".sorted")
		}(i, pSpan)
	}
	wg.Wait()
	res.Stats.ScanTime = time.Since(t1)

	combSpan := orec.Start(obs.SpanCombine)
	defer combSpan.End()
	res.Tables = make(map[string]*core.Table)
	for _, name := range c.Outputs() {
		m, _ := c.MeasureByName(name)
		res.Tables[name] = core.NewTable(c.Schema, m.Gran)
	}
	for i, out := range outs {
		if out.err != nil {
			return nil, fmt.Errorf("partscan: partition %d: %w", i, out.err)
		}
		res.Stats.PeakCells += out.res.Stats.PeakCells
		for name, tbl := range out.res.Tables {
			dst := res.Tables[name]
			for k, v := range tbl.Rows {
				if _, dup := dst.Rows[k]; dup {
					return nil, fmt.Errorf("partscan: region %s of %q produced by two partitions; validation is unsound",
						tbl.Codec.Format(k), name)
				}
				dst.Rows[k] = v
			}
		}
	}
	return &res, nil
}

// mix is SplitMix64's finalizer, so partition assignment is well
// distributed even for sequential unit codes.
func mix(x int64) int64 {
	u := uint64(x)
	u ^= u >> 30
	u *= 0xbf58476d1ce4e5b9
	u ^= u >> 27
	u *= 0x94d049bb133111eb
	u ^= u >> 31
	return int64(u)
}
