package partscan

import (
	"path/filepath"
	"strings"
	"testing"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/exec/singlescan"
	"awra/internal/gen"
	"awra/internal/model"
	"awra/internal/storage"
)

func setup(t *testing.T) (*model.Schema, []model.Record, string, string) {
	t.Helper()
	s, recs, err := gen.SynthRecords(3000, gen.SynthConfig{Dims: 3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fact := filepath.Join(dir, "fact.rec")
	if err := storage.WriteAll(fact, 3, 1, recs); err != nil {
		t.Fatal(err)
	}
	return s, recs, fact, dir
}

// partitionableWorkflow keeps A1 (the partition dimension) non-ALL and
// at or below level 1 in every measure.
func partitionableWorkflow(t *testing.T, s *model.Schema) *core.Compiled {
	t.Helper()
	all := model.LevelALL
	c, err := core.NewWorkflow(s).
		Basic("cnt", model.Gran{0, 1, all}, agg.Count, -1).
		Basic("sum", model.Gran{1, all, all}, agg.Sum, 0).
		Rollup("per1", model.Gran{1, all, all}, "cnt", agg.Sum).
		Combine("ratio", []string{"per1", "sum"}, core.Ratio(0, 1)).
		Sliding("winB", "cnt", agg.Avg, []core.Window{{Dim: 1, Lo: -1, Hi: 1}}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPartitionedMatchesSingleScan(t *testing.T) {
	s, recs, fact, dir := setup(t)
	c := partitionableWorkflow(t, s)
	want, err := singlescan.Run(c, &storage.SliceSource{Recs: recs}, singlescan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 4, 7} {
		res, err := Run(c, fact, Options{
			PartitionDim: 0, PartitionLevel: 1, Partitions: parts,
			SortKey: model.SortKey{{Dim: 0, Lvl: 0}, {Dim: 1, Lvl: 1}},
			TempDir: dir,
		})
		if err != nil {
			t.Fatalf("partitions=%d: %v", parts, err)
		}
		if res.Stats.Records != 3000 {
			t.Errorf("partitions=%d: records = %d", parts, res.Stats.Records)
		}
		for name, tbl := range want.Tables {
			if !tbl.Equal(res.Tables[name], 1e-9) {
				t.Fatalf("partitions=%d: measure %s differs", parts, name)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	s, _, fact, dir := setup(t)
	all := model.LevelALL

	cases := []struct {
		name  string
		build func(*core.Workflow)
		dim   int
		lvl   model.Level
		want  string
	}{
		{
			"global measure",
			func(w *core.Workflow) { w.Basic("g", model.Gran{all, 0, all}, agg.Count, -1) },
			0, 1, "D_ALL",
		},
		{
			"coarser than partition",
			func(w *core.Workflow) { w.Basic("c", model.Gran{2, all, all}, agg.Count, -1) },
			0, 1, "coarser than the partition unit",
		},
		{
			"window along partition dim",
			func(w *core.Workflow) {
				w.Basic("b", model.Gran{0, all, all}, agg.Count, -1)
				w.Sliding("w", "b", agg.Sum, []core.Window{{Dim: 0, Lo: -1, Hi: 1}})
			},
			0, 1, "sibling window along",
		},
	}
	for _, tc := range cases {
		w := core.NewWorkflow(s)
		tc.build(w)
		c, err := w.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", tc.name, err)
		}
		err = Validate(c, tc.dim, tc.lvl)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want mention of %q", tc.name, err, tc.want)
		}
		// Run must refuse too.
		if _, err := Run(c, fact, Options{PartitionDim: tc.dim, PartitionLevel: tc.lvl, Partitions: 2,
			SortKey: model.SortKey{{Dim: 0, Lvl: 0}}, TempDir: dir}); err == nil {
			t.Errorf("%s: Run accepted an invalid partitioning", tc.name)
		}
	}

	// Structural errors.
	w := core.NewWorkflow(s)
	w.Basic("b", model.Gran{0, all, all}, agg.Count, -1)
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(c, 9, 0); err == nil {
		t.Error("bad dimension accepted")
	}
	if err := Validate(c, 0, 99); err == nil {
		t.Error("bad level accepted")
	}
	if err := Validate(c, 0, model.LevelALL); err == nil {
		t.Error("partitioning on D_ALL accepted")
	}
	// Valid case passes.
	if err := Validate(c, 0, 1); err != nil {
		t.Errorf("valid partitioning rejected: %v", err)
	}
}

func TestMissingFact(t *testing.T) {
	s, _, _, dir := setup(t)
	c := partitionableWorkflow(t, s)
	if _, err := Run(c, filepath.Join(dir, "none.rec"), Options{
		PartitionDim: 0, PartitionLevel: 1, Partitions: 2,
		SortKey: model.SortKey{{Dim: 0, Lvl: 0}}, TempDir: dir,
	}); err == nil {
		t.Fatal("missing fact accepted")
	}
}
