package scan

import (
	"bytes"
	"testing"
)

// reassemble drives a Splitter with the given chunk sizes (cycled) and
// returns the emitted rows, copied out of the zero-copy views.
func reassemble(t *testing.T, rowBytes int, data []byte, chunks []int) ([][]byte, int) {
	t.Helper()
	sp := NewSplitter(rowBytes)
	var rows [][]byte
	var batch []Record
	off, ci := 0, 0
	for off < len(data) {
		n := 1
		if len(chunks) > 0 {
			n = chunks[ci%len(chunks)]
			ci++
		}
		if n < 1 {
			n = 1
		}
		if off+n > len(data) {
			n = len(data) - off
		}
		batch = sp.Split(data[off:off+n], batch[:0])
		for _, r := range batch {
			rows = append(rows, append([]byte(nil), r...))
		}
		off += n
	}
	return rows, sp.TailLen()
}

// TestSplitterAllChunkings slices a multi-row buffer at every fixed
// chunk size and requires the reassembled rows to be byte-identical to
// the unsplit layout, with the torn tail reported exactly.
func TestSplitterAllChunkings(t *testing.T) {
	// Disk row sizes matching both format versions of a small schema:
	// v1 payload-only (24) and v2 payload+CRC (28), plus awkward odd
	// sizes that never align with chunk boundaries.
	for _, rowBytes := range []int{1, 7, 24, 28} {
		data := make([]byte, rowBytes*9+rowBytes/2) // 9 rows + torn tail
		for i := range data {
			data[i] = byte(i * 131)
		}
		want := make([][]byte, 0, 9)
		for i := 0; i+rowBytes <= rowBytes*9; i += rowBytes {
			want = append(want, data[i:i+rowBytes])
		}
		for chunk := 1; chunk <= rowBytes*3+1; chunk++ {
			rows, tail := reassemble(t, rowBytes, data, []int{chunk})
			if tail != rowBytes/2 {
				t.Fatalf("rowBytes=%d chunk=%d: tail %d, want %d", rowBytes, chunk, tail, rowBytes/2)
			}
			if len(rows) != len(want) {
				t.Fatalf("rowBytes=%d chunk=%d: %d rows, want %d", rowBytes, chunk, len(rows), len(want))
			}
			for i := range rows {
				if !bytes.Equal(rows[i], want[i]) {
					t.Fatalf("rowBytes=%d chunk=%d: row %d differs", rowBytes, chunk, i)
				}
			}
		}
	}
}

// FuzzSplitter feeds arbitrary data through arbitrary chunkings —
// records straddling every chunk-boundary offset, torn tails of every
// length — and checks the splitter's single invariant: the emitted
// rows concatenated with the carried tail reproduce the input stream
// exactly, rowBytes at a time.
func FuzzSplitter(f *testing.F) {
	f.Add(uint8(24), []byte("0123456789abcdefghijklmnopqrstuvwxyz"), []byte{1, 24, 3})
	f.Add(uint8(28), bytes.Repeat([]byte{0xAA}, 100), []byte{27, 29})
	f.Add(uint8(1), []byte{}, []byte{})
	f.Add(uint8(7), bytes.Repeat([]byte{1, 2, 3}, 40), []byte{6, 8, 7, 1})
	f.Fuzz(func(t *testing.T, rb uint8, data []byte, chunking []byte) {
		rowBytes := int(rb)%64 + 1
		sp := NewSplitter(rowBytes)
		var got []byte
		var batch []Record
		off, ci := 0, 0
		for off < len(data) {
			n := 1
			if len(chunking) > 0 {
				n = int(chunking[ci%len(chunking)])
				ci++
			}
			if n < 1 {
				n = 1
			}
			if off+n > len(data) {
				n = len(data) - off
			}
			batch = sp.Split(data[off:off+n], batch[:0])
			for _, r := range batch {
				if len(r) != rowBytes {
					t.Fatalf("row of %d bytes, want %d", len(r), rowBytes)
				}
				got = append(got, r...)
			}
			off += n
		}
		if want := len(data) % rowBytes; sp.TailLen() != want {
			t.Fatalf("tail %d, want %d", sp.TailLen(), want)
		}
		if want := len(data) - len(data)%rowBytes; len(got) != want {
			t.Fatalf("emitted %d bytes, want %d", len(got), want)
		}
		if !bytes.Equal(got, data[:len(got)]) {
			t.Fatal("emitted rows differ from input stream")
		}
	})
}
