package scan

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/qguard"
	"awra/internal/storage"
)

// This file is the byte-level external sort under sortscan: rows never
// become model.Records. Each chunk precomputes the order-encoded
// comparator columns of every row — sort-key codes plus the base-dim
// tiebreak — into a flat uint64 array, sorts a permutation of row
// indices (no reflection, no record swaps — the 8-byte indices move,
// the 70-odd-byte rows don't), and writes the rows to the run file
// verbatim, checksums included. Comparisons, both in-chunk and in the
// k-way merge, walk only the precomputed columns: a few integer
// compares, never a row-byte decode or generalization call.
//
// The output reproduces storage.SortFile's order bit-identically:
// rows order by (sort-key codes, full base coordinates, original file
// position) — the same total order SliceStable plus the run-index
// merge tiebreak induces — so the engines' tables cannot tell the two
// sorts apart.

// SortOptions tunes SortFileByKey.
type SortOptions struct {
	// ChunkRecords is the number of records sorted in memory per run.
	// Zero selects a default sized for roughly 256 MB runs.
	ChunkRecords int
	// TempDir receives run files; empty uses the output's directory.
	TempDir string
	// Parallel sorts and writes run files on Workers goroutines while
	// the input keeps streaming.
	Parallel bool
	// Workers bounds the run-sorting goroutines (0 = GOMAXPROCS).
	Workers int
	// BatchBytes is the read-chunk size for the batched input readers
	// (0 = DefaultBatchBytes).
	BatchBytes int
	// Recorder, if non-nil, receives run/merge spans and the standard
	// sort metrics.
	Recorder *obs.Recorder
	// Guard, if non-nil, makes the sort cooperatively cancelable and
	// charges run files against the spill-byte budget.
	Guard *qguard.Guard
}

func (o SortOptions) chunk(diskRow int) int {
	if o.ChunkRecords > 0 {
		return o.ChunkRecords
	}
	if diskRow <= 0 {
		diskRow = 64
	}
	c := (256 << 20) / diskRow
	if c < 1024 {
		c = 1024
	}
	return c
}

// bsortSeq disambiguates run-file names across concurrent sorts in one
// process sharing a temp directory.
var bsortSeq atomic.Int64

// chunkSorter sorts a permutation of row indices by (precomputed
// comparator columns, original position). The columns carry the full
// tiebreak, so a comparison never touches row bytes: it walks one flat
// uint64 array. It implements sort.Interface with a concrete type, so
// sorting moves int32 indices with direct calls — no reflection-driven
// record swaps.
type chunkSorter struct {
	idx   []int32
	keys  []uint64 // kp per row, order-encoded comparator columns
	kp    int
	guard *qguard.Guard
	n     int
}

func (s *chunkSorter) Len() int      { return len(s.idx) }
func (s *chunkSorter) Swap(i, j int) { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }
func (s *chunkSorter) Less(i, j int) bool {
	if s.n++; s.n&4095 == 0 {
		s.guard.CheckAbort()
	}
	a, b := s.idx[i], s.idx[j]
	ka := s.keys[int(a)*s.kp : int(a)*s.kp+s.kp]
	kb := s.keys[int(b)*s.kp : int(b)*s.kp+s.kp]
	for t := 0; t < s.kp; t++ {
		if ka[t] != kb[t] {
			return ka[t] < kb[t]
		}
	}
	return a < b // original position: reproduces SliceStable
}

// radixMaxRange caps a column's counting range at 1<<21 counters
// (8 MB of int32): dimension codes are dense small integers in every
// realistic schema, and beyond this the counter memory and scatter
// locality stop beating the comparison sort.
const radixMaxRange = 1 << 21

// radixSortIdx stable-sorts idx by the kp precomputed key columns
// using an LSD counting sort, one pass per column starting from the
// least significant. The identity start order supplies the
// original-position tiebreak and counting-sort stability preserves it
// through every pass, so the permutation is bit-identical to the
// comparison sort's. Returns false with idx untouched when a column's
// value range is too wide to count cheaply.
func radixSortIdx(idx []int32, keys []uint64, kp int, guard *qguard.Guard) bool {
	n := len(idx)
	if kp == 0 || n < 4096 {
		return false
	}
	lo := make([]uint64, kp)
	hi := make([]uint64, kp)
	copy(lo, keys[:kp])
	copy(hi, keys[:kp])
	for i := 1; i < n; i++ {
		row := keys[i*kp : i*kp+kp]
		for t, v := range row {
			if v < lo[t] {
				lo[t] = v
			}
			if v > hi[t] {
				hi[t] = v
			}
		}
	}
	for t := 0; t < kp; t++ {
		if hi[t]-lo[t] >= radixMaxRange {
			return false
		}
	}
	// Fuse adjacent columns right-to-left while the composite range
	// stays countable: one scatter pass then orders several columns at
	// once. (Ranges are each ≤ 2^21, so the product test cannot
	// overflow.)
	type radixPass struct {
		t0, t1 int
		rng    uint64
	}
	var passes []radixPass
	var maxRange uint64
	for t := kp - 1; t >= 0; {
		rng := hi[t] - lo[t] + 1
		t0 := t
		for t0 > 0 {
			r2 := hi[t0-1] - lo[t0-1] + 1
			if rng*r2 > radixMaxRange {
				break
			}
			rng *= r2
			t0--
		}
		passes = append(passes, radixPass{t0: t0, t1: t, rng: rng})
		if rng > maxRange {
			maxRange = rng
		}
		t = t0 - 1
	}
	tmp := make([]int32, n)
	cnt := make([]int32, maxRange)
	src, dst := idx, tmp
	for _, p := range passes {
		guard.CheckAbort()
		c := cnt[:p.rng]
		for i := range c {
			c[i] = 0
		}
		val := func(row int32) uint64 {
			v := keys[int(row)*kp+p.t0] - lo[p.t0]
			for t := p.t0 + 1; t <= p.t1; t++ {
				v = v*(hi[t]-lo[t]+1) + (keys[int(row)*kp+t] - lo[t])
			}
			return v
		}
		for _, row := range src {
			c[val(row)]++
		}
		var sum int32
		for i := range c {
			v := c[i]
			c[i] = sum
			sum += v
		}
		for _, row := range src {
			b := val(row)
			dst[c[b]] = row
			c[b]++
		}
		src, dst = dst, src
	}
	if len(passes)%2 == 1 {
		copy(idx, src)
	}
	return true
}

// sortCols is the full comparator column set: the sort key's parts
// followed by every base dimension not already pinned by a level-0 key
// part, ascending. Ordering rows by (cols, original position) equals
// the storage.SortFile order (key codes, full base coordinates,
// position): a base dimension covered by a level-0 part is equal
// whenever that part is, so dropping it never changes a comparison.
type sortCols struct {
	parts []model.SortPart
	dims  []*model.Dimension
}

func newSortCols(schema *model.Schema, key model.SortKey, numDims int) sortCols {
	covered := make([]bool, numDims)
	for _, p := range key {
		if p.Lvl == 0 {
			covered[p.Dim] = true
		}
	}
	parts := append([]model.SortPart{}, key...)
	for d := 0; d < numDims; d++ {
		if !covered[d] {
			parts = append(parts, model.SortPart{Dim: d, Lvl: 0})
		}
	}
	c := sortCols{parts: parts, dims: make([]*model.Dimension, len(parts))}
	for t, p := range parts {
		c.dims[t] = schema.Dim(p.Dim)
	}
	return c
}

// appendRow appends the row's order-encoded comparator columns to dst.
func (c sortCols) appendRow(dst []uint64, row Record) []uint64 {
	for t, p := range c.parts {
		v := row.Dim(p.Dim)
		if p.Lvl != 0 {
			v = c.dims[t].Up(0, p.Lvl, v)
		}
		dst = append(dst, uint64(v)^(1<<63))
	}
	return dst
}

// loadRow overwrites dst (length len(c.parts)) with the row's columns.
func (c sortCols) loadRow(dst []uint64, row Record) {
	for t, p := range c.parts {
		v := row.Dim(p.Dim)
		if p.Lvl != 0 {
			v = c.dims[t].Up(0, p.Lvl, v)
		}
		dst[t] = uint64(v) ^ (1 << 63)
	}
}

// chunkState is one in-memory run: rows plus their precomputed keys.
type chunkState struct {
	rows []byte
	keys []uint64
	n    int
}

// SortFileByKey external-sorts a record file by the (normalized) sort
// key, writing rows to the output verbatim. See the file comment for
// the ordering contract.
func SortFileByKey(inPath, outPath string, schema *model.Schema, key model.SortKey, opts SortOptions) (storage.SortStats, error) {
	var stats storage.SortStats
	rec := opts.Recorder
	guard := opts.Guard
	in, err := Open(inPath, Options{BatchBytes: opts.BatchBytes, Guard: guard, RawRows: true})
	if err != nil {
		return stats, err
	}
	defer in.Close()
	hdr := in.Header()
	diskRow := hdr.DiskRowBytes()
	payloadRow := hdr.RowBytes()
	cols := newSortCols(schema, key, hdr.NumDims)
	kp := len(cols.parts)
	chunk := opts.chunk(diskRow)
	tempDir := opts.TempDir
	if tempDir == "" {
		tempDir = filepath.Dir(outPath)
	}

	var (
		runPaths []string
		runSeq   int
		wg       sync.WaitGroup
		errMu    sync.Mutex
		workErr  error
		sem      chan struct{}
	)
	setErr := func(err error) {
		errMu.Lock()
		if workErr == nil {
			workErr = err
		}
		errMu.Unlock()
	}
	getErr := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return workErr
	}
	defer func() {
		wg.Wait()
		for _, p := range runPaths {
			os.Remove(p)
		}
	}()
	if opts.Parallel {
		w := opts.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		sem = make(chan struct{}, w)
	}
	runsSpan := rec.Start(obs.SpanSortRuns)
	spillEvents := rec.Counter(obs.MSpillEvents)
	spillBytes := rec.Counter(obs.MSpillBytes)
	sortID := bsortSeq.Add(1)

	// writeRun index-sorts one chunk (private stride counter per call)
	// and spills its rows in order, charging the spill budget.
	writeRun := func(cs *chunkState, path string) (err error) {
		defer qguard.RecoverAbort(&err)
		srt := &chunkSorter{
			idx:   make([]int32, cs.n),
			keys:  cs.keys,
			kp:    kp,
			guard: guard,
		}
		for i := range srt.idx {
			srt.idx[i] = int32(i)
		}
		if !radixSortIdx(srt.idx, cs.keys, kp, guard) {
			sort.Sort(srt)
		}
		runBytes := int64(cs.n) * int64(payloadRow)
		spillEvents.Add(1)
		spillBytes.Add(runBytes)
		if err := guard.NoteSpill(runBytes); err != nil {
			return err
		}
		w, err := storage.CreateRaw(path, storage.Header{
			NumDims: hdr.NumDims, NumMeasures: hdr.NumMeasures, Version: hdr.Version,
		})
		if err != nil {
			return err
		}
		for _, i := range srt.idx {
			if err := w.WriteRow(cs.rows[int(i)*diskRow : int(i)*diskRow+diskRow]); err != nil {
				w.Close()
				return err
			}
		}
		return w.Close()
	}

	cur := &chunkState{rows: make([]byte, 0, chunk*diskRow), keys: make([]uint64, 0, chunk*kp)}
	flushRun := func() error {
		if cur.n == 0 {
			return nil
		}
		p := filepath.Join(tempDir, fmt.Sprintf("awra-bsort-%d-%d-%d.tmp", os.Getpid(), sortID, runSeq))
		runSeq++
		runPaths = append(runPaths, p)
		if !opts.Parallel {
			err := writeRun(cur, p)
			cur.rows, cur.keys, cur.n = cur.rows[:0], cur.keys[:0], 0
			return err
		}
		if err := getErr(); err != nil {
			return err
		}
		cs := cur
		cur = &chunkState{rows: make([]byte, 0, chunk*diskRow), keys: make([]uint64, 0, chunk*kp)}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					setErr(fmt.Errorf("scan: run writer panic: %v", r))
				}
			}()
			if err := writeRun(cs, p); err != nil {
				setErr(err)
			}
		}()
		return nil
	}

	// Phase 1: read batches, append rows and their encoded keys to the
	// current chunk, spill full chunks as sorted runs.
	for {
		batch, err := in.NextBatch()
		if err != nil {
			return stats, err
		}
		if batch == nil {
			break
		}
		for _, row := range batch {
			stats.Records++
			cur.rows = append(cur.rows, row...)
			cur.keys = cols.appendRow(cur.keys, row)
			cur.n++
			if cur.n >= chunk {
				if err := flushRun(); err != nil {
					return stats, err
				}
			}
		}
	}

	outHdr := storage.Header{NumDims: hdr.NumDims, NumMeasures: hdr.NumMeasures, Version: hdr.Version}

	// Single-run fast path: everything fit in one chunk; sort it and
	// write the output directly.
	if len(runPaths) == 0 {
		var sortErr error
		srt := &chunkSorter{
			idx:   make([]int32, cur.n),
			keys:  cur.keys,
			kp:    kp,
			guard: guard,
		}
		for i := range srt.idx {
			srt.idx[i] = int32(i)
		}
		func() {
			defer qguard.RecoverAbort(&sortErr)
			if !radixSortIdx(srt.idx, cur.keys, kp, guard) {
				sort.Sort(srt)
			}
		}()
		if sortErr != nil {
			return stats, sortErr
		}
		// The sorted output is disk the query consumed even without
		// spilled runs; charge it so MaxSpillBytes bounds total sort I/O.
		if err := guard.NoteSpill(int64(cur.n) * int64(payloadRow)); err != nil {
			return stats, err
		}
		w, err := storage.CreateRaw(outPath, outHdr)
		if err != nil {
			return stats, err
		}
		for _, i := range srt.idx {
			if err := w.WriteRow(cur.rows[int(i)*diskRow : int(i)*diskRow+diskRow]); err != nil {
				w.Close()
				os.Remove(outPath)
				return stats, err
			}
		}
		if err := w.Close(); err != nil {
			os.Remove(outPath)
			return stats, err
		}
		stats.Runs = 1
		runsSpan.End()
		rec.Counter(obs.MSortRuns).Add(1)
		return stats, nil
	}

	if err := flushRun(); err != nil {
		return stats, err
	}
	wg.Wait()
	runsSpan.End()
	if err := getErr(); err != nil {
		return stats, err
	}
	stats.Runs = len(runPaths)
	rec.Counter(obs.MSortRuns).Add(int64(stats.Runs))
	if err := guard.NoteSpill(stats.Records * int64(payloadRow)); err != nil {
		return stats, err
	}

	// Phase 2: k-way merge of the runs, comparing precomputed head
	// keys. Run readers carry the guard, so the merge observes
	// cancellation through their per-batch checks.
	mergeSpan := rec.Start(obs.SpanMerge)
	mergeSpan.SetAttr("runs", fmt.Sprint(len(runPaths)))
	cmps, err := mergeRuns(runPaths, outPath, outHdr, cols, opts, guard)
	rec.Counter(obs.MHeapComparisons).Add(cmps)
	mergeSpan.End()
	if err != nil {
		os.Remove(outPath)
		return stats, err
	}
	return stats, nil
}

// mergeSrc is one run's read cursor with its head row's comparator
// columns decoded.
type mergeSrc struct {
	r     *Reader
	batch []Record
	pos   int
	key   []uint64
	row   Record
	done  bool
}

func (s *mergeSrc) load(cols sortCols) error {
	if s.pos >= len(s.batch) {
		b, err := s.r.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			s.done = true
			return nil
		}
		s.batch, s.pos = b, 0
	}
	s.row = s.batch[s.pos]
	s.pos++
	cols.loadRow(s.key, s.row)
	return nil
}

// mergeRuns merges sorted runs into outPath, returning the number of
// head comparisons (the merge-cost metric).
func mergeRuns(runPaths []string, outPath string, outHdr storage.Header, cols sortCols, opts SortOptions, guard *qguard.Guard) (int64, error) {
	kp := len(cols.parts)
	srcs := make([]*mergeSrc, 0, len(runPaths))
	defer func() {
		for _, s := range srcs {
			s.r.Close()
		}
	}()
	var heapIdx []int
	for i, p := range runPaths {
		r, err := Open(p, Options{BatchBytes: opts.BatchBytes, Guard: guard, RawRows: true})
		if err != nil {
			return 0, err
		}
		s := &mergeSrc{r: r, key: make([]uint64, kp)}
		srcs = append(srcs, s)
		if err := s.load(cols); err != nil {
			return 0, err
		}
		if !s.done {
			heapIdx = append(heapIdx, i)
		}
	}

	var cmps int64
	// less orders heap entries by (head columns, run index) — the
	// columns carry the base-coordinate tiebreak, and run index
	// reproduces the stable merge of storage's heap.
	less := func(a, b int) bool {
		cmps++
		sa, sb := srcs[a], srcs[b]
		for t := 0; t < kp; t++ {
			if sa.key[t] != sb.key[t] {
				return sa.key[t] < sb.key[t]
			}
		}
		return a < b
	}
	siftDown := func(h []int, i int) {
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(h) && less(h[l], h[small]) {
				small = l
			}
			if r < len(h) && less(h[r], h[small]) {
				small = r
			}
			if small == i {
				return
			}
			h[i], h[small] = h[small], h[i]
			i = small
		}
	}
	for i := len(heapIdx)/2 - 1; i >= 0; i-- {
		siftDown(heapIdx, i)
	}

	w, err := storage.CreateRaw(outPath, outHdr)
	if err != nil {
		return cmps, err
	}
	for len(heapIdx) > 0 {
		top := heapIdx[0]
		if err := w.WriteRow(srcs[top].row); err != nil {
			w.Close()
			return cmps, err
		}
		if err := srcs[top].load(cols); err != nil {
			w.Close()
			return cmps, err
		}
		if srcs[top].done {
			heapIdx[0] = heapIdx[len(heapIdx)-1]
			heapIdx = heapIdx[:len(heapIdx)-1]
		}
		if len(heapIdx) > 0 {
			siftDown(heapIdx, 0)
		}
	}
	return cmps, w.Close()
}
