package scan

import "awra/internal/obs"

// PublishReadStats flushes a batched source's chunk tallies into the
// recorder under the standard hot-path metric names — once, at a phase
// boundary, never per batch or per row. Sources that are not chunked
// readers (in-memory batchers) publish nothing. Nil-safe on rec.
func PublishReadStats(rec *obs.Recorder, src BatchSource) {
	rs, ok := src.(interface{ ReadStats() ReadStats })
	if !ok {
		return
	}
	st := rs.ReadStats()
	if st.Chunks == 0 {
		return
	}
	rec.Counter(obs.MScanChunks).Add(st.Chunks)
	rec.Counter(obs.MScanBytes).Add(st.BytesRead)
	rec.Gauge(obs.GScanBatchFill).Set(st.FillPermille)
}
