package scan

import (
	"encoding/binary"
	"math"

	"awra/internal/model"
	"awra/internal/storage"
)

// batcherRecords is how many records a Batcher encodes per batch —
// small enough to stay cache-resident, large enough that the engines'
// per-batch bookkeeping amortizes like it does for file chunks.
const batcherRecords = 512

// Batcher adapts a row-at-a-time storage.Source (in-memory slices,
// merge streams, already-open readers) to the batched Record view, so
// engines run one byte-level hot loop regardless of where records come
// from. Records are re-encoded into the row layout; for in-memory
// sources that costs one fixed-width copy per record, which the
// batched decode-free scan more than wins back.
type Batcher struct {
	src         storage.Source
	numDims     int
	numMeasures int
	rowBytes    int
	buf         []byte
	rows        []Record
	rec         model.Record
	done        bool
}

// NewBatcher wraps src, whose records must have the given shape.
func NewBatcher(src storage.Source, numDims, numMeasures int) *Batcher {
	rb := 8 * (numDims + numMeasures)
	return &Batcher{
		src:         src,
		numDims:     numDims,
		numMeasures: numMeasures,
		rowBytes:    rb,
		buf:         make([]byte, batcherRecords*rb),
		rows:        make([]Record, 0, batcherRecords),
	}
}

// TotalRecords exposes the wrapped source's progress denominator when
// it has one.
func (b *Batcher) TotalRecords() int64 {
	if tc, ok := b.src.(interface{ TotalRecords() int64 }); ok {
		return tc.TotalRecords()
	}
	return 0
}

// NextBatch encodes up to a batch of records from the source. Views
// are valid until the next call.
func (b *Batcher) NextBatch() ([]Record, error) {
	if b.done {
		return nil, nil
	}
	b.rows = b.rows[:0]
	off := 0
	for len(b.rows) < batcherRecords {
		ok, err := b.src.Next(&b.rec)
		if err != nil {
			return nil, err
		}
		if !ok {
			b.done = true
			break
		}
		row := b.buf[off : off+b.rowBytes]
		for i, v := range b.rec.Dims {
			binary.LittleEndian.PutUint64(row[8*i:], uint64(v))
		}
		mo := 8 * len(b.rec.Dims)
		for i, v := range b.rec.Ms {
			binary.LittleEndian.PutUint64(row[mo+8*i:], math.Float64bits(v))
		}
		b.rows = append(b.rows, Record(row))
		off += b.rowBytes
	}
	if len(b.rows) == 0 {
		return nil, nil
	}
	return b.rows, nil
}
