package scan

// Splitter reassembles fixed-width disk rows from arbitrarily-sized
// byte chunks. Chunks need not align with row boundaries: a row
// straddling two (or more) chunks is carried across Split calls and
// emitted once complete. Rows fully contained in a chunk are emitted
// as zero-copy views into it; at most one row per Split call (the
// straddler) is assembled in an internal scratch buffer.
//
// The Splitter is deliberately free-standing (no file, no header) so
// the fuzzer can drive it with every chunking of every well- and
// ill-formed tail; Reader is a thin loop around it.
type Splitter struct {
	rowBytes int
	tail     []byte
	scratch  []byte
}

// NewSplitter returns a splitter for rows of rowBytes bytes.
func NewSplitter(rowBytes int) *Splitter {
	if rowBytes <= 0 {
		panic("scan: splitter row size must be positive")
	}
	return &Splitter{rowBytes: rowBytes}
}

// Split appends the complete rows visible in (carried tail + chunk) to
// dst and retains any trailing partial row for the next call. Emitted
// views point into chunk (or the splitter's scratch buffer for the one
// row that straddled the previous boundary) and are valid until the
// next Split call.
func (s *Splitter) Split(chunk []byte, dst []Record) []Record {
	if len(s.tail) > 0 {
		need := s.rowBytes - len(s.tail)
		if len(chunk) < need {
			s.tail = append(s.tail, chunk...)
			return dst
		}
		s.scratch = append(s.scratch[:0], s.tail...)
		s.scratch = append(s.scratch, chunk[:need]...)
		s.tail = s.tail[:0]
		chunk = chunk[need:]
		dst = append(dst, Record(s.scratch))
	}
	whole := len(chunk) / s.rowBytes * s.rowBytes
	for off := 0; off < whole; off += s.rowBytes {
		dst = append(dst, Record(chunk[off:off+s.rowBytes]))
	}
	s.tail = append(s.tail[:0], chunk[whole:]...)
	return dst
}

// TailLen reports how many bytes of an incomplete row are currently
// carried; nonzero after the final chunk means a torn write.
func (s *Splitter) TailLen() int { return len(s.tail) }
