package scan

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"awra/internal/model"
	"awra/internal/qguard"
	"awra/internal/storage"
)

func randRecords(n, dims, ms int, seed int64) []model.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]model.Record, n)
	for i := range recs {
		r := model.Record{Dims: make([]int64, dims), Ms: make([]float64, ms)}
		for j := range r.Dims {
			r.Dims[j] = rng.Int63n(1000)
		}
		for j := range r.Ms {
			r.Ms[j] = float64(rng.Intn(100))
		}
		recs[i] = r
	}
	return recs
}

func writeFile(t *testing.T, path string, recs []model.Record, dims, ms int) {
	t.Helper()
	w, err := storage.Create(path, dims, ms)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// readAllBatched drains a Reader into decoded records.
func readAllBatched(t *testing.T, r *Reader, dims, ms int) []model.Record {
	t.Helper()
	var out []model.Record
	for {
		batch, err := r.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			return out
		}
		for _, row := range batch {
			rec := model.Record{Dims: make([]int64, dims), Ms: make([]float64, ms)}
			row.DecodeInto(rec.Dims, rec.Ms)
			out = append(out, rec)
		}
	}
}

func sameRecords(a, b []model.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i].Dims {
			if a[i].Dims[j] != b[i].Dims[j] {
				return false
			}
		}
		for j := range a[i].Ms {
			if a[i].Ms[j] != b[i].Ms[j] {
				return false
			}
		}
	}
	return true
}

// TestReaderMatchesRowDecoder: the batched reader must deliver exactly
// the records the row-at-a-time storage reader does, across batch
// sizes that do and do not align with row boundaries.
func TestReaderMatchesRowDecoder(t *testing.T) {
	dir := t.TempDir()
	recs := randRecords(3000, 3, 2, 1)
	path := filepath.Join(dir, "f.rec")
	writeFile(t, path, recs, 3, 2)

	want, _, err := storage.ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, bb := range []int{0, MinBatchBytes, MinBatchBytes + 13} {
		r, err := Open(path, Options{BatchBytes: bb})
		if err != nil {
			t.Fatal(err)
		}
		got := readAllBatched(t, r, 3, 2)
		r.Close()
		if !sameRecords(want, got) {
			t.Fatalf("BatchBytes=%d: batched rows differ from row decoder", bb)
		}
		if r.TotalRecords() != int64(len(recs)) {
			t.Fatalf("TotalRecords = %d, want %d", r.TotalRecords(), len(recs))
		}
	}
}

// writeV1File hand-writes a version-1 (checksum-less) record file.
func writeV1File(t *testing.T, path string, recs []model.Record, dims, ms int) {
	t.Helper()
	buf := make([]byte, 32, 32+len(recs)*8*(dims+ms))
	copy(buf, "AWRA")
	binary.LittleEndian.PutUint32(buf[4:], 1)
	binary.LittleEndian.PutUint32(buf[8:], uint32(dims))
	binary.LittleEndian.PutUint32(buf[12:], uint32(ms))
	binary.LittleEndian.PutUint64(buf[16:], uint64(len(recs)))
	var row [8]byte
	for _, r := range recs {
		for _, v := range r.Dims {
			binary.LittleEndian.PutUint64(row[:], uint64(v))
			buf = append(buf, row[:]...)
		}
		for _, v := range r.Ms {
			binary.LittleEndian.PutUint64(row[:], math.Float64bits(v))
			buf = append(buf, row[:]...)
		}
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReaderVersion1: checksum-less v1 files read identically through
// the batched reader (rows have no CRC suffix to strip or verify).
func TestReaderVersion1(t *testing.T) {
	dir := t.TempDir()
	recs := randRecords(500, 2, 1, 2)
	path := filepath.Join(dir, "v1.rec")
	writeV1File(t, path, recs, 2, 1)

	r, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Header().Version != 1 {
		t.Fatalf("version %d, want 1", r.Header().Version)
	}
	got := readAllBatched(t, r, 2, 1)
	if !sameRecords(recs, got) {
		t.Fatal("v1 rows differ")
	}
}

// TestReaderCorruptRow: a flipped payload byte in a v2 file fails the
// row's CRC — an error by default, a skip under a degraded-read guard.
func TestReaderCorruptRow(t *testing.T) {
	dir := t.TempDir()
	recs := randRecords(100, 2, 1, 3)
	path := filepath.Join(dir, "c.rec")
	writeFile(t, path, recs, 2, 1)

	// Flip one byte in the middle of row 40's payload.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diskRow := 8*3 + 4
	raw[32+40*diskRow+5] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.NextBatch()
	r.Close()
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("corrupt row: got %v, want ErrCorrupt", err)
	}

	g := qguard.New(context.Background(), qguard.Limits{SkipCorruptRows: true})
	r, err = Open(path, Options{Guard: g})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := readAllBatched(t, r, 2, 1)
	if len(got) != len(recs)-1 {
		t.Fatalf("degraded read kept %d rows, want %d", len(got), len(recs)-1)
	}
	if r.CorruptSkipped() != 1 {
		t.Fatalf("CorruptSkipped = %d, want 1", r.CorruptSkipped())
	}
}

// TestReaderTornTail: a file truncated mid-row reads as corrupt, not
// as a silent short result.
func TestReaderTornTail(t *testing.T) {
	dir := t.TempDir()
	recs := randRecords(50, 2, 1, 4)
	path := filepath.Join(dir, "torn.rec")
	writeFile(t, path, recs, 2, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for {
		batch, err := r.NextBatch()
		if err != nil {
			if !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("torn tail: got %v, want ErrCorrupt", err)
			}
			return
		}
		if batch == nil {
			t.Fatal("torn file read to completion without error")
		}
	}
}

// TestBatcherRoundTrip: the in-memory adapter yields the same view
// layout as the file reader.
func TestBatcherRoundTrip(t *testing.T) {
	recs := randRecords(1300, 4, 2, 5)
	b := NewBatcher(&storage.SliceSource{Recs: recs}, 4, 2)
	var got []model.Record
	for {
		batch, err := b.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			break
		}
		for _, row := range batch {
			rec := model.Record{Dims: make([]int64, 4), Ms: make([]float64, 2)}
			row.DecodeInto(rec.Dims, rec.Ms)
			got = append(got, rec)
		}
	}
	if !sameRecords(recs, got) {
		t.Fatal("batcher rows differ from source records")
	}
}
