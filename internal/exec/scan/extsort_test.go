package scan

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"awra/internal/model"
	"awra/internal/storage"
)

// TestRadixSortMatchesComparison: the LSD counting sort must produce
// the exact permutation of the comparison sort (stability + identity
// start order = original-position tiebreak), across column counts and
// duplicate-heavy distributions.
func TestRadixSortMatchesComparison(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct {
		n, kp  int
		ranges []uint64
	}{
		{5000, 1, []uint64{100}},
		{5000, 2, []uint64{7, 500000}},
		{8192, 3, []uint64{2, 3, 50}}, // heavy duplicates, fused passes
		{4096, 2, []uint64{1, 1}},     // all-equal columns
	} {
		keys := make([]uint64, tc.n*tc.kp)
		for i := 0; i < tc.n; i++ {
			for j, r := range tc.ranges {
				keys[i*tc.kp+j] = uint64(rng.Int63n(int64(r))) + (1 << 63)
			}
		}
		radix := make([]int32, tc.n)
		cmp := make([]int32, tc.n)
		for i := range radix {
			radix[i] = int32(i)
			cmp[i] = int32(i)
		}
		if !radixSortIdx(radix, keys, tc.kp, nil) {
			t.Fatalf("n=%d kp=%d: radix sort refused narrow ranges", tc.n, tc.kp)
		}
		sort.Sort(&chunkSorter{idx: cmp, keys: keys, kp: tc.kp})
		for i := range radix {
			if radix[i] != cmp[i] {
				t.Fatalf("n=%d kp=%d: permutation differs at %d: %d vs %d",
					tc.n, tc.kp, i, radix[i], cmp[i])
			}
		}
	}
}

// TestRadixSortFallsBack: wide value ranges and small inputs must
// refuse (return false, idx untouched) so the caller keeps the
// comparison sort.
func TestRadixSortFallsBack(t *testing.T) {
	n := 5000
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i) * (radixMaxRange / 2) // range >> radixMaxRange
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(n - 1 - i)
	}
	if radixSortIdx(idx, keys, 1, nil) {
		t.Fatal("radix sort accepted a range above radixMaxRange")
	}
	for i := range idx {
		if idx[i] != int32(n-1-i) {
			t.Fatal("refused sort mutated idx")
		}
	}
	small := []int32{2, 0, 1}
	if radixSortIdx(small, []uint64{5, 1, 3}, 1, nil) {
		t.Fatal("radix sort accepted a tiny input (comparison sort is faster there)")
	}
}

// TestSortFileByKeyMatchesRecordSort: the byte-level external sort
// must order records exactly as the record-level storage.SortFile
// under the same key — including the full-order tiebreak (key, then
// all base dims, then position) the engines' append-only cell path
// relies on. Covered on both the single-run and multi-run merge paths.
func TestSortFileByKeyMatchesRecordSort(t *testing.T) {
	dims := []*model.Dimension{
		model.FixedFanout("A", 4, 3),
		model.FixedFanout("B", 4, 3),
		model.FixedFanout("C", 4, 3),
	}
	s, err := model.NewSchema(dims, "m")
	if err != nil {
		t.Fatal(err)
	}
	recs := randRecords(9000, 3, 1, 7)
	// Duplicate a slice of records so ties are common and the tiebreak
	// order actually matters.
	recs = append(recs, recs[:1500]...)
	dir := t.TempDir()
	fact := filepath.Join(dir, "fact.rec")
	writeFile(t, fact, recs, 3, 1)

	key := model.SortKey{{Dim: 0, Lvl: 1}, {Dim: 2, Lvl: 0}}
	nk, err := key.Normalize(s)
	if err != nil {
		t.Fatal(err)
	}
	oldOut := filepath.Join(dir, "old.sorted")
	less := func(a, b *model.Record) bool { return nk.RecordLess(s, a, b) }
	if _, err := storage.SortFile(fact, oldOut, less, storage.SortOptions{TempDir: dir}); err != nil {
		t.Fatal(err)
	}
	want, _, err := storage.ReadAll(oldOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{0, 1000} { // single run; multi-run merge
		newOut := filepath.Join(dir, "new.sorted")
		if _, err := SortFileByKey(fact, newOut, s, nk, SortOptions{TempDir: dir, ChunkRecords: chunk}); err != nil {
			t.Fatal(err)
		}
		got, _, err := storage.ReadAll(newOut)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRecords(want, got) {
			t.Fatalf("ChunkRecords=%d: byte sort order differs from record sort", chunk)
		}
	}
}
