// Package scan is the batched record pipeline under the engines: it
// reads fact files in large chunks through storage.FileSystem, splits
// the chunks at record boundaries, verifies each row's CRC32-C in
// place, and hands engines batches of zero-copy byte-slice row views
// instead of one decoded model.Record at a time. Per-row work drops to
// the aggregate updates themselves; guard checks (cancellation,
// budgets) move to batch boundaries.
//
// The same Record view is produced by Batcher for in-memory and
// streaming sources, so engines keep exactly one hot loop.
package scan

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"awra/internal/qguard"
	"awra/internal/storage"
)

// Record is a zero-copy view of one row's payload bytes: NumDims
// little-endian int64 codes followed by NumMeasures little-endian
// float64 values. Views are valid only until the next NextBatch call
// on their producer.
type Record []byte

// Dim returns the record's base code for dimension i.
func (r Record) Dim(i int) int64 {
	return int64(binary.LittleEndian.Uint64(r[8*i:]))
}

// Measure returns measure i of a record with numDims dimensions.
func (r Record) Measure(numDims, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(r[8*(numDims+i):]))
}

// DecodeInto fills a dims/measures pair from the row (for cold paths
// that need a materialized record, e.g. filter evaluation).
func (r Record) DecodeInto(dims []int64, ms []float64) {
	for i := range dims {
		dims[i] = int64(binary.LittleEndian.Uint64(r[8*i:]))
	}
	off := 8 * len(dims)
	for i := range ms {
		ms[i] = math.Float64frombits(binary.LittleEndian.Uint64(r[off+8*i:]))
	}
}

// BatchSource is a stream of record batches. A (nil, nil) return means
// end of input. Returned views are valid until the next call.
type BatchSource interface {
	NextBatch() ([]Record, error)
}

// DefaultBatchBytes is the chunk size Open reads per batch when the
// caller does not override it: large enough to amortize syscall and
// split overhead, small enough to stay cache- and memory-friendly per
// concurrent query.
const DefaultBatchBytes = 4 << 20

// MinBatchBytes is the smallest usable chunk size; Open clamps smaller
// requests (a chunk must at least hold one disk row, and tiny chunks
// defeat the batching).
const MinBatchBytes = 64 << 10

// Options configures a Reader.
type Options struct {
	// BatchBytes is the read-chunk size (0 = DefaultBatchBytes; values
	// below MinBatchBytes are clamped up).
	BatchBytes int
	// Guard, if non-nil, is checked once per batch for cancellation,
	// and its degraded-read policy decides whether checksum-failing
	// rows are skipped and counted or fail the read.
	Guard *qguard.Guard
	// RawRows emits full disk rows (checksum suffix included) instead
	// of payload views. The byte sort uses it to move verified rows
	// verbatim, checksums travelling with them.
	RawRows bool
}

// Reader reads a record file in large chunks and yields batches of
// verified zero-copy row views.
type Reader struct {
	f        storage.File
	hdr      storage.Header
	sp       *Splitter
	buf      []byte
	rows     []Record
	disk     []Record
	rowBytes int // payload size
	emit     int // emitted view size (payload, or full disk row)
	seen     int64
	corrupt  int64
	// chunks/bytesRead tally the batched read pattern in plain fields
	// (one increment per NextBatch, never per row); engines publish
	// them at phase boundaries via ReadStats.
	chunks    int64
	bytesRead int64
	guard     *qguard.Guard
	eof       bool
}

// ReadStats is a point-in-time view of a reader's batched-read tallies.
// It is flight-recorder food: engines read it once per phase boundary
// and publish under the standard metric names, so the batching behavior
// (chunk count, bytes moved, average chunk fill) of the hot path is
// observable without any per-row instrumentation.
type ReadStats struct {
	// Chunks is the number of read chunks consumed so far.
	Chunks int64
	// BytesRead is the total bytes filled into chunk buffers.
	BytesRead int64
	// Records is the number of rows delivered (corrupt-skipped rows
	// excluded).
	Records int64
	// CorruptRows is the number of checksum-failing rows skipped in
	// degraded mode.
	CorruptRows int64
	// FillPermille is the average chunk fill ratio in permille (1000 =
	// every chunk read completely full); the final, partial chunk of a
	// file drags it below 1000.
	FillPermille int64
}

// ReadStats snapshots the reader's batched-read tallies.
func (r *Reader) ReadStats() ReadStats {
	st := ReadStats{
		Chunks:      r.chunks,
		BytesRead:   r.bytesRead,
		Records:     r.seen - r.corrupt,
		CorruptRows: r.corrupt,
	}
	if r.chunks > 0 && len(r.buf) > 0 {
		st.FillPermille = r.bytesRead * 1000 / (r.chunks * int64(len(r.buf)))
	}
	return st
}

// Open opens a record file for batched reading through the active
// storage FileSystem and validates its header.
func Open(path string, opts Options) (*Reader, error) {
	f, hdr, err := storage.OpenRaw(path)
	if err != nil {
		return nil, err
	}
	bb := opts.BatchBytes
	if bb <= 0 {
		bb = DefaultBatchBytes
	}
	if bb < MinBatchBytes {
		bb = MinBatchBytes
	}
	if db := hdr.DiskRowBytes(); bb < db {
		bb = db
	}
	emit := hdr.RowBytes()
	if opts.RawRows {
		emit = hdr.DiskRowBytes()
	}
	return &Reader{
		f:        f,
		hdr:      hdr,
		sp:       NewSplitter(hdr.DiskRowBytes()),
		buf:      make([]byte, bb),
		rowBytes: hdr.RowBytes(),
		emit:     emit,
		guard:    opts.Guard,
	}, nil
}

// Header returns the file's header.
func (r *Reader) Header() storage.Header { return r.hdr }

// TotalRecords returns the header's record count (the progress
// denominator).
func (r *Reader) TotalRecords() int64 { return r.hdr.Count }

// CorruptSkipped returns how many checksum-failing rows this reader
// skipped in degraded mode.
func (r *Reader) CorruptSkipped() int64 { return r.corrupt }

// NextBatch reads one chunk and returns the verified row views in it.
// It returns (nil, nil) once the header's record count has been
// delivered. Rows failing their checksum return storage.ErrCorrupt,
// or are skipped and counted when the guard enables degraded reads.
func (r *Reader) NextBatch() ([]Record, error) {
	for {
		if r.seen >= r.hdr.Count {
			return nil, nil
		}
		if err := r.guard.Err(); err != nil {
			return nil, err
		}
		if r.eof {
			return nil, fmt.Errorf("storage: truncated file (record %d of %d): %w (%w)",
				r.seen, r.hdr.Count, io.ErrUnexpectedEOF, storage.ErrCorrupt)
		}
		// Fill the chunk buffer as far as the file allows. Short reads
		// are retried; a clean EOF before the next full row is a torn
		// file (caught above on the next iteration).
		n := 0
		for n < len(r.buf) {
			m, err := r.f.Read(r.buf[n:])
			n += m
			if err == io.EOF {
				r.eof = true
				break
			}
			if err != nil {
				return nil, fmt.Errorf("storage: read records: %w", err)
			}
		}
		r.chunks++
		r.bytesRead += int64(n)
		r.disk = r.sp.Split(r.buf[:n], r.disk[:0])
		if len(r.disk) == 0 {
			continue
		}
		r.rows = r.rows[:0]
		checksummed := r.hdr.Version >= 2
		for _, row := range r.disk {
			if r.seen >= r.hdr.Count {
				break // ignore trailing bytes past the declared count
			}
			r.seen++
			if checksummed {
				want := binary.LittleEndian.Uint32(row[r.rowBytes:])
				if storage.Checksum(row[:r.rowBytes]) != want {
					if r.guard.SkipCorruptRows() {
						r.corrupt++
						r.guard.NoteCorruptRow()
						continue
					}
					return nil, fmt.Errorf("storage: checksum mismatch (record %d of %d): %w",
						r.seen-1, r.hdr.Count, storage.ErrCorrupt)
				}
			}
			r.rows = append(r.rows, row[:r.emit])
		}
		if len(r.rows) == 0 {
			continue // every row in the chunk was skipped
		}
		return r.rows, nil
	}
}

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }
