package sortscan

import (
	"fmt"
	"os"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/exec/scan"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/opt"
	"awra/internal/plan"
	"awra/internal/qguard"
	"awra/internal/storage"
)

// ShardedOptions configures RunSharded.
type ShardedOptions struct {
	// SortKey orders every shard's pass (same key everywhere); its
	// leading part is the shard unit.
	SortKey model.SortKey
	// Shards is the worker count (>= 1; 1 degenerates to Run).
	Shards int
	// TempDir receives shard files and per-shard sort runs.
	TempDir string
	// ChunkRecords tunes the per-shard external sorts.
	ChunkRecords int
	// ReadBatchBytes is the chunk size of the batched fact reads
	// (0 = scan.DefaultBatchBytes).
	ReadBatchBytes int
	// Stats feeds footprint estimation (informational).
	Stats *plan.Stats
	// Recorder, if non-nil, receives a "split" span for the two-pass
	// balanced partitioning, one "shard"-rooted span subtree per worker
	// (sort -> scan -> finalize children), a "combine" span for the
	// concatenate-and-merge phase, and the standard engine metrics plus
	// shards_planned and shard_skew_ratio.
	Recorder *obs.Recorder
	// Guard, if non-nil, enforces cancellation and resource budgets:
	// the live-cell budget is divided evenly across shards, while spill
	// bytes and result rows stay query-global.
	Guard *qguard.Guard
}

// RunSharded evaluates the workflow with partitioned parallelism over
// the sort order itself: the fact file is split into Shards files by
// the leading part of the sort key (each shard owns whole prefix
// groups, balanced greedily by record count), every shard is
// external-sorted and scanned by an independent one-pass engine on its
// own goroutine, and the per-shard outputs combine — concatenation for
// measures whose regions nest inside shard units, aggregator-state
// merge (agg.Merge, e.g. COUNT DISTINCT set union) for measures whose
// regions span them. Requires a shardable workflow; see
// opt.ShardPrefix for the exact condition.
func RunSharded(c *core.Compiled, factPath string, opts ShardedOptions) (*Result, error) {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	if opts.Shards == 1 {
		return Run(c, factPath, Options{
			SortKey: opts.SortKey, TempDir: opts.TempDir, ChunkRecords: opts.ChunkRecords,
			ReadBatchBytes: opts.ReadBatchBytes,
			Stats:          opts.Stats, Recorder: opts.Recorder, Guard: opts.Guard,
		})
	}
	rec := opts.Recorder
	if rec == nil {
		rec = obs.New()
	}
	pl, err := plan.Build(c, opts.SortKey, opts.Stats)
	if err != nil {
		return nil, err
	}
	sp, err := opt.ShardPrefix(c, pl.SortKey)
	if err != nil {
		return nil, fmt.Errorf("sortscan: %w", err)
	}
	guard := opts.Guard
	shards := opts.Shards
	if opts.TempDir == "" {
		opts.TempDir = os.TempDir()
	}
	rec.Counter(obs.MShardsPlanned).Add(int64(shards))

	// Split: a counting pass sizes every shard unit, a greedy
	// longest-processing-time assignment balances units across shards,
	// and a second pass writes the shard files. Two fact-file reads buy
	// balance that plain unit hashing cannot give when the outermost
	// level has few distinct values.
	splitSpan := rec.Start(obs.SpanSplit)
	assign, total, err := shardAssignment(c, factPath, sp, shards, guard)
	if err != nil {
		return nil, err
	}
	paths, counts, err := storage.ShardFile(factPath, shards, assign, storage.ShardOptions{
		TempDir: opts.TempDir, Prefix: "awra-shard", Guard: guard,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, p := range paths {
			os.Remove(p)
		}
	}()
	rec.Counter(obs.MFactScans).Add(2) // counting pass + split pass
	var maxShard int64
	for _, n := range counts {
		if n > maxShard {
			maxShard = n
		}
	}
	if total > 0 {
		// permille: 1000 = perfectly balanced.
		rec.Gauge(obs.GShardSkew).SetMax(maxShard * int64(shards) * 1000 / total)
	}
	splitSpan.SetAttr("records", fmt.Sprint(total))
	splitSpan.SetAttr("shards", fmt.Sprint(shards))
	splitSpan.End()

	// Mark the spanning measures for state extraction.
	var stateIdx []bool
	if len(sp.Merge) > 0 {
		stateIdx = make([]bool, len(c.Measures))
		for _, i := range sp.Merge {
			stateIdx[i] = true
		}
	}

	// Parallel phase: one full sort+scan pipeline per shard. The plan
	// is shared read-only; each engine keeps private state. The derived
	// guard divides the live-cell budget across workers while keeping
	// cancellation and the byte/row budgets query-global.
	sg := guard.Shard(shards)
	type shardOut struct {
		res    *Result
		states []map[model.Key]agg.Aggregator
		err    error
	}
	t0 := time.Now()
	outs := make([]shardOut, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		sSpan := rec.Start(obs.SpanShard)
		sSpan.SetAttr("shard", fmt.Sprint(i))
		sSpan.SetAttr("records", fmt.Sprint(counts[i]))
		go func(i int, sSpan *obs.Span) {
			defer wg.Done()
			defer sSpan.End()
			// CPU profiles attribute shard work to the query (query_id
			// label inherited through the guard's context) and phase.
			pprof.SetGoroutineLabels(pprof.WithLabels(sg.Context(), pprof.Labels("phase", "shard")))
			defer pprof.SetGoroutineLabels(sg.Context())
			// A panic escaping a goroutine kills the process, bypassing
			// the aw boundary's recover; convert it to a shard error.
			defer func() {
				if r := recover(); r != nil {
					if a, ok := r.(qguard.Abort); ok {
						outs[i].err = a.Err
						return
					}
					outs[i].err = fmt.Errorf("sortscan: shard %d panic: %v", i, r)
				}
			}()
			srec := rec.At(sSpan)
			sorted := paths[i] + ".sorted"
			defer os.Remove(sorted)
			sortSpan := srec.Start(obs.SpanSort)
			ss, err := scan.SortFileByKey(paths[i], sorted, c.Schema, pl.SortKey, scan.SortOptions{
				ChunkRecords: opts.ChunkRecords, TempDir: opts.TempDir,
				BatchBytes: opts.ReadBatchBytes,
				Recorder:   srec.At(sortSpan), Guard: sg,
			})
			sortSpan.SetAttr("runs", fmt.Sprint(ss.Runs))
			sortSpan.End()
			if err != nil {
				outs[i].err = err
				return
			}
			r, err := scan.Open(sorted, scan.Options{BatchBytes: opts.ReadBatchBytes, Guard: sg})
			if err != nil {
				outs[i].err = err
				return
			}
			defer r.Close()
			res, states, err := runSortedStates(c, pl, r, false, true, srec, sg, stateIdx)
			if err != nil {
				outs[i].err = err
				return
			}
			res.Stats.SortTime = sortSpan.Duration()
			res.Stats.SortRuns = ss.Runs
			outs[i].res, outs[i].states = res, states
		}(i, sSpan)
	}
	wg.Wait()
	scanWall := time.Since(t0)

	// Combine: concatenate nesting measures (duplicate regions mean the
	// shard validation was unsound — fail loudly), then merge the
	// spanning measures' per-shard states and finalize them.
	combSpan := rec.Start(obs.SpanCombine)
	defer combSpan.End()
	out := &Result{Tables: make(map[string]*core.Table), Plan: pl}
	out.Stats.SortTime = splitSpan.Duration()
	out.Stats.ScanTime = scanWall
	for _, name := range c.Outputs() {
		m, _ := c.MeasureByName(name)
		out.Tables[name] = core.NewTable(c.Schema, m.Gran)
	}
	for i := range outs {
		if outs[i].err != nil {
			return nil, fmt.Errorf("sortscan: shard %d: %w", i, outs[i].err)
		}
		res := outs[i].res
		out.Stats.Records += res.Stats.Records
		out.Stats.SortRuns += res.Stats.SortRuns
		out.Stats.PeakCells += res.Stats.PeakCells
		out.Stats.PeakBytes += res.Stats.PeakBytes
		out.Stats.FlushBatches += res.Stats.FlushBatches
		for name, tbl := range res.Tables {
			idx, _ := c.Index(name)
			if stateIdx != nil && stateIdx[idx] {
				continue // filled from merged states below
			}
			dst := out.Tables[name]
			for k, v := range tbl.Rows {
				if _, dup := dst.Rows[k]; dup {
					return nil, fmt.Errorf("sortscan: region %s of %q produced by two shards; shard validation is unsound",
						tbl.Codec.Format(k), name)
				}
				dst.Rows[k] = v
			}
		}
	}
	for _, mi := range sp.Merge {
		m := c.Measures[mi]
		acc := make(map[model.Key]agg.Aggregator)
		for i := range outs {
			for k, a := range outs[i].states[mi] {
				if prev, ok := acc[k]; ok {
					prev.Merge(a)
				} else {
					acc[k] = a
				}
			}
		}
		rec.Counter(obs.MCellsFinalized).Add(int64(len(acc)))
		ns := obs.NodeStats{Node: m.Name, CellsFinalized: int64(len(acc))}
		if !m.Hidden {
			ns.RecordsOut = int64(len(acc))
		}
		rec.MergeNodeStats(ns)
		if m.Hidden {
			continue
		}
		tbl := out.Tables[m.Name]
		for k, a := range acc {
			tbl.Rows[k] = a.Final()
		}
		if err := guard.NoteResultRows(int64(len(acc))); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// shardAssignment reads the fact file once, counts records per shard
// unit (the record's code on the shard dimension lifted to the shard
// level), and returns a balanced unit -> shard routing function via
// greedy LPT assignment: units descending by size, each to the
// least-loaded shard. If the unit space explodes past a bound, it
// falls back to stateless unit hashing.
func shardAssignment(c *core.Compiled, factPath string, sp opt.ShardChoice, shards int, g *qguard.Guard) (func(*model.Record) int, int64, error) {
	dim := c.Schema.Dim(sp.Dim)
	sdim, slvl := sp.Dim, sp.Level
	hashed := func(r *model.Record) int {
		u := dim.Up(0, slvl, r.Dims[sdim])
		return int(uint64(mixShard(u)) % uint64(shards))
	}
	const maxUnits = 1 << 20
	unitCounts := make(map[int64]int64)
	var total int64
	r, err := scan.Open(factPath, scan.Options{Guard: g})
	if err != nil {
		return nil, 0, err
	}
	defer r.Close()
	for {
		batch, err := r.NextBatch()
		if err != nil {
			return nil, 0, err
		}
		if batch == nil {
			break
		}
		total += int64(len(batch))
		if unitCounts != nil {
			for _, row := range batch {
				unitCounts[dim.Up(0, slvl, row.Dim(sdim))]++
			}
			if len(unitCounts) > maxUnits {
				unitCounts = nil // too many units to plan; hash instead
			}
		}
	}
	if unitCounts == nil {
		return hashed, total, nil
	}
	type unitCount struct {
		unit int64
		n    int64
	}
	units := make([]unitCount, 0, len(unitCounts))
	for u, n := range unitCounts {
		units = append(units, unitCount{u, n})
	}
	sort.Slice(units, func(i, j int) bool {
		if units[i].n != units[j].n {
			return units[i].n > units[j].n
		}
		return units[i].unit < units[j].unit // deterministic ties
	})
	loads := make([]int64, shards)
	route := make(map[int64]int, len(units))
	for _, uc := range units {
		best := 0
		for s := 1; s < shards; s++ {
			if loads[s] < loads[best] {
				best = s
			}
		}
		route[uc.unit] = best
		loads[best] += uc.n
	}
	return func(r *model.Record) int {
		u := dim.Up(0, slvl, r.Dims[sdim])
		if s, ok := route[u]; ok {
			return s
		}
		return hashed(r) // unit unseen by the counting pass
	}, total, nil
}

// mixShard is SplitMix64's finalizer, so hashed shard assignment is
// well distributed even for sequential unit codes.
func mixShard(x int64) int64 {
	u := uint64(x)
	u ^= u >> 30
	u *= 0xbf58476d1ce4e5b9
	u ^= u >> 27
	u *= 0x94d049bb133111eb
	u ^= u >> 31
	return int64(u)
}
