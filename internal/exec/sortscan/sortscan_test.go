package sortscan

import (
	"math/rand"
	"path/filepath"
	"testing"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/model"
	"awra/internal/plan"
	"awra/internal/storage"
)

// netSchema is the Table 1 schema.
func netSchema(t *testing.T) *model.Schema {
	t.Helper()
	s, err := model.NewSchema([]*model.Dimension{
		model.TimeDimension("t"),
		model.IPv4Dimension("U"),
		model.IPv4Dimension("T"),
		model.PortDimension("P"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// netRecords generates a few days of traffic.
func netRecords(n int, seed int64) []model.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]model.Record, n)
	for i := range recs {
		recs[i] = model.Record{Dims: []int64{
			model.SecondCode(2004, 3, 1+rng.Intn(4), rng.Intn(24), rng.Intn(60), rng.Intn(60)),
			model.IPCode(1, 0, 0, rng.Intn(30)),
			model.IPCode(10, 0, rng.Intn(5), rng.Intn(40)),
			int64(rng.Intn(100)),
		}, Ms: []float64{}}
	}
	return recs
}

// smaxWorkflow is the S_max example of Section 5.3.3: two per-day
// rollup chains combined at the top.
func smaxWorkflow(t *testing.T, s *model.Schema) *core.Compiled {
	t.Helper()
	day, _ := s.Dim(0).LevelByName("Day")
	all := model.LevelALL
	g1, _ := s.Normalize(model.Gran{day, 0, all, all}) // (t:Day, U:IP)
	g2, _ := s.Normalize(model.Gran{day, all, 0, all}) // (t:Day, T:IP)
	gDay, _ := s.Normalize(model.Gran{day, all, all, all})
	c, err := core.NewWorkflow(s).
		Basic("s1", g1, agg.Count, -1).
		Basic("s2", g2, agg.Count, -1).
		Rollup("smax1", gDay, "s1", agg.Max).
		Rollup("smax2", gDay, "s2", agg.Max).
		Combine("smax", []string{"smax1", "smax2"}, core.MaxOf()).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func run(t *testing.T, c *core.Compiled, recs []model.Record, key model.SortKey) *Result {
	t.Helper()
	nk, err := key.Normalize(c.Schema)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]model.Record{}, recs...)
	storage.SortRecords(sorted, func(a, b *model.Record) bool { return nk.RecordLess(c.Schema, a, b) })
	pl, err := plan.Build(c, nk, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSorted(c, pl, &storage.SliceSource{Recs: sorted})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSmaxExample executes the paper's Section 5.3.3 walk-through:
// sorted by <t:Day, T:IP>, smax2 entries finalize as the target IP
// changes, smax1 and smax only when the day switches — and the final
// values must equal a direct computation.
func TestSmaxExample(t *testing.T) {
	s := netSchema(t)
	c := smaxWorkflow(t, s)
	recs := netRecords(2000, 5)
	day, _ := s.Dim(0).LevelByName("Day")
	res := run(t, c, recs, model.SortKey{{Dim: 0, Lvl: day}, {Dim: 2, Lvl: 0}})

	// Direct computation of smax per day.
	want := map[int64]float64{}
	perDayU := map[[2]int64]float64{}
	perDayT := map[[2]int64]float64{}
	for _, r := range recs {
		d := s.Dim(0).Up(0, day, r.Dims[0])
		perDayU[[2]int64{d, r.Dims[1]}]++
		perDayT[[2]int64{d, r.Dims[2]}]++
	}
	for k, v := range perDayU {
		if v > want[k[0]] {
			want[k[0]] = v
		}
	}
	for k, v := range perDayT {
		if v > want[k[0]] {
			want[k[0]] = v
		}
	}
	got := res.Tables["smax"]
	if len(got.Rows) != len(want) {
		t.Fatalf("smax has %d days, want %d", len(got.Rows), len(want))
	}
	for k, v := range got.Rows {
		d := got.Codec.Decode(k)[0]
		if want[d] != v {
			t.Errorf("day %d: smax = %v, want %v", d, v, want[d])
		}
	}
	// The engine must have flushed incrementally, not only at the end.
	if res.Stats.FlushBatches < 4 {
		t.Errorf("only %d flush batches; streaming finalization seems inert", res.Stats.FlushBatches)
	}
	// Live cells must stay well below the total number of regions.
	total := 0
	for _, tbl := range res.Tables {
		total += len(tbl.Rows)
	}
	if res.Stats.PeakCells >= int64(total) {
		t.Errorf("peak cells %d >= total regions %d: no early flushing", res.Stats.PeakCells, total)
	}
}

// TestHelpfulVsHostileSortKey: a sort key aligned with the measure
// granularity must yield a much smaller peak footprint than a key on
// an unrelated dimension.
func TestHelpfulVsHostileSortKey(t *testing.T) {
	s := netSchema(t)
	hour, _ := s.Dim(0).LevelByName("Hour")
	all := model.LevelALL
	g, _ := s.Normalize(model.Gran{hour, 0, all, all})
	c, err := core.NewWorkflow(s).Basic("cnt", g, agg.Count, -1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	recs := netRecords(4000, 6)
	helpful := run(t, c, recs, model.SortKey{{Dim: 0, Lvl: hour}, {Dim: 1, Lvl: 0}})
	hostile := run(t, c, recs, model.SortKey{{Dim: 3, Lvl: 0}})
	if !helpful.Tables["cnt"].Equal(hostile.Tables["cnt"], 0) {
		t.Fatal("results differ across sort keys")
	}
	if helpful.Stats.PeakCells*4 > hostile.Stats.PeakCells {
		t.Errorf("helpful key peak %d, hostile peak %d: expected a big gap",
			helpful.Stats.PeakCells, hostile.Stats.PeakCells)
	}
}

// TestRunFullPath exercises Run (external sort included) and the
// phase timers behind Figure 6(e).
func TestRunFullPath(t *testing.T) {
	s := netSchema(t)
	c := smaxWorkflow(t, s)
	recs := netRecords(1500, 7)
	dir := t.TempDir()
	fact := filepath.Join(dir, "fact.rec")
	if err := storage.WriteAll(fact, 4, 0, recs); err != nil {
		t.Fatal(err)
	}
	day, _ := s.Dim(0).LevelByName("Day")
	res, err := Run(c, fact, Options{
		SortKey: model.SortKey{{Dim: 0, Lvl: day}, {Dim: 2, Lvl: 0}},
		TempDir: dir, ChunkRecords: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Records != 1500 {
		t.Errorf("records = %d", res.Stats.Records)
	}
	if res.Stats.SortTime <= 0 || res.Stats.ScanTime <= 0 {
		t.Errorf("phase timers not populated: %+v", res.Stats)
	}
	if res.Stats.SortRuns < 2 {
		t.Errorf("expected multiple external-sort runs with chunk 200, got %d", res.Stats.SortRuns)
	}
	inMem := run(t, c, recs, model.SortKey{{Dim: 0, Lvl: day}, {Dim: 2, Lvl: 0}})
	for name, tbl := range res.Tables {
		if !tbl.Equal(inMem.Tables[name], 0) {
			t.Errorf("measure %s differs between file and in-memory paths", name)
		}
	}
}

// TestAssumeSorted skips the sort phase for pre-sorted input.
func TestAssumeSorted(t *testing.T) {
	s := netSchema(t)
	c := smaxWorkflow(t, s)
	recs := netRecords(800, 8)
	day, _ := s.Dim(0).LevelByName("Day")
	key := model.SortKey{{Dim: 0, Lvl: day}, {Dim: 2, Lvl: 0}}
	nk, _ := key.Normalize(s)
	storage.SortRecords(recs, func(a, b *model.Record) bool { return nk.RecordLess(s, a, b) })
	dir := t.TempDir()
	fact := filepath.Join(dir, "fact.rec")
	if err := storage.WriteAll(fact, 4, 0, recs); err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, fact, Options{SortKey: key, AssumeSorted: true, TempDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SortTime != 0 {
		t.Errorf("AssumeSorted still sorted: %v", res.Stats.SortTime)
	}
	want := run(t, c, recs, key)
	for name, tbl := range res.Tables {
		if !tbl.Equal(want.Tables[name], 0) {
			t.Errorf("measure %s differs", name)
		}
	}
}

// TestBadSortKeyRejected propagates plan validation.
func TestBadSortKeyRejected(t *testing.T) {
	s := netSchema(t)
	c := smaxWorkflow(t, s)
	_, err := Run(c, "/nonexistent", Options{SortKey: model.SortKey{{Dim: 99, Lvl: 0}}})
	if err == nil {
		t.Fatal("bad sort key accepted")
	}
	_, err = Run(c, "/nonexistent/path.rec", Options{SortKey: model.SortKey{{Dim: 0, Lvl: 0}}})
	if err == nil {
		t.Fatal("missing fact file accepted")
	}
}
