// Package sortscan implements the paper's one-pass sort/scan algorithm
// (Section 5.3, Tables 7 and 8): the dataset is externally sorted by a
// chosen sort key and scanned once; every measure node maintains a hash
// table of live cells plus a watermark per incoming update stream, and
// finalizes ("flushes") cells as soon as no stream can update them
// again. Finalized entries propagate down the computation graph as
// update streams, transformed per match condition, so composite
// measures complete in the same pass with a bounded memory footprint.
//
// Finalization uses the per-arc comparable keys and conservative
// watermark shifts computed by the plan package (the order/slack
// algorithm of Table 6). A cell is finalized when its projection onto
// every arc's comparable key is strictly below that arc's shifted
// watermark — the watermark-array minimum of Table 8, evaluated per
// arc because streams may have incomparable orders.
package sortscan

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/plan"
	"awra/internal/qguard"
	"awra/internal/storage"
)

// Options configures a run.
type Options struct {
	// SortKey orders the pass. Use the opt package to choose one that
	// minimizes the estimated footprint.
	SortKey model.SortKey
	// TempDir receives external-sort run files.
	TempDir string
	// ChunkRecords tunes the external sort (0 = default).
	ChunkRecords int
	// AssumeSorted skips the sort phase; the input must already be
	// ordered by SortKey.
	AssumeSorted bool
	// Stats supplies cardinality estimates for the plan's footprint
	// numbers (informational).
	Stats *plan.Stats
	// DisableEarlyFlush turns off watermark-based finalization during
	// the scan, so everything flushes only at the end (ablation knob:
	// it isolates the memory benefit of the paper's early flushing).
	DisableEarlyFlush bool
	// ParallelSort sorts run files on SortWorkers goroutines during
	// the sort phase.
	ParallelSort bool
	// SortWorkers bounds the parallel sort (0 = GOMAXPROCS).
	SortWorkers int
	// Recorder, if non-nil, receives the run's phase spans
	// (sort/runs/merge, scan, finalize) and the standard engine
	// metrics. Nil still produces a full Stats (a private recorder is
	// used); hot loops never touch the recorder either way.
	Recorder *obs.Recorder
	// Guard, if non-nil, makes the run cooperatively cancelable and
	// enforces resource budgets (live cells, result rows, spill bytes).
	// Budgets are checked at scan strides and flush boundaries, so a
	// small overshoot within one stride is possible by design.
	Guard *qguard.Guard
}

// Stats reports a run's cost breakdown — the data behind the paper's
// Figure 6(e) sort-vs-scan comparison — and memory behaviour. It is a
// fixed-shape view over the measurements the run's obs.Recorder
// exports: the timing fields are span durations and the remaining
// fields mirror the standard metric names.
type Stats struct {
	Records      int64
	SortTime     time.Duration
	ScanTime     time.Duration
	SortRuns     int
	PeakCells    int64 // max simultaneously live hash entries, all nodes
	PeakBytes    int64 // estimated bytes at that moment
	FlushBatches int64
}

// Result holds the computed measure tables (outputs only) and stats.
type Result struct {
	Tables map[string]*core.Table
	Stats  Stats
	Plan   *plan.Plan
}

// cell is one live hash entry.
type cell struct {
	agg     agg.Aggregator // basic/rollup/fromparent/sibling
	vals    []float64      // combine: per-source values
	present []uint8        // combine: which sources delivered
	inBase  bool           // confirmed by the base/cell-providing stream
}

// arcState tracks one incoming stream's watermark.
type arcState struct {
	pl        plan.Arc
	threshold model.Key // shifted projection of the last update
	seen      bool
	advanced  bool
	// advancedCoarse marks a change in the leading comparable-key
	// component. The scan loop triggers finalization only on coarse
	// advances — batching flushes the way the paper's examples do
	// ("entries are finalized when the day switches") instead of
	// re-scanning the hash table on every record.
	advancedCoarse bool
	// Per-arc tallies (plain fields, published at end of run):
	// advances counts watermark advances on this arc; heldBack counts
	// cell-finalization checks this arc's lagging watermark deferred.
	advances int64
	heldBack int64
}

// node is the runtime state of one measure.
type node struct {
	idx   int
	m     *core.Measure
	pl    *plan.Node
	arcs  []arcState
	cells map[model.Key]*cell
	// Scan fast path: consecutive sorted records usually hit the same
	// cell and watermark, so cache the last mapped codes and skip the
	// key encoding when they repeat.
	lastCellCodes []int64
	lastCell      *cell
	lastWmCodes   []int64
	scratch       []int64
	// srcArc maps "source position" (index into m.Sources) to the arc
	// index; baseArc is the base stream's arc index (-1 if none).
	srcArc  []int
	baseArc int
	// fromparent staging: parent values keyed by the parent's key.
	parentVals map[model.Key]float64
	out        *core.Table
	// dependents: (node index, role) pairs; role is the source
	// position, or -1 for base.
	deps []depEdge
	// Per-node tallies (plain fields, published at end of run): the
	// node-level breakdown of the engine's global counters.
	nRecordsIn  int64 // fact records or upstream entries delivered
	nRecordsOut int64 // rows emitted into the output table
	nCreated    int64 // cells created
	nFinalized  int64 // cells flushed
	nFlushes    int64 // flush batches
	nLive       int64 // currently live cells
	nLiveHWM    int64 // peak live cells
}

func (n *node) noteLive(delta int64) {
	n.nLive += delta
	if n.nLive > n.nLiveHWM {
		n.nLiveHWM = n.nLive
	}
}

type depEdge struct {
	node int
	role int // source position in the dependent's Sources, -1 = base
}

type engine struct {
	c            *core.Compiled
	pl           *plan.Plan
	nodes        []*node
	stats        Stats
	live         int64
	noEarlyFlush bool
	emit         EmitFunc
	rec          *obs.Recorder
	guard        *qguard.Guard
	// stateIdx, when non-nil, marks nodes whose cells are extracted as
	// raw aggregator states instead of finalized (sharded runs).
	stateIdx []bool
	// Per-record tallies stay in plain fields (the scan loop never
	// touches the recorder); publish() flushes them at end of run.
	created   int64 // cells created
	finalized int64 // cells flushed
	wmAdv     int64 // watermark advances across all arcs
}

// publish flushes the engine's tallies into its recorder under the
// standard metric names, plus one NodeStats per measure node (the
// per-operator breakdown behind EXPLAIN ANALYZE). It also registers
// the spill metrics so every engine exports the same vocabulary even
// when nothing spilled.
func (e *engine) publish() {
	rec := e.rec
	rec.Counter(obs.MRecordsScanned).Add(e.stats.Records)
	rec.Counter(obs.MCellsCreated).Add(e.created)
	rec.Counter(obs.MCellsFinalized).Add(e.finalized)
	rec.Counter(obs.MFlushBatches).Add(e.stats.FlushBatches)
	rec.Counter(obs.MWatermarkAdvances).Add(e.wmAdv)
	rec.Counter(obs.MSpillEvents)
	rec.Counter(obs.MSpillBytes)
	rec.Gauge(obs.GLiveCellsHWM).SetMax(e.stats.PeakCells)
	rec.Gauge(obs.GHashBytesHWM).SetMax(e.stats.PeakBytes)
	for _, n := range e.nodes {
		ns := obs.NodeStats{
			Node:           n.m.Name,
			RecordsIn:      n.nRecordsIn,
			RecordsOut:     n.nRecordsOut,
			CellsCreated:   n.nCreated,
			CellsFinalized: n.nFinalized,
			FlushBatches:   n.nFlushes,
			LiveCellsHWM:   n.nLiveHWM,
			EstCells:       n.pl.EstCells,
		}
		for i := range n.arcs {
			a := &n.arcs[i]
			ns.Arcs = append(ns.Arcs, obs.ArcStats{
				Label:    e.pl.ArcLabel(&a.pl),
				Advances: a.advances,
				HeldBack: a.heldBack,
			})
		}
		rec.MergeNodeStats(ns)
	}
}

// sortSeq disambiguates the sorted-copy paths of concurrent runs over
// the same fact file within this process.
var sortSeq atomic.Int64

// Run sorts the fact file by the sort key and evaluates the workflow
// in one streaming pass.
func Run(c *core.Compiled, factPath string, opts Options) (*Result, error) {
	rec := opts.Recorder
	if rec == nil {
		rec = obs.New() // private recorder so Stats stays complete
	}
	pl, err := plan.Build(c, opts.SortKey, opts.Stats)
	if err != nil {
		return nil, err
	}
	scanPath := factPath
	var st Stats
	if !opts.AssumeSorted {
		// The sorted copy is private to this run and removed when it
		// ends, so its name must be unique: concurrent queries over the
		// same fact file (a serving process) must not overwrite or
		// delete each other's copy mid-scan.
		sorted := fmt.Sprintf("%s.sorted.%d.%d", factPath, os.Getpid(), sortSeq.Add(1))
		defer os.Remove(sorted)
		sortSpan := rec.Start(obs.SpanSort)
		less := func(a, b *model.Record) bool { return pl.SortKey.RecordLess(c.Schema, a, b) }
		ss, err := storage.SortFile(factPath, sorted, less, storage.SortOptions{
			ChunkRecords: opts.ChunkRecords, TempDir: opts.TempDir,
			Parallel: opts.ParallelSort, Workers: opts.SortWorkers,
			Recorder: rec.At(sortSpan), Guard: opts.Guard,
		})
		if err != nil {
			return nil, fmt.Errorf("sortscan: sort: %w", err)
		}
		sortSpan.SetAttr("runs", fmt.Sprint(ss.Runs))
		sortSpan.SetAttr("key", pl.SortKey.String(c.Schema))
		sortSpan.End()
		st.SortTime = sortSpan.Duration()
		st.SortRuns = ss.Runs
		scanPath = sorted
	}
	r, err := storage.OpenGuarded(scanPath, opts.Guard)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	res, err := runSorted(c, pl, r, opts.DisableEarlyFlush, rec, opts.Guard)
	if err != nil {
		return nil, err
	}
	res.Stats.SortTime = st.SortTime
	res.Stats.SortRuns = st.SortRuns
	return res, nil
}

// RunSorted evaluates the workflow over a source already ordered by
// the plan's sort key. An optional recorder receives phase spans and
// engine metrics.
func RunSorted(c *core.Compiled, pl *plan.Plan, src storage.Source, recorder ...*obs.Recorder) (*Result, error) {
	var rec *obs.Recorder
	if len(recorder) > 0 {
		rec = recorder[0]
	}
	return runSorted(c, pl, src, false, rec, nil)
}

// RunSortedGuarded is RunSorted under a query guard (cancellation and
// resource budgets).
func RunSortedGuarded(c *core.Compiled, pl *plan.Plan, src storage.Source, g *qguard.Guard, rec *obs.Recorder) (*Result, error) {
	return runSorted(c, pl, src, false, rec, g)
}

func runSorted(c *core.Compiled, pl *plan.Plan, src storage.Source, disableEarlyFlush bool, obsRec *obs.Recorder, guard *qguard.Guard) (*Result, error) {
	if obsRec == nil {
		obsRec = obs.New()
	}
	res, _, err := runSortedStates(c, pl, src, disableEarlyFlush, obsRec, guard, nil)
	return res, err
}

// runSortedStates is the engine's core loop. When stateIdx is non-nil,
// the marked nodes (leaf basics whose regions span shard units) are
// never finalized: their cells stay live through the whole scan and
// their raw aggregator states are returned, keyed like their output
// tables, for a cross-shard merge by the sharded driver. All other
// nodes flush normally.
func runSortedStates(c *core.Compiled, pl *plan.Plan, src storage.Source, disableEarlyFlush bool, obsRec *obs.Recorder, guard *qguard.Guard, stateIdx []bool) (*Result, []map[model.Key]agg.Aggregator, error) {
	e := newEngine(c, pl, disableEarlyFlush, obsRec)
	e.guard = guard
	e.stateIdx = stateIdx
	scanSpan := obsRec.Start(obs.SpanScan)
	if tc, ok := src.(interface{ TotalRecords() int64 }); ok {
		scanSpan.SetTotal(tc.TotalRecords())
	}
	var rec model.Record
	var basics []*node
	for _, n := range e.nodes {
		if n.m.Kind == core.KindBasic {
			basics = append(basics, n)
		}
	}
	for {
		ok, err := src.Next(&rec)
		if err != nil {
			return nil, nil, fmt.Errorf("sortscan: %w", err)
		}
		if !ok {
			break
		}
		e.stats.Records++
		// Cooperative cancellation + live-cell guardrail, checked at a
		// stride so the hot loop stays hot. File sources also check the
		// guard inside Reader.Next; this covers in-memory sources.
		if e.stats.Records&255 == 0 {
			scanSpan.SetDone(e.stats.Records)
			if err := e.checkGuard(); err != nil {
				return nil, nil, err
			}
		}
		for _, n := range basics {
			e.scanRecord(n, &rec)
		}
		if e.noEarlyFlush {
			continue
		}
		for _, n := range basics {
			if n.arcs[0].advancedCoarse {
				n.arcs[0].advancedCoarse = false
				if stateIdx != nil && stateIdx[n.idx] {
					continue
				}
				if err := e.finalizeNode(n, false); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	scanSpan.SetDone(e.stats.Records)
	scanSpan.SetAttr("records", fmt.Sprint(e.stats.Records))
	scanSpan.End()
	// End of scan: flush everything in topological order (Table 7's
	// final "flush the hash tables of all measures"), except the
	// state-extraction nodes, whose cells are handed back unmerged.
	finSpan := obsRec.Start(obs.SpanFinalize)
	var states []map[model.Key]agg.Aggregator
	if stateIdx != nil {
		states = make([]map[model.Key]agg.Aggregator, len(e.nodes))
	}
	for _, n := range e.nodes {
		if stateIdx != nil && stateIdx[n.idx] {
			st := make(map[model.Key]agg.Aggregator, len(n.cells))
			for k, cl := range n.cells {
				st[k] = cl.agg
				delete(n.cells, k)
				e.noteLive(-1)
				n.noteLive(-1)
			}
			states[n.idx] = st
			continue
		}
		if err := e.finalizeNode(n, true); err != nil {
			return nil, nil, err
		}
	}
	finSpan.End()
	e.stats.ScanTime = scanSpan.Duration() + finSpan.Duration()
	e.publish()

	res := &Result{Tables: make(map[string]*core.Table), Stats: e.stats, Plan: pl}
	for _, name := range c.Outputs() {
		i, _ := c.Index(name)
		res.Tables[name] = e.nodes[i].out
	}
	return res, states, nil
}

func containsIdx(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// scanRecord feeds one fact record into a basic measure node and
// advances its fact-arc watermark.
func (e *engine) scanRecord(n *node, rec *model.Record) {
	m := n.m
	sch := e.c.Schema
	arc := &n.arcs[0]
	n.nRecordsIn++

	// Watermark first: it must advance even for filtered-out records.
	// Fast path: skip the byte encoding when the mapped codes repeat
	// (consecutive sorted records almost always share them).
	cmp := arc.pl.CmpKey
	if cap(n.lastWmCodes) < len(cmp) {
		n.lastWmCodes = make([]int64, len(cmp))
		for j := range n.lastWmCodes {
			n.lastWmCodes[j] = int64(-1) << 62
		}
	}
	wmChanged := !arc.seen
	for j, p := range cmp {
		code := sch.Dim(p.Dim).Up(0, p.Lvl, rec.Dims[p.Dim])
		if code != n.lastWmCodes[j] {
			n.lastWmCodes[j] = code
			wmChanged = true
			if j == 0 {
				arc.advancedCoarse = true
			}
		}
	}
	if wmChanged {
		b := make([]byte, 0, 8*len(cmp))
		for j := range cmp {
			b = appendOrdered(b, n.lastWmCodes[j]-arc.pl.Shift[j])
		}
		arc.threshold = model.Key(b)
		arc.seen = true
		arc.advanced = true
		arc.advances++
		e.wmAdv++
	}

	if m.Filter != nil && !m.Filter.Eval(rec.Dims, rec.Ms) {
		return
	}

	// Cell fast path: reuse the previous cell when the record maps to
	// the same region.
	gran := m.Gran
	if cap(n.scratch) < len(gran) {
		n.scratch = make([]int64, len(gran))
	}
	same := n.lastCell != nil
	sc := n.scratch[:0]
	for d := 0; d < sch.NumDims(); d++ {
		if gran[d] == sch.Dim(d).ALL() {
			continue
		}
		code := sch.Dim(d).Up(0, gran[d], rec.Dims[d])
		sc = append(sc, code)
		if same && (len(n.lastCellCodes) <= len(sc)-1 || n.lastCellCodes[len(sc)-1] != code) {
			same = false
		}
	}
	n.scratch = sc
	var cl *cell
	if same && len(sc) == len(n.lastCellCodes) {
		cl = n.lastCell
	} else {
		k := m.Codec.FromCodes(sc)
		var ok bool
		cl, ok = n.cells[k]
		if !ok {
			cl = &cell{agg: m.Agg.New(), inBase: true}
			n.cells[k] = cl
			e.created++
			e.noteLive(1)
			n.nCreated++
			n.noteLive(1)
		}
		n.lastCellCodes = append(n.lastCellCodes[:0], sc...)
		n.lastCell = cl
	}
	if m.FactMeasure >= 0 {
		cl.agg.Update(rec.Ms[m.FactMeasure])
	} else {
		cl.agg.Update(0)
	}
}

// projectKey maps a region key (from codec) onto a comparable key,
// optionally applying shifts (for watermarks; nil for entries).
func projectKey(s *model.Schema, cmp model.SortKey, shift []int64, codec *model.KeyCodec, k model.Key) model.Key {
	b := make([]byte, 0, 8*len(cmp))
	for j, p := range cmp {
		code := s.Dim(p.Dim).Up(codec.Gran()[p.Dim], p.Lvl, codec.CodeAt(k, p.Dim))
		if shift != nil {
			code -= shift[j]
		}
		b = appendOrdered(b, code)
	}
	return model.Key(b)
}

func appendOrdered(b []byte, code int64) []byte {
	u := uint64(code) ^ (1 << 63)
	return append(b,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

func (e *engine) noteLive(delta int64) {
	e.live += delta
	if e.live > e.stats.PeakCells {
		e.stats.PeakCells = e.live
		e.stats.PeakBytes = e.live * 64
	}
}

// checkGuard folds the cancellation check and the live-cell guardrail
// into one call for the scan loop's stride.
func (e *engine) checkGuard() error {
	if err := e.guard.Err(); err != nil {
		return err
	}
	return e.guard.NoteLiveCells(e.live)
}

// finalEntry is one finalized cell ready for emission.
type finalEntry struct {
	key   model.Key
	proj  model.Key
	value float64
	emit  bool
}

// finalizeNode collects finalized cells (all of them when flush is
// true), emits them in output order, and propagates them to dependent
// nodes, recursively finalizing those.
func (e *engine) finalizeNode(n *node, flush bool) error {
	for i := range n.arcs {
		n.arcs[i].advanced = false
	}
	if len(n.cells) == 0 {
		return nil
	}
	// Flushing may delete the cached cell; drop the fast-path cache.
	n.lastCell = nil
	n.lastCellCodes = n.lastCellCodes[:0]
	if !flush {
		// Without complete watermarks nothing can finalize.
		for i := range n.arcs {
			if !n.arcs[i].seen {
				return nil
			}
		}
	}
	var batch []finalEntry
	sch := e.c.Schema
	for k, cl := range n.cells {
		if !flush && !e.cellFinal(n, k) {
			continue
		}
		fe := finalEntry{key: k}
		fe.value, fe.emit = e.cellValue(n, k, cl)
		fe.proj = projectKey(sch, n.pl.OutOrder, nil, n.m.Codec, k)
		batch = append(batch, fe)
		delete(n.cells, k)
		e.finalized++
		e.noteLive(-1)
		n.nFinalized++
		n.noteLive(-1)
	}
	if len(batch) == 0 {
		return nil
	}
	e.stats.FlushBatches++
	n.nFlushes++
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].proj != batch[j].proj {
			return batch[i].proj < batch[j].proj
		}
		return batch[i].key < batch[j].key
	})
	// Record output rows and propagate as an update stream.
	touched := map[int]bool{}
	var emitted int64
	for _, fe := range batch {
		if !fe.emit {
			continue
		}
		if !n.m.Hidden {
			n.out.Rows[fe.key] = fe.value
			emitted++
			if e.emit != nil {
				e.emit(n.m.Name, fe.key, fe.value)
			}
		}
		for _, d := range n.deps {
			e.deliver(e.nodes[d.node], d.role, n, fe.key, fe.value)
			touched[d.node] = true
		}
	}
	n.nRecordsOut += emitted
	if err := e.guard.NoteResultRows(emitted); err != nil {
		return err
	}
	// Even emit-less batches advance downstream watermarks? No: a
	// dropped cell (emit=false) was never a real region of this
	// measure, so it must not advance watermarks it never would have
	// produced. Watermarks advance only with delivered entries.
	var depIdxs []int
	for d := range touched {
		depIdxs = append(depIdxs, d)
	}
	sort.Ints(depIdxs)
	for _, d := range depIdxs {
		dn := e.nodes[d]
		anyAdv := false
		for i := range dn.arcs {
			if dn.arcs[i].advanced {
				anyAdv = true
			}
		}
		if anyAdv {
			if err := e.finalizeNode(dn, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// cellFinal reports whether a cell's projection is strictly below
// every arc's shifted watermark. The arc that vetoes a finalization
// counts one held-back event — the per-arc watermark lag surfaced in
// node stats.
func (e *engine) cellFinal(n *node, k model.Key) bool {
	sch := e.c.Schema
	for i := range n.arcs {
		a := &n.arcs[i]
		if len(a.pl.CmpKey) == 0 {
			a.heldBack++
			return false // no ordering information from this stream
		}
		p := projectKey(sch, a.pl.CmpKey, nil, n.m.Codec, k)
		if !(p < a.threshold) {
			a.heldBack++
			return false
		}
	}
	return true
}

// cellValue computes a finalized cell's measure value; emit=false
// means the cell never belonged to the measure's region set (e.g. a
// sibling update for a cell the base stream never confirmed).
func (e *engine) cellValue(n *node, k model.Key, cl *cell) (float64, bool) {
	switch n.m.Kind {
	case core.KindCombine:
		if !cl.inBase {
			return 0, false
		}
		for i := range cl.vals {
			if cl.present[i] == 0 {
				cl.vals[i] = agg.Null()
			}
		}
		return n.m.Combine.Eval(cl.vals), true
	case core.KindFromParent:
		if !cl.inBase {
			return 0, false
		}
		src := e.nodes[n.m.Sources[0]]
		a := n.m.Agg.New()
		if v, ok := n.parentVals[n.m.Codec.UpTo(k, src.m.Codec)]; ok {
			a.Update(v)
		}
		return a.Final(), true
	case core.KindSibling:
		if !cl.inBase {
			return 0, false
		}
		return cl.agg.Final(), true
	default:
		return cl.agg.Final(), true
	}
}

// deliver feeds one finalized entry of src into dependent node n,
// playing the role of source position `role` (-1 = base stream), and
// advances the matching watermark.
func (e *engine) deliver(n *node, role int, src *node, key model.Key, value float64) {
	m := n.m
	sch := e.c.Schema
	var arcIdx int
	if role < 0 {
		arcIdx = n.baseArc
	} else {
		arcIdx = n.srcArc[role]
	}
	arc := &n.arcs[arcIdx]
	n.nRecordsIn++
	pk := projectKey(sch, arc.pl.CmpKey, arc.pl.Shift, src.m.Codec, key)
	if !arc.seen || pk != arc.threshold {
		arc.threshold = pk
		arc.seen = true
		arc.advanced = true
		arc.advances++
		e.wmAdv++
	}

	// baseRole: this delivery provides cells. It is the dedicated base
	// arc, the S operand of a combine join, or a source that doubles
	// as the explicit base (WithBase on the sliding source itself).
	baseRole := role < 0 ||
		(m.Kind == core.KindCombine && role == 0) ||
		(n.baseArc == -1 && m.Base >= 0 && role >= 0 && m.Sources[role] == m.Base)
	filtered := false
	if role >= 0 && m.Filter != nil {
		ms := [1]float64{value}
		if !m.Filter.Eval(src.m.Codec.FullDecode(key), ms[:]) {
			filtered = true
		}
	}

	switch m.Kind {
	case core.KindRollup:
		if filtered {
			return
		}
		up := src.m.Codec.UpTo(key, m.Codec)
		cl := n.getCell(up, e)
		cl.inBase = true
		cl.agg.Update(value)
	case core.KindFromParent:
		if baseRole {
			n.getCell(key, e).inBase = true
			return
		}
		if filtered {
			return
		}
		n.parentVals[key] = value
	case core.KindSibling:
		if baseRole {
			n.getCell(key, e).inBase = true
		}
		if role < 0 || filtered {
			return
		}
		// An update at key k touches cells in [k-hi, k-lo] per window.
		forEachShifted(m.Codec, key, m.Windows, func(ck model.Key) {
			cl := n.getCell(ck, e)
			cl.agg.Update(value)
		})
	case core.KindCombine:
		cl := n.getCell(key, e)
		if baseRole {
			cl.inBase = true
		}
		cl.vals[role] = value
		cl.present[role] = 1
	}
}

func (n *node) getCell(k model.Key, e *engine) *cell {
	cl, ok := n.cells[k]
	if !ok {
		cl = &cell{}
		switch n.m.Kind {
		case core.KindCombine:
			cl.vals = make([]float64, len(n.m.Sources))
			cl.present = make([]uint8, len(n.m.Sources))
		case core.KindFromParent:
			// value computed at finalization from parentVals
		default:
			cl.agg = n.m.Agg.New()
		}
		n.cells[k] = cl
		e.created++
		e.noteLive(1)
		n.nCreated++
		n.noteLive(1)
	}
	return cl
}

// forEachShifted enumerates the cell keys affected by a sibling-source
// update at key k: the product of [-hi, -lo] offsets per window, in
// ascending order.
func forEachShifted(c *model.KeyCodec, k model.Key, windows []core.Window, visit func(model.Key)) {
	var rec func(cur model.Key, i int)
	rec = func(cur model.Key, i int) {
		if i == len(windows) {
			visit(cur)
			return
		}
		w := windows[i]
		base := c.CodeAt(k, w.Dim)
		for off := -w.Hi; off <= -w.Lo; off++ {
			rec(c.WithCodeAt(cur, w.Dim, base+off), i+1)
		}
	}
	rec(k, 0)
}
