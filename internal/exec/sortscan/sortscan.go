// Package sortscan implements the paper's one-pass sort/scan algorithm
// (Section 5.3, Tables 7 and 8): the dataset is externally sorted by a
// chosen sort key and scanned once; every measure node maintains a hash
// table of live cells plus a watermark per incoming update stream, and
// finalizes ("flushes") cells as soon as no stream can update them
// again. Finalized entries propagate down the computation graph as
// update streams, transformed per match condition, so composite
// measures complete in the same pass with a bounded memory footprint.
//
// Finalization uses the per-arc comparable keys and conservative
// watermark shifts computed by the plan package (the order/slack
// algorithm of Table 6). A cell is finalized when its projection onto
// every arc's comparable key is strictly below that arc's shifted
// watermark — the watermark-array minimum of Table 8, evaluated per
// arc because streams may have incomparable orders.
//
// The hot path runs on the scan package's batched record pipeline:
// fact rows arrive as zero-copy byte views in multi-megabyte batches,
// each record's mapped (dimension, level) codes are computed once and
// shared across all basic nodes, and live cells sit in an
// open-addressing cellmap.Table plus a dense cell slice instead of a
// Go map. Guard checks run per batch, not per row.
package sortscan

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/exec/cellmap"
	"awra/internal/exec/scan"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/plan"
	"awra/internal/qguard"
	"awra/internal/storage"
)

// Options configures a run.
type Options struct {
	// SortKey orders the pass. Use the opt package to choose one that
	// minimizes the estimated footprint.
	SortKey model.SortKey
	// TempDir receives external-sort run files.
	TempDir string
	// ChunkRecords tunes the external sort (0 = default).
	ChunkRecords int
	// ReadBatchBytes is the chunk size of the batched fact reads
	// (0 = scan.DefaultBatchBytes).
	ReadBatchBytes int
	// AssumeSorted skips the sort phase; the input must already be
	// ordered by SortKey.
	AssumeSorted bool
	// Stats supplies cardinality estimates for the plan's footprint
	// numbers (informational).
	Stats *plan.Stats
	// DisableEarlyFlush turns off watermark-based finalization during
	// the scan, so everything flushes only at the end (ablation knob:
	// it isolates the memory benefit of the paper's early flushing).
	DisableEarlyFlush bool
	// ParallelSort sorts run files on SortWorkers goroutines during
	// the sort phase.
	ParallelSort bool
	// SortWorkers bounds the parallel sort (0 = GOMAXPROCS).
	SortWorkers int
	// Recorder, if non-nil, receives the run's phase spans
	// (sort/runs/merge, scan, finalize) and the standard engine
	// metrics. Nil still produces a full Stats (a private recorder is
	// used); hot loops never touch the recorder either way.
	Recorder *obs.Recorder
	// Guard, if non-nil, makes the run cooperatively cancelable and
	// enforces resource budgets (live cells, result rows, spill bytes).
	// Budgets are checked at batch and flush boundaries, so a small
	// overshoot within one batch is possible by design.
	Guard *qguard.Guard
}

// Stats reports a run's cost breakdown — the data behind the paper's
// Figure 6(e) sort-vs-scan comparison — and memory behaviour. It is a
// fixed-shape view over the measurements the run's obs.Recorder
// exports: the timing fields are span durations and the remaining
// fields mirror the standard metric names.
type Stats struct {
	Records      int64
	SortTime     time.Duration
	ScanTime     time.Duration
	SortRuns     int
	PeakCells    int64 // max simultaneously live hash entries, all nodes
	PeakBytes    int64 // estimated bytes at that moment
	FlushBatches int64
}

// Result holds the computed measure tables (outputs only) and stats.
type Result struct {
	Tables map[string]*core.Table
	Stats  Stats
	Plan   *plan.Plan
}

// cell is one live hash entry. Cells live in a node's dense cellData
// slice, parallel to its cellmap.Table entries.
type cell struct {
	agg     agg.Aggregator // basic/rollup/fromparent/sibling
	cnt     int64          // devirtualized COUNT(*) state (node.isCount)
	vals    []float64      // combine: per-source values
	present []uint8        // combine: which sources delivered
	inBase  bool           // confirmed by the base/cell-providing stream
}

// arcState tracks one incoming stream's watermark as a vector of
// shifted comparable-key codes (compared lexicographically, which is
// exactly the byte order of the encoded comparable key).
type arcState struct {
	pl   plan.Arc
	th   []int64 // shifted projection of the last update
	seen bool
	advanced bool
	// advancedCoarse marks a change in the leading comparable-key
	// component. The scan loop triggers finalization only on coarse
	// advances — batching flushes the way the paper's examples do
	// ("entries are finalized when the day switches") instead of
	// re-scanning the hash table on every record.
	advancedCoarse bool
	// Per-arc tallies (plain fields, published at end of run):
	// advances counts watermark advances on this arc; heldBack counts
	// cell-finalization checks this arc's lagging watermark deferred.
	advances int64
	heldBack int64
}

// node is the runtime state of one measure.
type node struct {
	idx  int
	m    *core.Measure
	pl   *plan.Node
	arcs []arcState
	// Live cells: open-addressing table over encoded keys plus the
	// dense parallel cell slice. Entry i of tab owns cellData[i].
	tab      *cellmap.Table
	cellData []cell
	// Survivor scratch for flush-time table rebuilds (no tombstones:
	// retiring a batch re-inserts the survivors).
	keepKeys  []byte
	keepCells []cell
	// Scan fast path: consecutive sorted records usually hit the same
	// cell, so cache its dense index and skip the key encoding and
	// table probe until a cell code changes (cellDirty, fed by the
	// engine's shared per-record change flags; it stays sticky across
	// filtered records, which skip the cache update).
	lastCellIdx int32
	cellDirty   bool
	keyBuf      []byte
	// wmIdx/cellIdx index the engine's shared per-record code table:
	// wmIdx[j] locates arc 0's CmpKey[j] code, cellIdx[t] the t-th
	// non-ALL granularity component's code.
	wmIdx   []int
	cellIdx []int
	// isCount devirtualizes COUNT(*): cells keep an inline int64
	// instead of a heap-allocated aggregator, skipping one allocation
	// per cell and one interface call per update on the hottest
	// aggregate. Sharded state extraction turns it off for its marked
	// nodes (they must hand back real aggregators to merge).
	isCount bool
	// appendOnly marks basic nodes whose cell keys are contiguous under
	// the scan's full tiebreak order (contiguousCells): a changed key is
	// provably new, so misses skip the hash probe (cellmap.Append).
	appendOnly bool
	// projBuf backs the flush batch's output-order projections (code
	// vectors, stride len(pl.OutOrder)).
	projBuf []int64
	// batchBuf is the reusable flush-batch collection buffer.
	batchBuf []finalEntry
	// outRows is the emission log behind the public output table:
	// flushes append here and materialize() builds out.Rows once, with
	// exact size, instead of paying incremental map growth per row.
	outRows []outKV
	// srcArc maps "source position" (index into m.Sources) to the arc
	// index; baseArc is the base stream's arc index (-1 if none).
	srcArc  []int
	baseArc int
	// fromparent staging: parent values keyed by the parent's key.
	parentVals map[model.Key]float64
	out        *core.Table
	// dependents: (node index, role) pairs; role is the source
	// position, or -1 for base.
	deps []depEdge
	// Per-node tallies (plain fields, published at end of run): the
	// node-level breakdown of the engine's global counters.
	nRecordsIn  int64 // fact records or upstream entries delivered
	nRecordsOut int64 // rows emitted into the output table
	nCreated    int64 // cells created
	nFinalized  int64 // cells flushed
	nFlushes    int64 // flush batches
	nLive       int64 // currently live cells
	nLiveHWM    int64 // peak live cells
}

func (n *node) noteLive(delta int64) {
	n.nLive += delta
	if n.nLive > n.nLiveHWM {
		n.nLiveHWM = n.nLive
	}
}

// outKV is one emitted output row awaiting table materialization.
type outKV struct {
	k model.Key
	v float64
}

// materialize moves the emission log into the node's public output
// table as one exact-size map build. Emission order is preserved, so
// duplicate keys keep the map's last-wins semantics.
func (n *node) materialize() {
	if len(n.outRows) == 0 {
		return
	}
	if len(n.out.Rows) == 0 {
		rows := make(map[model.Key]float64, len(n.outRows))
		for _, kv := range n.outRows {
			rows[kv.k] = kv.v
		}
		n.out.Rows = rows
	} else {
		for _, kv := range n.outRows {
			n.out.Rows[kv.k] = kv.v
		}
	}
	n.outRows = n.outRows[:0]
}

// contiguousCells reports whether scanning records in the full sorted
// order — sort key parts, then base coordinates ascending (the order
// scan.SortFileByKey produces) — visits gran's cell keys contiguously:
// once the cell key changes it never returns to an earlier value.
//
// The proof walks the effective comparator sequence. Take two records
// r < u of one cell class and any t between them; let position i be
// the first comparator on which the three disagree. A comparator that
// is a coarsening of a cell part (same dimension, level ≥ the part's)
// is constant within the class, so it cannot be position i. At any
// other position, t's comparator value is squeezed between r's and
// u's; a cell part that is a generalization of that comparator is then
// squeezed too (Up is monotone) and must equal the class's, and a part
// determined by an earlier comparator already matched. So the class
// contains t — i.e. it is contiguous — provided that at every
// position, each part not yet determined by an earlier comparator is a
// generalization of the current one. One comparator carries one
// dimension, so at most one part may still be undetermined when such a
// position arrives.
func contiguousCells(sch *model.Schema, key model.SortKey, gran model.Gran) bool {
	numDims := len(gran)
	part := make([]model.Level, numDims) // cell part level per dim; -1 = ALL
	remaining := 0
	for d := 0; d < numDims; d++ {
		part[d] = -1
		if gran[d] != sch.Dim(d).ALL() {
			part[d] = gran[d]
			remaining++
		}
	}
	covered := make([]bool, numDims)
	comps := append([]model.SortPart{}, key...)
	for _, p := range key {
		if p.Lvl == 0 {
			covered[p.Dim] = true
		}
	}
	for d := 0; d < numDims; d++ {
		if !covered[d] {
			comps = append(comps, model.SortPart{Dim: d, Lvl: 0})
		}
	}
	det := make([]bool, numDims)
	for _, cp := range comps {
		if remaining == 0 {
			return true
		}
		g := part[cp.Dim]
		if g >= 0 && g <= cp.Lvl {
			// Comparator is a coarsening of the cell part: constant
			// within a class, never a first difference. Equal levels
			// also determine the part for later positions.
			if cp.Lvl <= g && !det[cp.Dim] {
				det[cp.Dim] = true
				remaining--
			}
			continue
		}
		// Possible first difference: every still-undetermined part must
		// be a generalization of this comparator.
		if remaining > 1 {
			return false
		}
		ud := -1
		for d := 0; d < numDims; d++ {
			if part[d] >= 0 && !det[d] {
				ud = d
				break
			}
		}
		if ud != cp.Dim || cp.Lvl > part[ud] {
			return false
		}
		det[ud] = true
		remaining--
	}
	return remaining == 0
}

type depEdge struct {
	node int
	role int // source position in the dependent's Sources, -1 = base
}

type engine struct {
	c            *core.Compiled
	pl           *plan.Plan
	nodes        []*node
	stats        Stats
	live         int64
	noEarlyFlush bool
	emit         EmitFunc
	rec          *obs.Recorder
	guard        *qguard.Guard
	// stateIdx, when non-nil, marks nodes whose cells are extracted as
	// raw aggregator states instead of finalized (sharded runs).
	stateIdx []bool
	// Shared per-record code table: every distinct (dimension, level)
	// pair any basic node maps records through — watermark components
	// and cell-granularity components alike — is computed exactly once
	// per record into cpVals, and nodes index into it.
	cpParts []model.SortPart
	cpDims  []*model.Dimension
	cpVals  []int64
	// cpChanged[j] reports whether cpVals[j] differs from the previous
	// record's value — the shared record-to-record delta every node's
	// watermark and cell fast paths key off.
	cpChanged []bool
	// frec is the decoded-record scratch for basic-measure filters;
	// it is filled once per record only when a filter exists.
	needRec     bool
	frec        model.Record
	numDims     int
	numMeasures int
	// projScratch backs cellFinal/deliver comparable-key projections.
	projScratch []int64
	// Per-record tallies stay in plain fields (the scan loop never
	// touches the recorder); publish() flushes them at end of run.
	created   int64 // cells created
	finalized int64 // cells flushed
	wmAdv     int64 // watermark advances across all arcs
}

// publish flushes the engine's tallies into its recorder under the
// standard metric names, plus one NodeStats per measure node (the
// per-operator breakdown behind EXPLAIN ANALYZE). It also registers
// the spill metrics so every engine exports the same vocabulary even
// when nothing spilled.
func (e *engine) publish() {
	rec := e.rec
	rec.Counter(obs.MRecordsScanned).Add(e.stats.Records)
	rec.Counter(obs.MCellsCreated).Add(e.created)
	rec.Counter(obs.MCellsFinalized).Add(e.finalized)
	rec.Counter(obs.MFlushBatches).Add(e.stats.FlushBatches)
	rec.Counter(obs.MWatermarkAdvances).Add(e.wmAdv)
	rec.Counter(obs.MSpillEvents)
	rec.Counter(obs.MSpillBytes)
	rec.Gauge(obs.GLiveCellsHWM).SetMax(e.stats.PeakCells)
	rec.Gauge(obs.GHashBytesHWM).SetMax(e.stats.PeakBytes)
	// Cell-table probe/arena behavior, aggregated across nodes from the
	// tables' plain-field tallies (one Stats read per node, end of run).
	var probeHWM, grows, arena int64
	for _, n := range e.nodes {
		ts := n.tab.Stats()
		if ts.ProbeHWM > probeHWM {
			probeHWM = ts.ProbeHWM
		}
		grows += ts.Grows
		arena += ts.ArenaBytesHWM
	}
	rec.Counter(obs.MCellTableGrows).Add(grows)
	rec.Gauge(obs.GCellProbeHWM).SetMax(probeHWM)
	rec.Gauge(obs.GCellArenaBytes).SetMax(arena)
	for _, n := range e.nodes {
		ns := obs.NodeStats{
			Node:           n.m.Name,
			RecordsIn:      n.nRecordsIn,
			RecordsOut:     n.nRecordsOut,
			CellsCreated:   n.nCreated,
			CellsFinalized: n.nFinalized,
			FlushBatches:   n.nFlushes,
			LiveCellsHWM:   n.nLiveHWM,
			EstCells:       n.pl.EstCells,
		}
		for i := range n.arcs {
			a := &n.arcs[i]
			ns.Arcs = append(ns.Arcs, obs.ArcStats{
				Label:    e.pl.ArcLabel(&a.pl),
				Advances: a.advances,
				HeldBack: a.heldBack,
			})
		}
		rec.MergeNodeStats(ns)
	}
}

// sortSeq disambiguates the sorted-copy paths of concurrent runs over
// the same fact file within this process.
var sortSeq atomic.Int64

// Run sorts the fact file by the sort key and evaluates the workflow
// in one streaming pass.
func Run(c *core.Compiled, factPath string, opts Options) (*Result, error) {
	rec := opts.Recorder
	if rec == nil {
		rec = obs.New() // private recorder so Stats stays complete
	}
	pl, err := plan.Build(c, opts.SortKey, opts.Stats)
	if err != nil {
		return nil, err
	}
	scanPath := factPath
	var st Stats
	if !opts.AssumeSorted {
		// The sorted copy is private to this run and removed when it
		// ends, so its name must be unique: concurrent queries over the
		// same fact file (a serving process) must not overwrite or
		// delete each other's copy mid-scan.
		sorted := fmt.Sprintf("%s.sorted.%d.%d", factPath, os.Getpid(), sortSeq.Add(1))
		defer os.Remove(sorted)
		sortSpan := rec.Start(obs.SpanSort)
		ss, err := scan.SortFileByKey(factPath, sorted, c.Schema, pl.SortKey, scan.SortOptions{
			ChunkRecords: opts.ChunkRecords, TempDir: opts.TempDir,
			Parallel: opts.ParallelSort, Workers: opts.SortWorkers,
			BatchBytes: opts.ReadBatchBytes,
			Recorder:   rec.At(sortSpan), Guard: opts.Guard,
		})
		if err != nil {
			return nil, fmt.Errorf("sortscan: sort: %w", err)
		}
		sortSpan.SetAttr("runs", fmt.Sprint(ss.Runs))
		sortSpan.SetAttr("key", pl.SortKey.String(c.Schema))
		sortSpan.End()
		st.SortTime = sortSpan.Duration()
		st.SortRuns = ss.Runs
		scanPath = sorted
	}
	r, err := scan.Open(scanPath, scan.Options{BatchBytes: opts.ReadBatchBytes, Guard: opts.Guard})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	// A file sorted by this run carries the full base-coordinate
	// tiebreak order, which unlocks the append-only cell-table path;
	// caller-sorted input only promises the plan key.
	res, err := runSorted(c, pl, r, opts.DisableEarlyFlush, !opts.AssumeSorted, rec, opts.Guard)
	if err != nil {
		return nil, err
	}
	res.Stats.SortTime = st.SortTime
	res.Stats.SortRuns = st.SortRuns
	return res, nil
}

// RunSorted evaluates the workflow over a source already ordered by
// the plan's sort key. An optional recorder receives phase spans and
// engine metrics.
func RunSorted(c *core.Compiled, pl *plan.Plan, src storage.Source, recorder ...*obs.Recorder) (*Result, error) {
	var rec *obs.Recorder
	if len(recorder) > 0 {
		rec = recorder[0]
	}
	return runSorted(c, pl, scan.NewBatcher(src, c.Schema.NumDims(), c.Schema.NumMeasures()), false, false, rec, nil)
}

// RunSortedGuarded is RunSorted under a query guard (cancellation and
// resource budgets).
func RunSortedGuarded(c *core.Compiled, pl *plan.Plan, src storage.Source, g *qguard.Guard, rec *obs.Recorder) (*Result, error) {
	return runSorted(c, pl, scan.NewBatcher(src, c.Schema.NumDims(), c.Schema.NumMeasures()), false, false, rec, g)
}

func runSorted(c *core.Compiled, pl *plan.Plan, src scan.BatchSource, disableEarlyFlush, fullOrder bool, obsRec *obs.Recorder, guard *qguard.Guard) (*Result, error) {
	if obsRec == nil {
		obsRec = obs.New()
	}
	res, _, err := runSortedStates(c, pl, src, disableEarlyFlush, fullOrder, obsRec, guard, nil)
	return res, err
}

// runSortedStates is the engine's core loop. When stateIdx is non-nil,
// the marked nodes (leaf basics whose regions span shard units) are
// never finalized: their cells stay live through the whole scan and
// their raw aggregator states are returned, keyed like their output
// tables, for a cross-shard merge by the sharded driver. All other
// nodes flush normally. fullOrder asserts the source carries the full
// tiebreak order (sort key, then base coordinates ascending) — the
// order this package's own sort produces — not just the plan key.
func runSortedStates(c *core.Compiled, pl *plan.Plan, src scan.BatchSource, disableEarlyFlush, fullOrder bool, obsRec *obs.Recorder, guard *qguard.Guard, stateIdx []bool) (*Result, []map[model.Key]agg.Aggregator, error) {
	e := newEngine(c, pl, disableEarlyFlush, obsRec)
	e.guard = guard
	e.stateIdx = stateIdx
	if stateIdx != nil {
		// State-extraction nodes hand raw aggregators to the sharded
		// merge; they cannot use the inline COUNT(*) representation.
		for _, n := range e.nodes {
			if stateIdx[n.idx] {
				n.isCount = false
			}
		}
	}
	if fullOrder {
		// Under the full tiebreak order, a node whose cell keys are
		// provably contiguous in the scan never revisits a retired key:
		// a changed key is always new, so its table skips hash probes
		// entirely (cellmap.Append).
		for _, n := range e.nodes {
			if n.m.Kind == core.KindBasic && contiguousCells(c.Schema, pl.SortKey, n.m.Gran) {
				n.appendOnly = true
			}
		}
	}
	scanSpan := obsRec.Start(obs.SpanScan)
	if tc, ok := src.(interface{ TotalRecords() int64 }); ok {
		scanSpan.SetTotal(tc.TotalRecords())
	}
	var basics []*node
	for _, n := range e.nodes {
		if n.m.Kind == core.KindBasic {
			basics = append(basics, n)
		}
	}
	for {
		batch, err := src.NextBatch()
		if err != nil {
			return nil, nil, fmt.Errorf("sortscan: %w", err)
		}
		if batch == nil {
			break
		}
		// Cooperative cancellation + live-cell guardrail, once per
		// batch, plus a cheap in-batch stride so budgets still trip
		// promptly when a whole input fits in one batch. The stride
		// test is a bitmask branch; the guard itself is off the
		// per-row path.
		scanSpan.SetDone(e.stats.Records)
		if err := e.checkGuard(); err != nil {
			return nil, nil, err
		}
		for _, row := range batch {
			e.stats.Records++
			if e.stats.Records&255 == 0 {
				if err := e.checkGuard(); err != nil {
					return nil, nil, err
				}
			}
			e.computeCodes(row)
			for _, n := range basics {
				e.scanRecord(n, row)
			}
			if e.noEarlyFlush {
				continue
			}
			for _, n := range basics {
				if n.arcs[0].advancedCoarse {
					n.arcs[0].advancedCoarse = false
					if stateIdx != nil && stateIdx[n.idx] {
						continue
					}
					if err := e.finalizeNode(n, false); err != nil {
						return nil, nil, err
					}
				}
			}
		}
	}
	scanSpan.SetDone(e.stats.Records)
	scanSpan.SetAttr("records", fmt.Sprint(e.stats.Records))
	scanSpan.End()
	scan.PublishReadStats(obsRec, src)
	// End of scan: flush everything in topological order (Table 7's
	// final "flush the hash tables of all measures"), except the
	// state-extraction nodes, whose cells are handed back unmerged.
	finSpan := obsRec.Start(obs.SpanFinalize)
	var states []map[model.Key]agg.Aggregator
	if stateIdx != nil {
		states = make([]map[model.Key]agg.Aggregator, len(e.nodes))
	}
	for _, n := range e.nodes {
		if stateIdx != nil && stateIdx[n.idx] {
			st := make(map[model.Key]agg.Aggregator, n.tab.Len())
			for i := 0; i < n.tab.Len(); i++ {
				st[model.Key(n.tab.KeyAt(int32(i)))] = n.cellData[i].agg
				e.noteLive(-1)
				n.noteLive(-1)
			}
			n.tab.Reset()
			n.cellData = n.cellData[:0]
			n.lastCellIdx = -1
			states[n.idx] = st
			continue
		}
		if err := e.finalizeNode(n, true); err != nil {
			return nil, nil, err
		}
	}
	finSpan.End()
	e.stats.ScanTime = scanSpan.Duration() + finSpan.Duration()
	e.publish()

	res := &Result{Tables: make(map[string]*core.Table), Stats: e.stats, Plan: pl}
	for _, name := range c.Outputs() {
		i, _ := c.Index(name)
		e.nodes[i].materialize()
		res.Tables[name] = e.nodes[i].out
	}
	return res, states, nil
}

func containsIdx(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// registerCode interns one (dimension, level) mapping in the engine's
// shared per-record code table and returns its index.
func (e *engine) registerCode(p model.SortPart) int {
	for i, q := range e.cpParts {
		if q.Dim == p.Dim && q.Lvl == p.Lvl {
			return i
		}
	}
	e.cpParts = append(e.cpParts, p)
	e.cpDims = append(e.cpDims, e.c.Schema.Dim(p.Dim))
	return len(e.cpParts) - 1
}

// computeCodes fills the shared code table for one record: each
// distinct (dimension, level) pair used by any basic node is mapped
// exactly once, no matter how many nodes consume it.
func (e *engine) computeCodes(row scan.Record) {
	for j := range e.cpParts {
		v := e.cpDims[j].Up(0, e.cpParts[j].Lvl, row.Dim(e.cpParts[j].Dim))
		e.cpChanged[j] = v != e.cpVals[j]
		e.cpVals[j] = v
	}
	if e.needRec {
		row.DecodeInto(e.frec.Dims, e.frec.Ms)
	}
}

// scanRecord feeds one fact record into a basic measure node and
// advances its fact-arc watermark. The record's mapped codes were
// already computed by computeCodes; this only compares, encodes on
// change, and updates the aggregate.
func (e *engine) scanRecord(n *node, row scan.Record) {
	m := n.m
	arc := &n.arcs[0]
	n.nRecordsIn++

	// Watermark first: it must advance even for filtered-out records.
	// computeCodes already flagged which shared codes changed since the
	// previous record, so the common no-change case is a few bool reads.
	wmChanged := !arc.seen
	for j, ci := range n.wmIdx {
		if e.cpChanged[ci] {
			wmChanged = true
			if j == 0 {
				arc.advancedCoarse = true
			}
		}
	}
	if wmChanged {
		th := arc.th[:0]
		for j, ci := range n.wmIdx {
			th = append(th, e.cpVals[ci]-arc.pl.Shift[j])
		}
		arc.th = th
		arc.seen = true
		arc.advanced = true
		arc.advances++
		e.wmAdv++
	}

	// cellDirty accumulates cell-code changes across records so the
	// fast path below stays exact even when filtered records skip the
	// cache update.
	for _, ci := range n.cellIdx {
		if e.cpChanged[ci] {
			n.cellDirty = true
			break
		}
	}

	if m.Filter != nil && !m.Filter.Eval(e.frec.Dims, e.frec.Ms) {
		return
	}

	// Cell fast path: reuse the previous cell when no cell-code changed
	// since it was cached; otherwise encode the key and probe the table.
	var idx int32
	if n.lastCellIdx >= 0 && !n.cellDirty {
		idx = n.lastCellIdx
	} else {
		kb := n.keyBuf[:0]
		for _, ci := range n.cellIdx {
			kb = appendOrdered(kb, e.cpVals[ci])
		}
		n.keyBuf = kb
		var created bool
		if n.appendOnly {
			// Contiguous cell keys: a changed key was never seen, so
			// skip the probe and append a fresh entry directly.
			idx, created = n.tab.Append(kb), true
		} else {
			idx, created = n.tab.Insert(kb)
		}
		if created {
			fresh := cell{inBase: true}
			if !n.isCount {
				fresh.agg = m.Agg.New()
			}
			n.cellData = append(n.cellData, fresh)
			e.created++
			e.noteLive(1)
			n.nCreated++
			n.noteLive(1)
		}
		n.lastCellIdx = idx
		n.cellDirty = false
	}
	cl := &n.cellData[idx]
	switch {
	case n.isCount:
		cl.cnt++
	case m.FactMeasure >= 0:
		cl.agg.Update(row.Measure(e.numDims, m.FactMeasure))
	default:
		cl.agg.Update(0)
	}
}

// projectCodes maps a region key (from codec) onto a comparable key
// as a code vector, optionally applying shifts (for watermarks; nil
// for entries), reusing dst. Lexicographic comparison of code vectors
// equals byte comparison of the encoded comparable keys.
func projectCodes(s *model.Schema, cmp model.SortKey, shift []int64, codec *model.KeyCodec, k model.Key, dst []int64) []int64 {
	dst = dst[:0]
	for j, p := range cmp {
		code := s.Dim(p.Dim).Up(codec.Gran()[p.Dim], p.Lvl, codec.CodeAt(k, p.Dim))
		if shift != nil {
			code -= shift[j]
		}
		dst = append(dst, code)
	}
	return dst
}

// codesCompare lexicographically compares equal-length code vectors.
func codesCompare(a, b []int64) int {
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

func appendOrdered(b []byte, code int64) []byte {
	u := uint64(code) ^ (1 << 63)
	return append(b,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

func (e *engine) noteLive(delta int64) {
	e.live += delta
	if e.live > e.stats.PeakCells {
		e.stats.PeakCells = e.live
		e.stats.PeakBytes = e.live * 64
	}
}

// checkGuard folds the cancellation check and the live-cell guardrail
// into one call for the scan loop's batch boundary.
func (e *engine) checkGuard() error {
	if err := e.guard.Err(); err != nil {
		return err
	}
	return e.guard.NoteLiveCells(e.live)
}

// finalEntry is one finalized cell ready for emission. Its
// output-order projection lives in the node's projBuf at
// [proj*stride, (proj+1)*stride) — code vectors, not encoded keys, so
// collecting a flush batch does not allocate per cell.
type finalEntry struct {
	key   model.Key
	proj  int
	value float64
	emit  bool
}

// finalizeNode collects finalized cells (all of them when flush is
// true), emits them in output order, and propagates them to dependent
// nodes, recursively finalizing those. Retired cells leave no
// tombstones: the table is rebuilt from the survivors.
func (e *engine) finalizeNode(n *node, flush bool) error {
	for i := range n.arcs {
		n.arcs[i].advanced = false
	}
	if n.tab.Len() == 0 {
		return nil
	}
	if !flush {
		// Without complete watermarks nothing can finalize.
		for i := range n.arcs {
			if !n.arcs[i].seen {
				return nil
			}
		}
	}
	batch := n.batchBuf[:0]
	sch := e.c.Schema
	kw := n.tab.KeyLen()
	keepKeys := n.keepKeys[:0]
	keepCells := n.keepCells[:0]
	projBuf := n.projBuf[:0]
	stride := len(n.pl.OutOrder)
	total := n.tab.Len()
	// The scan fast-path cache holds a dense index; survivors move
	// during the rebuild, so track where the cached cell lands (-1 if
	// it flushed — the next record then provably opens a new cell).
	lastKept := int32(-1)
	uniformProj := true
	for i := 0; i < total; i++ {
		k := model.Key(n.tab.KeyAt(int32(i)))
		cl := &n.cellData[i]
		if !flush && !e.cellFinal(n, k) {
			keepKeys = append(keepKeys, n.tab.KeyAt(int32(i))...)
			keepCells = append(keepCells, *cl)
			if int32(i) == n.lastCellIdx {
				lastKept = int32(len(keepCells) - 1)
			}
			continue
		}
		fe := finalEntry{key: k, proj: len(batch)}
		fe.value, fe.emit = e.cellValue(n, k, cl)
		for _, p := range n.pl.OutOrder {
			projBuf = append(projBuf, sch.Dim(p.Dim).Up(n.m.Codec.Gran()[p.Dim], p.Lvl, n.m.Codec.CodeAt(k, p.Dim)))
		}
		if uniformProj && fe.proj > 0 &&
			codesCompare(projBuf[fe.proj*stride:fe.proj*stride+stride], projBuf[:stride]) != 0 {
			uniformProj = false
		}
		batch = append(batch, fe)
		e.finalized++
		e.noteLive(-1)
		n.nFinalized++
		n.noteLive(-1)
	}
	n.keepKeys = keepKeys
	n.keepCells = keepCells
	n.projBuf = projBuf
	n.batchBuf = batch
	if len(batch) == 0 {
		return nil // table untouched; the scan cache stays valid
	}
	n.tab.Reset()
	n.cellData = n.cellData[:0]
	for i := range keepCells {
		if n.appendOnly {
			n.tab.Append(keepKeys[i*kw : i*kw+kw])
		} else {
			n.tab.Insert(keepKeys[i*kw : i*kw+kw])
		}
		n.cellData = append(n.cellData, keepCells[i])
	}
	n.lastCellIdx = lastKept
	e.stats.FlushBatches++
	n.nFlushes++
	// Emission order is (output-order projection, key). Flush batches
	// very often hold a single projection class — one finalized region
	// of the coarse component — so detect that while collecting and
	// sort by key alone, skipping the vector compares.
	if uniformProj {
		sorted := true
		for i := 1; i < len(batch); i++ {
			if batch[i].key < batch[i-1].key {
				sorted = false
				break
			}
		}
		if !sorted {
			sort.Slice(batch, func(i, j int) bool { return batch[i].key < batch[j].key })
		}
	} else {
		sort.Slice(batch, func(i, j int) bool {
			pi := projBuf[batch[i].proj*stride : batch[i].proj*stride+stride]
			pj := projBuf[batch[j].proj*stride : batch[j].proj*stride+stride]
			if c := codesCompare(pi, pj); c != 0 {
				return c < 0
			}
			return batch[i].key < batch[j].key
		})
	}
	// Record output rows and propagate as an update stream.
	touched := map[int]bool{}
	var emitted int64
	for _, fe := range batch {
		if !fe.emit {
			continue
		}
		if !n.m.Hidden {
			n.outRows = append(n.outRows, outKV{fe.key, fe.value})
			emitted++
			if e.emit != nil {
				e.emit(n.m.Name, fe.key, fe.value)
			}
		}
		for _, d := range n.deps {
			e.deliver(e.nodes[d.node], d.role, n, fe.key, fe.value)
			touched[d.node] = true
		}
	}
	n.nRecordsOut += emitted
	if err := e.guard.NoteResultRows(emitted); err != nil {
		return err
	}
	// Even emit-less batches advance downstream watermarks? No: a
	// dropped cell (emit=false) was never a real region of this
	// measure, so it must not advance watermarks it never would have
	// produced. Watermarks advance only with delivered entries.
	var depIdxs []int
	for d := range touched {
		depIdxs = append(depIdxs, d)
	}
	sort.Ints(depIdxs)
	for _, d := range depIdxs {
		dn := e.nodes[d]
		anyAdv := false
		for i := range dn.arcs {
			if dn.arcs[i].advanced {
				anyAdv = true
			}
		}
		if anyAdv {
			if err := e.finalizeNode(dn, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// cellFinal reports whether a cell's projection is strictly below
// every arc's shifted watermark. The arc that vetoes a finalization
// counts one held-back event — the per-arc watermark lag surfaced in
// node stats.
func (e *engine) cellFinal(n *node, k model.Key) bool {
	sch := e.c.Schema
	for i := range n.arcs {
		a := &n.arcs[i]
		if len(a.pl.CmpKey) == 0 || !a.seen {
			a.heldBack++
			return false // no ordering information from this stream
		}
		p := projectCodes(sch, a.pl.CmpKey, nil, n.m.Codec, k, e.projScratch)
		e.projScratch = p
		if codesCompare(p, a.th) >= 0 {
			a.heldBack++
			return false
		}
	}
	return true
}

// cellValue computes a finalized cell's measure value; emit=false
// means the cell never belonged to the measure's region set (e.g. a
// sibling update for a cell the base stream never confirmed).
func (e *engine) cellValue(n *node, k model.Key, cl *cell) (float64, bool) {
	switch n.m.Kind {
	case core.KindCombine:
		if !cl.inBase {
			return 0, false
		}
		for i := range cl.vals {
			if cl.present[i] == 0 {
				cl.vals[i] = agg.Null()
			}
		}
		return n.m.Combine.Eval(cl.vals), true
	case core.KindFromParent:
		if !cl.inBase {
			return 0, false
		}
		src := e.nodes[n.m.Sources[0]]
		a := n.m.Agg.New()
		if v, ok := n.parentVals[n.m.Codec.UpTo(k, src.m.Codec)]; ok {
			a.Update(v)
		}
		return a.Final(), true
	case core.KindSibling:
		if !cl.inBase {
			return 0, false
		}
		if n.isCount {
			return float64(cl.cnt), true
		}
		return cl.agg.Final(), true
	default:
		if n.isCount {
			return float64(cl.cnt), true
		}
		return cl.agg.Final(), true
	}
}

// deliver feeds one finalized entry of src into dependent node n,
// playing the role of source position `role` (-1 = base stream), and
// advances the matching watermark.
func (e *engine) deliver(n *node, role int, src *node, key model.Key, value float64) {
	m := n.m
	sch := e.c.Schema
	var arcIdx int
	if role < 0 {
		arcIdx = n.baseArc
	} else {
		arcIdx = n.srcArc[role]
	}
	arc := &n.arcs[arcIdx]
	n.nRecordsIn++
	pk := projectCodes(sch, arc.pl.CmpKey, arc.pl.Shift, src.m.Codec, key, e.projScratch)
	e.projScratch = pk
	if !arc.seen || codesCompare(pk, arc.th) != 0 {
		arc.th = append(arc.th[:0], pk...)
		arc.seen = true
		arc.advanced = true
		arc.advances++
		e.wmAdv++
	}

	// baseRole: this delivery provides cells. It is the dedicated base
	// arc, the S operand of a combine join, or a source that doubles
	// as the explicit base (WithBase on the sliding source itself).
	baseRole := role < 0 ||
		(m.Kind == core.KindCombine && role == 0) ||
		(n.baseArc == -1 && m.Base >= 0 && role >= 0 && m.Sources[role] == m.Base)
	filtered := false
	if role >= 0 && m.Filter != nil {
		ms := [1]float64{value}
		if !m.Filter.Eval(src.m.Codec.FullDecode(key), ms[:]) {
			filtered = true
		}
	}

	switch m.Kind {
	case core.KindRollup:
		if filtered {
			return
		}
		up := src.m.Codec.UpTo(key, m.Codec)
		cl := n.getCell(up, e)
		cl.inBase = true
		if n.isCount {
			cl.cnt++
		} else {
			cl.agg.Update(value)
		}
	case core.KindFromParent:
		if baseRole {
			n.getCell(key, e).inBase = true
			return
		}
		if filtered {
			return
		}
		n.parentVals[key] = value
	case core.KindSibling:
		if baseRole {
			n.getCell(key, e).inBase = true
		}
		if role < 0 || filtered {
			return
		}
		// An update at key k touches cells in [k-hi, k-lo] per window.
		forEachShifted(m.Codec, key, m.Windows, func(ck model.Key) {
			cl := n.getCell(ck, e)
			if n.isCount {
				cl.cnt++
			} else {
				cl.agg.Update(value)
			}
		})
	case core.KindCombine:
		cl := n.getCell(key, e)
		if baseRole {
			cl.inBase = true
		}
		cl.vals[role] = value
		cl.present[role] = 1
	}
}

// getCell returns the live cell for k, creating it if absent. The
// returned pointer is valid only until the next getCell or scanRecord
// on the same node (the dense slice may grow).
func (n *node) getCell(k model.Key, e *engine) *cell {
	idx, created := n.tab.InsertString(string(k))
	if created {
		var cl cell
		switch n.m.Kind {
		case core.KindCombine:
			cl.vals = make([]float64, len(n.m.Sources))
			cl.present = make([]uint8, len(n.m.Sources))
		case core.KindFromParent:
			// value computed at finalization from parentVals
		default:
			if !n.isCount {
				cl.agg = n.m.Agg.New()
			}
		}
		n.cellData = append(n.cellData, cl)
		e.created++
		e.noteLive(1)
		n.nCreated++
		n.noteLive(1)
	}
	return &n.cellData[idx]
}

// forEachShifted enumerates the cell keys affected by a sibling-source
// update at key k: the product of [-hi, -lo] offsets per window, in
// ascending order.
func forEachShifted(c *model.KeyCodec, k model.Key, windows []core.Window, visit func(model.Key)) {
	var rec func(cur model.Key, i int)
	rec = func(cur model.Key, i int) {
		if i == len(windows) {
			visit(cur)
			return
		}
		w := windows[i]
		base := c.CodeAt(k, w.Dim)
		for off := -w.Hi; off <= -w.Lo; off++ {
			rec(c.WithCodeAt(cur, w.Dim, base+off), i+1)
		}
	}
	rec(k, 0)
}
