package sortscan

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/exec/cellmap"
	"awra/internal/exec/scan"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/plan"
	"awra/internal/qguard"
)

// Session evaluates a workflow over a continuous, ordered record feed
// — the natural deployment for the paper's monitoring domains, where
// network logs arrive already ordered by time. Records are pushed in
// the plan's sort-key order; measures finalize incrementally with the
// same watermark machinery as a batch run, and an optional Emit
// callback delivers each finalized region the moment no future record
// can change it. Memory stays bounded by the live frontier.
type Session struct {
	e      *engine
	basics []*node
	last   *model.Record
	rowBuf []byte // pushed records re-encoded into the batched row layout
	strict bool
	closed bool
	t0     time.Time
	span   *obs.Span
}

// EmitFunc receives finalized measure values as they flush. The key
// belongs to the measure's codec (resolve names via the workflow).
type EmitFunc func(measure string, key model.Key, value float64)

// SessionOptions configures a streaming session.
type SessionOptions struct {
	// Emit, if non-nil, is invoked for every finalized region of every
	// non-hidden measure, in flush order.
	Emit EmitFunc
	// ValidateOrder rejects out-of-order pushes instead of silently
	// producing wrong results (costs one comparison per record).
	ValidateOrder bool
	// Recorder, if non-nil, receives the session's scan span and
	// engine metrics (published at Close).
	Recorder *obs.Recorder
	// Guard, if non-nil, makes Push fail with the guard's typed error
	// once the session's context is canceled or a budget trips.
	Guard *qguard.Guard
}

// NewSession starts a streaming evaluation under the given plan.
func NewSession(c *core.Compiled, pl *plan.Plan, opts SessionOptions) *Session {
	rec := opts.Recorder
	if rec == nil {
		rec = obs.New()
	}
	e := newEngine(c, pl, false, rec)
	e.guard = opts.Guard
	s := &Session{e: e, strict: opts.ValidateOrder, t0: time.Now()}
	s.span = rec.Start(obs.SpanScan)
	for _, n := range e.nodes {
		if n.m.Kind == core.KindBasic {
			s.basics = append(s.basics, n)
		}
	}
	e.emit = opts.Emit
	return s
}

// Push feeds one record. Records must arrive in the plan sort-key
// order (ValidateOrder enforces it).
func (s *Session) Push(rec *model.Record) error {
	if s.closed {
		return fmt.Errorf("sortscan: push on closed session")
	}
	if s.strict {
		if s.last != nil && s.e.pl.SortKey.RecordLess(s.e.c.Schema, rec, s.last) {
			return fmt.Errorf("sortscan: record out of order (violates %s)",
				s.e.pl.SortKey.String(s.e.c.Schema))
		}
		cl := rec.Clone()
		s.last = &cl
	}
	s.e.stats.Records++
	if s.e.stats.Records&255 == 0 {
		if err := s.e.checkGuard(); err != nil {
			return err
		}
	}
	// Encode into the batched row layout so streaming shares the batch
	// engines' byte-level hot path exactly.
	e := s.e
	if s.rowBuf == nil {
		s.rowBuf = make([]byte, 8*(e.numDims+e.numMeasures))
	}
	for i := 0; i < e.numDims; i++ {
		var v int64
		if i < len(rec.Dims) {
			v = rec.Dims[i]
		}
		binary.LittleEndian.PutUint64(s.rowBuf[8*i:], uint64(v))
	}
	for i := 0; i < e.numMeasures; i++ {
		var v float64
		if i < len(rec.Ms) {
			v = rec.Ms[i]
		}
		binary.LittleEndian.PutUint64(s.rowBuf[8*(e.numDims+i):], math.Float64bits(v))
	}
	row := scan.Record(s.rowBuf)
	e.computeCodes(row)
	for _, n := range s.basics {
		s.e.scanRecord(n, row)
	}
	for _, n := range s.basics {
		if n.arcs[0].advancedCoarse {
			n.arcs[0].advancedCoarse = false
			if err := s.e.finalizeNode(n, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// Records reports how many records have been pushed.
func (s *Session) Records() int64 { return s.e.stats.Records }

// LiveCells reports the current number of live hash entries across
// all measures — the streaming frontier.
func (s *Session) LiveCells() int64 { return s.e.live }

// Close flushes every remaining cell and returns the complete result.
func (s *Session) Close() (*Result, error) {
	if s.closed {
		return nil, fmt.Errorf("sortscan: session closed twice")
	}
	s.closed = true
	for _, n := range s.e.nodes {
		if err := s.e.finalizeNode(n, true); err != nil {
			return nil, err
		}
	}
	s.span.SetAttr("records", fmt.Sprint(s.e.stats.Records))
	s.span.End()
	s.e.stats.ScanTime = time.Since(s.t0)
	s.e.publish()
	res := &Result{Tables: make(map[string]*core.Table), Stats: s.e.stats, Plan: s.e.pl}
	for _, name := range s.e.c.Outputs() {
		i, _ := s.e.c.Index(name)
		s.e.nodes[i].materialize()
		res.Tables[name] = s.e.nodes[i].out
	}
	return res, nil
}

// newEngine builds the runtime node graph (shared by batch runs and
// sessions).
func newEngine(c *core.Compiled, pl *plan.Plan, noEarlyFlush bool, rec *obs.Recorder) *engine {
	e := &engine{c: c, pl: pl, noEarlyFlush: noEarlyFlush, rec: rec}
	e.numDims = c.Schema.NumDims()
	e.numMeasures = c.Schema.NumMeasures()
	e.nodes = make([]*node, len(c.Measures))
	for i, m := range c.Measures {
		n := &node{
			idx:         i,
			m:           m,
			pl:          &pl.Nodes[i],
			tab:         cellmap.New(m.Codec.KeyBytes()),
			lastCellIdx: -1,
			baseArc:     -1,
			out:         core.NewTable(c.Schema, m.Gran),
		}
		n.srcArc = make([]int, len(m.Sources))
		for _, a := range pl.Nodes[i].Arcs {
			n.arcs = append(n.arcs, arcState{pl: a, th: make([]int64, 0, len(a.CmpKey))})
		}
		ai := 0
		if m.Kind == core.KindBasic {
			n.srcArc = nil
		} else {
			for si := range m.Sources {
				n.srcArc[si] = ai
				ai++
			}
			if m.Base >= 0 && !containsIdx(m.Sources, m.Base) {
				n.baseArc = ai
			}
		}
		if m.Kind == core.KindFromParent {
			n.parentVals = make(map[model.Key]float64)
		}
		// COUNT(*) cells keep their tally inline (no per-cell
		// aggregator allocation, no interface call per update).
		// Combine/fromparent cells do not use the cell aggregator.
		n.isCount = m.Agg == agg.Count &&
			(m.Kind == core.KindBasic || m.Kind == core.KindRollup || m.Kind == core.KindSibling)
		e.nodes[i] = n
	}
	for i, m := range c.Measures {
		for si, src := range m.Sources {
			e.nodes[src].deps = append(e.nodes[src].deps, depEdge{node: i, role: si})
		}
		if m.Base >= 0 && !containsIdx(m.Sources, m.Base) {
			e.nodes[m.Base].deps = append(e.nodes[m.Base].deps, depEdge{node: i, role: -1})
		}
	}
	// Shared per-record code table: intern every (dimension, level)
	// mapping the basic nodes need — watermark components and cell
	// granularities — so the scan maps each record exactly once.
	for _, n := range e.nodes {
		if n.m.Kind != core.KindBasic {
			continue
		}
		if len(n.arcs) > 0 {
			cmp := n.arcs[0].pl.CmpKey
			n.wmIdx = make([]int, len(cmp))
			for j, p := range cmp {
				n.wmIdx[j] = e.registerCode(p)
			}
		}
		for d := 0; d < e.numDims; d++ {
			if n.m.Gran[d] == c.Schema.Dim(d).ALL() {
				continue
			}
			n.cellIdx = append(n.cellIdx, e.registerCode(model.SortPart{Dim: d, Lvl: n.m.Gran[d]}))
		}
		n.keyBuf = make([]byte, 0, 8*len(n.cellIdx))
		if n.m.Filter != nil {
			e.needRec = true
		}
	}
	e.cpVals = make([]int64, len(e.cpParts))
	for j := range e.cpVals {
		// Sentinel outside any code space, so the first record reads as
		// "changed" on every component.
		e.cpVals[j] = int64(-1) << 62
	}
	e.cpChanged = make([]bool, len(e.cpParts))
	if e.needRec {
		e.frec = model.Record{Dims: make([]int64, e.numDims), Ms: make([]float64, e.numMeasures)}
	}
	return e
}
