package sortscan

import (
	"testing"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/model"
	"awra/internal/plan"
	"awra/internal/storage"
)

// TestSessionMatchesBatch: pushing records one at a time must produce
// the same tables as the batch run over the same sorted input.
func TestSessionMatchesBatch(t *testing.T) {
	s := netSchema(t)
	c := smaxWorkflow(t, s)
	recs := netRecords(1200, 21)
	day, _ := s.Dim(0).LevelByName("Day")
	key := model.SortKey{{Dim: 0, Lvl: day}, {Dim: 2, Lvl: 0}}
	nk, _ := key.Normalize(s)
	storage.SortRecords(recs, func(a, b *model.Record) bool { return nk.RecordLess(s, a, b) })
	pl, err := plan.Build(c, nk, nil)
	if err != nil {
		t.Fatal(err)
	}

	batch, err := RunSorted(c, pl, &storage.SliceSource{Recs: recs})
	if err != nil {
		t.Fatal(err)
	}

	sess := NewSession(c, pl, SessionOptions{ValidateOrder: true})
	for i := range recs {
		if err := sess.Push(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if sess.Records() != 1200 {
		t.Errorf("session records = %d", sess.Records())
	}
	res, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	for name, tbl := range batch.Tables {
		if !tbl.Equal(res.Tables[name], 0) {
			t.Errorf("measure %s differs between session and batch", name)
		}
	}
}

// TestSessionEmitIsEarlyAndComplete: the emit callback must deliver
// every finalized region exactly once, and most of them before Close.
func TestSessionEmitIsEarlyAndComplete(t *testing.T) {
	s := netSchema(t)
	hour, _ := s.Dim(0).LevelByName("Hour")
	g, _ := s.Normalize(model.Gran{hour, model.LevelALL, model.LevelALL, model.LevelALL})
	c, err := core.NewWorkflow(s).
		Basic("cnt", g, agg.Count, -1).
		Sliding("trend", "cnt", agg.Avg, []core.Window{{Dim: 0, Lo: -2, Hi: 0}}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	recs := netRecords(2000, 23)
	key := model.SortKey{{Dim: 0, Lvl: 0}}
	nk, _ := key.Normalize(s)
	storage.SortRecords(recs, func(a, b *model.Record) bool { return nk.RecordLess(s, a, b) })
	pl, err := plan.Build(c, nk, nil)
	if err != nil {
		t.Fatal(err)
	}

	type emission struct {
		measure string
		key     model.Key
	}
	var emissions []emission
	var beforeClose int
	closed := false
	sess := NewSession(c, pl, SessionOptions{Emit: func(m string, k model.Key, v float64) {
		emissions = append(emissions, emission{m, k})
		if !closed {
			beforeClose++
		}
	}})
	for i := range recs {
		if err := sess.Push(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	closed = true
	res, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Exactly one emission per output region, no duplicates.
	seen := map[emission]bool{}
	for _, e := range emissions {
		if seen[e] {
			t.Fatalf("duplicate emission %v", e)
		}
		seen[e] = true
	}
	total := 0
	for name, tbl := range res.Tables {
		total += len(tbl.Rows)
		for k := range tbl.Rows {
			if !seen[emission{name, k}] {
				t.Fatalf("region %s of %s never emitted", tbl.Codec.Format(k), name)
			}
		}
	}
	if len(emissions) != total {
		t.Errorf("%d emissions for %d regions", len(emissions), total)
	}
	// Streaming means most regions finalize before the end.
	if beforeClose < total/2 {
		t.Errorf("only %d of %d regions emitted before Close; streaming inert", beforeClose, total)
	}
	// The live frontier stayed far below the total region count.
	if sess.LiveCells() != 0 {
		t.Errorf("live cells after close = %d", sess.LiveCells())
	}
}

func TestSessionOrderValidation(t *testing.T) {
	s := netSchema(t)
	c := smaxWorkflow(t, s)
	day, _ := s.Dim(0).LevelByName("Day")
	key := model.SortKey{{Dim: 0, Lvl: day}}
	nk, _ := key.Normalize(s)
	pl, err := plan.Build(c, nk, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(c, pl, SessionOptions{ValidateOrder: true})
	r1 := model.Record{Dims: []int64{model.SecondCode(2004, 3, 5, 0, 0, 0), 1, 1, 1}, Ms: []float64{}}
	r2 := model.Record{Dims: []int64{model.SecondCode(2004, 3, 4, 0, 0, 0), 1, 1, 1}, Ms: []float64{}}
	if err := sess.Push(&r1); err != nil {
		t.Fatal(err)
	}
	if err := sess.Push(&r2); err == nil {
		t.Fatal("out-of-order push accepted")
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Close(); err == nil {
		t.Fatal("double close accepted")
	}
	if err := sess.Push(&r1); err == nil {
		t.Fatal("push after close accepted")
	}
}
