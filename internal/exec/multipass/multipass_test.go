package multipass

import (
	"math/rand"
	"path/filepath"
	"testing"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/model"
	"awra/internal/plan"
	"awra/internal/storage"
)

func schema3(t *testing.T) *model.Schema {
	t.Helper()
	s, err := model.NewSchema([]*model.Dimension{
		model.FixedFanout("A", 3, 10),
		model.FixedFanout("B", 3, 10),
		model.FixedFanout("C", 3, 10),
	}, "m")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func conflictingWorkflow(t *testing.T, s *model.Schema) *core.Compiled {
	t.Helper()
	all := model.LevelALL
	c, err := core.NewWorkflow(s).
		Basic("byA", model.Gran{0, all, all}, agg.Count, -1).
		Basic("byB", model.Gran{all, 0, all}, agg.Count, -1).
		Basic("byC", model.Gran{all, all, 0}, agg.Count, -1).
		Combine("total", []string{"byA"}, core.SumOf()).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPlanPassesRespectsDependencies(t *testing.T) {
	s := schema3(t)
	c := conflictingWorkflow(t, s)
	st := &plan.Stats{BaseCard: []float64{1e6, 1e6, 1e6}}
	passes, err := PlanPasses(c, 5000, st)
	if err != nil {
		t.Fatal(err)
	}
	// Every basic measure assigned exactly once.
	seen := map[string]int{}
	for _, p := range passes {
		if len(p.Measures) == 0 {
			t.Error("empty pass planned")
		}
		if p.EstBytes > 5000*3 { // generous slack for the lone-measure case
			t.Errorf("pass estimate %v far above budget", p.EstBytes)
		}
		for _, m := range p.Measures {
			seen[m]++
		}
	}
	for _, name := range []string{"byA", "byB", "byC"} {
		if seen[name] != 1 {
			t.Errorf("measure %s assigned %d times", name, seen[name])
		}
	}
}

func TestPlanPassesNoBasics(t *testing.T) {
	s := schema3(t)
	// A workflow cannot exist without basic measures (composites need
	// sources), so exercise the error path directly with a doctored
	// compiled workflow is impossible via the public API; instead
	// verify single-pass planning works for a trivial workflow.
	c, err := core.NewWorkflow(s).Basic("x", s.AllGran(), agg.Count, -1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	passes, err := PlanPasses(c, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 1 || len(passes[0].Measures) != 1 {
		t.Fatalf("passes = %+v", passes)
	}
}

func TestRunCleansUpAndReports(t *testing.T) {
	s := schema3(t)
	c := conflictingWorkflow(t, s)
	rng := rand.New(rand.NewSource(3))
	recs := make([]model.Record, 500)
	for i := range recs {
		recs[i] = model.Record{
			Dims: []int64{rng.Int63n(1000), rng.Int63n(1000), rng.Int63n(1000)},
			Ms:   []float64{float64(rng.Intn(5))},
		}
	}
	dir := t.TempDir()
	fact := filepath.Join(dir, "fact.rec")
	if err := storage.WriteAll(fact, 3, 1, recs); err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, fact, Options{
		MemoryBudget: 4000,
		Stats:        &plan.Stats{BaseCard: []float64{1e6, 1e6, 1e6}},
		TempDir:      dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Passes) < 2 {
		t.Errorf("expected multiple passes, got %d", len(res.Stats.Passes))
	}
	// Each pass scans the whole file.
	if res.Stats.Records != int64(len(res.Stats.Passes))*500 {
		t.Errorf("records = %d across %d passes", res.Stats.Records, len(res.Stats.Passes))
	}
	// total must equal the count of all records.
	sum := 0.0
	for _, v := range res.Tables["total"].Rows {
		sum += v
	}
	if sum != 500 {
		t.Errorf("total sums to %v", sum)
	}
	if res.Stats.SortTime <= 0 || res.Stats.JoinTime < 0 {
		t.Errorf("timers: %+v", res.Stats)
	}
}

func TestExportName(t *testing.T) {
	if exportName("__base(t:Hour)") != "hidden"+"base(t:Hour)" {
		t.Errorf("exportName hidden = %q", exportName("__base(t:Hour)"))
	}
	if exportName("plain") != "plain" {
		t.Errorf("exportName plain = %q", exportName("plain"))
	}
	if exportName("_") != "_" {
		t.Errorf("exportName short = %q", exportName("_"))
	}
}
