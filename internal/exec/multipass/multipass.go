// Package multipass implements the multi-pass sort/scan strategy of
// Section 5.3 ("Multi-Pass Sort/Scan"): when no single sort order
// keeps every measure's footprint within the memory budget, the
// basic measures are partitioned into several sort/scan passes, each
// with its own sort order; measures produced in different passes are
// materialized, and composite measures that span passes are combined
// with traditional (in-memory hash join) strategies once all of their
// inputs exist — exactly the paper's "materialize each individual
// dependent measure during the SS iteration and resort to traditional
// join strategies to combine them".
package multipass

import (
	"fmt"
	"sort"
	"time"

	"awra/internal/core"
	"awra/internal/exec/sortscan"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/opt"
	"awra/internal/plan"
	"awra/internal/qguard"
)

// Options configures a run.
type Options struct {
	// MemoryBudget bounds the estimated footprint of each pass's
	// streaming plan, in bytes. 0 means a single pass.
	MemoryBudget float64
	// Stats supplies cardinality estimates for footprint estimation.
	Stats *plan.Stats
	// TempDir receives external-sort files.
	TempDir string
	// ChunkRecords tunes the external sort.
	ChunkRecords int
	// ReadBatchBytes is the chunk size of the batched fact reads in
	// each pass (0 = scan.DefaultBatchBytes).
	ReadBatchBytes int
	// Recorder, if non-nil, receives one "pass" span per sort/scan
	// iteration (each containing the sortscan engine's spans) plus a
	// "combine" span, and the standard engine metrics.
	Recorder *obs.Recorder
	// Guard, if non-nil, enforces cancellation and resource budgets
	// across every pass (checked inside each pass and between passes).
	Guard *qguard.Guard
}

// Pass describes one sort/scan iteration of the chosen plan.
type Pass struct {
	SortKey  model.SortKey
	Measures []string // basic measures evaluated in this pass
	EstBytes float64
}

// Stats aggregates per-pass costs.
type Stats struct {
	Passes    []Pass
	SortTime  time.Duration
	ScanTime  time.Duration
	JoinTime  time.Duration
	Records   int64
	PeakCells int64
}

// Result holds the final measure tables (outputs only).
type Result struct {
	Tables map[string]*core.Table
	Stats  Stats
}

// PlanPasses partitions the workflow's basic measures into passes:
// greedily, each pass picks the candidate sort key whose plan keeps
// the largest number of still-unassigned basic measures within the
// budget, claims those measures, and repeats. A measure whose
// footprint exceeds the budget under every key is assigned alone to
// its best key (it cannot be helped by more passes).
func PlanPasses(c *core.Compiled, budget float64, stats *plan.Stats) ([]Pass, error) {
	var basics []int
	for i, m := range c.Measures {
		if m.Kind == core.KindBasic {
			basics = append(basics, i)
		}
	}
	if len(basics) == 0 {
		return nil, fmt.Errorf("multipass: workflow has no basic measures")
	}
	choices, err := opt.BruteForce(c, stats, 0)
	if err != nil {
		return nil, err
	}
	if budget <= 0 {
		best := choices[0]
		p := Pass{SortKey: best.Key, EstBytes: best.EstBytes}
		for _, i := range basics {
			p.Measures = append(p.Measures, c.Measures[i].Name)
		}
		return []Pass{p}, nil
	}

	unassigned := map[int]bool{}
	for _, i := range basics {
		unassigned[i] = true
	}
	var passes []Pass
	for len(unassigned) > 0 {
		type fit struct {
			covered []int
			bytes   float64
			key     model.SortKey
		}
		var best fit
		for _, ch := range choices {
			var covered []int
			var bytes float64
			// Claim unassigned measures cheapest-first under this key.
			var cands []int
			for i := range unassigned {
				cands = append(cands, i)
			}
			sort.Slice(cands, func(a, b int) bool {
				ca := ch.Plan.Nodes[cands[a]].EstCells
				cb := ch.Plan.Nodes[cands[b]].EstCells
				if ca != cb {
					return ca < cb
				}
				return cands[a] < cands[b]
			})
			for _, i := range cands {
				cost := ch.Plan.Nodes[i].EstCells * float64(48+c.Measures[i].Codec.KeyBytes())
				if bytes+cost <= budget {
					covered = append(covered, i)
					bytes += cost
				}
			}
			if len(covered) > len(best.covered) || (len(covered) == len(best.covered) && len(best.covered) > 0 && bytes < best.bytes) {
				best = fit{covered: covered, bytes: bytes, key: ch.Key}
			}
		}
		if len(best.covered) == 0 {
			// Some measure exceeds the budget under every key: give it
			// its own pass under its individually best key.
			var victim int
			for i := range unassigned {
				victim = i
				break
			}
			bestBytes := 0.0
			var bestKey model.SortKey
			for _, ch := range choices {
				cost := ch.Plan.Nodes[victim].EstCells * float64(48+c.Measures[victim].Codec.KeyBytes())
				if bestKey == nil || cost < bestBytes {
					bestBytes, bestKey = cost, ch.Key
				}
			}
			best = fit{covered: []int{victim}, bytes: bestBytes, key: bestKey}
		}
		p := Pass{SortKey: best.key, EstBytes: best.bytes}
		sort.Ints(best.covered)
		for _, i := range best.covered {
			p.Measures = append(p.Measures, c.Measures[i].Name)
			delete(unassigned, i)
		}
		passes = append(passes, p)
	}
	return passes, nil
}

// Run plans the passes and executes them over the fact file, then
// combines cross-pass composites.
func Run(c *core.Compiled, factPath string, opts Options) (*Result, error) {
	orec := opts.Recorder
	if orec == nil {
		orec = obs.New()
	}
	passes, err := PlanPasses(c, opts.MemoryBudget, opts.Stats)
	if err != nil {
		return nil, err
	}
	orec.Counter(obs.MPasses).Add(int64(len(passes)))
	res := &Result{Tables: make(map[string]*core.Table)}
	res.Stats.Passes = passes

	tables := make([]*core.Table, len(c.Measures))
	for pi, p := range passes {
		if err := opts.Guard.Err(); err != nil {
			return nil, err
		}
		// Build the pass sub-workflow: just this pass's basic
		// measures, re-declared over the same schema.
		w := core.NewWorkflow(c.Schema)
		for _, name := range p.Measures {
			m, err := c.MeasureByName(name)
			if err != nil {
				return nil, err
			}
			var mopts []core.MeasureOpt
			if m.Filter != nil {
				mopts = append(mopts, core.Where(*m.Filter))
			}
			w.Basic(exportName(name), m.Gran, m.Agg, m.FactMeasure, mopts...)
		}
		sub, err := w.Compile()
		if err != nil {
			return nil, fmt.Errorf("multipass: pass workflow: %w", err)
		}
		passSpan := orec.Start(obs.SpanPass)
		passSpan.SetAttr("pass", fmt.Sprint(pi))
		passSpan.SetAttr("key", p.SortKey.String(c.Schema))
		pr, err := sortscan.Run(sub, factPath, sortscan.Options{
			SortKey:      p.SortKey,
			TempDir:      opts.TempDir,
			ChunkRecords: opts.ChunkRecords,
			ReadBatchBytes: opts.ReadBatchBytes,
			Stats:        opts.Stats,
			Recorder:     orec.At(passSpan),
			Guard:        opts.Guard,
		})
		passSpan.End()
		if err != nil {
			return nil, fmt.Errorf("multipass: pass %s: %w", p.SortKey.String(c.Schema), err)
		}
		res.Stats.SortTime += pr.Stats.SortTime
		res.Stats.ScanTime += pr.Stats.ScanTime
		res.Stats.Records += pr.Stats.Records
		if pr.Stats.PeakCells > res.Stats.PeakCells {
			res.Stats.PeakCells = pr.Stats.PeakCells
		}
		for _, name := range p.Measures {
			i, err := c.Index(name)
			if err != nil {
				return nil, err
			}
			tables[i] = pr.Tables[exportName(name)]
		}
	}

	// Combine composites with traditional in-memory strategies, in
	// topological order.
	combSpan := orec.Start(obs.SpanCombine)
	var combined int64
	for i, m := range c.Measures {
		if m.Kind == core.KindBasic {
			continue
		}
		if err := opts.Guard.Err(); err != nil {
			return nil, err
		}
		tbl, err := core.ComputeComposite(c, m, tables)
		if err != nil {
			return nil, fmt.Errorf("multipass: combining %q: %w", m.Name, err)
		}
		combined += int64(len(tbl.Rows))
		ns := obs.NodeStats{Node: m.Name, CellsFinalized: int64(len(tbl.Rows))}
		for _, si := range m.Sources {
			if tables[si] != nil {
				ns.RecordsIn += int64(len(tables[si].Rows))
			}
		}
		if !m.Hidden {
			ns.RecordsOut = int64(len(tbl.Rows))
			if err := opts.Guard.NoteResultRows(int64(len(tbl.Rows))); err != nil {
				return nil, err
			}
		}
		orec.MergeNodeStats(ns)
		tables[i] = tbl
	}
	combSpan.End()
	res.Stats.JoinTime = combSpan.Duration()
	orec.Counter(obs.MCellsFinalized).Add(combined)

	for _, name := range c.Outputs() {
		i, _ := c.Index(name)
		res.Tables[name] = tables[i]
	}
	return res, nil
}

// exportName works around the reserved "__" prefix for hidden base
// measures when re-declaring them in a pass sub-workflow.
func exportName(name string) string {
	if len(name) >= 2 && name[:2] == "__" {
		return "hidden" + name[2:]
	}
	return name
}
