package enginetest

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"awra/aw"
	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/exec/sortscan"
	"awra/internal/gen"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/qguard"
)

// shardCounts is the shard-parallelism matrix: an even split, a
// power-of-two split, and a prime count that cannot divide the unit
// space evenly.
var shardCounts = []int{2, 4, 7}

// runSerialVsSharded evaluates the workflow serially and with every
// shard count, requiring bit-identical tables (eps 0): every aggregate
// in these fixtures is integer-valued, so sharding must not perturb a
// single bit.
func runSerialVsSharded(t *testing.T, c *core.Compiled, fact string, key model.SortKey) {
	t.Helper()
	dir := filepath.Dir(fact)
	want, err := sortscan.Run(c, fact, sortscan.Options{SortKey: key, TempDir: dir})
	if err != nil {
		t.Fatalf("serial sortscan: %v", err)
	}
	for _, shards := range shardCounts {
		rec := obs.New()
		got, err := sortscan.RunSharded(c, fact, sortscan.ShardedOptions{
			SortKey: key, Shards: shards, TempDir: dir, Recorder: rec,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if d := diffTables(want.Tables, got.Tables, 0); d != "" {
			t.Fatalf("shards=%d: sharded vs serial: %s", shards, d)
		}
		if got.Stats.Records != want.Stats.Records {
			t.Errorf("shards=%d: records %d, want %d", shards, got.Stats.Records, want.Stats.Records)
		}
		snap := rec.Snapshot()
		if n := snap.Counters[obs.MShardsPlanned]; n != int64(shards) {
			t.Errorf("shards=%d: shards_planned = %d", shards, n)
		}
		if skew := snap.Gauges[obs.GShardSkew]; skew < 1000 {
			t.Errorf("shards=%d: shard_skew_ratio = %d, want >= 1000 permille", shards, skew)
		}
	}
}

// synthCube writes a synthetic-cube fact file into a fresh temp dir.
func synthCube(t *testing.T, n int64, seed int64) (string, *model.Schema) {
	t.Helper()
	fact := filepath.Join(t.TempDir(), "synth.rec")
	s, err := gen.Synth(fact, n, gen.SynthConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return fact, s
}

// TestShardedMatchesSerialSynthCube: mixed workflows (basic, rollup,
// sliding, combine — all nesting inside shard units, plus one
// non-nesting basic exercising the cross-shard state-merge path) over
// the uniform synthetic cube, under fine and coarse shard-prefix
// levels. Composite granularities stay at or below the shard level on
// the shard dimension; sliding windows stay off it.
func TestShardedMatchesSerialSynthCube(t *testing.T) {
	fact, s := synthCube(t, 20000, 2006)
	all := model.LevelALL
	cases := []struct {
		name string
		key  model.SortKey
		wf   *core.Workflow
	}{
		{
			// Shard units = base codes of A1: every composite gran keeps
			// A1 at level 0; "sum1" (A1 at level 1) spans units and must
			// take the state-merge path.
			name: "fine",
			key:  model.SortKey{{Dim: 0, Lvl: 0}, {Dim: 1, Lvl: 0}},
			wf: core.NewWorkflow(s).
				Basic("cnt", model.Gran{0, 1, all, all}, agg.Count, -1).
				Basic("sum1", model.Gran{1, all, all, all}, agg.Sum, 0).
				Rollup("roll", model.Gran{0, all, all, all}, "cnt", agg.Sum).
				Sliding("trend", "cnt", agg.Sum, []core.Window{{Dim: 1, Lo: -1, Hi: 1}}).
				Combine("ratio", []string{"cnt", "trend"}, core.Ratio(0, 1)),
		},
		{
			// Coarse units (level 2 of A1): few units, forcing LPT
			// balancing; the level-2 rollup now nests.
			name: "coarse",
			key:  model.SortKey{{Dim: 0, Lvl: 2}, {Dim: 1, Lvl: 0}},
			wf: core.NewWorkflow(s).
				Basic("cnt", model.Gran{0, 1, all, all}, agg.Count, -1).
				Basic("top", model.Gran{all, 0, all, all}, agg.Sum, 0).
				Rollup("per2", model.Gran{2, all, all, all}, "cnt", agg.Sum).
				Sliding("trend", "cnt", agg.Sum, []core.Window{{Dim: 1, Lo: -1, Hi: 1}}).
				Combine("ratio", []string{"cnt", "trend"}, core.Ratio(0, 1)),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := tc.wf.Compile()
			if err != nil {
				t.Fatal(err)
			}
			runSerialVsSharded(t, c, fact, tc.key)
		})
	}
}

// TestShardedMatchesSerialCountDistinct: a COUNT DISTINCT basic whose
// granularity is ALL on the shard dimension cannot nest inside shard
// units, so its per-shard distinct-value states must flow through the
// aggregator Merge (set union) path — and still be exact.
func TestShardedMatchesSerialCountDistinct(t *testing.T) {
	fact, s := synthCube(t, 15000, 99)
	all := model.LevelALL
	w := core.NewWorkflow(s).
		Basic("cnt", model.Gran{0, 1, all, all}, agg.Count, -1).
		Basic("ndv", model.Gran{all, 0, all, all}, agg.CountDistinct, 0).
		Basic("peak", model.Gran{all, 1, all, all}, agg.Max, 0)
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	key := model.SortKey{{Dim: 0, Lvl: 0}, {Dim: 1, Lvl: 0}}
	runSerialVsSharded(t, c, fact, key)
}

// TestShardedMatchesSerialAttackLog: the multi-recon shape of the
// paper's Section 7.2 on the attack-log generator, sharded by t:Day.
// Five days across up to seven shards also exercises empty shards.
func TestShardedMatchesSerialAttackLog(t *testing.T) {
	fact := filepath.Join(t.TempDir(), "net.rec")
	s, _, err := gen.NetLog(fact, 30000, gen.NetConfig{Days: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hour, err := s.Dim(0).LevelByName("Hour")
	if err != nil {
		t.Fatal(err)
	}
	day, err := s.Dim(0).LevelByName("Day")
	if err != nil {
		t.Fatal(err)
	}
	all := model.LevelALL
	w := core.NewWorkflow(s)
	w.Basic("traffic", model.Gran{hour, all, 1, all}, agg.Count, -1)
	w.Rollup("busy", model.Gran{hour, all, all, all}, "traffic", agg.Count, core.Where(core.MWhere(0, core.Gt, 2)))
	w.Basic("srcActivity", model.Gran{day, 0, 1, all}, agg.Count, -1)
	w.Rollup("fanIn", model.Gran{day, all, 1, all}, "srcActivity", agg.Count)
	w.Rollup("sweeps", model.Gran{day, all, all, all}, "fanIn", agg.Count, core.Where(core.MWhere(0, core.Ge, 10)))
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	key := model.SortKey{{Dim: 0, Lvl: day}, {Dim: 2, Lvl: 0}, {Dim: 1, Lvl: 0}}
	runSerialVsSharded(t, c, fact, key)
}

// TestShardedRejectsUnshardable: a sliding window on the shard
// dimension means sibling regions cross shard-unit boundaries; the
// engine must refuse rather than silently compute wrong answers.
func TestShardedRejectsUnshardable(t *testing.T) {
	fact, s := synthCube(t, 2000, 5)
	all := model.LevelALL
	w := core.NewWorkflow(s).
		Basic("cnt", model.Gran{0, all, all, all}, agg.Count, -1).
		Sliding("trend", "cnt", agg.Sum, []core.Window{{Dim: 0, Lo: -1, Hi: 1}})
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	_, err = sortscan.RunSharded(c, fact, sortscan.ShardedOptions{
		SortKey: model.SortKey{{Dim: 0, Lvl: 1}}, Shards: 2, TempDir: filepath.Dir(fact),
	})
	if err == nil {
		t.Fatal("unshardable workflow accepted")
	}
}

// TestShardedCancellationMidShard: a pre-canceled context must abort
// before any shard work, and a budget trip inside one shard worker
// must surface as the typed error with no temp files left behind.
func TestShardedCancellationMidShard(t *testing.T) {
	fact, s := synthCube(t, 10000, 41)
	all := model.LevelALL
	w := core.NewWorkflow(s).Basic("cnt", model.Gran{0, 1, all, all}, agg.Count, -1)
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	key := model.SortKey{{Dim: 0, Lvl: 0}, {Dim: 1, Lvl: 0}}

	t.Run("pre-canceled", func(t *testing.T) {
		tempDir := t.TempDir()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := sortscan.RunSharded(c, fact, sortscan.ShardedOptions{
			SortKey: key, Shards: 4, TempDir: tempDir,
			Guard: qguard.New(ctx, qguard.Limits{}),
		})
		if !errors.Is(err, qguard.ErrCanceled) {
			t.Fatalf("got %v, want ErrCanceled", err)
		}
		assertTempDirClean(t, tempDir)
	})

	t.Run("live-cell-budget-in-shard", func(t *testing.T) {
		tempDir := t.TempDir()
		// 10 live cells across 4 shards: each worker gets a 3-cell slice
		// and must trip while scanning its shard.
		_, err := sortscan.RunSharded(c, fact, sortscan.ShardedOptions{
			SortKey: key, Shards: 4, TempDir: tempDir,
			Guard: qguard.New(context.Background(), qguard.Limits{MaxLiveCells: 10}),
		})
		be, ok := qguard.AsBudget(err)
		if !ok || be.Resource != qguard.ResLiveCells {
			t.Fatalf("got %v, want live-cells BudgetError", err)
		}
		assertTempDirClean(t, tempDir)
	})

	t.Run("mid-flight-cancel", func(t *testing.T) {
		if testing.Short() {
			t.Skip("timing-dependent")
		}
		bigFact := filepath.Join(t.TempDir(), "big.rec")
		if _, err := gen.Synth(bigFact, 300000, gen.SynthConfig{Seed: 43}); err != nil {
			t.Fatal(err)
		}
		tempDir := t.TempDir()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		g := qguard.New(ctx, qguard.Limits{})
		done := make(chan error, 1)
		go func() {
			_, err := sortscan.RunSharded(c, bigFact, sortscan.ShardedOptions{
				SortKey: key, Shards: 4, TempDir: tempDir, Guard: g,
			})
			done <- err
		}()
		// Cancel as soon as shard files start appearing, so workers are
		// mid-sort or mid-scan when the signal lands.
		for i := 0; ; i++ {
			entries, _ := os.ReadDir(tempDir)
			if len(entries) > 0 || i > 10000 {
				break
			}
		}
		cancel()
		if err := <-done; !errors.Is(err, qguard.ErrCanceled) {
			t.Fatalf("got %v, want ErrCanceled", err)
		}
		assertTempDirClean(t, tempDir)
	})
}

// runPublic evaluates through the public context-first API with the
// given engine and parallelism.
func runPublic(t *testing.T, c *core.Compiled, fact string, eng aw.Engine, par int) aw.Results {
	t.Helper()
	res, err := aw.RunCompiled(context.Background(), c, aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{Engine: eng, Parallelism: par},
		TempDir:     filepath.Dir(fact),
	})
	if err != nil {
		t.Fatalf("engine=%v parallelism=%d: %v", eng, par, err)
	}
	return res
}

// TestShardedThroughPublicAPI: EngineAuto with Parallelism > 1 must
// pick the sharded engine for a shardable workflow and agree with the
// serial default, and explicit EngineShardScan must honor every
// parallelism level.
func TestShardedThroughPublicAPI(t *testing.T) {
	fact, s := synthCube(t, 12000, 17)
	all := model.LevelALL
	c, err := core.NewWorkflow(s).
		Basic("cnt", model.Gran{0, 1, all, all}, agg.Count, -1).
		Rollup("roll", model.Gran{0, all, all, all}, "cnt", agg.Sum).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	want := runPublic(t, c, fact, aw.EngineSortScan, 0)
	for _, par := range shardCounts {
		got := runPublic(t, c, fact, aw.EngineShardScan, par)
		if d := diffTables(want, got, 0); d != "" {
			t.Fatalf("parallelism=%d: %s", par, d)
		}
	}
	// EngineAuto + Parallelism resolves to the sharded engine.
	got := runPublic(t, c, fact, aw.EngineAuto, 4)
	if d := diffTables(want, got, 0); d != "" {
		t.Fatalf("auto parallel: %s", d)
	}
}
