package enginetest

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"awra/aw"
	"awra/internal/faultfs"
	"awra/internal/obs"
	"awra/internal/storage"
)

// faultEngine pairs an engine name with the options that drive it
// through the public API. The obsWorkflow fixture is partition- and
// shard-valid, so the full six-engine matrix applies.
type faultEngine struct {
	name string
	opts aw.QueryOptions
}

func faultEngines() []faultEngine {
	return []faultEngine{
		{"sortscan", aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EngineSortScan}}},
		{"shardscan", aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EngineShardScan, Parallelism: 3}}},
		{"singlescan", aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EngineSingleScan}}},
		{"multipass", aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EngineMultiPass}}},
		{"partscan", aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EnginePartScan}, PartitionDim: 0, Partitions: 2}},
		{"relational", aw.QueryOptions{ExecOptions: aw.ExecOptions{Engine: aw.EngineRelational}}},
	}
}

// assertTempDirClean fails if the engine left any temp artifacts (sort
// runs, spills, partitions, baseline spools) behind.
func assertTempDirClean(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("leftover temp file: %s", e.Name())
	}
}

// corruptFactRecord flips a byte in record i of a fact file written by
// writeFact (2 dims, 1 measure, format v2: 28-byte records after a
// 32-byte header).
func corruptFactRecord(t *testing.T, path string, i int) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[32+i*28] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFaultMatrix drives every engine through the public API under
// three injected faults — cancellation before the scan, an I/O error
// mid-read, and a corrupt row (strict and degraded) — asserting typed
// errors, metric counts, and no leaked temp files.
func TestFaultMatrix(t *testing.T) {
	g := NewGen(71, 2)
	c := obsWorkflow(t, g)
	recs := g.Records(2000)
	fact := writeFact(t, g, recs)

	for _, eng := range faultEngines() {
		t.Run(eng.name+"/canceled", func(t *testing.T) {
			tempDir := t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			rec := aw.NewRecorder()
			o := eng.opts
			o.TempDir = tempDir
			o.Recorder = rec
			_, err := aw.RunCompiled(ctx, c, aw.FromFile(fact), o)
			if !errors.Is(err, aw.ErrCanceled) {
				t.Fatalf("got %v, want ErrCanceled", err)
			}
			if n := rec.Counter(obs.MQueriesCanceled).Value(); n != 1 {
				t.Errorf("queries_canceled = %d, want 1", n)
			}
			assertTempDirClean(t, tempDir)
		})

		t.Run(eng.name+"/read-error", func(t *testing.T) {
			tempDir := t.TempDir()
			// ShortReads stops bufio from satisfying a small file in one
			// underlying read, so the byte budget trips mid-scan on every
			// engine.
			restore := storage.SwapFS(faultfs.New().FailReadAfter(4096).ShortReads())
			o := eng.opts
			o.TempDir = tempDir
			_, err := aw.RunCompiled(context.Background(), c, aw.FromFile(fact), o)
			restore()
			if !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("got %v, want ErrInjected", err)
			}
			assertTempDirClean(t, tempDir)
		})

		t.Run(eng.name+"/corrupt-strict", func(t *testing.T) {
			tempDir := t.TempDir()
			badFact := filepath.Join(t.TempDir(), "bad.rec")
			b, err := os.ReadFile(fact)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(badFact, b, 0o644); err != nil {
				t.Fatal(err)
			}
			corruptFactRecord(t, badFact, 1000)
			o := eng.opts
			o.TempDir = tempDir
			_, err = aw.RunCompiled(context.Background(), c, aw.FromFile(badFact), o)
			if !errors.Is(err, storage.ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
			assertTempDirClean(t, tempDir)
		})

		t.Run(eng.name+"/corrupt-skip", func(t *testing.T) {
			tempDir := t.TempDir()
			badFact := filepath.Join(t.TempDir(), "bad.rec")
			b, err := os.ReadFile(fact)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(badFact, b, 0o644); err != nil {
				t.Fatal(err)
			}
			corruptFactRecord(t, badFact, 500)
			corruptFactRecord(t, badFact, 1500)
			rec := aw.NewRecorder()
			o := eng.opts
			o.TempDir = tempDir
			o.Recorder = rec
			o.SkipCorruptRows = true
			res, err := aw.RunCompiled(context.Background(), c, aw.FromFile(badFact), o)
			if err != nil {
				t.Fatalf("degraded run failed: %v", err)
			}
			if len(res) == 0 {
				t.Fatal("degraded run produced no tables")
			}
			// Multipass re-reads the fact per pass, so the count is a
			// multiple of 2; every engine must report at least the two
			// corrupt rows.
			if n := rec.Counter(obs.MRowsCorruptSkipped).Value(); n < 2 {
				t.Errorf("rows_corrupt_skipped = %d, want >= 2", n)
			}
			assertTempDirClean(t, tempDir)
		})
	}
}

// TestFaultCancelLatencyLargeScan is the tentpole's latency contract:
// on a million-row fact file, cancellation mid-query must surface
// ErrCanceled within 250ms on every engine, leave no temp files, and
// increment queries_canceled.
func TestFaultCancelLatencyLargeScan(t *testing.T) {
	if testing.Short() {
		t.Skip("large fact file")
	}
	g := NewGen(72, 2)
	c := obsWorkflow(t, g)
	recs := g.Records(1_000_000)
	fact := writeFact(t, g, recs)

	for _, eng := range faultEngines() {
		t.Run(eng.name, func(t *testing.T) {
			tempDir := t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var canceledAt time.Time
			timer := time.AfterFunc(50*time.Millisecond, func() {
				canceledAt = time.Now()
				cancel()
			})
			defer timer.Stop()

			rec := aw.NewRecorder()
			o := eng.opts
			o.TempDir = tempDir
			o.Recorder = rec
			_, err := aw.RunCompiled(ctx, c, aw.FromFile(fact), o)
			returned := time.Now()
			if !errors.Is(err, aw.ErrCanceled) {
				t.Fatalf("got %v, want ErrCanceled (query may have finished before the cancel fired)", err)
			}
			// canceledAt was written before cancel(); observing the
			// canceled error synchronizes with it.
			if lat := returned.Sub(canceledAt); lat > 250*time.Millisecond {
				t.Errorf("cancellation latency %v, want <= 250ms", lat)
			}
			if n := rec.Counter(obs.MQueriesCanceled).Value(); n != 1 {
				t.Errorf("queries_canceled = %d, want 1", n)
			}
			assertTempDirClean(t, tempDir)
		})
	}
}
