package enginetest

import (
	"path/filepath"
	"testing"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/exec/singlescan"
	"awra/internal/exec/sortscan"
	"awra/internal/gen"
	"awra/internal/model"
	"awra/internal/storage"
)

// runBatchedEngines evaluates the workflow through every file-backed
// engine on the batched zero-copy pipeline and requires each result to
// be bit-identical (eps 0) to the seed decoder's: the tables computed
// from the same file read row-at-a-time through storage.Open and
// evaluated by the reference algebra evaluator.
func runBatchedEngines(t *testing.T, c *core.Compiled, fact string, key model.SortKey) {
	t.Helper()
	dir := filepath.Dir(fact)

	// Oracle: the seed row-at-a-time decoder feeding the in-memory
	// reference evaluator — no batched reads anywhere on this path.
	recs, _, err := storage.ReadAll(fact)
	if err != nil {
		t.Fatal(err)
	}
	want := runAlgebra(t, c, recs)

	ss, err := sortscan.Run(c, fact, sortscan.Options{SortKey: key, TempDir: dir})
	if err != nil {
		t.Fatalf("sortscan: %v", err)
	}
	if d := diffTables(want, ss.Tables, 0); d != "" {
		t.Fatalf("sortscan vs seed decoder: %s", d)
	}

	sg, err := singlescan.RunFile(c, fact, singlescan.Options{TempDir: dir})
	if err != nil {
		t.Fatalf("singlescan: %v", err)
	}
	if d := diffTables(want, sg.Tables, 0); d != "" {
		t.Fatalf("singlescan vs seed decoder: %s", d)
	}

	sh, err := sortscan.RunSharded(c, fact, sortscan.ShardedOptions{SortKey: key, Shards: 3, TempDir: dir})
	if err != nil {
		t.Fatalf("shardscan: %v", err)
	}
	if d := diffTables(want, sh.Tables, 0); d != "" {
		t.Fatalf("shardscan vs seed decoder: %s", d)
	}
}

// TestBatchedPipelineMatchesSeedDecoderSynthCube: the zero-copy
// batched pipeline against the reference evaluator on the uniform
// synthetic cube, over a mixed workflow (filters, rollups, combine).
func TestBatchedPipelineMatchesSeedDecoderSynthCube(t *testing.T) {
	fact, s := synthCube(t, 20000, 2006)
	all := model.LevelALL
	w := core.NewWorkflow(s)
	w.Basic("fine", model.Gran{1, 0, all, all}, agg.Count, -1)
	w.Basic("valsum", model.Gran{2, all, 0, all}, agg.Sum, 0)
	w.Basic("filtered", model.Gran{1, 0, all, all}, agg.Count, -1, core.Where(core.MWhere(0, core.Gt, 2)))
	w.Rollup("perRegion", model.Gran{2, all, all, all}, "fine", agg.Count)
	w.Rollup("hot", model.Gran{2, 0, all, all}, "fine", agg.Count, core.Where(core.MWhere(0, core.Ge, 3)))
	w.Combine("share", []string{"fine", "filtered"}, core.SumOf())
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	runBatchedEngines(t, c, fact, model.SortKey{{Dim: 0, Lvl: 2}, {Dim: 1, Lvl: 0}})
}

// TestBatchedPipelineMatchesSeedDecoderAttackLog: same check over the
// skewed network attack log (the paper's monitoring domain).
func TestBatchedPipelineMatchesSeedDecoderAttackLog(t *testing.T) {
	fact := filepath.Join(t.TempDir(), "net.rec")
	s, _, err := gen.NetLog(fact, 30000, gen.NetConfig{Days: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hour, err := s.Dim(0).LevelByName("Hour")
	if err != nil {
		t.Fatal(err)
	}
	day, err := s.Dim(0).LevelByName("Day")
	if err != nil {
		t.Fatal(err)
	}
	all := model.LevelALL
	w := core.NewWorkflow(s)
	w.Basic("traffic", model.Gran{hour, all, 1, all}, agg.Count, -1)
	w.Rollup("busy", model.Gran{hour, all, all, all}, "traffic", agg.Count, core.Where(core.MWhere(0, core.Gt, 2)))
	w.Basic("srcActivity", model.Gran{day, 0, 1, all}, agg.Count, -1)
	w.Rollup("fanIn", model.Gran{day, all, 1, all}, "srcActivity", agg.Count)
	w.Rollup("sweeps", model.Gran{day, all, all, all}, "fanIn", agg.Count, core.Where(core.MWhere(0, core.Ge, 10)))
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	runBatchedEngines(t, c, fact, model.SortKey{{Dim: 0, Lvl: day}, {Dim: 2, Lvl: 0}, {Dim: 1, Lvl: 0}})
}
