package enginetest

import (
	"context"
	"path/filepath"
	"testing"

	"awra/aw"
	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/exec/multipass"
	"awra/internal/exec/partscan"
	"awra/internal/exec/singlescan"
	"awra/internal/exec/sortscan"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/relbaseline"
	"awra/internal/storage"
)

// obsWorkflow builds a small fixed workflow that every engine —
// including partscan, which forbids D_ALL, coarser-than-partition
// granularities, and windows on the partition dimension — can
// evaluate: a base-granularity count rolled up along dimension 1.
func obsWorkflow(t *testing.T, g *Gen) *core.Compiled {
	t.Helper()
	sch := g.Schema
	base := make(model.Gran, sch.NumDims())
	roll := make(model.Gran, sch.NumDims())
	roll[1] = 1 // one level up dimension 1's hierarchy
	w := core.NewWorkflow(sch).
		Basic("cnt", base, agg.Count, -1).
		Rollup("roll", roll, "cnt", agg.Sum)
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSortScanEmitsMetrics pins the tentpole contract on a golden
// workflow: a sort/scan run must report every record it consumed and
// every cell it flushed through the shared metric vocabulary.
func TestSortScanEmitsMetrics(t *testing.T) {
	g := NewGen(42, 2)
	c := obsWorkflow(t, g)
	recs := g.Records(500)
	fact := writeFact(t, g, recs)

	rec := obs.New()
	key := model.SortKey{{Dim: 0, Lvl: 0}, {Dim: 1, Lvl: 0}}
	res, err := sortscan.Run(c, fact, sortscan.Options{
		SortKey: key, TempDir: filepath.Dir(fact), Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if got := snap.Counters[obs.MRecordsScanned]; got != int64(len(recs)) {
		t.Errorf("records_scanned = %d, want %d", got, len(recs))
	}
	if snap.Counters[obs.MCellsFinalized] == 0 {
		t.Error("cells_finalized = 0, want > 0")
	}
	if snap.Counters[obs.MCellsCreated] == 0 {
		t.Error("cells_created = 0, want > 0")
	}
	if snap.Gauges[obs.GLiveCellsHWM] == 0 {
		t.Error("live_cells_hwm = 0, want > 0")
	}
	// Stats stays a consistent view over the recorder.
	if res.Stats.Records != snap.Counters[obs.MRecordsScanned] {
		t.Errorf("Stats.Records %d != records_scanned %d", res.Stats.Records, snap.Counters[obs.MRecordsScanned])
	}
	if res.Stats.PeakCells != snap.Gauges[obs.GLiveCellsHWM] {
		t.Errorf("Stats.PeakCells %d != live_cells_hwm %d", res.Stats.PeakCells, snap.Gauges[obs.GLiveCellsHWM])
	}
	// Span tree: sort and scan phases must be present and ended.
	names := map[string]bool{}
	for _, s := range snap.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{obs.SpanSort, obs.SpanScan, obs.SpanFinalize} {
		if !names[want] {
			t.Errorf("span %q missing from tree %v", want, names)
		}
	}
}

// TestQuerySpanBoundsPhases: through the public API, the phase spans
// must nest under one "query" span whose duration bounds their sum
// (the -trace invariant).
func TestQuerySpanBoundsPhases(t *testing.T) {
	g := NewGen(43, 2)
	c := obsWorkflow(t, g)
	recs := g.Records(800)
	fact := writeFact(t, g, recs)

	rec := aw.NewRecorder()
	_, err := aw.RunCompiled(context.Background(), c, aw.FromFile(fact), aw.QueryOptions{
		ExecOptions: aw.ExecOptions{Engine: aw.EngineSortScan, Recorder: rec},
		TempDir:     filepath.Dir(fact),
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != obs.SpanQuery {
		t.Fatalf("want a single query root span, got %+v", snap.Spans)
	}
	q := snap.Spans[0]
	if len(q.Children) == 0 {
		t.Fatal("query span has no phase children")
	}
	var sum int64
	for _, ch := range q.Children {
		sum += ch.DurationUs
	}
	if sum > q.DurationUs {
		t.Errorf("phase durations sum to %dus, exceeding query span %dus", sum, q.DurationUs)
	}
}

// TestEnginesShareMetricVocabulary: all four engines plus partscan
// must publish the same core metric names for the same workload, so
// snapshots are comparable across evaluators.
func TestEnginesShareMetricVocabulary(t *testing.T) {
	g := NewGen(44, 2)
	c := obsWorkflow(t, g)
	recs := g.Records(600)
	fact := writeFact(t, g, recs)
	tempDir := filepath.Dir(fact)
	key := model.SortKey{{Dim: 0, Lvl: 0}, {Dim: 1, Lvl: 0}}

	engines := map[string]func(rec *obs.Recorder) error{
		"sortscan": func(rec *obs.Recorder) error {
			_, err := sortscan.Run(c, fact, sortscan.Options{SortKey: key, TempDir: tempDir, Recorder: rec})
			return err
		},
		"singlescan": func(rec *obs.Recorder) error {
			r, err := storage.Open(fact)
			if err != nil {
				return err
			}
			defer r.Close()
			_, err = singlescan.Run(c, r, singlescan.Options{TempDir: tempDir, Recorder: rec})
			return err
		},
		"multipass": func(rec *obs.Recorder) error {
			_, err := multipass.Run(c, fact, multipass.Options{TempDir: tempDir, Recorder: rec})
			return err
		},
		"partscan": func(rec *obs.Recorder) error {
			_, err := partscan.Run(c, fact, partscan.Options{
				PartitionDim: 0, PartitionLevel: 0, Partitions: 2,
				SortKey: key, TempDir: tempDir, Recorder: rec,
			})
			return err
		},
		"relational": func(rec *obs.Recorder) error {
			_, err := relbaseline.Run(c, fact, relbaseline.Options{TempDir: tempDir, Recorder: rec})
			return err
		},
	}
	core := []string{obs.MRecordsScanned, obs.MCellsCreated, obs.MCellsFinalized, obs.MSpillEvents, obs.MSpillBytes}
	gauges := []string{obs.GLiveCellsHWM, obs.GHashBytesHWM}
	for name, run := range engines {
		rec := obs.New()
		if err := run(rec); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		snap := rec.Snapshot()
		for _, m := range core {
			if _, ok := snap.Counters[m]; !ok {
				t.Errorf("%s: counter %q missing from snapshot (have %v)", name, m, snap.Counters)
			}
		}
		for _, m := range gauges {
			if _, ok := snap.Gauges[m]; !ok {
				t.Errorf("%s: gauge %q missing from snapshot (have %v)", name, m, snap.Gauges)
			}
		}
		if got := snap.Counters[obs.MRecordsScanned]; got < int64(len(recs)) {
			t.Errorf("%s: records_scanned = %d, want >= %d", name, got, len(recs))
		}
		if snap.Counters[obs.MCellsFinalized] == 0 {
			t.Errorf("%s: cells_finalized = 0, want > 0", name)
		}
	}
}
