// Package enginetest provides the cross-engine equivalence harness:
// randomized schemas, datasets, and workflows evaluated by every
// engine, whose results must agree exactly. The single-scan engine and
// the in-memory algebra evaluator act as independent oracles for the
// streaming sort/scan engine under many different sort keys.
package enginetest

import (
	"fmt"
	"math/rand"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/model"
)

// Gen generates random but always-valid workloads.
type Gen struct {
	Rng *rand.Rand
	// Schema under test.
	Schema *model.Schema
	// BaseRange bounds base-domain codes (codes are uniform in
	// [0, BaseRange) per dimension).
	BaseRange int64
}

// NewGen builds a generator over a d-dimensional fixed-fanout schema.
func NewGen(seed int64, dims int) *Gen {
	rng := rand.New(rand.NewSource(seed))
	ds := make([]*model.Dimension, dims)
	for i := range ds {
		ds[i] = model.FixedFanout(fmt.Sprintf("X%d", i), 3, 4)
	}
	s, err := model.NewSchema(ds, "m")
	if err != nil {
		panic(err)
	}
	return &Gen{Rng: rng, Schema: s, BaseRange: 32}
}

// Records generates n random fact records.
func (g *Gen) Records(n int) []model.Record {
	recs := make([]model.Record, n)
	for i := range recs {
		dims := make([]int64, g.Schema.NumDims())
		for j := range dims {
			dims[j] = g.Rng.Int63n(g.BaseRange)
		}
		recs[i] = model.Record{Dims: dims, Ms: []float64{float64(g.Rng.Intn(10))}}
	}
	return recs
}

// randGran picks a random granularity, biased away from all-ALL.
func (g *Gen) randGran() model.Gran {
	for {
		gr := make(model.Gran, g.Schema.NumDims())
		nonAll := 0
		for i := range gr {
			gr[i] = model.Level(g.Rng.Intn(int(g.Schema.Dim(i).ALL()) + 1))
			if gr[i] != g.Schema.Dim(i).ALL() {
				nonAll++
			}
		}
		if nonAll > 0 || g.Rng.Intn(4) == 0 {
			return gr
		}
	}
}

// coarsen returns a strictly coarser granularity than gr, or nil if gr
// is already all-ALL.
func (g *Gen) coarsen(gr model.Gran) model.Gran {
	candidates := []int{}
	for i := range gr {
		if gr[i] != g.Schema.Dim(i).ALL() {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	out := gr.Clone()
	// Raise at least one dimension.
	n := 1 + g.Rng.Intn(len(candidates))
	g.Rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	for _, i := range candidates[:n] {
		lift := 1 + g.Rng.Intn(int(g.Schema.Dim(i).ALL())-int(out[i]))
		out[i] = out[i] + model.Level(lift)
	}
	return out
}

var basicAggs = []agg.Kind{agg.Count, agg.Sum, agg.Min, agg.Max, agg.Avg, agg.CountDistinct, agg.Median, agg.P95}
var compositeAggs = []agg.Kind{agg.Count, agg.Sum, agg.Min, agg.Max, agg.Avg, agg.CountDistinct, agg.Median, agg.P95}

func (g *Gen) randFilter() core.MeasureOpt {
	switch g.Rng.Intn(3) {
	case 0:
		return core.Where(core.MWhere(0, core.CmpOp(g.Rng.Intn(6)), float64(g.Rng.Intn(6))))
	case 1:
		return core.Where(core.MWhere(0, core.Gt, 1))
	default:
		return nil
	}
}

// Workflow generates a random valid workflow with nBasic basic
// measures and nComposite composite measures layered on top.
func (g *Gen) Workflow(nBasic, nComposite int) (*core.Compiled, error) {
	w := core.NewWorkflow(g.Schema)
	type decl struct {
		name string
		gran model.Gran
	}
	var decls []decl

	for i := 0; i < nBasic; i++ {
		name := fmt.Sprintf("b%d", i)
		gr := g.randGran()
		k := basicAggs[g.Rng.Intn(len(basicAggs))]
		fm := 0
		if k == agg.Count && g.Rng.Intn(2) == 0 {
			fm = -1
		}
		var opts []core.MeasureOpt
		if f := g.randFilter(); f != nil && g.Rng.Intn(2) == 0 {
			opts = append(opts, f)
		}
		w.Basic(name, gr, k, fm, opts...)
		decls = append(decls, decl{name, gr})
	}

	for i := 0; i < nComposite; i++ {
		name := fmt.Sprintf("c%d", i)
		src := decls[g.Rng.Intn(len(decls))]
		k := compositeAggs[g.Rng.Intn(len(compositeAggs))]
		var opts []core.MeasureOpt
		if f := g.randFilter(); f != nil && g.Rng.Intn(3) == 0 {
			opts = append(opts, f)
		}
		switch g.Rng.Intn(4) {
		case 0: // rollup
			target := g.coarsen(src.gran)
			if target == nil {
				target = src.gran.Clone()
			}
			w.Rollup(name, target, src.name, k, opts...)
			decls = append(decls, decl{name, target})
		case 1: // fromparent: need a source we can refine, i.e. pick a
			// parent by coarsening a declared gran and using a rollup
			// of it; simplest is to synthesize from an existing
			// coarser measure if possible.
			parentGran := g.coarsen(src.gran)
			if parentGran == nil {
				// src is all-ALL; fall back to a same-gran rollup.
				w.Rollup(name, src.gran, src.name, k, opts...)
				decls = append(decls, decl{name, src.gran})
				continue
			}
			pname := fmt.Sprintf("p%d", i)
			w.Rollup(pname, parentGran, src.name, agg.Sum)
			decls = append(decls, decl{pname, parentGran})
			w.FromParent(name, src.gran, pname, k, opts...)
			decls = append(decls, decl{name, src.gran})
		case 2: // sibling
			wins := g.randWindows(src.gran)
			if wins == nil {
				target := g.coarsen(src.gran)
				if target == nil {
					target = src.gran.Clone()
				}
				w.Rollup(name, target, src.name, k, opts...)
				decls = append(decls, decl{name, target})
				continue
			}
			w.Sliding(name, src.name, k, wins, opts...)
			decls = append(decls, decl{name, src.gran})
		default: // combine: needs same-gran partners
			partners := []string{src.name}
			for _, d := range decls {
				if d.name != src.name && model.GranEq(d.gran, src.gran) {
					partners = append(partners, d.name)
					if len(partners) == 3 {
						break
					}
				}
			}
			w.Combine(name, partners, core.SumOf())
			decls = append(decls, decl{name, src.gran})
		}
	}
	return w.Compile()
}

// randWindows builds valid sibling windows for a granularity, or nil
// if every dimension is at D_ALL.
func (g *Gen) randWindows(gr model.Gran) []core.Window {
	var dims []int
	for i := range gr {
		if gr[i] != g.Schema.Dim(i).ALL() {
			dims = append(dims, i)
		}
	}
	if len(dims) == 0 {
		return nil
	}
	n := 1
	if len(dims) > 1 && g.Rng.Intn(3) == 0 {
		n = 2
	}
	g.Rng.Shuffle(len(dims), func(i, j int) { dims[i], dims[j] = dims[j], dims[i] })
	var out []core.Window
	for _, d := range dims[:n] {
		lo := int64(g.Rng.Intn(4) - 2)
		hi := lo + int64(g.Rng.Intn(3))
		out = append(out, core.Window{Dim: d, Lo: lo, Hi: hi})
	}
	return out
}

// RandSortKey picks a random sort key: a random subset of dimensions
// in random order at random levels.
func (g *Gen) RandSortKey() model.SortKey {
	d := g.Schema.NumDims()
	perm := g.Rng.Perm(d)
	n := 1 + g.Rng.Intn(d)
	var k model.SortKey
	for _, dim := range perm[:n] {
		lvl := model.Level(g.Rng.Intn(int(g.Schema.Dim(dim).ALL())))
		k = append(k, model.SortPart{Dim: dim, Lvl: lvl})
	}
	return k
}
