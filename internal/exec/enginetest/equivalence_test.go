package enginetest

import (
	"fmt"
	"path/filepath"
	"testing"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/exec/singlescan"
	"awra/internal/exec/sortscan"
	"awra/internal/model"
	"awra/internal/plan"
	"awra/internal/storage"
)

// runSingle evaluates via the single-scan engine (the oracle).
func runSingle(t *testing.T, c *core.Compiled, recs []model.Record, opts singlescan.Options) map[string]*core.Table {
	t.Helper()
	res, err := singlescan.Run(c, &storage.SliceSource{Recs: recs}, opts)
	if err != nil {
		t.Fatalf("singlescan: %v", err)
	}
	return res.Tables
}

// runSort evaluates via the streaming sort/scan engine under a sort key.
func runSort(t *testing.T, c *core.Compiled, recs []model.Record, key model.SortKey) map[string]*core.Table {
	t.Helper()
	sorted := append([]model.Record{}, recs...)
	nk, err := key.Normalize(c.Schema)
	if err != nil {
		t.Fatal(err)
	}
	storage.SortRecords(sorted, func(a, b *model.Record) bool {
		return nk.RecordLess(c.Schema, a, b)
	})
	pl, err := plan.Build(c, nk, nil)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	res, err := sortscan.RunSorted(c, pl, &storage.SliceSource{Recs: sorted})
	if err != nil {
		t.Fatalf("sortscan: %v", err)
	}
	return res.Tables
}

// runAlgebra evaluates via the in-memory AW-RA reference evaluator.
func runAlgebra(t *testing.T, c *core.Compiled, recs []model.Record) map[string]*core.Table {
	t.Helper()
	out := map[string]*core.Table{}
	for _, name := range c.Outputs() {
		e, err := core.Translate(c, name)
		if err != nil {
			t.Fatalf("translate %s: %v", name, err)
		}
		tbl, err := core.Eval(e, recs)
		if err != nil {
			t.Fatalf("eval %s: %v", name, err)
		}
		out[name] = tbl
	}
	return out
}

func diffTables(a, b map[string]*core.Table, eps float64) string {
	for name, ta := range a {
		tb, ok := b[name]
		if !ok {
			return fmt.Sprintf("measure %s missing", name)
		}
		if !ta.Equal(tb, eps) {
			return fmt.Sprintf("measure %s differs: %d vs %d rows", name, len(ta.Rows), len(tb.Rows))
		}
	}
	if len(a) != len(b) {
		return "different measure sets"
	}
	return ""
}

func describe(tbl *core.Table) map[string]float64 {
	out := map[string]float64{}
	for k, v := range tbl.Rows {
		out[tbl.Codec.Format(k)] = v
	}
	return out
}

// TestSortScanMatchesSingleScanRandomized is the load-bearing
// correctness test: random workflows over random data, evaluated by
// single-scan, the algebra evaluator, and sort/scan under several
// random sort keys — all must agree exactly.
func TestSortScanMatchesSingleScanRandomized(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		g := NewGen(int64(1000+trial), 2+trial%3)
		c, err := g.Workflow(1+g.Rng.Intn(3), 1+g.Rng.Intn(4))
		if err != nil {
			t.Fatalf("trial %d: workflow: %v", trial, err)
		}
		recs := g.Records(100 + g.Rng.Intn(400))

		want := runSingle(t, c, recs, singlescan.Options{})
		alg := runAlgebra(t, c, recs)
		if d := diffTables(want, alg, 1e-9); d != "" {
			t.Fatalf("trial %d: singlescan vs algebra: %s", trial, d)
		}

		for ki := 0; ki < 4; ki++ {
			key := g.RandSortKey()
			got := runSort(t, c, recs, key)
			if d := diffTables(want, got, 1e-9); d != "" {
				for name := range want {
					if !want[name].Equal(got[name], 1e-9) {
						t.Logf("measure %s\n  want %v\n  got  %v", name, describe(want[name]), describe(got[name]))
					}
				}
				t.Fatalf("trial %d key %v (%s): sortscan vs singlescan: %s",
					trial, ki, model.SortKey(key).String(c.Schema), d)
			}
		}
	}
}

// TestDeepChains exercises long sibling chains (the paper's Q2 shape)
// and deep rollup chains.
func TestDeepChains(t *testing.T) {
	g := NewGen(7, 2)
	w := core.NewWorkflow(g.Schema)
	w.Basic("b", model.Gran{0, model.LevelALL}, agg.Count, -1)
	prev := "b"
	for i := 0; i < 7; i++ {
		name := fmt.Sprintf("s%d", i)
		w.Sliding(name, prev, agg.Avg, []core.Window{{Dim: 0, Lo: -1, Hi: 1}})
		prev = name
	}
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Records(300)
	want := runSingle(t, c, recs, singlescan.Options{})
	alg := runAlgebra(t, c, recs)
	if d := diffTables(want, alg, 1e-9); d != "" {
		t.Fatalf("singlescan vs algebra: %s", d)
	}
	for _, key := range []model.SortKey{
		{{Dim: 0, Lvl: 0}},
		{{Dim: 0, Lvl: 1}, {Dim: 1, Lvl: 0}},
		{{Dim: 1, Lvl: 0}, {Dim: 0, Lvl: 0}},
	} {
		got := runSort(t, c, recs, key)
		if d := diffTables(want, got, 1e-9); d != "" {
			t.Fatalf("key %s: %s", key.String(c.Schema), d)
		}
	}
}

// TestDiamondDependencies exercises the S_max example of Section 5.3.3:
// two rollup chains combined at the top.
func TestDiamondDependencies(t *testing.T) {
	g := NewGen(9, 3)
	w := core.NewWorkflow(g.Schema)
	w.Basic("s1", model.Gran{1, 0, model.LevelALL}, agg.Count, -1)
	w.Basic("s2", model.Gran{1, model.LevelALL, 0}, agg.Count, -1)
	w.Rollup("max1", model.Gran{1, model.LevelALL, model.LevelALL}, "s1", agg.Max)
	w.Rollup("max2", model.Gran{1, model.LevelALL, model.LevelALL}, "s2", agg.Max)
	w.Combine("smax", []string{"max1", "max2"}, core.MaxOf())
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Records(400)
	want := runSingle(t, c, recs, singlescan.Options{})
	for _, key := range []model.SortKey{
		{{Dim: 0, Lvl: 1}, {Dim: 2, Lvl: 0}},
		{{Dim: 0, Lvl: 0}},
		{{Dim: 1, Lvl: 2}, {Dim: 0, Lvl: 1}},
	} {
		got := runSort(t, c, recs, key)
		if d := diffTables(want, got, 1e-9); d != "" {
			t.Fatalf("key %s: %s", key.String(c.Schema), d)
		}
	}
}

// TestParentChildRatio is the Section 5.3.1 S_ratio example: a
// fine-grained measure divided by its parent's value, which forces the
// parent/child staging path.
func TestParentChildRatio(t *testing.T) {
	g := NewGen(11, 2)
	w := core.NewWorkflow(g.Schema)
	w.Basic("s2", model.Gran{0, model.LevelALL}, agg.Count, -1)
	w.Rollup("s1", model.Gran{1, model.LevelALL}, "s2", agg.Sum)
	w.FromParent("parent", model.Gran{0, model.LevelALL}, "s1", agg.Sum)
	w.Combine("ratio", []string{"s2", "parent"}, core.Ratio(0, 1))
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Records(500)
	want := runSingle(t, c, recs, singlescan.Options{})
	alg := runAlgebra(t, c, recs)
	if d := diffTables(want, alg, 1e-9); d != "" {
		t.Fatalf("singlescan vs algebra: %s", d)
	}
	for _, key := range []model.SortKey{
		{{Dim: 0, Lvl: 0}},
		{{Dim: 0, Lvl: 1}},
		{{Dim: 0, Lvl: 2}, {Dim: 1, Lvl: 0}},
		{{Dim: 1, Lvl: 0}},
	} {
		got := runSort(t, c, recs, key)
		if d := diffTables(want, got, 1e-9); d != "" {
			t.Fatalf("key %s: %s", key.String(c.Schema), d)
		}
	}
}

// TestBudgetedSingleScanMatches: the spilling out-of-core path must
// produce identical results to the unbudgeted run.
func TestBudgetedSingleScanMatches(t *testing.T) {
	g := NewGen(13, 2)
	c, err := g.Workflow(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Records(800)
	want := runSingle(t, c, recs, singlescan.Options{})
	dir := t.TempDir()
	got, err := singlescan.Run(c, &storage.SliceSource{Recs: recs}, singlescan.Options{
		MemoryBudget: 2000, TempDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Spills == 0 {
		t.Fatal("budget did not trigger spilling; test is vacuous")
	}
	if d := diffTables(want, got.Tables, 1e-9); d != "" {
		t.Fatalf("budgeted vs unbudgeted: %s", d)
	}
}

// TestSortScanFromFile runs the full path including the external sort.
func TestSortScanFromFile(t *testing.T) {
	g := NewGen(17, 2)
	c, err := g.Workflow(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Records(600)
	dir := t.TempDir()
	fact := filepath.Join(dir, "fact.rec")
	if err := storage.WriteAll(fact, g.Schema.NumDims(), 1, recs); err != nil {
		t.Fatal(err)
	}
	want := runSingle(t, c, recs, singlescan.Options{})
	res, err := sortscan.Run(c, fact, sortscan.Options{
		SortKey: model.SortKey{{Dim: 0, Lvl: 1}, {Dim: 1, Lvl: 0}},
		TempDir: dir, ChunkRecords: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := diffTables(want, res.Tables, 1e-9); d != "" {
		t.Fatalf("file path: %s", d)
	}
	if res.Stats.Records != 600 {
		t.Errorf("records = %d", res.Stats.Records)
	}
	if res.Stats.PeakCells <= 0 {
		t.Error("no live-cell accounting")
	}
}

// TestEarlyFlushingBoundsMemory verifies the point of the sort/scan
// algorithm: under a helpful sort key, peak live cells stay far below
// the total number of produced regions.
func TestEarlyFlushingBoundsMemory(t *testing.T) {
	g := NewGen(19, 2)
	w := core.NewWorkflow(g.Schema)
	w.Basic("cnt", model.Gran{0, 0}, agg.Count, -1)
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Records(4000)
	got := runSort(t, c, recs, model.SortKey{{Dim: 0, Lvl: 0}, {Dim: 1, Lvl: 0}})
	total := len(got["cnt"].Rows)

	sorted := append([]model.Record{}, recs...)
	nk, _ := model.SortKey{{Dim: 0, Lvl: 0}, {Dim: 1, Lvl: 0}}.Normalize(c.Schema)
	storage.SortRecords(sorted, func(a, b *model.Record) bool { return nk.RecordLess(c.Schema, a, b) })
	pl, err := plan.Build(c, nk, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sortscan.RunSorted(c, pl, &storage.SliceSource{Recs: sorted})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PeakCells > int64(total)/10 {
		t.Errorf("peak cells %d vs %d total regions: early flushing ineffective", res.Stats.PeakCells, total)
	}
}

// TestSiblingLagWindows exercises forward-looking windows (Hi > 0),
// which force the slack shift machinery.
func TestSiblingLagWindows(t *testing.T) {
	g := NewGen(23, 2)
	w := core.NewWorkflow(g.Schema)
	w.Basic("cnt", model.Gran{0, model.LevelALL}, agg.Count, -1)
	w.Sliding("fwd", "cnt", agg.Sum, []core.Window{{Dim: 0, Lo: 1, Hi: 5}})
	w.Sliding("back", "cnt", agg.Sum, []core.Window{{Dim: 0, Lo: -5, Hi: -1}})
	w.Sliding("both", "cnt", agg.Sum, []core.Window{{Dim: 0, Lo: -3, Hi: 3}})
	w.Combine("net", []string{"fwd", "back"}, core.Diff(0, 1))
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Records(500)
	want := runSingle(t, c, recs, singlescan.Options{})
	alg := runAlgebra(t, c, recs)
	if d := diffTables(want, alg, 1e-9); d != "" {
		t.Fatalf("singlescan vs algebra: %s", d)
	}
	for _, key := range []model.SortKey{
		{{Dim: 0, Lvl: 0}},
		{{Dim: 0, Lvl: 1}},
		{{Dim: 0, Lvl: 2}},
		{{Dim: 1, Lvl: 0}, {Dim: 0, Lvl: 0}},
	} {
		got := runSort(t, c, recs, key)
		if d := diffTables(want, got, 1e-9); d != "" {
			t.Fatalf("key %s: %s", key.String(c.Schema), d)
		}
	}
}

// TestEmptyDataset: every engine must handle zero records.
func TestEmptyDataset(t *testing.T) {
	g := NewGen(29, 2)
	c, err := g.Workflow(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := runSingle(t, c, nil, singlescan.Options{})
	got := runSort(t, c, nil, model.SortKey{{Dim: 0, Lvl: 0}})
	if d := diffTables(want, got, 0); d != "" {
		t.Fatalf("empty dataset: %s", d)
	}
	for name, tbl := range want {
		if len(tbl.Rows) != 0 {
			t.Errorf("measure %s has %d rows on empty input", name, len(tbl.Rows))
		}
	}
}
