package enginetest

import (
	"math/rand"
	"path/filepath"
	"testing"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/exec/multipass"
	"awra/internal/exec/singlescan"
	"awra/internal/exec/sortscan"
	"awra/internal/model"
	"awra/internal/plan"
	"awra/internal/relbaseline"
	"awra/internal/storage"
)

// writeFact materializes generated records as a fact file.
func writeFact(t *testing.T, g *Gen, recs []model.Record) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "fact.rec")
	if err := storage.WriteAll(path, g.Schema.NumDims(), 1, recs); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRelBaselineMatchesSingleScan: the relational comparator must be
// a correct evaluator too — otherwise benchmark comparisons are
// meaningless.
func TestRelBaselineMatchesSingleScan(t *testing.T) {
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		g := NewGen(int64(5000+trial), 2+trial%2)
		c, err := g.Workflow(1+g.Rng.Intn(3), 1+g.Rng.Intn(4))
		if err != nil {
			t.Fatal(err)
		}
		recs := g.Records(150 + g.Rng.Intn(300))
		fact := writeFact(t, g, recs)
		want := runSingle(t, c, recs, singlescan.Options{})
		got, err := relbaseline.Run(c, fact, relbaseline.Options{TempDir: filepath.Dir(fact)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := diffTables(want, got.Tables, 1e-9); d != "" {
			t.Fatalf("trial %d: relbaseline vs singlescan: %s", trial, d)
		}
		if got.Stats.FactScans == 0 {
			t.Error("baseline claims zero fact scans")
		}
	}
}

// TestMultiPassMatchesSingleScan: the multi-pass executor must agree
// with single-scan regardless of how small the per-pass budget is.
func TestMultiPassMatchesSingleScan(t *testing.T) {
	trials := 15
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		g := NewGen(int64(7000+trial), 2)
		c, err := g.Workflow(2+g.Rng.Intn(2), 1+g.Rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		recs := g.Records(200 + g.Rng.Intn(200))
		fact := writeFact(t, g, recs)
		want := runSingle(t, c, recs, singlescan.Options{})
		for _, budget := range []float64{0, 1e9, 2000, 100} {
			got, err := multipass.Run(c, fact, multipass.Options{
				MemoryBudget: budget,
				TempDir:      filepath.Dir(fact),
			})
			if err != nil {
				t.Fatalf("trial %d budget %v: %v", trial, budget, err)
			}
			if d := diffTables(want, got.Tables, 1e-9); d != "" {
				t.Fatalf("trial %d budget %v: multipass vs singlescan: %s", trial, budget, d)
			}
		}
	}
}

// TestCalendarHierarchyEquivalence runs the engines over the real
// network schema, whose time hierarchy is irregular (28-31 days per
// month): sibling windows over days that cross month boundaries
// exercise the MinFanout-based watermark shifts.
func TestCalendarHierarchyEquivalence(t *testing.T) {
	s, err := model.NewSchema([]*model.Dimension{
		model.TimeDimension("t"),
		model.IPv4Dimension("T"),
	})
	if err != nil {
		t.Fatal(err)
	}
	day, _ := s.Dim(0).LevelByName("Day")
	month, _ := s.Dim(0).LevelByName("Month")
	sub24, _ := s.Dim(1).LevelByName("/24")
	all := model.LevelALL

	rng := rand.New(rand.NewSource(77))
	recs := make([]model.Record, 3000)
	for i := range recs {
		// Span a Feb->Mar leap-year boundary to stress the calendar.
		d := model.DayCode(2004, 2, 20) + rng.Int63n(20)
		recs[i] = model.Record{Dims: []int64{
			d*86400 + rng.Int63n(86400),
			model.IPCode(10, 0, int(rng.Int63n(6)), int(rng.Int63n(50))),
		}, Ms: []float64{}}
	}

	gDaySub, _ := s.Normalize(model.Gran{day, sub24})
	gDay, _ := s.Normalize(model.Gran{day, all})
	gMonth, _ := s.Normalize(model.Gran{month, all})
	c, err := core.NewWorkflow(s).
		Basic("perDaySub", gDaySub, agg.Count, -1).
		Rollup("perDay", gDay, "perDaySub", agg.Sum).
		Rollup("perMonth", gMonth, "perDay", agg.Sum).
		FromParent("monthOfDay", gDay, "perMonth", agg.Sum).
		Combine("dayShare", []string{"perDay", "monthOfDay"}, core.Ratio(0, 1)).
		Sliding("weekAhead", "perDay", agg.Sum, []core.Window{{Dim: 0, Lo: 1, Hi: 7}}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}

	want := runSingle(t, c, recs, singlescan.Options{})
	alg := runAlgebra(t, c, recs)
	if d := diffTables(want, alg, 1e-9); d != "" {
		t.Fatalf("singlescan vs algebra: %s", d)
	}
	hour, _ := s.Dim(0).LevelByName("Hour")
	for _, key := range []model.SortKey{
		{{Dim: 0, Lvl: day}},
		{{Dim: 0, Lvl: month}, {Dim: 1, Lvl: 0}},
		{{Dim: 0, Lvl: hour}},
		{{Dim: 0, Lvl: 0}},
		{{Dim: 1, Lvl: sub24}, {Dim: 0, Lvl: day}},
	} {
		got := runSort(t, c, recs, key)
		if d := diffTables(want, got, 1e-9); d != "" {
			t.Fatalf("key %s: %s", key.String(s), d)
		}
	}
}

// TestParallelSingleScanMatches: the sharded parallel scan must agree
// with the sequential engine for every aggregation kind the generator
// emits (all mergeable).
func TestParallelSingleScanMatches(t *testing.T) {
	trials := 20
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		g := NewGen(int64(9000+trial), 2+trial%2)
		c, err := g.Workflow(1+g.Rng.Intn(3), 1+g.Rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		recs := g.Records(300 + g.Rng.Intn(500))
		want := runSingle(t, c, recs, singlescan.Options{})
		for _, workers := range []int{1, 2, 4, 7} {
			got, err := singlescan.RunParallel(c, &storage.SliceSource{Recs: recs}, workers, singlescan.Options{})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if d := diffTables(want, got.Tables, 1e-9); d != "" {
				t.Fatalf("trial %d workers %d: %s", trial, workers, d)
			}
		}
	}
	// Budgets are a sequential-only feature.
	g := NewGen(1, 2)
	c, err := g.Workflow(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := singlescan.RunParallel(c, &storage.SliceSource{}, 2, singlescan.Options{MemoryBudget: 1}); err == nil {
		t.Fatal("parallel run accepted a memory budget")
	}
}

// TestEstimateTracksActual: the footprint estimator that drives the
// optimizer must rank sort keys the same way the engine's measured
// peak does, and be within an order of magnitude on uniform data.
func TestEstimateTracksActual(t *testing.T) {
	s, err := model.NewSchema([]*model.Dimension{
		model.FixedFanout("A", 3, 10),
		model.FixedFanout("B", 3, 10),
	}, "m")
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewWorkflow(s).
		Basic("cnt", model.Gran{0, 0}, agg.Count, -1).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(123))
	recs := make([]model.Record, 30000)
	for i := range recs {
		recs[i] = model.Record{Dims: []int64{rng.Int63n(1000), rng.Int63n(1000)}, Ms: []float64{0}}
	}
	st := &plan.Stats{BaseCard: []float64{1000, 1000}, Records: 30000}
	type outcome struct {
		est, actual float64
	}
	var results []outcome
	for _, key := range []model.SortKey{
		{{Dim: 0, Lvl: 0}, {Dim: 1, Lvl: 0}}, // covers everything
		{{Dim: 0, Lvl: 1}},                   // partial
		{{Dim: 0, Lvl: 2}},                   // coarse
	} {
		pl, err := plan.Build(c, key, st)
		if err != nil {
			t.Fatal(err)
		}
		sorted := append([]model.Record{}, recs...)
		nk, _ := key.Normalize(s)
		storage.SortRecords(sorted, func(a, b *model.Record) bool { return nk.RecordLess(s, a, b) })
		res, err := sortscan.RunSorted(c, pl, &storage.SliceSource{Recs: sorted})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, outcome{pl.Nodes[0].EstCells, float64(res.Stats.PeakCells)})
	}
	for i := 1; i < len(results); i++ {
		if (results[i].est > results[i-1].est) != (results[i].actual >= results[i-1].actual) {
			t.Errorf("estimator mis-ranks keys: %+v", results)
		}
	}
	for _, r := range results {
		// The engine batches finalization by the leading key
		// component, so actuals can exceed the immediate-flush
		// estimate by roughly a group's worth; allow that headroom.
		if r.actual > 0 && (r.est > 20*r.actual || r.actual > 64*r.est) {
			t.Errorf("estimate %v vs actual %v beyond tolerance", r.est, r.actual)
		}
	}
}

// TestMultiPassSplitsPasses: with a tight budget and measures wanting
// different sort orders, the planner must actually produce multiple
// passes.
func TestMultiPassSplitsPasses(t *testing.T) {
	g := NewGen(31, 3)
	w := core.NewWorkflow(g.Schema)
	w.Basic("byX0", model.Gran{0, model.LevelALL, model.LevelALL}, 0, -1)
	w.Basic("byX1", model.Gran{model.LevelALL, 0, model.LevelALL}, 0, -1)
	w.Basic("byX2", model.Gran{model.LevelALL, model.LevelALL, 0}, 0, -1)
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	st := &plan.Stats{BaseCard: []float64{1e6, 1e6, 1e6}}
	passes, err := multipass.PlanPasses(c, 10_000, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) < 2 {
		t.Errorf("expected multiple passes under a tight budget, got %d", len(passes))
	}
	total := 0
	for _, p := range passes {
		total += len(p.Measures)
	}
	if total != 3 {
		t.Errorf("passes cover %d measures, want 3", total)
	}
	// Unlimited budget: one pass.
	passes, err = multipass.PlanPasses(c, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 1 {
		t.Errorf("unlimited budget should plan one pass, got %d", len(passes))
	}
}
