package singlescan

import (
	"math/rand"
	"testing"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/model"
	"awra/internal/storage"
)

func schema2(t *testing.T) *model.Schema {
	t.Helper()
	s, err := model.NewSchema([]*model.Dimension{
		model.FixedFanout("A", 3, 10),
		model.FixedFanout("B", 3, 10),
	}, "m")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func records(n int, seed int64, nulls bool) []model.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]model.Record, n)
	for i := range recs {
		v := float64(rng.Intn(10))
		if nulls && rng.Intn(5) == 0 {
			v = agg.Null()
		}
		recs[i] = model.Record{
			Dims: []int64{rng.Int63n(1000), rng.Int63n(1000)},
			Ms:   []float64{v},
		}
	}
	return recs
}

func compile(t *testing.T, s *model.Schema, build func(*core.Workflow)) *core.Compiled {
	t.Helper()
	w := core.NewWorkflow(s)
	build(w)
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBasicCounts(t *testing.T) {
	s := schema2(t)
	c := compile(t, s, func(w *core.Workflow) {
		w.Basic("cnt", model.Gran{1, model.LevelALL}, agg.Count, -1)
	})
	recs := records(500, 1, false)
	res, err := Run(c, &storage.SliceSource{Recs: recs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, v := range res.Tables["cnt"].Rows {
		total += v
	}
	if total != 500 {
		t.Errorf("counts sum to %v, want 500", total)
	}
	if res.Stats.Records != 500 || res.Stats.Spills != 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Stats.PeakBytes <= 0 {
		t.Error("no memory accounting")
	}
}

// TestSpillEveryAggregatorKind forces the spill/restore/merge path for
// every aggregation function, including the holistic ones, with NULLs
// in the data.
func TestSpillEveryAggregatorKind(t *testing.T) {
	s := schema2(t)
	kinds := []agg.Kind{
		agg.Count, agg.CountNonNull, agg.Sum, agg.Min, agg.Max,
		agg.Avg, agg.Var, agg.StdDev, agg.CountDistinct, agg.ConstZero,
	}
	recs := records(1200, 2, true)
	for _, k := range kinds {
		k := k
		fm := 0
		if k == agg.Count || k == agg.ConstZero {
			fm = -1
		}
		c := compile(t, s, func(w *core.Workflow) {
			w.Basic("x", model.Gran{0, 1}, k, fm)
		})
		want, err := Run(c, &storage.SliceSource{Recs: recs}, Options{})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		got, err := Run(c, &storage.SliceSource{Recs: recs}, Options{
			MemoryBudget: 4096, TempDir: t.TempDir(),
		})
		if err != nil {
			t.Fatalf("%v (budgeted): %v", k, err)
		}
		if got.Stats.Spills == 0 {
			t.Fatalf("%v: budget did not trigger spills", k)
		}
		if !want.Tables["x"].Equal(got.Tables["x"], 1e-9) {
			t.Fatalf("%v: spill path changed results", k)
		}
	}
}

func TestFilterAndMeasureSelection(t *testing.T) {
	s := schema2(t)
	c := compile(t, s, func(w *core.Workflow) {
		w.Basic("sumB", model.Gran{model.LevelALL, 2}, agg.Sum, 0,
			core.Where(core.DimWhere(0, core.Lt, 500)))
	})
	recs := []model.Record{
		{Dims: []int64{100, 7}, Ms: []float64{3}},
		{Dims: []int64{600, 7}, Ms: []float64{100}}, // filtered out
		{Dims: []int64{200, 7}, Ms: []float64{4}},
	}
	res, err := Run(c, &storage.SliceSource{Recs: recs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Tables["sumB"]
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, v := range tbl.Rows {
		if v != 7 {
			t.Errorf("sum = %v, want 7", v)
		}
	}
}

func TestHiddenBasesNotReported(t *testing.T) {
	s := schema2(t)
	c := compile(t, s, func(w *core.Workflow) {
		w.Basic("cnt", model.Gran{1, model.LevelALL}, agg.Count, -1)
		w.Sliding("sm", "cnt", agg.Avg, []core.Window{{Dim: 0, Lo: -1, Hi: 1}})
	})
	res, err := Run(c, &storage.SliceSource{Recs: records(100, 3, false)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Errorf("tables = %d, want 2 (hidden base excluded)", len(res.Tables))
	}
	for name := range res.Tables {
		if name != "cnt" && name != "sm" {
			t.Errorf("unexpected table %q", name)
		}
	}
}

func TestPhaseTimers(t *testing.T) {
	s := schema2(t)
	c := compile(t, s, func(w *core.Workflow) {
		w.Basic("cnt", model.Gran{0, 0}, agg.Count, -1)
		w.Rollup("up", model.Gran{2, model.LevelALL}, "cnt", agg.Sum)
	})
	res, err := Run(c, &storage.SliceSource{Recs: records(2000, 4, false)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ScanTime <= 0 {
		t.Error("scan timer not populated")
	}
	if res.Stats.CompositeTime < 0 {
		t.Error("composite timer negative")
	}
}

func TestSourceError(t *testing.T) {
	s := schema2(t)
	c := compile(t, s, func(w *core.Workflow) {
		w.Basic("cnt", model.Gran{1, model.LevelALL}, agg.Count, -1)
	})
	if _, err := Run(c, failingSource{}, Options{}); err == nil {
		t.Fatal("source error swallowed")
	}
}

type failingSource struct{}

func (failingSource) Next(*model.Record) (bool, error) {
	return false, errFail
}
func (failingSource) Close() error { return nil }

var errFail = &storageError{}

type storageError struct{}

func (*storageError) Error() string { return "injected failure" }
