package singlescan

import (
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/storage"
)

// RunParallel evaluates the workflow with Workers goroutines sharding
// the scan: each worker maintains private hash tables for the basic
// measures, and the partial aggregator states are merged when the scan
// ends (aggregators are mergeable by construction, which is what makes
// this correct for distributive, algebraic and holistic functions
// alike). Composite measures are then computed once, in topological
// order, exactly as in the sequential engine.
//
// This realizes the parallelism the paper leaves as future work ("the
// approach offers potentially unlimited parallelism"), in its simplest
// shared-nothing form. Memory budgets (spilling) are a sequential-
// engine feature; RunParallel rejects a non-zero budget.
func RunParallel(c *core.Compiled, src storage.Source, workers int, opts Options) (*Result, error) {
	if workers < 1 {
		workers = 1
	}
	if opts.MemoryBudget > 0 {
		return nil, fmt.Errorf("singlescan: memory budgets apply to the sequential engine only")
	}
	orec := opts.Recorder
	if orec == nil {
		orec = obs.New()
	}
	start := time.Now()
	var stats Stats

	var basics []*core.Measure
	for _, m := range c.Measures {
		if m.Kind == core.KindBasic {
			basics = append(basics, m)
		}
	}

	// Per-worker private tables.
	type shard struct {
		aggs []map[model.Key]agg.Aggregator // indexed like basics
	}
	shards := make([]*shard, workers)
	for i := range shards {
		s := &shard{aggs: make([]map[model.Key]agg.Aggregator, len(basics))}
		for j := range s.aggs {
			s.aggs[j] = make(map[model.Key]agg.Aggregator)
		}
		shards[i] = s
	}

	scanSpan := orec.Start(obs.SpanScan)
	scanSpan.SetAttr("workers", fmt.Sprint(workers))
	if tc, ok := src.(interface{ TotalRecords() int64 }); ok {
		scanSpan.SetTotal(tc.TotalRecords())
	}
	const batchSize = 512
	type batch []model.Record
	ch := make(chan batch, workers*2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			pprof.SetGoroutineLabels(pprof.WithLabels(opts.Guard.Context(), pprof.Labels("phase", "scan_worker")))
			defer pprof.SetGoroutineLabels(opts.Guard.Context())
			for b := range ch {
				for i := range b {
					rec := &b[i]
					for j, m := range basics {
						if m.Filter != nil && !m.Filter.Eval(rec.Dims, rec.Ms) {
							continue
						}
						k := m.Codec.FromBase(rec.Dims)
						a, ok := s.aggs[j][k]
						if !ok {
							a = m.Agg.New()
							s.aggs[j][k] = a
						}
						if m.FactMeasure >= 0 {
							a.Update(rec.Ms[m.FactMeasure])
						} else {
							a.Update(0)
						}
					}
				}
			}
		}(shards[w])
	}

	// Feed batches round-robin (the channel balances naturally).
	cur := make(batch, 0, batchSize)
	var scanErr error
	for {
		var rec model.Record
		ok, err := src.Next(&rec)
		if err != nil {
			scanErr = fmt.Errorf("singlescan: %w", err)
			break
		}
		if !ok {
			break
		}
		stats.Records++
		if stats.Records&255 == 0 {
			scanSpan.SetDone(stats.Records)
			if err := opts.Guard.Err(); err != nil {
				scanErr = err
				break
			}
		}
		cur = append(cur, rec.Clone())
		if len(cur) == batchSize {
			ch <- cur
			cur = make(batch, 0, batchSize)
		}
	}
	if len(cur) > 0 && scanErr == nil {
		ch <- cur
	}
	close(ch)
	wg.Wait()
	scanSpan.SetDone(stats.Records)
	scanSpan.SetAttr("records", fmt.Sprint(stats.Records))
	scanSpan.End()
	if scanErr != nil {
		return nil, scanErr
	}

	// Merge shards. Every shard entry was a created cell; the pre-merge
	// total is the live-cell high-water mark for this engine.
	var cellsCreated, cellsFinalized int64
	for _, s := range shards {
		for j := range s.aggs {
			cellsCreated += int64(len(s.aggs[j]))
		}
	}
	if err := opts.Guard.NoteLiveCells(cellsCreated); err != nil {
		return nil, err
	}
	tables := make([]*core.Table, len(c.Measures))
	for j, m := range basics {
		if err := opts.Guard.Err(); err != nil {
			return nil, err
		}
		var created int64
		for _, s := range shards {
			created += int64(len(s.aggs[j]))
		}
		merged := shards[0].aggs[j]
		for _, s := range shards[1:] {
			for k, a := range s.aggs[j] {
				if cur, ok := merged[k]; ok {
					cur.Merge(a)
				} else {
					merged[k] = a
				}
			}
		}
		tbl := core.NewTable(c.Schema, m.Gran)
		for k, a := range merged {
			tbl.Rows[k] = a.Final()
		}
		cellsFinalized += int64(len(tbl.Rows))
		ns := obs.NodeStats{
			Node: m.Name, RecordsIn: stats.Records,
			CellsCreated: created, CellsFinalized: int64(len(tbl.Rows)),
			LiveCellsHWM: created,
		}
		if !m.Hidden {
			ns.RecordsOut = int64(len(tbl.Rows))
			if err := opts.Guard.NoteResultRows(int64(len(tbl.Rows))); err != nil {
				return nil, err
			}
		}
		orec.MergeNodeStats(ns)
		i, err := c.Index(m.Name)
		if err != nil {
			return nil, err
		}
		tables[i] = tbl
	}
	stats.ScanTime = time.Since(start)

	// Composite phase, identical to the sequential engine.
	compSpan := orec.Start(obs.SpanCombine)
	for i, m := range c.Measures {
		if m.Kind == core.KindBasic {
			continue
		}
		if err := opts.Guard.Err(); err != nil {
			return nil, err
		}
		tbl, err := core.ComputeComposite(c, m, tables)
		if err != nil {
			return nil, fmt.Errorf("singlescan: %w", err)
		}
		cellsFinalized += int64(len(tbl.Rows))
		ns := obs.NodeStats{Node: m.Name, CellsFinalized: int64(len(tbl.Rows))}
		for _, si := range m.Sources {
			if tables[si] != nil {
				ns.RecordsIn += int64(len(tables[si].Rows))
			}
		}
		if !m.Hidden {
			ns.RecordsOut = int64(len(tbl.Rows))
			if err := opts.Guard.NoteResultRows(int64(len(tbl.Rows))); err != nil {
				return nil, err
			}
		}
		orec.MergeNodeStats(ns)
		tables[i] = tbl
	}
	compSpan.End()
	stats.CompositeTime = compSpan.Duration()

	orec.Counter(obs.MRecordsScanned).Add(stats.Records)
	orec.Counter(obs.MCellsCreated).Add(cellsCreated)
	orec.Counter(obs.MCellsFinalized).Add(cellsFinalized)
	orec.Counter(obs.MSpillEvents)
	orec.Counter(obs.MSpillBytes)
	orec.Gauge(obs.GLiveCellsHWM).SetMax(cellsCreated)
	orec.Gauge(obs.GHashBytesHWM).SetMax(stats.PeakBytes)

	res := &Result{Tables: make(map[string]*core.Table), Stats: stats}
	for _, name := range c.Outputs() {
		i, _ := c.Index(name)
		res.Tables[name] = tables[i]
	}
	return res, nil
}
