// Package singlescan implements the single-scan algorithm of
// Section 5.1 (following Johnson & Chatziantoniou [19]): one hash
// table per measure, all basic measures evaluated simultaneously in a
// single pass over the unsorted dataset, then composite measures
// computed in topological order.
//
// The algorithm "is effective only when the size of memory is big
// enough to hold all hash tables". To reproduce that regime at laptop
// scale, the engine takes an optional memory budget: when the live
// hash tables exceed it, the largest table is serialized to a spill
// file and cleared, and at end of scan spilled partial states are
// externally sorted and merged back — a real out-of-core fallback
// whose extra disk round-trips produce the paper's "slows down
// significantly due to insufficient memory" behaviour honestly.
package singlescan

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/exec/cellmap"
	"awra/internal/exec/scan"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/qguard"
	"awra/internal/storage"
)

// Options configures a run.
type Options struct {
	// MemoryBudget caps the estimated bytes of live basic-measure hash
	// tables; 0 means unlimited. Exceeding it triggers spilling.
	MemoryBudget int64
	// TempDir receives spill files; empty uses os.TempDir().
	TempDir string
	// ReadBatchBytes is the chunk size of the batched fact reads in
	// RunFile (0 = scan.DefaultBatchBytes).
	ReadBatchBytes int
	// Recorder, if non-nil, receives the run's phase spans (scan,
	// spill_merge, combine) and the standard engine metrics.
	Recorder *obs.Recorder
	// Guard, if non-nil, enforces cancellation and resource budgets.
	// Checks happen at scan strides and phase boundaries, so budgets
	// may overshoot slightly before the run aborts.
	Guard *qguard.Guard
}

// Stats reports what a run did.
type Stats struct {
	Records   int64
	PeakBytes int64
	// Spills counts spill events; SpilledEntries the entries written.
	Spills         int
	SpilledEntries int64
	// ScanTime and CompositeTime split the two phases.
	ScanTime      time.Duration
	CompositeTime time.Duration
}

// Result holds the computed measure tables, keyed by measure name
// (outputs only; hidden bases are dropped).
type Result struct {
	Tables map[string]*core.Table
	Stats  Stats
}

// table is the in-flight state of one basic measure: an open-addressing
// cell table over encoded region keys plus a dense parallel slice of
// aggregator states (replacing the seed's map[model.Key]Aggregator on
// the hot path).
type table struct {
	m    *core.Measure
	tab  *cellmap.Table
	aggs []agg.Aggregator
	// Cell key recipe: for each non-ALL dimension (schema order), the
	// base dimension index, the dimension, and the target level. The
	// produced bytes are identical to m.Codec.FromBase.
	dIdx   []int
	dims   []*model.Dimension
	lvls   []model.Level
	keyBuf []byte
	bytes  int64
	// spill bookkeeping
	spillPath  string
	spillGen   int64
	writer     *storage.Writer
	spillBytes int64 // bytes written to the spill file
	guard      *qguard.Guard
	// Per-node tallies (plain fields, published at end of run).
	recordsIn int64
	created   int64
	finalized int64
	live      int64
	liveHWM   int64
}

func newTable(c *core.Compiled, m *core.Measure, guard *qguard.Guard) *table {
	t := &table{m: m, tab: cellmap.New(m.Codec.KeyBytes()), guard: guard}
	for d := 0; d < c.Schema.NumDims(); d++ {
		dim := c.Schema.Dim(d)
		if m.Gran[d] == dim.ALL() {
			continue
		}
		t.dIdx = append(t.dIdx, d)
		t.dims = append(t.dims, dim)
		t.lvls = append(t.lvls, m.Gran[d])
	}
	t.keyBuf = make([]byte, 0, 8*len(t.dIdx))
	return t
}

// Run evaluates the workflow over the record source.
func Run(c *core.Compiled, src storage.Source, opts Options) (*Result, error) {
	bsrc := scan.NewBatcher(src, c.Schema.NumDims(), c.Schema.NumMeasures())
	return run(c, bsrc, opts)
}

// RunFile evaluates the workflow over a record file through the
// batched zero-copy reader — the fast path for file-backed runs.
func RunFile(c *core.Compiled, path string, opts Options) (*Result, error) {
	r, err := scan.Open(path, scan.Options{BatchBytes: opts.ReadBatchBytes, Guard: opts.Guard})
	if err != nil {
		return nil, fmt.Errorf("singlescan: %w", err)
	}
	defer r.Close()
	return run(c, r, opts)
}

func run(c *core.Compiled, bsrc scan.BatchSource, opts Options) (*Result, error) {
	orec := opts.Recorder
	if orec == nil {
		orec = obs.New() // private recorder so Stats stays complete
	}
	start := time.Now()
	tempDir := opts.TempDir
	if tempDir == "" {
		tempDir = os.TempDir()
	}

	var stats Stats
	var basics []*table
	var totalBytes int64
	needRec := false
	for _, m := range c.Measures {
		if m.Kind == core.KindBasic {
			basics = append(basics, newTable(c, m, opts.Guard))
			if m.Filter != nil {
				needRec = true
			}
		}
	}
	defer func() {
		for _, t := range basics {
			if t.writer != nil {
				t.writer.Close()
			}
			if t.spillPath != "" {
				os.Remove(t.spillPath)
			}
		}
	}()

	// Phase 1: one scan, all basic measures at once (Table 7 lines
	// 3-7, without the sort). Records arrive as verified zero-copy
	// byte-slice batches; per-record work is key assembly into a
	// reusable buffer, one open-addressing probe, and the aggregate
	// update.
	scanSpan := orec.Start(obs.SpanScan)
	if tc, ok := bsrc.(interface{ TotalRecords() int64 }); ok {
		scanSpan.SetTotal(tc.TotalRecords())
	}
	numDims := c.Schema.NumDims()
	var frec model.Record
	if needRec {
		frec = model.Record{Dims: make([]int64, numDims), Ms: make([]float64, c.Schema.NumMeasures())}
	}
	var cellsCreated, liveCells, peakLive int64
	for {
		batch, err := bsrc.NextBatch()
		if err != nil {
			return nil, fmt.Errorf("singlescan: %w", err)
		}
		if batch == nil {
			break
		}
		for _, row := range batch {
			stats.Records++
			// Keep the fine in-batch stride: file batches span tens of
			// thousands of rows, too coarse for cancellation latency.
			if stats.Records&255 == 0 {
				scanSpan.SetDone(stats.Records)
				if err := opts.Guard.Err(); err != nil {
					return nil, err
				}
				if err := opts.Guard.NoteLiveCells(liveCells); err != nil {
					return nil, err
				}
			}
			if needRec {
				row.DecodeInto(frec.Dims, frec.Ms)
			}
			for _, t := range basics {
				m := t.m
				t.recordsIn++
				if m.Filter != nil && !m.Filter.Eval(frec.Dims, frec.Ms) {
					continue
				}
				kb := t.keyBuf[:0]
				for j, d := range t.dIdx {
					kb = model.AppendKeyCode(kb, t.dims[j].Up(0, t.lvls[j], row.Dim(d)))
				}
				t.keyBuf = kb
				idx, created := t.tab.Insert(kb)
				var a agg.Aggregator
				if created {
					a = m.Agg.New()
					t.aggs = append(t.aggs, a)
					cellsCreated++
					liveCells++
					if liveCells > peakLive {
						peakLive = liveCells
					}
					t.created++
					t.live++
					if t.live > t.liveHWM {
						t.liveHWM = t.live
					}
					delta := int64(len(kb)) + int64(a.Bytes()) + 16
					t.bytes += delta
					totalBytes += delta
				} else {
					a = t.aggs[idx]
				}
				before := a.Bytes()
				if m.FactMeasure >= 0 {
					a.Update(row.Measure(numDims, m.FactMeasure))
				} else {
					a.Update(0)
				}
				if d := int64(a.Bytes() - before); d != 0 {
					t.bytes += d
					totalBytes += d
				}
			}
			if totalBytes > stats.PeakBytes {
				stats.PeakBytes = totalBytes
			}
			if opts.MemoryBudget > 0 && totalBytes > opts.MemoryBudget {
				// Spill the largest table and keep scanning.
				victim := basics[0]
				for _, t := range basics {
					if t.bytes > victim.bytes {
						victim = t
					}
				}
				n, err := victim.spill(tempDir)
				if err != nil {
					return nil, err
				}
				stats.Spills++
				stats.SpilledEntries += n
				liveCells -= n
				victim.live -= n
				totalBytes -= victim.bytes
				victim.bytes = 0
			}
		}
	}
	scanSpan.SetDone(stats.Records)
	scanSpan.SetAttr("records", fmt.Sprint(stats.Records))
	scanSpan.End()

	// Merge spilled partial states back (external sort + merge).
	spillSpan := orec.Start(obs.SpanSpill)
	var cellsFinalized int64
	tables := make([]*core.Table, len(c.Measures))
	for _, t := range basics {
		if err := opts.Guard.Err(); err != nil {
			return nil, err
		}
		var tbl *core.Table
		if t.spillPath != "" {
			// Spill the in-memory remainder so everything is on disk,
			// then sort and merge.
			if _, err := t.spill(tempDir); err != nil {
				return nil, err
			}
			stats.Spills++
			var err error
			tbl, err = t.mergeSpills(c.Schema, tempDir, orec)
			if err != nil {
				return nil, err
			}
		} else {
			tbl = core.NewTable(c.Schema, t.m.Gran)
			// Exact-size map build from the dense arena: one growth-free
			// insert per cell, in insertion order.
			tbl.Rows = make(map[model.Key]float64, t.tab.Len())
			for i := 0; i < t.tab.Len(); i++ {
				tbl.Rows[model.Key(t.tab.KeyAt(int32(i)))] = t.aggs[i].Final()
			}
		}
		cellsFinalized += int64(len(tbl.Rows))
		t.finalized = int64(len(tbl.Rows))
		if !t.m.Hidden {
			if err := opts.Guard.NoteResultRows(int64(len(tbl.Rows))); err != nil {
				return nil, err
			}
		}
		i, err := c.Index(t.m.Name)
		if err != nil {
			return nil, err
		}
		tables[i] = tbl
	}
	spillSpan.End()
	stats.ScanTime = time.Since(start)

	// Phase 2: composite measures in topological order (the
	// workflow's compiled order).
	compSpan := orec.Start(obs.SpanCombine)
	for i, m := range c.Measures {
		if m.Kind == core.KindBasic {
			continue
		}
		if err := opts.Guard.Err(); err != nil {
			return nil, err
		}
		tbl, err := core.ComputeComposite(c, m, tables)
		if err != nil {
			return nil, fmt.Errorf("singlescan: %w", err)
		}
		cellsFinalized += int64(len(tbl.Rows))
		ns := obs.NodeStats{Node: m.Name, CellsFinalized: int64(len(tbl.Rows))}
		for _, si := range m.Sources {
			if tables[si] != nil {
				ns.RecordsIn += int64(len(tables[si].Rows))
			}
		}
		if !m.Hidden {
			ns.RecordsOut = int64(len(tbl.Rows))
			if err := opts.Guard.NoteResultRows(int64(len(tbl.Rows))); err != nil {
				return nil, err
			}
		}
		orec.MergeNodeStats(ns)
		tables[i] = tbl
	}
	compSpan.End()
	stats.CompositeTime = compSpan.Duration()

	var peak2 int64
	for i := range tables {
		if tables[i] != nil {
			peak2 += int64(len(tables[i].Rows)) * int64(c.Measures[i].Codec.KeyBytes()+24)
		}
	}
	if peak2 > stats.PeakBytes {
		stats.PeakBytes = peak2
	}

	// Publish the standard engine vocabulary (phase-boundary only).
	var spilledBytes int64
	for _, t := range basics {
		spilledBytes += t.spillBytes
	}
	orec.Counter(obs.MRecordsScanned).Add(stats.Records)
	orec.Counter(obs.MCellsCreated).Add(cellsCreated)
	orec.Counter(obs.MCellsFinalized).Add(cellsFinalized)
	orec.Counter(obs.MSpillEvents).Add(int64(stats.Spills))
	orec.Counter(obs.MSpillBytes).Add(spilledBytes)
	orec.Counter(obs.MSpilledEntries).Add(stats.SpilledEntries)
	orec.Gauge(obs.GLiveCellsHWM).SetMax(peakLive)
	orec.Gauge(obs.GHashBytesHWM).SetMax(stats.PeakBytes)
	scan.PublishReadStats(orec, bsrc)
	var probeHWM, grows, arena int64
	for _, t := range basics {
		ts := t.tab.Stats()
		if ts.ProbeHWM > probeHWM {
			probeHWM = ts.ProbeHWM
		}
		grows += ts.Grows
		arena += ts.ArenaBytesHWM
	}
	orec.Counter(obs.MCellTableGrows).Add(grows)
	orec.Gauge(obs.GCellProbeHWM).SetMax(probeHWM)
	orec.Gauge(obs.GCellArenaBytes).SetMax(arena)
	for _, t := range basics {
		ns := obs.NodeStats{
			Node:           t.m.Name,
			RecordsIn:      t.recordsIn,
			CellsCreated:   t.created,
			CellsFinalized: t.finalized,
			LiveCellsHWM:   t.liveHWM,
		}
		if !t.m.Hidden {
			ns.RecordsOut = t.finalized
		}
		orec.MergeNodeStats(ns)
	}

	res := &Result{Tables: make(map[string]*core.Table), Stats: stats}
	for _, name := range c.Outputs() {
		i, _ := c.Index(name)
		res.Tables[name] = tables[i]
	}
	return res, nil
}

// spillSeq disambiguates spill paths across concurrent queries in one
// process sharing a temp directory.
var spillSeq atomic.Int64

// spill writes every live entry's aggregator state to the measure's
// spill file as fixed-width rows (key codes..., generation, position)
// -> state value, then clears the hash table.
func (t *table) spill(tempDir string) (int64, error) {
	if t.writer == nil {
		// Measure names repeat across concurrent queries; the sequence
		// keeps one query's spill from clobbering another's.
		t.spillPath = filepath.Join(tempDir, fmt.Sprintf("awra-spill-%d-%d-%s.tmp",
			os.Getpid(), spillSeq.Add(1), sanitize(t.m.Name)))
		w, err := storage.Create(t.spillPath, t.m.Codec.Width()+2, 1)
		if err != nil {
			return 0, fmt.Errorf("singlescan: create spill: %w", err)
		}
		t.writer = w
	}
	var n int64
	bytesBefore := t.spillBytes
	rowBytes := int64(8 * (t.m.Codec.Width() + 2 + 1))
	width := t.m.Codec.Width()
	rec := model.Record{Dims: make([]int64, width+2), Ms: make([]float64, 1)}
	for i := 0; i < t.tab.Len(); i++ {
		codes := t.m.Codec.Decode(model.Key(t.tab.KeyAt(int32(i))))
		copy(rec.Dims, codes)
		rec.Dims[width] = t.spillGen
		state := t.aggs[i].State()
		if len(state) == 0 {
			// Keep one marker row per entry so empty states survive
			// the round trip; position -1 means "no state values".
			rec.Dims[width+1] = -1
			rec.Ms[0] = 0
			if err := t.writer.Write(&rec); err != nil {
				return n, fmt.Errorf("singlescan: write spill: %w", err)
			}
			t.spillBytes += rowBytes
		}
		for j, v := range state {
			rec.Dims[width+1] = int64(j)
			rec.Ms[0] = v
			if err := t.writer.Write(&rec); err != nil {
				return n, fmt.Errorf("singlescan: write spill: %w", err)
			}
			t.spillBytes += rowBytes
		}
		n++
	}
	t.tab.Reset()
	t.aggs = t.aggs[:0]
	t.spillGen++
	if err := t.guard.NoteSpill(t.spillBytes - bytesBefore); err != nil {
		return n, err
	}
	return n, nil
}

// mergeSpills sorts the spill file by (key, generation, position),
// restores per-generation states, and merges them per key.
func (t *table) mergeSpills(s *model.Schema, tempDir string, orec *obs.Recorder) (*core.Table, error) {
	if err := t.writer.Close(); err != nil {
		return nil, err
	}
	t.writer = nil
	sorted := t.spillPath + ".sorted"
	defer os.Remove(sorted)
	less := func(a, b *model.Record) bool {
		for i := range a.Dims {
			if a.Dims[i] != b.Dims[i] {
				return a.Dims[i] < b.Dims[i]
			}
		}
		return false
	}
	if _, err := storage.SortFile(t.spillPath, sorted, less, storage.SortOptions{TempDir: tempDir, Recorder: orec, Guard: t.guard}); err != nil {
		return nil, fmt.Errorf("singlescan: sort spill: %w", err)
	}
	r, err := storage.OpenGuarded(sorted, t.guard)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	tbl := core.NewTable(s, t.m.Gran)
	width := t.m.Codec.Width()
	var (
		curKey   model.Key
		curAgg   agg.Aggregator
		genState []float64
		haveGen  bool
		haveKey  bool
	)
	flushGen := func() error {
		if !haveGen {
			return nil
		}
		a, err := t.m.Agg.Restore(genState)
		if err != nil {
			return err
		}
		if curAgg == nil {
			curAgg = a
		} else {
			curAgg.Merge(a)
		}
		genState = genState[:0]
		haveGen = false
		return nil
	}
	flushKey := func() error {
		if !haveKey {
			return nil
		}
		if err := flushGen(); err != nil {
			return err
		}
		tbl.Rows[curKey] = curAgg.Final()
		curAgg = nil
		haveKey = false
		return nil
	}
	var rec model.Record
	lastGen := int64(-1)
	for {
		ok, err := r.Next(&rec)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if len(rec.Dims) < width+2 {
			return nil, fmt.Errorf("singlescan: malformed spill row: %d codes, want %d", len(rec.Dims), width+2)
		}
		k, err := t.m.Codec.FromCodesChecked(rec.Dims[:width])
		if err != nil {
			return nil, fmt.Errorf("singlescan: malformed spill row: %w", err)
		}
		gen := rec.Dims[width]
		if !haveKey || k != curKey {
			if err := flushKey(); err != nil {
				return nil, err
			}
			curKey, haveKey, lastGen = k, true, -1
		}
		if gen != lastGen {
			if err := flushGen(); err != nil {
				return nil, err
			}
			lastGen = gen
		}
		haveGen = true
		if rec.Dims[width+1] >= 0 { // -1 marks an empty serialized state
			genState = append(genState, rec.Ms[0])
		}
	}
	if err := flushKey(); err != nil {
		return nil, err
	}
	return tbl, nil
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			out = append(out, r)
		} else {
			out = append(out, '_')
		}
	}
	return string(out)
}
