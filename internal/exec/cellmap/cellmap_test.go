package cellmap

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestTableBasics(t *testing.T) {
	tab := New(8)
	k := func(v uint64) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, v)
		return b
	}
	if got := tab.Lookup(k(1)); got != -1 {
		t.Fatalf("Lookup on empty = %d, want -1", got)
	}
	i0, created := tab.Insert(k(1))
	if !created || i0 != 0 {
		t.Fatalf("first Insert = (%d,%v), want (0,true)", i0, created)
	}
	i1, created := tab.Insert(k(2))
	if !created || i1 != 1 {
		t.Fatalf("second Insert = (%d,%v), want (1,true)", i1, created)
	}
	again, created := tab.Insert(k(1))
	if created || again != 0 {
		t.Fatalf("repeat Insert = (%d,%v), want (0,false)", again, created)
	}
	if got := tab.Lookup(k(2)); got != 1 {
		t.Fatalf("Lookup = %d, want 1", got)
	}
	if string(tab.KeyAt(0)) != string(k(1)) || string(tab.KeyAt(1)) != string(k(2)) {
		t.Fatal("KeyAt does not round-trip inserted keys in insertion order")
	}
	tab.Reset()
	if tab.Len() != 0 || tab.Lookup(k(1)) != -1 {
		t.Fatal("Reset did not empty the table")
	}
	if i, created := tab.Insert(k(3)); !created || i != 0 {
		t.Fatalf("Insert after Reset = (%d,%v), want (0,true)", i, created)
	}
}

func TestTableZeroWidthKey(t *testing.T) {
	tab := New(0)
	i, created := tab.Insert(nil)
	if !created || i != 0 {
		t.Fatalf("zero-width Insert = (%d,%v), want (0,true)", i, created)
	}
	if i, created := tab.Insert([]byte{}); created || i != 0 {
		t.Fatalf("repeat zero-width Insert = (%d,%v), want (0,false)", i, created)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
}

// TestTableAgainstMap drives the table against a Go map through growth
// and verifies every answer, including dense enumeration.
func TestTableAgainstMap(t *testing.T) {
	const keyLen = 16
	rng := rand.New(rand.NewSource(42))
	tab := New(keyLen)
	ref := map[string]int32{}
	order := []string{}
	buf := make([]byte, keyLen)
	for i := 0; i < 20000; i++ {
		rng.Read(buf)
		// Small value space so repeats are common.
		buf[0] &= 3
		buf[1] &= 7
		idx, created := tab.Insert(buf)
		want, ok := ref[string(buf)]
		if ok {
			if created || idx != want {
				t.Fatalf("Insert(%x) = (%d,%v), want (%d,false)", buf, idx, created, want)
			}
		} else {
			if !created || int(idx) != len(order) {
				t.Fatalf("Insert(%x) = (%d,%v), want (%d,true)", buf, idx, created, len(order))
			}
			ref[string(buf)] = idx
			order = append(order, string(buf))
		}
	}
	if tab.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(ref))
	}
	for i, k := range order {
		if string(tab.KeyAt(int32(i))) != k {
			t.Fatalf("KeyAt(%d) mismatch", i)
		}
		if got := tab.Lookup([]byte(k)); got != int32(i) {
			t.Fatalf("Lookup(%x) = %d, want %d", k, got, i)
		}
	}
}
