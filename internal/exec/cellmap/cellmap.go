// Package cellmap provides the open-addressing hash table behind the
// engines' cell hot path. Keys are the fixed-width encoded region keys
// (model.Key bytes) of one region set; values are dense indices into a
// caller-owned parallel slice of cell state. Compared to a Go
// map[model.Key]*cell it avoids per-lookup string conversions, per-cell
// pointer allocations, and hash-iteration overhead: FNV-1a over the key
// bytes, linear probing, power-of-two growth, and an append-only key
// arena that the caller can scan densely at flush time.
//
// The table does not support deletion; the engines' watermark flushes
// retire whole batches of cells at once, so they rebuild the table from
// the survivors (Reset + re-Insert) instead of tombstoning.
package cellmap

// Table maps fixed-width byte keys to dense indices 0..Len()-1 in
// insertion order.
type Table struct {
	keyLen int
	slots  []int32 // entry index + 1; 0 = empty
	mask   uint64
	keys   []byte // arena: entry i's key at [i*keyLen, (i+1)*keyLen)
	n      int
	// Plain-field tallies for the flight recorder, maintained off the
	// per-probe path (a register increment inside the probe loop, one
	// compare per insert) and read only at phase boundaries via Stats.
	probeHWM int64 // longest linear-probe walk any Insert took
	grows    int64 // rehash count (table doublings)
	arenaHWM int64 // peak arena bytes, surviving Reset
}

// Stats is a point-in-time view of a table's probe and growth
// behavior, for phase-boundary publishing — never read it per row.
type Stats struct {
	// Entries is the current entry count.
	Entries int64
	// Slots is the current probe-index size.
	Slots int64
	// ProbeHWM is the longest linear-probe walk any insert performed
	// (0 = every insert landed on its home slot).
	ProbeHWM int64
	// Grows counts table doublings (rehashes) over the table's life.
	Grows int64
	// ArenaBytesHWM is the peak key-arena size in bytes, including
	// populations retired by Reset.
	ArenaBytesHWM int64
}

// Stats snapshots the table's tallies.
func (t *Table) Stats() Stats {
	arena := t.arenaHWM
	if cur := int64(len(t.keys)); cur > arena {
		arena = cur
	}
	return Stats{
		Entries:       int64(t.n),
		Slots:         int64(len(t.slots)),
		ProbeHWM:      t.probeHWM,
		Grows:         t.grows,
		ArenaBytesHWM: arena,
	}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// New returns a table for keys of keyLen bytes (zero is allowed: the
// all-ALL region set has a single, empty key).
func New(keyLen int) *Table {
	t := &Table{keyLen: keyLen}
	t.init(16)
	return t
}

func (t *Table) init(slots int) {
	t.slots = make([]int32, slots)
	t.mask = uint64(slots - 1)
}

// Len returns the number of entries.
func (t *Table) Len() int { return t.n }

// KeyLen returns the fixed key width in bytes.
func (t *Table) KeyLen() int { return t.keyLen }

func (t *Table) hash(k []byte) uint64 {
	h := uint64(fnvOffset)
	for _, b := range k {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// KeyAt returns entry i's key bytes (a view into the arena; do not
// mutate or retain across Reset).
func (t *Table) KeyAt(i int32) []byte {
	return t.keys[int(i)*t.keyLen : int(i)*t.keyLen+t.keyLen]
}

func keyEq(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Lookup returns the entry index for k, or -1.
func (t *Table) Lookup(k []byte) int32 {
	i := t.hash(k) & t.mask
	for {
		s := t.slots[i]
		if s == 0 {
			return -1
		}
		e := s - 1
		if keyEq(t.KeyAt(e), k) {
			return e
		}
		i = (i + 1) & t.mask
	}
}

// Insert returns the entry index for k, creating it if absent. The key
// bytes are copied into the arena on creation.
func (t *Table) Insert(k []byte) (idx int32, created bool) {
	i := t.hash(k) & t.mask
	var probe int64
	for {
		s := t.slots[i]
		if s == 0 {
			break
		}
		e := s - 1
		if keyEq(t.KeyAt(e), k) {
			return e, false
		}
		i = (i + 1) & t.mask
		probe++
	}
	if probe > t.probeHWM {
		t.probeHWM = probe
	}
	e := int32(t.n)
	t.keys = append(t.keys, k...)
	t.n++
	t.slots[i] = e + 1
	// Grow at 7/8 load: linear probing stays short and the rehash only
	// repositions slot indices — the arena never moves.
	if uint64(t.n)*8 >= uint64(len(t.slots))*7 {
		t.grow()
	}
	return e, true
}

// InsertString is Insert for string-typed keys (model.Key), avoiding
// the []byte conversion allocation on the caller's side.
func (t *Table) InsertString(k string) (idx int32, created bool) {
	h := uint64(fnvOffset)
	for j := 0; j < len(k); j++ {
		h ^= uint64(k[j])
		h *= fnvPrime
	}
	i := h & t.mask
	var probe int64
	for {
		s := t.slots[i]
		if s == 0 {
			break
		}
		e := s - 1
		if string(t.KeyAt(e)) == k {
			return e, false
		}
		i = (i + 1) & t.mask
		probe++
	}
	if probe > t.probeHWM {
		t.probeHWM = probe
	}
	e := int32(t.n)
	t.keys = append(t.keys, k...)
	t.n++
	t.slots[i] = e + 1
	if uint64(t.n)*8 >= uint64(len(t.slots))*7 {
		t.grow()
	}
	return e, true
}

// Append adds k as a new entry without consulting the probe index, for
// callers that know k was never inserted — the engines' append-only
// nodes, whose cell keys arrive in contiguous runs. The probe index is
// not updated: after an Append, Lookup/Insert answers are undefined
// until the next Reset. Mixing Append with probing calls on one
// population is a caller bug.
func (t *Table) Append(k []byte) int32 {
	e := int32(t.n)
	t.keys = append(t.keys, k...)
	t.n++
	return e
}

func (t *Table) grow() {
	t.grows++
	t.init(len(t.slots) * 2)
	for e := 0; e < t.n; e++ {
		i := t.hash(t.KeyAt(int32(e))) & t.mask
		for t.slots[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.slots[i] = int32(e) + 1
	}
}

// Reset empties the table, keeping capacity. The caller's parallel
// value slice should be truncated alongside. Tallies (probe HWM, grow
// count, arena HWM) survive: they describe the table's whole life
// across watermark-flush rebuilds.
func (t *Table) Reset() {
	if cur := int64(len(t.keys)); cur > t.arenaHWM {
		t.arenaHWM = cur
	}
	for i := range t.slots {
		t.slots[i] = 0
	}
	t.keys = t.keys[:0]
	t.n = 0
}
