package core

import (
	"strings"
	"testing"

	"awra/internal/agg"
	"awra/internal/model"
)

// twoDim builds the schema used across core tests: two dimensions with
// 3-level fanout-10 hierarchies (codes 0..999 at base) and one measure
// attribute "m".
func twoDim(t *testing.T) *model.Schema {
	t.Helper()
	s, err := model.NewSchema([]*model.Dimension{
		model.FixedFanout("A", 3, 10),
		model.FixedFanout("B", 3, 10),
	}, "m")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustAgg(t *testing.T, in *Expr, g model.Gran, k agg.Kind, fm int) *Expr {
	t.Helper()
	e, err := Aggregate(in, g, k, fm)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFactExpr(t *testing.T) {
	s := twoDim(t)
	d := Fact(s)
	if d.Kind != FactExpr || !d.IsFactLike() {
		t.Error("Fact not fact-like")
	}
	if !model.GranEq(d.Gran(), s.BaseGran()) {
		t.Error("fact granularity is not base")
	}
	if d.String() != "D" {
		t.Errorf("String = %q", d.String())
	}
}

func TestSelectValidation(t *testing.T) {
	s := twoDim(t)
	if _, err := Select(nil, MWhere(0, Gt, 5)); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := Select(Fact(s), Predicate{}); err == nil {
		t.Error("nil predicate accepted")
	}
	sel, err := Select(Fact(s), MWhere(0, Gt, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !sel.IsFactLike() {
		t.Error("sigma(D) should be fact-like")
	}
	if !strings.Contains(sel.String(), "sigma") {
		t.Errorf("String = %q", sel.String())
	}
}

func TestAggregateValidation(t *testing.T) {
	s := twoDim(t)
	d := Fact(s)
	if _, err := Aggregate(nil, model.Gran{1, 1}, agg.Count, -1); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := Aggregate(d, model.Gran{9, 9}, agg.Count, -1); err == nil {
		t.Error("invalid gran accepted")
	}
	// Count(*) is fine without a measure attribute; Sum is not.
	if _, err := Aggregate(d, model.Gran{1, 1}, agg.Sum, -1); err == nil {
		t.Error("Sum over rows accepted")
	}
	if _, err := Aggregate(d, model.Gran{1, 1}, agg.Sum, 7); err == nil {
		t.Error("out-of-range fact measure accepted")
	}
	a := mustAgg(t, d, model.Gran{1, 1}, agg.Count, -1)
	// Roll-up prerequisite: target must be coarser or equal.
	if _, err := Aggregate(a, model.Gran{0, 0}, agg.Sum, 0); err == nil {
		t.Error("finer target accepted")
	}
	b := mustAgg(t, a, model.Gran{2, 1}, agg.Sum, 0)
	if !strings.HasPrefix(b.String(), "g_(A:L2, B:L1),sum(") {
		t.Errorf("String = %q", b.String())
	}
}

func TestMatchJoinValidation(t *testing.T) {
	s := twoDim(t)
	d := Fact(s)
	fine := mustAgg(t, d, model.Gran{0, 0}, agg.Count, -1)
	coarse := mustAgg(t, d, model.Gran{1, model.LevelALL}, agg.Count, -1)
	other := mustAgg(t, d, model.Gran{0, 0}, agg.Sum, 0)

	if _, err := MatchJoin(nil, fine, MatchCond{Kind: MatchSelf}, agg.Sum); err == nil {
		t.Error("nil operand accepted")
	}
	// Table 5: S and T must not be D or sigma(D).
	if _, err := MatchJoin(d, fine, MatchCond{Kind: MatchSelf}, agg.Sum); err == nil {
		t.Error("fact S accepted")
	}
	sd, _ := Select(d, MWhere(0, Gt, 0))
	if _, err := MatchJoin(fine, sd, MatchCond{Kind: MatchSelf}, agg.Sum); err == nil {
		t.Error("sigma(D) T accepted")
	}
	// Self needs equal grans.
	if _, err := MatchJoin(fine, coarse, MatchCond{Kind: MatchSelf}, agg.Sum); err == nil {
		t.Error("self match with unequal grans accepted")
	}
	if _, err := MatchJoin(fine, other, MatchCond{Kind: MatchSelf, Windows: []Window{{Dim: 0}}}, agg.Sum); err == nil {
		t.Error("self match with windows accepted")
	}
	// Parent/child: T strictly coarser than S.
	if _, err := MatchJoin(coarse, fine, MatchCond{Kind: MatchParentChild}, agg.Sum); err == nil {
		t.Error("pc with finer T accepted")
	}
	if _, err := MatchJoin(fine, other, MatchCond{Kind: MatchParentChild}, agg.Sum); err == nil {
		t.Error("pc with equal grans accepted")
	}
	if _, err := MatchJoin(fine, coarse, MatchCond{Kind: MatchParentChild}, agg.Sum); err != nil {
		t.Errorf("valid pc rejected: %v", err)
	}
	// Child/parent: T strictly finer than S.
	if _, err := MatchJoin(coarse, fine, MatchCond{Kind: MatchChildParent}, agg.Sum); err != nil {
		t.Errorf("valid cp rejected: %v", err)
	}
	if _, err := MatchJoin(fine, coarse, MatchCond{Kind: MatchChildParent}, agg.Sum); err == nil {
		t.Error("cp with coarser T accepted")
	}
	// Sibling: equal grans, validated windows.
	if _, err := MatchJoin(fine, other, MatchCond{Kind: MatchSibling}, agg.Sum); err == nil {
		t.Error("sibling without windows accepted")
	}
	if _, err := MatchJoin(fine, other, MatchCond{Kind: MatchSibling, Windows: []Window{{Dim: 9, Lo: 0, Hi: 1}}}, agg.Sum); err == nil {
		t.Error("sibling window on unknown dim accepted")
	}
	if _, err := MatchJoin(fine, other, MatchCond{Kind: MatchSibling, Windows: []Window{{Dim: 0, Lo: 2, Hi: 1}}}, agg.Sum); err == nil {
		t.Error("sibling window with Lo > Hi accepted")
	}
	if _, err := MatchJoin(fine, other, MatchCond{Kind: MatchSibling, Windows: []Window{{Dim: 0, Lo: 0, Hi: 1}, {Dim: 0, Lo: 0, Hi: 1}}}, agg.Sum); err == nil {
		t.Error("duplicate window accepted")
	}
	allA := mustAgg(t, d, model.Gran{model.LevelALL, 0}, agg.Count, -1)
	allA2 := mustAgg(t, d, model.Gran{model.LevelALL, 0}, agg.Sum, 0)
	if _, err := MatchJoin(allA, allA2, MatchCond{Kind: MatchSibling, Windows: []Window{{Dim: 0, Lo: 0, Hi: 1}}}, agg.Sum); err == nil {
		t.Error("sibling window on D_ALL dim accepted")
	}
	mj, err := MatchJoin(fine, other, MatchCond{Kind: MatchSibling, Windows: []Window{{Dim: 0, Lo: -2, Hi: 2}}}, agg.Avg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mj.String(), "sibling") || !strings.Contains(mj.String(), "A in [-2,+2]") {
		t.Errorf("String = %q", mj.String())
	}
}

func TestCombineJoinValidation(t *testing.T) {
	s := twoDim(t)
	d := Fact(s)
	a := mustAgg(t, d, model.Gran{1, 1}, agg.Count, -1)
	b := mustAgg(t, d, model.Gran{1, 1}, agg.Sum, 0)
	c := mustAgg(t, d, model.Gran{2, 1}, agg.Sum, 0)

	if _, err := CombineJoin(nil, []*Expr{b}, Ratio(0, 1)); err == nil {
		t.Error("nil S accepted")
	}
	if _, err := CombineJoin(a, nil, Ratio(0, 1)); err == nil {
		t.Error("empty T list accepted")
	}
	if _, err := CombineJoin(a, []*Expr{b}, CombineFunc{}); err == nil {
		t.Error("nil fc accepted")
	}
	if _, err := CombineJoin(d, []*Expr{b}, Ratio(0, 1)); err == nil {
		t.Error("fact S accepted (Table 5)")
	}
	if _, err := CombineJoin(a, []*Expr{d}, Ratio(0, 1)); err == nil {
		t.Error("fact T accepted (Table 5)")
	}
	if _, err := CombineJoin(a, []*Expr{c}, Ratio(0, 1)); err == nil {
		t.Error("mismatched granularity accepted")
	}
	if _, err := CombineJoin(a, []*Expr{nil}, Ratio(0, 1)); err == nil {
		t.Error("nil T accepted")
	}
	cj, err := CombineJoin(a, []*Expr{b}, Ratio(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cj.String(), "|x|bar") {
		t.Errorf("String = %q", cj.String())
	}
	if cj.IsFactLike() {
		t.Error("combine join is fact-like")
	}
}

func TestDifferentSchemasRejected(t *testing.T) {
	s1 := twoDim(t)
	s2 := twoDim(t)
	a := mustAgg(t, Fact(s1), model.Gran{1, 1}, agg.Count, -1)
	b := mustAgg(t, Fact(s2), model.Gran{1, 1}, agg.Count, -1)
	if _, err := MatchJoin(a, b, MatchCond{Kind: MatchSelf}, agg.Sum); err == nil {
		t.Error("cross-schema match join accepted")
	}
	if _, err := CombineJoin(a, []*Expr{b}, Ratio(0, 1)); err == nil {
		t.Error("cross-schema combine join accepted")
	}
}

func TestPredicateHelpers(t *testing.T) {
	p := And(MWhere(0, Gt, 5), DimWhere(1, Eq, 3))
	if !p.Eval([]int64{0, 3}, []float64{6}) {
		t.Error("And misfired")
	}
	if p.Eval([]int64{0, 3}, []float64{5}) {
		t.Error("Gt boundary wrong")
	}
	if p.Eval([]int64{0, 4}, []float64{6}) {
		t.Error("DimWhere Eq wrong")
	}
	q := Or(MWhere(0, Lt, 0), Not(DimWhere(0, Ne, 1)))
	if !q.Eval([]int64{1, 0}, []float64{5}) {
		t.Error("Or/Not misfired")
	}
	if q.Eval([]int64{2, 0}, []float64{5}) {
		t.Error("Or misfired")
	}
	// NULL never satisfies comparisons.
	if MWhere(0, Le, 10).Eval(nil, []float64{agg.Null()}) {
		t.Error("NULL satisfied a comparison")
	}
	// Out-of-range measure index is false, not a panic.
	if MWhere(3, Gt, 0).Eval(nil, []float64{1}) {
		t.Error("out-of-range measure index satisfied")
	}
	for _, op := range []CmpOp{Lt, Le, Eq, Ne, Ge, Gt} {
		if op.String() == "" {
			t.Error("empty op string")
		}
	}
}

func TestCombineFuncHelpers(t *testing.T) {
	if v := Ratio(0, 1).Eval([]float64{6, 3}); v != 2 {
		t.Errorf("Ratio = %v", v)
	}
	if v := Ratio(0, 1).Eval([]float64{6, 0}); !agg.IsNull(v) {
		t.Errorf("Ratio by zero = %v", v)
	}
	if v := Ratio(0, 1).Eval([]float64{agg.Null(), 3}); !agg.IsNull(v) {
		t.Errorf("Ratio with NULL = %v", v)
	}
	if v := Diff(1, 0).Eval([]float64{3, 10}); v != 7 {
		t.Errorf("Diff = %v", v)
	}
	if v := SumOf().Eval([]float64{1, agg.Null(), 2}); v != 3 {
		t.Errorf("SumOf = %v", v)
	}
	if v := SumOf().Eval([]float64{agg.Null()}); !agg.IsNull(v) {
		t.Errorf("SumOf all-NULL = %v", v)
	}
	if v := MaxOf().Eval([]float64{1, agg.Null(), 5, 2}); v != 5 {
		t.Errorf("MaxOf = %v", v)
	}
	if v := MaxOf().Eval([]float64{agg.Null()}); !agg.IsNull(v) {
		t.Errorf("MaxOf all-NULL = %v", v)
	}
	if v := Pick(1).Eval([]float64{9, 4}); v != 4 {
		t.Errorf("Pick = %v", v)
	}
}
