package core

import (
	"testing"

	"awra/internal/agg"
	"awra/internal/model"
)

// evalMeasure runs one measure of a compiled workflow through the
// Translate/Eval reference path — the serial oracle the merge tests
// compare against.
func evalMeasure(t *testing.T, c *Compiled, name string, recs []model.Record) *Table {
	t.Helper()
	e, err := Translate(c, name)
	if err != nil {
		t.Fatalf("translate %s: %v", name, err)
	}
	tbl, err := Eval(e, recs)
	if err != nil {
		t.Fatalf("eval %s: %v", name, err)
	}
	return tbl
}

// checkMergedMatches verifies that every output of every part, when
// projected through its name map and evaluated on the merged workflow,
// is bit-identical (eps 0) to evaluating the part alone.
func checkMergedMatches(t *testing.T, merged *Compiled, parts []*Compiled, maps []map[string]string, recs []model.Record) {
	t.Helper()
	for pi, p := range parts {
		for _, out := range p.Outputs() {
			mergedName, ok := maps[pi][out]
			if !ok {
				t.Fatalf("part %d: output %q missing from name map %v", pi, out, maps[pi])
			}
			want := evalMeasure(t, p, out, recs)
			got := evalMeasure(t, merged, mergedName, recs)
			if !got.Equal(want, 0) {
				t.Fatalf("part %d output %q (merged %q): merged result differs from solo run", pi, out, mergedName)
			}
		}
	}
}

func busyWorkflow(t *testing.T, s *model.Schema, threshold float64) *Compiled {
	t.Helper()
	c, err := NewWorkflow(s).
		Basic("Count", model.Gran{1, 0}, agg.Count, -1).
		Rollup("Busy", model.Gran{1, model.LevelALL}, "Count", agg.Count,
			Where(MWhere(0, Gt, threshold))).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMergeIdenticalWorkflowsDedupsFully(t *testing.T) {
	s := twoDim(t)
	a := busyWorkflow(t, s, 1)
	b := busyWorkflow(t, s, 1)
	merged, maps, err := MergeCompiled([]*Compiled{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Measures) != len(a.Measures) {
		t.Fatalf("merged has %d measures, want %d (full dedup of identical workflows)",
			len(merged.Measures), len(a.Measures))
	}
	for _, out := range a.Outputs() {
		if maps[0][out] != maps[1][out] {
			t.Fatalf("identical parts map %q to different merged names: %q vs %q",
				out, maps[0][out], maps[1][out])
		}
	}
	checkMergedMatches(t, merged, []*Compiled{a, b}, maps, paperRecords())
}

func TestMergeSharesCommonSubgraph(t *testing.T) {
	s := twoDim(t)
	// Both parts compute the same base Count; their rollups differ
	// (different thresholds), so only Count should be shared.
	a := busyWorkflow(t, s, 1)
	b := busyWorkflow(t, s, 3)
	merged, maps, err := MergeCompiled([]*Compiled{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3; len(merged.Measures) != want { // Count + Busy(>1) + Busy(>3)
		t.Fatalf("merged has %d measures, want %d (shared Count, distinct rollups)",
			len(merged.Measures), want)
	}
	if maps[0]["Count"] != maps[1]["Count"] {
		t.Fatalf("common Count node not shared: %q vs %q", maps[0]["Count"], maps[1]["Count"])
	}
	if maps[0]["Busy"] == maps[1]["Busy"] {
		t.Fatalf("distinct rollups wrongly merged to %q", maps[0]["Busy"])
	}
	checkMergedMatches(t, merged, []*Compiled{a, b}, maps, paperRecords())
}

func TestMergeAnonymousPredicatesNeverDedup(t *testing.T) {
	s := twoDim(t)
	// Two structurally identical-looking workflows whose filters are
	// anonymous closures with different semantics: both render as
	// "cond", so a signature-keyed merge would silently collapse them.
	mk := func(th float64) *Compiled {
		c, err := NewWorkflow(s).
			Basic("Count", model.Gran{1, 0}, agg.Count, -1).
			Rollup("Busy", model.Gran{1, model.LevelALL}, "Count", agg.Count,
				Where(Predicate{Fn: func(_ []int64, ms []float64) bool {
					return !agg.IsNull(ms[0]) && ms[0] > th
				}})).
			Compile()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(1), mk(3)
	merged, maps, err := MergeCompiled([]*Compiled{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if maps[0]["Busy"] == maps[1]["Busy"] {
		t.Fatal("anonymous-predicate rollups were deduplicated — unsound merge")
	}
	// The unfiltered Count is still shared; only the filtered nodes split.
	if maps[0]["Count"] != maps[1]["Count"] {
		t.Fatal("unfiltered Count should still be shared")
	}
	checkMergedMatches(t, merged, []*Compiled{a, b}, maps, paperRecords())
}

func TestMergeUnhidesSharedBase(t *testing.T) {
	s := twoDim(t)
	g := model.Gran{1, 0}
	// Part a's Sliding generates a hidden __base measure (basic,
	// ConstZero); part b declares the structurally identical measure as
	// a visible output. The merged node must serve both: computed once,
	// reported for b.
	a, err := NewWorkflow(s).
		Basic("Count", g, agg.Count, -1).
		Sliding("Smooth", "Count", agg.Sum, []Window{{Dim: 0, Lo: -1, Hi: 1}}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkflow(s).
		Basic("Cells", g, agg.ConstZero, -1).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	merged, maps, err := MergeCompiled([]*Compiled{a, b})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := merged.MeasureByName(maps[1]["Cells"])
	if err != nil {
		t.Fatal(err)
	}
	if mb.Hidden {
		t.Fatalf("merged base %q still hidden though part 1 outputs it", mb.Name)
	}
	found := false
	for _, o := range merged.Outputs() {
		if o == mb.Name {
			found = true
		}
	}
	if !found {
		t.Fatalf("unhidden %q missing from merged outputs %v", mb.Name, merged.Outputs())
	}
	checkMergedMatches(t, merged, []*Compiled{a, b}, maps, paperRecords())
}

func TestMergeRenamesColumnClashes(t *testing.T) {
	s := twoDim(t)
	// Same output name, different computation: the second must be
	// renamed, not collide and not dedup.
	a, err := NewWorkflow(s).Basic("Count", model.Gran{1, 0}, agg.Count, -1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkflow(s).Basic("Count", model.Gran{1, 1}, agg.Count, -1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	merged, maps, err := MergeCompiled([]*Compiled{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if maps[0]["Count"] == maps[1]["Count"] {
		t.Fatal("different-granularity Counts wrongly merged")
	}
	if got := maps[1]["Count"]; got != "Count~2" {
		t.Fatalf("clash rename = %q, want Count~2", got)
	}
	checkMergedMatches(t, merged, []*Compiled{a, b}, maps, paperRecords())
}

func TestMergeCombineAndDiffWorkflows(t *testing.T) {
	s := twoDim(t)
	a, err := NewWorkflow(s).
		Basic("Sum", model.Gran{1, 0}, agg.Sum, 0).
		Basic("N", model.Gran{1, 0}, agg.Count, -1).
		Combine("Avg", []string{"Sum", "N"}, Ratio(0, 1)).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkflow(s).
		Basic("Total", model.Gran{1, 0}, agg.Sum, 0). // same node as a's "Sum"
		Rollup("Top", model.Gran{model.LevelALL, model.LevelALL}, "Total", agg.Max).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	merged, maps, err := MergeCompiled([]*Compiled{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if maps[0]["Sum"] != maps[1]["Total"] {
		t.Fatalf("structurally identical Sum/Total not shared: %q vs %q",
			maps[0]["Sum"], maps[1]["Total"])
	}
	checkMergedMatches(t, merged, []*Compiled{a, b}, maps, paperRecords())
}

func TestMergeSchemaMismatchFails(t *testing.T) {
	s1 := twoDim(t)
	s2, err := model.NewSchema([]*model.Dimension{
		model.FixedFanout("A", 3, 10),
		model.FixedFanout("C", 3, 10),
	}, "m")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewWorkflow(s1).Basic("Count", model.Gran{1, 0}, agg.Count, -1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkflow(s2).Basic("Count", model.Gran{1, 0}, agg.Count, -1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := MergeCompiled([]*Compiled{a, b}); err == nil {
		t.Fatal("merging workflows over different schemas should fail")
	}
}

func TestMergePreservesNodeSignatures(t *testing.T) {
	// Deduped merged nodes must sign identically to the originals, so
	// measured statistics from merged runs remain usable by solo runs.
	s := twoDim(t)
	a := busyWorkflow(t, s, 1)
	b := busyWorkflow(t, s, 3)
	merged, maps, err := MergeCompiled([]*Compiled{a, b})
	if err != nil {
		t.Fatal(err)
	}
	for pi, p := range []*Compiled{a, b} {
		for _, out := range p.Outputs() {
			i, err := p.Index(out)
			if err != nil {
				t.Fatal(err)
			}
			j, err := merged.Index(maps[pi][out])
			if err != nil {
				t.Fatal(err)
			}
			if got, want := merged.NodeSignature(j), p.NodeSignature(i); got != want {
				t.Fatalf("part %d %q: merged signature %s != solo %s", pi, out, got, want)
			}
		}
	}
}

func TestSchemaSignatureStable(t *testing.T) {
	s1 := twoDim(t)
	s2 := twoDim(t) // distinct pointer, same shape
	if model.SchemaSignature(s1) != model.SchemaSignature(s2) {
		t.Fatal("equal-shaped schemas must sign identically")
	}
	s3, err := model.NewSchema([]*model.Dimension{
		model.FixedFanout("A", 3, 10),
		model.FixedFanout("B", 4, 10),
	}, "m")
	if err != nil {
		t.Fatal(err)
	}
	if model.SchemaSignature(s1) == model.SchemaSignature(s3) {
		t.Fatal("different hierarchies must sign differently")
	}
}
