// Package core implements the paper's primary contribution: the AW-RA
// algebra (Section 3) and the aggregation-workflow language
// (Section 4). Algebra expressions are a validated DAG of the five
// operators of Table 5 (fact table, selection, aggregation, match join,
// combine join); workflows are the measure-centric form that the
// evaluation engines execute, and every workflow measure translates to
// an AW-RA expression (Theorem 2).
package core

import (
	"fmt"

	"awra/internal/agg"
)

// Predicate is a selection condition over one row of an expression's
// output: the region codes (one per dimension, at the expression's
// granularity, with D_ALL positions zero) and the row's measure values
// (the fact table's measure attributes, or the single M column of a
// derived table). Predicates carry a name so plans and DOT diagrams can
// render them.
type Predicate struct {
	Name string
	Fn   func(codes []int64, ms []float64) bool
}

// Eval applies the predicate.
func (p Predicate) Eval(codes []int64, ms []float64) bool { return p.Fn(codes, ms) }

// String returns the predicate's display name.
func (p Predicate) String() string {
	if p.Name == "" {
		return "cond"
	}
	return p.Name
}

// CmpOp is a comparison operator for the predicate helpers.
type CmpOp int

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Eq
	Ne
	Ge
	Gt
)

func (o CmpOp) String() string {
	switch o {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Eq:
		return "="
	case Ne:
		return "!="
	case Ge:
		return ">="
	default:
		return ">"
	}
}

func (o CmpOp) cmpF(a, b float64) bool {
	switch o {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Ge:
		return a >= b
	default:
		return a > b
	}
}

func (o CmpOp) cmpI(a, b int64) bool {
	switch o {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Ge:
		return a >= b
	default:
		return a > b
	}
}

// MWhere builds a predicate over the measure value at index i
// (use 0 for the single M column of a derived table), e.g.
// MWhere(0, Gt, 5) is the paper's sigma_{M>5}. NULL measures never
// satisfy a comparison, matching SQL's treatment of NULL.
func MWhere(i int, op CmpOp, c float64) Predicate {
	return Predicate{
		Name: fmt.Sprintf("M%d %s %v", i, op, c),
		Fn: func(_ []int64, ms []float64) bool {
			if i >= len(ms) || agg.IsNull(ms[i]) {
				return false
			}
			return op.cmpF(ms[i], c)
		},
	}
}

// DimWhere builds a predicate over the region code of dimension dim
// (at the row's granularity).
func DimWhere(dim int, op CmpOp, c int64) Predicate {
	return Predicate{
		Name: fmt.Sprintf("X%d %s %d", dim, op, c),
		Fn: func(codes []int64, _ []float64) bool {
			return op.cmpI(codes[dim], c)
		},
	}
}

// And conjoins predicates.
func And(ps ...Predicate) Predicate {
	name := ""
	for i, p := range ps {
		if i > 0 {
			name += " AND "
		}
		name += p.String()
	}
	return Predicate{
		Name: name,
		Fn: func(codes []int64, ms []float64) bool {
			for _, p := range ps {
				if !p.Fn(codes, ms) {
					return false
				}
			}
			return true
		},
	}
}

// Or disjoins predicates.
func Or(ps ...Predicate) Predicate {
	name := ""
	for i, p := range ps {
		if i > 0 {
			name += " OR "
		}
		name += p.String()
	}
	return Predicate{
		Name: name,
		Fn: func(codes []int64, ms []float64) bool {
			for _, p := range ps {
				if p.Fn(codes, ms) {
					return true
				}
			}
			return false
		},
	}
}

// Not negates a predicate.
func Not(p Predicate) Predicate {
	return Predicate{
		Name: "NOT " + p.String(),
		Fn:   func(codes []int64, ms []float64) bool { return !p.Fn(codes, ms) },
	}
}

// CombineFunc is the f_c of a combine join: it merges the measures of
// same-granularity tables into one value. Arguments arrive in operand
// order: vals[0] is S.M, vals[1..] are T_1.M .. T_n.M; missing outer
// rows contribute NULL, per the LEFT OUTER JOIN of Table 4.
type CombineFunc struct {
	Name string
	Fn   func(vals []float64) float64
}

// Eval applies the combine function.
func (f CombineFunc) Eval(vals []float64) float64 { return f.Fn(vals) }

// String returns the function's display name.
func (f CombineFunc) String() string {
	if f.Name == "" {
		return "fc"
	}
	return f.Name
}

// Ratio is fc(v) = v[a]/v[b]; NULL if either side is NULL or the
// denominator is zero.
func Ratio(a, b int) CombineFunc {
	return CombineFunc{
		Name: fmt.Sprintf("v%d/v%d", a, b),
		Fn: func(v []float64) float64 {
			if agg.IsNull(v[a]) || agg.IsNull(v[b]) || v[b] == 0 {
				return agg.Null()
			}
			return v[a] / v[b]
		},
	}
}

// Diff is fc(v) = v[a] - v[b]; NULL-propagating.
func Diff(a, b int) CombineFunc {
	return CombineFunc{
		Name: fmt.Sprintf("v%d-v%d", a, b),
		Fn: func(v []float64) float64 {
			if agg.IsNull(v[a]) || agg.IsNull(v[b]) {
				return agg.Null()
			}
			return v[a] - v[b]
		},
	}
}

// SumOf is fc(v) = sum of non-NULL arguments (NULL if all are NULL).
func SumOf() CombineFunc {
	return CombineFunc{
		Name: "sum(v...)",
		Fn: func(v []float64) float64 {
			s, n := 0.0, 0
			for _, x := range v {
				if !agg.IsNull(x) {
					s += x
					n++
				}
			}
			if n == 0 {
				return agg.Null()
			}
			return s
		},
	}
}

// MaxOf is fc(v) = max of non-NULL arguments (NULL if all are NULL).
// It implements the S_max combine of the Section 5.3.3 example.
func MaxOf() CombineFunc {
	return CombineFunc{
		Name: "max(v...)",
		Fn: func(v []float64) float64 {
			best, ok := 0.0, false
			for _, x := range v {
				if agg.IsNull(x) {
					continue
				}
				if !ok || x > best {
					best, ok = x, true
				}
			}
			if !ok {
				return agg.Null()
			}
			return best
		},
	}
}

// Pick is fc(v) = v[i]: project one operand's measure.
func Pick(i int) CombineFunc {
	return CombineFunc{
		Name: fmt.Sprintf("v%d", i),
		Fn:   func(v []float64) float64 { return v[i] },
	}
}
