package core

import (
	"fmt"

	"awra/internal/agg"
	"awra/internal/model"
)

// Translate converts a compiled workflow measure into an equivalent
// AW-RA expression (Theorem 2: every measure in an aggregation
// workflow can be expressed in AW-RA). Shared sources translate to
// shared sub-expressions, so the result is a DAG mirroring the
// workflow's computation graph.
func Translate(c *Compiled, name string) (*Expr, error) {
	i, err := c.Index(name)
	if err != nil {
		return nil, err
	}
	memo := make([]*Expr, len(c.Measures))
	return translate(c, i, memo)
}

func translate(c *Compiled, i int, memo []*Expr) (*Expr, error) {
	if memo[i] != nil {
		return memo[i], nil
	}
	m := c.Measures[i]
	srcExpr := func(j int) (*Expr, error) {
		e, err := translate(c, m.Sources[j], memo)
		if err != nil {
			return nil, err
		}
		if m.Filter != nil {
			return Select(e, *m.Filter)
		}
		return e, nil
	}
	var (
		e   *Expr
		err error
	)
	switch m.Kind {
	case KindBasic:
		in := Fact(c.Schema)
		if m.Filter != nil {
			in, err = Select(in, *m.Filter)
			if err != nil {
				return nil, err
			}
		}
		e, err = Aggregate(in, m.Gran, m.Agg, m.FactMeasure)
	case KindRollup:
		var in *Expr
		in, err = srcExpr(0)
		if err != nil {
			return nil, err
		}
		e, err = Aggregate(in, m.Gran, m.Agg, 0)
	case KindFromParent, KindSibling:
		var t, base *Expr
		t, err = srcExpr(0)
		if err != nil {
			return nil, err
		}
		base, err = translate(c, m.Base, memo)
		if err != nil {
			return nil, err
		}
		cond := MatchCond{Kind: MatchParentChild}
		if m.Kind == KindSibling {
			cond = MatchCond{Kind: MatchSibling, Windows: m.Windows}
		}
		e, err = MatchJoin(base, t, cond, m.Agg)
	case KindCombine:
		s, serr := translate(c, m.Sources[0], memo)
		if serr != nil {
			return nil, serr
		}
		ts := make([]*Expr, 0, len(m.Sources)-1)
		for _, j := range m.Sources[1:] {
			t, terr := translate(c, j, memo)
			if terr != nil {
				return nil, terr
			}
			ts = append(ts, t)
		}
		if len(ts) == 0 {
			// Single-operand combine: join the source with itself and
			// adapt fc to see only the S.M argument.
			fc := *m.Combine
			adapted := CombineFunc{
				Name: fc.Name,
				Fn:   func(v []float64) float64 { return fc.Fn(v[:1]) },
			}
			e, err = CombineJoin(s, []*Expr{s}, adapted)
		} else {
			e, err = CombineJoin(s, ts, *m.Combine)
		}
	default:
		err = fmt.Errorf("core: cannot translate measure kind %v", m.Kind)
	}
	if err != nil {
		return nil, fmt.Errorf("core: translating measure %q: %w", m.Name, err)
	}
	e.Label = m.Name
	memo[i] = e
	return e, nil
}

// ComputeComposite evaluates one composite measure given the already
// computed tables of every earlier measure in topological order. It is
// the shared in-memory semantics for the single-scan engine's phase 2
// and for the multi-pass combiner; the sort/scan engine implements the
// same semantics in streaming form and is tested against it.
//
// tables is indexed like c.Measures; entries for measures after m may
// be nil.
func ComputeComposite(c *Compiled, m *Measure, tables []*Table) (*Table, error) {
	out := NewTable(c.Schema, m.Gran)
	filtered := func(j int) func(k model.Key, v float64) bool {
		src := c.Measures[j]
		if m.Filter == nil {
			return func(model.Key, float64) bool { return true }
		}
		ms := make([]float64, 1)
		return func(k model.Key, v float64) bool {
			ms[0] = v
			return m.Filter.Eval(src.Codec.FullDecode(k), ms)
		}
	}
	switch m.Kind {
	case KindRollup:
		src := tables[m.Sources[0]]
		if src == nil {
			return nil, fmt.Errorf("core: source table for %q not computed", m.Name)
		}
		keep := filtered(m.Sources[0])
		groups := make(map[model.Key]agg.Aggregator)
		for _, k := range src.SortedKeys() {
			v := src.Rows[k]
			if !keep(k, v) {
				continue
			}
			up := src.Codec.UpTo(k, out.Codec)
			a, ok := groups[up]
			if !ok {
				a = m.Agg.New()
				groups[up] = a
			}
			a.Update(v)
		}
		for k, a := range groups {
			out.Rows[k] = a.Final()
		}
	case KindFromParent:
		src := tables[m.Sources[0]]
		base := tables[m.Base]
		if src == nil || base == nil {
			return nil, fmt.Errorf("core: inputs for %q not computed", m.Name)
		}
		keep := filtered(m.Sources[0])
		for k := range base.Rows {
			a := m.Agg.New()
			pk := out.Codec.UpTo(k, src.Codec)
			if v, ok := src.Rows[pk]; ok && keep(pk, v) {
				a.Update(v)
			}
			out.Rows[k] = a.Final()
		}
	case KindSibling:
		src := tables[m.Sources[0]]
		base := tables[m.Base]
		if src == nil || base == nil {
			return nil, fmt.Errorf("core: inputs for %q not computed", m.Name)
		}
		keep := filtered(m.Sources[0])
		for k := range base.Rows {
			a := m.Agg.New()
			forEachNeighbor(out.Codec, k, m.Windows, func(nk model.Key) {
				if v, ok := src.Rows[nk]; ok && keep(nk, v) {
					a.Update(v)
				}
			})
			out.Rows[k] = a.Final()
		}
	case KindCombine:
		s := tables[m.Sources[0]]
		if s == nil {
			return nil, fmt.Errorf("core: source table for %q not computed", m.Name)
		}
		vals := make([]float64, len(m.Sources))
		for k, sv := range s.Rows {
			vals[0] = sv
			for i, j := range m.Sources[1:] {
				t := tables[j]
				if t == nil {
					return nil, fmt.Errorf("core: source table for %q not computed", m.Name)
				}
				if v, ok := t.Rows[k]; ok {
					vals[i+1] = v
				} else {
					vals[i+1] = agg.Null()
				}
			}
			out.Rows[k] = m.Combine.Eval(vals)
		}
	default:
		return nil, fmt.Errorf("core: measure %q of kind %v is not composite", m.Name, m.Kind)
	}
	return out, nil
}
