package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"awra/internal/agg"
	"awra/internal/model"
)

// Table is a materialized measure table <G, M>: the result of
// evaluating a non-fact AW-RA expression. It doubles as the per-measure
// result type of every engine, which is what makes cross-engine
// equivalence checks direct map comparisons.
type Table struct {
	Gran  model.Gran
	Codec *model.KeyCodec
	Rows  map[model.Key]float64
}

// NewTable allocates an empty table for a region set.
func NewTable(s *model.Schema, g model.Gran) *Table {
	return &Table{Gran: g.Clone(), Codec: model.NewKeyCodec(s, g), Rows: make(map[model.Key]float64)}
}

// SortedKeys returns the table's region keys in encoded order.
func (t *Table) SortedKeys() []model.Key {
	keys := make([]model.Key, 0, len(t.Rows))
	for k := range t.Rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// WriteCSV writes the table as CSV: one column per non-ALL dimension
// (formatted codes) followed by the measure value. Rows appear in key
// order. NULL measures render as empty fields.
func (t *Table) WriteCSV(w io.Writer, measureName string) error {
	cw := csv.NewWriter(w)
	sch := t.Codec.Schema()
	var header []string
	for d := 0; d < sch.NumDims(); d++ {
		if t.Gran[d] != sch.Dim(d).ALL() {
			header = append(header, sch.Dim(d).Name())
		}
	}
	if measureName == "" {
		measureName = "M"
	}
	header = append(header, measureName)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, k := range t.SortedKeys() {
		codes := t.Codec.Decode(k)
		i := 0
		for d := 0; d < sch.NumDims(); d++ {
			if t.Gran[d] != sch.Dim(d).ALL() {
				row[i] = sch.Dim(d).FormatCode(t.Gran[d], codes[i])
				i++
			}
		}
		v := t.Rows[k]
		if agg.IsNull(v) {
			row[i] = ""
		} else {
			row[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Equal reports whether two tables have identical keys and values
// (NULLs compare equal to NULLs; values must match within eps).
func (t *Table) Equal(o *Table, eps float64) bool {
	if len(t.Rows) != len(o.Rows) {
		return false
	}
	for k, v := range t.Rows {
		ov, ok := o.Rows[k]
		if !ok {
			return false
		}
		if agg.IsNull(v) != agg.IsNull(ov) {
			return false
		}
		if !agg.IsNull(v) {
			d := v - ov
			if d < -eps || d > eps {
				return false
			}
		}
	}
	return true
}

// Eval evaluates an AW-RA expression DAG over an in-memory fact table
// using the direct SQL semantics of Tables 2-4 (nested loops and hash
// lookups, no streaming). It is deliberately simple: the engines are
// validated against it, so it must be obviously correct rather than
// fast. Shared sub-expressions are evaluated once.
func Eval(e *Expr, recs []model.Record) (*Table, error) {
	ev := &evaluator{recs: recs, memo: make(map[*Expr]*Table), factMemo: make(map[*Expr][]model.Record)}
	if e.IsFactLike() {
		return nil, fmt.Errorf("core: Eval of D or sigma(D) does not denote a measure table")
	}
	return ev.eval(e)
}

type evaluator struct {
	recs     []model.Record
	memo     map[*Expr]*Table
	factMemo map[*Expr][]model.Record
}

// evalFact resolves a fact-like expression (D or nested sigma(D)) to
// the surviving records.
func (ev *evaluator) evalFact(e *Expr) ([]model.Record, error) {
	if rs, ok := ev.factMemo[e]; ok {
		return rs, nil
	}
	var out []model.Record
	switch e.Kind {
	case FactExpr:
		out = ev.recs
	case SelectExpr:
		in, err := ev.evalFact(e.children[0])
		if err != nil {
			return nil, err
		}
		for i := range in {
			if e.Pred.Eval(in[i].Dims, in[i].Ms) {
				out = append(out, in[i])
			}
		}
	default:
		return nil, fmt.Errorf("core: expression %v is not fact-like", e.Kind)
	}
	ev.factMemo[e] = out
	return out, nil
}

func (ev *evaluator) eval(e *Expr) (*Table, error) {
	if t, ok := ev.memo[e]; ok {
		return t, nil
	}
	var (
		t   *Table
		err error
	)
	switch e.Kind {
	case AggExpr:
		t, err = ev.evalAgg(e)
	case SelectExpr:
		t, err = ev.evalSelect(e)
	case MatchJoinExpr:
		t, err = ev.evalMatchJoin(e)
	case CombineJoinExpr:
		t, err = ev.evalCombineJoin(e)
	default:
		err = fmt.Errorf("core: cannot evaluate %v as a measure table", e.Kind)
	}
	if err != nil {
		return nil, err
	}
	ev.memo[e] = t
	return t, nil
}

func (ev *evaluator) evalAgg(e *Expr) (*Table, error) {
	in := e.children[0]
	out := NewTable(e.schema, e.gran)
	groups := make(map[model.Key]agg.Aggregator)
	update := func(k model.Key, v float64) {
		a, ok := groups[k]
		if !ok {
			a = e.Agg.New()
			groups[k] = a
		}
		a.Update(v)
	}
	if in.IsFactLike() {
		recs, err := ev.evalFact(in)
		if err != nil {
			return nil, err
		}
		for i := range recs {
			k := out.Codec.FromBase(recs[i].Dims)
			if e.FactMeasure >= 0 {
				update(k, recs[i].Ms[e.FactMeasure])
			} else {
				update(k, 0)
			}
		}
	} else {
		src, err := ev.eval(in)
		if err != nil {
			return nil, err
		}
		for _, k := range src.SortedKeys() { // deterministic input order
			update(src.Codec.UpTo(k, out.Codec), src.Rows[k])
		}
	}
	for k, a := range groups {
		out.Rows[k] = a.Final()
	}
	return out, nil
}

func (ev *evaluator) evalSelect(e *Expr) (*Table, error) {
	src, err := ev.eval(e.children[0])
	if err != nil {
		return nil, err
	}
	out := NewTable(e.schema, e.gran)
	ms := make([]float64, 1)
	for k, v := range src.Rows {
		ms[0] = v
		if e.Pred.Eval(src.Codec.FullDecode(k), ms) {
			out.Rows[k] = v
		}
	}
	return out, nil
}

func (ev *evaluator) evalMatchJoin(e *Expr) (*Table, error) {
	s, err := ev.eval(e.children[0])
	if err != nil {
		return nil, err
	}
	t, err := ev.eval(e.children[1])
	if err != nil {
		return nil, err
	}
	out := NewTable(e.schema, e.gran)
	switch e.Cond.Kind {
	case MatchSelf:
		for k := range s.Rows {
			a := e.Agg.New()
			if v, ok := t.Rows[k]; ok {
				a.Update(v)
			}
			out.Rows[k] = a.Final()
		}
	case MatchParentChild:
		for k := range s.Rows {
			a := e.Agg.New()
			if v, ok := t.Rows[s.Codec.UpTo(k, t.Codec)]; ok {
				a.Update(v)
			}
			out.Rows[k] = a.Final()
		}
	case MatchChildParent:
		aggs := make(map[model.Key]agg.Aggregator, len(s.Rows))
		for k := range s.Rows {
			aggs[k] = e.Agg.New()
		}
		for _, tk := range t.SortedKeys() {
			up := t.Codec.UpTo(tk, s.Codec)
			if a, ok := aggs[up]; ok {
				a.Update(t.Rows[tk])
			}
		}
		for k, a := range aggs {
			out.Rows[k] = a.Final()
		}
	case MatchSibling:
		for k := range s.Rows {
			a := e.Agg.New()
			forEachNeighbor(s.Codec, k, e.Cond.Windows, func(nk model.Key) {
				if v, ok := t.Rows[nk]; ok {
					a.Update(v)
				}
			})
			out.Rows[k] = a.Final()
		}
	default:
		return nil, fmt.Errorf("core: unknown match kind %v", e.Cond.Kind)
	}
	return out, nil
}

// forEachNeighbor enumerates the keys in the window product around k in
// ascending offset order (last window varies fastest).
func forEachNeighbor(c *model.KeyCodec, k model.Key, windows []Window, visit func(model.Key)) {
	var rec func(cur model.Key, i int)
	rec = func(cur model.Key, i int) {
		if i == len(windows) {
			visit(cur)
			return
		}
		w := windows[i]
		base := c.CodeAt(k, w.Dim)
		for off := w.Lo; off <= w.Hi; off++ {
			rec(c.WithCodeAt(cur, w.Dim, base+off), i+1)
		}
	}
	rec(k, 0)
}

func (ev *evaluator) evalCombineJoin(e *Expr) (*Table, error) {
	s, err := ev.eval(e.children[0])
	if err != nil {
		return nil, err
	}
	ts := make([]*Table, len(e.children)-1)
	for i, c := range e.children[1:] {
		ts[i], err = ev.eval(c)
		if err != nil {
			return nil, err
		}
	}
	out := NewTable(e.schema, e.gran)
	vals := make([]float64, len(e.children))
	for k, sv := range s.Rows {
		vals[0] = sv
		for i, t := range ts {
			if v, ok := t.Rows[k]; ok {
				vals[i+1] = v
			} else {
				vals[i+1] = agg.Null()
			}
		}
		out.Rows[k] = e.Combine.Eval(vals)
	}
	return out, nil
}
