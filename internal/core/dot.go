package core

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the compiled workflow as a Graphviz graph in the style of
// the paper's Figure 3: one cluster (rectangle) per region set, one
// oval per measure with its aggregation formula, and computational arcs
// for value dependencies. Base arcs (the S_base cell providers) are
// dashed.
func (c *Compiled) DOT() string {
	var b strings.Builder
	b.WriteString("digraph workflow {\n")
	b.WriteString("  rankdir=BT;\n  node [shape=ellipse, fontsize=10];\n")

	// Group measures by granularity string.
	groups := map[string][]int{}
	for i, m := range c.Measures {
		gs := c.Schema.GranString(m.Gran)
		groups[gs] = append(groups[gs], i)
	}
	var granStrings []string
	for gs := range groups {
		granStrings = append(granStrings, gs)
	}
	sort.Strings(granStrings)

	for gi, gs := range granStrings {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n", gi)
		fmt.Fprintf(&b, "    label=%q; style=rounded;\n", gs)
		for _, i := range groups[gs] {
			m := c.Measures[i]
			label := fmt.Sprintf("%s\\n%s", m.Name, measureFormula(m))
			attrs := ""
			if m.Hidden {
				attrs = ", style=dotted"
			}
			fmt.Fprintf(&b, "    m%d [label=%q%s];\n", i, label, attrs)
		}
		b.WriteString("  }\n")
	}

	for i, m := range c.Measures {
		for _, s := range m.Sources {
			fmt.Fprintf(&b, "  m%d -> m%d;\n", s, i)
		}
		if m.Base >= 0 && (len(m.Sources) == 0 || m.Base != m.Sources[0]) {
			fmt.Fprintf(&b, "  m%d -> m%d [style=dashed, label=\"base\"];\n", m.Base, i)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Describe renders the compiled workflow as a human-readable summary:
// one line per measure with its kind, region set, formula, and
// dependencies. The awquery tool prints it when asked about a workflow
// without data.
func (c *Compiled) Describe() string {
	var b strings.Builder
	for _, m := range c.Measures {
		tag := ""
		if m.Hidden {
			tag = " (hidden)"
		}
		fmt.Fprintf(&b, "%-18s %-10s %-28s %s%s\n",
			m.Name, m.Kind, c.Schema.GranString(m.Gran), measureFormula(m), tag)
		if len(m.Sources) > 0 {
			fmt.Fprintf(&b, "%18s   <- %s\n", "", strings.Join(m.SourceNames(c), ", "))
		}
	}
	return b.String()
}

func measureFormula(m *Measure) string {
	var parts []string
	switch m.Kind {
	case KindBasic:
		if m.FactMeasure >= 0 {
			parts = append(parts, fmt.Sprintf("%v(M%d of D)", m.Agg, m.FactMeasure))
		} else {
			parts = append(parts, fmt.Sprintf("%v(D)", m.Agg))
		}
	case KindRollup:
		parts = append(parts, fmt.Sprintf("%v(src)", m.Agg))
	case KindFromParent:
		parts = append(parts, fmt.Sprintf("%v(parent)", m.Agg))
	case KindSibling:
		ws := make([]string, len(m.Windows))
		for i, w := range m.Windows {
			ws[i] = fmt.Sprintf("X%d[%+d,%+d]", w.Dim, w.Lo, w.Hi)
		}
		parts = append(parts, fmt.Sprintf("%v over %s", m.Agg, strings.Join(ws, ",")))
	case KindCombine:
		parts = append(parts, m.Combine.String())
	}
	if m.Filter != nil {
		parts = append(parts, "where "+m.Filter.String())
	}
	return strings.Join(parts, " ")
}
