package core

import (
	"testing"

	"awra/internal/agg"
	"awra/internal/model"
)

func TestNodeSignatureStableAcrossCompiles(t *testing.T) {
	a := exampleWorkflow(t)
	b := exampleWorkflow(t)
	if len(a.Measures) != len(b.Measures) {
		t.Fatal("workflows differ in size")
	}
	for i := range a.Measures {
		if a.NodeSignature(i) != b.NodeSignature(i) {
			t.Errorf("measure %q: signature differs across identical compiles", a.Measures[i].Name)
		}
		if a.NodeSignature(i) == "" {
			t.Errorf("measure %q: empty signature", a.Measures[i].Name)
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("fingerprint differs across identical compiles")
	}
}

func TestNodeSignatureNameIndependent(t *testing.T) {
	s := twoDim(t)
	mk := func(name string) *Compiled {
		c, err := NewWorkflow(s).Basic(name, model.Gran{1, 0}, agg.Count, -1).Compile()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk("x"), mk("y")
	if a.NodeSignature(0) != b.NodeSignature(0) {
		t.Error("renaming a measure changed its node signature")
	}
	// The workflow fingerprint, by contrast, includes output names.
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("renaming an output should change the workflow fingerprint")
	}
}

func TestNodeSignatureContentSensitive(t *testing.T) {
	s := twoDim(t)
	mk := func(k agg.Kind, gran model.Gran) *Compiled {
		c, err := NewWorkflow(s).Basic("m", gran, k, -1).Compile()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	base := mk(agg.Count, model.Gran{1, 0})
	if base.NodeSignature(0) == mk(agg.ConstZero, model.Gran{1, 0}).NodeSignature(0) {
		t.Error("aggregate change not reflected in signature")
	}
	if base.NodeSignature(0) == mk(agg.Count, model.Gran{0, 0}).NodeSignature(0) {
		t.Error("granularity change not reflected in signature")
	}
	// A filter changes the signature (by display name).
	f, err := NewWorkflow(s).Basic("m", model.Gran{1, 0}, agg.Count, -1, Where(MWhere(0, Gt, 1))).Compile()
	if err != nil {
		t.Fatal(err)
	}
	if base.NodeSignature(0) == f.NodeSignature(0) {
		t.Error("filter not reflected in signature")
	}
}

func TestNodeSignatureRecursesThroughSources(t *testing.T) {
	s := twoDim(t)
	mk := func(srcAgg agg.Kind) *Compiled {
		c, err := NewWorkflow(s).
			Basic("src", model.Gran{1, 0}, srcAgg, -1).
			Rollup("roll", model.Gran{1, model.LevelALL}, "src", agg.Sum).
			Compile()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(agg.Count), mk(agg.ConstZero)
	ia, _ := a.Index("roll")
	ib, _ := b.Index("roll")
	if a.NodeSignature(ia) == b.NodeSignature(ib) {
		t.Error("source change not reflected in dependent's signature")
	}
}
