package core

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// NodeSignature returns a short, stable content hash identifying
// measure i's computation: its kind, granularity, aggregate, filter,
// windows, combine function, and — recursively — the signatures of its
// sources and base. Two workflows computing the same measure the same
// way produce the same signature regardless of measure names or
// declaration order, so measured statistics collected from one run can
// be matched to the equivalent node of a later (even re-compiled)
// workflow.
//
// Predicates and combine functions contribute their display Name only:
// anonymous predicates all render as "cond" and can collide. Name
// predicates (the helper constructors do) when signatures must
// distinguish them.
func (c *Compiled) NodeSignature(i int) string {
	c.sigMu.Lock()
	defer c.sigMu.Unlock()
	return c.nodeSignatureLocked(i)
}

func (c *Compiled) nodeSignatureLocked(i int) string {
	if c.sigs == nil {
		c.sigs = make([]string, len(c.Measures))
	}
	if s := c.sigs[i]; s != "" {
		return s
	}
	m := c.Measures[i]
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s|fm=%d", m.Kind, c.Schema.GranString(m.Gran), m.Agg, m.FactMeasure)
	if m.Filter != nil {
		fmt.Fprintf(&b, "|where=%s", m.Filter)
	}
	for _, w := range m.Windows {
		fmt.Fprintf(&b, "|win=%d:%d:%d", w.Dim, w.Lo, w.Hi)
	}
	if m.Combine != nil {
		fmt.Fprintf(&b, "|fc=%s", m.Combine)
	}
	for _, s := range m.Sources {
		fmt.Fprintf(&b, "|src=%s", c.nodeSignatureLocked(s))
	}
	if m.Base >= 0 && m.Base != i {
		fmt.Fprintf(&b, "|base=%s", c.nodeSignatureLocked(m.Base))
	}
	sig := shortHash(b.String())
	c.sigs[i] = sig
	return sig
}

// Fingerprint returns a short content hash identifying the whole
// workflow: every output measure's name and node signature. It is the
// query-identity key in history records — identical workflows (same
// outputs, same computations) fingerprint identically across processes.
func (c *Compiled) Fingerprint() string {
	c.sigMu.Lock()
	defer c.sigMu.Unlock()
	if c.fp != "" {
		return c.fp
	}
	var b strings.Builder
	for i, m := range c.Measures {
		if m.Hidden {
			continue
		}
		fmt.Fprintf(&b, "%s=%s;", m.Name, c.nodeSignatureLocked(i))
	}
	c.fp = shortHash(b.String())
	return c.fp
}

// shortHash is a 64-bit FNV-1a content hash in hex. Collision
// resistance is proportionate to use: signatures key advisory
// statistics, never correctness decisions.
func shortHash(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}
