package core

import (
	"math/rand"
	"testing"

	"awra/internal/agg"
	"awra/internal/model"
)

// randomRecords generates random fact data over the twoDim schema.
func randomRecords(rng *rand.Rand, n int) []model.Record {
	recs := make([]model.Record, n)
	for i := range recs {
		recs[i] = model.Record{
			Dims: []int64{rng.Int63n(1000), rng.Int63n(1000)},
			Ms:   []float64{float64(rng.Intn(20))},
		}
	}
	return recs
}

// TestProperty1Collapse: g_{G1,agg}(g_{G2,agg}(T)) = g_{G1,agg}(T) for
// distributive agg (Theorem 1, Property 1). COUNT composes via SUM.
func TestProperty1Collapse(t *testing.T) {
	s := twoDim(t)
	rng := rand.New(rand.NewSource(11))
	g2 := model.Gran{1, 1}
	g1 := model.Gran{2, model.LevelALL}
	cases := []struct{ inner, outer agg.Kind }{
		{agg.Sum, agg.Sum},
		{agg.Min, agg.Min},
		{agg.Max, agg.Max},
		{agg.Count, agg.Sum}, // count composes via sum
	}
	for trial := 0; trial < 10; trial++ {
		recs := randomRecords(rng, 200)
		for _, c := range cases {
			fm := 0
			if c.inner == agg.Count {
				fm = -1
			}
			inner := mustAgg(t, Fact(s), g2, c.inner, fm)
			twoStep := mustAgg(t, inner, g1, c.outer, 0)
			oneStep := mustAgg(t, Fact(s), g1, c.inner, fm)
			t1, err := Eval(twoStep, recs)
			if err != nil {
				t.Fatal(err)
			}
			t2, err := Eval(oneStep, recs)
			if err != nil {
				t.Fatal(err)
			}
			if !t1.Equal(t2, 1e-9) {
				t.Fatalf("Property 1 violated for %v/%v", c.inner, c.outer)
			}
		}
	}
}

// TestProperty2SelectionPushdown: sigma_{cond1}(g_{G,agg}(T)) =
// g_{G,agg}(sigma_{cond2}(T)) when cond1 depends only on dimension
// values and cond2 = cond1 composed with gamma (Theorem 1, Property 2).
func TestProperty2SelectionPushdown(t *testing.T) {
	s := twoDim(t)
	rng := rand.New(rand.NewSource(13))
	g := model.Gran{1, model.LevelALL}
	// cond1: code of A at level L1 <= 40.
	cond1 := DimWhere(0, Le, 40)
	// cond2 over base rows: gamma_{L1}(A) <= 40.
	dimA := s.Dim(0)
	cond2 := Predicate{
		Name: "gamma(A) <= 40",
		Fn: func(codes []int64, _ []float64) bool {
			return dimA.Up(0, 1, codes[0]) <= 40
		},
	}
	for trial := 0; trial < 10; trial++ {
		recs := randomRecords(rng, 300)
		lhsE, err := Select(mustAgg(t, Fact(s), g, agg.Sum, 0), cond1)
		if err != nil {
			t.Fatal(err)
		}
		rhsIn, err := Select(Fact(s), cond2)
		if err != nil {
			t.Fatal(err)
		}
		rhsE := mustAgg(t, rhsIn, g, agg.Sum, 0)
		lhs, err := Eval(lhsE, recs)
		if err != nil {
			t.Fatal(err)
		}
		rhs, err := Eval(rhsE, recs)
		if err != nil {
			t.Fatal(err)
		}
		if !lhs.Equal(rhs, 1e-9) {
			t.Fatal("Property 2 violated")
		}
	}
}

// TestProperty3NonAssociativity: match joins do not associate
// (Theorem 1, Property 3) — witnessed by a concrete counterexample
// with COUNT, where grouping granularity changes the result.
func TestProperty3NonAssociativity(t *testing.T) {
	s := twoDim(t)
	recs := []model.Record{
		{Dims: []int64{0, 0}, Ms: []float64{1}},
		{Dims: []int64{1, 0}, Ms: []float64{1}},
		{Dims: []int64{10, 0}, Ms: []float64{1}},
	}
	sTop := mustAgg(t, Fact(s), model.Gran{2, model.LevelALL}, agg.ConstZero, -1)
	tMid := mustAgg(t, Fact(s), model.Gran{1, model.LevelALL}, agg.ConstZero, -1)
	uFine := mustAgg(t, Fact(s), model.Gran{0, model.LevelALL}, agg.Count, -1)

	// (S |x| T) |x| U: counts base cells per top cell directly.
	st, err := MatchJoin(sTop, tMid, MatchCond{Kind: MatchChildParent}, agg.Count)
	if err != nil {
		t.Fatal(err)
	}
	lhsE, err := MatchJoin(st, uFine, MatchCond{Kind: MatchChildParent}, agg.Count)
	if err != nil {
		t.Fatal(err)
	}
	// S |x| (T |x| U): counts mid cells per top cell.
	tu, err := MatchJoin(tMid, uFine, MatchCond{Kind: MatchChildParent}, agg.Count)
	if err != nil {
		t.Fatal(err)
	}
	rhsE, err := MatchJoin(sTop, tu, MatchCond{Kind: MatchChildParent}, agg.Count)
	if err != nil {
		t.Fatal(err)
	}
	lhs, err := Eval(lhsE, recs)
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := Eval(rhsE, recs)
	if err != nil {
		t.Fatal(err)
	}
	// lhs counts 3 base cells; rhs counts 2 mid cells.
	if lhs.Equal(rhs, 0) {
		t.Fatal("expected non-associative results to differ")
	}
}

// TestProperty4ArgumentPermutation: swapping combine-join operands and
// adapting fc leaves the result unchanged (Theorem 1, Property 4).
func TestProperty4ArgumentPermutation(t *testing.T) {
	s := twoDim(t)
	rng := rand.New(rand.NewSource(17))
	g := model.Gran{1, 1}
	for trial := 0; trial < 10; trial++ {
		recs := randomRecords(rng, 200)
		a := mustAgg(t, Fact(s), g, agg.Count, -1)
		b := mustAgg(t, Fact(s), g, agg.Sum, 0)
		c := mustAgg(t, Fact(s), g, agg.Max, 0)
		fc := CombineFunc{Name: "v1 - 2*v2", Fn: func(v []float64) float64 {
			if agg.IsNull(v[1]) || agg.IsNull(v[2]) {
				return agg.Null()
			}
			return v[1] - 2*v[2]
		}}
		fcSwapped := CombineFunc{Name: "swapped", Fn: func(v []float64) float64 {
			if agg.IsNull(v[1]) || agg.IsNull(v[2]) {
				return agg.Null()
			}
			return v[2] - 2*v[1]
		}}
		lhsE, err := CombineJoin(a, []*Expr{b, c}, fc)
		if err != nil {
			t.Fatal(err)
		}
		rhsE, err := CombineJoin(a, []*Expr{c, b}, fcSwapped)
		if err != nil {
			t.Fatal(err)
		}
		lhs, err := Eval(lhsE, recs)
		if err != nil {
			t.Fatal(err)
		}
		rhs, err := Eval(rhsE, recs)
		if err != nil {
			t.Fatal(err)
		}
		if !lhs.Equal(rhs, 1e-9) {
			t.Fatal("Property 4 violated")
		}
	}
}

// TestProperty5Decomposition: a combine join decomposes into nested
// combine joins when fc factors (Theorem 1, Property 5), using
// summation as the factorable fc.
func TestProperty5Decomposition(t *testing.T) {
	s := twoDim(t)
	rng := rand.New(rand.NewSource(19))
	g := model.Gran{1, 1}
	for trial := 0; trial < 10; trial++ {
		recs := randomRecords(rng, 200)
		a := mustAgg(t, Fact(s), g, agg.Count, -1)
		t1 := mustAgg(t, Fact(s), g, agg.Sum, 0)
		t2 := mustAgg(t, Fact(s), g, agg.Max, 0)
		t3 := mustAgg(t, Fact(s), g, agg.Min, 0)

		whole, err := CombineJoin(a, []*Expr{t1, t2, t3}, SumOf())
		if err != nil {
			t.Fatal(err)
		}
		inner, err := CombineJoin(a, []*Expr{t1}, SumOf()) // fc1 = v0+v1
		if err != nil {
			t.Fatal(err)
		}
		outer, err := CombineJoin(inner, []*Expr{t2, t3}, SumOf()) // fc2 = partial+v2+v3
		if err != nil {
			t.Fatal(err)
		}
		lhs, err := Eval(whole, recs)
		if err != nil {
			t.Fatal(err)
		}
		rhs, err := Eval(outer, recs)
		if err != nil {
			t.Fatal(err)
		}
		if !lhs.Equal(rhs, 1e-9) {
			t.Fatal("Property 5 violated")
		}
	}
}
