package core

import (
	"fmt"
	"strings"

	"awra/internal/model"
)

// MergeCompiled combines several compiled workflows over the same
// schema into one, deduplicating structurally identical measures so a
// shared subgraph is computed once. This is the paper's Section 5
// scan-sharing idea pushed one level up: where a single workflow shares
// one pass over the fact table across its measures, a merged workflow
// shares that pass across *queries* — the serve layer batches
// concurrently admitted queries, runs the merged workflow once, and
// fans the finalized tables back out to each waiter.
//
// The result is the merged workflow plus one name map per input part,
// translating each part's measure names to the corresponding merged
// measure names. Callers project a part's answer out of the merged
// results through its map; a part's output tables are bit-identical to
// what running it alone would produce, because merging only ever
// deduplicates structurally identical nodes and never alters any
// node's computation.
//
// Deduplication is deliberately conservative. Two nodes are collapsed
// only when their full structural descriptions match — kind,
// granularity, aggregate, fact measure, filter, windows, combine
// function, and recursively their sources and base — AND every
// predicate or combine function in the subtree is either absent or
// carries a non-empty display name that is not one of the anonymous
// renders ("cond", "fc"). Anonymous closures all render alike, so two
// different filters could otherwise collide and silently merge distinct
// computations; such nodes are instead appended as separate (renamed)
// measures — still correct, just unshared. Unlike NodeSignature, the
// dedup key is the full structural string, never its hash, so hash
// collisions cannot cause a wrong merge.
//
// All parts must share the schema (same pointer or equal
// model.SchemaSignature); otherwise MergeCompiled fails.
func MergeCompiled(parts []*Compiled) (*Compiled, []map[string]string, error) {
	if len(parts) == 0 {
		return nil, nil, fmt.Errorf("core: MergeCompiled needs at least one workflow")
	}
	for i, p := range parts {
		if p == nil {
			return nil, nil, fmt.Errorf("core: MergeCompiled: part %d is nil", i)
		}
	}
	sig0 := model.SchemaSignature(parts[0].Schema)
	for i, p := range parts[1:] {
		if p.Schema != parts[0].Schema && model.SchemaSignature(p.Schema) != sig0 {
			return nil, nil, fmt.Errorf("core: MergeCompiled: part %d has a different schema", i+1)
		}
	}

	merged := &Compiled{
		Schema: parts[0].Schema,
		byName: make(map[string]int),
	}
	// shared maps a dedupable node's full structural key to its index
	// in merged.Measures.
	shared := make(map[string]int)
	nameMaps := make([]map[string]string, len(parts))

	for pi, p := range parts {
		keys, dedupable := structuralKeys(p)
		idxMap := make([]int, len(p.Measures)) // part index -> merged index
		nm := make(map[string]string, len(p.Measures))
		// Measures are topologically ordered, so every source/base is
		// already mapped when its dependent is visited.
		for i, m := range p.Measures {
			if dedupable[i] {
				if j, ok := shared[keys[i]]; ok {
					idxMap[i] = j
					ex := merged.Measures[j]
					if !m.Hidden && ex.Hidden {
						// A node one part treats as an internal base is
						// another part's declared output: surface it.
						ex.Hidden = false
						merged.outputs = append(merged.outputs, ex.Name)
					}
					nm[m.Name] = ex.Name
					continue
				}
			}
			m2 := *m // shallow clone; Gran/Codec/Filter/Windows/Combine are read-only at exec time
			if len(m.Sources) > 0 {
				m2.Sources = make([]int, len(m.Sources))
				for k, s := range m.Sources {
					m2.Sources[k] = idxMap[s]
				}
			}
			if m.Base >= 0 {
				m2.Base = idxMap[m.Base]
			}
			m2.Name = uniqueName(merged.byName, m.Name)
			j := len(merged.Measures)
			merged.Measures = append(merged.Measures, &m2)
			merged.byName[m2.Name] = j
			if !m2.Hidden {
				merged.outputs = append(merged.outputs, m2.Name)
			}
			if dedupable[i] {
				shared[keys[i]] = j
			}
			idxMap[i] = j
			nm[m.Name] = m2.Name
		}
		nameMaps[pi] = nm
	}
	return merged, nameMaps, nil
}

// structuralKeys computes, for every measure of a compiled workflow,
// its full (unhashed) structural description and whether the node's
// entire dependency subtree is safe to deduplicate: every filter and
// combine function absent or faithfully named. The key format mirrors
// NodeSignature's preimage but embeds child keys verbatim instead of
// their hashes.
func structuralKeys(c *Compiled) (keys []string, dedupable []bool) {
	keys = make([]string, len(c.Measures))
	dedupable = make([]bool, len(c.Measures))
	for i, m := range c.Measures {
		var b strings.Builder
		fmt.Fprintf(&b, "%s|%s|%s|fm=%d", m.Kind, c.Schema.GranString(m.Gran), m.Agg, m.FactMeasure)
		ok := true
		if m.Filter != nil {
			fmt.Fprintf(&b, "|where=%s", m.Filter)
			if m.Filter.Name == "" || m.Filter.Name == "cond" {
				ok = false
			}
		}
		for _, w := range m.Windows {
			fmt.Fprintf(&b, "|win=%d:%d:%d", w.Dim, w.Lo, w.Hi)
		}
		if m.Combine != nil {
			fmt.Fprintf(&b, "|fc=%s", m.Combine)
			if m.Combine.Name == "" || m.Combine.Name == "fc" {
				ok = false
			}
		}
		for _, s := range m.Sources {
			fmt.Fprintf(&b, "|src={%s}", keys[s])
			ok = ok && dedupable[s]
		}
		if m.Base >= 0 && m.Base != i {
			fmt.Fprintf(&b, "|base={%s}", keys[m.Base])
			ok = ok && dedupable[m.Base]
		}
		keys[i] = b.String()
		dedupable[i] = ok
	}
	return keys, dedupable
}

// uniqueName returns name if unused in taken, else the first
// "name~2", "name~3", ... that is. The suffix is deterministic so
// merged fingerprints are stable for a given part order.
func uniqueName(taken map[string]int, name string) string {
	if _, dup := taken[name]; !dup {
		return name
	}
	for n := 2; ; n++ {
		cand := fmt.Sprintf("%s~%d", name, n)
		if _, dup := taken[cand]; !dup {
			return cand
		}
	}
}
