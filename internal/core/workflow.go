package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"awra/internal/agg"
	"awra/internal/model"
)

// MeasureKind classifies how a workflow measure is computed. Each kind
// corresponds to one oval-with-arcs shape in the paper's pictorial
// language (Section 4) and translates to an AW-RA expression
// (Theorem 2, see Translate).
type MeasureKind int

const (
	// KindBasic aggregates the fact table directly: g_{G,agg}(D) or
	// g_{G,agg}(sigma(D)). No computational arc enters its oval.
	KindBasic MeasureKind = iota
	// KindRollup aggregates a source measure to a coarser (or equal)
	// granularity: the child/parent match join, which the paper notes
	// "is essentially equal to an aggregation operator". An optional
	// filter implements the sigma on the computational arc.
	KindRollup
	// KindFromParent gives each region the measure of its unique
	// ancestor in a coarser source measure (the parent/child match
	// join). Output cells are provided by the base measure.
	KindFromParent
	// KindSibling aggregates the source measure over a moving window
	// of neighboring regions at the same granularity (the sibling
	// match join). Output cells are provided by the base measure.
	KindSibling
	// KindCombine merges the measures of same-granularity sources
	// with a combine function (the combine join). Cells come from the
	// first source.
	KindCombine
)

func (k MeasureKind) String() string {
	switch k {
	case KindBasic:
		return "basic"
	case KindRollup:
		return "rollup"
	case KindFromParent:
		return "fromparent"
	case KindSibling:
		return "sibling"
	case KindCombine:
		return "combine"
	}
	return fmt.Sprintf("MeasureKind(%d)", int(k))
}

// Measure is one compiled measure: an oval in the aggregation-workflow
// diagram, attached to the region set identified by Gran.
type Measure struct {
	Name string
	Kind MeasureKind
	Gran model.Gran
	// Codec encodes this measure's region keys.
	Codec *model.KeyCodec

	// Agg applies to basic, rollup, fromparent and sibling measures.
	Agg agg.Kind
	// FactMeasure is the fact measure attribute a basic measure
	// aggregates; -1 aggregates rows (COUNT(*)-style).
	FactMeasure int
	// Filter, if non-nil, is the sigma applied to input rows before
	// aggregation: fact records for basic measures, source-measure
	// rows otherwise.
	Filter *Predicate
	// Windows are the sibling windows (KindSibling only).
	Windows []Window
	// Combine is the combine-join function (KindCombine only).
	Combine *CombineFunc

	// Sources are the measures whose values feed this one (one for
	// rollup/fromparent/sibling, n>=1 for combine), as indices into
	// Compiled.Measures. Nil for basic measures.
	Sources []int
	// Base is the measure enumerating this measure's output cells
	// (fromparent/sibling: the S_base of the paper; combine: the
	// first source). -1 when cells derive from the source rows
	// themselves (basic, rollup).
	Base int
	// Hidden marks auto-generated S_base measures: computed and
	// propagated, but not reported as query outputs.
	Hidden bool
}

// SourceNames returns the names of the source measures, resolved
// against the compiled workflow.
func (m *Measure) SourceNames(c *Compiled) []string {
	out := make([]string, len(m.Sources))
	for i, s := range m.Sources {
		out[i] = c.Measures[s].Name
	}
	return out
}

// Compiled is a validated, topologically ordered workflow: dependencies
// always precede dependents in Measures. This is the computation graph
// of Section 5.3.1 — one node per measure, one arc per source — that
// all engines execute.
type Compiled struct {
	Schema   *model.Schema
	Measures []*Measure
	byName   map[string]int
	outputs  []string
	// sigMu guards the lazily computed node signatures and workflow
	// fingerprint (see signature.go).
	sigMu sync.Mutex
	sigs  []string
	fp    string
}

// MeasureByName resolves a measure name.
func (c *Compiled) MeasureByName(name string) (*Measure, error) {
	i, ok := c.byName[name]
	if !ok {
		return nil, fmt.Errorf("core: workflow has no measure %q", name)
	}
	return c.Measures[i], nil
}

// Index returns the position of a measure in Measures.
func (c *Compiled) Index(name string) (int, error) {
	i, ok := c.byName[name]
	if !ok {
		return 0, fmt.Errorf("core: workflow has no measure %q", name)
	}
	return i, nil
}

// Outputs lists the user-declared (non-hidden) measure names in
// declaration order.
func (c *Compiled) Outputs() []string { return c.outputs }

// Dependents returns, for each measure index, the indices of measures
// that consume its values (including as base).
func (c *Compiled) Dependents() [][]int {
	out := make([][]int, len(c.Measures))
	for i, m := range c.Measures {
		for _, s := range m.Sources {
			out[s] = append(out[s], i)
		}
		if m.Base >= 0 && m.Base != i {
			out[m.Base] = append(out[m.Base], i)
		}
	}
	return out
}

// measureDef is the pre-validation builder form.
type measureDef struct {
	name        string
	kind        MeasureKind
	gran        model.Gran
	aggKind     agg.Kind
	factMeasure int
	filter      *Predicate
	windows     []Window
	combine     *CombineFunc
	sources     []string
	base        string // explicit base measure name, "" = auto
}

// Workflow builds an aggregation workflow incrementally. Errors are
// accumulated and reported by Compile, so construction chains read
// cleanly.
type Workflow struct {
	schema *model.Schema
	defs   []*measureDef
	byName map[string]*measureDef
	errs   []string
}

// NewWorkflow starts an empty workflow over a schema.
func NewWorkflow(s *model.Schema) *Workflow {
	return &Workflow{schema: s, byName: make(map[string]*measureDef)}
}

// Schema returns the workflow's schema.
func (w *Workflow) Schema() *model.Schema { return w.schema }

// MeasureOpt customizes a measure definition.
type MeasureOpt func(*measureDef)

// Where attaches a selection to the measure's input rows: fact records
// for basic measures, source-measure rows otherwise. It is the sigma on
// the computational arc in the workflow diagram.
func Where(p Predicate) MeasureOpt {
	return func(d *measureDef) { d.filter = &p }
}

// WithBase names an existing measure (of the same granularity as the
// new measure) as the cell provider — the S_base of the paper's
// equations 4.2/4.3. Applies to FromParent and Sliding measures; by
// default a hidden g_{G,0}(D) base is synthesized.
func WithBase(name string) MeasureOpt {
	return func(d *measureDef) { d.base = name }
}

func (w *Workflow) addf(format string, args ...interface{}) {
	w.errs = append(w.errs, fmt.Sprintf(format, args...))
}

func (w *Workflow) add(d *measureDef, opts []MeasureOpt) {
	for _, o := range opts {
		o(d)
	}
	if d.name == "" {
		w.addf("measure with empty name")
		return
	}
	if strings.HasPrefix(d.name, "__") {
		w.addf("measure %q: names starting with __ are reserved", d.name)
		return
	}
	if _, dup := w.byName[d.name]; dup {
		w.addf("duplicate measure %q", d.name)
		return
	}
	// Sibling and combine measures inherit their granularity from the
	// first source during Compile.
	if d.kind != KindSibling && d.kind != KindCombine {
		g, err := w.schema.Normalize(d.gran)
		if err != nil {
			w.addf("measure %q: %v", d.name, err)
			return
		}
		d.gran = g
	}
	w.defs = append(w.defs, d)
	w.byName[d.name] = d
}

// Basic declares a basic measure g_{gran,aggKind}(D) over the fact
// table (or over sigma(D) with Where). factMeasure picks the fact
// measure attribute to aggregate; -1 aggregates rows (COUNT(*)).
func (w *Workflow) Basic(name string, gran model.Gran, aggKind agg.Kind, factMeasure int, opts ...MeasureOpt) *Workflow {
	w.add(&measureDef{name: name, kind: KindBasic, gran: gran, aggKind: aggKind, factMeasure: factMeasure}, opts)
	return w
}

// Rollup declares a measure aggregating source's values to a coarser
// or equal granularity (the child/parent match join; with equal
// granularity it is the self match).
func (w *Workflow) Rollup(name string, gran model.Gran, source string, aggKind agg.Kind, opts ...MeasureOpt) *Workflow {
	w.add(&measureDef{name: name, kind: KindRollup, gran: gran, aggKind: aggKind, sources: []string{source}}, opts)
	return w
}

// FromParent declares a measure at a finer granularity, giving each
// region the aggregate of its unique ancestor's value in source (the
// parent/child match join).
func (w *Workflow) FromParent(name string, gran model.Gran, source string, aggKind agg.Kind, opts ...MeasureOpt) *Workflow {
	w.add(&measureDef{name: name, kind: KindFromParent, gran: gran, aggKind: aggKind, sources: []string{source}}, opts)
	return w
}

// Sliding declares a sibling-match measure: each region aggregates
// source values over the given windows of neighboring regions at the
// same granularity (Example 4's moving average).
func (w *Workflow) Sliding(name string, source string, aggKind agg.Kind, windows []Window, opts ...MeasureOpt) *Workflow {
	w.add(&measureDef{name: name, kind: KindSibling, aggKind: aggKind, sources: []string{source}, windows: windows}, opts)
	return w
}

// Combine declares a combine-join measure merging the same-granularity
// sources with fc; cells come from the first source (the S operand).
func (w *Workflow) Combine(name string, sources []string, fc CombineFunc, opts ...MeasureOpt) *Workflow {
	w.add(&measureDef{name: name, kind: KindCombine, combine: &fc, sources: sources}, opts)
	return w
}

// Compile validates the workflow, synthesizes hidden S_base measures,
// and returns the topologically ordered computation graph.
func (w *Workflow) Compile() (*Compiled, error) {
	if len(w.errs) > 0 {
		return nil, fmt.Errorf("core: invalid workflow:\n  %s", strings.Join(w.errs, "\n  "))
	}
	if len(w.defs) == 0 {
		return nil, fmt.Errorf("core: workflow declares no measures")
	}
	var errs []string
	addf := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	// Resolve granularities and per-kind structural rules.
	for _, d := range w.defs {
		for _, s := range d.sources {
			if _, ok := w.byName[s]; !ok {
				addf("measure %q: unknown source %q", d.name, s)
			}
		}
		if d.base != "" {
			if _, ok := w.byName[d.base]; !ok {
				addf("measure %q: unknown base %q", d.name, d.base)
			}
			if d.kind != KindFromParent && d.kind != KindSibling {
				addf("measure %q: WithBase applies only to FromParent and Sliding measures", d.name)
			}
		}
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("core: invalid workflow:\n  %s", strings.Join(errs, "\n  "))
	}

	// Granularity inference for kinds that inherit it.
	for _, d := range w.defs {
		switch d.kind {
		case KindSibling:
			d.gran = w.byName[d.sources[0]].gran.Clone()
		case KindCombine:
			d.gran = w.byName[d.sources[0]].gran.Clone()
		}
	}

	for _, d := range w.defs {
		switch d.kind {
		case KindBasic:
			if d.factMeasure >= w.schema.NumMeasures() {
				addf("measure %q: fact measure %d out of range (schema has %d)", d.name, d.factMeasure, w.schema.NumMeasures())
			}
			if d.factMeasure < 0 && !rowAggOK(d.aggKind) {
				addf("measure %q: %v needs a fact measure attribute", d.name, d.aggKind)
			}
		case KindRollup:
			src := w.byName[d.sources[0]]
			if !w.schema.GranLeq(src.gran, d.gran) {
				addf("measure %q: rollup target %s is not a roll-up of source %s",
					d.name, w.schema.GranString(d.gran), w.schema.GranString(src.gran))
			}
		case KindFromParent:
			src := w.byName[d.sources[0]]
			if !w.schema.GranLeq(d.gran, src.gran) || model.GranEq(d.gran, src.gran) {
				addf("measure %q: parent source %s must be strictly coarser than %s",
					d.name, w.schema.GranString(src.gran), w.schema.GranString(d.gran))
			}
		case KindSibling:
			if len(d.windows) == 0 {
				addf("measure %q: sibling measure needs at least one window", d.name)
			}
			seen := map[int]bool{}
			for _, win := range d.windows {
				if win.Dim < 0 || win.Dim >= w.schema.NumDims() {
					addf("measure %q: window on unknown dimension %d", d.name, win.Dim)
					continue
				}
				if d.gran[win.Dim] == w.schema.Dim(win.Dim).ALL() {
					addf("measure %q: window on dimension %q, which is at D_ALL", d.name, w.schema.Dim(win.Dim).Name())
				}
				if win.Lo > win.Hi {
					addf("measure %q: window on %q has Lo %d > Hi %d", d.name, w.schema.Dim(win.Dim).Name(), win.Lo, win.Hi)
				}
				if seen[win.Dim] {
					addf("measure %q: duplicate window on dimension %q", d.name, w.schema.Dim(win.Dim).Name())
				}
				seen[win.Dim] = true
			}
		case KindCombine:
			if d.filter != nil {
				addf("measure %q: Where does not apply to combine joins; filter the sources instead", d.name)
			}
			for _, s := range d.sources {
				src := w.byName[s]
				if !model.GranEq(src.gran, d.gran) {
					addf("measure %q: combine source %q has granularity %s, want %s",
						d.name, s, w.schema.GranString(src.gran), w.schema.GranString(d.gran))
				}
			}
		}
		if d.base != "" {
			base := w.byName[d.base]
			if !model.GranEq(base.gran, d.gran) {
				addf("measure %q: base %q has granularity %s, want %s",
					d.name, d.base, w.schema.GranString(base.gran), w.schema.GranString(d.gran))
			}
		}
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("core: invalid workflow:\n  %s", strings.Join(errs, "\n  "))
	}

	// Synthesize hidden S_base measures for FromParent/Sibling
	// measures without an explicit base: one per granularity.
	defs := append([]*measureDef{}, w.defs...)
	byName := make(map[string]*measureDef, len(defs))
	for _, d := range defs {
		byName[d.name] = d
	}
	// effBase tracks each measure's cell provider without mutating the
	// builder's defs, keeping Compile idempotent.
	effBase := map[*measureDef]string{}
	for _, d := range defs {
		if d.base != "" {
			effBase[d] = d.base
		}
	}
	baseFor := map[string]string{} // gran string -> hidden base name
	for _, d := range w.defs {
		if (d.kind == KindFromParent || d.kind == KindSibling) && d.base == "" {
			gs := w.schema.GranString(d.gran)
			name, ok := baseFor[gs]
			if !ok {
				name = "__base" + gs
				baseFor[gs] = name
				bd := &measureDef{
					name:        name,
					kind:        KindBasic,
					gran:        d.gran.Clone(),
					aggKind:     agg.ConstZero,
					factMeasure: -1,
				}
				defs = append(defs, bd)
				byName[name] = bd
			}
			effBase[d] = name
		}
	}

	// Topological sort (deps = sources + base), with cycle detection.
	depsOf := func(d *measureDef) []string {
		out := append([]string{}, d.sources...)
		if b := effBase[d]; b != "" {
			out = append(out, b)
		}
		return out
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(defs))
	var order []*measureDef
	var visit func(name string, path []string) error
	visit = func(name string, path []string) error {
		switch state[name] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("core: workflow has a cycle: %s -> %s", strings.Join(path, " -> "), name)
		}
		state[name] = visiting
		d := byName[name]
		for _, dep := range depsOf(d) {
			if err := visit(dep, append(path, name)); err != nil {
				return err
			}
		}
		state[name] = done
		order = append(order, d)
		return nil
	}
	// Visit in declaration order for deterministic output; hidden
	// bases sort by name for determinism.
	names := make([]string, 0, len(defs))
	for _, d := range w.defs {
		names = append(names, d.name)
	}
	var hidden []string
	for n := range baseFor {
		hidden = append(hidden, baseFor[n])
	}
	sort.Strings(hidden)
	names = append(names, hidden...)
	for _, n := range names {
		if err := visit(n, nil); err != nil {
			return nil, err
		}
	}

	// Materialize the compiled graph.
	c := &Compiled{Schema: w.schema, byName: make(map[string]int, len(order))}
	for _, d := range order {
		m := &Measure{
			Name:        d.name,
			Kind:        d.kind,
			Gran:        d.gran,
			Codec:       model.NewKeyCodec(w.schema, d.gran),
			Agg:         d.aggKind,
			FactMeasure: d.factMeasure,
			Filter:      d.filter,
			Windows:     d.windows,
			Combine:     d.combine,
			Base:        -1,
			Hidden:      strings.HasPrefix(d.name, "__"),
		}
		c.byName[d.name] = len(c.Measures)
		c.Measures = append(c.Measures, m)
	}
	for _, m := range c.Measures {
		d := byName[m.Name]
		for _, s := range d.sources {
			m.Sources = append(m.Sources, c.byName[s])
		}
		if b := effBase[d]; b != "" {
			m.Base = c.byName[b]
		} else if d.kind == KindCombine {
			m.Base = m.Sources[0]
		}
	}
	for _, d := range w.defs {
		c.outputs = append(c.outputs, d.name)
	}
	return c, nil
}
