package core

import (
	"fmt"
	"strings"

	"awra/internal/agg"
	"awra/internal/model"
)

// ExprKind identifies an AW-RA operator (Table 5).
type ExprKind int

// The five operators of AW-RA.
const (
	// FactExpr is the raw fact table D.
	FactExpr ExprKind = iota
	// SelectExpr is sigma_cond(T).
	SelectExpr
	// AggExpr is g_{G,agg}(T), the roll-up aggregation of Table 2.
	AggExpr
	// MatchJoinExpr is S |x|_{cond,agg} T of Table 3.
	MatchJoinExpr
	// CombineJoinExpr is S |x|-bar_{fc} (T_1..T_n) of Table 4.
	CombineJoinExpr
)

func (k ExprKind) String() string {
	switch k {
	case FactExpr:
		return "D"
	case SelectExpr:
		return "select"
	case AggExpr:
		return "agg"
	case MatchJoinExpr:
		return "matchjoin"
	case CombineJoinExpr:
		return "combinejoin"
	}
	return fmt.Sprintf("ExprKind(%d)", int(k))
}

// MatchKind classifies the commonly used match-join conditions of
// Section 3.2.
type MatchKind int

const (
	// MatchSelf: S.X = T.X (same granularity); equivalent to a
	// combine join with a single operand.
	MatchSelf MatchKind = iota
	// MatchParentChild: gamma(S.X) = T.X — T is at a coarser
	// granularity, and each S region matches its unique ancestor in T
	// (the paper's cond_pc).
	MatchParentChild
	// MatchChildParent: gamma(T.X) = S.X — T is at a finer
	// granularity, and each S region matches all of its descendants in
	// T (cond_cp; essentially an aggregation).
	MatchChildParent
	// MatchSibling: T.X in NEIGHBOR(S.X) — same granularity, with
	// per-dimension moving windows (cond_sb).
	MatchSibling
)

func (k MatchKind) String() string {
	switch k {
	case MatchSelf:
		return "self"
	case MatchParentChild:
		return "parent/child"
	case MatchChildParent:
		return "child/parent"
	case MatchSibling:
		return "sibling"
	}
	return fmt.Sprintf("MatchKind(%d)", int(k))
}

// Window is a sibling-match moving window on one dimension:
// T.X_dim in [S.X_dim + Lo, S.X_dim + Hi], in code units at the region
// set's granularity for that dimension. Example 4's six-hour trailing
// window over hours is Window{Dim: t, Lo: 0, Hi: 5} on the *source*
// side of the paper's formula (c'.t in [c.t, c.t+5]).
type Window struct {
	Dim int
	Lo  int64
	Hi  int64
}

// MatchCond is the join condition of a match join.
type MatchCond struct {
	Kind MatchKind
	// Windows apply only to MatchSibling; dimensions not listed must
	// match exactly.
	Windows []Window
}

// Expr is a node of an AW-RA expression DAG. Expressions are built
// with the constructor functions (Fact, Select, Aggregate, MatchJoin,
// CombineJoin), which validate the prerequisites of Table 5; the zero
// value is not useful.
//
// Every expression denotes a table. The fact table has granularity G_0
// and the schema's measure attributes; every other expression denotes
// a measure table <G, M> with a single measure column M.
type Expr struct {
	Kind   ExprKind
	Label  string // optional measure name, for display
	schema *model.Schema
	gran   model.Gran

	// SelectExpr
	Pred Predicate

	// AggExpr and MatchJoinExpr
	Agg agg.Kind
	// FactMeasure selects which fact measure attribute feeds the
	// aggregation when the input is the fact table (or a selection of
	// it); -1 aggregates rows themselves (COUNT(*)-style). Ignored for
	// derived inputs, which have a single M column.
	FactMeasure int

	// MatchJoinExpr
	Cond MatchCond

	// CombineJoinExpr
	Combine CombineFunc

	children []*Expr
}

// Schema returns the expression's schema.
func (e *Expr) Schema() *model.Schema { return e.schema }

// Gran returns the granularity of the expression's output regions.
func (e *Expr) Gran() model.Gran { return e.gran }

// Children returns the operand expressions (shared, do not mutate).
func (e *Expr) Children() []*Expr { return e.children }

// IsFactLike reports whether the expression is D or sigma(D) — the
// operand shapes that Table 5 forbids as match/combine join inputs.
func (e *Expr) IsFactLike() bool {
	switch e.Kind {
	case FactExpr:
		return true
	case SelectExpr:
		return e.children[0].IsFactLike()
	}
	return false
}

// Fact returns the atomic fact-table expression D.
func Fact(s *model.Schema) *Expr {
	return &Expr{Kind: FactExpr, Label: "D", schema: s, gran: s.BaseGran()}
}

// Select builds sigma_pred(in).
func Select(in *Expr, pred Predicate) (*Expr, error) {
	if in == nil {
		return nil, fmt.Errorf("core: select over nil expression")
	}
	if pred.Fn == nil {
		return nil, fmt.Errorf("core: select with nil predicate")
	}
	return &Expr{
		Kind:     SelectExpr,
		schema:   in.schema,
		gran:     in.gran.Clone(),
		Pred:     pred,
		children: []*Expr{in},
	}, nil
}

// Aggregate builds g_{gran,aggKind}(in). The prerequisite of Table 5 is
// in.Gran <=_G gran: the target granularity must be a roll-up of the
// input's. factMeasure selects the aggregated fact attribute (see
// Expr.FactMeasure); pass -1 for COUNT(*)-style row aggregation.
func Aggregate(in *Expr, gran model.Gran, aggKind agg.Kind, factMeasure int) (*Expr, error) {
	if in == nil {
		return nil, fmt.Errorf("core: aggregate over nil expression")
	}
	g, err := in.schema.Normalize(gran)
	if err != nil {
		return nil, fmt.Errorf("core: aggregate: %w", err)
	}
	if !in.schema.GranLeq(in.gran, g) {
		return nil, fmt.Errorf("core: aggregate target %s is not a roll-up of input %s",
			in.schema.GranString(g), in.schema.GranString(in.gran))
	}
	if in.IsFactLike() {
		if factMeasure >= in.schema.NumMeasures() {
			return nil, fmt.Errorf("core: aggregate references fact measure %d, schema has %d", factMeasure, in.schema.NumMeasures())
		}
		if factMeasure < 0 && !rowAggOK(aggKind) {
			return nil, fmt.Errorf("core: %v needs a measure attribute; only counting kinds may aggregate rows", aggKind)
		}
	}
	return &Expr{
		Kind:        AggExpr,
		schema:      in.schema,
		gran:        g,
		Agg:         aggKind,
		FactMeasure: factMeasure,
		children:    []*Expr{in},
	}, nil
}

// rowAggOK reports whether an aggregation kind is meaningful without a
// value attribute (COUNT(*) and the constant-zero base-table helper).
func rowAggOK(k agg.Kind) bool {
	return k == agg.Count || k == agg.ConstZero
}

// MatchJoin builds S |x|_{cond,agg} T: the output has S's granularity,
// and each S region's value aggregates the M values of its matching T
// regions. Table 5 requires S (and, for the condition kinds used here,
// T) not to be the raw fact table or a selection of it.
func MatchJoin(s, t *Expr, cond MatchCond, aggKind agg.Kind) (*Expr, error) {
	if s == nil || t == nil {
		return nil, fmt.Errorf("core: match join over nil expression")
	}
	if s.schema != t.schema {
		return nil, fmt.Errorf("core: match join operands built over different schemas")
	}
	if s.IsFactLike() || t.IsFactLike() {
		return nil, fmt.Errorf("core: match join operands must not be D or sigma(D) (Table 5)")
	}
	sc := s.schema
	switch cond.Kind {
	case MatchSelf:
		if !model.GranEq(s.gran, t.gran) {
			return nil, fmt.Errorf("core: self match needs equal granularities, got %s vs %s",
				sc.GranString(s.gran), sc.GranString(t.gran))
		}
		if len(cond.Windows) != 0 {
			return nil, fmt.Errorf("core: self match does not take windows")
		}
	case MatchParentChild:
		if !sc.GranLeq(s.gran, t.gran) || model.GranEq(s.gran, t.gran) {
			return nil, fmt.Errorf("core: parent/child match needs T strictly coarser than S, got S=%s T=%s",
				sc.GranString(s.gran), sc.GranString(t.gran))
		}
		if len(cond.Windows) != 0 {
			return nil, fmt.Errorf("core: parent/child match does not take windows")
		}
	case MatchChildParent:
		if !sc.GranLeq(t.gran, s.gran) || model.GranEq(s.gran, t.gran) {
			return nil, fmt.Errorf("core: child/parent match needs T strictly finer than S, got S=%s T=%s",
				sc.GranString(s.gran), sc.GranString(t.gran))
		}
		if len(cond.Windows) != 0 {
			return nil, fmt.Errorf("core: child/parent match does not take windows")
		}
	case MatchSibling:
		if !model.GranEq(s.gran, t.gran) {
			return nil, fmt.Errorf("core: sibling match needs equal granularities, got %s vs %s",
				sc.GranString(s.gran), sc.GranString(t.gran))
		}
		if len(cond.Windows) == 0 {
			return nil, fmt.Errorf("core: sibling match needs at least one window")
		}
		seen := map[int]bool{}
		for _, w := range cond.Windows {
			if w.Dim < 0 || w.Dim >= sc.NumDims() {
				return nil, fmt.Errorf("core: sibling window on unknown dimension %d", w.Dim)
			}
			if s.gran[w.Dim] == sc.Dim(w.Dim).ALL() {
				return nil, fmt.Errorf("core: sibling window on dimension %q, which is at D_ALL in the region set",
					sc.Dim(w.Dim).Name())
			}
			if w.Lo > w.Hi {
				return nil, fmt.Errorf("core: sibling window on %q has Lo %d > Hi %d", sc.Dim(w.Dim).Name(), w.Lo, w.Hi)
			}
			if seen[w.Dim] {
				return nil, fmt.Errorf("core: duplicate sibling window on dimension %q", sc.Dim(w.Dim).Name())
			}
			seen[w.Dim] = true
		}
	default:
		return nil, fmt.Errorf("core: unknown match kind %v", cond.Kind)
	}
	return &Expr{
		Kind:        MatchJoinExpr,
		schema:      sc,
		gran:        s.gran.Clone(),
		Agg:         aggKind,
		FactMeasure: 0,
		Cond:        cond,
		children:    []*Expr{s, t},
	}, nil
}

// CombineJoin builds S |x|-bar_{fc}(T_1..T_n). All operands must share
// one granularity and none may be D or sigma(D) (Table 5): the equi-join
// on dimension attributes is only key-unique for aggregated tables.
func CombineJoin(s *Expr, ts []*Expr, fc CombineFunc) (*Expr, error) {
	if s == nil {
		return nil, fmt.Errorf("core: combine join over nil expression")
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("core: combine join needs at least one T operand")
	}
	if fc.Fn == nil {
		return nil, fmt.Errorf("core: combine join with nil combine function")
	}
	if s.IsFactLike() {
		return nil, fmt.Errorf("core: combine join operands must not be D or sigma(D) (Table 5)")
	}
	for i, t := range ts {
		if t == nil {
			return nil, fmt.Errorf("core: combine join operand %d is nil", i+1)
		}
		if t.schema != s.schema {
			return nil, fmt.Errorf("core: combine join operands built over different schemas")
		}
		if t.IsFactLike() {
			return nil, fmt.Errorf("core: combine join operands must not be D or sigma(D) (Table 5)")
		}
		if !model.GranEq(s.gran, t.gran) {
			return nil, fmt.Errorf("core: combine join needs equal granularities, got %s vs %s",
				s.schema.GranString(s.gran), s.schema.GranString(t.gran))
		}
	}
	children := append([]*Expr{s}, ts...)
	return &Expr{
		Kind:     CombineJoinExpr,
		schema:   s.schema,
		gran:     s.gran.Clone(),
		Combine:  fc,
		children: children,
	}, nil
}

// String renders the expression in the paper's notation, e.g.
// "g_(t:Hour, U:IP),count(D)".
func (e *Expr) String() string {
	var b strings.Builder
	e.render(&b)
	return b.String()
}

func (e *Expr) render(b *strings.Builder) {
	switch e.Kind {
	case FactExpr:
		b.WriteString("D")
	case SelectExpr:
		fmt.Fprintf(b, "sigma_[%s](", e.Pred)
		e.children[0].render(b)
		b.WriteString(")")
	case AggExpr:
		fmt.Fprintf(b, "g_%s,%v(", e.schema.GranString(e.gran), e.Agg)
		e.children[0].render(b)
		b.WriteString(")")
	case MatchJoinExpr:
		b.WriteString("(")
		e.children[0].render(b)
		fmt.Fprintf(b, " |x|_{%v", e.Cond.Kind)
		for _, w := range e.Cond.Windows {
			fmt.Fprintf(b, ", %s in [%+d,%+d]", e.schema.Dim(w.Dim).Name(), w.Lo, w.Hi)
		}
		fmt.Fprintf(b, "},%v ", e.Agg)
		e.children[1].render(b)
		b.WriteString(")")
	case CombineJoinExpr:
		b.WriteString("(")
		e.children[0].render(b)
		fmt.Fprintf(b, " |x|bar_{%s} (", e.Combine)
		for i, c := range e.children[1:] {
			if i > 0 {
				b.WriteString(", ")
			}
			c.render(b)
		}
		b.WriteString("))")
	}
}
