package core

import (
	"strings"
	"testing"

	"awra/internal/agg"
	"awra/internal/model"
)

// paperRecords is the hand-computed dataset for the Section 3.1
// example tests. Dimension A plays the role of time (grouping at level
// L1), B the role of source IP (level L0).
func paperRecords() []model.Record {
	return []model.Record{
		{Dims: []int64{5, 7}, Ms: []float64{1}},
		{Dims: []int64{6, 7}, Ms: []float64{2}},
		{Dims: []int64{15, 7}, Ms: []float64{3}},
		{Dims: []int64{15, 8}, Ms: []float64{4}},
		{Dims: []int64{16, 8}, Ms: []float64{5}},
		{Dims: []int64{25, 7}, Ms: []float64{6}},
	}
}

func rows(t *testing.T, tbl *Table) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for k, v := range tbl.Rows {
		out[tbl.Codec.Format(k)] = v
	}
	return out
}

func checkRows(t *testing.T, tbl *Table, want map[string]float64) {
	t.Helper()
	got := rows(t, tbl)
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d rows %v", len(got), got, len(want), want)
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("missing row %q in %v", k, got)
		}
		if agg.IsNull(wv) != agg.IsNull(gv) || (!agg.IsNull(wv) && gv != wv) {
			t.Fatalf("row %q = %v, want %v", k, gv, wv)
		}
	}
}

// TestExample1TrafficCounting: Count = g_{(A:L1, B:L0),count(*)}(D),
// the paper's equation 3.2.1 shape.
func TestExample1TrafficCounting(t *testing.T) {
	s := twoDim(t)
	count := mustAgg(t, Fact(s), model.Gran{1, 0}, agg.Count, -1)
	tbl, err := Eval(count, paperRecords())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, tbl, map[string]float64{
		"A:0, B:7": 2,
		"A:1, B:7": 1,
		"A:1, B:8": 2,
		"A:2, B:7": 1,
	})
}

// TestExample2BusySourceCount: S_S = g_{(A:L1),count(*)}(sigma_{M>1} Count)
// (equation 3.2.2 with threshold 1).
func TestExample2BusySourceCount(t *testing.T) {
	s := twoDim(t)
	count := mustAgg(t, Fact(s), model.Gran{1, 0}, agg.Count, -1)
	busy, err := Select(count, MWhere(0, Gt, 1))
	if err != nil {
		t.Fatal(err)
	}
	sCount := mustAgg(t, busy, model.Gran{1, model.LevelALL}, agg.Count, -1)
	tbl, err := Eval(sCount, paperRecords())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, tbl, map[string]float64{"A:0": 1, "A:1": 1})
}

// TestExample3BusySourceTraffic: S_T = g_{(A:L1),sum(M)}(sigma_{M>1} Count)
// (equation 3.2.3).
func TestExample3BusySourceTraffic(t *testing.T) {
	s := twoDim(t)
	count := mustAgg(t, Fact(s), model.Gran{1, 0}, agg.Count, -1)
	busy, err := Select(count, MWhere(0, Gt, 1))
	if err != nil {
		t.Fatal(err)
	}
	sTraffic := mustAgg(t, busy, model.Gran{1, model.LevelALL}, agg.Sum, 0)
	tbl, err := Eval(sTraffic, paperRecords())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, tbl, map[string]float64{"A:0": 2, "A:1": 2})
}

// TestExample4MovingAverage: S_avg = S_base |x|_{sibling [0,+1]} S_S
// (equation 3.2.4 / 4.3 shape): for each cell, the average of sCount
// over the next-two-cell window.
func TestExample4MovingAverage(t *testing.T) {
	s := twoDim(t)
	count := mustAgg(t, Fact(s), model.Gran{1, 0}, agg.Count, -1)
	busy, err := Select(count, MWhere(0, Gt, 1))
	if err != nil {
		t.Fatal(err)
	}
	sCount := mustAgg(t, busy, model.Gran{1, model.LevelALL}, agg.Count, -1)
	base := mustAgg(t, Fact(s), model.Gran{1, model.LevelALL}, agg.ConstZero, -1)
	avg, err := MatchJoin(base, sCount,
		MatchCond{Kind: MatchSibling, Windows: []Window{{Dim: 0, Lo: 0, Hi: 1}}}, agg.Avg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Eval(avg, paperRecords())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, tbl, map[string]float64{
		"A:0": 1,          // avg(sCount[0]=1, sCount[1]=1)
		"A:1": 1,          // avg(sCount[1]=1, sCount[2] missing)
		"A:2": agg.Null(), // no busy sources in window
	})
}

// TestExample5Ratio: combine join of measures on the same region set
// (equation 3.2.5 shape): ratio = sCount / sTraffic.
func TestExample5Ratio(t *testing.T) {
	s := twoDim(t)
	count := mustAgg(t, Fact(s), model.Gran{1, 0}, agg.Count, -1)
	busy, err := Select(count, MWhere(0, Gt, 1))
	if err != nil {
		t.Fatal(err)
	}
	sCount := mustAgg(t, busy, model.Gran{1, model.LevelALL}, agg.Count, -1)
	sTraffic := mustAgg(t, busy, model.Gran{1, model.LevelALL}, agg.Sum, 0)
	base := mustAgg(t, Fact(s), model.Gran{1, model.LevelALL}, agg.ConstZero, -1)
	ratio, err := CombineJoin(base, []*Expr{sCount, sTraffic}, CombineFunc{
		Name: "v1/v2",
		Fn: func(v []float64) float64 {
			if agg.IsNull(v[1]) || agg.IsNull(v[2]) || v[2] == 0 {
				return agg.Null()
			}
			return v[1] / v[2]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Eval(ratio, paperRecords())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, tbl, map[string]float64{
		"A:0": 0.5,
		"A:1": 0.5,
		"A:2": agg.Null(), // busy measures missing for this cell
	})
}

// TestParentChildJoin: the S_ratio example of Section 5.3.1 — each
// fine region divides its count by its parent's count.
func TestParentChildJoin(t *testing.T) {
	s := twoDim(t)
	s1 := mustAgg(t, Fact(s), model.Gran{1, model.LevelALL}, agg.Count, -1) // parent counts
	s2 := mustAgg(t, Fact(s), model.Gran{0, model.LevelALL}, agg.Count, -1) // child counts
	fromParent, err := MatchJoin(s2, s1, MatchCond{Kind: MatchParentChild}, agg.Sum)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := CombineJoin(s2, []*Expr{fromParent}, Ratio(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Eval(ratio, paperRecords())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, tbl, map[string]float64{
		"A:5":  0.5, // 1 of 2 records in A-group 0
		"A:6":  0.5,
		"A:15": 2.0 / 3.0,
		"A:16": 1.0 / 3.0,
		"A:25": 1,
	})
}

// TestChildParentJoinEqualsAggregation: the paper notes a cp match
// join "is essentially equal to an aggregation operator".
func TestChildParentJoinEqualsAggregation(t *testing.T) {
	s := twoDim(t)
	fine := mustAgg(t, Fact(s), model.Gran{0, 0}, agg.Sum, 0)
	coarseCells := mustAgg(t, Fact(s), model.Gran{1, model.LevelALL}, agg.ConstZero, -1)
	viaJoin, err := MatchJoin(coarseCells, fine, MatchCond{Kind: MatchChildParent}, agg.Sum)
	if err != nil {
		t.Fatal(err)
	}
	viaAgg := mustAgg(t, fine, model.Gran{1, model.LevelALL}, agg.Sum, 0)
	recs := paperRecords()
	t1, err := Eval(viaJoin, recs)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Eval(viaAgg, recs)
	if err != nil {
		t.Fatal(err)
	}
	if !t1.Equal(t2, 0) {
		t.Fatalf("cp join %v != aggregation %v", rows(t, t1), rows(t, t2))
	}
}

// TestSelfMatchJoin: self match over equal granularities passes values
// through the aggregation.
func TestSelfMatchJoin(t *testing.T) {
	s := twoDim(t)
	a := mustAgg(t, Fact(s), model.Gran{1, model.LevelALL}, agg.Count, -1)
	b := mustAgg(t, Fact(s), model.Gran{1, model.LevelALL}, agg.Sum, 0)
	mj, err := MatchJoin(a, b, MatchCond{Kind: MatchSelf}, agg.Sum)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Eval(mj, paperRecords())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, tbl, map[string]float64{
		"A:0": 3,  // m values 1+2
		"A:1": 12, // 3+4+5
		"A:2": 6,
	})
}

// TestSelectOnDerivedTable: sigma over a measure table filters rows by
// code and value.
func TestSelectOnDerivedTable(t *testing.T) {
	s := twoDim(t)
	a := mustAgg(t, Fact(s), model.Gran{1, 0}, agg.Count, -1)
	sel, err := Select(a, And(MWhere(0, Ge, 2), DimWhere(1, Eq, 7)))
	if err != nil {
		t.Fatal(err)
	}
	// Select of a derived table is itself not evaluable standalone as a
	// "measure" per the algebra, but Eval supports it for composition.
	tbl, err := Eval(sel, paperRecords())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, tbl, map[string]float64{"A:0, B:7": 2})
}

// TestFigure3dRatio reproduces equation 4.4 / Figure 3(d): per-source
// MAXT and MINT (max/min time) combined into a time-span measure via
// combine join.
func TestFigure3dRatio(t *testing.T) {
	s := twoDim(t)
	// Treat dimension B as "source", A as "time"; measure the span of
	// A per B-group.
	recs := []model.Record{
		{Dims: []int64{3, 7}, Ms: []float64{0}},
		{Dims: []int64{9, 7}, Ms: []float64{0}},
		{Dims: []int64{15, 7}, Ms: []float64{0}},
		{Dims: []int64{4, 8}, Ms: []float64{0}},
	}
	// MAXT = g_{(B:L0),max(t)}D, MINT = g_{(B:L0),min(t)}D — the fact
	// record's A coordinate is not a measure attribute, so model it as
	// a measure column in a widened record set (the paper's dataset
	// stores time as a dimension; for aggregation over it, SQL uses
	// the attribute directly — here we mirror it into m).
	for i := range recs {
		recs[i].Ms[0] = float64(recs[i].Dims[0])
	}
	gB := model.Gran{model.LevelALL, 0}
	maxT := mustAgg(t, Fact(s), gB, agg.Max, 0)
	minT := mustAgg(t, Fact(s), gB, agg.Min, 0)
	base := mustAgg(t, Fact(s), gB, agg.ConstZero, -1)
	span, err := CombineJoin(base, []*Expr{minT, maxT}, CombineFunc{
		Name: "MAXT.M - MINT.M",
		Fn: func(v []float64) float64 {
			if agg.IsNull(v[1]) || agg.IsNull(v[2]) {
				return agg.Null()
			}
			return v[2] - v[1]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Eval(span, recs)
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, tbl, map[string]float64{
		"B:7": 12, // 15 - 3
		"B:8": 0,  // single record
	})
}

func TestEvalRejectsFactLike(t *testing.T) {
	s := twoDim(t)
	if _, err := Eval(Fact(s), paperRecords()); err == nil {
		t.Error("Eval(D) accepted")
	}
	sel, _ := Select(Fact(s), MWhere(0, Gt, 0))
	if _, err := Eval(sel, paperRecords()); err == nil {
		t.Error("Eval(sigma(D)) accepted")
	}
}

func TestTableWriteCSV(t *testing.T) {
	s := twoDim(t)
	g, _ := s.Normalize(model.Gran{1, model.LevelALL})
	tbl := NewTable(s, g)
	tbl.Rows[tbl.Codec.FromCodes([]int64{2})] = 3.5
	tbl.Rows[tbl.Codec.FromCodes([]int64{1})] = agg.Null()
	var buf strings.Builder
	if err := tbl.WriteCSV(&buf, "score"); err != nil {
		t.Fatal(err)
	}
	want := "A,score\n1,\n2,3.5\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
	// Default measure name.
	buf.Reset()
	if err := tbl.WriteCSV(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "A,M\n") {
		t.Errorf("default header = %q", buf.String())
	}
}

func TestTableEqual(t *testing.T) {
	s := twoDim(t)
	g, _ := s.Normalize(model.Gran{1, model.LevelALL})
	a := NewTable(s, g)
	b := NewTable(s, g)
	k := a.Codec.FromCodes([]int64{1})
	a.Rows[k] = 1
	if a.Equal(b, 0) {
		t.Error("tables with different sizes equal")
	}
	b.Rows[k] = 1.5
	if a.Equal(b, 0.1) {
		t.Error("out-of-eps values equal")
	}
	if !a.Equal(b, 1) {
		t.Error("in-eps values unequal")
	}
	b.Rows[k] = agg.Null()
	if a.Equal(b, 10) {
		t.Error("NULL equals non-NULL")
	}
	a.Rows[k] = agg.Null()
	if !a.Equal(b, 0) {
		t.Error("NULL != NULL")
	}
	k2 := a.Codec.FromCodes([]int64{2})
	a.Rows[k2] = 3
	c := NewTable(s, g)
	c.Rows[k2] = 3
	c.Rows[a.Codec.FromCodes([]int64{9})] = 3
	a.Rows[k] = 3
	if a.Equal(c, 0) {
		t.Error("different keys equal")
	}
}
