package core

import (
	"strings"
	"testing"

	"awra/internal/agg"
	"awra/internal/model"
)

// exampleWorkflow builds the paper's Examples 1-5 as one workflow over
// the twoDim schema (A ~ time at L1, B ~ source at L0).
func exampleWorkflow(t *testing.T) *Compiled {
	t.Helper()
	s := twoDim(t)
	w := NewWorkflow(s).
		Basic("Count", model.Gran{1, 0}, agg.Count, -1).
		Rollup("sCount", model.Gran{1, model.LevelALL}, "Count", agg.Count, Where(MWhere(0, Gt, 1))).
		Rollup("sTraffic", model.Gran{1, model.LevelALL}, "Count", agg.Sum, Where(MWhere(0, Gt, 1))).
		Sliding("avgCount", "sCount", agg.Avg, []Window{{Dim: 0, Lo: 0, Hi: 1}}).
		Combine("ratio", []string{"avgCount", "sTraffic", "sCount"}, CombineFunc{
			Name: "v0/(v1/v2)",
			Fn: func(v []float64) float64 {
				if agg.IsNull(v[0]) || agg.IsNull(v[1]) || agg.IsNull(v[2]) || v[1] == 0 {
					return agg.Null()
				}
				return v[0] / (v[1] / v[2])
			},
		})
	c, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestWorkflowCompile(t *testing.T) {
	c := exampleWorkflow(t)
	// One hidden base for the sibling measure's granularity.
	hidden := 0
	for _, m := range c.Measures {
		if m.Hidden {
			hidden++
			if m.Agg != agg.ConstZero || m.Kind != KindBasic {
				t.Errorf("hidden base %q has kind %v agg %v", m.Name, m.Kind, m.Agg)
			}
		}
	}
	if hidden != 1 {
		t.Errorf("hidden measures = %d, want 1", hidden)
	}
	if got := len(c.Outputs()); got != 5 {
		t.Errorf("outputs = %d, want 5", got)
	}
	// Topological order: every source/base index precedes the measure.
	pos := map[string]int{}
	for i, m := range c.Measures {
		pos[m.Name] = i
		for _, sIdx := range m.Sources {
			if sIdx >= i {
				t.Errorf("measure %q depends on later measure %q", m.Name, c.Measures[sIdx].Name)
			}
		}
		if m.Base >= i {
			t.Errorf("measure %q has base after it", m.Name)
		}
	}
	// Combine's base is its first source.
	ratio, err := c.MeasureByName("ratio")
	if err != nil {
		t.Fatal(err)
	}
	if ratio.Base != ratio.Sources[0] {
		t.Error("combine base is not first source")
	}
	if got := ratio.SourceNames(c); got[0] != "avgCount" || got[1] != "sTraffic" || got[2] != "sCount" {
		t.Errorf("SourceNames = %v", got)
	}
	if _, err := c.MeasureByName("nope"); err == nil {
		t.Error("unknown measure resolved")
	}
	if _, err := c.Index("nope"); err == nil {
		t.Error("unknown index resolved")
	}
}

func TestWorkflowSharedHiddenBase(t *testing.T) {
	s := twoDim(t)
	g := model.Gran{1, model.LevelALL}
	c, err := NewWorkflow(s).
		Basic("a", g, agg.Count, -1).
		Sliding("w1", "a", agg.Sum, []Window{{Dim: 0, Lo: -1, Hi: 0}}).
		Sliding("w2", "a", agg.Avg, []Window{{Dim: 0, Lo: 0, Hi: 2}}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	bases := map[int]bool{}
	for _, name := range []string{"w1", "w2"} {
		m, _ := c.MeasureByName(name)
		bases[m.Base] = true
	}
	if len(bases) != 1 {
		t.Errorf("sliding measures at one granularity should share one hidden base, got %d", len(bases))
	}
}

func TestWorkflowExplicitBase(t *testing.T) {
	s := twoDim(t)
	g := model.Gran{1, model.LevelALL}
	c, err := NewWorkflow(s).
		Basic("cells", g, agg.Count, -1).
		Basic("sum", g, agg.Sum, 0).
		Sliding("w", "sum", agg.Sum, []Window{{Dim: 0, Lo: -1, Hi: 1}}, WithBase("cells")).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := c.MeasureByName("w")
	i, _ := c.Index("cells")
	if m.Base != i {
		t.Error("explicit base not used")
	}
	for _, mm := range c.Measures {
		if mm.Hidden {
			t.Error("hidden base synthesized despite explicit base")
		}
	}
}

func TestWorkflowValidationErrors(t *testing.T) {
	s := twoDim(t)
	g := model.Gran{1, model.LevelALL}
	fine := model.Gran{0, 0}

	cases := []struct {
		name string
		w    *Workflow
		want string
	}{
		{"empty name", NewWorkflow(s).Basic("", g, agg.Count, -1), "empty name"},
		{"reserved name", NewWorkflow(s).Basic("__x", g, agg.Count, -1), "reserved"},
		{"duplicate", NewWorkflow(s).Basic("a", g, agg.Count, -1).Basic("a", g, agg.Count, -1), "duplicate"},
		{"bad gran", NewWorkflow(s).Basic("a", model.Gran{9, 9}, agg.Count, -1), "no level"},
		{"no measures", NewWorkflow(s), "no measures"},
		{"unknown source", NewWorkflow(s).Rollup("r", g, "ghost", agg.Sum), "unknown source"},
		{"bad fact measure", NewWorkflow(s).Basic("a", g, agg.Sum, 7), "out of range"},
		{"sum of rows", NewWorkflow(s).Basic("a", g, agg.Sum, -1), "needs a fact measure"},
		{"rollup finer", NewWorkflow(s).Basic("a", g, agg.Count, -1).Rollup("r", fine, "a", agg.Sum), "not a roll-up"},
		{"parent not coarser", NewWorkflow(s).Basic("a", g, agg.Count, -1).FromParent("p", g, "a", agg.Sum), "strictly coarser"},
		{"sibling no window", NewWorkflow(s).Basic("a", g, agg.Count, -1).Sliding("w", "a", agg.Sum, nil), "at least one window"},
		{"window bad dim", NewWorkflow(s).Basic("a", g, agg.Count, -1).Sliding("w", "a", agg.Sum, []Window{{Dim: 7, Lo: 0, Hi: 1}}), "unknown dimension"},
		{"window on ALL", NewWorkflow(s).Basic("a", g, agg.Count, -1).Sliding("w", "a", agg.Sum, []Window{{Dim: 1, Lo: 0, Hi: 1}}), "D_ALL"},
		{"window lo>hi", NewWorkflow(s).Basic("a", g, agg.Count, -1).Sliding("w", "a", agg.Sum, []Window{{Dim: 0, Lo: 3, Hi: 1}}), "Lo 3 > Hi 1"},
		{"window dup", NewWorkflow(s).Basic("a", g, agg.Count, -1).Sliding("w", "a", agg.Sum, []Window{{Dim: 0, Lo: 0, Hi: 1}, {Dim: 0, Lo: 0, Hi: 2}}), "duplicate window"},
		{"combine gran", NewWorkflow(s).Basic("a", g, agg.Count, -1).Basic("b", fine, agg.Count, -1).Combine("c", []string{"a", "b"}, SumOf()), "granularity"},
		{"combine filter", NewWorkflow(s).Basic("a", g, agg.Count, -1).Combine("c", []string{"a"}, SumOf(), Where(MWhere(0, Gt, 0))), "Where does not apply"},
		{"base unknown", NewWorkflow(s).Basic("a", g, agg.Count, -1).Sliding("w", "a", agg.Sum, []Window{{Dim: 0, Lo: 0, Hi: 1}}, WithBase("ghost")), "unknown base"},
		{"base on rollup", NewWorkflow(s).Basic("a", g, agg.Count, -1).Rollup("r", model.Gran{2, model.LevelALL}, "a", agg.Sum, WithBase("a")), "WithBase applies only"},
		{"base gran", NewWorkflow(s).Basic("a", g, agg.Count, -1).Basic("b", fine, agg.Count, -1).Sliding("w", "a", agg.Sum, []Window{{Dim: 0, Lo: 0, Hi: 1}}, WithBase("b")), "granularity"},
	}
	for _, tc := range cases {
		_, err := tc.w.Compile()
		if err == nil {
			t.Errorf("%s: compiled without error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestWorkflowCycleDetection(t *testing.T) {
	s := twoDim(t)
	g := model.Gran{1, model.LevelALL}
	_, err := NewWorkflow(s).
		Rollup("a", g, "b", agg.Sum).
		Rollup("b", g, "a", agg.Sum).
		Compile()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
	// Self-cycle.
	_, err = NewWorkflow(s).Rollup("a", g, "a", agg.Sum).Compile()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("self-cycle not detected: %v", err)
	}
}

func TestDependents(t *testing.T) {
	c := exampleWorkflow(t)
	deps := c.Dependents()
	countIdx, _ := c.Index("Count")
	var names []string
	for _, d := range deps[countIdx] {
		names = append(names, c.Measures[d].Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "sCount") || !strings.Contains(joined, "sTraffic") {
		t.Errorf("Count dependents = %v", names)
	}
}

func TestTranslatePaperEquations(t *testing.T) {
	c := exampleWorkflow(t)
	e, err := Translate(c, "sCount")
	if err != nil {
		t.Fatal(err)
	}
	// Equation 3.2.2 shape: g_(A:L1),count(sigma_[M>1](g_(A:L1,B:L0),count(D)))
	str := e.String()
	for _, frag := range []string{"g_(A:L1),count", "sigma_[M0 > 1]", "g_(A:L1, B:L0),count(D)"} {
		if !strings.Contains(str, frag) {
			t.Errorf("translated sCount %q missing %q", str, frag)
		}
	}
	e, err = Translate(c, "avgCount")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "|x|_{sibling, A in [+0,+1]},avg") {
		t.Errorf("translated avgCount = %q", e.String())
	}
	e, err = Translate(c, "ratio")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "|x|bar") {
		t.Errorf("translated ratio = %q", e.String())
	}
	if _, err := Translate(c, "ghost"); err == nil {
		t.Error("unknown measure translated")
	}
}

// TestTranslateEvalMatchesComputeComposite: evaluating the translated
// algebra must agree with the shared composite-computation path used by
// the engines, measure by measure.
func TestTranslateEvalMatchesComputeComposite(t *testing.T) {
	c := exampleWorkflow(t)
	recs := paperRecords()

	// Engine-style evaluation: basic measures by direct grouping,
	// composites via ComputeComposite, in topological order.
	tables := make([]*Table, len(c.Measures))
	for i, m := range c.Measures {
		if m.Kind == KindBasic {
			tbl := NewTable(c.Schema, m.Gran)
			groups := map[model.Key]agg.Aggregator{}
			for _, r := range recs {
				if m.Filter != nil && !m.Filter.Eval(r.Dims, r.Ms) {
					continue
				}
				k := tbl.Codec.FromBase(r.Dims)
				a, ok := groups[k]
				if !ok {
					a = m.Agg.New()
					groups[k] = a
				}
				if m.FactMeasure >= 0 {
					a.Update(r.Ms[m.FactMeasure])
				} else {
					a.Update(0)
				}
			}
			for k, a := range groups {
				tbl.Rows[k] = a.Final()
			}
			tables[i] = tbl
			continue
		}
		tbl, err := ComputeComposite(c, m, tables)
		if err != nil {
			t.Fatal(err)
		}
		tables[i] = tbl
	}

	for _, name := range c.Outputs() {
		e, err := Translate(c, name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Eval(e, recs)
		if err != nil {
			t.Fatal(err)
		}
		i, _ := c.Index(name)
		if !tables[i].Equal(want, 1e-9) {
			t.Errorf("measure %q: engine-path %v != algebra %v", name, rows(t, tables[i]), rows(t, want))
		}
	}
}

func TestSingleSourceCombineTranslation(t *testing.T) {
	s := twoDim(t)
	g := model.Gran{1, model.LevelALL}
	c, err := NewWorkflow(s).
		Basic("a", g, agg.Sum, 0).
		Combine("doubled", []string{"a"}, CombineFunc{Name: "2*v0", Fn: func(v []float64) float64 {
			if agg.IsNull(v[0]) {
				return agg.Null()
			}
			return 2 * v[0]
		}}).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	e, err := Translate(c, "doubled")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Eval(e, paperRecords())
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, got, map[string]float64{"A:0": 6, "A:1": 24, "A:2": 12})
}

func TestCompileIdempotent(t *testing.T) {
	// Compile must not mutate the builder: compiling twice (e.g. once
	// via Query and once for DOT rendering) must give the same graph.
	s := twoDim(t)
	w := NewWorkflow(s).
		Basic("a", model.Gran{1, model.LevelALL}, agg.Count, -1).
		Sliding("w", "a", agg.Sum, []Window{{Dim: 0, Lo: -1, Hi: 1}})
	c1, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := w.Compile()
	if err != nil {
		t.Fatalf("second Compile failed: %v", err)
	}
	if len(c1.Measures) != len(c2.Measures) {
		t.Fatalf("measure counts differ: %d vs %d", len(c1.Measures), len(c2.Measures))
	}
	for i := range c1.Measures {
		if c1.Measures[i].Name != c2.Measures[i].Name || c1.Measures[i].Base != c2.Measures[i].Base {
			t.Fatalf("measure %d differs across compiles", i)
		}
	}
}

func TestDescribe(t *testing.T) {
	c := exampleWorkflow(t)
	d := c.Describe()
	for _, frag := range []string{"Count", "sCount", "sibling", "combine", "(hidden)", "<- "} {
		if !strings.Contains(d, frag) {
			t.Errorf("Describe missing %q:\n%s", frag, d)
		}
	}
}

func TestDOT(t *testing.T) {
	c := exampleWorkflow(t)
	dot := c.DOT()
	for _, frag := range []string{"digraph workflow", "cluster_", "Count", "ratio", "style=dashed", "->"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q", frag)
		}
	}
}
