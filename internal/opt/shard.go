package opt

import (
	"fmt"

	"awra/internal/core"
	"awra/internal/model"
)

// ShardChoice describes how a sharded sort/scan run splits its work:
// the fact file is partitioned by the shard unit — dimension Dim at
// level Level, the leading part of the sort key — so each shard holds
// a contiguous prefix-group range of the sorted order.
type ShardChoice struct {
	Dim   int
	Level model.Level
	// Merge lists measures (by index into Compiled.Measures) whose
	// region sets span shard units: each shard evaluates them over its
	// subset and the driver merges the per-shard aggregator states
	// before finalization. Measures not listed here nest inside shard
	// units and concatenate with no merge step.
	Merge []int
}

// ShardPrefix decides whether a workflow can run sharded by the leading
// part of the (normalized) sort key, and how. A measure is safe when
// its region set nests inside shard units — its level on the shard
// dimension is at or below the shard level, with no sibling window
// moving along that dimension — because then every region's updates
// land in exactly one shard and per-shard results concatenate. A
// measure whose regions span shards is still evaluable if it is a leaf
// basic aggregate whose Merge commutes (partition-then-merge, Gray et
// al.): its per-shard states union into the global answer. Anything
// else — a spanning measure with dependents, a composite spanning
// measure, or an order-dependent aggregate — makes the workflow
// unshardable, and ShardPrefix returns an error explaining why.
func ShardPrefix(c *core.Compiled, key model.SortKey) (ShardChoice, error) {
	var ch ShardChoice
	if len(key) == 0 {
		return ch, fmt.Errorf("opt: empty sort key; nothing to shard by")
	}
	sch := c.Schema
	sdim, slvl := key[0].Dim, key[0].Lvl
	if slvl == sch.Dim(sdim).ALL() {
		return ch, fmt.Errorf("opt: sort key leads with %s at ALL; cannot shard", sch.Dim(sdim).Name())
	}
	ch.Dim, ch.Level = sdim, slvl

	// Measures referenced by others (as source or base) must nest: a
	// spanning producer would deliver partial per-shard values into its
	// consumers, which no downstream merge can repair.
	hasDeps := make([]bool, len(c.Measures))
	for _, m := range c.Measures {
		for _, s := range m.Sources {
			hasDeps[s] = true
		}
		if m.Base >= 0 {
			hasDeps[m.Base] = true
		}
	}
	dimName := sch.Dim(sdim).Name()
	for i, m := range c.Measures {
		nests := m.Gran[sdim] != sch.Dim(sdim).ALL() && m.Gran[sdim] <= slvl
		for _, w := range m.Windows {
			if w.Dim == sdim {
				// Neighbor regions along the shard dimension can live in
				// other shards.
				nests = false
			}
		}
		if nests {
			continue
		}
		switch {
		case hasDeps[i]:
			return ch, fmt.Errorf("opt: measure %q spans shard units on %q and feeds other measures", m.Name, dimName)
		case m.Kind != core.KindBasic:
			return ch, fmt.Errorf("opt: composite measure %q spans shard units on %q", m.Name, dimName)
		case !m.Agg.MergeCommutes():
			return ch, fmt.Errorf("opt: measure %q uses order-dependent %v; per-shard states cannot merge", m.Name, m.Agg)
		}
		ch.Merge = append(ch.Merge, i)
	}
	return ch, nil
}
