package opt

import (
	"fmt"

	"awra/internal/core"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/plan"
)

// Strategy is an evaluation approach, ordered by increasing machinery.
type Strategy int

const (
	// StrategySingleScan: no sort; everything fits in the budget. The
	// paper's own remedy for Figure 7(a): "this situation can be
	// addressed by switching to simple scan when the required memory
	// is smaller than the memory budget".
	StrategySingleScan Strategy = iota
	// StrategySortScan: one sorted pass with the chosen key.
	StrategySortScan
	// StrategyMultiPass: no single key keeps the footprint within the
	// budget; split basic measures across passes.
	StrategyMultiPass
)

func (s Strategy) String() string {
	switch s {
	case StrategySingleScan:
		return "singlescan"
	case StrategySortScan:
		return "sortscan"
	case StrategyMultiPass:
		return "multipass"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Decision explains a strategy choice.
type Decision struct {
	Strategy Strategy
	// Key is the chosen sort key (sort/scan and multi-pass passes).
	Key model.SortKey
	// SingleScanBytes estimates holding every measure's full hash
	// table at once (what the single-scan engine needs).
	SingleScanBytes float64
	// SortScanBytes estimates the best streaming plan's footprint.
	SortScanBytes float64
}

// cellBytes mirrors the footprint constant used by plan.Build.
const cellBytes = 48

// MeasureCells estimates the full region count of measure i — the
// hash-table size an engine without early flushing holds for it. Uses
// per-dimension cardinalities and the records clamp from stats; a
// measured-statistics hit (stats.Measured) overrides the formula.
func MeasureCells(c *core.Compiled, i int, stats *plan.Stats) float64 {
	cells, _ := MeasureCellsInfo(c, i, stats)
	return cells
}

// MeasureCellsInfo is MeasureCells plus the estimate's provenance
// label (plan.SourceAssumed / SourceCollected / SourceMeasured).
func MeasureCellsInfo(c *core.Compiled, i int, stats *plan.Stats) (float64, string) {
	// The measured total region count is exactly what this function
	// estimates, so a hit replaces the formula instead of capping it.
	if stats != nil && stats.Measured != nil {
		if cells, ok := stats.Measured(c.NodeSignature(i)); ok && cells > 0 {
			return cells, plan.SourceMeasured
		}
	}
	sch := c.Schema
	m := c.Measures[i]
	cells := 1.0
	for d := 0; d < sch.NumDims(); d++ {
		if m.Gran[d] == sch.Dim(d).ALL() {
			continue
		}
		cells *= stats.DimCard(sch, d, m.Gran[d])
	}
	if stats != nil && stats.Records > 0 && cells > stats.Records {
		cells = stats.Records
	}
	return cells, stats.SourceLabel()
}

// SingleScanFootprint estimates the bytes the single-scan engine needs:
// the full region count of every measure, simultaneously (no early
// flushing without a sort).
func SingleScanFootprint(c *core.Compiled, stats *plan.Stats) float64 {
	total := 0.0
	for i, m := range c.Measures {
		total += MeasureCells(c, i, stats) * float64(cellBytes+m.Codec.KeyBytes())
	}
	return total
}

// Choose implements the Section 6 decision procedure under a memory
// budget (bytes): simple scan if everything fits without sorting,
// otherwise the best-key sort/scan if its streaming footprint fits,
// otherwise multi-pass. budget <= 0 means "plenty of memory", which
// still prefers sort/scan once the single-scan estimate exceeds a
// default 1 GiB working set (matching the paper's large-data regime).
func Choose(c *core.Compiled, stats *plan.Stats, budget float64, rec ...*obs.Recorder) (Decision, error) {
	if budget <= 0 {
		budget = 1 << 30
	}
	d := Decision{SingleScanBytes: SingleScanFootprint(c, stats)}
	best, err := Best(c, stats, rec...)
	if err != nil {
		return d, err
	}
	d.Key = best.Key
	d.SortScanBytes = best.EstBytes
	switch {
	case d.SingleScanBytes <= budget:
		d.Strategy = StrategySingleScan
	case d.SortScanBytes <= budget:
		d.Strategy = StrategySortScan
	default:
		d.Strategy = StrategyMultiPass
	}
	return d, nil
}
