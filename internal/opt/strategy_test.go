package opt

import (
	"testing"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/model"
	"awra/internal/plan"
)

func TestChooseLadder(t *testing.T) {
	s := schema3(t)
	// One fine-grained measure: single-scan needs ~card(A0)*card(B0)
	// cells; a covering sort key streams it in ~1 cell.
	c, err := core.NewWorkflow(s).
		Basic("fine", model.Gran{0, 0, model.LevelALL}, agg.Count, -1).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	st := &plan.Stats{BaseCard: []float64{1000, 1000, 1000}, Records: 1e9}

	// Plenty of memory: simple scan wins (no sort).
	d, err := Choose(c, st, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy != StrategySingleScan {
		t.Errorf("huge budget: strategy = %v", d.Strategy)
	}
	if d.SingleScanBytes <= 0 || d.SortScanBytes <= 0 {
		t.Errorf("estimates missing: %+v", d)
	}

	// Tight budget: streaming fits where hashing everything does not.
	d, err = Choose(c, st, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy != StrategySortScan {
		t.Errorf("tight budget: strategy = %v (single=%.0f sort=%.0f)",
			d.Strategy, d.SingleScanBytes, d.SortScanBytes)
	}
	if len(d.Key) == 0 {
		t.Error("no sort key chosen")
	}

	// Budget below even the best streaming plan: multi-pass.
	conflict, err := core.NewWorkflow(s).
		Basic("byA", model.Gran{0, model.LevelALL, model.LevelALL}, agg.Count, -1).
		Basic("byB", model.Gran{model.LevelALL, 0, model.LevelALL}, agg.Count, -1).
		Basic("byC", model.Gran{model.LevelALL, model.LevelALL, 0}, agg.Count, -1).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	d, err = Choose(conflict, st, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy != StrategyMultiPass {
		t.Errorf("impossible budget: strategy = %v (single=%.0f sort=%.0f)",
			d.Strategy, d.SingleScanBytes, d.SortScanBytes)
	}

	// Default budget (0): the paper's large-data regime for a huge
	// single-scan estimate.
	d, err = Choose(c, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy == StrategyMultiPass {
		t.Errorf("default budget escalated to multipass: %+v", d)
	}

	for _, str := range []Strategy{StrategySingleScan, StrategySortScan, StrategyMultiPass} {
		if str.String() == "" {
			t.Error("empty strategy name")
		}
	}
}

// TestChooseMatchesPaperScenarios mirrors the two Section 7.2 regimes:
// the escalation query's tiny intermediate picks simple scan; a
// fine-grained workload under the same budget picks sort/scan.
func TestChooseMatchesPaperScenarios(t *testing.T) {
	s := schema3(t)
	small, err := core.NewWorkflow(s).
		Basic("coarse", model.Gran{2, model.LevelALL, model.LevelALL}, agg.Count, -1).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	st := &plan.Stats{BaseCard: []float64{1000, 1000, 1000}, Records: 1e8}
	budget := 8.0 * (1 << 20)
	d, err := Choose(small, st, budget)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy != StrategySingleScan {
		t.Errorf("tiny intermediate: %v", d.Strategy)
	}
	big, err := core.NewWorkflow(s).
		Basic("fine", model.Gran{0, 0, 0}, agg.Count, -1).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	d, err = Choose(big, st, budget)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy != StrategySortScan {
		t.Errorf("huge intermediate: %v (single=%.0f sort=%.0f)",
			d.Strategy, d.SingleScanBytes, d.SortScanBytes)
	}
}
