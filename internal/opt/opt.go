// Package opt chooses sort orders for sort/scan passes (Section 6 of
// the paper). The evaluation cost model treats sorting and scanning as
// key-independent, so the optimizer minimizes the estimated in-memory
// footprint of the streaming plan. Like the paper's experiments, the
// default strategy is brute force over candidate sort orders ("we used
// brute force to search all possible sort orders and identify the one
// with the smallest estimated minimal memory footprint"); a greedy
// variant handles higher-dimensional schemas where enumeration
// explodes (the general problem is a form of assignment problem and
// NP-hard).
package opt

import (
	"fmt"
	"sort"

	"awra/internal/core"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/plan"
)

// recOf unwraps the optional trailing recorder argument used across
// this package (kept variadic for call-site compatibility).
func recOf(rec []*obs.Recorder) *obs.Recorder {
	if len(rec) > 0 {
		return rec[0]
	}
	return nil
}

// relevantLevels collects, per dimension, the levels that appear in
// any measure's granularity (plus the sibling-window levels). Sort
// keys only ever need these levels: sorting finer than every measure
// wastes nothing but gains nothing either, and coarser levels lose
// ordering information.
func relevantLevels(c *core.Compiled) [][]model.Level {
	sch := c.Schema
	sets := make([]map[model.Level]bool, sch.NumDims())
	for i := range sets {
		sets[i] = map[model.Level]bool{}
	}
	for _, m := range c.Measures {
		for d, l := range m.Gran {
			if l != sch.Dim(d).ALL() {
				sets[d][l] = true
			}
		}
	}
	out := make([][]model.Level, sch.NumDims())
	for d, set := range sets {
		for l := range set {
			out[d] = append(out[d], l)
		}
		sort.Slice(out[d], func(i, j int) bool { return out[d][i] < out[d][j] })
	}
	return out
}

// Candidates enumerates candidate sort keys: permutations of the
// dimensions that appear in some measure, each dimension at each of
// its relevant levels. The count is bounded by maxKeys (0 = no bound).
func Candidates(c *core.Compiled, maxKeys int) []model.SortKey {
	levels := relevantLevels(c)
	var dims []int
	for d, ls := range levels {
		if len(ls) > 0 {
			dims = append(dims, d)
		}
	}
	var out []model.SortKey
	var permute func(remaining []int, prefix model.SortKey)
	permute = func(remaining []int, prefix model.SortKey) {
		if maxKeys > 0 && len(out) >= maxKeys {
			return
		}
		if len(prefix) > 0 {
			k := make(model.SortKey, len(prefix))
			copy(k, prefix)
			out = append(out, k)
		}
		for i, d := range remaining {
			rest := make([]int, 0, len(remaining)-1)
			rest = append(rest, remaining[:i]...)
			rest = append(rest, remaining[i+1:]...)
			for _, l := range levels[d] {
				permute(rest, append(prefix, model.SortPart{Dim: d, Lvl: l}))
			}
		}
	}
	permute(dims, nil)
	if len(out) == 0 {
		// Degenerate workflow (everything at ALL): any key works.
		out = append(out, model.SortKey{{Dim: 0, Lvl: 0}})
	}
	return out
}

// Choice is a scored sort key.
type Choice struct {
	Key      model.SortKey
	EstBytes float64
	Plan     *plan.Plan
}

// BruteForce scores every candidate sort key and returns them sorted
// by estimated footprint, best first. An optional recorder counts the
// keys scored (opt_keys_scored).
func BruteForce(c *core.Compiled, stats *plan.Stats, maxKeys int, rec ...*obs.Recorder) ([]Choice, error) {
	cands := Candidates(c, maxKeys)
	recOf(rec).Counter(obs.MOptKeysScored).Add(int64(len(cands)))
	choices := make([]Choice, 0, len(cands))
	for _, k := range cands {
		p, err := plan.Build(c, k, stats)
		if err != nil {
			return nil, fmt.Errorf("opt: scoring %v: %w", k, err)
		}
		choices = append(choices, Choice{Key: p.SortKey, EstBytes: p.EstBytes, Plan: p})
	}
	sort.SliceStable(choices, func(i, j int) bool {
		if choices[i].EstBytes != choices[j].EstBytes {
			return choices[i].EstBytes < choices[j].EstBytes
		}
		return len(choices[i].Key) < len(choices[j].Key)
	})
	return choices, nil
}

// Best returns the lowest-footprint sort key for the workflow. An
// optional recorder receives opt_keys_scored and opt_best_bytes.
func Best(c *core.Compiled, stats *plan.Stats, rec ...*obs.Recorder) (Choice, error) {
	maxKeys := 0
	if c.Schema.NumDims() > 5 {
		// Enumeration explodes combinatorially; fall back to greedy.
		return Greedy(c, stats, rec...)
	}
	choices, err := BruteForce(c, stats, maxKeys, rec...)
	if err != nil {
		return Choice{}, err
	}
	recOf(rec).Gauge(obs.GOptBestBytes).SetMax(int64(choices[0].EstBytes))
	return choices[0], nil
}

// Greedy builds a sort key one part at a time, at each step appending
// the (dimension, level) whose addition reduces the estimated
// footprint the most. It evaluates O(d^2 * levels) plans instead of
// O(d! * levels^d).
func Greedy(c *core.Compiled, stats *plan.Stats, rec ...*obs.Recorder) (Choice, error) {
	levels := relevantLevels(c)
	used := make([]bool, c.Schema.NumDims())
	var key model.SortKey

	scored := recOf(rec).Counter(obs.MOptKeysScored)
	score := func(k model.SortKey) (float64, *plan.Plan, error) {
		if len(k) == 0 {
			return 1e300, nil, nil
		}
		scored.Add(1)
		p, err := plan.Build(c, k, stats)
		if err != nil {
			return 0, nil, err
		}
		return p.EstBytes, p, nil
	}
	best, bestPlan, err := score(key)
	if err != nil {
		return Choice{}, err
	}
	for {
		improved := false
		var bestNext model.SortKey
		var bestNextPlan *plan.Plan
		bestScore := best
		for d := range levels {
			if used[d] {
				continue
			}
			for _, l := range levels[d] {
				cand := append(append(model.SortKey{}, key...), model.SortPart{Dim: d, Lvl: l})
				s, p, err := score(cand)
				if err != nil {
					return Choice{}, err
				}
				if s < bestScore {
					bestScore, bestNext, bestNextPlan, improved = s, cand, p, true
				}
			}
		}
		if !improved {
			break
		}
		key, best, bestPlan = bestNext, bestScore, bestNextPlan
		used[key[len(key)-1].Dim] = true
	}
	if bestPlan == nil {
		// Nothing helped (e.g. all measures at ALL); pick any key.
		key = model.SortKey{{Dim: 0, Lvl: 0}}
		p, err := plan.Build(c, key, stats)
		if err != nil {
			return Choice{}, err
		}
		recOf(rec).Gauge(obs.GOptBestBytes).SetMax(int64(p.EstBytes))
		return Choice{Key: p.SortKey, EstBytes: p.EstBytes, Plan: p}, nil
	}
	recOf(rec).Gauge(obs.GOptBestBytes).SetMax(int64(best))
	return Choice{Key: bestPlan.SortKey, EstBytes: best, Plan: bestPlan}, nil
}
