package opt

import (
	"testing"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/model"
	"awra/internal/plan"
)

func schema3(t *testing.T) *model.Schema {
	t.Helper()
	s, err := model.NewSchema([]*model.Dimension{
		model.FixedFanout("A", 3, 10),
		model.FixedFanout("B", 3, 10),
		model.FixedFanout("C", 3, 10),
	}, "m")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCandidatesCoverRelevantLevels(t *testing.T) {
	s := schema3(t)
	c, err := core.NewWorkflow(s).
		Basic("x", model.Gran{0, 1, model.LevelALL}, agg.Count, -1).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	cands := Candidates(c, 0)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	// Only dims A (level 0) and B (level 1) are relevant: keys use
	// exactly those.
	for _, k := range cands {
		for _, p := range k {
			if p.Dim == 2 {
				t.Fatalf("key %v uses irrelevant dimension C", k)
			}
			if p.Dim == 0 && p.Lvl != 0 {
				t.Fatalf("key %v uses irrelevant level for A", k)
			}
			if p.Dim == 1 && p.Lvl != 1 {
				t.Fatalf("key %v uses irrelevant level for B", k)
			}
		}
	}
	// Expect: <A>, <B>, <A,B>, <B,A> = 4 candidates.
	if len(cands) != 4 {
		t.Errorf("got %d candidates, want 4", len(cands))
	}
	if got := Candidates(c, 2); len(got) != 2 {
		t.Errorf("maxKeys not honored: %d", len(got))
	}
}

func TestCandidatesDegenerate(t *testing.T) {
	s := schema3(t)
	c, err := core.NewWorkflow(s).
		Basic("total", s.AllGran(), agg.Count, -1).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	cands := Candidates(c, 0)
	if len(cands) != 1 {
		t.Fatalf("degenerate workflow should yield one fallback key, got %d", len(cands))
	}
}

func TestBestPrefersCoveringKey(t *testing.T) {
	s := schema3(t)
	// A measure at (A:L0, B:L0): the best sort key should cover both
	// dimensions so nearly nothing stays live.
	c, err := core.NewWorkflow(s).
		Basic("x", model.Gran{0, 0, model.LevelALL}, agg.Count, -1).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	st := &plan.Stats{BaseCard: []float64{1000, 1000, 1000}}
	best, err := Best(c, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Key) != 2 {
		t.Fatalf("best key %v should cover both dimensions", best.Key.String(s))
	}
	p, err := plan.Build(c, best.Key, st)
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes[0].EstCells != 1 {
		t.Errorf("best key leaves %v cells live, want 1", p.Nodes[0].EstCells)
	}
}

func TestBruteForceOrdering(t *testing.T) {
	s := schema3(t)
	c, err := core.NewWorkflow(s).
		Basic("x", model.Gran{0, 0, model.LevelALL}, agg.Count, -1).
		Basic("y", model.Gran{model.LevelALL, 0, 0}, agg.Count, -1).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	choices, err := BruteForce(c, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(choices); i++ {
		if choices[i].EstBytes < choices[i-1].EstBytes {
			t.Fatal("choices not sorted by footprint")
		}
	}
}

func TestGreedyFindsReasonableKey(t *testing.T) {
	s := schema3(t)
	c, err := core.NewWorkflow(s).
		Basic("x", model.Gran{0, 0, 0}, agg.Count, -1).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	st := &plan.Stats{BaseCard: []float64{1000, 1000, 1000}}
	greedy, err := Greedy(c, st)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Best(c, st)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy should be within 10x of brute force here (it is in fact
	// equal for this symmetric workload).
	if greedy.EstBytes > 10*best.EstBytes {
		t.Errorf("greedy %v (%.0f) much worse than brute force %v (%.0f)",
			greedy.Key.String(s), greedy.EstBytes, best.Key.String(s), best.EstBytes)
	}
}

func TestGreedyDegenerate(t *testing.T) {
	s := schema3(t)
	c, err := core.NewWorkflow(s).
		Basic("total", s.AllGran(), agg.Count, -1).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Greedy(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Key) == 0 {
		t.Error("greedy returned empty key")
	}
}

func TestBestHighDimensionalFallsBackToGreedy(t *testing.T) {
	dims := make([]*model.Dimension, 7)
	names := "ABCDEFG"
	for i := range dims {
		dims[i] = model.FixedFanout(string(names[i]), 2, 10)
	}
	s, err := model.NewSchema(dims)
	if err != nil {
		t.Fatal(err)
	}
	gr := make(model.Gran, 7)
	c, err := core.NewWorkflow(s).Basic("x", gr, agg.Count, -1).Compile()
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Best(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Key) == 0 {
		t.Error("high-dimensional Best returned empty key")
	}
}
