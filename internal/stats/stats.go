// Package stats estimates dataset statistics for the optimizer. The
// paper's Table 6 relies on a card() function and notes that "for most
// datasets, this number is not fixed. But the precision of this
// function will only affect the size estimation" — this package turns
// that into practice: one scan (or a prefix sample) of the fact file
// yields per-dimension distinct-value estimates via linear counting,
// which plug into plan.Stats and replace guessed cardinalities.
package stats

import (
	"fmt"
	"math"

	"awra/internal/model"
	"awra/internal/plan"
	"awra/internal/storage"
)

// bitmapBits is the linear-counting bitmap size per dimension (64 Ki
// bits = 8 KiB). Estimates are accurate to a few percent up to roughly
// the bitmap size and saturate gracefully beyond it.
const bitmapBits = 1 << 16

// DimStats summarizes one dimension's base-domain values.
type DimStats struct {
	// Distinct estimates the number of distinct base codes.
	Distinct float64
	// Min and Max are the observed code range.
	Min, Max int64
	// Saturated reports that the distinct estimate hit the counting
	// bitmap's ceiling and is a lower bound.
	Saturated bool
}

// Stats is the result of a collection scan.
type Stats struct {
	Records int64
	Dims    []DimStats
}

// Options tunes collection.
type Options struct {
	// SampleLimit stops after this many records (0 = scan everything).
	// Distinct counts are then scaled linearly by the sampled
	// fraction's inverse only when the caller knows the total; here
	// they are reported raw, which still ranks sort keys correctly.
	SampleLimit int64
}

// Collect scans a record source and estimates per-dimension stats.
func Collect(src storage.Source, numDims int, opts Options) (*Stats, error) {
	if numDims <= 0 {
		return nil, fmt.Errorf("stats: need at least one dimension")
	}
	st := &Stats{Dims: make([]DimStats, numDims)}
	bitmaps := make([][]uint64, numDims)
	for i := range bitmaps {
		bitmaps[i] = make([]uint64, bitmapBits/64)
		st.Dims[i].Min = math.MaxInt64
		st.Dims[i].Max = math.MinInt64
	}
	var rec model.Record
	for {
		if opts.SampleLimit > 0 && st.Records >= opts.SampleLimit {
			break
		}
		ok, err := src.Next(&rec)
		if err != nil {
			return nil, fmt.Errorf("stats: %w", err)
		}
		if !ok {
			break
		}
		if len(rec.Dims) != numDims {
			return nil, fmt.Errorf("stats: record has %d dimensions, expected %d", len(rec.Dims), numDims)
		}
		st.Records++
		for d, v := range rec.Dims {
			h := mix64(uint64(v)) & (bitmapBits - 1)
			bitmaps[d][h/64] |= 1 << (h % 64)
			if v < st.Dims[d].Min {
				st.Dims[d].Min = v
			}
			if v > st.Dims[d].Max {
				st.Dims[d].Max = v
			}
		}
	}
	for d := range st.Dims {
		if st.Records == 0 {
			st.Dims[d] = DimStats{Distinct: 1}
			continue
		}
		zeros := 0
		for _, w := range bitmaps[d] {
			zeros += 64 - popcount(w)
		}
		st.Dims[d].Distinct, st.Dims[d].Saturated = estimateFromZeros(zeros)
	}
	return st, nil
}

// CollectFile collects stats from a record file.
func CollectFile(path string, opts Options) (*Stats, error) {
	r, err := storage.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return Collect(r, r.Header().NumDims, opts)
}

// PlanStats converts the collected statistics into the optimizer's
// input form.
func (s *Stats) PlanStats() *plan.Stats {
	out := &plan.Stats{BaseCard: make([]float64, len(s.Dims)), Records: float64(s.Records), Source: plan.SourceCollected}
	for i, d := range s.Dims {
		out.BaseCard[i] = d.Distinct
	}
	return out
}

// estimateFromZeros applies the linear-counting estimator
// n ~ -m * ln(zeros/m). A fully set bitmap saturates: the estimator's
// ceiling m*ln(m) is reported as a lower bound.
func estimateFromZeros(zeros int) (float64, bool) {
	if zeros <= 0 {
		return bitmapBits * math.Log(bitmapBits), true
	}
	n := -float64(bitmapBits) * math.Log(float64(zeros)/float64(bitmapBits))
	if n < 1 {
		n = 1
	}
	return n, false
}

// mix64 is SplitMix64's finalizer: a fast, well-distributed 64-bit
// mixer (deterministic across runs, unlike maphash).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
