package stats

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"awra/internal/model"
	"awra/internal/storage"
)

func recordsWithCards(n int, cards []int64, seed int64) []model.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]model.Record, n)
	for i := range recs {
		dims := make([]int64, len(cards))
		for d, c := range cards {
			dims[d] = rng.Int63n(c)
		}
		recs[i] = model.Record{Dims: dims, Ms: []float64{}}
	}
	return recs
}

func TestDistinctEstimates(t *testing.T) {
	cards := []int64{10, 1000, 30000}
	recs := recordsWithCards(200000, cards, 1)
	st, err := Collect(&storage.SliceSource{Recs: recs}, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 200000 {
		t.Fatalf("records = %d", st.Records)
	}
	for d, c := range cards {
		got := st.Dims[d].Distinct
		want := float64(c)
		if math.Abs(got-want) > 0.1*want+2 {
			t.Errorf("dim %d: distinct = %.0f, want ~%d", d, got, c)
		}
		if st.Dims[d].Saturated {
			t.Errorf("dim %d unexpectedly saturated", d)
		}
	}
	if st.Dims[0].Min != 0 || st.Dims[0].Max != 9 {
		t.Errorf("dim 0 range = [%d,%d]", st.Dims[0].Min, st.Dims[0].Max)
	}
}

func TestBeyondBitmapStillAccurate(t *testing.T) {
	// Linear counting stays usable past the bitmap size: 300k distinct
	// values against a 64k-bit map should estimate within ~15%.
	recs := make([]model.Record, 300000)
	for i := range recs {
		recs[i] = model.Record{Dims: []int64{int64(i)}, Ms: []float64{}}
	}
	st, err := Collect(&storage.SliceSource{Recs: recs}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := st.Dims[0].Distinct
	if math.Abs(got-300000) > 45000 {
		t.Errorf("distinct = %.0f, want ~300000", got)
	}
}

func TestSaturationCeiling(t *testing.T) {
	n, sat := estimateFromZeros(0)
	if !sat {
		t.Error("zero free bits not reported as saturated")
	}
	if n < bitmapBits {
		t.Errorf("ceiling %.0f below bitmap size", n)
	}
	n, sat = estimateFromZeros(bitmapBits)
	if sat || n != 1 {
		t.Errorf("empty bitmap estimate = %v sat=%v", n, sat)
	}
}

func TestSampleLimit(t *testing.T) {
	recs := recordsWithCards(10000, []int64{100}, 2)
	st, err := Collect(&storage.SliceSource{Recs: recs}, 1, Options{SampleLimit: 500})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 500 {
		t.Fatalf("sampled %d records", st.Records)
	}
}

func TestEmptyAndErrors(t *testing.T) {
	st, err := Collect(&storage.SliceSource{}, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range st.Dims {
		if d.Distinct != 1 {
			t.Errorf("empty input distinct = %v", d.Distinct)
		}
	}
	if _, err := Collect(&storage.SliceSource{}, 0, Options{}); err == nil {
		t.Error("zero dims accepted")
	}
	bad := &storage.SliceSource{Recs: []model.Record{{Dims: []int64{1}}}}
	if _, err := Collect(bad, 2, Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestCollectFileAndPlanStats(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.rec")
	recs := recordsWithCards(5000, []int64{50, 500}, 3)
	if err := storage.WriteAll(path, 2, 0, recs); err != nil {
		t.Fatal(err)
	}
	st, err := CollectFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := st.PlanStats()
	if len(ps.BaseCard) != 2 {
		t.Fatalf("plan stats dims = %d", len(ps.BaseCard))
	}
	if math.Abs(ps.BaseCard[0]-50) > 7 {
		t.Errorf("plan stats card = %v", ps.BaseCard[0])
	}
	if _, err := CollectFile(filepath.Join(dir, "none.rec"), Options{}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestMixDistribution(t *testing.T) {
	// Sanity: sequential integers must spread across the bitmap.
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[mix64(uint64(i))&(bitmapBits-1)] = true
	}
	if len(seen) < 950 {
		t.Errorf("mix64 collides too much: %d distinct slots of 1000", len(seen))
	}
}
