package resultstore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"awra/internal/faultfs"
	"awra/internal/storage"
)

// listDir returns the sorted names in dir ("" set if absent).
func listDir(t *testing.T, dir string) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return out
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		out[e.Name()] = true
	}
	return out
}

func TestCorruptManifestIsTyped(t *testing.T) {
	s, tables := computedTables(t)
	dir := filepath.Join(t.TempDir(), "results")
	if err := Save(dir, s, tables); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadManifest on corrupt manifest: err = %v, want ErrCorrupt", err)
	}
	if _, err := Load(dir, s); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load on corrupt manifest: err = %v, want ErrCorrupt", err)
	}
	if _, err := LoadMeasure(dir, s, "cnt"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("LoadMeasure on corrupt manifest: err = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedMeasureFileIsTyped(t *testing.T) {
	s, tables := computedTables(t)
	dir := filepath.Join(t.TempDir(), "results")
	if err := Save(dir, s, tables); err != nil {
		t.Fatal(err)
	}
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the largest measure file mid-record.
	var victim string
	var victimRows int64
	for _, info := range man.Measures {
		if info.Rows > victimRows {
			victim, victimRows = info.File, info.Rows
		}
	}
	if victimRows == 0 {
		t.Fatal("no non-empty measure to truncate")
	}
	path := filepath.Join(dir, victim)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, s); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load on truncated measure: err = %v, want ErrCorrupt", err)
	}
}

func TestSaveShortWriteCleansUp(t *testing.T) {
	s, tables := computedTables(t)
	dir := filepath.Join(t.TempDir(), "results")
	// Let the header and a few records through, then fail: a short write
	// mid-measure must surface the injected error and leave no partial
	// files (and in particular no manifest pointing at them).
	restore := storage.SwapFS(faultfs.New().FailWriteAfter(256))
	err := Save(dir, s, tables)
	restore()
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Save under write fault: err = %v, want ErrInjected", err)
	}
	left := listDir(t, dir)
	for name := range left {
		if strings.HasSuffix(name, ".rec") || name == manifestName || strings.HasSuffix(name, ".tmp") {
			t.Fatalf("failed Save left partial output %q (dir: %v)", name, left)
		}
	}
}

func TestSaveCreateFailureCleansUpEarlierMeasures(t *testing.T) {
	s, tables := computedTables(t)
	if len(tables) < 2 {
		t.Fatal("need at least two measures")
	}
	dir := filepath.Join(t.TempDir(), "results")
	// First measure file writes fine; creating the second fails. The
	// first must not survive.
	restore := storage.SwapFS(faultfs.New().FailCreate(2))
	err := Save(dir, s, tables)
	restore()
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Save under create fault: err = %v, want ErrInjected", err)
	}
	left := listDir(t, dir)
	for name := range left {
		if strings.HasSuffix(name, ".rec") || name == manifestName {
			t.Fatalf("failed Save left partial output %q (dir: %v)", name, left)
		}
	}
	// The directory still works for a clean retry.
	if err := Save(dir, s, tables); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, s); err != nil {
		t.Fatal(err)
	}
}
