// Package resultstore persists computed measure tables to disk and
// loads them back: one record file per measure (full-granularity codes
// plus the value) and a JSON manifest describing the measures and
// their granularities. It gives workflows a materialization layer —
// run an expensive workflow once, then slice, export, or join the
// results in later sessions without recomputation.
package resultstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"awra/internal/core"
	"awra/internal/model"
	"awra/internal/storage"
)

// ErrCorrupt marks structural damage in a result directory — an
// unparsable manifest, a truncated or checksum-failing measure file —
// as opposed to transient I/O errors. Match with errors.Is; it is the
// same sentinel the storage layer uses, so callers need one check.
var ErrCorrupt = storage.ErrCorrupt

const manifestName = "awra-results.json"

// MeasureInfo describes one stored measure in the manifest.
type MeasureInfo struct {
	Name string `json:"name"`
	File string `json:"file"`
	// Domains lists the domain name per dimension (granularity), using
	// "ALL" for D_ALL components; validated against the schema on load.
	Domains []string `json:"domains"`
	Rows    int64    `json:"rows"`
}

// Manifest indexes a result directory.
type Manifest struct {
	// Dimensions lists the schema's dimension names, for validation.
	Dimensions []string      `json:"dimensions"`
	Measures   []MeasureInfo `json:"measures"`
}

// Save writes the tables into dir (created if needed) with a manifest.
// Measure names become file names, so they are sanitized. Save is
// transactional at the directory level: on any error the measure files
// written by this call are removed, and the manifest — written last,
// via a temp file and an atomic rename — never references files that
// were not fully written, so a failed Save cannot leave a directory
// that loads partially.
func Save(dir string, schema *model.Schema, tables map[string]*core.Table) (err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	var written []string
	defer func() {
		if err != nil {
			for _, p := range written {
				os.Remove(p)
			}
		}
	}()
	man := Manifest{}
	for i := 0; i < schema.NumDims(); i++ {
		man.Dimensions = append(man.Dimensions, schema.Dim(i).Name())
	}
	// Deterministic order.
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		tbl := tables[name]
		file := sanitize(name) + ".rec"
		info := MeasureInfo{Name: name, File: file, Rows: int64(len(tbl.Rows))}
		for d := 0; d < schema.NumDims(); d++ {
			info.Domains = append(info.Domains, schema.Dim(d).DomainName(tbl.Gran[d]))
		}
		path := filepath.Join(dir, file)
		w, err := storage.Create(path, schema.NumDims(), 1)
		if err != nil {
			return fmt.Errorf("resultstore: measure %q: %w", name, err)
		}
		written = append(written, path)
		rec := model.Record{Dims: make([]int64, schema.NumDims()), Ms: make([]float64, 1)}
		for _, k := range tbl.SortedKeys() {
			copy(rec.Dims, tbl.Codec.FullDecode(k))
			rec.Ms[0] = tbl.Rows[k]
			if err := w.Write(&rec); err != nil {
				w.Close()
				return fmt.Errorf("resultstore: measure %q: %w", name, err)
			}
		}
		if err := w.Close(); err != nil {
			return fmt.Errorf("resultstore: measure %q: %w", name, err)
		}
		man.Measures = append(man.Measures, info)
	}
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	written = append(written, tmp)
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	return nil
}

// ReadManifest loads and parses a result directory's manifest.
func ReadManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("resultstore: corrupt manifest: %v (%w)", err, ErrCorrupt)
	}
	return &man, nil
}

// Load reads every stored measure back, validating granularities
// against the schema.
func Load(dir string, schema *model.Schema) (map[string]*core.Table, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	if len(man.Dimensions) != schema.NumDims() {
		return nil, fmt.Errorf("resultstore: manifest has %d dimensions, schema has %d",
			len(man.Dimensions), schema.NumDims())
	}
	for i, name := range man.Dimensions {
		if schema.Dim(i).Name() != name {
			return nil, fmt.Errorf("resultstore: dimension %d is %q in the manifest but %q in the schema",
				i, name, schema.Dim(i).Name())
		}
	}
	out := make(map[string]*core.Table, len(man.Measures))
	for _, info := range man.Measures {
		tbl, err := loadMeasure(dir, schema, info)
		if err != nil {
			return nil, fmt.Errorf("resultstore: measure %q: %w", info.Name, err)
		}
		out[info.Name] = tbl
	}
	return out, nil
}

// LoadMeasure reads one stored measure by name.
func LoadMeasure(dir string, schema *model.Schema, name string) (*core.Table, error) {
	man, err := ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	for _, info := range man.Measures {
		if info.Name == name {
			return loadMeasure(dir, schema, info)
		}
	}
	return nil, fmt.Errorf("resultstore: no stored measure %q in %s", name, dir)
}

func loadMeasure(dir string, schema *model.Schema, info MeasureInfo) (*core.Table, error) {
	if len(info.Domains) != schema.NumDims() {
		return nil, fmt.Errorf("granularity has %d components, schema has %d dimensions",
			len(info.Domains), schema.NumDims())
	}
	gran := make(model.Gran, schema.NumDims())
	for d, dom := range info.Domains {
		l, err := schema.Dim(d).LevelByName(dom)
		if err != nil {
			return nil, err
		}
		gran[d] = l
	}
	tbl := core.NewTable(schema, gran)
	r, err := storage.Open(filepath.Join(dir, info.File))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var rec model.Record
	codes := make([]int64, 0, schema.NumDims())
	for {
		ok, err := r.Next(&rec)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		codes = codes[:0]
		for d := 0; d < schema.NumDims(); d++ {
			if gran[d] != schema.Dim(d).ALL() {
				codes = append(codes, rec.Dims[d])
			}
		}
		k, err := tbl.Codec.FromCodesChecked(codes)
		if err != nil {
			return nil, fmt.Errorf("resultstore: %s: %w", info.File, err)
		}
		tbl.Rows[k] = rec.Ms[0]
	}
	if int64(len(tbl.Rows)) != info.Rows {
		return nil, fmt.Errorf("expected %d rows, loaded %d (duplicate or missing regions)",
			info.Rows, len(tbl.Rows))
	}
	return tbl, nil
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// jsonMarshal is exposed for tests that rewrite manifests.
func jsonMarshal(man *Manifest) ([]byte, error) {
	return json.MarshalIndent(man, "", "  ")
}
