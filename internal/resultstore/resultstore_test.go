package resultstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/exec/singlescan"
	"awra/internal/gen"
	"awra/internal/model"
	"awra/internal/storage"
)

func computedTables(t *testing.T) (*model.Schema, map[string]*core.Table) {
	t.Helper()
	s, recs, err := gen.SynthRecords(2000, gen.SynthConfig{Dims: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	all := model.LevelALL
	c, err := core.NewWorkflow(s).
		Basic("cnt", model.Gran{1, 1}, agg.Count, -1).
		Basic("withNull", model.Gran{2, all}, agg.Min, 0,
			core.Where(core.MWhere(0, core.Gt, 1e9))). // empty -> no rows
		Rollup("per/top", model.Gran{2, all}, "cnt", agg.Sum).
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := singlescan.Run(c, &storage.SliceSource{Recs: recs}, singlescan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s, res.Tables
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s, tables := computedTables(t)
	dir := filepath.Join(t.TempDir(), "results")
	if err := Save(dir, s, tables); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(tables) {
		t.Fatalf("loaded %d measures, want %d", len(loaded), len(tables))
	}
	for name, want := range tables {
		got, ok := loaded[name]
		if !ok {
			t.Fatalf("measure %q missing after load", name)
		}
		if !want.Equal(got, 0) {
			t.Fatalf("measure %q changed in round trip", name)
		}
		if !model.GranEq(want.Gran, got.Gran) {
			t.Fatalf("measure %q granularity changed", name)
		}
	}
}

func TestLoadSingleMeasure(t *testing.T) {
	s, tables := computedTables(t)
	dir := filepath.Join(t.TempDir(), "results")
	if err := Save(dir, s, tables); err != nil {
		t.Fatal(err)
	}
	tbl, err := LoadMeasure(dir, s, "per/top")
	if err != nil {
		t.Fatal(err)
	}
	if !tables["per/top"].Equal(tbl, 0) {
		t.Fatal("single-measure load differs")
	}
	if _, err := LoadMeasure(dir, s, "ghost"); err == nil {
		t.Fatal("unknown measure loaded")
	}
}

func TestManifestValidation(t *testing.T) {
	s, tables := computedTables(t)
	dir := filepath.Join(t.TempDir(), "results")
	if err := Save(dir, s, tables); err != nil {
		t.Fatal(err)
	}
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Measures) != len(tables) || len(man.Dimensions) != 2 {
		t.Fatalf("manifest = %+v", man)
	}
	// Wrong schema: different dimension names.
	other, err := model.NewSchema([]*model.Dimension{
		model.FixedFanout("X", 3, 10),
		model.FixedFanout("Y", 3, 10),
	}, "m")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, other); err == nil || !strings.Contains(err.Error(), "dimension") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
	// Wrong dimensionality.
	one, err := model.NewSchema([]*model.Dimension{model.FixedFanout("A1", 3, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, one); err == nil {
		t.Fatal("wrong dimensionality accepted")
	}
}

func TestCorruptionDetected(t *testing.T) {
	s, tables := computedTables(t)
	dir := filepath.Join(t.TempDir(), "results")
	if err := Save(dir, s, tables); err != nil {
		t.Fatal(err)
	}
	// Corrupt manifest.
	manPath := filepath.Join(dir, manifestName)
	if err := os.WriteFile(manPath, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, s); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
	// Missing manifest entirely.
	if _, err := Load(t.TempDir(), s); err == nil {
		t.Fatal("missing manifest accepted")
	}
	// Row-count mismatch (truncated file).
	if err := Save(dir, s, tables); err != nil {
		t.Fatal(err)
	}
	man, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	man.Measures[0].Rows += 5
	b, _ := os.ReadFile(manPath)
	_ = b
	if err := os.WriteFile(manPath, mustJSON(t, man), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, s); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
}

func mustJSON(t *testing.T, man *Manifest) []byte {
	t.Helper()
	b, err := jsonMarshal(man)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSanitize(t *testing.T) {
	if got := sanitize("per/top m"); got != "per_top_m" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitize("ok-name_1"); got != "ok-name_1" {
		t.Errorf("sanitize mangled a safe name: %q", got)
	}
}
