package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDimensionValidation(t *testing.T) {
	if _, err := NewDimension(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewDimension("x"); err == nil {
		t.Error("no domains accepted")
	}
	if _, err := NewDimension("x", DomainSpec{Name: ""}); err == nil {
		t.Error("empty domain name accepted")
	}
	if _, err := NewDimension("x", DomainSpec{Name: "base", Fanout: 0.5}); err == nil {
		t.Error("fanout < 1 accepted")
	}
	d, err := NewDimension("x", DomainSpec{Name: "base"})
	if err != nil {
		t.Fatalf("minimal dimension rejected: %v", err)
	}
	if d.NumLevels() != 2 {
		t.Errorf("NumLevels = %d, want 2 (base + ALL)", d.NumLevels())
	}
	if d.DomainName(d.ALL()) != "ALL" {
		t.Errorf("ALL level named %q", d.DomainName(d.ALL()))
	}
}

func TestFixedFanout(t *testing.T) {
	d := FixedFanout("A", 3, 10)
	if d.NumLevels() != 4 {
		t.Fatalf("NumLevels = %d, want 4", d.NumLevels())
	}
	// 523 -> 52 -> 5 -> ALL(0)
	if got := d.Up(0, 1, 523); got != 52 {
		t.Errorf("Up(0,1,523) = %d, want 52", got)
	}
	if got := d.Up(0, 2, 523); got != 5 {
		t.Errorf("Up(0,2,523) = %d, want 5", got)
	}
	if got := d.Up(0, d.ALL(), 523); got != 0 {
		t.Errorf("Up to ALL = %d, want 0", got)
	}
	if got := d.Up(1, 1, 52); got != 52 {
		t.Errorf("Up(1,1) not identity: %d", got)
	}
	if got := d.Fanout(0, 2); got != 100 {
		t.Errorf("Fanout(0,2) = %v, want 100", got)
	}
}

func TestResolveAndLevelByName(t *testing.T) {
	d := FixedFanout("A", 2, 4)
	l, err := d.Resolve(LevelALL)
	if err != nil || l != d.ALL() {
		t.Errorf("Resolve(LevelALL) = %d, %v", l, err)
	}
	if _, err := d.Resolve(Level(99)); err == nil {
		t.Error("Resolve(99) accepted")
	}
	if _, err := d.Resolve(Level(-2)); err == nil {
		t.Error("Resolve(-2) accepted")
	}
	l, err = d.LevelByName("L1")
	if err != nil || l != 1 {
		t.Errorf("LevelByName(L1) = %d, %v", l, err)
	}
	if _, err := d.LevelByName("nope"); err == nil {
		t.Error("unknown domain accepted")
	}
}

func TestConsistencyOfGeneralization(t *testing.T) {
	// gamma_Dk(x) == gamma_Dk(gamma_Dj(x)) for Di <= Dj <= Dk
	// (the consistency requirement of Section 2.1).
	dims := []*Dimension{
		FixedFanout("A", 4, 7),
		TimeDimension("t"),
		IPv4Dimension("U"),
		PortDimension("P"),
	}
	rng := rand.New(rand.NewSource(1))
	for _, d := range dims {
		for trial := 0; trial < 200; trial++ {
			x := rng.Int63n(1 << 40)
			if d.Name() == "P" {
				x = rng.Int63n(65536)
			}
			for j := Level(0); int(j) < d.NumLevels(); j++ {
				for k := j; int(k) < d.NumLevels(); k++ {
					direct := d.Up(0, k, x)
					viaJ := d.Up(j, k, d.Up(0, j, x))
					if direct != viaJ {
						t.Fatalf("%s: Up(0,%d,%d)=%d but via level %d = %d",
							d.Name(), k, x, direct, j, viaJ)
					}
				}
			}
		}
	}
}

func TestMonotonicityQuick(t *testing.T) {
	// Proposition 1: u < v implies gamma(u) <= gamma(v) at every level.
	dims := []*Dimension{
		FixedFanout("A", 3, 10),
		TimeDimension("t"),
		IPv4Dimension("U"),
		PortDimension("P"),
	}
	for _, d := range dims {
		d := d
		f := func(a, b int32) bool {
			u, v := int64(a), int64(b)
			if d.Name() == "P" {
				u, v = u&0xffff, v&0xffff
			}
			if u > v {
				u, v = v, u
			}
			for l := Level(1); int(l) < d.NumLevels(); l++ {
				if d.Up(0, l, u) > d.Up(0, l, v) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: monotonicity violated: %v", d.Name(), err)
		}
	}
}

func TestCheckMonotone(t *testing.T) {
	good := FixedFanout("A", 2, 3)
	if err := good.CheckMonotone(0, []int64{1, 5, 2, 9, 4}); err != nil {
		t.Errorf("monotone dimension rejected: %v", err)
	}
	bad := MustDimension("B", DomainSpec{
		Name:  "base",
		UpOne: func(c int64) int64 { return -c },
	})
	if err := bad.CheckMonotone(0, []int64{1, 2}); err == nil {
		t.Error("anti-monotone UpOne accepted")
	}
	if err := bad.CheckMonotone(bad.ALL(), []int64{1, 2}); err != nil {
		t.Errorf("ALL level should be trivially monotone: %v", err)
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -4}, {7, -2, -4}, {-7, -2, 3},
		{6, 3, 2}, {-6, 3, -2}, {0, 5, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestUpPanicsOnFinerTarget(t *testing.T) {
	d := FixedFanout("A", 2, 3)
	defer func() {
		if recover() == nil {
			t.Error("Up(coarse->fine) did not panic")
		}
	}()
	d.Up(1, 0, 5)
}

func TestFormatCode(t *testing.T) {
	d := FixedFanout("A", 2, 3)
	if got := d.FormatCode(0, 42); got != "42" {
		t.Errorf("default format = %q", got)
	}
	if got := d.FormatCode(d.ALL(), 0); got != "ALL" {
		t.Errorf("ALL format = %q", got)
	}
}
