// Package model implements the multidimensional data model of
// "Composite Subset Measures" (VLDB 2006): dimension attributes with
// linear domain generalization hierarchies, value generalization
// functions, granularity vectors, regions and region-set keys, and the
// total order over extended domains guaranteed by Proposition 1.
//
// Values in every domain are represented as dense int64 "codes".
// Generalization between adjacent domains is a monotone non-decreasing
// function of the code, which is exactly the property Proposition 1
// needs: sorting by a code at any level is consistent with sorting by
// the code at every coarser level, so byte-encoded region keys can be
// compared lexicographically during streaming evaluation.
package model

import (
	"fmt"
	"strconv"
)

// Level identifies one domain within a dimension's linear hierarchy.
// Level 0 is the base domain; the last level is D_ALL.
type Level int

// LevelALL is a symbolic level that resolves to the dimension's D_ALL
// level (the coarsest domain, with the single value ALL).
const LevelALL Level = -1

// DomainSpec describes a single domain in a linear hierarchy.
type DomainSpec struct {
	// Name of the domain, e.g. "Hour" or "/24".
	Name string

	// UpOne maps a code in this domain to the code of its
	// generalization in the next coarser domain. It must be monotone
	// non-decreasing. It is nil for the D_ALL level.
	UpOne func(int64) int64

	// Fanout is the average number of codes in this domain that map to
	// a single code of the next coarser domain. It is used only for
	// memory-footprint estimation (the card() function of Table 6), so
	// it need not be exact. It must be >= 1.
	Fanout float64

	// MinFanout is a lower bound on the number of codes in this
	// domain that map to a single code of the next coarser domain.
	// Watermark shifts for sibling windows divide by it, so it must be
	// a true lower bound for correctness when the window level differs
	// from the sort level (e.g. 28 for Day -> Month). Zero defaults to
	// Fanout rounded down (exact for uniform hierarchies).
	MinFanout int64

	// Format renders a code as a human-readable string. If nil, codes
	// print as decimal integers.
	Format func(int64) string
}

// Dimension is a dimension attribute together with its linear domain
// generalization hierarchy. The hierarchy is a chain
// D_base <_D D_1 <_D ... <_D D_ALL, as the paper restricts attention to
// linear hierarchies (non-linear ones, like Week, are excluded).
type Dimension struct {
	name   string
	levels []DomainSpec
}

// NewDimension constructs a dimension from base-to-coarse domain specs.
// The final D_ALL level is appended automatically; callers list only
// the concrete domains, base first. Every listed spec must have an
// UpOne function (mapping into the next listed domain, or into D_ALL
// for the last one — if the last spec's UpOne is nil, a constant-zero
// mapping to ALL is supplied).
func NewDimension(name string, specs ...DomainSpec) (*Dimension, error) {
	if name == "" {
		return nil, fmt.Errorf("model: dimension name must be non-empty")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("model: dimension %q needs at least a base domain", name)
	}
	levels := make([]DomainSpec, 0, len(specs)+1)
	for i, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("model: dimension %q: level %d has empty domain name", name, i)
		}
		if s.Fanout < 1 {
			if s.Fanout != 0 {
				return nil, fmt.Errorf("model: dimension %q: domain %q has fanout %v < 1", name, s.Name, s.Fanout)
			}
			s.Fanout = 1
		}
		if s.MinFanout == 0 {
			s.MinFanout = int64(s.Fanout)
		}
		if s.MinFanout < 1 || float64(s.MinFanout) > s.Fanout {
			return nil, fmt.Errorf("model: dimension %q: domain %q has min fanout %d outside [1, %v]", name, s.Name, s.MinFanout, s.Fanout)
		}
		if s.UpOne == nil {
			s.UpOne = func(int64) int64 { return 0 }
		}
		levels = append(levels, s)
	}
	levels = append(levels, DomainSpec{
		Name:      "ALL",
		Fanout:    1,
		MinFanout: 1,
		Format:    func(int64) string { return "ALL" },
	})
	return &Dimension{name: name, levels: levels}, nil
}

// MustDimension is NewDimension that panics on error; it is intended
// for statically-known hierarchies.
func MustDimension(name string, specs ...DomainSpec) *Dimension {
	d, err := NewDimension(name, specs...)
	if err != nil {
		panic(err)
	}
	return d
}

// Name returns the dimension attribute's name.
func (d *Dimension) Name() string { return d.name }

// NumLevels returns the number of domains in the hierarchy, including
// D_ALL. Valid levels are 0 .. NumLevels()-1.
func (d *Dimension) NumLevels() int { return len(d.levels) }

// ALL returns the level of the D_ALL domain.
func (d *Dimension) ALL() Level { return Level(len(d.levels) - 1) }

// Resolve maps the symbolic LevelALL to the concrete D_ALL level and
// validates the level range.
func (d *Dimension) Resolve(l Level) (Level, error) {
	if l == LevelALL {
		return d.ALL(), nil
	}
	if l < 0 || int(l) >= len(d.levels) {
		return 0, fmt.Errorf("model: dimension %q has no level %d (valid 0..%d)", d.name, l, len(d.levels)-1)
	}
	return l, nil
}

// DomainName returns the name of the domain at the given level.
func (d *Dimension) DomainName(l Level) string {
	if l == LevelALL {
		l = d.ALL()
	}
	return d.levels[l].Name
}

// LevelByName returns the level whose domain has the given name.
func (d *Dimension) LevelByName(domain string) (Level, error) {
	for i, s := range d.levels {
		if s.Name == domain {
			return Level(i), nil
		}
	}
	return 0, fmt.Errorf("model: dimension %q has no domain named %q", d.name, domain)
}

// Up applies the value generalization function gamma, mapping a code at
// level `from` to the corresponding code at level `to`. It requires
// from <= to; generalization functions are consistent by construction
// (they compose along the chain), matching the consistency requirement
// in Section 2.1 of the paper.
func (d *Dimension) Up(from, to Level, code int64) int64 {
	if from == LevelALL {
		from = d.ALL()
	}
	if to == LevelALL {
		to = d.ALL()
	}
	if from > to {
		panic(fmt.Sprintf("model: Up on dimension %q from level %d to finer level %d", d.name, from, to))
	}
	for l := from; l < to; l++ {
		code = d.levels[l].UpOne(code)
	}
	return code
}

// Fanout returns card(D_from, D_to): the (estimated) number of codes at
// level `from` that generalize to a single code at level `to`. Used by
// the order/slack algorithm of Table 6 and by footprint estimation.
func (d *Dimension) Fanout(from, to Level) float64 {
	if from == LevelALL {
		from = d.ALL()
	}
	if to == LevelALL {
		to = d.ALL()
	}
	if from > to {
		panic(fmt.Sprintf("model: Fanout on dimension %q from level %d to finer level %d", d.name, from, to))
	}
	f := 1.0
	for l := from; l < to; l++ {
		f *= d.levels[l].Fanout
	}
	return f
}

// MinFanout returns a lower bound on the number of codes at level
// `from` that generalize to a single code at level `to`. Unlike Fanout
// it is a correctness-critical bound (watermark shifts divide by it).
func (d *Dimension) MinFanout(from, to Level) int64 {
	if from == LevelALL {
		from = d.ALL()
	}
	if to == LevelALL {
		to = d.ALL()
	}
	if from > to {
		panic(fmt.Sprintf("model: MinFanout on dimension %q from level %d to finer level %d", d.name, from, to))
	}
	f := int64(1)
	for l := from; l < to; l++ {
		f *= d.levels[l].MinFanout
	}
	return f
}

// FormatCode renders a code at the given level for human consumption.
func (d *Dimension) FormatCode(l Level, code int64) string {
	if l == LevelALL {
		l = d.ALL()
	}
	if f := d.levels[l].Format; f != nil {
		return f(code)
	}
	return strconv.FormatInt(code, 10)
}

// CheckMonotone verifies that UpOne is monotone non-decreasing over the
// supplied sample of codes at the given level. It is a testing aid for
// custom hierarchies; built-in hierarchies are monotone by
// construction.
func (d *Dimension) CheckMonotone(l Level, codes []int64) error {
	if l == LevelALL {
		l = d.ALL()
	}
	if int(l) >= len(d.levels)-1 {
		return nil // ALL level has no UpOne
	}
	up := d.levels[l].UpOne
	for i := 0; i+1 < len(codes); i++ {
		a, b := codes[i], codes[i+1]
		if a > b {
			a, b = b, a
		}
		if up(a) > up(b) {
			return fmt.Errorf("model: dimension %q level %d (%s): UpOne(%d)=%d > UpOne(%d)=%d violates monotonicity",
				d.name, l, d.levels[l].Name, a, up(a), b, up(b))
		}
	}
	return nil
}

// FixedFanout builds a dimension with a uniform-fanout linear
// hierarchy, as used by the paper's synthetic workload: each value in a
// domain covers exactly `fanout` distinct values of the next finer
// domain. `depth` is the number of concrete domains (excluding D_ALL);
// the base domain therefore has fanout^(depth-1) values that generalize
// to a single top-level value, and base codes 0..card-1 are dense.
//
// The paper's synthetic setup is FixedFanout(name, 3, 10): four domains
// counting D_ALL, each covering 10 values of its sub-domain.
func FixedFanout(name string, depth, fanout int) *Dimension {
	if depth < 1 || fanout < 1 {
		panic("model: FixedFanout requires depth >= 1 and fanout >= 1")
	}
	f := int64(fanout)
	specs := make([]DomainSpec, depth)
	for i := 0; i < depth; i++ {
		specs[i] = DomainSpec{
			Name:   fmt.Sprintf("L%d", i),
			UpOne:  func(c int64) int64 { return floorDiv(c, f) },
			Fanout: float64(fanout),
		}
	}
	// The coarsest concrete domain maps to ALL.
	specs[depth-1].UpOne = func(int64) int64 { return 0 }
	return MustDimension(name, specs...)
}

// floorDiv is integer division rounding toward negative infinity, so
// generalization stays monotone for negative codes too.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
