package model

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Key is a byte-encoded region identifier. Within one region set, keys
// are the concatenated big-endian encodings of the region's codes for
// every non-ALL dimension (in schema order), with the sign bit flipped
// so that lexicographic byte order equals signed numeric order. Keys
// from the same region set are totally ordered; that order is
// consistent with generalization (Proposition 1), which is what makes
// watermark-based finalization a byte comparison.
type Key string

// appendCode appends the order-preserving 8-byte encoding of a code.
func appendCode(b []byte, code int64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(code)^(1<<63))
	return append(b, buf[:]...)
}

// AppendKeyCode appends the order-preserving 8-byte encoding of one
// code — the building block of Key — for engines that assemble keys
// into reusable buffers instead of allocating through a codec.
func AppendKeyCode(b []byte, code int64) []byte {
	return appendCode(b, code)
}

// decodeCode reads one code back out of its 8-byte encoding.
func decodeCode(b []byte) int64 {
	return int64(binary.BigEndian.Uint64(b) ^ (1 << 63))
}

// KeyCodec encodes and decodes region keys for one region set (one
// granularity vector over one schema).
type KeyCodec struct {
	schema *Schema
	gran   Gran
	dims   []int // indices of non-ALL dimensions, ascending
}

// NewKeyCodec builds a codec for the region set with granularity g.
// g must already be normalized.
func NewKeyCodec(s *Schema, g Gran) *KeyCodec {
	c := &KeyCodec{schema: s, gran: g.Clone()}
	for i, d := range s.dims {
		if g[i] != d.ALL() {
			c.dims = append(c.dims, i)
		}
	}
	return c
}

// Gran returns the codec's granularity vector.
func (c *KeyCodec) Gran() Gran { return c.gran }

// Schema returns the schema the codec was built over.
func (c *KeyCodec) Schema() *Schema { return c.schema }

// Width returns the number of encoded components in a key.
func (c *KeyCodec) Width() int { return len(c.dims) }

// KeyBytes returns the byte length of keys produced by this codec.
func (c *KeyCodec) KeyBytes() int { return 8 * len(c.dims) }

// FromBase maps a record's base coordinates into this region set's key:
// the region of gran(c) that covers the record.
func (c *KeyCodec) FromBase(dims []int64) Key {
	b := make([]byte, 0, 8*len(c.dims))
	for _, i := range c.dims {
		b = appendCode(b, c.schema.dims[i].Up(0, c.gran[i], dims[i]))
	}
	return Key(b)
}

// FromCodes builds a key from codes already at the codec's granularity,
// one per non-ALL dimension in schema order. A length mismatch is a
// programmer error and panics; callers deriving code vectors from
// on-disk data must use FromCodesChecked instead.
func (c *KeyCodec) FromCodes(codes []int64) Key {
	k, err := c.FromCodesChecked(codes)
	if err != nil {
		panic(err.Error())
	}
	return k
}

// FromCodesChecked is FromCodes returning an error on a length
// mismatch, for callers whose code vectors come from untrusted on-disk
// data (spill files, saved results) rather than compiled workflows.
func (c *KeyCodec) FromCodesChecked(codes []int64) (Key, error) {
	if len(codes) != len(c.dims) {
		return "", fmt.Errorf("model: FromCodes got %d codes, codec has %d non-ALL dims", len(codes), len(c.dims))
	}
	b := make([]byte, 0, 8*len(codes))
	for _, v := range codes {
		b = appendCode(b, v)
	}
	return Key(b), nil
}

// Decode extracts the region's codes (one per non-ALL dimension, in
// schema order). A length mismatch is a programmer error and panics;
// callers decoding keys reconstructed from on-disk data must use
// DecodeChecked instead.
func (c *KeyCodec) Decode(k Key) []int64 {
	out, err := c.DecodeChecked(k)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// DecodeChecked is Decode returning an error on a length mismatch, for
// keys that crossed a serialization boundary.
func (c *KeyCodec) DecodeChecked(k Key) ([]int64, error) {
	if len(k) != 8*len(c.dims) {
		return nil, fmt.Errorf("model: Decode got key of %d bytes, expected %d", len(k), 8*len(c.dims))
	}
	out := make([]int64, len(c.dims))
	for j := range c.dims {
		out[j] = decodeCode([]byte(k[8*j : 8*j+8]))
	}
	return out, nil
}

// FullDecode extracts one code per schema dimension from a key, with
// D_ALL positions set to 0 (the single ALL value).
func (c *KeyCodec) FullDecode(k Key) []int64 {
	out := make([]int64, c.schema.NumDims())
	for j, i := range c.dims {
		out[i] = decodeCode([]byte(k[8*j : 8*j+8]))
	}
	return out
}

// DimPos returns the position of dimension i within the key, or -1 if
// the dimension is at D_ALL and therefore not encoded.
func (c *KeyCodec) DimPos(i int) int {
	for j, d := range c.dims {
		if d == i {
			return j
		}
		if d > i {
			break
		}
	}
	return -1
}

// CodeAt extracts the code of dimension i from a key. The dimension
// must be encoded (not at D_ALL).
func (c *KeyCodec) CodeAt(k Key, dim int) int64 {
	j := c.DimPos(dim)
	if j < 0 {
		panic(fmt.Sprintf("model: dimension %d is at D_ALL in this region set", dim))
	}
	return decodeCode([]byte(k[8*j : 8*j+8]))
}

// WithCodeAt returns a copy of the key with dimension dim's code
// replaced. Used to enumerate sibling (neighbor) regions.
func (c *KeyCodec) WithCodeAt(k Key, dim int, code int64) Key {
	j := c.DimPos(dim)
	if j < 0 {
		panic(fmt.Sprintf("model: dimension %d is at D_ALL in this region set", dim))
	}
	b := []byte(k)
	out := make([]byte, len(b))
	copy(out, b)
	binary.BigEndian.PutUint64(out[8*j:], uint64(code)^(1<<63))
	return Key(out)
}

// UpTo rolls a key up to a coarser granularity. to must satisfy
// gran(c) <=_G to.
func (c *KeyCodec) UpTo(k Key, to *KeyCodec) Key {
	b := make([]byte, 0, 8*len(to.dims))
	j := 0
	for _, i := range to.dims {
		for c.dims[j] != i {
			j++
		}
		code := decodeCode([]byte(k[8*j : 8*j+8]))
		b = appendCode(b, c.schema.dims[i].Up(c.gran[i], to.gran[i], code))
	}
	return Key(b)
}

// Format renders a key for human consumption, e.g.
// "t:2002-02-14, U:1.2.3.*".
func (c *KeyCodec) Format(k Key) string {
	codes := c.Decode(k)
	var b strings.Builder
	for j, i := range c.dims {
		if j > 0 {
			b.WriteString(", ")
		}
		d := c.schema.dims[i]
		fmt.Fprintf(&b, "%s:%s", d.Name(), d.FormatCode(c.gran[i], codes[j]))
	}
	if len(c.dims) == 0 {
		b.WriteString("ALL")
	}
	return b.String()
}

// SortPart is one component of a sort key or stream order vector: a
// dimension attribute at a specific domain level.
type SortPart struct {
	Dim int
	Lvl Level
}

// SortKey is an order vector <K_1:D_1, ..., K_m:D_m>: the dataset (or a
// stream) is sorted by the mapped code of each part in turn. Per
// Proposition 2, all stream orders share the dataset sort key's
// attribute sequence and differ only in granularity, so SortKey doubles
// as the stream-order representation (parts at D_ALL carry no
// information and act as padding).
type SortKey []SortPart

// String renders the sort key in the paper's notation.
func (k SortKey) String(s *Schema) string {
	var b strings.Builder
	b.WriteByte('<')
	for j, p := range k {
		if j > 0 {
			b.WriteString(", ")
		}
		d := s.dims[p.Dim]
		fmt.Fprintf(&b, "%s:%s", d.Name(), d.DomainName(p.Lvl))
	}
	b.WriteByte('>')
	return b.String()
}

// Normalize resolves symbolic levels and validates dimensions.
func (k SortKey) Normalize(s *Schema) (SortKey, error) {
	out := make(SortKey, len(k))
	for j, p := range k {
		if p.Dim < 0 || p.Dim >= s.NumDims() {
			return nil, fmt.Errorf("model: sort key part %d references dimension %d (schema has %d)", j, p.Dim, s.NumDims())
		}
		l, err := s.dims[p.Dim].Resolve(p.Lvl)
		if err != nil {
			return nil, err
		}
		out[j] = SortPart{Dim: p.Dim, Lvl: l}
	}
	return out, nil
}

// RecordLess compares two records under the sort key, breaking ties by
// the full base coordinates in schema order (the tiebreak does not
// affect correctness but makes sorting deterministic for tests).
func (k SortKey) RecordLess(s *Schema, a, b *Record) bool {
	for _, p := range k {
		d := s.dims[p.Dim]
		av := d.Up(0, p.Lvl, a.Dims[p.Dim])
		bv := d.Up(0, p.Lvl, b.Dims[p.Dim])
		if av != bv {
			return av < bv
		}
	}
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] {
			return a.Dims[i] < b.Dims[i]
		}
	}
	return false
}

// MapBase maps a record's base coordinates to the sort key's encoded
// watermark value: the record's position in scan order, expressed at
// the key's granularities.
func (k SortKey) MapBase(s *Schema, dims []int64) Key {
	b := make([]byte, 0, 8*len(k))
	for _, p := range k {
		b = appendCode(b, s.dims[p.Dim].Up(0, p.Lvl, dims[p.Dim]))
	}
	return Key(b)
}

// Project maps a region key (from codec c, whose granularity must be at
// or below each key part's level for every part the region encodes)
// into the sort key's encoded space. Parts whose dimension is at D_ALL
// in the region set encode as the minimum value, so comparisons against
// watermarks stay conservative.
func (k SortKey) Project(c *KeyCodec, key Key) Key {
	b := make([]byte, 0, 8*len(k))
	for _, p := range k {
		j := c.DimPos(p.Dim)
		if j < 0 || c.gran[p.Dim] > p.Lvl {
			// Region is coarser than the order part (or at ALL): no
			// information; encode minimum.
			b = appendCode(b, -(1 << 62))
			continue
		}
		code := decodeCode([]byte(key[8*j : 8*j+8]))
		b = appendCode(b, c.schema.dims[p.Dim].Up(c.gran[p.Dim], p.Lvl, code))
	}
	return Key(b)
}
