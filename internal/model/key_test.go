package model

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]*Dimension{
		FixedFanout("A", 3, 10),
		FixedFanout("B", 3, 10),
	}, "m")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func netSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]*Dimension{
		TimeDimension("t"),
		IPv4Dimension("U"),
		IPv4Dimension("T"),
		PortDimension("P"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(nil); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema([]*Dimension{nil}); err == nil {
		t.Error("nil dimension accepted")
	}
	a := FixedFanout("A", 2, 3)
	if _, err := NewSchema([]*Dimension{a, a}); err == nil {
		t.Error("duplicate dimension accepted")
	}
	if _, err := NewSchema([]*Dimension{a}, "m", "m"); err == nil {
		t.Error("duplicate measure accepted")
	}
	if _, err := NewSchema([]*Dimension{a}, "A"); err == nil {
		t.Error("measure/dimension name clash accepted")
	}
	if _, err := NewSchema([]*Dimension{a}, ""); err == nil {
		t.Error("empty measure name accepted")
	}
}

func TestMakeGranAndString(t *testing.T) {
	s := netSchema(t)
	g, err := s.MakeGran(map[string]string{"t": "Hour", "U": "IP"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.GranString(g); got != "(t:Hour, U:IP)" {
		t.Errorf("GranString = %q", got)
	}
	if got := s.GranString(s.AllGran()); got != "(ALL)" {
		t.Errorf("all-gran string = %q", got)
	}
	if _, err := s.MakeGran(map[string]string{"zz": "Hour"}); err == nil {
		t.Error("unknown dimension accepted")
	}
	if _, err := s.MakeGran(map[string]string{"t": "Fortnight"}); err == nil {
		t.Error("unknown domain accepted")
	}
}

func TestGranLeq(t *testing.T) {
	s := testSchema(t)
	fine := Gran{0, 0}
	mid := Gran{1, 0}
	coarse := Gran{1, 2}
	if !s.GranLeq(fine, mid) || !s.GranLeq(mid, coarse) || !s.GranLeq(fine, coarse) {
		t.Error("expected fine <= mid <= coarse")
	}
	if s.GranLeq(coarse, fine) {
		t.Error("coarse <= fine")
	}
	if !s.GranLeq(fine, fine) {
		t.Error("not reflexive")
	}
	incomparable1, incomparable2 := Gran{1, 0}, Gran{0, 1}
	if s.GranLeq(incomparable1, incomparable2) || s.GranLeq(incomparable2, incomparable1) {
		t.Error("incomparable grans ordered")
	}
}

func TestKeyCodecRoundTrip(t *testing.T) {
	s := testSchema(t)
	g, _ := s.Normalize(Gran{1, 0})
	c := NewKeyCodec(s, g)
	if c.Width() != 2 || c.KeyBytes() != 16 {
		t.Fatalf("width=%d bytes=%d", c.Width(), c.KeyBytes())
	}
	k := c.FromBase([]int64{523, 77})
	codes := c.Decode(k)
	if codes[0] != 52 || codes[1] != 77 {
		t.Errorf("decoded %v, want [52 77]", codes)
	}
	if k2 := c.FromCodes([]int64{52, 77}); k2 != k {
		t.Error("FromCodes != FromBase path")
	}
	if got := c.CodeAt(k, 0); got != 52 {
		t.Errorf("CodeAt(0) = %d", got)
	}
	if got := c.CodeAt(k, 1); got != 77 {
		t.Errorf("CodeAt(1) = %d", got)
	}
	k3 := c.WithCodeAt(k, 1, 78)
	if got := c.CodeAt(k3, 1); got != 78 {
		t.Errorf("WithCodeAt: %d", got)
	}
	if c.CodeAt(k3, 0) != 52 {
		t.Error("WithCodeAt disturbed other component")
	}
}

func TestKeyOrderMatchesNumericOrder(t *testing.T) {
	// Byte order of encoded keys must equal numeric order of codes,
	// including negative codes.
	s := testSchema(t)
	g, _ := s.Normalize(Gran{0, LevelALL})
	c := NewKeyCodec(s, g)
	vals := []int64{-1 << 40, -5, -1, 0, 1, 7, 1 << 40}
	for i := 0; i+1 < len(vals); i++ {
		k1 := c.FromCodes([]int64{vals[i]})
		k2 := c.FromCodes([]int64{vals[i+1]})
		if !(k1 < k2) {
			t.Errorf("key(%d) !< key(%d)", vals[i], vals[i+1])
		}
	}
}

func TestKeyUpTo(t *testing.T) {
	s := testSchema(t)
	fineG, _ := s.Normalize(Gran{0, 0})
	coarseG, _ := s.Normalize(Gran{1, LevelALL})
	fine := NewKeyCodec(s, fineG)
	coarse := NewKeyCodec(s, coarseG)
	k := fine.FromBase([]int64{523, 77})
	up := fine.UpTo(k, coarse)
	codes := coarse.Decode(up)
	if len(codes) != 1 || codes[0] != 52 {
		t.Errorf("UpTo = %v, want [52]", codes)
	}
}

func TestKeyUpToPreservesOrderQuick(t *testing.T) {
	// Proposition 1 at the key level: coarsening the FIRST key
	// component and truncating the rest preserves order — k1 <= k2
	// implies UpTo(k1) <= UpTo(k2) when the coarse granularity keeps
	// only (a coarsening of) the leading component. This prefix form
	// is what the streaming planner relies on.
	s := testSchema(t)
	fineG, _ := s.Normalize(Gran{0, 0})
	coarseG, _ := s.Normalize(Gran{2, LevelALL})
	fine := NewKeyCodec(s, fineG)
	coarse := NewKeyCodec(s, coarseG)
	f := func(a1, b1, a2, b2 int16) bool {
		k1 := fine.FromBase([]int64{int64(a1), int64(b1)})
		k2 := fine.FromBase([]int64{int64(a2), int64(b2)})
		if k1 > k2 {
			k1, k2 = k2, k1
		}
		return fine.UpTo(k1, coarse) <= fine.UpTo(k2, coarse)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyUpToNonPrefixCounterexample(t *testing.T) {
	// The overbroad property is FALSE: coarsening a non-final
	// component without truncation can reorder keys, because
	// collapsing the leading component to equality exposes the
	// (unconstrained) comparison of later components. This is why
	// plan comparable keys truncate after a coarsened part.
	s := testSchema(t)
	fineG, _ := s.Normalize(Gran{0, 0})
	coarseG, _ := s.Normalize(Gran{2, 1})
	fine := NewKeyCodec(s, fineG)
	coarse := NewKeyCodec(s, coarseG)
	k1 := fine.FromBase([]int64{100, 50}) // A-group 1
	k2 := fine.FromBase([]int64{199, 10}) // same A-group at L2, smaller B
	if !(k1 < k2) {
		t.Fatal("setup: k1 should precede k2")
	}
	if fine.UpTo(k1, coarse) <= fine.UpTo(k2, coarse) {
		t.Fatal("expected order inversion under non-prefix coarsening; the planner's truncation rule would be unnecessary")
	}
}

func TestDimPos(t *testing.T) {
	s := netSchema(t)
	g, err := s.MakeGran(map[string]string{"t": "Hour", "T": "/24"})
	if err != nil {
		t.Fatal(err)
	}
	c := NewKeyCodec(s, g)
	if c.DimPos(0) != 0 { // t encoded first
		t.Errorf("DimPos(t) = %d", c.DimPos(0))
	}
	if c.DimPos(1) != -1 { // U at ALL
		t.Errorf("DimPos(U) = %d", c.DimPos(1))
	}
	if c.DimPos(2) != 1 { // T second encoded
		t.Errorf("DimPos(T) = %d", c.DimPos(2))
	}
	if c.DimPos(3) != -1 { // P at ALL
		t.Errorf("DimPos(P) = %d", c.DimPos(3))
	}
}

func TestKeyFormat(t *testing.T) {
	s := netSchema(t)
	g, _ := s.MakeGran(map[string]string{"t": "Day", "T": "/24"})
	c := NewKeyCodec(s, g)
	k := c.FromCodes([]int64{DayCode(2002, 2, 14), IPCode(10, 20, 30, 0) >> 8})
	if got := c.Format(k); got != "t:2002-02-14, T:10.20.30.*" {
		t.Errorf("Format = %q", got)
	}
	allC := NewKeyCodec(s, s.AllGran())
	if got := allC.Format(allC.FromCodes(nil)); got != "ALL" {
		t.Errorf("ALL format = %q", got)
	}
}

func TestSortKeyRecordLess(t *testing.T) {
	s := testSchema(t)
	k, err := SortKey{{Dim: 0, Lvl: 1}, {Dim: 1, Lvl: 0}}.Normalize(s)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Dims: []int64{523, 9}},
		{Dims: []int64{521, 3}}, // same level-1 A code (52), smaller B
		{Dims: []int64{100, 5}},
		{Dims: []int64{999, 0}},
	}
	sort.Slice(recs, func(i, j int) bool { return k.RecordLess(s, &recs[i], &recs[j]) })
	// Expected: A-level1 groups 10 (100), 52 (521/523 by B), 99 (999).
	want := [][]int64{{100, 5}, {521, 3}, {523, 9}, {999, 0}}
	for i := range want {
		if recs[i].Dims[0] != want[i][0] || recs[i].Dims[1] != want[i][1] {
			t.Fatalf("sorted[%d] = %v, want %v", i, recs[i].Dims, want[i])
		}
	}
}

func TestSortKeyNormalizeErrors(t *testing.T) {
	s := testSchema(t)
	if _, err := (SortKey{{Dim: 5, Lvl: 0}}).Normalize(s); err == nil {
		t.Error("bad dim accepted")
	}
	if _, err := (SortKey{{Dim: 0, Lvl: 99}}).Normalize(s); err == nil {
		t.Error("bad level accepted")
	}
	k, err := (SortKey{{Dim: 0, Lvl: LevelALL}}).Normalize(s)
	if err != nil {
		t.Fatal(err)
	}
	if k[0].Lvl != s.Dim(0).ALL() {
		t.Error("LevelALL not resolved")
	}
}

func TestSortKeyString(t *testing.T) {
	s := netSchema(t)
	hour, _ := s.Dim(0).LevelByName("Hour")
	k := SortKey{{Dim: 0, Lvl: hour}, {Dim: 2, Lvl: 0}}
	if got := k.String(s); got != "<t:Hour, T:IP>" {
		t.Errorf("String = %q", got)
	}
}

func TestProjectConsistentWithMapBase(t *testing.T) {
	// Projecting a region key onto a sort key must agree with mapping
	// the raw record when the region granularity refines the key.
	s := testSchema(t)
	g, _ := s.Normalize(Gran{0, 1})
	c := NewKeyCodec(s, g)
	sk, _ := (SortKey{{Dim: 0, Lvl: 2}, {Dim: 1, Lvl: 1}}).Normalize(s)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		dims := []int64{rng.Int63n(1000), rng.Int63n(1000)}
		viaKey := sk.Project(c, c.FromBase(dims))
		direct := sk.MapBase(s, dims)
		if viaKey != direct {
			t.Fatalf("Project != MapBase for dims %v", dims)
		}
	}
}

func TestUpCoords(t *testing.T) {
	s := testSchema(t)
	g, _ := s.Normalize(Gran{1, LevelALL})
	got := s.UpCoords([]int64{523, 77}, g)
	if got[0] != 52 || got[1] != 0 {
		t.Errorf("UpCoords = %v", got)
	}
}

func TestRecordClone(t *testing.T) {
	r := Record{Dims: []int64{1, 2}, Ms: []float64{3.5}}
	c := r.Clone()
	c.Dims[0] = 9
	c.Ms[0] = 0
	if r.Dims[0] != 1 || r.Ms[0] != 3.5 {
		t.Error("Clone aliases the original")
	}
	empty := Record{Dims: []int64{1}}
	if ec := empty.Clone(); ec.Ms != nil {
		t.Error("Clone invented measures")
	}
}
