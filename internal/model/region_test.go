package model

import "testing"

func TestRegionCoverage(t *testing.T) {
	s := testSchema(t)
	g, _ := s.Normalize(Gran{1, LevelALL})
	c := NewKeyCodec(s, g)
	k := c.FromCodes([]int64{52})
	r := RegionOf(c, k)
	if r.Codes[0] != 52 || r.Codes[1] != 0 {
		t.Fatalf("RegionOf = %+v", r)
	}
	recs := []Record{
		{Dims: []int64{520, 1}, Ms: []float64{1}}, // covered (520/10 = 52)
		{Dims: []int64{529, 9}, Ms: []float64{2}}, // covered
		{Dims: []int64{530, 1}, Ms: []float64{3}}, // not covered
	}
	cov := r.Coverage(s, recs)
	if len(cov) != 2 {
		t.Fatalf("coverage = %d records, want 2", len(cov))
	}
	if !r.Covers(s, &recs[0]) || r.Covers(s, &recs[2]) {
		t.Error("Covers disagrees with Coverage")
	}
	if got := r.String(s); got != "A:52" {
		t.Errorf("String = %q", got)
	}
}

func TestRegionParentOf(t *testing.T) {
	s := testSchema(t)
	fineG, _ := s.Normalize(Gran{0, 0})
	midG, _ := s.Normalize(Gran{1, LevelALL})
	fine := Region{Gran: fineG, Codes: []int64{523, 7}}
	parent := Region{Gran: midG, Codes: []int64{52, 0}}
	notParent := Region{Gran: midG, Codes: []int64{53, 0}}
	if !fine.ParentOf(s, parent) {
		t.Error("ancestor not recognized")
	}
	if fine.ParentOf(s, notParent) {
		t.Error("non-ancestor accepted")
	}
	// Not strictly coarser: a region is not its own parent.
	if fine.ParentOf(s, fine) {
		t.Error("region is its own parent")
	}
	// Finer "parent" rejected.
	if parent.ParentOf(s, fine) {
		t.Error("finer region accepted as ancestor")
	}
}

func TestRegionAllGran(t *testing.T) {
	s := testSchema(t)
	c := NewKeyCodec(s, s.AllGran())
	r := RegionOf(c, c.FromCodes(nil))
	rec := Record{Dims: []int64{1, 2}}
	if !r.Covers(s, &rec) {
		t.Error("ALL region must cover everything")
	}
	if got := r.String(s); got != "ALL" {
		t.Errorf("String = %q", got)
	}
}
