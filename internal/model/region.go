package model

// Region is one hyper-rectangle of cube space: a granularity vector
// and the codes of the region's value in each non-ALL dimension
// (Section 2.2 of the paper). It is the decoded, human-oriented form
// of a Key; engines work with Keys, but tools and tests sometimes need
// the explicit region.
type Region struct {
	Gran  Gran
	Codes []int64 // one code per dimension, ALL positions zero
}

// RegionOf decodes a key of the given codec into an explicit region.
func RegionOf(c *KeyCodec, k Key) Region {
	return Region{Gran: c.Gran().Clone(), Codes: c.FullDecode(k)}
}

// Covers reports whether the region covers a record: the record's
// base coordinates generalize to the region's codes in every non-ALL
// dimension. This is coverage(c) from Section 2.2, as a membership
// test.
func (r Region) Covers(s *Schema, rec *Record) bool {
	for d := 0; d < s.NumDims(); d++ {
		if r.Gran[d] == s.Dim(d).ALL() {
			continue
		}
		if s.Dim(d).Up(0, r.Gran[d], rec.Dims[d]) != r.Codes[d] {
			return false
		}
	}
	return true
}

// Coverage filters records to the subset the region covers —
// coverage(c) = { r in D | gamma(r.X_i) = c.v_i for all i }.
func (r Region) Coverage(s *Schema, recs []Record) []Record {
	var out []Record
	for i := range recs {
		if r.Covers(s, &recs[i]) {
			out = append(out, recs[i])
		}
	}
	return out
}

// ParentOf reports whether p is an ancestor region of r: p's
// granularity is strictly coarser on at least one dimension, at least
// as coarse everywhere, and r's codes generalize to p's (the paper's
// c2 <_C c1 relation, relaxed to ancestors rather than immediate
// parents).
func (r Region) ParentOf(s *Schema, p Region) bool {
	strict := false
	for d := 0; d < s.NumDims(); d++ {
		if r.Gran[d] > p.Gran[d] {
			return false
		}
		if r.Gran[d] < p.Gran[d] {
			strict = true
		}
		if s.Dim(d).Up(r.Gran[d], p.Gran[d], r.Codes[d]) != p.Codes[d] {
			return false
		}
	}
	return strict
}

// String renders the region in the paper's tuple notation.
func (r Region) String(s *Schema) string {
	c := NewKeyCodec(s, r.Gran)
	sub := make([]int64, 0, c.Width())
	for d := 0; d < s.NumDims(); d++ {
		if r.Gran[d] != s.Dim(d).ALL() {
			sub = append(sub, r.Codes[d])
		}
	}
	return c.Format(c.FromCodes(sub))
}
