package model

import (
	"fmt"
	"sort"
	"strings"
)

// Dictionary hierarchies encode categorical dimensions — site ->
// region -> country, product -> category, and the like — as dense
// integer codes that satisfy Proposition 1. Codes are assigned in
// lexicographic path order, so a child's code order is consistent with
// its ancestors' at every level, making the generalization functions
// monotone by construction (the encoding trick the paper suggests:
// "we can encode the values in the extended domain so as to impose
// such an ordering").
//
// Build one with DictBuilder:
//
//	b := model.NewDictBuilder("loc", "Site", "Region")
//	b.Add("madison", "midwest")
//	b.Add("chicago", "midwest")
//	b.Add("seattle", "west")
//	dim, dict, err := b.Build()
//
// Records then store dict.LeafCode("madison"); formatted output shows
// the original labels.

// DictBuilder accumulates leaf paths for a dictionary hierarchy.
type DictBuilder struct {
	name       string
	levelNames []string // finest first, e.g. ["Site", "Region"]
	paths      map[string][]string
	errs       []string
}

// NewDictBuilder starts a hierarchy for a dimension. levelNames lists
// the concrete domains, finest first; D_ALL is implicit.
func NewDictBuilder(name string, levelNames ...string) *DictBuilder {
	b := &DictBuilder{name: name, levelNames: levelNames, paths: map[string][]string{}}
	if len(levelNames) == 0 {
		b.errs = append(b.errs, "dictionary hierarchy needs at least one level")
	}
	return b
}

// Add registers one leaf with its ancestor labels, finest first: the
// leaf value followed by its parent at each coarser level. Re-adding
// the same leaf with a different lineage is an error.
func (b *DictBuilder) Add(labels ...string) *DictBuilder {
	if len(labels) != len(b.levelNames) {
		b.errs = append(b.errs, fmt.Sprintf("Add(%v): want %d labels (one per level)", labels, len(b.levelNames)))
		return b
	}
	for _, l := range labels {
		if l == "" {
			b.errs = append(b.errs, fmt.Sprintf("Add(%v): empty label", labels))
			return b
		}
	}
	leaf := labels[0]
	if prev, ok := b.paths[leaf]; ok {
		if !eqStrings(prev, labels) {
			b.errs = append(b.errs, fmt.Sprintf("leaf %q registered with two lineages: %v and %v", leaf, prev, labels))
		}
		return b
	}
	cp := make([]string, len(labels))
	copy(cp, labels)
	b.paths[leaf] = cp
	return b
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Dict resolves between labels and codes after Build.
type Dict struct {
	levelNames []string
	// codeOf[level][label] -> code; labelOf[level][code] -> label.
	codeOf  []map[string]int64
	labelOf [][]string
	// upOne[level][childCode] -> parentCode.
	upOne [][]int64
}

// LeafCode returns the base-domain code of a leaf label.
func (d *Dict) LeafCode(label string) (int64, error) {
	c, ok := d.codeOf[0][label]
	if !ok {
		return 0, fmt.Errorf("model: dictionary has no leaf %q", label)
	}
	return c, nil
}

// Code returns the code of a label at the given level.
func (d *Dict) Code(level Level, label string) (int64, error) {
	if int(level) >= len(d.codeOf) {
		return 0, fmt.Errorf("model: dictionary has no level %d", level)
	}
	c, ok := d.codeOf[level][label]
	if !ok {
		return 0, fmt.Errorf("model: dictionary level %s has no label %q", d.levelNames[level], label)
	}
	return c, nil
}

// Label returns the label of a code at the given level.
func (d *Dict) Label(level Level, code int64) string {
	if int(level) >= len(d.labelOf) || code < 0 || code >= int64(len(d.labelOf[level])) {
		return fmt.Sprintf("?%d", code)
	}
	return d.labelOf[level][code]
}

// Cardinality returns the number of distinct values at a level.
func (d *Dict) Cardinality(level Level) int {
	if int(level) >= len(d.labelOf) {
		return 1
	}
	return len(d.labelOf[level])
}

// Build assigns codes and produces the Dimension plus its Dict.
func (b *DictBuilder) Build() (*Dimension, *Dict, error) {
	if len(b.errs) > 0 {
		return nil, nil, fmt.Errorf("model: invalid dictionary %q:\n  %s", b.name, strings.Join(b.errs, "\n  "))
	}
	if len(b.paths) == 0 {
		return nil, nil, fmt.Errorf("model: dictionary %q has no leaves", b.name)
	}
	depth := len(b.levelNames)

	// Consistency: one parent lineage per label at every level.
	lineage := make([]map[string][]string, depth)
	for l := range lineage {
		lineage[l] = map[string][]string{}
	}
	for _, path := range b.paths {
		for l := 0; l < depth; l++ {
			suffix := path[l:]
			if prev, ok := lineage[l][path[l]]; ok {
				if !eqStrings(prev, suffix) {
					return nil, nil, fmt.Errorf("model: dictionary %q: label %q at level %s has two lineages: %v and %v",
						b.name, path[l], b.levelNames[l], prev[1:], suffix[1:])
				}
			} else {
				lineage[l][path[l]] = suffix
			}
		}
	}

	// Order leaves by their full reversed path (coarsest first), so
	// siblings group under their ancestors and codes are monotone.
	leaves := make([][]string, 0, len(b.paths))
	for _, p := range b.paths {
		leaves = append(leaves, p)
	}
	sort.Slice(leaves, func(i, j int) bool {
		a, c := leaves[i], leaves[j]
		for l := depth - 1; l >= 0; l-- {
			if a[l] != c[l] {
				return a[l] < c[l]
			}
		}
		return false
	})

	d := &Dict{
		levelNames: b.levelNames,
		codeOf:     make([]map[string]int64, depth),
		labelOf:    make([][]string, depth),
		upOne:      make([][]int64, depth),
	}
	for l := 0; l < depth; l++ {
		d.codeOf[l] = map[string]int64{}
	}
	for _, path := range leaves {
		for l := 0; l < depth; l++ {
			if _, ok := d.codeOf[l][path[l]]; !ok {
				d.codeOf[l][path[l]] = int64(len(d.labelOf[l]))
				d.labelOf[l] = append(d.labelOf[l], path[l])
			}
		}
	}
	for l := 0; l < depth; l++ {
		d.upOne[l] = make([]int64, len(d.labelOf[l]))
		for code, label := range d.labelOf[l] {
			if l+1 < depth {
				parent := lineage[l][label][1]
				d.upOne[l][code] = d.codeOf[l+1][parent]
			} else {
				d.upOne[l][code] = 0
			}
		}
	}

	specs := make([]DomainSpec, depth)
	for l := 0; l < depth; l++ {
		l := l
		card := len(d.labelOf[l])
		parentCard := 1
		if l+1 < depth {
			parentCard = len(d.labelOf[l+1])
		}
		fanout := float64(card) / float64(parentCard)
		if fanout < 1 {
			fanout = 1
		}
		// MinFanout 1: uneven trees are the norm for dictionaries.
		specs[l] = DomainSpec{
			Name: b.levelNames[l],
			UpOne: func(c int64) int64 {
				if c < 0 || c >= int64(len(d.upOne[l])) {
					return 0
				}
				return d.upOne[l][c]
			},
			Fanout:    fanout,
			MinFanout: 1,
			Format:    func(c int64) string { return d.Label(Level(l), c) },
		}
	}
	dim, err := NewDimension(b.name, specs...)
	if err != nil {
		return nil, nil, err
	}
	// Monotonicity self-check over the full code range: cheap and
	// guards the sorted-assignment invariant.
	codes := make([]int64, len(d.labelOf[0]))
	for i := range codes {
		codes[i] = int64(i)
	}
	for l := Level(0); int(l) < depth; l++ {
		lvlCodes := codes
		if int(l) > 0 {
			lvlCodes = make([]int64, len(d.labelOf[l]))
			for i := range lvlCodes {
				lvlCodes[i] = int64(i)
			}
		}
		if err := dim.CheckMonotone(l, lvlCodes); err != nil {
			return nil, nil, fmt.Errorf("model: dictionary %q: %w", b.name, err)
		}
	}
	return dim, d, nil
}
