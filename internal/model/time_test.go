package model

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCivilRoundTrip(t *testing.T) {
	f := func(d int32) bool {
		day := int64(d)
		y, m, dd := civilFromDays(day)
		return daysFromCivil(y, m, dd) == day
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCivilAgainstStdlib(t *testing.T) {
	// Compare our civil-calendar arithmetic against time.Time over a
	// wide range of instants.
	for sec := int64(-5e9); sec < 5e9; sec += 123456789 {
		tm := time.Unix(sec, 0).UTC()
		day := floorDiv(sec, 86400)
		y, m, d := civilFromDays(day)
		if int(y) != tm.Year() || time.Month(m) != tm.Month() || d != tm.Day() {
			t.Fatalf("sec=%d: civil=(%d,%d,%d) stdlib=(%d,%d,%d)",
				sec, y, m, d, tm.Year(), tm.Month(), tm.Day())
		}
	}
}

func TestTimeHierarchyMappings(t *testing.T) {
	dim := TimeDimension("t")
	sec := SecondCode(2002, 2, 14, 13, 45, 30)
	hour, err := dim.LevelByName("Hour")
	if err != nil {
		t.Fatal(err)
	}
	day, _ := dim.LevelByName("Day")
	month, _ := dim.LevelByName("Month")
	year, _ := dim.LevelByName("Year")

	if got, want := dim.Up(0, hour, sec), HourCode(2002, 2, 14, 13); got != want {
		t.Errorf("hour = %d, want %d", got, want)
	}
	if got, want := dim.Up(0, day, sec), DayCode(2002, 2, 14); got != want {
		t.Errorf("day = %d, want %d", got, want)
	}
	if got, want := dim.Up(0, month, sec), MonthCode(2002, 2); got != want {
		t.Errorf("month = %d, want %d", got, want)
	}
	if got := dim.Up(0, year, sec); got != 2002 {
		t.Errorf("year = %d, want 2002", got)
	}
	if got := dim.Up(0, dim.ALL(), sec); got != 0 {
		t.Errorf("ALL = %d, want 0", got)
	}
}

func TestTimeFormat(t *testing.T) {
	dim := TimeDimension("t")
	sec := SecondCode(2002, 2, 14, 13, 45, 30)
	if got := dim.FormatCode(0, sec); got != "2002-02-14 13:45:30" {
		t.Errorf("second format = %q", got)
	}
	hour, _ := dim.LevelByName("Hour")
	if got := dim.FormatCode(hour, HourCode(2002, 2, 14, 13)); got != "2002-02-14 13h" {
		t.Errorf("hour format = %q", got)
	}
	day, _ := dim.LevelByName("Day")
	if got := dim.FormatCode(day, DayCode(2002, 2, 14)); got != "2002-02-14" {
		t.Errorf("day format = %q", got)
	}
	month, _ := dim.LevelByName("Month")
	if got := dim.FormatCode(month, MonthCode(2002, 2)); got != "2002-02" {
		t.Errorf("month format = %q", got)
	}
}

func TestMonthBoundaries(t *testing.T) {
	dim := TimeDimension("t")
	day, _ := dim.LevelByName("Day")
	month, _ := dim.LevelByName("Month")
	// Jan 31 and Feb 1 are in different months; Feb 28/29 leap handling.
	if dim.Up(day, month, DayCode(2004, 1, 31)) == dim.Up(day, month, DayCode(2004, 2, 1)) {
		t.Error("Jan 31 and Feb 1 in same month")
	}
	if dim.Up(day, month, DayCode(2004, 2, 29)) != MonthCode(2004, 2) {
		t.Error("leap day mapped to wrong month")
	}
	if dim.Up(day, month, DayCode(2004, 3, 1)) != MonthCode(2004, 3) {
		t.Error("Mar 1 mapped to wrong month")
	}
}

// TestWeekDomainIsNonLinear documents why the paper (and this
// implementation) excludes the Week domain from the Time hierarchy:
// ISO-style weeks can span two months, so there is no monotone Day ->
// Week -> Month chain — Week breaks the linearity that Proposition 1
// and the whole streaming framework rely on.
func TestWeekDomainIsNonLinear(t *testing.T) {
	// Hypothetical Week-on-top-of-Day mapping (weeks since epoch,
	// epoch day 0 was a Thursday; offset so weeks start Monday).
	weekOfDay := func(day int64) int64 { return floorDiv(day+3, 7) }
	// If we then tried Month-on-top-of-Week, the mapping is not a
	// function at all: the week containing 2004-01-29..2004-02-01
	// overlaps two months.
	janDay := DayCode(2004, 1, 30)
	febDay := DayCode(2004, 2, 1)
	if weekOfDay(janDay) != weekOfDay(febDay) {
		t.Fatalf("test setup: days %d and %d should share a week", janDay, febDay)
	}
	if monthOfDay(janDay) == monthOfDay(febDay) {
		t.Fatal("test setup: days should be in different months")
	}
	// A Day -> Week -> Month chain would therefore have to map one
	// week code to two month codes; no consistent UpOne exists. The
	// library's guard: a dimension whose UpOne is not monotone fails
	// CheckMonotone.
	bad := MustDimension("weeky",
		DomainSpec{Name: "Day", UpOne: weekOfDay, Fanout: 7},
		DomainSpec{
			Name: "Week",
			// The only possible "month of week" picks one of the two
			// months; take the month of the week's first day. The
			// result is NOT the month of every covered day, breaking
			// consistency (gamma_Month(day) != via-week).
			UpOne:  func(week int64) int64 { return monthOfDay(week*7 - 3) },
			Fanout: 4.35,
		},
	)
	direct := monthOfDay(febDay)
	viaWeek := bad.Up(0, 2, febDay)
	if direct == viaWeek {
		t.Fatal("expected the week detour to disagree with the direct month mapping")
	}
}

func TestIPHierarchy(t *testing.T) {
	dim := IPv4Dimension("U")
	ip := IPCode(10, 20, 30, 40)
	l24, _ := dim.LevelByName("/24")
	l16, _ := dim.LevelByName("/16")
	l8, _ := dim.LevelByName("/8")
	if got := dim.Up(0, l24, ip); got != ip>>8 {
		t.Errorf("/24 = %d", got)
	}
	if got := dim.Up(0, l16, ip); got != ip>>16 {
		t.Errorf("/16 = %d", got)
	}
	if got := dim.Up(0, l8, ip); got != ip>>24 {
		t.Errorf("/8 = %d", got)
	}
	if got := dim.FormatCode(0, ip); got != "10.20.30.40" {
		t.Errorf("ip format = %q", got)
	}
	if got := dim.FormatCode(l24, ip>>8); got != "10.20.30.*" {
		t.Errorf("/24 format = %q", got)
	}
	if got := dim.FormatCode(l16, ip>>16); got != "10.20.*.*" {
		t.Errorf("/16 format = %q", got)
	}
	if got := dim.FormatCode(l8, ip>>24); got != "10.*.*.*" {
		t.Errorf("/8 format = %q", got)
	}
}

func TestPortHierarchy(t *testing.T) {
	dim := PortDimension("P")
	cls, _ := dim.LevelByName("Class")
	cases := []struct {
		port int64
		want int64
	}{
		{0, PortClassWellKnown}, {80, PortClassWellKnown}, {1023, PortClassWellKnown},
		{1024, PortClassRegistered}, {49151, PortClassRegistered},
		{49152, PortClassDynamic}, {65535, PortClassDynamic},
	}
	for _, c := range cases {
		if got := dim.Up(0, cls, c.port); got != c.want {
			t.Errorf("class(%d) = %d, want %d", c.port, got, c.want)
		}
	}
	if got := dim.FormatCode(cls, PortClassWellKnown); got != "well-known" {
		t.Errorf("class format = %q", got)
	}
}
