package model

import "fmt"

// Time hierarchy: Second -> Hour -> Day -> Month -> Year -> ALL.
//
// Codes are dense integers with calendar-correct, monotone mappings:
//
//	Second: UNIX seconds (UTC)
//	Hour:   floor(seconds / 3600)
//	Day:    floor(hours / 24) = days since 1970-01-01
//	Month:  year*12 + (month-1), via civil-calendar conversion
//	Year:   calendar year
//
// The Week domain from Figure 1 is deliberately omitted: a week can
// span two months, which makes the hierarchy non-linear, and the paper
// restricts evaluation to linear hierarchies ("we will ignore the Week
// domain and treat Time as a linear attribute").

const (
	secondsPerHour = 3600
	hoursPerDay    = 24
)

// TimeDimension builds the paper's Time hierarchy over UNIX-second
// base codes.
func TimeDimension(name string) *Dimension {
	return MustDimension(name,
		DomainSpec{
			Name:   "Second",
			UpOne:  func(c int64) int64 { return floorDiv(c, secondsPerHour) },
			Fanout: secondsPerHour,
			Format: formatSecond,
		},
		DomainSpec{
			Name:   "Hour",
			UpOne:  func(c int64) int64 { return floorDiv(c, hoursPerDay) },
			Fanout: hoursPerDay,
			Format: formatHour,
		},
		DomainSpec{
			Name:      "Day",
			UpOne:     monthOfDay,
			Fanout:    30.44, // average days per month
			MinFanout: 28,    // February
			Format:    formatDay,
		},
		DomainSpec{
			Name:   "Month",
			UpOne:  func(c int64) int64 { return floorDiv(c, 12) },
			Fanout: 12,
			Format: formatMonth,
		},
		DomainSpec{
			Name:      "Year",
			UpOne:     func(int64) int64 { return 0 },
			Fanout:    50, // nominal span of a dataset in years; estimation only
			MinFanout: 1,
			Format:    nil,
		},
	)
}

// civilFromDays converts days-since-epoch to (year, month[1..12],
// day[1..31]) in the proleptic Gregorian calendar. This is the standard
// Howard Hinnant algorithm, valid over the full int64 day range used in
// practice.
func civilFromDays(z int64) (y int64, m, d int) {
	z += 719468
	era := floorDiv(z, 146097)
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	y = yoe + era*400                                      //
	doy := doe - (365*yoe + yoe/4 - yoe/100)               // [0, 365]
	mp := (5*doy + 2) / 153                                // [0, 11]
	d = int(doy - (153*mp+2)/5 + 1)                        // [1, 31]
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		y++
	}
	return y, m, d
}

// daysFromCivil is the inverse of civilFromDays.
func daysFromCivil(y int64, m, d int) int64 {
	if m <= 2 {
		y--
	}
	era := floorDiv(y, 400)
	yoe := y - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m - 3)
	} else {
		mp = int64(m + 9)
	}
	doy := (153*mp+2)/5 + int64(d) - 1     // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return era*146097 + doe - 719468
}

// monthOfDay maps a day code (days since epoch) to a month code
// (year*12 + month-1). It is monotone because the civil calendar is.
func monthOfDay(day int64) int64 {
	y, m, _ := civilFromDays(day)
	return y*12 + int64(m-1)
}

// MonthCode builds a month code from a calendar year and month (1-12).
func MonthCode(year int64, month int) int64 { return year*12 + int64(month-1) }

// DayCode builds a day code from a calendar date.
func DayCode(year int64, month, day int) int64 { return daysFromCivil(year, month, day) }

// HourCode builds an hour code from a calendar date and hour (0-23).
func HourCode(year int64, month, day, hour int) int64 {
	return daysFromCivil(year, month, day)*hoursPerDay + int64(hour)
}

// SecondCode builds a UNIX-seconds code from calendar components.
func SecondCode(year int64, month, day, hour, min, sec int) int64 {
	return HourCode(year, month, day, hour)*secondsPerHour + int64(min*60+sec)
}

func formatSecond(c int64) string {
	day := floorDiv(c, secondsPerHour*hoursPerDay)
	rem := c - day*secondsPerHour*hoursPerDay
	y, m, d := civilFromDays(day)
	return fmt.Sprintf("%04d-%02d-%02d %02d:%02d:%02d", y, m, d, rem/3600, rem/60%60, rem%60)
}

func formatHour(c int64) string {
	day := floorDiv(c, hoursPerDay)
	h := c - day*hoursPerDay
	y, m, d := civilFromDays(day)
	return fmt.Sprintf("%04d-%02d-%02d %02dh", y, m, d, h)
}

func formatDay(c int64) string {
	y, m, d := civilFromDays(c)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

func formatMonth(c int64) string {
	return fmt.Sprintf("%04d-%02d", floorDiv(c, 12), c-floorDiv(c, 12)*12+1)
}
