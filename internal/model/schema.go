package model

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Record is one row of a fact table: base-domain codes for every
// dimension attribute, followed by measure attribute values. The
// Dshield running example has Dims = (t, U, T, P) and no measures; the
// synthetic workloads attach measures.
type Record struct {
	Dims []int64
	Ms   []float64
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	c := Record{Dims: make([]int64, len(r.Dims))}
	copy(c.Dims, r.Dims)
	if r.Ms != nil {
		c.Ms = make([]float64, len(r.Ms))
		copy(c.Ms, r.Ms)
	}
	return c
}

// Schema describes a multidimensional dataset: the dimension vector
// X = (X_1, ..., X_d) with hierarchies, plus named measure attributes.
type Schema struct {
	dims     []*Dimension
	measures []string
	dimIdx   map[string]int
	msIdx    map[string]int
}

// NewSchema builds a schema from its dimensions and measure-attribute
// names. Dimension and measure names must be unique.
func NewSchema(dims []*Dimension, measures ...string) (*Schema, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("model: schema needs at least one dimension")
	}
	s := &Schema{
		dims:     dims,
		measures: measures,
		dimIdx:   make(map[string]int, len(dims)),
		msIdx:    make(map[string]int, len(measures)),
	}
	for i, d := range dims {
		if d == nil {
			return nil, fmt.Errorf("model: schema dimension %d is nil", i)
		}
		if _, dup := s.dimIdx[d.Name()]; dup {
			return nil, fmt.Errorf("model: duplicate dimension name %q", d.Name())
		}
		s.dimIdx[d.Name()] = i
	}
	for i, m := range measures {
		if m == "" {
			return nil, fmt.Errorf("model: measure attribute %d has empty name", i)
		}
		if _, dup := s.msIdx[m]; dup {
			return nil, fmt.Errorf("model: duplicate measure attribute %q", m)
		}
		if _, clash := s.dimIdx[m]; clash {
			return nil, fmt.Errorf("model: measure attribute %q clashes with a dimension name", m)
		}
		s.msIdx[m] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error.
func MustSchema(dims []*Dimension, measures ...string) *Schema {
	s, err := NewSchema(dims, measures...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumDims returns d, the number of dimension attributes.
func (s *Schema) NumDims() int { return len(s.dims) }

// NumMeasures returns the number of measure attributes in fact records.
func (s *Schema) NumMeasures() int { return len(s.measures) }

// Dim returns the i-th dimension.
func (s *Schema) Dim(i int) *Dimension { return s.dims[i] }

// DimIndex resolves a dimension attribute name to its index.
func (s *Schema) DimIndex(name string) (int, error) {
	i, ok := s.dimIdx[name]
	if !ok {
		return 0, fmt.Errorf("model: schema has no dimension %q", name)
	}
	return i, nil
}

// MeasureIndex resolves a measure attribute name to its index.
func (s *Schema) MeasureIndex(name string) (int, error) {
	i, ok := s.msIdx[name]
	if !ok {
		return 0, fmt.Errorf("model: schema has no measure attribute %q", name)
	}
	return i, nil
}

// MeasureName returns the name of the i-th measure attribute.
func (s *Schema) MeasureName(i int) string { return s.measures[i] }

// SchemaSignature returns a short, stable content hash identifying a
// schema's shape: each dimension's name and domain names (in level
// order) plus the measure-attribute names. Two Schema values built from
// the same catalog definition sign identically across processes, so the
// signature can gate structural compatibility — e.g. whether two
// compiled workflows may be merged onto one fact scan — without
// comparing pointers.
//
// The signature covers names and hierarchy shape only, not the Up
// mapping functions; schemas from the same named catalog entry satisfy
// that by construction.
func SchemaSignature(s *Schema) string {
	var b strings.Builder
	for _, d := range s.dims {
		fmt.Fprintf(&b, "dim=%s[", d.Name())
		for l := 0; l < d.NumLevels(); l++ {
			if l > 0 {
				b.WriteByte(',')
			}
			b.WriteString(d.DomainName(Level(l)))
		}
		b.WriteString("];")
	}
	for _, m := range s.measures {
		fmt.Fprintf(&b, "m=%s;", m)
	}
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Gran is a granularity vector (X_1:D_1, ..., X_d:D_d): one level per
// dimension, in schema order. A region set [X_1:D_1, ..., X_d:D_d] is
// identified by its Gran.
type Gran []Level

// BaseGran returns the fact table's granularity G_0, with every
// dimension at its base domain.
func (s *Schema) BaseGran() Gran { return make(Gran, len(s.dims)) }

// AllGran returns the coarsest granularity, with every dimension at
// D_ALL (the region set containing the single region ALL^d).
func (s *Schema) AllGran() Gran {
	g := make(Gran, len(s.dims))
	for i, d := range s.dims {
		g[i] = d.ALL()
	}
	return g
}

// MakeGran builds a granularity vector from (dimension name, domain
// name) pairs; unspecified dimensions default to D_ALL, matching the
// paper's shorthand of omitting ALL components.
func (s *Schema) MakeGran(parts map[string]string) (Gran, error) {
	g := s.AllGran()
	for dim, dom := range parts {
		i, err := s.DimIndex(dim)
		if err != nil {
			return nil, err
		}
		l, err := s.dims[i].LevelByName(dom)
		if err != nil {
			return nil, err
		}
		g[i] = l
	}
	return g, nil
}

// Normalize resolves symbolic LevelALL entries and validates ranges.
func (s *Schema) Normalize(g Gran) (Gran, error) {
	if len(g) != len(s.dims) {
		return nil, fmt.Errorf("model: granularity vector has %d components, schema has %d dimensions", len(g), len(s.dims))
	}
	out := make(Gran, len(g))
	for i, l := range g {
		r, err := s.dims[i].Resolve(l)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// GranLeq reports whether g1 <=_G g2: every component of g1 is at the
// same or a finer domain than g2's, so g2 regions can be produced from
// g1 regions by rolling up.
func (s *Schema) GranLeq(g1, g2 Gran) bool {
	for i := range s.dims {
		if g1[i] > g2[i] {
			return false
		}
	}
	return true
}

// GranEq reports whether two granularity vectors are identical.
func GranEq(g1, g2 Gran) bool {
	if len(g1) != len(g2) {
		return false
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the granularity vector.
func (g Gran) Clone() Gran {
	c := make(Gran, len(g))
	copy(c, g)
	return c
}

// GranString renders a granularity vector in the paper's notation,
// omitting D_ALL components, e.g. "(t:Hour, U:IP)".
func (s *Schema) GranString(g Gran) string {
	var b strings.Builder
	b.WriteByte('(')
	first := true
	for i, d := range s.dims {
		if g[i] == d.ALL() {
			continue
		}
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%s:%s", d.Name(), d.DomainName(g[i]))
	}
	if first {
		b.WriteString("ALL")
	}
	b.WriteByte(')')
	return b.String()
}

// UpCoords maps a record's base coordinates to codes at granularity g
// (one code per dimension; ALL components map to 0).
func (s *Schema) UpCoords(dims []int64, g Gran) []int64 {
	out := make([]int64, len(dims))
	for i := range dims {
		out[i] = s.dims[i].Up(0, g[i], dims[i])
	}
	return out
}
