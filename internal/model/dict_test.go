package model

import (
	"strings"
	"testing"
)

func buildLocDict(t *testing.T) (*Dimension, *Dict) {
	t.Helper()
	b := NewDictBuilder("loc", "Site", "Region", "Country")
	b.Add("madison", "midwest", "us")
	b.Add("chicago", "midwest", "us")
	b.Add("seattle", "west", "us")
	b.Add("portland", "west", "us")
	b.Add("toronto", "ontario", "ca")
	dim, dict, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return dim, dict
}

func TestDictBasics(t *testing.T) {
	dim, dict := buildLocDict(t)
	if dim.NumLevels() != 4 { // 3 concrete + ALL
		t.Fatalf("levels = %d", dim.NumLevels())
	}
	if dict.Cardinality(0) != 5 || dict.Cardinality(1) != 3 || dict.Cardinality(2) != 2 {
		t.Fatalf("cards = %d/%d/%d", dict.Cardinality(0), dict.Cardinality(1), dict.Cardinality(2))
	}
	mad, err := dict.LeafCode("madison")
	if err != nil {
		t.Fatal(err)
	}
	region := dim.Up(0, 1, mad)
	if got := dict.Label(1, region); got != "midwest" {
		t.Errorf("madison's region = %q", got)
	}
	country := dim.Up(0, 2, mad)
	if got := dict.Label(2, country); got != "us" {
		t.Errorf("madison's country = %q", got)
	}
	if got := dim.FormatCode(0, mad); got != "madison" {
		t.Errorf("format = %q", got)
	}
	// Siblings share parents.
	chi, _ := dict.LeafCode("chicago")
	if dim.Up(0, 1, chi) != region {
		t.Error("chicago not in madison's region")
	}
	sea, _ := dict.LeafCode("seattle")
	if dim.Up(0, 1, sea) == region {
		t.Error("seattle placed in midwest")
	}
	if dim.Up(0, 2, sea) != country {
		t.Error("seattle not in us")
	}
	tor, _ := dict.LeafCode("toronto")
	if dim.Up(0, 2, tor) == country {
		t.Error("toronto placed in us")
	}
}

func TestDictMonotone(t *testing.T) {
	dim, dict := buildLocDict(t)
	// Codes were assigned in path order, so generalization must be
	// monotone over the whole leaf range.
	codes := make([]int64, dict.Cardinality(0))
	for i := range codes {
		codes[i] = int64(i)
	}
	for l := Level(1); l <= 2; l++ {
		prev := int64(-1)
		for _, c := range codes {
			up := dim.Up(0, l, c)
			if up < prev {
				t.Fatalf("level %d: code %d maps to %d < previous %d", l, c, up, prev)
			}
			prev = up
		}
	}
}

func TestDictLookups(t *testing.T) {
	_, dict := buildLocDict(t)
	if _, err := dict.LeafCode("atlantis"); err == nil {
		t.Error("unknown leaf resolved")
	}
	c, err := dict.Code(1, "west")
	if err != nil {
		t.Fatal(err)
	}
	if dict.Label(1, c) != "west" {
		t.Error("round trip failed")
	}
	if _, err := dict.Code(9, "west"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := dict.Code(1, "atlantis"); err == nil {
		t.Error("unknown label accepted")
	}
	if got := dict.Label(1, 99); !strings.HasPrefix(got, "?") {
		t.Errorf("out-of-range label = %q", got)
	}
	if dict.Cardinality(9) != 1 {
		t.Error("out-of-range cardinality")
	}
}

func TestDictBuilderErrors(t *testing.T) {
	if _, _, err := NewDictBuilder("x").Build(); err == nil {
		t.Error("no levels accepted")
	}
	if _, _, err := NewDictBuilder("x", "Site").Build(); err == nil {
		t.Error("no leaves accepted")
	}
	b := NewDictBuilder("x", "Site", "Region")
	b.Add("a") // wrong arity
	if _, _, err := b.Build(); err == nil {
		t.Error("wrong label count accepted")
	}
	b = NewDictBuilder("x", "Site", "Region")
	b.Add("a", "")
	if _, _, err := b.Build(); err == nil {
		t.Error("empty label accepted")
	}
	// Conflicting lineages for the same leaf.
	b = NewDictBuilder("x", "Site", "Region")
	b.Add("a", "r1").Add("a", "r2")
	if _, _, err := b.Build(); err == nil {
		t.Error("conflicting leaf lineage accepted")
	}
	// Conflicting lineages at an inner level.
	b = NewDictBuilder("x", "Site", "Region", "Country")
	b.Add("a", "r", "c1").Add("b", "r", "c2")
	if _, _, err := b.Build(); err == nil {
		t.Error("conflicting region lineage accepted")
	}
	// Duplicate identical Add is fine.
	b = NewDictBuilder("x", "Site", "Region")
	b.Add("a", "r").Add("a", "r")
	if _, _, err := b.Build(); err != nil {
		t.Errorf("idempotent Add rejected: %v", err)
	}
}

func TestDictInSchema(t *testing.T) {
	dim, dict := buildLocDict(t)
	s, err := NewSchema([]*Dimension{dim}, "pm25")
	if err != nil {
		t.Fatal(err)
	}
	g, err := s.MakeGran(map[string]string{"loc": "Region"})
	if err != nil {
		t.Fatal(err)
	}
	c := NewKeyCodec(s, g)
	mad, _ := dict.LeafCode("madison")
	k := c.FromBase([]int64{mad})
	if got := c.Format(k); got != "loc:midwest" {
		t.Errorf("key format = %q", got)
	}
}
