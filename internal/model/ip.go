package model

import "fmt"

// IP and port hierarchies for the network-log schema of Table 1.
//
// IPv4: IP -> /24 subnet -> /16 subnet -> /8 subnet -> ALL.
// Codes are the integer prefixes (ip, ip>>8, ip>>16, ip>>24), which are
// monotone under right-shift, satisfying Proposition 1.
//
// Port: Port -> Class -> ALL, where Class partitions the port space
// into well-known (0-1023), registered (1024-49151) and dynamic
// (49152-65535) ranges; the class boundaries are increasing in port
// number, so the mapping is monotone.

// IPv4Dimension builds the Source/Target hierarchy of Figure 1.
func IPv4Dimension(name string) *Dimension {
	return MustDimension(name,
		DomainSpec{
			Name:   "IP",
			UpOne:  func(c int64) int64 { return c >> 8 },
			Fanout: 256,
			Format: func(c int64) string { return formatIPPrefix(c, 4) },
		},
		DomainSpec{
			Name:   "/24",
			UpOne:  func(c int64) int64 { return c >> 8 },
			Fanout: 256,
			Format: func(c int64) string { return formatIPPrefix(c, 3) },
		},
		DomainSpec{
			Name:   "/16",
			UpOne:  func(c int64) int64 { return c >> 8 },
			Fanout: 256,
			Format: func(c int64) string { return formatIPPrefix(c, 2) },
		},
		DomainSpec{
			Name:   "/8",
			UpOne:  func(int64) int64 { return 0 },
			Fanout: 256,
			Format: func(c int64) string { return formatIPPrefix(c, 1) },
		},
	)
}

// IPCode converts dotted-quad octets to a base IP code.
func IPCode(a, b, c, d int) int64 {
	return int64(a)<<24 | int64(b)<<16 | int64(c)<<8 | int64(d)
}

func formatIPPrefix(c int64, octets int) string {
	switch octets {
	case 4:
		return fmt.Sprintf("%d.%d.%d.%d", c>>24&0xff, c>>16&0xff, c>>8&0xff, c&0xff)
	case 3:
		return fmt.Sprintf("%d.%d.%d.*", c>>16&0xff, c>>8&0xff, c&0xff)
	case 2:
		return fmt.Sprintf("%d.%d.*.*", c>>8&0xff, c&0xff)
	default:
		return fmt.Sprintf("%d.*.*.*", c&0xff)
	}
}

// Port class codes.
const (
	PortClassWellKnown  = 0
	PortClassRegistered = 1
	PortClassDynamic    = 2
)

// PortDimension builds the TargetPort hierarchy of Figure 1
// (Port -> PortRange -> ALL).
func PortDimension(name string) *Dimension {
	return MustDimension(name,
		DomainSpec{
			Name: "Port",
			UpOne: func(c int64) int64 {
				switch {
				case c < 1024:
					return PortClassWellKnown
				case c < 49152:
					return PortClassRegistered
				default:
					return PortClassDynamic
				}
			},
			Fanout:    65536.0 / 3,
			MinFanout: 1024, // the well-known class is the smallest
		},
		DomainSpec{
			Name:   "Class",
			UpOne:  func(int64) int64 { return 0 },
			Fanout: 3,
			Format: func(c int64) string {
				switch c {
				case PortClassWellKnown:
					return "well-known"
				case PortClassRegistered:
					return "registered"
				default:
					return "dynamic"
				}
			},
		},
	)
}
