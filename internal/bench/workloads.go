// Package bench regenerates every figure of the paper's evaluation
// section (Section 7): the synthetic child/parent and sibling-chain
// queries of Figures 6(a)-6(e), and the network escalation,
// multi-recon, and combined analyses of Figures 6(f), 7(a) and 7(b).
// Dataset sizes scale down from the paper's 2M-64M records to laptop
// scale (the Scale knob restores larger runs); the quantities of
// interest are the relative shapes — who wins, by what factor, and
// where the crossovers fall — not absolute numbers from 2006 hardware.
package bench

import (
	"fmt"

	"awra/internal/agg"
	"awra/internal/core"
	"awra/internal/gen"
	"awra/internal/model"
)

// q1Grans returns the parent granularity and up to seven child
// granularities for the paper's Q1 ("a measure computed by combining
// seven aggregations for its child regions") over the 4-attribute
// synthetic schema.
func q1Grans(s *model.Schema, k int) (model.Gran, []model.Gran) {
	all := model.LevelALL
	parent, err := s.Normalize(model.Gran{2, all, all, all})
	if err != nil {
		panic(err)
	}
	cands := []model.Gran{
		{0, 1, all, all},
		{0, all, 1, all},
		{0, all, all, 1},
		{1, 0, all, all},
		{1, all, 0, all},
		{1, all, all, all},
		{0, 0, all, all}, // finest: region count grows with |D|
	}
	if k > len(cands) {
		panic(fmt.Sprintf("bench: Q1 supports at most %d child measures", len(cands)))
	}
	children := make([]model.Gran, k)
	for i := 0; i < k; i++ {
		g, err := s.Normalize(cands[i])
		if err != nil {
			panic(err)
		}
		children[i] = g
	}
	return parent, children
}

// Q1Workflow builds the child/parent query of Figure 6(a)/(c): k
// child-granularity counts, each rolled up to the parent granularity
// by counting child regions (the relational formulation is
// COUNT(DISTINCT ...)), combined into one measure at the parent.
// The final measure is named "q1".
func Q1Workflow(s *model.Schema, k int) (*core.Compiled, error) {
	parent, children := q1Grans(s, k)
	w := core.NewWorkflow(s)
	var rollups []string
	for i, g := range children {
		child := fmt.Sprintf("child%d", i+1)
		up := fmt.Sprintf("per_parent%d", i+1)
		w.Basic(child, g, agg.Count, -1)
		w.Rollup(up, parent, child, agg.Count)
		rollups = append(rollups, up)
	}
	w.Combine("q1", rollups, core.SumOf())
	return w.Compile()
}

// Q2Workflow builds the sibling-chain query of Figure 6(b)/(d): a
// per-cell count at the finest granularity of attribute A1 followed by
// `chain` nested sliding-window averages (the paper runs chains of
// length two and seven). The final measure is named "q2".
func Q2Workflow(s *model.Schema, chain int) (*core.Compiled, error) {
	all := model.LevelALL
	g, err := s.Normalize(model.Gran{0, all, all, all})
	if err != nil {
		return nil, err
	}
	w := core.NewWorkflow(s)
	w.Basic("cnt", g, agg.Count, -1)
	prev := "cnt"
	for i := 1; i <= chain; i++ {
		name := fmt.Sprintf("win%d", i)
		if i == chain {
			name = "q2"
		}
		w.Sliding(name, prev, agg.Avg, []core.Window{{Dim: 0, Lo: 0, Hi: 5}})
		prev = name
	}
	return w.Compile()
}

// netLevels resolves the levels the network workflows use.
func netLevels(s *model.Schema) (hour, day model.Level, t24 model.Level, err error) {
	hour, err = s.Dim(0).LevelByName("Hour")
	if err != nil {
		return
	}
	day, err = s.Dim(0).LevelByName("Day")
	if err != nil {
		return
	}
	t24, err = s.Dim(2).LevelByName("/24")
	return
}

// EscalationWorkflow builds the Section 7.2 "network escalation
// detection" query: per-hour traffic per target /24, compared against
// the two preceding hours via sibling match joins; hours whose volume
// at least doubles a non-trivial previous hour raise an alarm, counted
// per hour in the final measure "alarms".
func EscalationWorkflow(s *model.Schema) (*core.Compiled, error) {
	hour, _, t24, err := netLevels(s)
	if err != nil {
		return nil, err
	}
	all := model.LevelALL
	gSubHour, err := s.Normalize(model.Gran{hour, all, t24, all})
	if err != nil {
		return nil, err
	}
	gHour, err := s.Normalize(model.Gran{hour, all, all, all})
	if err != nil {
		return nil, err
	}
	w := core.NewWorkflow(s)
	w.Basic("traffic", gSubHour, agg.Count, -1)
	w.Sliding("prev1", "traffic", agg.Sum, []core.Window{{Dim: 0, Lo: -1, Hi: -1}})
	w.Sliding("prev2", "traffic", agg.Sum, []core.Window{{Dim: 0, Lo: -2, Hi: -2}})
	w.Combine("growth", []string{"traffic", "prev1", "prev2"}, core.CombineFunc{
		Name: "escalation score",
		Fn: func(v []float64) float64 {
			cur, p1, p2 := v[0], v[1], v[2]
			if agg.IsNull(cur) || agg.IsNull(p1) || p1 < 16 {
				return agg.Null()
			}
			score := cur / p1
			if !agg.IsNull(p2) && p2 > 0 && p1/p2 > score {
				score = p1 / p2
			}
			return score
		},
	})
	w.Rollup("alarms", gHour, "growth", agg.Count, core.Where(core.MWhere(0, core.Ge, 2)))
	return w.Compile()
}

// ReconWorkflow builds the Section 7.2 "multi-recon detection" query:
// three measures, each a child/parent match join — per-(day, /24)
// distinct-source counts built from per-(day, /24, source) activity,
// then the number of swept subnets per day. The final measure is
// "sweeps".
func ReconWorkflow(s *model.Schema, fanThreshold float64) (*core.Compiled, error) {
	_, day, t24, err := netLevels(s)
	if err != nil {
		return nil, err
	}
	all := model.LevelALL
	gDaySubSrc, err := s.Normalize(model.Gran{day, 0, t24, all})
	if err != nil {
		return nil, err
	}
	gDaySub, err := s.Normalize(model.Gran{day, all, t24, all})
	if err != nil {
		return nil, err
	}
	gDay, err := s.Normalize(model.Gran{day, all, all, all})
	if err != nil {
		return nil, err
	}
	w := core.NewWorkflow(s)
	w.Basic("srcActivity", gDaySubSrc, agg.Count, -1)
	w.Rollup("fanIn", gDaySub, "srcActivity", agg.Count)
	w.Rollup("sweeps", gDay, "fanIn", agg.Count, core.Where(core.MWhere(0, core.Ge, fanThreshold)))
	return w.Compile()
}

// CombinedWorkflow is the Figure 6(f) query: escalation and
// multi-recon analyses fused into a single aggregation workflow, so
// one sort/scan pass serves both. Final measures are "alarms" and
// "sweeps".
func CombinedWorkflow(s *model.Schema, fanThreshold float64) (*core.Compiled, error) {
	hour, day, t24, err := netLevels(s)
	if err != nil {
		return nil, err
	}
	all := model.LevelALL
	gSubHour, _ := s.Normalize(model.Gran{hour, all, t24, all})
	gHour, _ := s.Normalize(model.Gran{hour, all, all, all})
	gDaySubSrc, _ := s.Normalize(model.Gran{day, 0, t24, all})
	gDaySub, _ := s.Normalize(model.Gran{day, all, t24, all})
	gDay, _ := s.Normalize(model.Gran{day, all, all, all})

	w := core.NewWorkflow(s)
	w.Basic("traffic", gSubHour, agg.Count, -1)
	w.Sliding("prev1", "traffic", agg.Sum, []core.Window{{Dim: 0, Lo: -1, Hi: -1}})
	w.Combine("growth", []string{"traffic", "prev1"}, core.CombineFunc{
		Name: "escalation score",
		Fn: func(v []float64) float64 {
			if agg.IsNull(v[0]) || agg.IsNull(v[1]) || v[1] < 16 {
				return agg.Null()
			}
			return v[0] / v[1]
		},
	})
	w.Rollup("alarms", gHour, "growth", agg.Count, core.Where(core.MWhere(0, core.Ge, 2)))
	w.Basic("srcActivity", gDaySubSrc, agg.Count, -1)
	w.Rollup("fanIn", gDaySub, "srcActivity", agg.Count)
	w.Rollup("sweeps", gDay, "fanIn", agg.Count, core.Where(core.MWhere(0, core.Ge, fanThreshold)))
	return w.Compile()
}

// SynthStats supplies the optimizer with the synthetic dataset's
// cardinalities.
func SynthStats(c gen.SynthConfig) []float64 {
	out := make([]float64, 4)
	base := float64(1000)
	if c.BaseRange > 0 {
		base = float64(c.BaseRange)
	}
	for i := range out {
		out[i] = base
	}
	return out
}

// NetStats supplies the optimizer with the network dataset's rough
// cardinalities: seconds, sources, targets, ports.
func NetStats(days int, sources, subnets int) []float64 {
	return []float64{float64(days) * 86400, float64(sources), float64(subnets) * 256, 65536}
}
