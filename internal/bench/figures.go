package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"awra/internal/core"
	"awra/internal/exec/singlescan"
	"awra/internal/exec/sortscan"
	"awra/internal/gen"
	"awra/internal/model"
	"awra/internal/obs"
	"awra/internal/opt"
	"awra/internal/plan"
	"awra/internal/relbaseline"
	"awra/internal/storage"
)

// Config tunes the harness.
type Config struct {
	// Dir holds generated datasets and temporaries; required.
	Dir string
	// Scale multiplies dataset sizes (1.0 = laptop defaults; the
	// paper's sizes are ~80x larger).
	Scale float64
	// Seed makes dataset generation deterministic.
	Seed int64
	// SingleScanBudget is the memory budget (bytes) that makes the
	// single-scan engine exhibit the paper's out-of-memory cliff;
	// 0 defaults to 8 MB.
	SingleScanBudget int64
	// Parallelism is the maximum worker count for the sharded-parallel
	// figure; 0 defaults to runtime.GOMAXPROCS(0).
	Parallelism int
	// Progress, if non-nil, receives progress lines.
	Progress io.Writer
	// Recorder collects engine metrics across the figure's runs; its
	// snapshot is attached to the Figure (Metrics). Nil allocates a
	// private recorder per Run call, so each figure's snapshot covers
	// only its own runs. Supply one (e.g. for a live -httpaddr view) to
	// accumulate across figures instead.
	Recorder *obs.Recorder
	// History is a directory for the persistent query-history log used
	// by the hist-feedback figure; empty defaults to Dir/history.
	History string
	// ReadBatchBytes is the chunk size for the batched fact reads in
	// the engines under test; 0 uses the scan reader's default.
	ReadBatchBytes int
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 2006
	}
	if c.SingleScanBudget == 0 {
		c.SingleScanBudget = 8 << 20
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Recorder == nil {
		c.Recorder = obs.New()
	}
	return c
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// sizeUnit is the scaled stand-in for the paper's "1M records".
const sizeUnit = 6250

func (c Config) size(units int) int64 {
	n := int64(float64(units) * float64(sizeUnit) * c.Scale)
	if n < 1000 {
		n = 1000
	}
	return n
}

// Host records the machine and toolchain a figure was produced on, so
// benchdata points are comparable across checkouts without free-text
// notes.
type Host struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
}

// HostInfo captures the current process's host metadata.
func HostInfo() Host {
	return Host{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
	}
}

// Figure is one regenerated table/plot: rows of labelled series values.
type Figure struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
	// Host is the machine/toolchain the figure was measured on.
	Host *Host `json:"host,omitempty"`
	// Metrics is the recorder snapshot covering the figure's engine
	// runs, so the performance trajectory is machine-diffable.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// WriteJSON writes the figure (rows plus metrics snapshot) as JSON.
func (f *Figure) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Fprint renders the figure as an aligned text table.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title)
	widths := make([]int, len(f.Header))
	for i, h := range f.Header {
		widths[i] = len(h)
	}
	for _, r := range f.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cols []string) {
		for i, c := range cols {
			fmt.Fprintf(w, "  %-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(f.Header)
	for _, r := range f.Rows {
		line(r)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.0f", float64(d.Microseconds())/1000)
}

// synthFile generates (or reuses) a synthetic dataset of n records.
func (c Config) synthFile(n int64) (string, gen.SynthConfig, error) {
	sc := gen.SynthConfig{Seed: c.Seed}
	path := filepath.Join(c.Dir, fmt.Sprintf("synth-%d.rec", n))
	if _, err := os.Stat(path); err == nil {
		return path, sc, nil
	}
	c.logf("generating synthetic dataset: %d records", n)
	if _, err := gen.Synth(path, n, sc); err != nil {
		return "", sc, err
	}
	return path, sc, nil
}

// netFile generates (or reuses) a network log of ~n records.
func (c Config) netFile(n int64) (string, gen.NetConfig, error) {
	nc := gen.NetConfig{Seed: c.Seed, Days: 7, Escalations: 6, Recons: 6, ReconSources: 60}
	path := filepath.Join(c.Dir, fmt.Sprintf("net-%d.rec", n))
	if _, err := os.Stat(path); err == nil {
		return path, nc, nil
	}
	c.logf("generating network log: ~%d records", n)
	if _, _, err := gen.NetLog(path, n, nc); err != nil {
		return "", nc, err
	}
	return path, nc, nil
}

// beginQuery registers one engine-timing run in the process-global
// in-flight registry (under a fresh "query" span, so the live
// /debug/aw/queries endpoint shows the run's phase and scan progress
// while a figure regenerates). Call the returned func when the run ends.
func (c Config) beginQuery(label, engine string) (*obs.Recorder, func()) {
	sp := c.Recorder.Start(obs.SpanQuery)
	sp.SetAttr("engine", engine)
	inq := obs.DefaultInflight.Begin(label, c.Recorder, sp)
	inq.SetEngine(engine)
	return c.Recorder.At(sp), func() {
		sp.End()
		inq.Finish()
	}
}

// timeSortScan runs the sort/scan engine with an optimizer-chosen key.
func (c Config) timeSortScan(w *core.Compiled, fact string, cards []float64) (time.Duration, sortscan.Stats, error) {
	choice, err := opt.Best(w, &plan.Stats{BaseCard: cards}, c.Recorder)
	if err != nil {
		return 0, sortscan.Stats{}, err
	}
	t0 := time.Now()
	rec, done := c.beginQuery("bench:sortscan", "sortscan")
	res, err := sortscan.Run(w, fact, sortscan.Options{
		SortKey:  choice.Key,
		TempDir:  c.Dir,
		Stats:    &plan.Stats{BaseCard: cards},
		Recorder: rec,
	})
	done()
	if err != nil {
		return 0, sortscan.Stats{}, err
	}
	os.Remove(fact + ".sorted")
	return time.Since(t0), res.Stats, nil
}

// timeSingleScan runs the single-scan engine under the configured
// memory budget.
func (c Config) timeSingleScan(w *core.Compiled, fact string) (time.Duration, singlescan.Stats, error) {
	r, err := storage.Open(fact)
	if err != nil {
		return 0, singlescan.Stats{}, err
	}
	defer r.Close()
	t0 := time.Now()
	rec, done := c.beginQuery("bench:singlescan", "singlescan")
	res, err := singlescan.Run(w, r, singlescan.Options{
		MemoryBudget: c.SingleScanBudget,
		TempDir:      c.Dir,
		Recorder:     rec,
	})
	done()
	if err != nil {
		return 0, singlescan.Stats{}, err
	}
	return time.Since(t0), res.Stats, nil
}

// timeDB runs the relational baseline on the workflow's final
// measures only (one SQL query per final measure, like the paper).
func (c Config) timeDB(w *core.Compiled, fact string, finals []string) (time.Duration, relbaseline.Stats, error) {
	t0 := time.Now()
	rec, done := c.beginQuery("bench:relational", "relational")
	res, err := relbaseline.RunMeasures(w, fact, finals, relbaseline.Options{TempDir: c.Dir, Recorder: rec})
	done()
	if err != nil {
		return 0, relbaseline.Stats{}, err
	}
	return time.Since(t0), res.Stats, nil
}

// Fig6a: Q1 (seven child/parent measures) across dataset sizes, all
// three engines. Expected shape: single-scan wins only while its hash
// tables fit the budget; sort/scan beats the relational baseline at
// every larger size.
func Fig6a(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID:     "fig6a",
		Title:  "Q1: child/parent match, 7 child measures (execution time, ms)",
		Header: []string{"records", "SortScan", "DB", "SingleScan", "ss_spills"},
	}
	for _, units := range []int{2, 4, 16, 64} {
		n := cfg.size(units)
		fact, sc, err := cfg.synthFile(n)
		if err != nil {
			return nil, err
		}
		w, err := Q1Workflow(mustSynthSchema(sc), 7)
		if err != nil {
			return nil, err
		}
		cards := SynthStats(sc)
		dSort, _, err := cfg.timeSortScan(w, fact, cards)
		if err != nil {
			return nil, err
		}
		dDB, _, err := cfg.timeDB(w, fact, []string{"q1"})
		if err != nil {
			return nil, err
		}
		dSingle, ssStats, err := cfg.timeSingleScan(w, fact)
		if err != nil {
			return nil, err
		}
		cfg.logf("fig6a n=%d: sortscan=%v db=%v singlescan=%v spills=%d", n, dSort, dDB, dSingle, ssStats.Spills)
		f.Rows = append(f.Rows, []string{
			fmt.Sprint(n), ms(dSort), ms(dDB), ms(dSingle), fmt.Sprint(ssStats.Spills),
		})
	}
	f.Notes = append(f.Notes,
		"single-scan spills indicate the paper's insufficient-memory regime",
		fmt.Sprintf("single-scan memory budget: %d bytes", cfg.SingleScanBudget))
	return f, nil
}

// Fig6b: Q2 (nested sliding windows) across sizes for 2-chain and
// 7-chain. Expected shape: sort/scan beats DB everywhere and its cost
// barely grows with chain depth.
func Fig6b(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID:     "fig6b",
		Title:  "Q2: sibling match, nested sliding windows (execution time, ms)",
		Header: []string{"records", "SortScan(2)", "DB(2)", "SortScan(7)", "DB(7)"},
	}
	for _, units := range []int{2, 4, 16, 64} {
		n := cfg.size(units)
		fact, sc, err := cfg.synthFile(n)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprint(n)}
		for _, chain := range []int{2, 7} {
			w, err := Q2Workflow(mustSynthSchema(sc), chain)
			if err != nil {
				return nil, err
			}
			cards := SynthStats(sc)
			dSort, _, err := cfg.timeSortScan(w, fact, cards)
			if err != nil {
				return nil, err
			}
			dDB, _, err := cfg.timeDB(w, fact, []string{"q2"})
			if err != nil {
				return nil, err
			}
			cfg.logf("fig6b n=%d chain=%d: sortscan=%v db=%v", n, chain, dSort, dDB)
			row = append(row, ms(dSort), ms(dDB))
		}
		f.Rows = append(f.Rows, row)
	}
	return f, nil
}

// Fig6c: number of dependent child measures 2..6 at fixed size.
func Fig6c(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID:     "fig6c",
		Title:  "increasing number of measures for child regions (execution time, ms)",
		Header: []string{"childMeasures", "SortScan", "DB"},
	}
	n := cfg.size(64)
	fact, sc, err := cfg.synthFile(n)
	if err != nil {
		return nil, err
	}
	for k := 2; k <= 6; k++ {
		w, err := Q1Workflow(mustSynthSchema(sc), k)
		if err != nil {
			return nil, err
		}
		dSort, _, err := cfg.timeSortScan(w, fact, SynthStats(sc))
		if err != nil {
			return nil, err
		}
		dDB, _, err := cfg.timeDB(w, fact, []string{"q1"})
		if err != nil {
			return nil, err
		}
		cfg.logf("fig6c k=%d: sortscan=%v db=%v", k, dSort, dDB)
		f.Rows = append(f.Rows, []string{fmt.Sprint(k), ms(dSort), ms(dDB)})
	}
	f.Notes = append(f.Notes, fmt.Sprintf("|D| = %d records", n))
	return f, nil
}

// Fig6d: sibling chain length 2..7 at fixed size.
func Fig6d(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID:     "fig6d",
		Title:  "increasing size of sibling chains (execution time, ms)",
		Header: []string{"chainLength", "SortScan", "DB"},
	}
	n := cfg.size(64)
	fact, sc, err := cfg.synthFile(n)
	if err != nil {
		return nil, err
	}
	for chain := 2; chain <= 7; chain++ {
		w, err := Q2Workflow(mustSynthSchema(sc), chain)
		if err != nil {
			return nil, err
		}
		dSort, _, err := cfg.timeSortScan(w, fact, SynthStats(sc))
		if err != nil {
			return nil, err
		}
		dDB, _, err := cfg.timeDB(w, fact, []string{"q2"})
		if err != nil {
			return nil, err
		}
		cfg.logf("fig6d chain=%d: sortscan=%v db=%v", chain, dSort, dDB)
		f.Rows = append(f.Rows, []string{fmt.Sprint(chain), ms(dSort), ms(dDB)})
	}
	f.Notes = append(f.Notes, fmt.Sprintf("|D| = %d records", n))
	return f, nil
}

// Fig6e: cost breakdown (sort phase vs scan/update phase) for Q1 and
// Q2 at small and large sizes. Expected shape: the scan/update phase
// dominates, more so for Q1.
func Fig6e(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID:     "fig6e",
		Title:  "sort vs scan cost breakdown for the sort/scan engine (ms)",
		Header: []string{"query", "records", "sortPhase", "scanPhase"},
	}
	for _, q := range []string{"Q1", "Q2"} {
		for _, units := range []int{2, 64} {
			n := cfg.size(units)
			fact, sc, err := cfg.synthFile(n)
			if err != nil {
				return nil, err
			}
			var w *core.Compiled
			if q == "Q1" {
				w, err = Q1Workflow(mustSynthSchema(sc), 7)
			} else {
				w, err = Q2Workflow(mustSynthSchema(sc), 7)
			}
			if err != nil {
				return nil, err
			}
			_, stats, err := cfg.timeSortScan(w, fact, SynthStats(sc))
			if err != nil {
				return nil, err
			}
			cfg.logf("fig6e %s n=%d: sort=%v scan=%v", q, n, stats.SortTime, stats.ScanTime)
			f.Rows = append(f.Rows, []string{
				q, fmt.Sprint(n), ms(stats.SortTime), ms(stats.ScanTime),
			})
		}
	}
	return f, nil
}

// Fig6f: the combined network query (escalation + multi-recon in one
// workflow). Expected shape: the largest relative win for sort/scan,
// because one pass serves every measure while the baseline runs each
// analysis as its own query stack.
func Fig6f(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID:     "fig6f",
		Title:  "combined escalation + multi-recon query on network data (ms)",
		Header: []string{"records", "SortScan", "DB", "SingleScan"},
	}
	for _, units := range []int{16, 64} {
		n := cfg.size(units)
		fact, nc, err := cfg.netFile(n)
		if err != nil {
			return nil, err
		}
		s, err := gen.NetSchema()
		if err != nil {
			return nil, err
		}
		w, err := CombinedWorkflow(s, 40)
		if err != nil {
			return nil, err
		}
		cards := NetStats(nc.Days, nc.Sources, nc.Subnets)
		dSort, _, err := cfg.timeSortScan(w, fact, cards)
		if err != nil {
			return nil, err
		}
		dDB, _, err := cfg.timeDB(w, fact, []string{"alarms", "sweeps"})
		if err != nil {
			return nil, err
		}
		dSingle, _, err := cfg.timeSingleScan(w, fact)
		if err != nil {
			return nil, err
		}
		cfg.logf("fig6f n=%d: sortscan=%v db=%v singlescan=%v", n, dSort, dDB, dSingle)
		f.Rows = append(f.Rows, []string{fmt.Sprint(n), ms(dSort), ms(dDB), ms(dSingle)})
	}
	return f, nil
}

// Fig7a: network escalation detection alone. Expected shape: the
// intermediate result is small, so the sort dominates sort/scan's
// cost and the plain single scan wins.
func Fig7a(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID:     "fig7a",
		Title:  "network escalation detection (ms)",
		Header: []string{"records", "SingleScan", "SortScan", "DB"},
	}
	for _, units := range []int{16, 64} {
		n := cfg.size(units)
		fact, nc, err := cfg.netFile(n)
		if err != nil {
			return nil, err
		}
		s, err := gen.NetSchema()
		if err != nil {
			return nil, err
		}
		w, err := EscalationWorkflow(s)
		if err != nil {
			return nil, err
		}
		cards := NetStats(nc.Days, nc.Sources, nc.Subnets)
		dSingle, _, err := cfg.timeSingleScan(w, fact)
		if err != nil {
			return nil, err
		}
		dSort, _, err := cfg.timeSortScan(w, fact, cards)
		if err != nil {
			return nil, err
		}
		dDB, _, err := cfg.timeDB(w, fact, []string{"alarms"})
		if err != nil {
			return nil, err
		}
		cfg.logf("fig7a n=%d: singlescan=%v sortscan=%v db=%v", n, dSingle, dSort, dDB)
		f.Rows = append(f.Rows, []string{fmt.Sprint(n), ms(dSingle), ms(dSort), ms(dDB)})
	}
	f.Notes = append(f.Notes, "small intermediate result: sorting is pure overhead here")
	return f, nil
}

// Fig7b: multi-recon detection alone. Expected shape: sort/scan
// significantly faster than the relational baseline.
func Fig7b(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID:     "fig7b",
		Title:  "multi-recon detection (ms)",
		Header: []string{"records", "SingleScan", "SortScan", "DB"},
	}
	for _, units := range []int{16, 64} {
		n := cfg.size(units)
		fact, nc, err := cfg.netFile(n)
		if err != nil {
			return nil, err
		}
		s, err := gen.NetSchema()
		if err != nil {
			return nil, err
		}
		w, err := ReconWorkflow(s, 40)
		if err != nil {
			return nil, err
		}
		cards := NetStats(nc.Days, nc.Sources, nc.Subnets)
		dSingle, _, err := cfg.timeSingleScan(w, fact)
		if err != nil {
			return nil, err
		}
		dSort, _, err := cfg.timeSortScan(w, fact, cards)
		if err != nil {
			return nil, err
		}
		dDB, _, err := cfg.timeDB(w, fact, []string{"sweeps"})
		if err != nil {
			return nil, err
		}
		cfg.logf("fig7b n=%d: singlescan=%v sortscan=%v db=%v", n, dSingle, dSort, dDB)
		f.Rows = append(f.Rows, []string{fmt.Sprint(n), ms(dSingle), ms(dSort), ms(dDB)})
	}
	return f, nil
}

func mustSynthSchema(c gen.SynthConfig) *model.Schema {
	s, err := gen.SynthSchema(c)
	if err != nil {
		panic(err) // static configuration; cannot fail at runtime
	}
	return s
}

// runners maps figure ids to their runners.
var runners = map[string]func(Config) (*Figure, error){
	"abl-flush":         AblFlush,
	"abl-key":           AblKey,
	"abl-par":           AblPar,
	"hist-feedback":     HistFeedback,
	"hotpath":           HotPath,
	"par-shard":         ParShard,
	"serve-load":        ServeLoad,
	"serve-load-cached": ServeLoadCached,
	"fig6a":             Fig6a,
	"fig6b":             Fig6b,
	"fig6c":             Fig6c,
	"fig6d":             Fig6d,
	"fig6e":             Fig6e,
	"fig6f":             Fig6f,
	"fig7a":             Fig7a,
	"fig7b":             Fig7b,
}

// IDs lists the available figures in order.
func IDs() []string {
	out := make([]string, 0, len(runners))
	for id := range runners {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run regenerates one figure by id and attaches the recorder snapshot
// covering its engine runs.
func Run(id string, cfg Config) (*Figure, error) {
	r, ok := runners[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("bench: unknown figure %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	cfg = cfg.withDefaults()
	f, err := r(cfg)
	if f != nil {
		host := HostInfo()
		f.Host = &host
		snap := cfg.Recorder.Snapshot()
		snap.Spans = nil // span trees grow unboundedly across runs; keep figures compact
		f.Metrics = &snap
	}
	return f, err
}

// All regenerates every figure.
func All(cfg Config) ([]*Figure, error) {
	var out []*Figure
	for _, id := range IDs() {
		f, err := Run(id, cfg)
		if err != nil {
			return out, fmt.Errorf("bench: %s: %w", id, err)
		}
		out = append(out, f)
	}
	return out, nil
}
