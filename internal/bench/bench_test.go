package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"awra/internal/exec/singlescan"
	"awra/internal/gen"
	"awra/internal/storage"
)

// tinyCfg runs the harness at 1/25 scale so tests stay fast.
func tinyCfg(t *testing.T) Config {
	t.Helper()
	return Config{Dir: t.TempDir(), Scale: 0.04, Seed: 42, SingleScanBudget: 1 << 20}
}

func TestAllFiguresRun(t *testing.T) {
	if testing.Short() {
		t.Skip("bench harness is slow in -short mode")
	}
	cfg := tinyCfg(t)
	figs, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 16 {
		t.Fatalf("got %d figures, want 16", len(figs))
	}
	for _, f := range figs {
		if f.Host == nil || f.Host.GoMaxProcs < 1 || f.Host.GoVersion == "" {
			t.Errorf("%s: missing host metadata: %+v", f.ID, f.Host)
		}
	}
	for _, f := range figs {
		if len(f.Rows) == 0 {
			t.Errorf("%s: no rows", f.ID)
		}
		for _, r := range f.Rows {
			if len(r) != len(f.Header) {
				t.Errorf("%s: row width %d, header width %d", f.ID, len(r), len(f.Header))
			}
		}
		var buf bytes.Buffer
		f.Fprint(&buf)
		if !strings.Contains(buf.String(), f.ID) {
			t.Errorf("%s: Fprint lost the id", f.ID)
		}
	}
}

func TestHistFeedbackSecondRunPlansMeasured(t *testing.T) {
	f, err := HistFeedback(tinyCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(f.Rows))
	}
	// Header: run, time_ms, engine, measured_nodes, assumed_nodes, collected_nodes.
	m1, _ := strconv.Atoi(f.Rows[0][3])
	m2, _ := strconv.Atoi(f.Rows[1][3])
	if m1 != 0 {
		t.Errorf("run 1 planned %d measured nodes before any history existed", m1)
	}
	if m2 == 0 {
		t.Errorf("run 2 planned no measured nodes; rows: %v", f.Rows)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("fig99", tinyCfg(t)); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestIDsComplete(t *testing.T) {
	want := []string{"abl-flush", "abl-key", "abl-par", "fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f", "fig7a", "fig7b", "hist-feedback", "hotpath", "par-shard", "serve-load", "serve-load-cached"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v", got)
		}
	}
}

// TestWorkflowsProduceMeaningfulResults runs the network workloads on
// planted data and checks the queries actually detect the events —
// the semantic end of the Section 7.2 reproduction.
func TestWorkflowsProduceMeaningfulResults(t *testing.T) {
	dir := t.TempDir()
	fact := dir + "/net.rec"
	nc := gen.NetConfig{Days: 3, Escalations: 3, Recons: 3, ReconSources: 50, Seed: 9}
	s, truth, err := gen.NetLog(fact, 60000, nc)
	if err != nil {
		t.Fatal(err)
	}
	r, err := storage.Open(fact)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Multi-recon: every planted sweep day must be flagged.
	w, err := ReconWorkflow(s, 40)
	if err != nil {
		t.Fatal(err)
	}
	res, err := singlescan.Run(w, r, singlescan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sweeps := res.Tables["sweeps"]
	day, _ := s.Dim(0).LevelByName("Day")
	_ = day
	flaggedDays := map[string]float64{}
	for k, v := range sweeps.Rows {
		flaggedDays[sweeps.Codec.Format(k)] = v
	}
	total := 0.0
	for _, v := range flaggedDays {
		total += v
	}
	if total < float64(len(truth.Recons)) {
		t.Errorf("sweeps detected %.0f subnet-days, planted %d: %v", total, len(truth.Recons), flaggedDays)
	}

	// Escalation: alarms must fire on at least the planted peak hours.
	r2, err := storage.Open(fact)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	we, err := EscalationWorkflow(s)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := singlescan.Run(we, r2, singlescan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	alarms := res2.Tables["alarms"]
	count := 0.0
	for _, v := range alarms.Rows {
		count += v
	}
	if count < float64(len(truth.Escalations)) {
		t.Errorf("alarms = %.0f, planted %d escalations", count, len(truth.Escalations))
	}
}

// TestQ1WorkflowShape sanity-checks the synthetic workload builders.
func TestQ1WorkflowShape(t *testing.T) {
	sc := gen.SynthConfig{Seed: 1}
	s, err := gen.SynthSchema(sc)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 7; k++ {
		c, err := Q1Workflow(s, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := len(c.Outputs()); got != 2*k+1 {
			t.Errorf("k=%d: outputs = %d, want %d", k, got, 2*k+1)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("k=8 did not panic")
			}
		}()
		Q1Workflow(s, 8)
	}()
}

func TestQ2WorkflowShape(t *testing.T) {
	sc := gen.SynthConfig{Seed: 1}
	s, err := gen.SynthSchema(sc)
	if err != nil {
		t.Fatal(err)
	}
	for chain := 1; chain <= 7; chain++ {
		c, err := Q2Workflow(s, chain)
		if err != nil {
			t.Fatalf("chain=%d: %v", chain, err)
		}
		found := false
		for _, name := range c.Outputs() {
			if name == "q2" {
				found = true
			}
		}
		if !found {
			t.Errorf("chain=%d: no q2 output in %v", chain, c.Outputs())
		}
	}
}

func TestSizeScaling(t *testing.T) {
	c := Config{Scale: 1}.withDefaults()
	if c.size(2) != 2*sizeUnit {
		t.Errorf("size(2) = %d", c.size(2))
	}
	half := Config{Scale: 0.5}.withDefaults()
	if half.size(64) != 64*sizeUnit/2 {
		t.Errorf("scaled size = %d", half.size(64))
	}
	tiny := Config{Scale: 0.0001}.withDefaults()
	if tiny.size(2) != 1000 {
		t.Errorf("floor = %d", tiny.size(2))
	}
	if s := strconv.FormatInt(c.size(64), 10); s == "" {
		t.Error("unreachable")
	}
}
