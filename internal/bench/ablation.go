package bench

import (
	"fmt"
	"os"
	"time"

	"awra/internal/exec/partscan"
	"awra/internal/exec/sortscan"
	"awra/internal/gen"
	"awra/internal/model"
	"awra/internal/opt"
	"awra/internal/plan"
)

// AblKey compares the optimizer's best sort key against the worst
// candidate on Q1: same engine, same data, different order — isolating
// the value of the Section 6 sort-order optimization. The columns
// report wall-clock and the actual peak number of live hash entries.
func AblKey(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID:     "abl-key",
		Title:  "ablation: optimizer-chosen vs worst sort key on Q1 (ms / live cells)",
		Header: []string{"key", "time_ms", "peakCells", "estBytes"},
	}
	n := cfg.size(16)
	fact, sc, err := cfg.synthFile(n)
	if err != nil {
		return nil, err
	}
	w, err := Q1Workflow(mustSynthSchema(sc), 7)
	if err != nil {
		return nil, err
	}
	st := &plan.Stats{BaseCard: SynthStats(sc)}
	choices, err := opt.BruteForce(w, st, 0, cfg.Recorder)
	if err != nil {
		return nil, err
	}
	for _, pick := range []struct {
		label string
		ch    opt.Choice
	}{
		{"best", choices[0]},
		{"worst", choices[len(choices)-1]},
	} {
		t0 := time.Now()
		rec, done := cfg.beginQuery("abl-key:"+pick.label, "sortscan")
		res, err := sortscan.Run(w, fact, sortscan.Options{
			SortKey: pick.ch.Key, TempDir: cfg.Dir, Stats: st, Recorder: rec,
		})
		done()
		if err != nil {
			return nil, err
		}
		d := time.Since(t0)
		cfg.logf("abl-key %s %s: %v, %d cells", pick.label, pick.ch.Key.String(w.Schema), d, res.Stats.PeakCells)
		f.Rows = append(f.Rows, []string{
			fmt.Sprintf("%s %s", pick.label, pick.ch.Key.String(w.Schema)),
			ms(d), fmt.Sprint(res.Stats.PeakCells), fmt.Sprintf("%.0f", pick.ch.EstBytes),
		})
	}
	f.Notes = append(f.Notes, fmt.Sprintf("|D| = %d records; %d candidate keys scored", n, len(choices)))
	return f, nil
}

// AblPar compares single-process sort/scan against the
// partitioned-parallel engine on a partitionable workload (multi-recon
// on network data, which keys every measure on t:Day), quantifying the
// distribution headroom the paper claims for the language design.
func AblPar(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID:     "abl-par",
		Title:  "ablation: partitioned-parallel sort/scan (ms)",
		Header: []string{"partitions", "time_ms", "records"},
	}
	n := cfg.size(64)
	fact, nc, err := cfg.netFile(n)
	if err != nil {
		return nil, err
	}
	s, err := gen.NetSchema()
	if err != nil {
		return nil, err
	}
	w, err := ReconWorkflow(s, 40)
	if err != nil {
		return nil, err
	}
	day, err := s.Dim(0).LevelByName("Day")
	if err != nil {
		return nil, err
	}
	cards := NetStats(nc.Days, nc.Sources, nc.Subnets)
	key := model.SortKey{{Dim: 0, Lvl: day}, {Dim: 2, Lvl: 0}, {Dim: 1, Lvl: 0}}
	for _, parts := range []int{1, 2, 4} {
		t0 := time.Now()
		rec, done := cfg.beginQuery(fmt.Sprintf("abl-par:parts=%d", parts), "partscan")
		res, err := partscan.Run(w, fact, partscan.Options{
			PartitionDim: 0, PartitionLevel: day, Partitions: parts,
			SortKey: key, TempDir: cfg.Dir,
			Stats:    &plan.Stats{BaseCard: cards},
			Recorder: rec,
		})
		done()
		if err != nil {
			return nil, err
		}
		d := time.Since(t0)
		cfg.logf("abl-par parts=%d: %v", parts, d)
		f.Rows = append(f.Rows, []string{fmt.Sprint(parts), ms(d), fmt.Sprint(res.Stats.Records)})
	}
	f.Notes = append(f.Notes, "multi-recon workload partitioned by t:Day; results validated identical across partition counts in tests")
	return f, nil
}

// ParShard compares serial sort/scan against the sharded-parallel
// engine on Q1 at the paper's 1M-record point, verifying bit-identical
// tables at every shard count. The key leads with A1 at level 2, so
// Q1's level-2 rollups and combine nest inside the shard units; this
// is the first point of the parallel-speedup trajectory.
func ParShard(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID:     "par-shard",
		Title:  "sharded parallel sort/scan vs serial on Q1 (ms)",
		Header: []string{"shards", "time_ms", "speedup", "records"},
	}
	n := cfg.size(160) // the paper's 1M-record point at scale 1
	fact, sc, err := cfg.synthFile(n)
	if err != nil {
		return nil, err
	}
	w, err := Q1Workflow(mustSynthSchema(sc), 7)
	if err != nil {
		return nil, err
	}
	key := model.SortKey{{Dim: 0, Lvl: 2}, {Dim: 1, Lvl: 0}}
	st := &plan.Stats{BaseCard: SynthStats(sc)}

	t0 := time.Now()
	rec, done := cfg.beginQuery("par-shard:serial", "sortscan")
	base, err := sortscan.Run(w, fact, sortscan.Options{
		SortKey: key, TempDir: cfg.Dir, Stats: st, Recorder: rec,
	})
	done()
	if err != nil {
		return nil, err
	}
	dSerial := time.Since(t0)
	os.Remove(fact + ".sorted")
	cfg.logf("par-shard serial: %v", dSerial)
	f.Rows = append(f.Rows, []string{"serial", ms(dSerial), "1.00", fmt.Sprint(base.Stats.Records)})

	counts := []int{2, 4}
	if p := cfg.Parallelism; p > 1 && p != 2 && p != 4 {
		counts = append(counts, p)
	}
	for _, shards := range counts {
		t0 := time.Now()
		rec, done := cfg.beginQuery(fmt.Sprintf("par-shard:shards=%d", shards), "shardscan")
		res, err := sortscan.RunSharded(w, fact, sortscan.ShardedOptions{
			SortKey: key, Shards: shards, TempDir: cfg.Dir, Stats: st, Recorder: rec,
		})
		done()
		if err != nil {
			return nil, err
		}
		d := time.Since(t0)
		for name, tbl := range base.Tables {
			if !tbl.Equal(res.Tables[name], 0) {
				return nil, fmt.Errorf("bench: par-shard: shards=%d table %q differs from serial", shards, name)
			}
		}
		cfg.logf("par-shard shards=%d: %v", shards, d)
		f.Rows = append(f.Rows, []string{
			fmt.Sprint(shards), ms(d),
			fmt.Sprintf("%.2f", float64(dSerial)/float64(d)),
			fmt.Sprint(res.Stats.Records),
		})
	}
	f.Notes = append(f.Notes,
		"tables verified bit-identical to serial at every shard count",
		fmt.Sprintf("|D| = %d records, sort key %s", n, key.String(w.Schema)),
		"wall-clock speedup requires as many physical cores as shards (see host.gomaxprocs)")
	return f, nil
}

// AblFlush compares the sort/scan engine with and without early
// flushing (the watermark machinery of Tables 6-8). Both produce
// identical results; the difference is the live-cell footprint — the
// entire point of the paper's streaming evaluation.
func AblFlush(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID:     "abl-flush",
		Title:  "ablation: early flushing on/off (live hash entries)",
		Header: []string{"mode", "time_ms", "peakCells"},
	}
	n := cfg.size(16)
	fact, sc, err := cfg.synthFile(n)
	if err != nil {
		return nil, err
	}
	w, err := Q1Workflow(mustSynthSchema(sc), 7)
	if err != nil {
		return nil, err
	}
	st := &plan.Stats{BaseCard: SynthStats(sc)}
	best, err := opt.Best(w, st, cfg.Recorder)
	if err != nil {
		return nil, err
	}
	for _, mode := range []struct {
		label   string
		disable bool
	}{
		{"early-flush", false},
		{"no-flush", true},
	} {
		t0 := time.Now()
		rec, done := cfg.beginQuery("abl-flush:"+mode.label, "sortscan")
		res, err := sortscan.Run(w, fact, sortscan.Options{
			SortKey: best.Key, TempDir: cfg.Dir, Stats: st,
			DisableEarlyFlush: mode.disable,
			Recorder:          rec,
		})
		done()
		if err != nil {
			return nil, err
		}
		d := time.Since(t0)
		cfg.logf("abl-flush %s: %v, %d cells", mode.label, d, res.Stats.PeakCells)
		f.Rows = append(f.Rows, []string{mode.label, ms(d), fmt.Sprint(res.Stats.PeakCells)})
	}
	f.Notes = append(f.Notes, fmt.Sprintf("|D| = %d records, sort key %s", n, best.Key.String(w.Schema)))
	return f, nil
}
