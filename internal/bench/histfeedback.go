package bench

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"awra/aw"
)

// HistFeedback demonstrates the history → statistics round trip: the
// same workflow runs twice through the public API with a shared query
// history. The first run plans from collected base cardinalities and
// appends its true per-node cell counts to the history log; the second
// run's plan consults the measured store, so EXPLAIN labels those
// nodes "measured" (the paper's Section 6 card() estimates replaced by
// feedback from execution).
func HistFeedback(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID:     "hist-feedback",
		Title:  "history feedback: estimate sources and planning across repeated runs",
		Header: []string{"run", "time_ms", "engine", "measured_nodes", "assumed_nodes", "collected_nodes"},
	}
	n := cfg.size(4)
	fact, sc, err := cfg.synthFile(n)
	if err != nil {
		return nil, err
	}
	w, err := Q1Workflow(mustSynthSchema(sc), 4)
	if err != nil {
		return nil, err
	}
	histDir := cfg.History
	if histDir == "" {
		histDir = filepath.Join(cfg.Dir, "history")
	}
	h, err := aw.OpenHistory(histDir)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	in := aw.FromFile(fact)
	for run := 1; run <= 2; run++ {
		o := aw.QueryOptions{
			ExecOptions: aw.ExecOptions{History: h, Recorder: cfg.Recorder},
			TempDir:     cfg.Dir,
			BaseCards:   SynthStats(sc),
		}
		// Plan first (the EXPLAIN view), then execute with the same
		// options; the run's completion feeds the history for run 2.
		prof, err := aw.ExplainFor(w, in, o)
		if err != nil {
			return nil, err
		}
		var measured, assumed, collected int
		for _, node := range prof.Nodes {
			switch node.EstSource {
			case aw.SourceMeasured:
				measured++
			case aw.SourceAssumed:
				assumed++
			case aw.SourceCollected:
				collected++
			}
		}
		t0 := time.Now()
		if _, err := aw.RunCompiled(context.Background(), w, in, o); err != nil {
			return nil, err
		}
		d := time.Since(t0)
		cfg.logf("hist-feedback run=%d: %v engine=%s measured=%d", run, d, prof.Engine, measured)
		f.Rows = append(f.Rows, []string{
			fmt.Sprint(run), ms(d), prof.Engine,
			fmt.Sprint(measured), fmt.Sprint(assumed), fmt.Sprint(collected),
		})
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("|D| = %d records; history dir %s (%d runs, %d measured stats)", n, histDir, h.Len(), h.MeasuredStats()),
		"run 2 plans from measured cell counts recorded by run 1 (est_source=measured)")
	return f, nil
}
