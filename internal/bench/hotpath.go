package bench

import (
	"fmt"
	"os"
	"time"

	"awra/internal/exec/singlescan"
	"awra/internal/exec/sortscan"
	"awra/internal/model"
	"awra/internal/plan"
)

// HotPath measures the batched zero-copy record pipeline on the
// headline number: serial Q1 (seven child/parent measures) over the
// paper's 1M-record point. It times the three file-backed engines that
// share the internal/exec/scan reader and cellmap tables — serial
// sort/scan, single-scan, and 2-way shardscan — verifies their tables
// bit-identical pairwise, and reports throughput in rows/s so the
// trajectory in benchdata/hotpath.json is comparable across commits.
func HotPath(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID:     "hotpath",
		Title:  "batched zero-copy pipeline: serial Q1 per engine (1M-record point at scale 1)",
		Header: []string{"engine", "time_ms", "rows_per_sec", "records"},
	}
	n := cfg.size(160) // the paper's 1M-record point at scale 1
	fact, sc, err := cfg.synthFile(n)
	if err != nil {
		return nil, err
	}
	w, err := Q1Workflow(mustSynthSchema(sc), 7)
	if err != nil {
		return nil, err
	}
	key := model.SortKey{{Dim: 0, Lvl: 2}, {Dim: 1, Lvl: 0}}
	st := &plan.Stats{BaseCard: SynthStats(sc)}

	row := func(engine string, d time.Duration, records int64) {
		rps := float64(records) / d.Seconds()
		f.Rows = append(f.Rows, []string{
			engine, ms(d), fmt.Sprintf("%.0f", rps), fmt.Sprint(records),
		})
		cfg.logf("hotpath %s: %v (%.0f rows/s)", engine, d, rps)
	}

	t0 := time.Now()
	rec, done := cfg.beginQuery("hotpath:sortscan", "sortscan")
	base, err := sortscan.Run(w, fact, sortscan.Options{
		SortKey: key, TempDir: cfg.Dir, Stats: st, Recorder: rec,
		ReadBatchBytes: cfg.ReadBatchBytes,
	})
	done()
	if err != nil {
		return nil, err
	}
	dSort := time.Since(t0)
	os.Remove(fact + ".sorted")
	row("sortscan", dSort, base.Stats.Records)

	t0 = time.Now()
	rec, done = cfg.beginQuery("hotpath:singlescan", "singlescan")
	single, err := singlescan.RunFile(w, fact, singlescan.Options{
		TempDir: cfg.Dir, Recorder: rec, ReadBatchBytes: cfg.ReadBatchBytes,
	})
	done()
	if err != nil {
		return nil, err
	}
	dSingle := time.Since(t0)
	row("singlescan", dSingle, single.Stats.Records)
	for name, tbl := range base.Tables {
		if !tbl.Equal(single.Tables[name], 0) {
			return nil, fmt.Errorf("bench: hotpath: singlescan table %q differs from sortscan", name)
		}
	}

	t0 = time.Now()
	rec, done = cfg.beginQuery("hotpath:shardscan", "shardscan")
	shard, err := sortscan.RunSharded(w, fact, sortscan.ShardedOptions{
		SortKey: key, Shards: 2, TempDir: cfg.Dir, Stats: st, Recorder: rec,
		ReadBatchBytes: cfg.ReadBatchBytes,
	})
	done()
	if err != nil {
		return nil, err
	}
	dShard := time.Since(t0)
	row("shardscan-2", dShard, shard.Stats.Records)
	for name, tbl := range base.Tables {
		if !tbl.Equal(shard.Tables[name], 0) {
			return nil, fmt.Errorf("bench: hotpath: shardscan table %q differs from sortscan", name)
		}
	}

	f.Notes = append(f.Notes,
		"tables verified bit-identical across sortscan, singlescan, and shardscan",
		fmt.Sprintf("|D| = %d records, sort key %s, serial (shardscan wall clock needs 2 cores)", n, key.String(w.Schema)),
		"rows_per_sec on the sortscan row is the headline serial-Q1 throughput tracked by CI")
	return f, nil
}
