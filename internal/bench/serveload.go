package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"awra/aw"
	"awra/internal/serve"
)

// serveLoadWorkflow is the fixed query every load client runs: the
// paper's Table 1 network log aggregated to (hour, IP) cells, rolled
// up to busy hours.
const serveLoadWorkflow = "schema net\n" +
	"basic Count gran(t=Hour, U=IP) agg=count\n" +
	"rollup Busy gran(t=Hour) src=Count agg=count where \"m0 > 1\"\n"

// ServeLoad drives the always-on query service (internal/serve) at
// increasing offered concurrency against a fixed admission gate, and
// reports sustained throughput alongside the shed rate: the service's
// answer to overload is to keep per-query latency flat and turn the
// excess away with 429 + Retry-After rather than letting everything
// slow down together. The result cache is disabled so every request
// measures a real execution under admission.
func ServeLoad(cfg Config) (*Figure, error) {
	return serveLoadRun(cfg, false)
}

// ServeLoadCached reruns the serve-load ladder with the result cache
// enabled. The clients issue an identical workflow over an unchanged
// collection, so after the first execution per level every request is
// answered from the cache without occupying an admission slot: the
// shed rate collapses and throughput is bounded by response encoding,
// not fact-table scans. Compare row-for-row against serve-load.
func ServeLoadCached(cfg Config) (*Figure, error) {
	return serveLoadRun(cfg, true)
}

func serveLoadRun(cfg Config, cached bool) (*Figure, error) {
	cfg = cfg.withDefaults()
	f := &Figure{
		ID:     "serve-load",
		Title:  "query service under load: throughput and shed rate vs offered concurrency",
		Header: []string{"clients", "requests", "ok", "shed", "cache_hits", "throughput_qps", "ok_p50_ms", "ok_p95_ms"},
	}
	if cached {
		f.ID = "serve-load-cached"
		f.Title = "query service under load with the result cache on: repeated queries bypass the gate"
	}
	n := cfg.size(2)
	fact, _, err := cfg.netFile(n)
	if err != nil {
		return nil, err
	}
	const (
		slots     = 4 // admission slots: the fixed capacity every level contends for
		perClient = 6 // requests each client issues back to back
	)
	// The cache-hit counter lives in cfg.Recorder, which all ladder
	// levels share; report per-level deltas, not the running total.
	var prevHits int64
	for _, clients := range []int{1, 2, 4, 8, 16, 32} {
		s, err := serve.New(serve.Config{
			Collections:   map[string]string{"net": fact},
			TempDir:       cfg.Dir,
			Gate:          serve.GateConfig{MaxConcurrent: slots, QueueDepth: slots, QueueWait: 250 * time.Millisecond},
			DefaultEngine: aw.EngineAuto,
			MemoryBudget:  cfg.SingleScanBudget,
			Recorder:      cfg.Recorder,
			Cache:         serve.CacheConfig{Disabled: !cached},
		})
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(s.Handler())

		var (
			mu        sync.Mutex
			ok, shed  int
			latencies []time.Duration
			firstErr  error
		)
		body, _ := json.Marshal(serve.QueryRequest{Workflow: serveLoadWorkflow, Collection: "net"})
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < perClient; r++ {
					t0 := time.Now()
					resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
					d := time.Since(t0)
					mu.Lock()
					switch {
					case err != nil:
						if firstErr == nil {
							firstErr = err
						}
					case resp.StatusCode == http.StatusOK:
						ok++
						latencies = append(latencies, d)
					case resp.StatusCode == http.StatusTooManyRequests:
						shed++
					default:
						if firstErr == nil {
							firstErr = fmt.Errorf("serve-load: unexpected status %d", resp.StatusCode)
						}
					}
					mu.Unlock()
					if resp != nil {
						resp.Body.Close()
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		totalHits := s.CacheSnapshot().Hits
		hits := totalHits - prevHits
		prevHits = totalHits
		ts.Close()
		if err := s.Drain(); err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, firstErr
		}
		total := clients * perClient
		qps := float64(ok) / elapsed.Seconds()
		cfg.logf("%s clients=%d: ok=%d shed=%d hits=%d %.1f qps", f.ID, clients, ok, shed, hits, qps)
		f.Rows = append(f.Rows, []string{
			fmt.Sprint(clients), fmt.Sprint(total), fmt.Sprint(ok), fmt.Sprint(shed), fmt.Sprint(hits),
			fmt.Sprintf("%.1f", qps),
			ms(percentile(latencies, 0.50)), ms(percentile(latencies, 0.95)),
		})
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("|D| = %d records; gate: %d slots, queue depth %d, wait 250ms; %d requests per client",
			n, slots, slots, perClient),
	)
	if cached {
		f.Notes = append(f.Notes,
			"identical query, unchanged collection: after the first execution per level the cache answers without an admission slot, so shedding collapses and throughput scales with clients",
		)
	} else {
		f.Notes = append(f.Notes,
			"result cache disabled: every request executes; past the gate's capacity, added clients raise the shed rate while served-query latency stays near flat",
		)
	}
	return f, nil
}

// percentile returns the p-quantile of ds by nearest-rank; zero when
// empty.
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
